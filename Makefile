GO ?= go

.PHONY: build test vet lint race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Run the repository's own static-analysis suite (cmd/postopc-lint):
# determinism (detrand, maporder), unit safety (unitsafe), worker-pool
# correctness (parcapture) and dead-assignment hygiene (deadassign).
lint:
	$(GO) build -o bin/postopc-lint ./cmd/postopc-lint
	./bin/postopc-lint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# The full pre-merge gate: compile everything, vet, run the domain lint
# suite, run the tests, then run them again under the race detector (the
# parallel extraction / ORC / Monte Carlo paths are exercised concurrently
# by the flow tests).
check: build vet lint test race
