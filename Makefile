GO ?= go

.PHONY: build test vet race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# The full pre-merge gate: compile everything, vet, run the suite, then
# run it again under the race detector (the parallel extraction / ORC /
# Monte Carlo paths are exercised concurrently by the flow tests).
check: build vet test race
