GO ?= go

.PHONY: build test vet lint lint-sarif race bench bench-smoke bench-kernel bench-obs bench-sta bench-throughput bench-diff check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Run the repository's own static-analysis suite (cmd/postopc-lint):
# determinism (detrand, maporder), unit safety (unitsafe), worker-pool
# correctness (parcapture), dead-assignment hygiene (deadassign),
# cache-key completeness (cachekey, keycover), allocation budgets
# (allocbudget), write-only telemetry (obswrite) and suppression hygiene
# (nolint). -timing prints per-analyzer wall-clock to stderr.
lint:
	$(GO) build -o bin/postopc-lint ./cmd/postopc-lint
	./bin/postopc-lint -timing ./...

# The machine-readable variant of the lint gate: same findings, rendered
# as SARIF 2.1.0 on stdout (byte-identical at any -j worker count).
lint-sarif:
	$(GO) build -o bin/postopc-lint ./cmd/postopc-lint
	./bin/postopc-lint -json ./... > postopc-lint.sarif

test:
	$(GO) test ./...

# Explicit timeout: the flow suite alone runs ~9-10 min under the
# detector, right at go test's 600s per-binary default.
race:
	$(GO) test -race -timeout 1800s ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# One-iteration smoke of the cache ablation in -short mode: keeps the
# stage/cache plumbing honest between perf PRs without the full bench cost
# (the -short path runs a small repeated-context block only).
bench-smoke:
	$(GO) test -short -run=NONE -bench=Ablation_WindowCache -benchtime=1x .

# Kernel-engine smoke: asserts the steady-state allocation budget of the
# imaging hot path (TestKernelAllocBudget), runs the kernel report bench
# once (-short trims its sample count), then the vek inner-loop micro
# series (complex128 reference vs SoA kernels — butterfly, filter apply,
# intensity accumulate, inverse scale). Build with GOAMD64=v3 to measure
# the AVX2 kernels. Reference numbers: BENCH_kernel.json.
bench-kernel:
	$(GO) test -short -run=TestKernelAllocBudget -bench=KernelReport -benchtime=1x ./internal/litho/
	$(GO) test -run=NONE -bench=KernelInnerLoops -benchtime=100ms ./internal/dsp/vek/

# Telemetry-overhead smoke: asserts that a disabled sink adds zero
# allocations to instrumented hot paths and measures the per-update cost
# once. Reference numbers: BENCH_obs.json.
bench-obs:
	$(GO) test -run='TestDisabledSinkZeroAlloc|TestEnabledCounterZeroAlloc' -bench=ObsOverhead -benchtime=1x -benchmem ./internal/obs/

# Multi-corner STA smoke: one iteration of the process-window sign-off
# bench on the -short datapath block (full vs incremental re-analysis,
# single corner and whole grid). Reference numbers: BENCH_sta.json.
bench-sta:
	$(GO) test -short -run=NONE -bench=MultiCornerSTA -benchtime=1x .

# The full pre-merge gate: compile everything, vet, run the domain lint
# suite, run the tests, then run them again under the race detector (the
# parallel extraction / ORC / Monte Carlo paths are exercised concurrently
# by the flow tests).
check: build vet lint test race

# Batched-pipeline throughput smoke: one iteration of the windows/sec/core
# bench on the -short repeated-context strip (per-window vs batched, cache
# off and on). Reference numbers: BENCH_throughput.json.
bench-throughput:
	$(GO) test -short -run=NONE -bench=Throughput_BatchedPipeline -benchtime=1x .

# Run-ledger regression gate: two small instrumented postopc-sta runs
# write ledgers; postopc-report summarizes the second, diffs it against
# the first (generous 400% threshold, 0.1 ms noise floor — this is a
# smoke against pathological cliffs, not a microbenchmark), then diffs it
# against the committed BENCH_obs.json baseline via -map, pairing the
# ledger's cache-lookup median with the committed span-bookkeeping cost
# as a coarse cross-format yardstick. Non-zero exit on any regression.
bench-diff:
	$(GO) build -o bin/postopc-sta ./cmd/postopc-sta
	$(GO) build -o bin/postopc-report ./cmd/postopc-report
	./bin/postopc-sta -design rca -size 4 -fast -cache -j 2 -batch 3 -ledger bench-base.ledger > /dev/null
	./bin/postopc-sta -design rca -size 4 -fast -cache -j 2 -batch 3 -ledger bench-cur.ledger > /dev/null
	./bin/postopc-report summary bench-cur.ledger
	./bin/postopc-report diff -threshold 400 -min-ns 100000 bench-base.ledger bench-cur.ledger
	./bin/postopc-report diff -threshold 400 \
		-map hist.cache.lookup_ns.q50=bench.BenchmarkObsOverhead/span-enabled.ns_per_op \
		BENCH_obs.json bench-cur.ledger
