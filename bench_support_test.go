package postopc

// Shared fixtures for the experiment benchmarks (bench_test.go). The heavy
// artefacts — the placed evaluation design and its per-gate extractions —
// are computed once and reused across E5..E8, mirroring how the paper runs
// one extraction pass and many analyses.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"postopc/internal/flow"
	"postopc/internal/litho"
	"postopc/internal/netlist"
	"postopc/internal/pdk"
	"postopc/internal/place"
	"postopc/internal/sta"
)

// evalDesign is the shared evaluation circuit: a datapath block of
// identical-depth slices whose endpoint slacks form a tight "slack wall" —
// the regime where context-dependent CD shifts visibly reorder speed-path
// criticality, as in the paper's placed-and-routed test block.
const (
	evalChains = 32
	evalDepth  = 10
	evalSeed   = 3
)

type fixtures struct {
	kit   *pdk.PDK
	flw   *flow.Flow // fast (Gaussian-verified) flow for the big sweeps
	efl   *flow.Flow // exact (Abbe-verified) flow for small structures
	nl    *netlist.Netlist
	plc   *place.Result
	graph *sta.Graph
	cfg   sta.Config // tight clock: 3% over the drawn critical path
	drawn *sta.Result

	extModel map[string]*flow.GateExtraction // model OPC, variation corners
	extNone  map[string]*flow.GateExtraction // no OPC, nominal only
}

var (
	fixOnce sync.Once
	fix     *fixtures
	fixErr  error
)

func getFixtures(b *testing.B) *fixtures {
	b.Helper()
	fixOnce.Do(func() { fix, fixErr = buildFixtures() })
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fix
}

func buildFixtures() (*fixtures, error) {
	f := &fixtures{kit: pdk.N90()}
	var err error
	if f.flw, err = flow.New(f.kit, flow.Config{Fast: true}); err != nil {
		return nil, err
	}
	if f.efl, err = flow.New(f.kit, flow.Config{Fast: false}); err != nil {
		return nil, err
	}
	f.nl = netlist.Datapath(evalChains, evalDepth, evalSeed)
	if f.plc, err = f.flw.Place(f.nl, place.Options{}); err != nil {
		return nil, err
	}
	if f.graph, err = f.flw.BuildGraph(f.nl); err != nil {
		return nil, err
	}
	probe, err := f.graph.Analyze(sta.DefaultConfig(100000), nil)
	if err != nil {
		return nil, err
	}
	f.cfg = sta.DefaultConfig(1.03 * (100000 - probe.WNS))
	f.cfg.KPaths = 20
	if f.drawn, err = f.graph.Analyze(f.cfg, nil); err != nil {
		return nil, err
	}
	fmt.Printf("# eval design %s: %d gates, %d endpoints, clock %.0fps (drawn WNS %.1fps)\n",
		f.nl.Name, len(f.nl.Gates), len(f.drawn.Endpoints), f.cfg.ClockPS, f.drawn.WNS)
	return f, nil
}

// extractions returns (and caches) the full-chip model-OPC extraction at
// the variation corners, verified with the physical Abbe model.
func (f *fixtures) extractions(b *testing.B) map[string]*flow.GateExtraction {
	b.Helper()
	if f.extModel == nil {
		ext, err := f.efl.ExtractGates(f.plc.Chip, nil, flow.ExtractOptions{
			Corners: flow.VariationCorners(f.kit.Window),
			Mode:    flow.OPCModel,
		})
		if err != nil {
			b.Fatal(err)
		}
		f.extModel = ext
	}
	return f.extModel
}

// extractionsNoOPC returns (and caches) the uncorrected Abbe extraction.
func (f *fixtures) extractionsNoOPC(b *testing.B) map[string]*flow.GateExtraction {
	b.Helper()
	if f.extNone == nil {
		ext, err := f.efl.ExtractGates(f.plc.Chip, nil, flow.ExtractOptions{
			Corners: []litho.Corner{litho.Nominal},
			Mode:    flow.OPCNone,
		})
		if err != nil {
			b.Fatal(err)
		}
		f.extNone = ext
	}
	return f.extNone
}

// printOnce emits a benchmark's table exactly once per process: the
// harness may re-invoke fast benchmarks with growing b.N, and every
// invocation restarts its loop at i == 0.
var printGuards sync.Map

func printOnce(b *testing.B, i int, fn func()) {
	if i != 0 {
		return
	}
	once, _ := printGuards.LoadOrStore(b.Name(), &sync.Once{})
	once.(*sync.Once).Do(fn)
}

var stdout = os.Stdout
