// Package postopc hosts the benchmark harness that regenerates every table
// and figure of the reconstructed evaluation (see DESIGN.md, experiments
// E1..E8, plus the ablation benches). Each benchmark prints the table or
// data series it reproduces on its first iteration:
//
//	go test -run=NONE -bench=E5 .
//	go test -run=NONE -bench=. -benchmem . | tee bench_output.txt
package postopc

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"postopc/internal/flow"
	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/litho"
	"postopc/internal/metro"
	"postopc/internal/netlist"
	"postopc/internal/obs"
	"postopc/internal/opc"
	"postopc/internal/pdk"
	"postopc/internal/place"
	"postopc/internal/report"
	"postopc/internal/route"
	"postopc/internal/sta"
	"postopc/internal/stdcell"
	"postopc/internal/timinglib"
)

// ---------------------------------------------------------------------------
// E1 — Printed CD through pitch and focus (litho substrate sanity; the
// proximity behaviour OPC exists to correct). Figure: CD(pitch) per focus.
// ---------------------------------------------------------------------------

func BenchmarkE1_CDThroughPitch(b *testing.B) {
	kit := pdk.N90()
	m, err := litho.NewAbbe(kit.Litho)
	if err != nil {
		b.Fatal(err)
	}
	width := kit.Rules.GateLengthNM
	pitches := []geom.Coord{250, 280, 340, 420, 520, 680, 900, 1360}
	focuses := []float64{0, 80, 120}
	for i := 0; i < b.N; i++ {
		tb := report.NewTable("E1: printed CD (nm) of a 90nm line through pitch and focus (Abbe)",
			"pitch(nm)", "f=0", "f=80", "f=120", "iso-dense bias @f0")
		var isoCD0 float64
		rows := make([][]float64, 0, len(pitches))
		for _, pt := range pitches {
			la := litho.LineArray{WidthNM: width, PitchNM: pt, Count: 7, LengthNM: 1600}
			mask := litho.RasterizeRects(la.Rects(), kit.Litho.PixelNM, kit.Litho.GuardNM)
			var corners []litho.Corner
			for _, f := range focuses {
				corners = append(corners, litho.Corner{DefocusNM: f, Dose: 1})
			}
			imgs, err := m.AerialSeries(mask, corners)
			if err != nil {
				b.Fatal(err)
			}
			centers := la.CenterXs()
			mid := centers[len(centers)/2]
			row := []float64{float64(pt)}
			for ci := range corners {
				res := imgs[ci].MeasureCD(litho.AxisX, 0, mid-float64(pt)/2, mid+float64(pt)/2,
					mid, kit.Litho.Threshold, kit.Litho.Polarity)
				row = append(row, res.CD)
			}
			rows = append(rows, row)
		}
		isoCD0 = rows[len(rows)-1][1]
		printOnce(b, i, func() {
			for _, r := range rows {
				tb.AddF(2, r[0], r[1], r[2], r[3], r[1]-isoCD0)
			}
			tb.Fprint(stdout)
			var series []report.Series
			for fi, f := range focuses {
				s := report.Series{Name: fmt.Sprintf("f=%.0f", f)}
				for _, r := range rows {
					s.X = append(s.X, r[0])
					s.Y = append(s.Y, r[1+fi])
				}
				series = append(series, s)
			}
			report.WriteSeriesCSV(stdout, series)
		})
	}
}

// ---------------------------------------------------------------------------
// E2 — Residual EPE after OPC: rule-based vs model-based vs uncorrected,
// on real standard-cell poly windows. Table: EPE stats; Figure: histogram.
// ---------------------------------------------------------------------------

func e2Netlist() *netlist.Netlist {
	n := &netlist.Netlist{Name: "cells", Inputs: []string{"a", "b", "c"}}
	n.AddGate("g_inv", "INV_X1", map[string]string{"A": "a", "Y": "n1"})
	n.AddGate("g_nand", "NAND3_X1", map[string]string{"A": "n1", "B": "b", "C": "c", "Y": "n2"})
	n.AddGate("g_xor", "XOR2_X1", map[string]string{"A": "n2", "B": "b", "Y": "n3"})
	n.AddGate("g_nor", "NOR2_X1", map[string]string{"A": "n3", "B": "c", "Y": "n4"})
	n.Outputs = []string{"n4"}
	return n
}

func BenchmarkE2_ResidualEPE(b *testing.B) {
	f := getFixtures(b)
	pl, err := f.flw.Place(e2Netlist(), place.Options{})
	if err != nil {
		b.Fatal(err)
	}
	nominal := []litho.Corner{litho.Nominal}
	for i := 0; i < b.N; i++ {
		tb := report.NewTable("E2: residual EPE on std-cell poly (interior fragments, nm)",
			"OPC", "n", "mean", "sigma", "max|EPE|", "p95|EPE|", "viol(>8nm)")
		var modelEPEs []float64
		for _, mode := range []flow.OPCMode{flow.OPCRule, flow.OPCModel} {
			exts, err := f.flw.ExtractGates(pl.Chip, nil, flow.ExtractOptions{Corners: nominal, Mode: mode})
			if err != nil {
				b.Fatal(err)
			}
			var all []float64
			for _, e := range exts {
				all = append(all, e.EPEValues...)
			}
			st := opc.SummarizeEPE(all, 8)
			if mode == flow.OPCModel {
				modelEPEs = all
			}
			tb.AddF(2, mode.String(), st.Count, st.Mean, st.Std, st.MaxAbs, st.P95Abs, st.Violations)
		}
		printOnce(b, i, func() {
			tb.Fprint(stdout)
			h := opc.NewHistogram(modelEPEs, -25, 25, 10)
			report.Histogram(stdout, "E2 figure: model-OPC residual EPE histogram (nm)",
				h.LoNM, h.WidthNM, h.Counts, 40)
		})
	}
}

// ---------------------------------------------------------------------------
// E3 — Post-OPC extracted gate CDs per cell, drawn vs printed, nominal and
// process-window corners (Table). Uses the physical Abbe model.
// ---------------------------------------------------------------------------

func BenchmarkE3_GateCDExtraction(b *testing.B) {
	f := getFixtures(b)
	pl, err := f.efl.Place(e2Netlist(), place.Options{})
	if err != nil {
		b.Fatal(err)
	}
	corners := flow.VariationCorners(f.kit.Window)
	for i := 0; i < b.N; i++ {
		exts, err := f.efl.ExtractGates(pl.Chip, nil, flow.ExtractOptions{Corners: corners, Mode: flow.OPCModel})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() {
			tb := report.NewTable("E3: post-OPC gate CDs by cell (Abbe; nm)",
				"gate", "site", "drawn", "nominal", "nonunif", "defocus120", "dose-5%", "dose+5%")
			for _, name := range []string{"g_inv", "g_nand", "g_xor", "g_nor"} {
				e := exts[name]
				for _, s := range e.Sites[:2] {
					tb.AddF(2, name, s.LocalName, s.DrawnL,
						s.PerCorner[0].MeanCD, s.PerCorner[0].Nonuniformity,
						s.PerCorner[1].MeanCD, s.PerCorner[2].MeanCD, s.PerCorner[3].MeanCD)
				}
			}
			tb.Fprint(stdout)
		})
	}
}

// ---------------------------------------------------------------------------
// E4 — Equivalent gate lengths: the non-rectangular printed gate collapsed
// to delay-EL and leakage-EL, which differ from drawn and from each other
// (Table).
// ---------------------------------------------------------------------------

func BenchmarkE4_EquivalentLength(b *testing.B) {
	f := getFixtures(b)
	pl, err := f.flw.Place(e2Netlist(), place.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		exts, err := f.flw.ExtractGates(pl.Chip, nil, flow.ExtractOptions{
			Corners: flow.VariationCorners(f.kit.Window), Mode: flow.OPCModel})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() {
			tb := report.NewTable("E4: equivalent gate lengths at nominal and defocus (nm)",
				"gate", "site", "drawn", "delayEL@nom", "leakEL@nom", "delayEL@f120", "leakEL@f120", "leak ratio @f120")
			dev := f.flw.TL.Dev
			for _, name := range []string{"g_inv", "g_nand", "g_xor", "g_nor"} {
				e := exts[name]
				for _, s := range e.Sites[:2] {
					n0, fd := s.PerCorner[0], s.PerCorner[1]
					leakRatio := dev.IoffPerUm(s.Kind, fd.LeakEL) / dev.IoffPerUm(s.Kind, s.DrawnL)
					tb.AddF(2, name, s.LocalName, s.DrawnL,
						n0.DelayEL, n0.LeakEL, fd.DelayEL, fd.LeakEL, leakRatio)
				}
			}
			tb.Fprint(stdout)
		})
	}
}

// ---------------------------------------------------------------------------
// E5 — Worst-case slack: drawn-CD sign-off (with and without the blanket
// guardband) vs post-OPC silicon-calibrated STA (Table; the paper's
// headline 36.4% class of shift appears against the guardbanded view).
// ---------------------------------------------------------------------------

func BenchmarkE5_SlackShift(b *testing.B) {
	f := getFixtures(b)
	exts := f.extractions(b)
	for i := 0; i < b.N; i++ {
		annotated, err := f.graph.Analyze(f.cfg, flow.Annotations(exts, 0))
		if err != nil {
			b.Fatal(err)
		}
		guard, err := f.graph.Analyze(f.cfg, sta.Annotations{"*": timinglib.Guardband(8)})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() {
			tb := report.NewTable("E5: worst-case slack, drawn vs post-OPC annotated ("+f.nl.Name+")",
				"analysis", "WNS(ps)", "TNS(ps)", "leak(nW)", "WNS shift vs drawn")
			tb.AddF(1, "drawn CD", f.drawn.WNS, f.drawn.TNS, f.drawn.LeakNW, "")
			g := sta.CompareSlacks(f.drawn, guard)
			a := sta.CompareSlacks(f.drawn, annotated)
			tb.AddF(1, "drawn + 8nm guardband", guard.WNS, guard.TNS, guard.LeakNW,
				fmt.Sprintf("%+.1f%%", g.WNSShiftPct))
			tb.AddF(1, "post-OPC annotated", annotated.WNS, annotated.TNS, annotated.LeakNW,
				fmt.Sprintf("%+.1f%%", a.WNSShiftPct))
			tb.Fprint(stdout)
			gb := sta.CompareSlacks(guard, annotated)
			fmt.Fprintf(stdout, "post-OPC vs guardbanded sign-off: worst-case slack %+.1f%% "+
				"(paper reports +36.4%% on its design)\n", gb.WNSShiftPct)
		})
	}
}

// ---------------------------------------------------------------------------
// E6 — Speed-path criticality reordering (Figure: rank scatter; Table:
// Spearman / Kendall / top-N overlap), with the OPC quality sweep showing
// that better OPC reduces — but does not remove — the reordering.
// ---------------------------------------------------------------------------

func BenchmarkE6_PathReordering(b *testing.B) {
	f := getFixtures(b)
	extsModel := f.extractions(b)
	extsNone := f.extractionsNoOPC(b)
	for i := 0; i < b.N; i++ {
		annModel, err := f.graph.Analyze(f.cfg, flow.Annotations(extsModel, 0))
		if err != nil {
			b.Fatal(err)
		}
		annNone, err := f.graph.Analyze(f.cfg, flow.Annotations(extsNone, 0))
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() {
			tb := report.NewTable("E6: speed-path criticality reordering vs drawn ("+f.nl.Name+")",
				"annotation", "Spearman", "Kendall", "top-5 overlap", "top-10 overlap")
			cN := sta.CompareOrders(f.drawn, annNone, 5, 10)
			cM := sta.CompareOrders(f.drawn, annModel, 5, 10)
			tb.AddF(4, "no OPC (raw litho)", cN.Spearman, cN.KendallTau,
				cN.TopNOverlap[5], cN.TopNOverlap[10])
			tb.AddF(4, "model OPC residuals", cM.Spearman, cM.KendallTau,
				cM.TopNOverlap[5], cM.TopNOverlap[10])
			tb.Fprint(stdout)

			// Figure: drawn rank vs annotated rank for the 20 most
			// critical endpoints.
			rankOf := map[string]int{}
			for ri, ep := range annModel.Endpoints {
				rankOf[ep.Name] = ri + 1
			}
			s := report.Series{Name: "rank_drawn_vs_postopc"}
			for ri, ep := range f.drawn.Endpoints {
				if ri >= 20 {
					break
				}
				s.X = append(s.X, float64(ri+1))
				s.Y = append(s.Y, float64(rankOf[ep.Name]))
			}
			report.WriteSeriesCSV(stdout, []report.Series{s})
			side := report.NewTable("E6: ten worst paths side by side",
				"rank", "drawn endpoint", "slack(ps)", "post-OPC endpoint", "slack(ps)")
			for k := 0; k < 10 && k < len(f.drawn.Endpoints) && k < len(annModel.Endpoints); k++ {
				side.AddF(2, k+1,
					f.drawn.Endpoints[k].Name, f.drawn.Endpoints[k].SlackPS,
					annModel.Endpoints[k].Name, annModel.Endpoints[k].SlackPS)
			}
			side.Fprint(stdout)
		})
	}
}

// ---------------------------------------------------------------------------
// E7 — Realistic CD distributions vs worst-case corners in statistical
// timing (Figure: WNS distribution; Table: MC stats vs corner).
// ---------------------------------------------------------------------------

func BenchmarkE7_CornerVsMonteCarlo(b *testing.B) {
	f := getFixtures(b)
	exts := f.extractions(b)
	vm, err := flow.BuildVariationModel(exts, f.kit.Window, f.kit.Device.SigmaLRandomNM)
	if err != nil {
		b.Fatal(err)
	}
	const samples = 1000
	for i := 0; i < b.N; i++ {
		mc, err := vm.MonteCarlo(f.graph, f.cfg, samples, 1)
		if err != nil {
			b.Fatal(err)
		}
		slow, err := f.graph.Analyze(f.cfg, vm.SlowCorner(3))
		if err != nil {
			b.Fatal(err)
		}
		fast, err := f.graph.Analyze(f.cfg, vm.FastCorner(3))
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() {
			tb := report.NewTable(fmt.Sprintf("E7: WNS — Monte Carlo (N=%d) vs worst-case corner (ps)", samples),
				"statistic", "WNS(ps)")
			tb.AddF(1, "MC mean", mc.MeanWNS)
			tb.AddF(1, "MC sigma", mc.StdWNS)
			tb.AddF(1, "MC p10", mc.Percentile(0.10))
			tb.AddF(1, "MC p1", mc.Percentile(0.01))
			tb.AddF(1, "MC min", mc.WNS[0])
			tb.AddF(1, "slow corner (3σ)", slow.WNS)
			tb.AddF(1, "fast corner (3σ)", fast.WNS)
			tb.Fprint(stdout)
			fmt.Fprintf(stdout, "corner pessimism beyond MC minimum: %.1fps (%.1fσ of the MC spread)\n",
				mc.WNS[0]-slow.WNS, (mc.WNS[0]-slow.WNS)/math.Max(mc.StdWNS, 1e-9))
			// Figure: WNS histogram.
			lo, hi := mc.WNS[0], mc.WNS[len(mc.WNS)-1]
			counts := make([]int, 12)
			for _, v := range mc.WNS {
				k := int((v - lo) / (hi - lo + 1e-9) * 12)
				if k > 11 {
					k = 11
				}
				counts[k]++
			}
			report.Histogram(stdout, "E7 figure: MC WNS distribution (ps)", lo, (hi-lo)/12, counts, 40)
		})
	}
}

// ---------------------------------------------------------------------------
// E8 — Selective OPC: aggressive correction only on tagged critical gates
// (Table: CD control and slack convergence vs number of tagged paths).
// ---------------------------------------------------------------------------

func BenchmarkE8_SelectiveOPC(b *testing.B) {
	f := getFixtures(b)
	extsModel := f.extractions(b)
	extsNone := f.extractionsNoOPC(b)
	fullAnn, err := f.graph.Analyze(f.cfg, flow.Annotations(extsModel, 0))
	if err != nil {
		b.Fatal(err)
	}
	critSet := map[string]bool{}
	for _, n := range f.drawn.CriticalGates(5) {
		critSet[n] = true
	}
	for i := 0; i < b.N; i++ {
		tb := report.NewTable("E8: selective OPC on tagged critical gates ("+f.nl.Name+")",
			"paths tagged", "gates OPC'd", "mean |ΔCD| on crit (nm)", "WNS(ps)", "ΔWNS vs full OPC (ps)")
		for _, k := range []int{0, 1, 2, 4, 8, 16} {
			mixed := map[string]*flow.GateExtraction{}
			for name, e := range extsNone {
				mixed[name] = e
			}
			var tagged []string
			if k > 0 {
				tagged = f.drawn.CriticalGates(k)
				for _, name := range tagged {
					mixed[name] = extsModel[name]
				}
			}
			res, err := f.graph.Analyze(f.cfg, flow.Annotations(mixed, 0))
			if err != nil {
				b.Fatal(err)
			}
			tb.AddF(2, k, len(tagged), meanAbsCDErr(mixed, critSet), res.WNS, res.WNS-fullAnn.WNS)
		}
		tb.AddF(2, "all", len(extsModel), meanAbsCDErr(extsModel, critSet), fullAnn.WNS, 0.0)
		printOnce(b, i, func() { tb.Fprint(stdout) })
	}
}

func meanAbsCDErr(exts map[string]*flow.GateExtraction, gates map[string]bool) float64 {
	var sum float64
	n := 0
	for name, e := range exts {
		if !gates[name] {
			continue
		}
		for _, s := range e.Sites {
			sum += math.Abs(s.PerCorner[0].MeanCD - s.DrawnL)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ---------------------------------------------------------------------------
// Ablations (design choices called out in DESIGN.md)
// ---------------------------------------------------------------------------

// BenchmarkAblation_SourceSamples sweeps Abbe source sampling density:
// accuracy (dense-line CD) vs simulation cost.
func BenchmarkAblation_SourceSamples(b *testing.B) {
	kit := pdk.N90()
	for i := 0; i < b.N; i++ {
		tb := report.NewTable("ablation: Abbe source sampling rings",
			"rings", "source points", "dense CD(nm)", "ΔCD vs 5 rings", "sim time")
		type row struct {
			rings, pts int
			cd         float64
			dur        time.Duration
		}
		var rows []row
		for _, rings := range []int{1, 2, 3, 4, 5} {
			rec := kit.Litho
			rec.SourceRings = rings
			m, err := litho.NewAbbe(rec)
			if err != nil {
				b.Fatal(err)
			}
			la := litho.LineArray{WidthNM: 90, PitchNM: 340, Count: 7, LengthNM: 1600}
			mask := litho.RasterizeRects(la.Rects(), rec.PixelNM, rec.GuardNM)
			t0 := time.Now()
			im, err := m.Aerial(mask, litho.Nominal)
			if err != nil {
				b.Fatal(err)
			}
			dur := time.Since(t0)
			centers := la.CenterXs()
			mid := centers[len(centers)/2]
			res := im.MeasureCD(litho.AxisX, 0, mid-170, mid+170, mid, rec.Threshold, rec.Polarity)
			rows = append(rows, row{rings, len(m.SourcePoints()), res.CD, dur})
		}
		printOnce(b, i, func() {
			ref := rows[len(rows)-1].cd
			for _, r := range rows {
				tb.AddF(2, r.rings, r.pts, r.cd, r.cd-ref, r.dur.Round(time.Millisecond).String())
			}
			tb.Fprint(stdout)
		})
	}
}

// BenchmarkAblation_OPCFragmentation sweeps the OPC fragment length:
// residual EPE vs mask complexity.
func BenchmarkAblation_OPCFragmentation(b *testing.B) {
	kit := pdk.N90()
	m, err := kit.FastModel()
	if err != nil {
		b.Fatal(err)
	}
	drawn := []geom.Polygon{
		geom.R(-45, -500, 45, 500).Polygon(),
		geom.R(295, -500, 385, 500).Polygon(),
		geom.R(-385, -500, -295, 500).Polygon(),
	}
	for i := 0; i < b.N; i++ {
		tb := report.NewTable("ablation: OPC fragment length (model OPC, 3-line cluster)",
			"fragment(nm)", "fragments", "p95|EPE|(nm)", "max|EPE| interior(nm)", "sims")
		for _, frag := range []geom.Coord{80, 110, 140, 200, 280} {
			opt := opc.DefaultOptions()
			opt.Fragment.LengthNM = frag
			opt.Fragment.CornerNM = frag / 2
			res, err := opc.ModelBased(m, drawn, nil, opt)
			if err != nil {
				b.Fatal(err)
			}
			nf := 0
			var interior []float64
			idx := 0
			for _, fp := range res.Fragmented {
				nf += len(fp.Frags)
				for _, fr := range fp.Frags {
					if fr.Control.Y > -400 && fr.Control.Y < 400 {
						interior = append(interior, res.FinalEPE[idx])
					}
					idx++
				}
			}
			st := opc.SummarizeEPE(interior, 8)
			tb.AddF(2, int64(frag), nf, st.P95Abs, st.MaxAbs, res.Sims)
		}
		printOnce(b, i, func() { tb.Fprint(stdout) })
	}
}

// BenchmarkAblation_SliceCount sweeps the CD-extraction slice count:
// equivalent-length convergence.
func BenchmarkAblation_SliceCount(b *testing.B) {
	f := getFixtures(b)
	pl, err := f.flw.Place(e2Netlist(), place.Options{})
	if err != nil {
		b.Fatal(err)
	}
	inst := pl.Chip.FindInstance("g_nand")
	for i := 0; i < b.N; i++ {
		type meas struct {
			slices int
			d, l   float64
		}
		var rows []meas
		for _, slices := range []int{3, 5, 9, 17, 33} {
			fl := *f.flw
			fl.CDX.Slices = slices
			ext, err := fl.ExtractInstance(pl.Chip, inst, flow.ExtractOptions{Mode: flow.OPCModel})
			if err != nil {
				b.Fatal(err)
			}
			cc := ext.Sites[0].PerCorner[0]
			rows = append(rows, meas{slices, cc.DelayEL, cc.LeakEL})
		}
		printOnce(b, i, func() {
			ref := rows[len(rows)-1]
			tb := report.NewTable("ablation: CD slices per gate (NAND3 NMOS finger)",
				"slices", "delayEL(nm)", "err vs 33", "leakEL(nm)", "err vs 33")
			for _, r := range rows {
				tb.AddF(3, r.slices, r.d, r.d-ref.d, r.l, r.l-ref.l)
			}
			tb.Fprint(stdout)
		})
	}
}

// BenchmarkAblation_FastModel quantifies the Gaussian fast model's CD
// fidelity against the Abbe reference through pitch and focus.
func BenchmarkAblation_FastModel(b *testing.B) {
	kit := pdk.N90()
	ab, err := litho.NewAbbe(kit.Litho)
	if err != nil {
		b.Fatal(err)
	}
	ga, err := kit.FastModel()
	if err != nil {
		b.Fatal(err)
	}
	measure := func(m litho.Model, pitch geom.Coord, focus float64) float64 {
		r := m.Recipe()
		la := litho.LineArray{WidthNM: 90, PitchNM: pitch, Count: 7, LengthNM: 1600}
		mask := litho.RasterizeRects(la.Rects(), r.PixelNM, r.GuardNM)
		im, err := m.Aerial(mask, litho.Corner{DefocusNM: focus, Dose: 1})
		if err != nil {
			b.Fatal(err)
		}
		centers := la.CenterXs()
		mid := centers[len(centers)/2]
		res := im.MeasureCD(litho.AxisX, 0, mid-float64(pitch)/2, mid+float64(pitch)/2,
			mid, r.Threshold, r.Polarity)
		return res.CD
	}
	for i := 0; i < b.N; i++ {
		tb := report.NewTable("ablation: fast Gaussian model vs Abbe reference (printed CD, nm)",
			"pitch(nm)", "focus(nm)", "Abbe", "Gaussian", "ΔCD")
		maxErr := 0.0
		for _, pt := range []geom.Coord{280, 340, 420, 680} {
			for _, fz := range []float64{0, 120} {
				a := measure(ab, pt, fz)
				g := measure(ga, pt, fz)
				if d := math.Abs(a - g); d > maxErr {
					maxErr = d
				}
				tb.AddF(2, int64(pt), fz, a, g, g-a)
			}
		}
		printOnce(b, i, func() {
			tb.Fprint(stdout)
			fmt.Fprintf(stdout, "max |ΔCD| fast vs Abbe: %.2fnm\n", maxErr)
		})
	}
}

// BenchmarkAblation_WindowCache measures the content-addressed pattern
// cache on full-chip extraction + ORC: wall time with and without the
// cache, the hit rate, and the resulting speedup.
//
// The repeated-context chips are DatapathRegular blocks (identical bit
// slices) placed as a bit-slice strip — one cell per row, the classic
// datapath layout style — so each pipeline stage's level-ordered run of
// identical cells spans many rows and gate windows repeat both along and
// across rows; the ORC tile is set to two row heights, the vertical period
// of the alternating row flip. The shuffled eval datapath is the
// adversarial contrast: almost no window recurs there, so the cache can
// only break even and the bench reports its pure overhead. Cached and
// uncached runs are byte-identical by construction; this bench quantifies
// only the cost side. Under -short only a small repeated-context block
// runs, sized for the CI smoke step.
func BenchmarkAblation_WindowCache(b *testing.B) {
	f := getFixtures(b)
	// One NAND2_X2 (the widest slice cell) per placement row.
	strip := place.Options{RowWidthNM: 2380}
	stripTile := geom.Coord(2 * 2600)
	type spec struct {
		name   string
		nl     *netlist.Netlist
		place  place.Options
		tileNM geom.Coord
	}
	var specs []spec
	if testing.Short() {
		specs = []spec{{"strip dp12x3", netlist.DatapathRegular(12, 3, 3), strip, stripTile}}
	} else {
		specs = []spec{
			{"strip dp32x10", netlist.DatapathRegular(32, 10, 3), strip, stripTile},
			{"shuffled " + f.nl.Name, f.nl, place.Options{}, 0},
			{"strip dp48x12", netlist.DatapathRegular(48, 12, 5), strip, stripTile},
		}
	}
	newFlow := func() *flow.Flow {
		fl, err := flow.New(f.kit, flow.Config{Fast: true})
		if err != nil {
			b.Fatal(err)
		}
		return fl
	}
	runChip := func(fl *flow.Flow, chip *layout.Chip, tileNM geom.Coord) time.Duration {
		t0 := time.Now()
		if _, err := fl.ExtractGates(chip, nil, flow.ExtractOptions{Mode: flow.OPCModel}); err != nil {
			b.Fatal(err)
		}
		if _, err := fl.VerifyChip(chip, flow.ORCOptions{Mode: flow.OPCModel, TileNM: tileNM}); err != nil {
			b.Fatal(err)
		}
		return time.Since(t0)
	}
	for i := 0; i < b.N; i++ {
		tb := report.NewTable("ablation: pattern cache on full-chip extraction + ORC (fast model)",
			"design", "gates", "uncached", "cached", "speedup", "lookups", "hit rate")
		hitS := report.Series{Name: "cache_hit_rate"}
		spdS := report.Series{Name: "cache_speedup"}
		for _, sp := range specs {
			plain := newFlow()
			pl, err := plain.Place(sp.nl, sp.place)
			if err != nil {
				b.Fatal(err)
			}
			tPlain := runChip(plain, pl.Chip, sp.tileNM)
			cached := newFlow().EnableCache(0)
			tCached := runChip(cached, pl.Chip, sp.tileNM)
			st := cached.CacheStats()
			speedup := float64(tPlain) / float64(tCached)
			tb.AddF(2, sp.name, len(sp.nl.Gates),
				tPlain.Round(time.Millisecond).String(), tCached.Round(time.Millisecond).String(),
				speedup, st.Lookups(), st.HitRate())
			gates := float64(len(sp.nl.Gates))
			hitS.X = append(hitS.X, gates)
			hitS.Y = append(hitS.Y, st.HitRate())
			spdS.X = append(spdS.X, gates)
			spdS.Y = append(spdS.Y, speedup)
		}
		printOnce(b, i, func() {
			tb.Fprint(stdout)
			report.WriteSeriesCSV(stdout, []report.Series{hitS, spdS})
		})
	}
}

// BenchmarkThroughput_BatchedPipeline measures multi-window throughput of
// full-chip extraction + ORC on a repeated-context strip chip, in
// windows/sec/core: total windows pushed through the imaging pipeline
// (gate extraction windows + ORC tiles) divided by wall time and by
// GOMAXPROCS. Four modes share the same chip and the same core budget:
//
//	per-window            — the PR 4 baseline path (fork-join, no cache)
//	per-window + cache    — fork-join with the content-addressed cache
//	batched 16            — the staged prep/kernel/post pipeline, no cache
//	batched 16 + cache    — the pipeline with Reserve-classified cache hits
//
// All four produce byte-identical results (pinned by the determinism
// matrix in internal/flow/batch_test.go); this bench quantifies only the
// rate. The headline number recorded in BENCH_throughput.json is the
// speedup of "batched 16 + cache" over "per-window" on the strip chip.
// Under -short a small block runs, sized for the CI smoke step
// (`make bench-throughput`).
func BenchmarkThroughput_BatchedPipeline(b *testing.B) {
	f := getFixtures(b)
	strip := place.Options{RowWidthNM: 2380}
	stripTile := geom.Coord(2 * 2600)
	nl := netlist.DatapathRegular(32, 10, 3)
	if testing.Short() {
		nl = netlist.DatapathRegular(12, 3, 3)
	}
	newFlow := func() *flow.Flow {
		fl, err := flow.New(f.kit, flow.Config{Fast: true})
		if err != nil {
			b.Fatal(err)
		}
		return fl
	}
	pl, err := newFlow().Place(nl, strip)
	if err != nil {
		b.Fatal(err)
	}
	type mode struct {
		name  string
		batch int
		cache bool
	}
	modes := []mode{
		{"per-window", 0, false},
		{"per-window + cache", 0, true},
		{"batched 16", 16, false},
		{"batched 16 + cache", 16, true},
	}
	cores := float64(runtime.GOMAXPROCS(0))
	for i := 0; i < b.N; i++ {
		tb := report.NewTable("throughput: batched window pipeline, strip "+nl.Name+" (fast model)",
			"mode", "windows", "wall", "windows/sec", "windows/sec/core", "speedup")
		rateS := report.Series{Name: "windows_per_sec_per_core"}
		var base time.Duration
		var headline float64
		for mi, md := range modes {
			fl := newFlow()
			if md.cache {
				fl.EnableCache(0)
			}
			t0 := time.Now()
			exts, err := fl.ExtractGates(pl.Chip, nil, flow.ExtractOptions{
				Mode: flow.OPCModel, Batch: md.batch,
			})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := fl.VerifyChip(pl.Chip, flow.ORCOptions{
				Mode: flow.OPCModel, TileNM: stripTile, Batch: md.batch,
			})
			if err != nil {
				b.Fatal(err)
			}
			wall := time.Since(t0)
			windows := len(exts) + rep.Tiles
			rate := float64(windows) / wall.Seconds()
			if mi == 0 {
				base = wall
			}
			speedup := float64(base) / float64(wall)
			if md.batch > 1 && md.cache {
				headline = speedup
			}
			tb.AddF(2, md.name, windows, wall.Round(time.Millisecond).String(),
				rate, rate/cores, speedup)
			rateS.X = append(rateS.X, float64(mi))
			rateS.Y = append(rateS.Y, rate/cores)
		}
		b.ReportMetric(headline, "speedup")
		printOnce(b, i, func() {
			tb.Fprint(stdout)
			report.WriteSeriesCSV(stdout, []report.Series{rateS})
		})
	}
}

// BenchmarkThroughput_GOMAXPROCS measures how the batched window pipeline
// scales with scheduler parallelism: the strip chip runs at GOMAXPROCS 1,
// 4 and 8 (batched 16, cache on — the headline mode of
// BenchmarkThroughput_BatchedPipeline) with an instrumented sink, and the
// table reports windows/sec plus the per-stage busy/wait split of the
// prep → kernel → post pipeline from the par.Pipeline telemetry.
// Occupancy is the busy fraction of each stage's total worker time
// (busy / (busy + wait)) summed over the extraction and ORC runs. Results
// are byte-identical across the series (the flow determinism matrix pins
// worker-count independence); only the rate and the stage overlap change.
// The recorded series lives in BENCH_throughput.json.
func BenchmarkThroughput_GOMAXPROCS(b *testing.B) {
	f := getFixtures(b)
	strip := place.Options{RowWidthNM: 2380}
	stripTile := geom.Coord(2 * 2600)
	nl := netlist.DatapathRegular(32, 10, 3)
	if testing.Short() {
		nl = netlist.DatapathRegular(12, 3, 3)
	}
	newFlow := func() *flow.Flow {
		fl, err := flow.New(f.kit, flow.Config{Fast: true})
		if err != nil {
			b.Fatal(err)
		}
		return fl
	}
	pl, err := newFlow().Place(nl, strip)
	if err != nil {
		b.Fatal(err)
	}
	histSum := func(snap obs.Snapshot, name string) float64 {
		for _, h := range snap.Histograms {
			if h.Name == name {
				return h.Sum
			}
		}
		return 0
	}
	stages := []string{"prep", "kernel", "post"}
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for i := 0; i < b.N; i++ {
		tb := report.NewTable("throughput: batched pipeline GOMAXPROCS series, strip "+nl.Name+" (fast model, batch 16 + cache)",
			"gomaxprocs", "windows", "wall", "windows/sec", "stage busy ms (p/k/p)", "stage wait ms (p/k/p)", "occupancy (p/k/p)")
		rateS := report.Series{Name: "windows_per_sec"}
		for _, procs := range []int{1, 4, 8} {
			runtime.GOMAXPROCS(procs)
			sink := obs.NewSink()
			fl := newFlow().EnableCache(0).EnableObs(sink)
			t0 := time.Now()
			exts, err := fl.ExtractGates(pl.Chip, nil, flow.ExtractOptions{
				Mode: flow.OPCModel, Batch: 16,
			})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := fl.VerifyChip(pl.Chip, flow.ORCOptions{
				Mode: flow.OPCModel, TileNM: stripTile, Batch: 16,
			})
			if err != nil {
				b.Fatal(err)
			}
			wall := time.Since(t0)
			windows := len(exts) + rep.Tiles
			snap := sink.Metrics.Snapshot()
			var busyCol, waitCol, occCol []string
			for _, st := range stages {
				busy := histSum(snap, "par.pipeline_"+st+"_busy_ns")
				wait := histSum(snap, "par.pipeline_"+st+"_wait_ns")
				occ := 0.0
				if busy+wait > 0 {
					occ = busy / (busy + wait)
				}
				busyCol = append(busyCol, fmt.Sprintf("%.0f", busy/1e6))
				waitCol = append(waitCol, fmt.Sprintf("%.0f", wait/1e6))
				occCol = append(occCol, fmt.Sprintf("%.2f", occ))
			}
			rate := float64(windows) / wall.Seconds()
			tb.AddF(2, procs, windows, wall.Round(time.Millisecond).String(), rate,
				strings.Join(busyCol, "/"), strings.Join(waitCol, "/"), strings.Join(occCol, "/"))
			rateS.X = append(rateS.X, float64(procs))
			rateS.Y = append(rateS.Y, rate)
		}
		printOnce(b, i, func() {
			tb.Fprint(stdout)
			report.WriteSeriesCSV(stdout, []report.Series{rateS})
		})
	}
}

// ---------------------------------------------------------------------------
// Extension benches: the companion paper's proposed future work.
// ---------------------------------------------------------------------------

// BenchmarkExt_ContactLayer exercises multi-layer extraction: printed
// contact dimensions through the process window and the contact-resistance
// timing derate they imply.
func BenchmarkExt_ContactLayer(b *testing.B) {
	f := getFixtures(b)
	nl := netlist.InverterChain(6)
	pl, err := f.flw.Place(nl, place.Options{})
	if err != nil {
		b.Fatal(err)
	}
	g, err := f.flw.BuildGraph(nl)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sta.DefaultConfig(2000)
	corners := []litho.Corner{
		litho.Nominal,
		{DefocusNM: 60, Dose: 1},
		{DefocusNM: 120, Dose: 1},
		{DefocusNM: 0, Dose: 0.95},
	}
	for i := 0; i < b.N; i++ {
		tb := report.NewTable("extension: contact-layer extraction (Abbe dark field, u2)",
			"corner", "mean printed W(nm)", "area ratio", "Rc derate", "chain WNS(ps)")
		inst := pl.Chip.FindInstance("u2")
		base, err := g.Analyze(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range corners {
			cext := map[string]*flow.ContactExtraction{}
			for _, gate := range nl.Gates {
				in := pl.Chip.FindInstance(gate.Name)
				ce, err := f.flw.ExtractContacts(pl.Chip, in, c)
				if err != nil {
					b.Fatal(err)
				}
				cext[gate.Name] = ce
			}
			res, err := g.Analyze(cfg, f.flw.WithContacts(sta.Annotations{}, cext))
			if err != nil {
				b.Fatal(err)
			}
			ce := cext[inst.Name]
			var meanW float64
			for _, ct := range ce.Contacts {
				meanW += ct.WNM
			}
			meanW /= float64(len(ce.Contacts))
			tb.AddF(3, c.String(), meanW, ce.MeanAreaRatio, 1/math.Max(ce.MeanAreaRatio, 0.25), res.WNS)
		}
		tb.AddF(3, "ideal contacts", 120.0, 1.0, 1.0, base.WNS)
		printOnce(b, i, func() { tb.Fprint(stdout) })
	}
}

// BenchmarkExt_FullChipORC runs the tiled post-OPC verification pass over a
// placed design through the process window, with and without OPC.
func BenchmarkExt_FullChipORC(b *testing.B) {
	f := getFixtures(b)
	pl, err := f.flw.Place(netlist.RippleCarryAdder(8), place.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tb := report.NewTable("extension: full-chip ORC hotspots (rca8, fast model, window corners)",
			"OPC", "tiles", "CD scans", "pinches", "bridges", "end pullbacks")
		for _, mode := range []flow.OPCMode{flow.OPCNone, flow.OPCModel} {
			rep, err := f.flw.VerifyChip(pl.Chip, flow.ORCOptions{Mode: mode})
			if err != nil {
				b.Fatal(err)
			}
			tb.AddF(0, mode.String(), rep.Tiles, rep.ScannedCDs,
				rep.ByKind[flow.Pinch], rep.ByKind[flow.Bridge], rep.ByKind[flow.EndPullback])
		}
		printOnce(b, i, func() { tb.Fprint(stdout) })
	}
}

// BenchmarkAblation_MCWorkers sweeps the Monte Carlo worker count on the
// evaluation design: workers=1 is the serial baseline, workers=0 the
// GOMAXPROCS default (the speedup BenchmarkE7_CornerVsMonteCarlo inherits).
// Results are seed-deterministic and identical across the sweep.
func BenchmarkAblation_MCWorkers(b *testing.B) {
	f := getFixtures(b)
	exts := f.extractions(b)
	vm, err := flow.BuildVariationModel(exts, f.kit.Window, f.kit.Device.SigmaLRandomNM)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 0} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := vm.MonteCarloWorkers(f.graph, f.cfg, 200, 1, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_ORCWorkers sweeps the tile worker count of the
// full-chip ORC pass (the speedup BenchmarkExt_FullChipORC inherits).
func BenchmarkAblation_ORCWorkers(b *testing.B) {
	f := getFixtures(b)
	pl, err := f.flw.Place(netlist.RippleCarryAdder(8), place.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 0} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := f.flw.VerifyChip(pl.Chip, flow.ORCOptions{Mode: flow.OPCModel, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// fabricateExtractions builds synthetic post-OPC extractions for the given
// gates: real site names and drawn lengths from the cell library, with a
// deterministic per-gate CD response at the four VariationCorners. The
// multi-corner STA benches are about the timing engine, not litho — this
// stands in for an ExtractGates pass at a tiny fraction of its cost.
func fabricateExtractions(b *testing.B, lib *stdcell.Library, nl *netlist.Netlist,
	gates []string, corners []litho.Corner) map[string]*flow.GateExtraction {
	b.Helper()
	exts := map[string]*flow.GateExtraction{}
	for i, name := range gates {
		gi := nl.FindGate(name)
		if gi < 0 {
			b.Fatalf("tagged gate %s not in netlist", name)
		}
		cell := nl.Gates[gi].Cell
		info, err := lib.Get(cell)
		if err != nil {
			b.Fatal(err)
		}
		e := &flow.GateExtraction{Gate: name, Cell: cell, Mode: flow.OPCModel}
		for si, site := range info.Layout.Gates {
			// Deterministic, site- and gate-dependent response: a nominal
			// bias plus distinct defocus and dose sensitivities.
			d0 := float64(site.L()) + 1.2 + 0.15*float64((i+si)%7)
			mk := func(c litho.Corner, delay, leak float64) flow.CornerCD {
				return flow.CornerCD{Corner: c, MeanCD: delay, Nonuniformity: 1.5,
					DelayEL: delay, LeakEL: leak, Printed: true}
			}
			e.Sites = append(e.Sites, flow.SiteCD{
				LocalName: site.Name, Kind: site.Kind, DrawnL: float64(site.L()),
				PerCorner: []flow.CornerCD{
					mk(corners[0], d0, d0-0.6),
					mk(corners[1], d0+2.5, d0+1.4),
					mk(corners[2], d0+1.6, d0+0.9),
					mk(corners[3], d0-1.6, d0-0.9),
				},
			})
		}
		exts[name] = e
	}
	return exts
}

// BenchmarkMultiCornerSTA measures multi-corner process-window sign-off on
// the repeated-context datapath chip (DatapathRegular, the cache bench's
// strip design): a full analysis per corner vs incremental re-analysis from
// the nominal baseline, as single analyses and over the whole (defocus ×
// dose × guardband) grid, serial and corner-parallel. Only the tagged
// critical gates carry annotations — the TagTopK regime the incremental
// engine exploits. Reference numbers: BENCH_sta.json.
func BenchmarkMultiCornerSTA(b *testing.B) {
	f := getFixtures(b)
	chains, depth := 64, 10
	if testing.Short() {
		chains, depth = 12, 3
	}
	nl := netlist.DatapathRegular(chains, depth, 3)
	g, err := f.flw.BuildGraph(nl)
	if err != nil {
		b.Fatal(err)
	}
	probe, err := g.Analyze(sta.DefaultConfig(100000), nil)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sta.DefaultConfig(1.03 * (100000 - probe.WNS))
	cfg.KPaths = 10
	drawn, err := g.Analyze(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	tagged := drawn.CriticalGates(4)
	exts := fabricateExtractions(b, f.flw.Lib, nl, tagged, flow.VariationCorners(f.kit.Window))
	vm, err := flow.BuildVariationModel(exts, f.kit.Window, f.kit.Device.SigmaLRandomNM)
	if err != nil {
		b.Fatal(err)
	}
	gridOpt := flow.MultiCornerSTAOptions{DefocusSteps: 2, DoseSteps: 1, GuardbandKSigma: 3}
	grid := vm.CornerGrid(gridOpt)
	base, err := g.Analyze(cfg, grid[0].Ann)
	if err != nil {
		b.Fatal(err)
	}
	ann := grid[len(grid)-2].Ann // a non-trivial grid corner
	fmt.Fprintf(stdout, "# multi-corner bench: %s, %d gates, %d tagged, %d corners\n",
		nl.Name, len(nl.Gates), len(tagged), len(grid))

	b.Run("analyze/full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := g.Analyze(cfg, ann); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("analyze/incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := g.AnalyzeIncremental(cfg, ann, base); err != nil {
				b.Fatal(err)
			}
		}
	})
	mcOpts := []struct {
		name string
		opt  sta.MultiCornerOptions
	}{
		{"grid/full-serial", sta.MultiCornerOptions{Full: true, Workers: 1}},
		{"grid/incremental-serial", sta.MultiCornerOptions{Workers: 1}},
		{"grid/incremental-parallel", sta.MultiCornerOptions{}},
	}
	for _, m := range mcOpts {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := g.MultiCorner(cfg, grid, m.opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExt_SSTA validates first-order canonical statistical timing
// against Monte Carlo on the evaluation design — the "more rigorous
// statistical timing" direction the paper's abstract points at.
func BenchmarkExt_SSTA(b *testing.B) {
	f := getFixtures(b)
	exts := f.extractions(b)
	vm, err := flow.BuildVariationModel(exts, f.kit.Window, f.kit.Device.SigmaLRandomNM)
	if err != nil {
		b.Fatal(err)
	}
	arcs, err := f.flw.CanonicalArcs(f.nl, vm)
	if err != nil {
		b.Fatal(err)
	}
	p := sta.DefaultSSTAParams()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		ss, err := f.graph.AnalyzeSSTA(f.cfg, p, arcs)
		if err != nil {
			b.Fatal(err)
		}
		tSSTA := time.Since(t0)
		t0 = time.Now()
		mc, err := vm.MonteCarlo(f.graph, f.cfg, 1000, 2)
		if err != nil {
			b.Fatal(err)
		}
		tMC := time.Since(t0)
		printOnce(b, i, func() {
			tb := report.NewTable("extension: canonical SSTA vs Monte Carlo (WNS, ps)",
				"statistic", "SSTA", "MC (N=1000)")
			tb.AddF(2, "mean", ss.WNS.MeanTotal(p), mc.MeanWNS)
			tb.AddF(2, "sigma", ss.WNS.Sigma(p), mc.StdWNS)
			tb.AddF(2, "mean-3sigma", ss.WNS.Quantile(p, -3), mc.Percentile(0.001))
			tb.Fprint(stdout)
			fmt.Fprintf(stdout, "runtime: SSTA %v vs MC %v (%.0fx)\n",
				tSSTA.Round(time.Microsecond), tMC.Round(time.Millisecond),
				float64(tMC)/float64(tSSTA))
		})
	}
}

// BenchmarkExt_SampledMetrology runs the design-driven-metrology flavour of
// the flow: extract only class representatives, spread class means to the
// whole chip, and compare the resulting timing against full extraction.
func BenchmarkExt_SampledMetrology(b *testing.B) {
	f := getFixtures(b)
	full := f.extractions(b)
	plan := metro.NewPlan(f.plc.Chip, 1)
	cov := plan.Coverage()
	// Full-extraction per-site delay ELs at nominal, keyed gate/local.
	measured := map[string]float64{}
	for gate, e := range full {
		for _, s := range e.Sites {
			measured[gate+"/"+s.LocalName] = s.PerCorner[0].DelayEL
		}
	}
	for i := 0; i < b.N; i++ {
		// "Measure" only the plan's sites, infer the rest.
		sampleVals := map[string]float64{}
		for _, s := range plan.Selected {
			sampleVals[s.Gate+"/"+s.Local] = measured[s.Gate+"/"+s.Local]
		}
		inf, err := plan.Infer(sampleVals)
		if err != nil {
			b.Fatal(err)
		}
		preds := inf.PredictAll()
		// Prediction error vs full extraction.
		var sum2 float64
		worst := 0.0
		n := 0
		for key, want := range measured {
			got, ok := preds[key]
			if !ok {
				continue
			}
			d := got - want
			sum2 += d * d
			if math.Abs(d) > worst {
				worst = math.Abs(d)
			}
			n++
		}
		rms := math.Sqrt(sum2 / float64(n))
		// Timing with inferred annotations.
		annFull, err := f.graph.Analyze(f.cfg, flow.Annotations(full, 0))
		if err != nil {
			b.Fatal(err)
		}
		annPred := sta.Annotations{}
		for gate := range full {
			byLocal := map[string]float64{}
			for key, v := range preds {
				if strings.HasPrefix(key, gate+"/") {
					byLocal[strings.TrimPrefix(key, gate+"/")] = v
				}
			}
			lengths := byLocal
			annPred[gate] = func(site layout.GateSite) timinglib.Lengths {
				if l, ok := lengths[site.Name]; ok {
					return timinglib.Lengths{DelayL: l, LeakL: l}
				}
				return timinglib.Drawn(site)
			}
		}
		resPred, err := f.graph.Analyze(f.cfg, annPred)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() {
			tb := report.NewTable("extension: design-driven metrology sampling vs full extraction",
				"metric", "value")
			tb.AddF(0, "gate sites on chip", cov.TotalSites)
			tb.AddF(0, "context classes", cov.Classes)
			tb.AddF(0, "sites measured", cov.Measured)
			tb.AddF(3, "sampling fraction", cov.SamplingFraction)
			tb.AddF(3, "delayEL RMS error (nm)", rms)
			tb.AddF(3, "delayEL worst error (nm)", worst)
			tb.AddF(2, "WNS full extraction (ps)", annFull.WNS)
			tb.AddF(2, "WNS sampled metrology (ps)", resPred.WNS)
			tb.Fprint(stdout)
			// Plan compression depends on layout repetitiveness: regular
			// designs compress far better than the shuffled datapath.
			cmp := report.NewTable("metrology plan compression by design",
				"design", "sites", "classes", "sampling fraction")
			for _, spec := range []struct {
				name string
				nl   func() *netlist.Netlist
			}{
				{"invchain60", func() *netlist.Netlist { return netlist.InverterChain(60) }},
				{"rca8", func() *netlist.Netlist { return netlist.RippleCarryAdder(8) }},
				{"dp32x10 (eval)", func() *netlist.Netlist { return f.nl }},
			} {
				pl2, err := f.flw.Place(spec.nl(), place.Options{})
				if err != nil {
					b.Fatal(err)
				}
				c2 := metro.NewPlan(pl2.Chip, 1).Coverage()
				cmp.AddF(3, spec.name, c2.TotalSites, c2.Classes, c2.SamplingFraction)
			}
			cmp.Fprint(stdout)
		})
	}
}

// BenchmarkExt_RoutedWires compares the flat, HPWL and routed wire-load
// models on the evaluation design.
func BenchmarkExt_RoutedWires(b *testing.B) {
	f := getFixtures(b)
	for i := 0; i < b.N; i++ {
		cfgFlat := f.cfg
		flat, err := f.graph.Analyze(cfgFlat, nil)
		if err != nil {
			b.Fatal(err)
		}
		hp, err := f.flw.WireLoads(f.plc.Chip, f.nl)
		if err != nil {
			b.Fatal(err)
		}
		cfgH := f.cfg
		cfgH.WireLoads = hp
		hpwl, err := f.graph.Analyze(cfgH, nil)
		if err != nil {
			b.Fatal(err)
		}
		rt, err := route.Route(f.plc.Chip, f.nl, f.flw.Lib, route.Options{CapPerUMFF: flow.CWirePerUMFF, ViaCapFF: 0.05})
		if err != nil {
			b.Fatal(err)
		}
		cfgR := f.cfg
		cfgR.WireLoads = rt.Loads()
		routed, err := f.graph.Analyze(cfgR, nil)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() {
			tb := report.NewTable("extension: wire-load models ("+f.nl.Name+")",
				"model", "WNS(ps)", "total wirelength(µm)", "vias")
			tb.AddF(1, "flat per-fanout", flat.WNS, "", "")
			tb.AddF(1, "HPWL estimate", hpwl.WNS, "", "")
			tb.AddF(1, "routed (L-chains)", routed.WNS,
				fmt.Sprintf("%.0f", float64(rt.TotalLengthNM)/1000), fmt.Sprint(rt.TotalVias))
			tb.Fprint(stdout)
		})
	}
}
