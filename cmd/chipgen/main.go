// chipgen generates benchmark gate-level netlists (and optionally a row
// placement) for the post-OPC timing flow.
//
// Usage:
//
//	chipgen -design mult -size 4            # structural Verilog to stdout
//	chipgen -design rca -size 8 -place      # also print placement stats
//	chipgen -design rand -size 200 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"postopc/internal/cli"
	"postopc/internal/netlist"
	"postopc/internal/pdk"
	"postopc/internal/place"
	"postopc/internal/report"
	"postopc/internal/stdcell"
)

func main() {
	design := flag.String("design", "rca", "benchmark: invchain | rca | mult | rand")
	size := flag.Int("size", 8, "design size (stages, bits, or gate count)")
	seed := flag.Int64("seed", 1, "seed for -design rand")
	inputs := flag.Int("inputs", 16, "primary inputs for -design rand")
	doPlace := flag.Bool("place", false, "run the row placer and print stats instead of Verilog")
	out := flag.String("o", "", "output file (default stdout)")
	tel := cli.Telemetry("chipgen")
	flag.Parse()
	tel.Start()
	defer tel.Close()

	n, err := build(*design, *size, *inputs, *seed)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if !*doPlace {
		if err := netlist.WriteVerilog(w, n); err != nil {
			fatal(err)
		}
		return
	}
	lib, err := stdcell.NewLibrary(pdk.N90())
	if err != nil {
		fatal(err)
	}
	res, err := place.Place(n, lib, place.Options{})
	if err != nil {
		fatal(err)
	}
	st := n.Summary()
	tb := report.NewTable("placement of "+n.Name, "metric", "value")
	tb.AddF(0, "gates", st.Gates)
	tb.AddF(0, "inputs", st.Inputs)
	tb.AddF(0, "outputs", st.Outputs)
	tb.AddF(0, "rows", res.Rows)
	tb.AddF(0, "fill cells", res.FillCount)
	tb.Add("die", res.Chip.Die.String())
	tb.Fprint(w)
	cells := report.NewTable("cell usage", "cell", "count")
	for _, name := range sortedCells(st.ByCell) {
		tb := st.ByCell[name]
		cells.AddF(0, name, tb)
	}
	cells.Fprint(w)
}

func build(design string, size, inputs int, seed int64) (*netlist.Netlist, error) {
	switch design {
	case "invchain":
		return netlist.InverterChain(size), nil
	case "rca":
		return netlist.RippleCarryAdder(size), nil
	case "mult":
		return netlist.ArrayMultiplier(size), nil
	case "rand":
		return netlist.RandomLogic(size, inputs, seed), nil
	}
	return nil, fmt.Errorf("unknown design %q (want invchain|rca|mult|rand)", design)
}

func sortedCells(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func fatal(err error) { cli.Fatal("chipgen", err) }
