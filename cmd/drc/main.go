// drc runs the morphological design-rule checker: over the generated N90
// cell library, over a placed benchmark design, or over a layout file in
// the plain-text .plf format.
//
// Usage:
//
//	drc -library                     # check every generated cell
//	drc -design mult -size 4         # generate, place, check full chip
//	drc -plf chip.plf                # check a serialized chip
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"postopc/internal/cli"
	"postopc/internal/drc"
	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/netlist"
	"postopc/internal/pdk"
	"postopc/internal/place"
	"postopc/internal/report"
	"postopc/internal/stdcell"
)

func main() {
	library := flag.Bool("library", false, "check every cell of the generated library")
	design := flag.String("design", "", "benchmark to generate+place+check: invchain | rca | mult | rand")
	size := flag.Int("size", 4, "benchmark size")
	plf := flag.String("plf", "", "check a chip from a .plf layout file")
	limit := flag.Int("limit", 20, "violations to print")
	tel := cli.Telemetry("drc")
	flag.Parse()
	tel.Start()

	p := pdk.N90()
	var violations []drc.Violation
	switch {
	case *library:
		lib, err := stdcell.NewLibrary(p)
		if err != nil {
			fatal(err)
		}
		cells := map[string]*layout.Cell{}
		for name, info := range lib.Cells {
			cells[name] = info.Layout
		}
		byCell := drc.CheckLibrary(p, cells)
		names := make([]string, 0, len(byCell))
		for name := range byCell {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			violations = append(violations, byCell[name]...)
		}
		fmt.Printf("checked %d cells\n", len(cells))
	case *plf != "":
		f, err := os.Open(*plf)
		if err != nil {
			fatal(err)
		}
		parsed, err := layout.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if parsed.Chip == nil {
			fatal(fmt.Errorf("%s contains no chip", *plf))
		}
		violations = checkChip(p, parsed.Chip)
	case *design != "":
		n, err := build(*design, *size)
		if err != nil {
			fatal(err)
		}
		lib, err := stdcell.NewLibrary(p)
		if err != nil {
			fatal(err)
		}
		res, err := place.Place(n, lib, place.Options{})
		if err != nil {
			fatal(err)
		}
		violations = checkChip(p, res.Chip)
	default:
		flag.Usage()
		os.Exit(2)
	}

	if len(violations) == 0 {
		fmt.Println("DRC clean")
		tel.Close()
		return
	}
	tb := report.NewTable(fmt.Sprintf("%d DRC violations", len(violations)),
		"rule", "at", "required(nm)", "context")
	for i, v := range violations {
		if i >= *limit {
			tb.Add("...", fmt.Sprintf("(%d more)", len(violations)-*limit))
			break
		}
		tb.AddF(0, v.Rule, v.At.String(), v.RequiredNM, v.Context)
	}
	tb.Fprint(os.Stdout)
	// A dirty check still produced full telemetry; export before the
	// non-zero exit (os.Exit skips deferred calls).
	tel.Close()
	os.Exit(1)
}

// checkChip tiles the die so window residues stay tractable.
func checkChip(p *pdk.PDK, ch *layout.Chip) []drc.Violation {
	const tile = 20000
	var out []drc.Violation
	die := ch.Die
	for y := die.Y0; y < die.Y1; y += tile {
		for x := die.X0; x < die.X1; x += tile {
			w := geom.R(x-1000, y-1000, x+tile+1000, y+tile+1000)
			out = append(out, drc.CheckWindow(p, ch, w)...)
		}
	}
	fmt.Printf("checked %s (%d instances)\n", ch.Name, len(ch.Instances))
	return out
}

func build(design string, size int) (*netlist.Netlist, error) {
	switch design {
	case "invchain":
		return netlist.InverterChain(size), nil
	case "rca":
		return netlist.RippleCarryAdder(size), nil
	case "mult":
		return netlist.ArrayMultiplier(size), nil
	case "rand":
		return netlist.RandomLogic(size, 16, 1), nil
	}
	return nil, fmt.Errorf("unknown design %q", design)
}

func fatal(err error) { cli.Fatal("drc", err) }
