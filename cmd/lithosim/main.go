// lithosim images a test structure through the process window and reports
// printed CDs — the quickest way to see the patterning substrate at work.
//
// Usage:
//
//	lithosim -width 90 -pitch 340 -defocus 120
//	lithosim -width 90 -pitch 0 -model gauss      # isolated line, fast model
//	lithosim -sweep-pitch 220:600:40 -csv         # CD-through-pitch series
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"postopc/internal/cli"
	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/litho"
	"postopc/internal/pdk"
	"postopc/internal/report"
)

func main() {
	width := flag.Int64("width", 90, "drawn line width (nm)")
	pitch := flag.Int64("pitch", 340, "line pitch (nm, 0 = isolated)")
	count := flag.Int("count", 7, "lines in the array")
	defocus := flag.Float64("defocus", 0, "focus excursion (nm)")
	dose := flag.Float64("dose", 1, "relative dose")
	model := flag.String("model", "abbe", "imaging model: abbe | gauss")
	sweep := flag.String("sweep-pitch", "", "pitch sweep lo:hi:step (nm); prints a CD series")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	svg := flag.String("svg", "", "write an SVG of the drawn mask with the printed contour overlay")
	tel := cli.Telemetry("lithosim")
	flag.Parse()
	tel.Start()
	defer tel.Close()

	p := pdk.N90()
	m, err := buildModel(*model, p)
	if err != nil {
		fatal(err)
	}
	if *sweep != "" {
		if err := sweepPitch(m, *width, *count, *sweep, litho.Corner{DefocusNM: *defocus, Dose: *dose}, *csv); err != nil {
			fatal(err)
		}
		return
	}
	corner := litho.Corner{DefocusNM: *defocus, Dose: *dose}
	if *svg != "" {
		if err := writeSVG(m, *width, *pitch, *count, corner, *svg); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *svg)
	}
	cd, ils, err := measure(m, *width, *pitch, *count, corner)
	if err != nil {
		fatal(err)
	}
	tb := report.NewTable(fmt.Sprintf("printed CD (%s model)", *model),
		"drawn(nm)", "pitch(nm)", "defocus(nm)", "dose", "printed(nm)", "ILS(1/µm)")
	tb.AddF(2, float64(*width), float64(*pitch), *defocus, *dose, cd, ils*1000)
	if *csv {
		tb.CSV(os.Stdout)
	} else {
		tb.Fprint(os.Stdout)
	}
}

func buildModel(name string, p *pdk.PDK) (litho.Model, error) {
	switch name {
	case "abbe":
		return litho.NewAbbe(p.Litho)
	case "gauss":
		return p.FastModel()
	}
	return nil, fmt.Errorf("unknown model %q", name)
}

func measure(m litho.Model, width, pitch int64, count int, c litho.Corner) (cd, ils float64, err error) {
	r := m.Recipe()
	la := litho.LineArray{WidthNM: geom.Coord(width), PitchNM: geom.Coord(pitch),
		Count: count, LengthNM: geom.Coord(width) * 16}
	mask := litho.RasterizeRects(la.Rects(), r.PixelNM, r.GuardNM)
	im, err := m.Aerial(mask, c)
	if err != nil {
		return 0, 0, err
	}
	centers := la.CenterXs()
	mid := centers[len(centers)/2]
	half := float64(pitch) / 2
	if pitch == 0 {
		half = float64(width) * 4
	}
	th := r.EffectiveThreshold(c)
	res := im.MeasureCD(litho.AxisX, 0, mid-half, mid+half, mid, th, r.Polarity)
	if !res.OK {
		return 0, 0, fmt.Errorf("feature did not print (w=%d p=%d %v)", width, pitch, c)
	}
	return res.CD, im.ILS(res.Hi, 0, 1, 0), nil
}

func sweepPitch(m litho.Model, width int64, count int, spec string, c litho.Corner, csv bool) error {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return fmt.Errorf("bad sweep spec %q (want lo:hi:step)", spec)
	}
	lo, err1 := strconv.ParseInt(parts[0], 10, 64)
	hi, err2 := strconv.ParseInt(parts[1], 10, 64)
	step, err3 := strconv.ParseInt(parts[2], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil || step <= 0 {
		return fmt.Errorf("bad sweep spec %q", spec)
	}
	tb := report.NewTable("CD through pitch", "pitch(nm)", "printed(nm)", "bias(nm)")
	for pt := lo; pt <= hi; pt += step {
		cd, _, err := measure(m, width, pt, count, c)
		if err != nil {
			tb.Add(strconv.FormatInt(pt, 10), "fail", "")
			continue
		}
		tb.AddF(2, float64(pt), cd, cd-float64(width))
	}
	if csv {
		tb.CSV(os.Stdout)
	} else {
		tb.Fprint(os.Stdout)
	}
	return nil
}

// writeSVG renders the drawn line array with the printed contour overlaid.
func writeSVG(m litho.Model, width, pitch int64, count int, c litho.Corner, path string) error {
	r := m.Recipe()
	la := litho.LineArray{WidthNM: geom.Coord(width), PitchNM: geom.Coord(pitch),
		Count: count, LengthNM: geom.Coord(width) * 16}
	rects := la.Rects()
	mask := litho.RasterizeRects(rects, r.PixelNM, r.GuardNM)
	im, err := m.Aerial(mask, c)
	if err != nil {
		return err
	}
	contours := im.Contours(r.EffectiveThreshold(c), r.Polarity)
	var bb geom.Rect
	for _, rc := range rects {
		bb = bb.Union(rc)
	}
	s := layout.NewSVG(bb.Expand(200), 900)
	s.AddRects(layout.LayerPoly, rects)
	s.AddOverlay(contours, "fill:none;stroke:#111;stroke-width:1.5")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Write(f)
}

func fatal(err error) { cli.Fatal("lithosim", err) }
