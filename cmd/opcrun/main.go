// opcrun applies OPC to a test structure and reports residual edge
// placement errors before and after correction, with an EPE histogram.
//
// Usage:
//
//	opcrun -width 90 -pitch 340 -mode model
//	opcrun -width 90 -pitch 0 -mode rule -model gauss
//	opcrun -width 90 -batch 64 -ledger run.ledger
package main

import (
	"flag"
	"fmt"
	"os"

	"time"

	"postopc/internal/cli"
	"postopc/internal/geom"
	"postopc/internal/litho"
	"postopc/internal/obs"
	"postopc/internal/opc"
	"postopc/internal/pdk"
	"postopc/internal/report"
)

func main() {
	width := flag.Int64("width", 90, "drawn line width (nm)")
	pitch := flag.Int64("pitch", 340, "line pitch (nm, 0 = isolated)")
	count := flag.Int("count", 5, "lines in the array")
	mode := flag.String("mode", "model", "correction: rule | model")
	model := flag.String("model", "gauss", "imaging model: abbe | gauss")
	iters := flag.Int("iters", 8, "model-based OPC iterations")
	batch := flag.Int("batch", 0, "after correction, image the mask N times through the batched aerial path and report windows/sec vs per-window (0 = skip)")
	tel := cli.Telemetry("opcrun")
	flag.Parse()
	tel.Start()

	p := pdk.N90()
	var m litho.Model
	var err error
	switch *model {
	case "abbe":
		m, err = litho.NewAbbe(p.Litho)
	case "gauss":
		m, err = p.FastModel()
	default:
		err = fmt.Errorf("unknown model %q", *model)
	}
	if err != nil {
		fatal(err)
	}
	if im, ok := m.(interface{ Instrument(*obs.Sink) }); ok {
		im.Instrument(tel.Sink)
	}
	litho.InstrumentPools(tel.Sink)

	la := litho.LineArray{WidthNM: geom.Coord(*width), PitchNM: geom.Coord(*pitch),
		Count: *count, LengthNM: geom.Coord(*width) * 14}
	var drawn []geom.Polygon
	for _, r := range la.Rects() {
		drawn = append(drawn, r.Polygon())
	}

	// Baseline: EPE of the uncorrected mask.
	sp := tel.Sink.Start("opc.verify.baseline")
	targets := fragmentAll(drawn)
	epes0, st0, err := opc.Verify(m, drawn, nil, targets, litho.Nominal, 8)
	sp.End()
	if err != nil {
		fatal(err)
	}

	sp = tel.Sink.Start("opc.correct")
	var corrected []geom.Polygon
	var epes1 []float64
	var st1 opc.EPEStats
	switch *mode {
	case "rule":
		rt, err := opc.BuildRuleTable(m, geom.Coord(*width), []geom.Coord{160, 250, 420, 700, 1200})
		if err != nil {
			fatal(err)
		}
		var ctx geom.Region
		for _, pg := range drawn {
			ctx = append(ctx, geom.RegionFromPolygon(pg)...)
		}
		corrected, err = opc.RuleBased(drawn, ctx.Normalize(), rt, opc.DefaultFragmentOptions(), 1500)
		if err != nil {
			fatal(err)
		}
		epes1, st1, err = opc.Verify(m, corrected, nil, fragmentAll(drawn), litho.Nominal, 8)
		if err != nil {
			fatal(err)
		}
	case "model":
		opt := opc.DefaultOptions()
		opt.Iterations = *iters
		res, err := opc.ModelBased(m, drawn, nil, opt)
		if err != nil {
			fatal(err)
		}
		corrected = res.Polygons
		epes1 = res.FinalEPE
		st1 = opc.SummarizeEPE(epes1, 8)
		fmt.Printf("model OPC: %d iterations, %d simulations\n", res.Iterations, res.Sims)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	sp.End()

	tb := report.NewTable("residual EPE ("+*mode+" OPC, "+*model+" model)",
		"stage", "n", "mean(nm)", "sigma(nm)", "max|EPE|", "p95|EPE|", "violations")
	tb.AddF(2, "uncorrected", st0.Count, st0.Mean, st0.Std, st0.MaxAbs, st0.P95Abs, st0.Violations)
	tb.AddF(2, "corrected", st1.Count, st1.Mean, st1.Std, st1.MaxAbs, st1.P95Abs, st1.Violations)
	tb.Fprint(os.Stdout)

	h0 := opc.NewHistogram(epes0, -30, 30, 12)
	h1 := opc.NewHistogram(epes1, -30, 30, 12)
	report.Histogram(os.Stdout, "EPE before OPC (nm)", h0.LoNM, h0.WidthNM, h0.Counts, 40)
	report.Histogram(os.Stdout, "EPE after OPC (nm)", h1.LoNM, h1.WidthNM, h1.Counts, 40)

	// Mask complexity: vertex counts.
	v0, v1 := 0, 0
	for _, pg := range drawn {
		v0 += len(pg)
	}
	for _, pg := range corrected {
		v1 += len(pg)
	}
	fmt.Printf("mask vertices: %d drawn -> %d corrected\n", v0, v1)

	if *batch > 1 {
		if err := batchSmoke(m, corrected, la, *batch); err != nil {
			fatal(err)
		}
	}
	tel.Close()
}

// batchSmoke images the corrected mask batch-many times through the model's
// batched aerial entry point and again per-window, reporting both rates.
// The results are bit-identical by the BatchModel contract; this smoke
// shows the amortization (FFT plan, filter bank, scratch) on a controlled
// pattern.
func batchSmoke(m litho.Model, corrected []geom.Polygon, la litho.LineArray, batch int) error {
	bm, ok := m.(litho.BatchModel)
	if !ok {
		return fmt.Errorf("model has no batched imaging path")
	}
	recipe := m.Recipe()
	rs := la.Rects()
	win := rs[0]
	for _, r := range rs[1:] {
		win = win.Union(r)
	}
	raster := litho.RasterizeInWindow(corrected, win.Expand(recipe.GuardNM), recipe.PixelNM)
	defer litho.RecycleRaster(raster)
	masks := make([]*geom.Raster, batch)
	for i := range masks {
		masks[i] = raster
	}
	corners := []litho.Corner{litho.Nominal}
	t0 := time.Now()
	if _, err := bm.AerialBatch(masks, corners); err != nil {
		return err
	}
	dBatch := time.Since(t0)
	t0 = time.Now()
	for i := 0; i < batch; i++ {
		if _, err := m.AerialSeries(raster, corners); err != nil {
			return err
		}
	}
	dSingle := time.Since(t0)
	rate := func(d time.Duration) float64 { return float64(batch) / d.Seconds() }
	fmt.Printf("batched imaging: %d windows in %v (%.1f windows/sec) vs per-window %v (%.1f windows/sec)\n",
		batch, dBatch, rate(dBatch), dSingle, rate(dSingle))
	return nil
}

func fragmentAll(polys []geom.Polygon) []*opc.FragmentedPolygon {
	var out []*opc.FragmentedPolygon
	for _, pg := range polys {
		fp, err := opc.Fragmentize(pg, opc.DefaultFragmentOptions())
		if err != nil {
			fatal(err)
		}
		out = append(out, fp)
	}
	return out
}

func fatal(err error) { cli.Fatal("opcrun", err) }
