// Command postopc-lint runs the repository's static-analysis suite (see
// internal/analysis/suite) over Go packages.
//
// Standalone, it takes go-list package patterns:
//
//	postopc-lint ./...
//
// It also speaks enough of the go vet tool protocol (-V=full, -flags, and
// JSON .cfg package units) to run as
//
//	go vet -vettool=$(which postopc-lint) ./...
//
// which additionally covers test files. Findings print as
// file:line:col: analyzer: message; the exit status is non-zero when any
// finding survives //postopc:nolint filtering.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"postopc/internal/analysis"
	"postopc/internal/analysis/load"
	"postopc/internal/analysis/suite"
	"postopc/internal/cli"
)

func main() {
	var patterns []string
	var cfg string
	for _, arg := range os.Args[1:] {
		switch {
		case strings.HasPrefix(arg, "-V"):
			printVersion()
			return
		case arg == "-flags":
			// The go command queries supported flags as a JSON array; the
			// suite has none.
			fmt.Println("[]")
			return
		case strings.HasSuffix(arg, ".cfg"):
			cfg = arg
		case strings.HasPrefix(arg, "-"):
			// Tolerate pass-through vet flags (-json, -c=N, ...).
		default:
			patterns = append(patterns, arg)
		}
	}
	if cfg != "" {
		os.Exit(unitCheck(cfg))
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		cli.Fatal("postopc-lint", err)
	}
	total := 0
	for _, pkg := range pkgs {
		n, err := runSuite(pkg.Fset, pkg.Syntax, pkg.Types, pkg.Info, os.Stdout)
		if err != nil {
			cli.Fatal("postopc-lint", err)
		}
		total += n
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "postopc-lint: %d finding(s)\n", total)
		os.Exit(1)
	}
}

// runSuite applies every analyzer to one package, printing findings to w.
func runSuite(fset *token.FileSet, files []*ast.File, tpkg *types.Package, info *types.Info, w io.Writer) (int, error) {
	n := 0
	for _, a := range suite.Analyzers {
		findings, err := analysis.Run(a, fset, files, tpkg, info)
		if err != nil {
			return n, err
		}
		for _, f := range findings {
			fmt.Fprintln(w, f)
			n++
		}
	}
	return n, nil
}

// printVersion implements the -V=full tool-identification handshake; the
// go command folds the output into its build cache key, so it hashes the
// executable to change whenever the suite does.
func printVersion() {
	sum := [sha256.Size]byte{}
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum = sha256.Sum256(data)
		}
	}
	fmt.Printf("postopc-lint version devel buildID=%x\n", sum[:8])
}

// vetConfig is the package unit description the go command hands vet
// tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitCheck analyzes one go-vet package unit and returns the process exit
// code.
func unitCheck(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "postopc-lint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "postopc-lint: parsing %s: %v\n", path, err)
		return 1
	}
	// The protocol requires the facts file regardless; the suite exports
	// none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("postopc-lint: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "postopc-lint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "postopc-lint:", err)
			return 1
		}
		files = append(files, f)
	}
	info := analysis.NewInfo()
	tpkg, err := typeCheckUnit(&cfg, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "postopc-lint:", err)
		return 1
	}
	n, err := runSuite(fset, files, tpkg, info, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "postopc-lint:", err)
		return 1
	}
	if n > 0 {
		return 2
	}
	return 0
}

// typeCheckUnit type-checks a vet package unit, preferring the compiler
// export data the go command already produced and falling back to
// source-based resolution.
func typeCheckUnit(cfg *vetConfig, fset *token.FileSet, files []*ast.File, info *types.Info) (*types.Package, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err == nil {
		return tpkg, nil
	}
	// Fallback: resolve imports from source, as the standalone mode does.
	srcInfo := analysis.NewInfo()
	src := types.Config{Importer: sourceImporter{
		from: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		dir:  cfg.Dir,
		imap: cfg.ImportMap,
	}}
	tpkg, srcErr := src.Check(cfg.ImportPath, fset, files, srcInfo)
	if srcErr != nil {
		return nil, fmt.Errorf("typecheck %s: %v (source fallback: %v)", cfg.ImportPath, err, srcErr)
	}
	*info = *srcInfo
	return tpkg, nil
}

// sourceImporter resolves vet-unit imports from source, mapping
// test-variant import paths back to their canonical packages.
type sourceImporter struct {
	from types.ImporterFrom
	dir  string
	imap map[string]string
}

func (s sourceImporter) Import(path string) (*types.Package, error) {
	if canon, ok := s.imap[path]; ok {
		// Test-variant paths look like "pkg [pkg.test]"; strip the variant.
		if i := strings.IndexByte(canon, ' '); i >= 0 {
			canon = canon[:i]
		}
		path = canon
	}
	return s.from.ImportFrom(path, s.dir, 0)
}
