// Command postopc-lint runs the repository's static-analysis suite (see
// internal/analysis/suite) over Go packages.
//
// Standalone, it takes go-list package patterns plus flags:
//
//	postopc-lint [-json] [-timing] [-j N] [-ledger file] ./...
//
// -json renders findings as SARIF 2.1.0 on stdout (CI ingests the file as
// a code-scanning artifact); the default is file:line:col: analyzer:
// message text. -timing prints per-analyzer wall-clock to stderr.
// -ledger writes a run ledger (manifest, per-analyzer latency, finding
// count) that postopc-report can summarize and diff. -j
// bounds the driver's worker pool (0 = GOMAXPROCS, 1 = serial); output is
// byte-identical at any setting. Packages are analyzed in dependency
// order so analyzer facts (cache-key coverage, allocation-freedom) flow
// across package boundaries.
//
// It also speaks enough of the go vet tool protocol (-V=full, -flags, and
// JSON .cfg package units) to run as
//
//	go vet -vettool=$(which postopc-lint) ./...
//
// which additionally covers test files. In that mode facts travel between
// package units through the .vetx files the protocol provides: imported
// units' facts are decoded from PackageVetx, this unit's exported facts
// are gob-encoded to VetxOutput. The exit status is non-zero when any
// finding survives //postopc:nolint filtering.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"postopc/internal/analysis"
	"postopc/internal/analysis/driver"
	"postopc/internal/analysis/load"
	"postopc/internal/analysis/sarif"
	"postopc/internal/analysis/suite"
	"postopc/internal/cli"
	"postopc/internal/obs"
)

func main() {
	var patterns []string
	var cfg, ledger string
	var jsonOut, timing bool
	workers := 0
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		arg := args[i]
		switch {
		case strings.HasPrefix(arg, "-V"):
			printVersion()
			return
		case arg == "-flags":
			// The go command queries supported flags as a JSON array; the
			// suite has none it wants vet to forward.
			fmt.Println("[]")
			return
		case arg == "-json":
			jsonOut = true
		case arg == "-timing":
			timing = true
		case strings.HasPrefix(arg, "-ledger="):
			ledger = strings.TrimPrefix(arg, "-ledger=")
		case arg == "-ledger" && i+1 < len(args):
			i++
			ledger = args[i]
		case strings.HasPrefix(arg, "-j="):
			n, err := strconv.Atoi(strings.TrimPrefix(arg, "-j="))
			if err != nil {
				cli.Fatal("postopc-lint", fmt.Errorf("bad -j value %q", arg))
			}
			workers = n
		case arg == "-j" && i+1 < len(args):
			i++
			n, err := strconv.Atoi(args[i])
			if err != nil {
				cli.Fatal("postopc-lint", fmt.Errorf("bad -j value %q", args[i]))
			}
			workers = n
		case strings.HasSuffix(arg, ".cfg"):
			cfg = arg
		case strings.HasPrefix(arg, "-"):
			// Tolerate pass-through vet flags (-c=N, ...).
		default:
			patterns = append(patterns, arg)
		}
	}
	if cfg != "" {
		os.Exit(unitCheck(cfg))
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		cli.Fatal("postopc-lint", err)
	}
	res, err := driver.Run(pkgs, suite.Analyzers, driver.Options{Workers: workers})
	if err != nil {
		cli.Fatal("postopc-lint", err)
	}
	if timing {
		printTimings(os.Stderr, res.Timings)
	}
	if ledger != "" {
		if err := writeLintLedger(ledger, pkgs, res); err != nil {
			cli.Fatal("postopc-lint", err)
		}
		fmt.Fprintln(os.Stderr, "postopc-lint: wrote run ledger to", ledger)
	}
	if jsonOut {
		root, _ := os.Getwd()
		if err := sarif.Write(os.Stdout, sarif.New("postopc-lint", suite.Analyzers, res.Findings, root)); err != nil {
			cli.Fatal("postopc-lint", err)
		}
	} else {
		for _, f := range res.Findings {
			fmt.Println(f)
		}
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "postopc-lint: %d finding(s)\n", len(res.Findings))
		os.Exit(1)
	}
}

// writeLintLedger exports a lint run as a run ledger: build manifest,
// suite shape, per-analyzer wall-clock and the finding count — enough for
// postopc-report to diff two lint runs like any other tool's ledger.
func writeLintLedger(path string, pkgs []*load.Package, res *driver.Result) error {
	sink := obs.NewSink().WithJournal(0)
	bi := obs.GetBuildInfo()
	sink.Journal.SetManifest(obs.Manifest{
		Tool:        "postopc-lint",
		Args:        os.Args[1:],
		GoVersion:   bi.GoVersion,
		GOOS:        bi.GOOS,
		GOARCH:      bi.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		VekLevel:    bi.VekLevel,
		CPUFeatures: bi.CPUFeatures,
		Module:      bi.Module,
	})
	sink.Journal.SetField("lint.packages", strconv.Itoa(len(pkgs)))
	sink.Journal.SetField("lint.analyzers", strconv.Itoa(len(suite.Analyzers)))
	sink.Counter("lint.findings_total").Add(uint64(len(res.Findings)))
	for _, t := range res.Timings {
		sink.LatencyHistogram("lint." + t.Analyzer + "_ns").Observe(float64(t.Nanos))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := sink.WriteLedger(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// printTimings reports per-analyzer wall-clock, slowest first. Timing is
// diagnostic output only: it goes to stderr and never into SARIF, which
// stays byte-deterministic.
func printTimings(w io.Writer, ts []driver.Timing) {
	sorted := append([]driver.Timing(nil), ts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Nanos != sorted[j].Nanos {
			return sorted[i].Nanos > sorted[j].Nanos
		}
		return sorted[i].Analyzer < sorted[j].Analyzer
	})
	for _, t := range sorted {
		fmt.Fprintf(w, "postopc-lint: timing %-12s %9.2fms\n", t.Analyzer, float64(t.Nanos)/1e6)
	}
}

// printVersion implements the -V=full tool-identification handshake; the
// go command folds the output into its build cache key, so it hashes the
// executable to change whenever the suite does.
func printVersion() {
	sum := [sha256.Size]byte{}
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum = sha256.Sum256(data)
		}
	}
	fmt.Printf("postopc-lint version devel buildID=%x\n", sum[:8])
}

// vetConfig is the package unit description the go command hands vet
// tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitCheck analyzes one go-vet package unit and returns the process exit
// code. Facts cross unit boundaries through the protocol's .vetx files:
// imported units' facts are decoded before the run, this unit's exported
// facts are encoded after it.
func unitCheck(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "postopc-lint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "postopc-lint: parsing %s: %v\n", path, err)
		return 1
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "postopc-lint:", err)
			return 1
		}
		files = append(files, f)
	}
	info := analysis.NewInfo()
	tpkg, err := typeCheckUnit(&cfg, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "postopc-lint:", err)
		return 1
	}
	analysis.RegisterFactTypes(suite.Analyzers)
	facts := analysis.NewFacts()
	importFacts(&cfg, tpkg, facts)
	n := 0
	for _, a := range suite.Analyzers {
		if cfg.VetxOnly && len(a.FactTypes) == 0 {
			// A vetx-only unit exists purely to supply facts to its
			// importers; fact-free analyzers have nothing to contribute.
			continue
		}
		findings, err := analysis.RunWithFacts(a, fset, files, tpkg, info, facts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "postopc-lint:", err)
			return 1
		}
		if cfg.VetxOnly {
			continue
		}
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
			n++
		}
	}
	if cfg.VetxOutput != "" {
		enc, err := facts.Encode(tpkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "postopc-lint:", err)
			return 1
		}
		if err := os.WriteFile(cfg.VetxOutput, enc, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "postopc-lint:", err)
			return 1
		}
	}
	if n > 0 {
		return 2
	}
	return 0
}

// importFacts decodes the .vetx facts of every imported unit the go
// command provided. Missing or unreadable files are skipped — a unit
// without exported facts writes an empty file, and a fact that cannot be
// resolved is one no pass will ask for.
func importFacts(cfg *vetConfig, tpkg *types.Package, facts *analysis.Facts) {
	byPath := map[string]*types.Package{}
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		if _, ok := byPath[p.Path()]; ok {
			return
		}
		byPath[p.Path()] = p
		for _, imp := range p.Imports() {
			walk(imp)
		}
	}
	for _, imp := range tpkg.Imports() {
		walk(imp)
	}
	for ipath, vetx := range cfg.PackageVetx {
		canon := ipath
		if c, ok := cfg.ImportMap[ipath]; ok {
			canon = c
		}
		// Test-variant paths look like "pkg [pkg.test]"; strip the variant.
		if i := strings.IndexByte(canon, ' '); i >= 0 {
			canon = canon[:i]
		}
		pkg, ok := byPath[canon]
		if !ok {
			continue
		}
		data, err := os.ReadFile(vetx)
		if err != nil {
			continue
		}
		// Tolerate facts files from older builds of the tool.
		_ = facts.Decode(pkg, data)
	}
}

// typeCheckUnit type-checks a vet package unit, preferring the compiler
// export data the go command already produced and falling back to
// source-based resolution.
func typeCheckUnit(cfg *vetConfig, fset *token.FileSet, files []*ast.File, info *types.Info) (*types.Package, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err == nil {
		return tpkg, nil
	}
	// Fallback: resolve imports from source, as the standalone mode does.
	srcInfo := analysis.NewInfo()
	src := types.Config{Importer: sourceImporter{
		from: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		dir:  cfg.Dir,
		imap: cfg.ImportMap,
	}}
	tpkg, srcErr := src.Check(cfg.ImportPath, fset, files, srcInfo)
	if srcErr != nil {
		return nil, fmt.Errorf("typecheck %s: %v (source fallback: %v)", cfg.ImportPath, err, srcErr)
	}
	*info = *srcInfo
	return tpkg, nil
}

// sourceImporter resolves vet-unit imports from source, mapping
// test-variant import paths back to their canonical packages.
type sourceImporter struct {
	from types.ImporterFrom
	dir  string
	imap map[string]string
}

func (s sourceImporter) Import(path string) (*types.Package, error) {
	if canon, ok := s.imap[path]; ok {
		// Test-variant paths look like "pkg [pkg.test]"; strip the variant.
		if i := strings.IndexByte(canon, ' '); i >= 0 {
			canon = canon[:i]
		}
		path = canon
	}
	return s.from.ImportFrom(path, s.dir, 0)
}
