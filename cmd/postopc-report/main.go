// postopc-report renders and compares run ledgers — the observatory half
// of the run-ledger pipeline. Every tool writes a ledger with -ledger;
// this command turns one into human tables and two into a regression
// verdict.
//
// Usage:
//
//	postopc-report summary run.ledger
//	postopc-report diff base.ledger new.ledger
//	postopc-report diff -threshold 50 -t stage.image.p99_ns=25 base.ledger new.ledger
//	postopc-report diff -map stage.image.p50_ns=bench.BenchmarkAerial.engine.ns_per_op BENCH_litho.json new.ledger
//
// diff compares the intersection of the two metric sets (exact stage
// percentiles, histogram quantiles, span totals, counters, cache hit
// rate) and exits non-zero when any metric worsened past its threshold:
// the default -threshold percentage, overridden per metric with
// -t name=pct. Either side may be a run ledger or a committed
// BENCH_*.json baseline (the format is sniffed); -map renames
// current-run series onto baseline names so the two can be paired.
// -min-ns drops latency rows whose baseline is below the floor —
// sub-resolution timings are noise, not signal.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"postopc/internal/cli"
	"postopc/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "summary":
		summary(os.Args[2:])
	case "diff":
		diff(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "postopc-report: unknown command %q\n\n", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  postopc-report summary <ledger>
  postopc-report diff [-threshold pct] [-t name=pct] [-map cur=base] [-min-ns N] <base> <new>

summary renders one run ledger as tables; diff compares two runs (ledger
or BENCH_*.json baseline, sniffed) and exits 1 when a shared metric
worsened past its threshold.`)
	os.Exit(2)
}

// summary renders one ledger's tables.
func summary(args []string) {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	led := readLedgerFile(fs.Arg(0))
	for _, tb := range led.SummaryTables() {
		tb.Fprint(os.Stdout)
	}
}

// repeatable flag collecting name=value pairs into a map.
type pairsFlag struct {
	m     map[string]string
	usage string
}

func (p *pairsFlag) String() string { return "" }

func (p *pairsFlag) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want %s, got %q", p.usage, s)
	}
	if p.m == nil {
		p.m = map[string]string{}
	}
	p.m[name] = val
	return nil
}

// diff compares a current run against a baseline and sets the exit code.
func diff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 20, "default allowed worsening (percent)")
	minNS := fs.Float64("min-ns", 0, "ignore latency metrics whose baseline is below this floor (ns)")
	perMetric := &pairsFlag{usage: "name=pct"}
	fs.Var(perMetric, "t", "per-metric threshold override, name=pct (repeatable)")
	rename := &pairsFlag{usage: "cur=base"}
	fs.Var(rename, "map", "pair a current-run metric with a baseline name, cur=base (repeatable)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	base := readMetricsFile(fs.Arg(0))
	cur := readMetricsFile(fs.Arg(1))

	opt := obs.DiffOptions{ThresholdPct: *threshold, MinNS: *minNS, Rename: rename.m}
	if len(perMetric.m) > 0 {
		opt.PerMetric = map[string]float64{}
		for name, val := range perMetric.m {
			pct, err := strconv.ParseFloat(val, 64)
			if err != nil {
				fatal(fmt.Errorf("bad -t %s=%s: %v", name, val, err))
			}
			opt.PerMetric[name] = pct
		}
	}
	res := obs.Diff(base, cur, opt)
	if len(res.Rows) == 0 {
		fatal(fmt.Errorf("no shared metrics between %s and %s (use -map to pair series)", fs.Arg(0), fs.Arg(1)))
	}
	res.Table().Fprint(os.Stdout)
	if res.Regressions > 0 {
		fmt.Fprintf(os.Stderr, "postopc-report: %d metric(s) regressed past threshold\n", res.Regressions)
		os.Exit(1)
	}
	fmt.Printf("no regressions across %d shared metric(s)\n", len(res.Rows))
}

// readLedgerFile parses a run ledger or dies.
func readLedgerFile(path string) *obs.Ledger {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	led, err := obs.ReadLedger(bytes.NewReader(data))
	if err != nil {
		fatal(fmt.Errorf("%s: %v", path, err))
	}
	return led
}

// readMetricsFile loads either side of a diff, sniffing the format: a
// JSON-lines run ledger or a BENCH_*.json baseline document.
func readMetricsFile(path string) map[string]float64 {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	if led, err := obs.ReadLedger(bytes.NewReader(data)); err == nil {
		return led.Metrics()
	}
	m, err := obs.ReadBenchMetrics(bytes.NewReader(data))
	if err != nil {
		fatal(fmt.Errorf("%s: neither a run ledger nor a bench baseline: %v", path, err))
	}
	return m
}

func fatal(err error) { cli.Fatal("postopc-report", err) }
