// postopc-sta runs the paper's full pipeline on a benchmark or user
// netlist: place → tag critical gates → OPC → litho simulation → post-OPC
// CD extraction → equivalent lengths → back-annotated STA, reporting the
// drawn-vs-silicon slack shifts and the speed-path criticality reordering.
//
// Usage:
//
//	postopc-sta -design mult -size 4 -clock 2200
//	postopc-sta -netlist design.v -clock 1800 -mode model -topk 10
//	postopc-sta -design rca -size 8 -clock 2600 -mc 500
//	postopc-sta -design rca -size 8 -corners -defocus-steps 3 -dose-steps 2
//	postopc-sta -design rca -size 8 -trace run.json -metrics metrics.prom
//	postopc-sta -design rca -size 8 -cache -ledger run.ledger
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"postopc/internal/cli"
	"postopc/internal/flow"
	"postopc/internal/netlist"
	"postopc/internal/pdk"
	"postopc/internal/report"
	"postopc/internal/sta"
)

func main() {
	design := flag.String("design", "rca", "benchmark: invchain | rca | mult | rand")
	size := flag.Int("size", 4, "benchmark size")
	seed := flag.Int64("seed", 1, "seed for -design rand")
	file := flag.String("netlist", "", "structural Verilog netlist (overrides -design)")
	clock := flag.Float64("clock", 0, "clock period (ps); 0 = auto (2% above drawn critical path)")
	mode := flag.String("mode", "model", "OPC: none | rule | model")
	fast := flag.Bool("fast", false, "verify with the fast Gaussian model instead of Abbe")
	topk := flag.Int("topk", 0, "extract only gates on the K worst drawn paths (0 = all)")
	mc := flag.Int("mc", 0, "Monte Carlo samples over the process window (0 = skip)")
	corners := flag.Bool("corners", false, "multi-corner sign-off: merged worst slack over the (defocus x dose) grid plus a 3-sigma guardband corner")
	defocusSteps := flag.Int("defocus-steps", 2, "defocus grid points beyond nominal for -corners")
	doseSteps := flag.Int("dose-steps", 1, "dose grid points on each side of nominal for -corners")
	kpaths := flag.Int("paths", 5, "worst paths to report")
	orc := flag.Bool("orc", false, "run full-chip ORC (hotspot scan) after the flow")
	contacts := flag.Bool("contacts", false, "multi-layer extraction: annotate contact resistance too")
	wires := flag.Bool("wires", false, "use placement-derived (HPWL) wire loads instead of flat per-fanout caps")
	libOut := flag.String("lib", "", "export a Liberty-flavored .lib of the drawn library to this file")
	jobs := flag.Int("j", 0, "worker goroutines for extraction, ORC and Monte Carlo (0 = GOMAXPROCS, 1 = serial); results are identical for any value")
	batch := flag.Int("batch", 0, "stream extraction and ORC windows through the batched pipeline in groups of N (0/1 = per-window); results are identical for any value")
	useCache := flag.Bool("cache", false, "recall repeated layout contexts from the content-addressed pattern cache; results are byte-identical with and without it")
	cacheSize := flag.Int("cache-size", 0, "pattern cache capacity in artifacts (0 = default); implies -cache")
	tel := cli.Telemetry("postopc-sta")
	flag.Parse()
	tel.Start()

	n, err := loadNetlist(*file, *design, *size, *seed)
	if err != nil {
		fatal(err)
	}
	p := pdk.N90()
	f, err := flow.New(p, flow.Config{Fast: *fast})
	if err != nil {
		fatal(err)
	}
	opcMode, err := parseMode(*mode)
	if err != nil {
		fatal(err)
	}
	if *useCache || *cacheSize > 0 {
		f.EnableCache(*cacheSize)
	}
	f.EnableObs(tel.Sink)

	if *libOut != "" {
		lf, err := os.Create(*libOut)
		if err != nil {
			fatal(err)
		}
		err = f.TL.WriteLiberty(lf, f.Lib, nil,
			[]float64{5, 15, 40, 100, 250}, []float64{1, 3, 8, 20, 50})
		lf.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *libOut)
	}

	// Auto clock: 2% of margin over the drawn critical path, so slack
	// percentages are meaningful.
	cfg := sta.DefaultConfig(10000)
	cfg.KPaths = *kpaths
	g, err := f.BuildGraph(n)
	if err != nil {
		fatal(err)
	}
	pre, err := g.Analyze(cfg, nil)
	if err != nil {
		fatal(err)
	}
	if *clock <= 0 {
		*clock = 1.02 * (10000 - pre.WNS)
		fmt.Printf("auto clock: %.0fps (drawn critical path %.0fps)\n", *clock, 10000-pre.WNS)
	}
	cfg.ClockPS = *clock

	t0 := time.Now()
	res, err := f.Run(n, flow.RunOptions{
		STA:     cfg,
		Mode:    opcMode,
		Corners: flow.VariationCorners(p.Window),
		TagTopK: *topk,
		Workers: *jobs,
		Batch:   *batch,
	})
	if err != nil {
		fatal(err)
	}
	if *wires {
		loads, err := f.WireLoads(res.Place.Chip, n)
		if err != nil {
			fatal(err)
		}
		cfg.WireLoads = loads
		res.Drawn, err = res.Graph.Analyze(cfg, nil)
		if err != nil {
			fatal(err)
		}
		res.Annotated, err = res.Graph.Analyze(cfg, flow.Annotations(res.Extractions, 0))
		if err != nil {
			fatal(err)
		}
		res.Shift = sta.CompareSlacks(res.Drawn, res.Annotated)
		res.Ranks = sta.CompareOrders(res.Drawn, res.Annotated, 5, 10)
		fmt.Println("using placement-derived wire loads")
	}
	fmt.Printf("flow on %s (%d gates, %d extracted) took %v\n",
		n.Name, len(n.Gates), len(res.Extractions), time.Since(t0))

	// Extraction summary.
	ext := report.NewTable("post-OPC CD extraction (nominal)", "gate", "cell",
		"drawn(nm)", "meanCD(nm)", "delayEL(nm)", "leakEL(nm)", "nonunif(nm)", "EPE p95")
	shown := 0
	for _, name := range res.Tagged {
		e := res.Extractions[name]
		if e == nil || len(e.Sites) == 0 {
			continue
		}
		s := e.Sites[0]
		c := s.PerCorner[0]
		ext.AddF(2, name, e.Cell, s.DrawnL, c.MeanCD, c.DelayEL, c.LeakEL, c.Nonuniformity, e.EPE.P95Abs)
		shown++
		if shown >= 12 {
			ext.Add("...", fmt.Sprintf("(%d more)", len(res.Tagged)-shown))
			break
		}
	}
	ext.Fprint(os.Stdout)

	// Timing comparison.
	cmp := report.NewTable("drawn vs post-OPC annotated timing", "analysis", "WNS(ps)", "TNS(ps)", "leak(nW)")
	cmp.AddF(1, "drawn CD", res.Drawn.WNS, res.Drawn.TNS, res.Drawn.LeakNW)
	cmp.AddF(1, "post-OPC", res.Annotated.WNS, res.Annotated.TNS, res.Annotated.LeakNW)
	cmp.Fprint(os.Stdout)
	fmt.Printf("worst-slack shift: %+.1f%%  mean|Δslack| %.1fps  max|Δslack| %.1fps\n",
		res.Shift.WNSShiftPct, res.Shift.MeanAbsShiftPS, res.Shift.MaxAbsShiftPS)
	fmt.Printf("criticality reordering: Spearman %.3f, Kendall %.3f, top-5 overlap %.0f%%, top-10 overlap %.0f%%\n",
		res.Ranks.Spearman, res.Ranks.KendallTau,
		100*res.Ranks.TopNOverlap[5], 100*res.Ranks.TopNOverlap[10])

	// Worst paths side by side.
	paths := report.NewTable("worst speed paths", "rank", "drawn endpoint", "slack(ps)", "post-OPC endpoint", "slack(ps)")
	for i := 0; i < *kpaths && i < len(res.Drawn.Paths) && i < len(res.Annotated.Paths); i++ {
		paths.AddF(1, i+1,
			res.Drawn.Paths[i].Endpoint, res.Drawn.Paths[i].SlackPS,
			res.Annotated.Paths[i].Endpoint, res.Annotated.Paths[i].SlackPS)
	}
	paths.Fprint(os.Stdout)

	if *contacts {
		cext := map[string]*flow.ContactExtraction{}
		for _, name := range res.Tagged {
			inst := res.Place.Chip.FindInstance(name)
			ce, err := f.ExtractContacts(res.Place.Chip, inst, flow.VariationCorners(p.Window)[1])
			if err != nil {
				fatal(err)
			}
			cext[name] = ce
		}
		ann := f.WithContacts(flow.Annotations(res.Extractions, 0), cext)
		withRc, err := res.Graph.Analyze(cfg, ann)
		if err != nil {
			fatal(err)
		}
		var meanRatio float64
		for _, ce := range cext {
			meanRatio += ce.MeanAreaRatio
		}
		meanRatio /= float64(len(cext))
		fmt.Printf("multi-layer: contact area ratio %.3f at defocus -> WNS %.1fps (poly-only: %.1fps)\n",
			meanRatio, withRc.WNS, res.Annotated.WNS)
	}

	if *orc {
		rep, err := f.VerifyChip(res.Place.Chip, flow.ORCOptions{Mode: opcMode, Workers: *jobs, Batch: *batch})
		if err != nil {
			fatal(err)
		}
		t := report.NewTable("full-chip ORC (process-window corners)",
			"kind", "count")
		t.AddF(0, "pinch", rep.ByKind[flow.Pinch])
		t.AddF(0, "bridge", rep.ByKind[flow.Bridge])
		t.AddF(0, "end pullback", rep.ByKind[flow.EndPullback])
		t.Fprint(os.Stdout)
		for i, h := range rep.Hotspots {
			if i >= 5 {
				fmt.Printf("  ... %d more\n", len(rep.Hotspots)-5)
				break
			}
			fmt.Printf("  %s at %v (%.1fnm) %s gate=%s\n", h.Kind, h.At, h.CDNM, h.Corner, h.Gate)
		}
	}

	var vm *flow.VariationModel
	if *mc > 0 || *corners {
		vm, err = flow.BuildVariationModel(res.Extractions, p.Window, p.Device.SigmaLRandomNM)
		if err != nil {
			fatal(err)
		}
		vm.Obs = tel.Sink
	}

	if *corners {
		mcr, err := f.MultiCornerSTA(res.Graph, cfg, vm, flow.MultiCornerSTAOptions{
			DefocusSteps:    *defocusSteps,
			DoseSteps:       *doseSteps,
			GuardbandKSigma: 3,
			Workers:         *jobs,
		})
		if err != nil {
			fatal(err)
		}
		mcr.SummaryTable().Fprint(os.Stdout)
		mcr.MergedTable(10).Fprint(os.Stdout)
	}

	if *mc > 0 {
		mcr, err := vm.MonteCarloWorkers(res.Graph, cfg, *mc, 1, *jobs)
		if err != nil {
			fatal(err)
		}
		slow, err := res.Graph.Analyze(cfg, vm.SlowCorner(3))
		if err != nil {
			fatal(err)
		}
		t := report.NewTable(fmt.Sprintf("Monte Carlo WNS over the process window (N=%d)", *mc),
			"statistic", "WNS(ps)")
		t.AddF(1, "mean", mcr.MeanWNS)
		t.AddF(1, "sigma", mcr.StdWNS)
		t.AddF(1, "p1", mcr.Percentile(0.01))
		t.AddF(1, "min sample", mcr.WNS[0])
		t.AddF(1, "worst-case corner", slow.WNS)
		t.Fprint(os.Stdout)
		fmt.Printf("corner pessimism vs MC minimum: %.1fps\n", mcr.WNS[0]-slow.WNS)
	}

	if f.Cache != nil {
		flow.CacheStatsTable(f.CacheStats()).Fprint(os.Stdout)
	}
	tel.Close()
}

func loadNetlist(file, design string, size int, seed int64) (*netlist.Netlist, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.ParseVerilog(f)
	}
	switch design {
	case "invchain":
		return netlist.InverterChain(size), nil
	case "rca":
		return netlist.RippleCarryAdder(size), nil
	case "mult":
		return netlist.ArrayMultiplier(size), nil
	case "rand":
		return netlist.RandomLogic(size, 16, seed), nil
	}
	return nil, fmt.Errorf("unknown design %q", design)
}

func parseMode(s string) (flow.OPCMode, error) {
	switch s {
	case "none":
		return flow.OPCNone, nil
	case "rule":
		return flow.OPCRule, nil
	case "model":
		return flow.OPCModel, nil
	}
	return 0, fmt.Errorf("unknown OPC mode %q", s)
}

func fatal(err error) { cli.Fatal("postopc-sta", err) }
