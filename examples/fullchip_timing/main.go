// fullchip_timing is the paper's headline experiment on a full placed
// design: an array multiplier analyzed with (a) the sign-off-style
// drawn-CD + blanket guardband STA and (b) the post-OPC silicon-calibrated
// STA — showing the worst-case-slack shift and the reordering of speed-path
// criticality, then quantifying corner pessimism against Monte Carlo
// statistical timing over realistic CD distributions.
//
//	go run ./examples/fullchip_timing          # fast (Gaussian verification)
//	go run ./examples/fullchip_timing -abbe    # physical Abbe verification
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"postopc/internal/flow"
	"postopc/internal/netlist"
	"postopc/internal/pdk"
	"postopc/internal/report"
	"postopc/internal/sta"
	"postopc/internal/timinglib"
)

func main() {
	abbe := flag.Bool("abbe", false, "verify with the physical Abbe model (slower)")
	bits := flag.Int("bits", 4, "multiplier width")
	mcN := flag.Int("mc", 400, "Monte Carlo samples")
	flag.Parse()

	kit := pdk.N90()
	f, err := flow.New(kit, flow.Config{Fast: !*abbe})
	if err != nil {
		log.Fatal(err)
	}
	design := netlist.ArrayMultiplier(*bits)

	// Choose a clock 3% above the drawn critical path so slack numbers are
	// sign-off-realistic (tight).
	g, err := f.BuildGraph(design)
	if err != nil {
		log.Fatal(err)
	}
	probe := sta.DefaultConfig(100000)
	pre, err := g.Analyze(probe, nil)
	if err != nil {
		log.Fatal(err)
	}
	cfg := sta.DefaultConfig(1.03 * (100000 - pre.WNS))
	cfg.KPaths = 10
	fmt.Printf("%s: %d gates, drawn critical path %.0fps, clock %.0fps\n",
		design.Name, len(design.Gates), 100000-pre.WNS, cfg.ClockPS)

	res, err := f.Run(design, flow.RunOptions{
		STA:     cfg,
		Mode:    flow.OPCModel,
		Corners: flow.VariationCorners(kit.Window),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Sign-off baseline: drawn CDs plus a blanket +8nm slow guardband —
	// the pre-DFM methodology the paper argues against.
	guard, err := res.Graph.Analyze(cfg, sta.Annotations{"*": timinglib.Guardband(8)})
	if err != nil {
		log.Fatal(err)
	}

	tb := report.NewTable("timing views of "+design.Name, "analysis", "WNS(ps)", "TNS(ps)", "leak(nW)")
	tb.AddF(1, "drawn CD", res.Drawn.WNS, res.Drawn.TNS, res.Drawn.LeakNW)
	tb.AddF(1, "drawn + 8nm guardband", guard.WNS, guard.TNS, guard.LeakNW)
	tb.AddF(1, "post-OPC annotated", res.Annotated.WNS, res.Annotated.TNS, res.Annotated.LeakNW)
	tb.Fprint(os.Stdout)

	gb := sta.CompareSlacks(guard, res.Annotated)
	fmt.Printf("post-OPC vs guardbanded sign-off: worst-case slack %+.1f%%\n", gb.WNSShiftPct)
	fmt.Printf("post-OPC vs drawn: worst-case slack %+.1f%%, mean|Δ| %.1fps\n",
		res.Shift.WNSShiftPct, res.Shift.MeanAbsShiftPS)

	ranks := report.NewTable("speed-path criticality reordering",
		"rank", "drawn endpoint", "slack(ps)", "post-OPC endpoint", "slack(ps)")
	for i := 0; i < 10 && i < len(res.Drawn.Paths) && i < len(res.Annotated.Paths); i++ {
		ranks.AddF(1, i+1,
			res.Drawn.Paths[i].Endpoint, res.Drawn.Paths[i].SlackPS,
			res.Annotated.Paths[i].Endpoint, res.Annotated.Paths[i].SlackPS)
	}
	ranks.Fprint(os.Stdout)
	fmt.Printf("Spearman %.3f  Kendall %.3f  top-5 overlap %.0f%%  top-10 overlap %.0f%%\n",
		res.Ranks.Spearman, res.Ranks.KendallTau,
		100*res.Ranks.TopNOverlap[5], 100*res.Ranks.TopNOverlap[10])

	// Monte Carlo over the process window vs the worst-case corner.
	vm, err := flow.BuildVariationModel(res.Extractions, kit.Window, kit.Device.SigmaLRandomNM)
	if err != nil {
		log.Fatal(err)
	}
	mc, err := vm.MonteCarlo(res.Graph, cfg, *mcN, 1)
	if err != nil {
		log.Fatal(err)
	}
	slow, err := res.Graph.Analyze(cfg, vm.SlowCorner(3))
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable(fmt.Sprintf("WNS: Monte Carlo (N=%d) vs worst-case corner", *mcN),
		"statistic", "WNS(ps)")
	t.AddF(1, "MC mean", mc.MeanWNS)
	t.AddF(1, "MC sigma", mc.StdWNS)
	t.AddF(1, "MC p1", mc.Percentile(0.01))
	t.AddF(1, "MC min", mc.WNS[0])
	t.AddF(1, "worst-case corner", slow.WNS)
	t.Fprint(os.Stdout)
	fmt.Printf("corner pessimism beyond the worst of %d MC samples: %.1fps\n",
		*mcN, mc.WNS[0]-slow.WNS)
}
