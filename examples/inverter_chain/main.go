// inverter_chain works at the substrate level: it images the poly layer of
// a placed inverter chain with the physical (Abbe) model, walks the printed
// gate CD through the focus window with and without OPC, and prints the
// non-rectangular CD profile of one gate — the raw material of the paper's
// equivalent-length method.
//
//	go run ./examples/inverter_chain
package main

import (
	"fmt"
	"log"
	"os"

	"postopc/internal/cdx"
	"postopc/internal/device"
	"postopc/internal/flow"
	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/litho"
	"postopc/internal/netlist"
	"postopc/internal/pdk"
	"postopc/internal/place"
	"postopc/internal/report"
)

func main() {
	kit := pdk.N90()
	f, err := flow.New(kit, flow.Config{Fast: false}) // Abbe verification
	if err != nil {
		log.Fatal(err)
	}
	pl, err := f.Place(netlist.InverterChain(6), place.Options{})
	if err != nil {
		log.Fatal(err)
	}
	inst := pl.Chip.FindInstance("u2") // a mid-chain inverter
	corners := []litho.Corner{
		litho.Nominal,
		{DefocusNM: 60, Dose: 1},
		{DefocusNM: kit.Window.DefocusNM, Dose: 1},
		{DefocusNM: 0, Dose: 1 - kit.Window.DoseFrac},
		{DefocusNM: 0, Dose: 1 + kit.Window.DoseFrac},
	}

	tb := report.NewTable("printed gate CD of u2 through the process window (Abbe)",
		"condition", "no-OPC CD(nm)", "model-OPC CD(nm)")
	extNone, err := f.ExtractInstance(pl.Chip, inst, flow.ExtractOptions{Corners: corners, Mode: flow.OPCNone})
	if err != nil {
		log.Fatal(err)
	}
	extOPC, err := f.ExtractInstance(pl.Chip, inst, flow.ExtractOptions{Corners: corners, Mode: flow.OPCModel})
	if err != nil {
		log.Fatal(err)
	}
	for ci, c := range corners {
		tb.AddF(2, c.String(),
			extNone.Sites[0].PerCorner[ci].MeanCD,
			extOPC.Sites[0].PerCorner[ci].MeanCD)
	}
	tb.Fprint(os.Stdout)

	// The non-rectangular gate: slice-by-slice CD profile at nominal.
	recipe := f.VerifySim.Recipe()
	sites := inst.GateSites()
	window := cdx.WindowOf(sites, recipe.GuardNM+kit.Rules.PolyPitchNM)
	var polys []geom.Polygon
	for _, r := range pl.Chip.WindowShapes(layout.LayerPoly, window) {
		polys = append(polys, r.Polygon())
	}
	raster := litho.RasterizeInWindow(polys, window, recipe.PixelNM)
	im, err := f.VerifySim.Aerial(raster, litho.Nominal)
	if err != nil {
		log.Fatal(err)
	}
	prof := cdx.ExtractGate(im, sites[0], recipe.Threshold, recipe.Polarity,
		cdx.Options{Slices: 11, ScanHalfNM: 150})
	fmt.Printf("\nCD profile of %s (drawn %.0fnm):\n", sites[0].Name, prof.DrawnL)
	for _, s := range prof.Slices {
		fmt.Printf("  y=%6.0f  CD=%6.2fnm\n", s.Y, s.CD)
	}

	// Equivalent lengths: one number for delay, another for leakage.
	dev := device.New(kit.Device)
	d, l, err := dev.EquivalentLengths(sites[0].Kind, prof.CDs())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("equivalent lengths: delay %.2fnm, leakage %.2fnm (mean CD %.2fnm)\n",
		d, l, prof.MeanCD())
	fmt.Printf("drive at delay-EL: %.1fµA vs drawn: %.1fµA\n",
		dev.GateDrive(sites[0], d), dev.GateDrive(sites[0], prof.DrawnL))
	fmt.Printf("leakage at leak-EL: %.2fnA vs drawn: %.2fnA\n",
		dev.GateLeak(sites[0], l), dev.GateLeak(sites[0], prof.DrawnL))
}
