// Quickstart: the whole post-OPC timing flow in one page.
//
// It builds the N90 kit, generates an 8-bit ripple-carry adder, places it,
// applies model-based OPC to every gate window, simulates the patterning
// process, extracts post-OPC gate CDs, collapses them to equivalent
// lengths, and re-runs STA with the silicon-calibrated lengths.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"postopc/internal/flow"
	"postopc/internal/netlist"
	"postopc/internal/pdk"
	"postopc/internal/sta"
)

func main() {
	// 1. Technology: the synthetic 90nm kit (optics + rules + devices).
	kit := pdk.N90()

	// 2. The flow object bundles cell library, imaging models and OPC.
	//    Fast:true verifies with the Gaussian model (seconds, not minutes).
	f, err := flow.New(kit, flow.Config{Fast: true})
	if err != nil {
		log.Fatal(err)
	}

	// 3. A benchmark design and its timing constraints.
	design := netlist.RippleCarryAdder(8)
	cfg := sta.DefaultConfig(2600) // 2.6ns clock
	cfg.KPaths = 5

	// 4. Run: place -> OPC -> litho -> extract CDs -> annotate -> STA.
	res, err := f.Run(design, flow.RunOptions{
		STA:     cfg,
		Mode:    flow.OPCModel,
		Corners: flow.VariationCorners(kit.Window),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("design %s: %d gates placed in %d rows\n",
		design.Name, len(design.Gates), res.Place.Rows)
	fmt.Printf("drawn-CD STA:   WNS %7.1f ps, leakage %6.1f nW\n",
		res.Drawn.WNS, res.Drawn.LeakNW)
	fmt.Printf("post-OPC STA:   WNS %7.1f ps, leakage %6.1f nW\n",
		res.Annotated.WNS, res.Annotated.LeakNW)
	fmt.Printf("worst-slack shift %+.1f%%, mean |Δslack| %.1f ps\n",
		res.Shift.WNSShiftPct, res.Shift.MeanAbsShiftPS)
	fmt.Printf("speed-path reordering: Spearman %.3f, top-5 overlap %.0f%%\n",
		res.Ranks.Spearman, 100*res.Ranks.TopNOverlap[5])

	// 5. Look at one extracted gate: drawn 90nm, printed something else.
	name := res.Tagged[0]
	site := res.Extractions[name].Sites[0]
	nom := site.PerCorner[0]
	fmt.Printf("gate %s/%s: drawn %.0fnm -> printed %.1fnm "+
		"(delay EL %.2fnm, leakage EL %.2fnm, %.1fnm nonuniformity)\n",
		name, site.LocalName, site.DrawnL, nom.MeanCD,
		nom.DelayEL, nom.LeakEL, nom.Nonuniformity)
}
