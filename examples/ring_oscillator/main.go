// ring_oscillator builds the classic silicon process monitor: a ring of
// inverters whose oscillation frequency tracks the printed gate CD. The
// stage delays are evaluated from post-OPC extracted equivalent lengths at
// each process-window corner, turning the litho excursions into the
// frequency shifts a fab would measure on real silicon — and showing how
// far the drawn-CD prediction is from the "silicon".
//
//	go run ./examples/ring_oscillator
package main

import (
	"fmt"
	"log"
	"os"

	"postopc/internal/flow"
	"postopc/internal/litho"
	"postopc/internal/netlist"
	"postopc/internal/pdk"
	"postopc/internal/place"
	"postopc/internal/report"
	"postopc/internal/timinglib"
)

const stages = 13 // odd, as a real RO must be

func main() {
	kit := pdk.N90()
	f, err := flow.New(kit, flow.Config{Fast: true})
	if err != nil {
		log.Fatal(err)
	}
	// The ring is placed as a chain (placement only needs the instances;
	// the feedback connection doesn't change any gate's layout context).
	nl := netlist.InverterChain(stages)
	pl, err := f.Place(nl, place.Options{})
	if err != nil {
		log.Fatal(err)
	}

	corners := []litho.Corner{
		litho.Nominal,
		{DefocusNM: 60, Dose: 1},
		{DefocusNM: kit.Window.DefocusNM, Dose: 1},
		{DefocusNM: 0, Dose: 1 - kit.Window.DoseFrac},
		{DefocusNM: 0, Dose: 1 + kit.Window.DoseFrac},
	}
	exts, err := f.ExtractGates(pl.Chip, nil, flow.ExtractOptions{
		Corners: corners, Mode: flow.OPCModel,
	})
	if err != nil {
		log.Fatal(err)
	}

	inv := f.Lib.Cells["INV_X1"]
	// Each stage drives the next stage's input plus local wire.
	evDrawn, err := f.TL.Evaluate(inv, nil)
	if err != nil {
		log.Fatal(err)
	}
	loadFF := evDrawn.CinFF["A"] + kit.Device.CWireFF

	// stageDelay averages rise and fall propagation through one inverter.
	stageDelay := func(ev timinglib.Eval, slew float64) float64 {
		dr, _ := f.TL.ArcDelay(ev, true, loadFF, slew)
		df, _ := f.TL.ArcDelay(ev, false, loadFF, slew)
		return (dr + df) / 2
	}
	// Self-consistent slew: iterate the output slew to its fixed point.
	settleSlew := func(ev timinglib.Eval) float64 {
		slew := 20.0
		for i := 0; i < 8; i++ {
			_, s := f.TL.ArcDelay(ev, true, loadFF, slew)
			slew = s
		}
		return slew
	}

	freqMHz := func(perStagePS float64) float64 {
		return 1e6 / (2 * stages * perStagePS)
	}

	tb := report.NewTable(fmt.Sprintf("%d-stage ring oscillator through the process window", stages),
		"condition", "mean delayEL(nm)", "stage delay(ps)", "f_RO(MHz)", "vs drawn")
	drawnDelay := stageDelay(evDrawn, settleSlew(evDrawn))
	tb.AddF(2, "drawn CD", 90.0, drawnDelay, freqMHz(drawnDelay), "")

	for ci, c := range corners {
		// Average the ring's per-gate evaluations at this corner.
		var total float64
		var meanEL float64
		var slewRef float64
		for _, g := range nl.Gates {
			ann := flow.Annotations(map[string]*flow.GateExtraction{g.Name: exts[g.Name]}, ci)
			ev, err := f.TL.Evaluate(inv, ann[g.Name])
			if err != nil {
				log.Fatal(err)
			}
			if slewRef == 0 {
				slewRef = settleSlew(ev)
			}
			total += stageDelay(ev, slewRef)
			meanEL += exts[g.Name].Sites[0].PerCorner[ci].DelayEL
		}
		per := total / float64(len(nl.Gates))
		meanEL /= float64(len(nl.Gates))
		tb.AddF(2, c.String(), meanEL, per, freqMHz(per),
			fmt.Sprintf("%+.1f%%", 100*(freqMHz(per)-freqMHz(drawnDelay))/freqMHz(drawnDelay)))
	}
	tb.Fprint(os.Stdout)
	fmt.Println("\nthe RO speeds up off-focus (shorter printed gates) while leakage climbs —")
	fmt.Println("the classic silicon signature that drawn-CD timing cannot predict.")
}
