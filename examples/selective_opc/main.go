// selective_opc demonstrates the paper's DFM feedback loop: pass design
// intent (the tagged critical gates) to the OPC side and spend aggressive
// model-based correction only where timing needs it, leaving the rest of
// the chip uncorrected. The sweep shows how CD control on critical gates
// and the worst-case slack converge to the full-OPC result while touching
// only a handful of windows.
//
//	go run ./examples/selective_opc
package main

import (
	"fmt"
	"log"
	"os"

	"postopc/internal/flow"
	"postopc/internal/litho"
	"postopc/internal/netlist"
	"postopc/internal/pdk"
	"postopc/internal/place"
	"postopc/internal/report"
	"postopc/internal/sta"
)

func main() {
	kit := pdk.N90()
	f, err := flow.New(kit, flow.Config{Fast: true})
	if err != nil {
		log.Fatal(err)
	}
	design := netlist.RippleCarryAdder(6)
	pl, err := f.Place(design, place.Options{})
	if err != nil {
		log.Fatal(err)
	}
	g, err := f.BuildGraph(design)
	if err != nil {
		log.Fatal(err)
	}
	// Tight clock: 3% over the drawn critical path.
	probe, err := g.Analyze(sta.DefaultConfig(100000), nil)
	if err != nil {
		log.Fatal(err)
	}
	cfg := sta.DefaultConfig(1.03 * (100000 - probe.WNS))
	cfg.KPaths = 10
	drawn, err := g.Analyze(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}

	nominal := []litho.Corner{litho.Nominal}
	// Baseline extraction: nothing corrected.
	noOPC, err := f.ExtractGates(pl.Chip, nil, flow.ExtractOptions{Corners: nominal, Mode: flow.OPCNone})
	if err != nil {
		log.Fatal(err)
	}
	// Reference: model OPC everywhere.
	fullOPC, err := f.ExtractGates(pl.Chip, nil, flow.ExtractOptions{Corners: nominal, Mode: flow.OPCModel})
	if err != nil {
		log.Fatal(err)
	}
	fullRes, err := g.Analyze(cfg, flow.Annotations(fullOPC, 0))
	if err != nil {
		log.Fatal(err)
	}
	// CD-control metric is evaluated on the top-5-path critical gates.
	critSet := map[string]bool{}
	for _, n := range drawn.CriticalGates(5) {
		critSet[n] = true
	}

	tb := report.NewTable("selective OPC on "+design.Name+
		fmt.Sprintf(" (%d gates total)", len(design.Gates)),
		"paths tagged", "gates OPC'd", "mean |CD-90| on crit (nm)", "WNS(ps)", "ΔWNS vs full OPC (ps)")
	for _, k := range []int{0, 1, 2, 4, 8} {
		extrs := map[string]*flow.GateExtraction{}
		for name, e := range noOPC {
			extrs[name] = e
		}
		var tagged []string
		if k > 0 {
			tagged = drawn.CriticalGates(k)
			sel, err := f.ExtractGates(pl.Chip, tagged, flow.ExtractOptions{Corners: nominal, Mode: flow.OPCModel})
			if err != nil {
				log.Fatal(err)
			}
			for name, e := range sel {
				extrs[name] = e
			}
		}
		res, err := g.Analyze(cfg, flow.Annotations(extrs, 0))
		if err != nil {
			log.Fatal(err)
		}
		tb.AddF(2, k, len(tagged), meanAbsErrOn(extrs, critSet), res.WNS, res.WNS-fullRes.WNS)
	}
	tb.AddF(2, "all", len(fullOPC), meanAbsErrOn(fullOPC, critSet), fullRes.WNS, 0.0)
	tb.Fprint(os.Stdout)
}

// meanAbsErrOn averages |meanCD − drawn| over the sites of the given gates.
func meanAbsErrOn(extrs map[string]*flow.GateExtraction, gates map[string]bool) float64 {
	var sum float64
	n := 0
	for name, e := range extrs {
		if !gates[name] {
			continue
		}
		for _, s := range e.Sites {
			d := s.PerCorner[0].MeanCD - s.DrawnL
			if d < 0 {
				d = -d
			}
			sum += d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
