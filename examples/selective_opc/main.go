// selective_opc demonstrates the paper's DFM feedback loop: pass design
// intent (the tagged critical gates) to the OPC side and spend aggressive
// model-based correction only where timing needs it, leaving the rest of
// the chip uncorrected. The sweep shows how CD control on critical gates
// and the worst-case slack converge to the full-OPC result while touching
// only a handful of windows — and, with the pattern cache enabled, how the
// sweep's repeated and overlapping extractions collapse into cache hits.
//
//	go run ./examples/selective_opc
package main

import (
	"fmt"
	"log"
	"os"

	"postopc/internal/flow"
	"postopc/internal/netlist"
	"postopc/internal/pdk"
	"postopc/internal/place"
	"postopc/internal/report"
	"postopc/internal/sta"
)

func main() {
	kit := pdk.N90()
	f, err := flow.New(kit, flow.Config{Fast: true})
	if err != nil {
		log.Fatal(err)
	}
	f.EnableCache(0)
	design := netlist.RippleCarryAdder(6)
	pl, err := f.Place(design, place.Options{})
	if err != nil {
		log.Fatal(err)
	}
	g, err := f.BuildGraph(design)
	if err != nil {
		log.Fatal(err)
	}
	// Tight clock: 3% over the drawn critical path.
	probe, err := g.Analyze(sta.DefaultConfig(100000), nil)
	if err != nil {
		log.Fatal(err)
	}
	cfg := sta.DefaultConfig(1.03 * (100000 - probe.WNS))
	cfg.KPaths = 10
	drawn, err := g.Analyze(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}

	sweep, err := f.SelectiveSweep(pl.Chip, g, drawn, cfg, flow.SelectiveOptions{
		Ks: []int{0, 1, 2, 4, 8},
	})
	if err != nil {
		log.Fatal(err)
	}

	tb := report.NewTable("selective OPC on "+design.Name+
		fmt.Sprintf(" (%d gates total)", sweep.GatesTotal),
		"paths tagged", "gates OPC'd", "mean |CD-90| on crit (nm)", "WNS(ps)", "ΔWNS vs full OPC (ps)")
	for _, st := range sweep.Steps {
		tb.AddF(2, st.K, len(st.Tagged), st.MeanAbsCDErrNM, st.WNS, st.DeltaWNS)
	}
	tb.AddF(2, "all", sweep.GatesTotal, sweep.FullMeanAbsCDErrNM, sweep.FullWNS, 0.0)
	tb.Fprint(os.Stdout)

	flow.CacheStatsTable(f.CacheStats()).Fprint(os.Stdout)
}
