module postopc

go 1.22

// The tree builds fully offline and is deliberately dependency-free: the
// static-analysis suite (internal/analysis) mirrors the
// golang.org/x/tools/go/analysis API on the standard library instead of
// requiring it, so there is no x/tools version to require/pin here.
