module postopc

go 1.22
