// Package allocbudget defines the allocation-budget analyzer: functions
// annotated //postopc:allocfree must not contain heap-allocating constructs
// on their steady-state path.
//
// The imaging hot path holds a runtime-enforced budget (litho's
// TestKernelAllocBudget: a warm window simulation allocates only the
// returned image), built from pooled scratch, planned FFT tables and
// write-only telemetry handles. The runtime test catches drift but not its
// source; this analyzer pins the contract to the functions that carry it,
// so the diagnostic lands on the offending line the moment an allocation
// creeps in — not on a test failure three layers up.
//
// # What is flagged
//
// Inside an annotated function: make, new and append; slice and map
// composite literals and address-of composite literals; string
// concatenation and string<->byte-slice conversions; closure literals and
// go statements; and calls to functions that are not themselves
// allocation-free. A call is allocation-free when the callee is annotated
// in this package, carries the AllocFree fact (exported when its package
// was analyzed — the cross-package channel), is an allocation-free builtin,
// or belongs to an allowlisted runtime-support package (sync, sync/atomic,
// math, math/bits, math/cmplx, time) whose primitives the hot path is built
// from.
//
// Cold sub-paths inside an annotated function — pool misses, first-use
// growth, plan construction, error returns — are real allocations that the
// steady state never executes; they stay visible in the source via
// line-scoped suppressions (//postopc:nolint:allocbudget <reason>), which
// double as documentation of where the cold path is.
package allocbudget

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"postopc/internal/analysis"
)

// AllocFree is the fact exported for every annotated function, letting
// passes over importing packages accept calls to it.
type AllocFree struct{}

// AFact marks AllocFree as a fact.
func (*AllocFree) AFact() {}

func (*AllocFree) String() string { return "allocfree" }

// Analyzer is the allocation-budget check.
var Analyzer = &analysis.Analyzer{
	Name: "allocbudget",
	Doc: "flag heap allocations in functions annotated //postopc:allocfree\n\n" +
		"Annotated functions form the kernel hot path, whose steady-state\n" +
		"allocation budget the runtime tests pin. They must avoid allocating\n" +
		"constructs and may only call other allocation-free functions (the\n" +
		"annotation travels across packages as a fact). Cold sub-paths carry\n" +
		"//postopc:nolint:allocbudget <reason> line suppressions.",
	FactTypes: []analysis.Fact{(*AllocFree)(nil)},
	Run:       run,
}

// allowedPkgs are the runtime-support packages whose calls are accepted
// without annotation: synchronization, atomics and pure math, the
// primitives pools and planned kernels are made of.
var allowedPkgs = map[string]bool{
	"sync":        true,
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
	"math/cmplx":  true,
	"time":        true,
}

// allowedBuiltins never allocate (or only on the crash path).
var allowedBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "delete": true, "clear": true,
	"real": true, "imag": true, "complex": true, "min": true, "max": true,
	"panic": true, "recover": true,
}

func run(pass *analysis.Pass) error {
	marked := markedFuncs(pass)
	for obj := range marked {
		pass.ExportObjectFact(obj, &AllocFree{})
	}
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil || !marked[obj] {
				continue
			}
			check(pass, marked, fd)
		}
	}
	return nil
}

// markedFuncs resolves the //postopc:allocfree directives to the function
// objects they annotate (directive trailing the func line, or on the line
// above — conventionally the last doc-comment line).
func markedFuncs(pass *analysis.Pass) map[*types.Func]bool {
	lines := map[fileLine]bool{}
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, cmt := range cg.List {
				rest, ok := strings.CutPrefix(cmt.Text, "//postopc:allocfree")
				if !ok || (rest != "" && !strings.HasPrefix(rest, " ")) {
					continue
				}
				pos := pass.Fset.Position(cmt.Pos())
				lines[fileLine{pos.Filename, pos.Line}] = true
			}
		}
	}
	marked := map[*types.Func]bool{}
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			pos := pass.Fset.Position(fd.Pos())
			if !lines[fileLine{pos.Filename, pos.Line}] && !lines[fileLine{pos.Filename, pos.Line - 1}] {
				continue
			}
			if obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func); obj != nil {
				marked[obj] = true
			}
		}
	}
	return marked
}

type fileLine struct {
	file string
	line int
}

// check walks one annotated function body.
func check(pass *analysis.Pass, marked map[*types.Func]bool, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"allocfree function %s creates a closure, which may allocate its captures", name)
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(),
				"allocfree function %s starts a goroutine, which allocates a stack", name)
		case *ast.CompositeLit:
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(),
					"allocfree function %s builds a %s literal, which allocates", name, kindWord(pass, n))
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(),
						"allocfree function %s takes the address of a composite literal, which escapes to the heap", name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.TypesInfo.TypeOf(n)) {
				pass.Reportf(n.Pos(),
					"allocfree function %s concatenates strings, which allocates", name)
			}
		case *ast.CallExpr:
			checkCall(pass, marked, name, n)
		}
		return true
	})
}

// checkCall vets one call inside an annotated function.
func checkCall(pass *analysis.Pass, marked map[*types.Func]bool, name string, call *ast.CallExpr) {
	// Conversions: only the string<->byte/rune-slice pairs copy.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && stringConversion(tv.Type, pass.TypesInfo.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(),
				"allocfree function %s converts between string and byte slice, which copies", name)
		}
		return
	}
	callee := calleeObject(pass, call)
	switch callee := callee.(type) {
	case *types.Builtin:
		if !allowedBuiltins[callee.Name()] {
			pass.Reportf(call.Pos(),
				"allocfree function %s calls %s, which allocates", name, callee.Name())
		}
	case *types.Func:
		if marked[callee] {
			return
		}
		var af AllocFree
		if pass.ImportObjectFact(callee, &af) {
			return
		}
		if pkg := callee.Pkg(); pkg != nil && allowedPkgs[pkg.Path()] {
			return
		}
		if isInterfaceMethod(callee) {
			pass.Reportf(call.Pos(),
				"allocfree function %s makes a dynamic call to %s, which cannot be verified allocation-free", name, callee.Name())
			return
		}
		pass.Reportf(call.Pos(),
			"allocfree function %s calls %s, which is not marked //postopc:allocfree", name, callee.Name())
	default:
		pass.Reportf(call.Pos(),
			"allocfree function %s makes an indirect call, which cannot be verified allocation-free", name)
	}
}

// calleeObject resolves the called function object, or nil.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// isInterfaceMethod reports whether fn's receiver is an interface.
func isInterfaceMethod(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// stringConversion reports whether converting from into to copies data
// (string <-> []byte / []rune).
func stringConversion(to, from types.Type) bool {
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// kindWord names the allocating literal kind for the diagnostic.
func kindWord(pass *analysis.Pass, lit *ast.CompositeLit) string {
	if _, ok := pass.TypesInfo.TypeOf(lit).Underlying().(*types.Map); ok {
		return "map"
	}
	return "slice"
}

// isTestFile reports whether the file is a _test.go file.
func isTestFile(pass *analysis.Pass, file *ast.File) bool {
	name := pass.Fset.Position(file.Pos()).Filename
	return strings.HasSuffix(name, "_test.go")
}
