package allocbudget_test

import (
	"testing"

	"postopc/internal/analysis/allocbudget"
	"postopc/internal/analysis/analysistest"
)

func TestAllocbudget(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), allocbudget.Analyzer,
		"allocbudget", "allocdep", "allocuse")
}
