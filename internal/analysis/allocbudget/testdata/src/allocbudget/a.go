// Fixture for the allocbudget analyzer: single-package checks.
package allocbudget

type point struct{ x, y int }

func notMarked() int { return 0 }

// hot is allocation-free: arithmetic and calls to other marked functions.
//postopc:allocfree
func hot(xs []float64) float64 { // want hot:`allocfree`
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return s
}

// caller rides on hot's annotation.
//postopc:allocfree
func caller(xs []float64) float64 { // want caller:`allocfree`
	return hot(xs)
}

// leaky trips every construct the analyzer knows.
//postopc:allocfree
func leaky(n int, s string) int { // want leaky:`allocfree`
	buf := make([]byte, n) // want `calls make, which allocates`
	buf = append(buf, 1)   // want `calls append, which allocates`
	_ = []int{1, n}        // want `builds a slice literal, which allocates`
	m := map[int]int{}     // want `builds a map literal, which allocates`
	_ = m
	_ = &point{1, 2} // want `takes the address of a composite literal`
	_ = func() {}    // want `creates a closure`
	_ = s + "x"      // want `concatenates strings, which allocates`
	_ = []byte(s)    // want `converts between string and byte slice`
	_ = notMarked()  // want `calls notMarked, which is not marked //postopc:allocfree`
	go notMarked()   // want `starts a goroutine` `calls notMarked, which is not marked`
	return len(buf)
}

// grow documents its cold path with a line-scoped suppression.
//postopc:allocfree
func grow(dst []float64, n int) []float64 { // want grow:`allocfree`
	if cap(dst) < n {
		return make([]float64, n) //postopc:nolint:allocbudget growth on first use at a new size is the cold path
	}
	return dst[:n]
}
