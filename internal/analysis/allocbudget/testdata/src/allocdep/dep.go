// Package allocdep is the fixture dependency exporting AllocFree facts.
package allocdep

// Add is allocation-free.
//postopc:allocfree
func Add(a, b float64) float64 { return a + b } // want Add:`allocfree`

// Box is not annotated: its result escapes.
func Box(v float64) *float64 { return &v }
