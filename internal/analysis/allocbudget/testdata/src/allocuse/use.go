// Package allocuse imports allocdep: the allocfree annotation travels to
// this package as a fact.
package allocuse

import "allocdep"

// combine calls a foreign marked function — accepted via the fact.
//postopc:allocfree
func combine(a, b float64) float64 { // want combine:`allocfree`
	return allocdep.Add(a, b)
}

// escape calls a foreign unmarked function.
//postopc:allocfree
func escape(v float64) float64 { // want escape:`allocfree`
	return *allocdep.Box(v) // want `calls Box, which is not marked //postopc:allocfree`
}
