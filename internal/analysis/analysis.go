// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer is a named check
// over one type-checked package, a Pass is the per-package invocation
// context, and Diagnostics are position-anchored findings.
//
// The repository cannot vendor x/tools (the build environment is fully
// offline and the module tree is deliberately dependency-free), so this
// package mirrors the upstream API shape closely enough that the domain
// analyzers under internal/analysis/... could be ported to the real
// framework by changing only import paths. The driver lives in
// cmd/postopc-lint; the test harness in internal/analysis/analysistest.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and nolint directives.
	// It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph help text; the first line is the summary.
	Doc string
	// Run applies the analyzer to one package, reporting findings through
	// pass.Report.
	Run func(*Pass) error
}

// Pass is the context handed to Analyzer.Run for one package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions for Files.
	Fset *token.FileSet
	// Files are the parsed sources of the package, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's maps for Files.
	TypesInfo *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	// Pos is the anchor position.
	Pos token.Pos
	// Message states the finding. By convention it is lower-case and does
	// not end in punctuation.
	Message string
}

// Finding is a Diagnostic attributed to the analyzer that produced it,
// ready for rendering.
type Finding struct {
	// Analyzer names the producing check.
	Analyzer string
	// Pos is the resolved source position.
	Pos token.Position
	// Message states the finding.
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies one analyzer to a type-checked package and returns its
// findings with nolint suppressions already dropped, sorted by position.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Finding, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	sup := suppressions(fset, files)
	var out []Finding
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if sup.matches(pos.Filename, pos.Line, a.Name) {
			continue
		}
		out = append(out, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// nolintKey identifies one suppressed (file, line).
type nolintKey struct {
	file string
	line int
}

// nolintSet maps suppressed lines to the analyzer names they silence
// (nil means all analyzers).
type nolintSet map[nolintKey][]string

// suppressions collects //postopc:nolint directives. A directive
// suppresses findings on its own line and on the line below (so it works
// both trailing the offending statement and standing on its own above it).
// An optional comma-separated list restricts it to named analyzers:
// //postopc:nolint detrand,maporder.
func suppressions(fset *token.FileSet, files []*ast.File) nolintSet {
	set := nolintSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//postopc:nolint")
				if !ok {
					continue
				}
				var names []string
				if text = strings.TrimSpace(text); text != "" {
					for _, n := range strings.Split(text, ",") {
						if n = strings.TrimSpace(n); n != "" {
							names = append(names, n)
						}
					}
				}
				pos := fset.Position(c.Pos())
				set[nolintKey{pos.Filename, pos.Line}] = names
				set[nolintKey{pos.Filename, pos.Line + 1}] = names
			}
		}
	}
	return set
}

// matches reports whether a finding by analyzer at (file, line) is
// suppressed.
func (s nolintSet) matches(file string, line int, analyzer string) bool {
	names, ok := s[nolintKey{file, line}]
	if !ok {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if n == analyzer {
			return true
		}
	}
	return false
}

// NewInfo allocates a types.Info with every map analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
