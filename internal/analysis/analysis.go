// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer is a named check
// over one type-checked package, a Pass is the per-package invocation
// context, and Diagnostics are position-anchored findings.
//
// The repository cannot vendor x/tools (the build environment is fully
// offline and the module tree is deliberately dependency-free), so this
// package mirrors the upstream API shape closely enough that the domain
// analyzers under internal/analysis/... could be ported to the real
// framework by changing only import paths. The driver lives in
// cmd/postopc-lint; the test harness in internal/analysis/analysistest.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and nolint directives.
	// It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph help text; the first line is the summary.
	Doc string
	// FactTypes lists prototypes (pointer values) of every fact type the
	// analyzer exports or imports, for gob registration. Analyzers without
	// facts leave it nil.
	FactTypes []Fact
	// Run applies the analyzer to one package, reporting findings through
	// pass.Report.
	Run func(*Pass) error
}

// Pass is the context handed to Analyzer.Run for one package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions for Files.
	Fset *token.FileSet
	// Files are the parsed sources of the package, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's maps for Files.
	TypesInfo *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)

	// facts is the driver-shared fact store; never nil inside Run.
	facts *Facts
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportObjectFact attaches fact to obj, replacing any previous fact of
// the same concrete type. The object should belong to the package under
// analysis; facts flow forward to passes over importing packages.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.facts.setObject(obj, fact)
}

// ImportObjectFact copies the fact of *fact's concrete type attached to
// obj (by this pass or a pass over a dependency) into fact, reporting
// whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.facts.getObject(obj, fact)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.facts.setPackage(p.Pkg.Path(), fact)
}

// ImportPackageFact copies the package fact of *fact's concrete type
// attached to pkg into fact, reporting whether one existed.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	return p.facts.getPackage(pkg.Path(), fact)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	// Pos is the anchor position.
	Pos token.Pos
	// Message states the finding. By convention it is lower-case and does
	// not end in punctuation.
	Message string
}

// Finding is a Diagnostic attributed to the analyzer that produced it,
// ready for rendering.
type Finding struct {
	// Analyzer names the producing check.
	Analyzer string
	// Pos is the resolved source position.
	Pos token.Position
	// Message states the finding.
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies one analyzer to a type-checked package and returns its
// findings with nolint suppressions already dropped, sorted by position.
// Facts exported by the analyzer are discarded; drivers that thread facts
// between packages use RunWithFacts.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Finding, error) {
	return RunWithFacts(a, fset, files, pkg, info, NewFacts())
}

// RunWithFacts is Run with an explicit fact store: imported facts are
// resolved from it, exported facts are added to it. The store may be
// shared by concurrent passes.
func RunWithFacts(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *Facts) ([]Finding, error) {
	if facts == nil {
		facts = NewFacts()
	}
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
		facts:     facts,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	sup := suppressions(fset, files)
	var out []Finding
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if sup.matches(pos.Filename, pos.Line, a.Name) {
			continue
		}
		out = append(out, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// Directive is one parsed //postopc:nolint comment.
type Directive struct {
	// Pos is the comment position.
	Pos token.Pos
	// Names are the analyzers the directive silences.
	Names []string
	// Reason is the mandatory justification following the names.
	Reason string
	// Valid reports whether the directive is well-formed. Invalid
	// directives suppress nothing; the nolint analyzer flags them.
	Valid bool
}

// ParseNolint parses one comment's text as a nolint directive. ok is
// false when the comment is not a nolint directive at all. A well-formed
// directive scopes itself to named analyzers and states a reason:
//
//	//postopc:nolint:detrand wall clock confined to obs by design
//	//postopc:nolint:maporder,deadassign fixture exercises both
//
// Bare directives, blanket directives without analyzer names, and
// directives without a reason are invalid: a suppression with no recorded
// justification is indistinguishable from a stale one.
func ParseNolint(text string) (d Directive, ok bool) {
	rest, ok := strings.CutPrefix(text, "//postopc:nolint")
	if !ok {
		return Directive{}, false
	}
	names, hasNames := strings.CutPrefix(rest, ":")
	if !hasNames {
		return Directive{}, true // bare (or legacy space-separated) form
	}
	nameList, reason, _ := strings.Cut(names, " ")
	d.Reason = strings.TrimSpace(reason)
	if strings.HasPrefix(d.Reason, "//") {
		// A trailing comment is not a recorded justification.
		d.Reason = ""
	}
	for _, n := range strings.Split(nameList, ",") {
		if n = strings.TrimSpace(n); n != "" {
			d.Names = append(d.Names, n)
		}
	}
	d.Valid = len(d.Names) > 0 && d.Reason != ""
	return d, true
}

// Nolints collects every nolint directive in the files, valid or not.
func Nolints(fset *token.FileSet, files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := ParseNolint(c.Text)
				if !ok {
					continue
				}
				d.Pos = c.Pos()
				out = append(out, d)
			}
		}
	}
	return out
}

// nolintKey identifies one suppressed (file, line).
type nolintKey struct {
	file string
	line int
}

// nolintSet maps suppressed lines to the analyzer names they silence.
type nolintSet map[nolintKey][]string

// suppressions collects the valid //postopc:nolint directives. A
// directive suppresses findings on its own line and on the line below (so
// it works both trailing the offending statement and standing on its own
// above it). Invalid directives — no analyzer names, no reason — suppress
// nothing.
func suppressions(fset *token.FileSet, files []*ast.File) nolintSet {
	set := nolintSet{}
	for _, d := range Nolints(fset, files) {
		if !d.Valid {
			continue
		}
		pos := fset.Position(d.Pos)
		set[nolintKey{pos.Filename, pos.Line}] = append(set[nolintKey{pos.Filename, pos.Line}], d.Names...)
		set[nolintKey{pos.Filename, pos.Line + 1}] = append(set[nolintKey{pos.Filename, pos.Line + 1}], d.Names...)
	}
	return set
}

// matches reports whether a finding by analyzer at (file, line) is
// suppressed.
func (s nolintSet) matches(file string, line int, analyzer string) bool {
	for _, n := range s[nolintKey{file, line}] {
		if n == analyzer {
			return true
		}
	}
	return false
}

// NewInfo allocates a types.Info with every map analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
