// Package analysistest runs analyzers over small testdata packages and
// checks their diagnostics against `// want` comment expectations — the
// same convention as golang.org/x/tools/go/analysis/analysistest, on which
// this offline re-implementation is modelled.
//
// A test package lives under testdata/src/<name>/ next to the analyzer's
// test file. Each line that should be flagged carries a comment of the
// form
//
//	x = append(x, k) // want `map-range loop`
//
// where the back-quoted (or double-quoted) string is a regular expression
// matched against the diagnostic message. Several expectations may follow
// one `want`. Lines without a matching diagnostic, and diagnostics without
// a matching expectation, fail the test.
//
// Fact-exporting analyzers are tested the same way: an expectation of the
// form name:"re" asserts that the object called name declared on that line
// carries an exported fact whose String() matches the regular expression:
//
//	type Recipe struct { // want Recipe:`complete`
//
// Facts on the package under test must be asserted exhaustively — an
// unasserted fact fails the test, like an unexpected diagnostic.
//
// Fixture packages may import other fixture packages (testdata/src/<dep>).
// Dependencies are analyzed first, in import order, with their diagnostics
// dropped and their facts retained, so cross-package fact flow is exercised
// exactly as the driver runs it.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"postopc/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each testdata package, applies the analyzer, and compares the
// findings against the `// want` expectations in the sources.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runOne(t, testdata, a, pkg)
		})
	}
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{fset: fset, root: filepath.Join(testdata, "src"), cache: map[string]*types.Package{}}
	files, tpkg, info, err := ld.check(pkgpath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgpath, err)
	}
	// Analyze in-tree dependencies first (facts only): the loader records
	// them in completion order, which is a valid topological order of the
	// import DAG.
	facts := analysis.NewFacts()
	for _, dep := range ld.order {
		if dep.tpkg == tpkg {
			continue
		}
		if _, err := analysis.RunWithFacts(a, fset, dep.files, dep.tpkg, dep.info, facts); err != nil {
			t.Fatalf("running %s over dependency %s: %v", a.Name, dep.tpkg.Path(), err)
		}
	}
	findings, err := analysis.RunWithFacts(a, fset, files, tpkg, info, facts)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	diagWants, factWants := collectWants(t, fset, files)
	for _, f := range findings {
		key := wantKey{f.Pos.Filename, f.Pos.Line}
		if i := matchWant(diagWants[key], f.Message); i >= 0 {
			diagWants[key] = append(diagWants[key][:i], diagWants[key][i+1:]...)
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
	}
	for key, exps := range diagWants {
		for _, e := range exps {
			t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, e.String())
		}
	}
	checkFacts(t, fset, facts, tpkg, factWants)
}

// checkFacts matches the exported object facts of the package under test
// against the name:"re" expectations, both ways.
func checkFacts(t *testing.T, fset *token.FileSet, facts *analysis.Facts, tpkg *types.Package, wants map[wantKey][]*factWant) {
	t.Helper()
	for _, of := range facts.ObjectFactsOf(tpkg) {
		pos := fset.Position(of.Object.Pos())
		key := wantKey{pos.Filename, pos.Line}
		matched := -1
		for i, w := range wants[key] {
			if w.name == of.Object.Name() && w.re.MatchString(fmt.Sprint(of.Fact)) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected fact on %s: %v", pos, of.Object.Name(), of.Fact)
			continue
		}
		wants[key] = append(wants[key][:matched], wants[key][matched+1:]...)
	}
	for key, ws := range wants {
		for _, w := range ws {
			t.Errorf("%s:%d: no fact on %s matching %q", key.file, key.line, w.name, w.re.String())
		}
	}
}

type wantKey struct {
	file string
	line int
}

// factWant is one name:"re" fact expectation.
type factWant struct {
	name string
	re   *regexp.Regexp
}

// collectWants parses the `// want` expectations of all files: plain quoted
// patterns are diagnostic expectations, name:"re" tokens are fact
// expectations.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) (map[wantKey][]*regexp.Regexp, map[wantKey][]*factWant) {
	t.Helper()
	diags := map[wantKey][]*regexp.Regexp{}
	factW := map[wantKey][]*factWant{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The expectation may trail other comment content on the
				// same line (e.g. asserting a diagnostic anchored to a
				// malformed directive comment).
				i := strings.LastIndex(c.Text, "// want ")
				if i < 0 {
					continue
				}
				rest := c.Text[i+len("// want "):]
				pos := fset.Position(c.Pos())
				key := wantKey{pos.Filename, pos.Line}
				for _, tok := range splitPatterns(t, pos, rest) {
					re, err := regexp.Compile(tok.pattern)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, tok.pattern, err)
					}
					if tok.name != "" {
						factW[key] = append(factW[key], &factWant{name: tok.name, re: re})
					} else {
						diags[key] = append(diags[key], re)
					}
				}
			}
		}
	}
	return diags, factW
}

// wantToken is one parsed expectation: a diagnostic pattern, or (with a
// name) a fact assertion.
type wantToken struct {
	name    string
	pattern string
}

// splitPatterns tokenizes a want comment: quoted or back-quoted patterns,
// each optionally prefixed by an identifier and a colon.
func splitPatterns(t *testing.T, pos token.Position, s string) []wantToken {
	t.Helper()
	var toks []wantToken
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return toks
		}
		var name string
		if i := strings.IndexAny(s, ":`\""); i >= 0 && s[i] == ':' {
			name = s[:i]
			s = s[i+1:]
			if s == "" {
				t.Fatalf("%s: want expectation %q has a name but no pattern", pos, name)
			}
		}
		quote := s[0]
		if quote != '`' && quote != '"' {
			t.Fatalf("%s: malformed want expectation near %q", pos, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern %q", pos, s)
		}
		toks = append(toks, wantToken{name: name, pattern: s[1 : 1+end]})
		s = s[end+2:]
	}
}

// matchWant returns the index of the first expectation matching msg.
func matchWant(exps []*regexp.Regexp, msg string) int {
	for i, re := range exps {
		if re.MatchString(msg) {
			return i
		}
	}
	return -1
}

// loader type-checks testdata packages. Imports are resolved first against
// the testdata/src tree (so fixtures can model dependencies like the par
// package without touching the real module), then through the standard
// library's source importer.
type loader struct {
	fset  *token.FileSet
	root  string
	std   types.Importer
	cache map[string]*types.Package
	// order records every in-tree package in type-check completion order —
	// dependencies complete before their importers, so iterating order is a
	// topological walk of the fixture's import DAG.
	order []loadedPkg
}

// loadedPkg is one type-checked fixture package with everything an analyzer
// pass needs.
type loadedPkg struct {
	files []*ast.File
	tpkg  *types.Package
	info  *types.Info
}

func (l *loader) check(pkgpath string) ([]*ast.File, *types.Package, *types.Info, error) {
	dir := filepath.Join(l.root, pkgpath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkgpath, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	l.order = append(l.order, loadedPkg{files: files, tpkg: tpkg, info: info})
	return files, tpkg, info, nil
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if _, err := os.Stat(filepath.Join(l.root, path)); err == nil {
		_, tpkg, _, err := l.check(path)
		if err != nil {
			return nil, err
		}
		l.cache[path] = tpkg
		return tpkg, nil
	}
	if l.std == nil {
		l.std = importer.ForCompiler(l.fset, "source", nil)
	}
	p, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.cache[path] = p
	return p, nil
}
