// Package analysistest runs analyzers over small testdata packages and
// checks their diagnostics against `// want` comment expectations — the
// same convention as golang.org/x/tools/go/analysis/analysistest, on which
// this offline re-implementation is modelled.
//
// A test package lives under testdata/src/<name>/ next to the analyzer's
// test file. Each line that should be flagged carries a comment of the
// form
//
//	x = append(x, k) // want `map-range loop`
//
// where the back-quoted (or double-quoted) string is a regular expression
// matched against the diagnostic message. Several expectations may follow
// one `want`. Lines without a matching diagnostic, and diagnostics without
// a matching expectation, fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"postopc/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each testdata package, applies the analyzer, and compares the
// findings against the `// want` expectations in the sources.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runOne(t, testdata, a, pkg)
		})
	}
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{fset: fset, root: filepath.Join(testdata, "src"), cache: map[string]*types.Package{}}
	files, tpkg, info, err := ld.check(pkgpath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgpath, err)
	}
	findings, err := analysis.Run(a, fset, files, tpkg, info)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants := collectWants(t, fset, files)
	for _, f := range findings {
		key := wantKey{f.Pos.Filename, f.Pos.Line}
		if i := matchWant(wants[key], f.Message); i >= 0 {
			wants[key] = append(wants[key][:i], wants[key][i+1:]...)
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
	}
	for key, exps := range wants {
		for _, e := range exps {
			t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, e.String())
		}
	}
}

type wantKey struct {
	file string
	line int
}

// collectWants parses the `// want` expectations of all files.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				key := wantKey{pos.Filename, pos.Line}
				for _, pat := range splitPatterns(rest) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

// splitPatterns extracts the quoted or back-quoted expectation strings.
func splitPatterns(s string) []string {
	var pats []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return pats
		}
		quote := s[0]
		if quote != '`' && quote != '"' {
			return pats
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return pats
		}
		pats = append(pats, s[1:1+end])
		s = s[end+2:]
	}
}

// matchWant returns the index of the first expectation matching msg.
func matchWant(exps []*regexp.Regexp, msg string) int {
	for i, re := range exps {
		if re.MatchString(msg) {
			return i
		}
	}
	return -1
}

// loader type-checks testdata packages. Imports are resolved first against
// the testdata/src tree (so fixtures can model dependencies like the par
// package without touching the real module), then through the standard
// library's source importer.
type loader struct {
	fset  *token.FileSet
	root  string
	std   types.Importer
	cache map[string]*types.Package
}

func (l *loader) check(pkgpath string) ([]*ast.File, *types.Package, *types.Info, error) {
	dir := filepath.Join(l.root, pkgpath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkgpath, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return files, tpkg, info, nil
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if _, err := os.Stat(filepath.Join(l.root, path)); err == nil {
		_, tpkg, _, err := l.check(path)
		if err != nil {
			return nil, err
		}
		l.cache[path] = tpkg
		return tpkg, nil
	}
	if l.std == nil {
		l.std = importer.ForCompiler(l.fset, "source", nil)
	}
	p, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.cache[path] = p
	return p, nil
}
