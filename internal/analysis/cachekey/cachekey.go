// Package cachekey defines an analyzer for the flow's staged, cacheable
// pipeline functions.
//
// The pattern cache substitutes a stored artifact for a recomputation
// whenever two calls have equal signatures, so a stage function must be a
// pure function of its parameters: the stage environment parameter is
// hashed into every signature, and nothing outside it may influence the
// result. Two leaks are purely syntactic and are enforced here: a stage
// declared as a method (the receiver smuggles state past the signature),
// and a stage reading a package-level variable of its own package (hidden
// global state the signature never sees). A parameter of the hosting
// package's Flow type is flagged for the same reason — Flow carries lazily
// built state that is not serialized; stages must take the explicit stage
// environment instead.
//
// The check is shallow by design: it inspects stage-prefixed declarations
// only, and does not trace helpers they call. Cross-package variables
// (litho.Nominal and friends) are deliberately exempt — exported package
// state of other layers is part of the keyed configuration, and folding it
// belongs to the fingerprint builder, which the determinism tests cover.
package cachekey

import (
	"go/ast"
	"go/types"
	"strings"

	"postopc/internal/analysis"
)

// Analyzer is the cachekey check.
var Analyzer = &analysis.Analyzer{
	Name: "cachekey",
	Doc: "flag stage functions that can read state their cache signature does not capture\n\n" +
		"Functions named stage* feed content-addressed caches: their results are\n" +
		"recalled by a signature over their parameters, so they must not be\n" +
		"methods, must not read package-level variables of their own package,\n" +
		"and must not take the package's Flow type as a parameter.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !isStageName(fd.Name.Name) {
				continue
			}
			if fd.Recv != nil {
				pass.Reportf(fd.Name.Pos(),
					"stage function %s is a method; the receiver bypasses the cache signature — pass state through the stage environment parameter",
					fd.Name.Name)
			}
			checkParams(pass, fd)
			if fd.Body != nil {
				checkBody(pass, fd)
			}
		}
	}
	return nil
}

// isStageName matches the staged-pipeline naming convention.
func isStageName(name string) bool {
	rest, ok := strings.CutPrefix(name, "stage")
	if !ok {
		rest, ok = strings.CutPrefix(name, "Stage")
	}
	return ok && rest != ""
}

// checkParams flags parameters of the hosting package's Flow type.
func checkParams(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Flow" && obj.Pkg() == pass.Pkg {
			pass.Reportf(field.Type.Pos(),
				"stage function %s takes %s as a parameter; Flow carries unserialized state — pass the stage environment instead",
				fd.Name.Name, types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
		}
	}
}

// checkBody flags reads of the package's own package-level variables.
func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.Pkg() != pass.Pkg {
			return true
		}
		if obj.Parent() != pass.Pkg.Scope() {
			return true
		}
		pass.Reportf(id.Pos(),
			"stage function %s reads package variable %s, which is not captured by its cache signature — move it into the stage environment",
			fd.Name.Name, id.Name)
		return true
	})
}

// isTestFile reports whether the file is a _test.go file.
func isTestFile(pass *analysis.Pass, file *ast.File) bool {
	name := pass.Fset.Position(file.Pos()).Filename
	return strings.HasSuffix(name, "_test.go")
}
