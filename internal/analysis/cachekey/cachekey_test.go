package cachekey_test

import (
	"testing"

	"postopc/internal/analysis/analysistest"
	"postopc/internal/analysis/cachekey"
)

func TestCachekey(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), cachekey.Analyzer, "cachekey")
}
