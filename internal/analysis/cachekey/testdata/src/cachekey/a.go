package cachekey

// The fixtures model the flow's staged pipeline: stageEnv is the keyed
// environment, Flow the stateful orchestrator that must stay out of stage
// signatures.

type stageEnv struct {
	Gain  float64
	Limit int
}

type Flow struct {
	Gain    float64
	tuning  int
	Verbose bool
}

var globalGain = 1.5

var registry = map[string]int{}

const nominalDose = 1.0 // constants are fine: they cannot drift per-process

func stageScale(env *stageEnv, v float64) float64 {
	return env.Gain * v * nominalDose
}

func stageLeakGlobal(env *stageEnv, v float64) float64 {
	return v * globalGain // want `stage function stageLeakGlobal reads package variable globalGain`
}

func stageLeakMap(env *stageEnv, name string) int {
	return registry[name] // want `stage function stageLeakMap reads package variable registry`
}

func (f *Flow) stageMethod(v float64) float64 { // want `stage function stageMethod is a method`
	return f.Gain * v
}

func stageTakesFlow(f *Flow, v float64) float64 { // want `stage function stageTakesFlow takes \*Flow as a parameter`
	return f.Gain * v
}

func stageTakesFlowValue(f Flow, v float64) float64 { // want `stage function stageTakesFlowValue takes Flow as a parameter`
	return f.Gain * v
}

func StageExported(env *stageEnv, v float64) float64 {
	return v * globalGain // want `stage function StageExported reads package variable globalGain`
}

// Non-stage helpers may read package state freely.
func scaleHelper(v float64) float64 {
	return v * globalGain
}

// A function merely named "stage" (no suffix) is not part of the
// convention.
func stage(v float64) float64 {
	return v * globalGain
}

// Writes are reads too, for this purpose: mutating package state from a
// stage breaks replay just as surely.
func stageMutates(env *stageEnv) {
	globalGain = env.Gain // want `stage function stageMutates reads package variable globalGain`
}

func stageSuppressed(env *stageEnv, v float64) float64 {
	return v * globalGain //postopc:nolint:cachekey fixture exercises suppression
}
