// Package deadassign defines an analyzer that flags `_ = x` statements
// where x is a plain local or package variable.
//
// A blank assignment of a bare identifier exists only to silence the
// compiler's unused-variable error: the value was computed, then thrown
// away. Either the computation matters (use the value) or it does not
// (delete it). Discarding call results (`_ = w.Close()`) or using the
// blank in a tuple (`_, err := f()`) is legitimate and not flagged.
package deadassign

import (
	"go/ast"
	"go/token"
	"go/types"

	"postopc/internal/analysis"
)

// Analyzer is the deadassign check.
var Analyzer = &analysis.Analyzer{
	Name: "deadassign",
	Doc: "flag `_ = x` suppressions of unused values\n\n" +
		"The pattern hides a value that was computed and never used; use the\n" +
		"value or delete the computation feeding it.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			blank, ok := as.Lhs[0].(*ast.Ident)
			if !ok || blank.Name != "_" {
				return true
			}
			rhs, ok := ast.Unparen(as.Rhs[0]).(*ast.Ident)
			if !ok {
				return true
			}
			if _, isVar := pass.TypesInfo.Uses[rhs].(*types.Var); !isVar {
				return true
			}
			pass.Reportf(as.Pos(), "dead assignment `_ = %s` suppresses an unused value; use %s or delete the computation feeding it", rhs.Name, rhs.Name)
			return true
		})
	}
	return nil
}
