package deadassign_test

import (
	"testing"

	"postopc/internal/analysis/analysistest"
	"postopc/internal/analysis/deadassign"
)

func TestDeadassign(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), deadassign.Analyzer, "deadassign")
}
