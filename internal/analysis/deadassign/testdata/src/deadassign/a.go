package deadassign

func compute() int { return 1 }

func pair() (int, error) { return 1, nil }

func bad() int {
	x := compute()
	_ = x // want "dead assignment `_ = x` suppresses an unused value"
	return compute()
}

func goodTuple() int {
	v, _ := pair() // blank in a tuple is a legitimate partial discard
	return v
}

func goodCallDiscard(f func() error) {
	_ = f() // discarding a call result is an explicit decision, not a suppression
}

func suppressed() {
	z := compute()
	_ = z //postopc:nolint:deadassign fixture exercises suppression
}
