// Package detrand defines an analyzer that forbids ambient sources of
// nondeterminism in non-test library code: the global math/rand functions
// (including rand.Seed) and time.Now.
//
// The flow's parallel Monte Carlo is byte-identical to its serial run only
// because every worker draws from a rand.Rand it constructed from an
// explicit per-sample seed. A single call to a global rand top-level
// function (which draws from the shared, lock-protected global source) or
// to time.Now (wall-clock input) silently breaks that reproducibility
// contract, and the failure shows up later as a flaky benchmark rather
// than a build error. This analyzer turns it into a build error.
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"postopc/internal/analysis"
)

// Analyzer is the detrand check.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid global math/rand functions and time.Now in library code\n\n" +
		"Every RNG must be locally constructed via rand.New(rand.NewSource(seed))\n" +
		"so parallel runs replay byte-identically; wall-clock time must be read\n" +
		"at the CLI boundary (package main) and passed in.",
	Run: run,
}

// constructors are the math/rand top-level functions that build local
// generators rather than drawing from the global source.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				// Methods on a locally constructed *rand.Rand are exactly
				// the sanctioned pattern.
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if fn.Name() == "Seed" {
					pass.Reportf(call.Pos(), "rand.Seed reseeds the shared global source; construct a local rand.New(rand.NewSource(seed)) instead")
				} else if !constructors[fn.Name()] {
					pass.Reportf(call.Pos(), "global rand.%s draws from the shared source and breaks parallel==serial determinism; use a locally constructed rand.New(rand.NewSource(seed))", fn.Name())
				}
			case "time":
				if fn.Name() == "Now" && pass.Pkg.Name() != "main" {
					pass.Reportf(call.Pos(), "time.Now in library code makes results depend on the wall clock; read time at the CLI boundary and pass it in")
				}
			}
			return true
		})
	}
	return nil
}

// calleeFunc resolves the called function object, if it is a plain or
// package-qualified function reference.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// isTestFile reports whether the file is a _test.go file.
func isTestFile(pass *analysis.Pass, file *ast.File) bool {
	name := pass.Fset.Position(file.Pos()).Filename
	return strings.HasSuffix(name, "_test.go")
}
