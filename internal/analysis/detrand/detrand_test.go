package detrand_test

import (
	"testing"

	"postopc/internal/analysis/analysistest"
	"postopc/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detrand.Analyzer, "detrand", "detrandmain")
}
