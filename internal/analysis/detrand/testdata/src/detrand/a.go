package detrand

import (
	"math/rand"
	"time"
)

func bad(seed int64) {
	rand.Seed(seed)   // want `rand\.Seed reseeds the shared global source`
	_ = rand.Intn(10) // want `global rand\.Intn draws from the shared source`
	_ = rand.Float64() // want `global rand\.Float64 draws from the shared source`
	_ = time.Now() // want `time\.Now in library code`
}

func good(seed int64) int {
	rnd := rand.New(rand.NewSource(seed))
	return rnd.Intn(10) // methods on a local generator are the sanctioned pattern
}

func suppressed() {
	_ = rand.Int63() //postopc:nolint:detrand fixture exercises suppression
}
