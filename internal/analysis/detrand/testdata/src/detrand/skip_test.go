package detrand

import "math/rand"

// Test files may use the global source freely; the analyzer only guards
// library code.
func shuffleForTest(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
