package main

import (
	"fmt"
	"math/rand"
	"time"
)

func main() {
	start := time.Now() // the CLI boundary may read the wall clock
	fmt.Println(rand.Intn(10), time.Since(start)) // want `global rand\.Intn draws from the shared source`
}
