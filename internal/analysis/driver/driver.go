// Package driver runs a suite of analyzers over a set of loaded packages
// in dependency order, in parallel, with deterministic output.
//
// Ordering is the whole point. Facts flow strictly forward along import
// edges, so a package may only be analyzed once every loaded package it
// imports has been: the driver levels the import DAG (level = longest
// import chain below the package) and fans each level's (package ×
// analyzer) grid out on the internal/par worker pool. Passes within a
// level share nothing but the concurrency-safe fact store, so any
// schedule computes the same findings; the driver then imposes one
// canonical order (file, line, column, analyzer, message) so serial and
// parallel runs are byte-identical at any worker count — the same
// contract the rest of the repository holds for simulation results.
package driver

import (
	"sort"
	"sync/atomic"

	"postopc/internal/analysis"
	"postopc/internal/analysis/load"
	"postopc/internal/obs"
	"postopc/internal/par"
)

// Options configure one driver run.
type Options struct {
	// Workers bounds the worker pool; <= 0 selects GOMAXPROCS, 1 is a
	// serial run. Results are identical at any setting.
	Workers int
	// Facts is the fact store to thread through the run; nil allocates a
	// fresh one. Callers pre-seed it with facts decoded from separately
	// analyzed units (the vet .cfg protocol).
	Facts *analysis.Facts
}

// Timing is the accumulated wall-clock of one analyzer across every
// package of a run. Purely informational: it never enters findings or
// SARIF output, which stay deterministic.
type Timing struct {
	// Analyzer names the check.
	Analyzer string
	// Nanos is the summed per-pass wall-clock in nanoseconds.
	Nanos int64
}

// Result is the outcome of one driver run.
type Result struct {
	// Findings are every surviving finding, in canonical order.
	Findings []analysis.Finding
	// Timings mirror the analyzer list, in suite order.
	Timings []Timing
	// Facts is the fact store after the run (for encoding into a vet
	// facts file).
	Facts *analysis.Facts
}

// Run applies every analyzer to every package, honoring import
// dependencies between the loaded packages.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer, opts Options) (*Result, error) {
	facts := opts.Facts
	if facts == nil {
		facts = analysis.NewFacts()
	}
	analysis.RegisterFactTypes(analyzers)
	levels := level(pkgs)
	nanos := make([]int64, len(analyzers))

	type task struct {
		pkg *load.Package
		az  int
	}
	var findings []analysis.Finding
	for _, lvl := range levels {
		tasks := make([]task, 0, len(lvl)*len(analyzers))
		for _, p := range lvl {
			for ai := range analyzers {
				tasks = append(tasks, task{pkg: p, az: ai})
			}
		}
		slots := make([][]analysis.Finding, len(tasks))
		err := par.ForEach(len(tasks), func(i int) error {
			t := tasks[i]
			a := analyzers[t.az]
			t0 := obs.Monotonic()
			fs, err := analysis.RunWithFacts(a, t.pkg.Fset, t.pkg.Syntax, t.pkg.Types, t.pkg.Info, facts)
			atomic.AddInt64(&nanos[t.az], obs.Monotonic()-t0)
			if err != nil {
				return err
			}
			if !t.pkg.FactsOnly {
				slots[i] = fs
			}
			return nil
		}, par.Workers(opts.Workers))
		if err != nil {
			return nil, err
		}
		for _, fs := range slots {
			findings = append(findings, fs...)
		}
	}
	sortFindings(findings)
	res := &Result{Findings: findings, Facts: facts}
	for ai, a := range analyzers {
		res.Timings = append(res.Timings, Timing{Analyzer: a.Name, Nanos: nanos[ai]})
	}
	return res, nil
}

// sortFindings imposes the canonical output order: position, then
// analyzer, then message. Per-pass findings arrive position-sorted
// already; the global sort makes interleaving across packages and
// analyzers schedule-independent.
func sortFindings(fs []analysis.Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		switch {
		case a.Pos.Filename != b.Pos.Filename:
			return a.Pos.Filename < b.Pos.Filename
		case a.Pos.Line != b.Pos.Line:
			return a.Pos.Line < b.Pos.Line
		case a.Pos.Column != b.Pos.Column:
			return a.Pos.Column < b.Pos.Column
		case a.Analyzer != b.Analyzer:
			return a.Analyzer < b.Analyzer
		default:
			return a.Message < b.Message
		}
	})
}

// level topologically layers the packages: level k holds every package
// whose longest in-set import chain has length k. Packages within a level
// are mutually independent and sorted by import path; import cycles
// cannot occur in valid Go, but a defensive cap keeps malformed input
// from looping forever.
func level(pkgs []*load.Package) [][]*load.Package {
	byPath := make(map[string]*load.Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	depth := make(map[string]int, len(pkgs))
	var depthOf func(p *load.Package, guard int) int
	depthOf = func(p *load.Package, guard int) int {
		if d, ok := depth[p.ImportPath]; ok {
			return d
		}
		d := 0
		if guard < len(pkgs) {
			for _, imp := range p.Imports {
				dep, ok := byPath[imp]
				if !ok {
					continue // outside the loaded set: facts cannot flow from it
				}
				if dd := depthOf(dep, guard+1) + 1; dd > d {
					d = dd
				}
			}
		}
		depth[p.ImportPath] = d
		return d
	}
	maxDepth := 0
	for _, p := range pkgs {
		if d := depthOf(p, 0); d > maxDepth {
			maxDepth = d
		}
	}
	levels := make([][]*load.Package, maxDepth+1)
	for _, p := range pkgs {
		levels[depth[p.ImportPath]] = append(levels[depth[p.ImportPath]], p)
	}
	for _, lvl := range levels {
		sort.Slice(lvl, func(i, j int) bool { return lvl[i].ImportPath < lvl[j].ImportPath })
	}
	return levels
}
