package driver_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"postopc/internal/analysis"
	"postopc/internal/analysis/driver"
	"postopc/internal/analysis/keycover"
	"postopc/internal/analysis/load"
	"postopc/internal/analysis/nolint"
	"postopc/internal/analysis/sarif"
)

// writeModule materializes a three-package module (dep <- mid <- top) whose
// sources trip keycover across package boundaries, so parallel schedules
// have real fact dependencies to respect.
func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.24\n",
		"dep/dep.go": `package dep

func appendKeyInt(dst []byte, vs ...int64) []byte { return dst }

// Partial's key misses Skew.
type Partial struct {
	Gain float64
	Skew float64
}

func (p Partial) AppendKey(dst []byte) []byte {
	return appendKeyInt(dst, int64(p.Gain))
}

type Plain struct {
	X int64
	Y int64
}
`,
		"mid/mid.go": `package mid

import "tmpmod/dep"

func appendKeyInt(dst []byte, vs ...int64) []byte { return dst }

type Env struct {
	Part dep.Partial
	Raw  dep.Plain
}

func envKey(e *Env) []byte {
	b := e.Part.AppendKey(nil)
	b = appendKeyInt(b, e.Raw.X)
	return b
}

var _ = envKey
`,
		"top/top.go": `package top

import "tmpmod/mid"

var _ = mid.Env{} //postopc:nolint bare directive, should be flagged
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunFindsCrossPackageFindings(t *testing.T) {
	dir := writeModule(t)
	pkgs, err := load.Packages(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	analyzers := []*analysis.Analyzer{keycover.Analyzer, nolint.Analyzer}
	res, err := driver.Run(pkgs, analyzers, driver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// dep: Partial omits Skew. mid: delegation to incomplete Partial, and
	// piecewise Plain omits Y. top: bare nolint directive.
	wantSubstr := []string{
		"omits field Skew",
		"delegates to the incomplete cache key of dep.Partial",
		"field-by-field but omits field Y",
		"must name the analyzers",
	}
	if len(res.Findings) != len(wantSubstr) {
		t.Fatalf("got %d findings, want %d:\n%v", len(res.Findings), len(wantSubstr), res.Findings)
	}
	for i, sub := range wantSubstr {
		if !bytes.Contains([]byte(res.Findings[i].Message), []byte(sub)) {
			t.Errorf("finding %d = %q; want substring %q", i, res.Findings[i].Message, sub)
		}
	}
	if len(res.Timings) != len(analyzers) {
		t.Fatalf("got %d timings, want %d", len(res.Timings), len(analyzers))
	}
	for i, a := range analyzers {
		if res.Timings[i].Analyzer != a.Name {
			t.Errorf("timing %d names %q, want %q", i, res.Timings[i].Analyzer, a.Name)
		}
	}
}

// TestRunDeterministicAcrossWorkerCounts is the driver's core contract: the
// rendered SARIF document is byte-identical between a serial run and
// parallel runs at several worker counts.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	dir := writeModule(t)
	analyzers := []*analysis.Analyzer{keycover.Analyzer, nolint.Analyzer}
	render := func(workers int) []byte {
		t.Helper()
		// A fresh load per run: shared type-checked state must not be the
		// only reason outputs agree.
		pkgs, err := load.Packages(dir, "./...")
		if err != nil {
			t.Fatal(err)
		}
		res, err := driver.Run(pkgs, analyzers, driver.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sarif.Write(&buf, sarif.New("postopc-lint", analyzers, res.Findings, dir)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	for _, workers := range []int{0, 2, 4, 8} {
		if got := render(workers); !bytes.Equal(got, serial) {
			t.Errorf("workers=%d output differs from serial run:\n%s\nvs\n%s", workers, got, serial)
		}
	}
}
