package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
	"sync"
)

// Facts: typed values an analyzer attaches to objects or packages while
// analyzing one package, visible to later analyses of packages that import
// it. They are the channel that turns single-package syntactic passes into
// whole-program checks — keycover learns which foreign types carry a
// complete AppendKey serialization, allocbudget learns which foreign
// functions are declared allocation-free — without ever re-analyzing a
// dependency.
//
// The design mirrors golang.org/x/tools/go/analysis: a Fact is a pointer
// to a struct implementing the marker method AFact, facts are keyed by
// (object, concrete fact type), and they serialize with encoding/gob so
// separate driver processes (the go vet .cfg protocol, one process per
// package unit) can hand them across package boundaries. Within one
// in-process driver run the store is shared and object identity is
// preserved by the shared importer, so no serialization happens at all.

// Fact is a value attached to an object or package by one analyzer and
// importable by later passes over importing packages. Implementations must
// be pointers to gob-encodable structs and are registered via
// Analyzer.FactTypes.
type Fact interface {
	// AFact marks the type as a fact; it is never called.
	AFact()
}

// objFactKey identifies one object fact: the object it decorates and the
// concrete fact type (one analyzer may attach several fact types to the
// same object).
type objFactKey struct {
	obj types.Object
	t   reflect.Type
}

// pkgFactKey identifies one package fact.
type pkgFactKey struct {
	path string
	t    reflect.Type
}

// Facts is a concurrency-safe store of object and package facts shared by
// every pass of one driver run.
type Facts struct {
	mu  sync.RWMutex
	obj map[objFactKey]Fact
	pkg map[pkgFactKey]Fact
}

// NewFacts returns an empty store.
func NewFacts() *Facts {
	return &Facts{obj: map[objFactKey]Fact{}, pkg: map[pkgFactKey]Fact{}}
}

// factType validates the fact's dynamic type (pointer to struct) and
// returns it.
func factType(fact Fact) reflect.Type {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("analysis: fact %T is not a pointer", fact))
	}
	return t
}

// setObject stores an object fact, replacing any previous fact of the same
// type on the same object.
func (f *Facts) setObject(obj types.Object, fact Fact) {
	k := objFactKey{obj, factType(fact)}
	f.mu.Lock()
	f.obj[k] = fact
	f.mu.Unlock()
}

// getObject copies the stored fact of *fact's type for obj into fact and
// reports whether one existed.
func (f *Facts) getObject(obj types.Object, fact Fact) bool {
	k := objFactKey{obj, factType(fact)}
	f.mu.RLock()
	stored, ok := f.obj[k]
	f.mu.RUnlock()
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// setPackage stores a package fact.
func (f *Facts) setPackage(path string, fact Fact) {
	k := pkgFactKey{path, factType(fact)}
	f.mu.Lock()
	f.pkg[k] = fact
	f.mu.Unlock()
}

// getPackage copies the stored package fact of *fact's type into fact.
func (f *Facts) getPackage(path string, fact Fact) bool {
	k := pkgFactKey{path, factType(fact)}
	f.mu.RLock()
	stored, ok := f.pkg[k]
	f.mu.RUnlock()
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// ObjectFact is one exported object fact, for inspection and testing.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// ObjectFactsOf returns every object fact attached to objects of the given
// package, sorted by object path and fact type for determinism.
func (f *Facts) ObjectFactsOf(pkg *types.Package) []ObjectFact {
	f.mu.RLock()
	var out []ObjectFact
	for k, v := range f.obj {
		if k.obj.Pkg() == pkg {
			out = append(out, ObjectFact{Object: k.obj, Fact: v})
		}
	}
	f.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		pi, _ := ObjectPath(out[i].Object)
		pj, _ := ObjectPath(out[j].Object)
		if pi != pj {
			return pi < pj
		}
		return fmt.Sprintf("%T", out[i].Fact) < fmt.Sprintf("%T", out[j].Fact)
	})
	return out
}

// ObjectPath names a package-level object, a method, or a struct field so
// a fact attached to it can be resolved by a separate driver process that
// type-checked the same package independently. Supported shapes:
//
//	Name         package-scope func, type, var or const
//	Type.Method  method of a package-level named type (any receiver form)
//	Type.Field   field of a package-level named struct type
//
// Objects outside these shapes (locals, interface methods of anonymous
// types, ...) are not addressable; ok is false and the fact stays
// process-local.
func ObjectPath(obj types.Object) (path string, ok bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	scope := obj.Pkg().Scope()
	if scope.Lookup(obj.Name()) == obj {
		return obj.Name(), true
	}
	// Method: receiver base type names the owner.
	if fn, isFunc := obj.(*types.Func); isFunc {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
			}
			if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() == obj.Pkg() {
				return named.Obj().Name() + "." + obj.Name(), true
			}
		}
		return "", false
	}
	// Struct field: scan the package's named struct types.
	if v, isVar := obj.(*types.Var); isVar && v.IsField() {
		for _, name := range scope.Names() {
			tn, isType := scope.Lookup(name).(*types.TypeName)
			if !isType {
				continue
			}
			st, isStruct := tn.Type().Underlying().(*types.Struct)
			if !isStruct {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == obj {
					return name + "." + obj.Name(), true
				}
			}
		}
	}
	return "", false
}

// FindObject resolves an ObjectPath within pkg, returning nil when the
// path does not resolve (the importing package sees a different version of
// the source than the exporting one did).
func FindObject(pkg *types.Package, path string) types.Object {
	name, rest, nested := strings.Cut(path, ".")
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	if !nested {
		return obj
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if ok {
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == rest {
				return m
			}
		}
	}
	if st, ok := tn.Type().Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); f.Name() == rest {
				return f
			}
		}
	}
	return nil
}

// factRecord is the gob wire form of one fact.
type factRecord struct {
	// Object is the ObjectPath of the decorated object; empty for a
	// package fact.
	Object string
	// Fact is the fact value; its concrete type must be gob-registered
	// (RegisterFactTypes).
	Fact Fact
}

// RegisterFactTypes gob-registers the fact prototypes of every analyzer so
// Encode/Decode can carry them through interface-typed records. Safe to
// call repeatedly.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// Encode serializes every fact attached to pkg or its objects, in a
// deterministic order. The result is the package's contribution to a vet
// tool's .vetx facts file.
func (f *Facts) Encode(pkg *types.Package) ([]byte, error) {
	var recs []factRecord
	f.mu.RLock()
	for k, v := range f.obj {
		if k.obj.Pkg() != pkg {
			continue
		}
		path, ok := ObjectPath(k.obj)
		if !ok {
			continue // process-local fact; unreachable from other units
		}
		recs = append(recs, factRecord{Object: path, Fact: v})
	}
	for k, v := range f.pkg {
		if k.path == pkg.Path() {
			recs = append(recs, factRecord{Fact: v})
		}
	}
	f.mu.RUnlock()
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Object != recs[j].Object {
			return recs[i].Object < recs[j].Object
		}
		return fmt.Sprintf("%T", recs[i].Fact) < fmt.Sprintf("%T", recs[j].Fact)
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(recs); err != nil {
		return nil, fmt.Errorf("analysis: encoding facts of %s: %w", pkg.Path(), err)
	}
	return buf.Bytes(), nil
}

// Decode merges a dependency package's encoded facts into the store,
// resolving object paths against pkg. Unresolvable paths are skipped: a
// missing object means the fact decorates something this unit cannot see,
// so no pass will ask for it either.
func (f *Facts) Decode(pkg *types.Package, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var recs []factRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&recs); err != nil {
		return fmt.Errorf("analysis: decoding facts of %s: %w", pkg.Path(), err)
	}
	for _, r := range recs {
		if r.Fact == nil {
			continue
		}
		if r.Object == "" {
			f.setPackage(pkg.Path(), r.Fact)
			continue
		}
		if obj := FindObject(pkg, r.Object); obj != nil {
			f.setObject(obj, r.Fact)
		}
	}
	return nil
}
