package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// factsSrc declares one of every ObjectPath-addressable shape.
const factsSrc = `package p

type T struct {
	A int
	B string
}

func (t T) M() int  { return t.A }
func (t *T) PM()    {}
func F()            {}

var V int
const C = 1
`

type testFact struct{ N int }

func (*testFact) AFact() {}

func (f *testFact) String() string { return "test" }

// checkFactsSrc type-checks factsSrc into a fresh package.
func checkFactsSrc(t *testing.T) *types.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", factsSrc, 0)
	if err != nil {
		t.Fatal(err)
	}
	conf := types.Config{}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestObjectPathShapes(t *testing.T) {
	pkg := checkFactsSrc(t)
	scope := pkg.Scope()
	lookup := func(path string) types.Object {
		obj := FindObject(pkg, path)
		if obj == nil {
			t.Fatalf("FindObject(%q) = nil", path)
		}
		return obj
	}
	for _, path := range []string{"T", "F", "V", "C", "T.M", "T.PM", "T.A", "T.B"} {
		obj := lookup(path)
		got, ok := ObjectPath(obj)
		if !ok || got != path {
			t.Errorf("ObjectPath(%v) = %q, %v; want %q", obj, got, ok, path)
		}
	}
	// Package-scope lookups resolve to the same objects FindObject returns.
	if lookup("T") != scope.Lookup("T") {
		t.Errorf("FindObject(T) != scope lookup")
	}
	// Unaddressable paths resolve to nil, not a panic.
	for _, path := range []string{"Missing", "T.Missing", "V.X"} {
		if obj := FindObject(pkg, path); obj != nil {
			t.Errorf("FindObject(%q) = %v; want nil", path, obj)
		}
	}
}

func TestFactsEncodeDecodeRoundTrip(t *testing.T) {
	RegisterFactTypes([]*Analyzer{{Name: "test", FactTypes: []Fact{new(testFact)}}})

	// Export facts against one type-check of the source...
	pkgA := checkFactsSrc(t)
	facts := NewFacts()
	facts.setObject(pkgA.Scope().Lookup("F"), &testFact{N: 1})
	facts.setObject(FindObject(pkgA, "T.M"), &testFact{N: 2})
	facts.setObject(FindObject(pkgA, "T.A"), &testFact{N: 3})
	facts.setPackage(pkgA.Path(), &testFact{N: 9})
	data, err := facts.Encode(pkgA)
	if err != nil {
		t.Fatal(err)
	}
	// Encoding is deterministic.
	data2, err := facts.Encode(pkgA)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Errorf("Encode is not deterministic")
	}

	// ...and resolve them against an independent type-check, as a separate
	// driver process (vet .cfg protocol) would.
	pkgB := checkFactsSrc(t)
	decoded := NewFacts()
	if err := decoded.Decode(pkgB, data); err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]int{"F": 1, "T.M": 2, "T.A": 3} {
		var got testFact
		if !decoded.getObject(FindObject(pkgB, path), &got) {
			t.Errorf("fact on %s lost in round trip", path)
			continue
		}
		if got.N != want {
			t.Errorf("fact on %s = %d; want %d", path, got.N, want)
		}
	}
	var pf testFact
	if !decoded.getPackage(pkgB.Path(), &pf) || pf.N != 9 {
		t.Errorf("package fact = %+v; want N=9", pf)
	}
	// Facts never attached stay absent.
	var absent testFact
	if decoded.getObject(FindObject(pkgB, "V"), &absent) {
		t.Errorf("unexpected fact on V")
	}
}

func TestDecodeEmptyAndNil(t *testing.T) {
	pkg := checkFactsSrc(t)
	f := NewFacts()
	if err := f.Decode(pkg, nil); err != nil {
		t.Fatalf("Decode(nil) = %v", err)
	}
	if err := f.Decode(pkg, []byte{}); err != nil {
		t.Fatalf("Decode(empty) = %v", err)
	}
}
