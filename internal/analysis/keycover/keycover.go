// Package keycover defines the cache-key coverage analyzer: every struct
// that participates in a content-addressed cache signature must have all of
// its fields serialized into the key, or carry an explicit, reasoned
// exemption.
//
// The flow's pattern cache (PR 3) substitutes a stored artifact whenever two
// computations have equal signatures, so an input field that silently stays
// out of the serialization is a cache-poisoning bug: two distinct inputs
// collide on one key and the second run recalls the first run's artifact.
// The bug class is entirely structural — a field was added to a struct and
// the AppendKey serialization was not updated — which makes it a perfect
// static-analysis target.
//
// # What is checked
//
// A signature function is a function whose name starts with AppendKey or
// appendKey, or whose body calls one. Within signature functions the
// analyzer records which struct fields are read inside the argument or
// receiver subtree of an AppendKey-family call — only there: reading a field
// elsewhere in the function (to build an environment, say) does not
// serialize it. A named struct type becomes keyed when it declares an
// AppendKey method or when its fields are serialized field-by-field, and
// every keyed struct must account for all its fields: serialized, or
// annotated
//
//	//postopc:keyignore <reason>
//
// on the field's declaration (trailing, or on the line above). A bare
// keyignore without a reason is itself reported.
//
// # Facts
//
// The check is cross-package. Analyzing a package exports two fact types:
// Coverage on each keyed type (complete, or the missing field names) and
// Ignored on each type with keyignore'd fields. A downstream package that
// serializes a foreign struct field-by-field imports the Ignored fact so the
// exemptions recorded at the declaration hold at every use site; a package
// that embeds a foreign keyed type learns from Coverage whether the
// embedded serialization it delegates to is itself complete. Types
// serialized through their own AppendKey method are trusted here and
// checked where they are declared.
package keycover

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"postopc/internal/analysis"
)

// Coverage is the fact exported for every keyed struct type: whether its
// key serialization accounts for every field.
type Coverage struct {
	// Complete reports whether every non-ignored field is serialized.
	Complete bool
	// Missing are the unaccounted field names, sorted.
	Missing []string
}

// AFact marks Coverage as a fact.
func (*Coverage) AFact() {}

func (c *Coverage) String() string {
	if c.Complete {
		return "complete"
	}
	return "incomplete: missing " + strings.Join(c.Missing, ",")
}

// Ignored is the fact exported for every struct type with keyignore'd
// fields, so packages serializing the struct field-by-field honor the
// exemptions recorded at the declaration.
type Ignored struct {
	// Fields are the exempted field names, sorted.
	Fields []string
}

// AFact marks Ignored as a fact.
func (*Ignored) AFact() {}

func (i *Ignored) String() string {
	return "keyignore " + strings.Join(i.Fields, ",")
}

// Analyzer is the cache-key coverage check.
var Analyzer = &analysis.Analyzer{
	Name: "keycover",
	Doc: "flag struct fields that cache-key serializations omit\n\n" +
		"Structs serialized into cache signatures (an AppendKey method, or\n" +
		"field-by-field inside an AppendKey-family call) must serialize every\n" +
		"field or annotate the exceptions with //postopc:keyignore <reason>.\n" +
		"Coverage and exemptions are exported as facts, so field-by-field\n" +
		"serialization of imported structs is checked too.",
	FactTypes: []analysis.Fact{(*Coverage)(nil), (*Ignored)(nil)},
	Run:       run,
}

// keyFuncPrefix reports whether name belongs to the AppendKey family.
func keyFuncPrefix(name string) bool {
	return strings.HasPrefix(name, "AppendKey") || strings.HasPrefix(name, "appendKey")
}

// coverage is the per-package serialization record the signature-function
// walk accumulates.
type coverage struct {
	pass *analysis.Pass
	// covered holds every struct field read inside an AppendKey-family
	// call's argument or receiver subtree.
	covered map[*types.Var]bool
	// piecewise marks named types whose fields are serialized one by one;
	// firstUse anchors diagnostics about foreign ones.
	piecewise map[*types.TypeName]bool
	firstUse  map[*types.TypeName]token.Pos
	// whole marks named types handed to an AppendKey-family function as a
	// receiver or argument: their own serialization covers them, and their
	// declaring package vouches for its completeness.
	whole map[*types.TypeName]bool
	// embedded records, per outer field object, the foreign named type a
	// field's whole-serialization delegates to, for Coverage-fact checks.
	embedded map[*types.Var]*types.TypeName
}

func run(pass *analysis.Pass) error {
	cov := &coverage{
		pass:      pass,
		covered:   map[*types.Var]bool{},
		piecewise: map[*types.TypeName]bool{},
		firstUse:  map[*types.TypeName]token.Pos{},
		whole:     map[*types.TypeName]bool{},
		embedded:  map[*types.Var]*types.TypeName{},
	}
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isSignatureFunc(fd) {
				continue
			}
			cov.walk(fd.Body)
		}
	}
	ignored := collectKeyignores(pass)
	exportIgnored(pass, ignored)
	checkLocalTypes(pass, cov, ignored)
	checkForeignTypes(pass, cov)
	return nil
}

// isSignatureFunc reports whether fd participates in key serialization: an
// AppendKey-family function by name, or any function calling one.
func isSignatureFunc(fd *ast.FuncDecl) bool {
	if keyFuncPrefix(fd.Name.Name) {
		return true
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && keyFuncPrefix(calleeName(call)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// calleeName extracts the called function or method name, or "".
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// walk records serialization evidence from every AppendKey-family call in
// the body: field selections inside the call's argument and receiver
// subtrees count as covered; named receiver and argument types count as
// whole-serialized.
func (c *coverage) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !keyFuncPrefix(calleeName(call)) {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			// Method call (x.AppendKey) or package call (geom.AppendKeyInt):
			// only the former has a receiver expression to mine. A package
			// qualifier types as nothing and is skipped naturally.
			c.mark(sel.X, true)
		}
		for _, arg := range call.Args {
			c.mark(arg, true)
		}
		return true
	})
}

// mark records field selections in the subtree as covered, and (for the
// subtree root, when asWhole) the expression's named type as
// whole-serialized.
func (c *coverage) mark(expr ast.Expr, asWhole bool) {
	if asWhole {
		if tv, ok := c.pass.TypesInfo.Types[expr]; ok && tv.IsValue() {
			if tn := namedOf(tv.Type); tn != nil {
				c.whole[tn] = true
			}
		}
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := c.pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		field, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		c.covered[field] = true
		if tn := namedOf(s.Recv()); tn != nil {
			c.piecewise[tn] = true
			if p, seen := c.firstUse[tn]; !seen || sel.Pos() < p {
				c.firstUse[tn] = sel.Pos()
			}
		}
		// x.F.AppendKey / AppendKeyRect(b, x.F): F delegates to the field
		// type's own serialization.
		if tn := namedOf(c.pass.TypesInfo.TypeOf(sel)); tn != nil {
			c.embedded[field] = tn
		}
		return true
	})
}

// namedOf unwraps pointers and one slice level to the expression's named
// type, or nil. Slices unwrap because AppendKey-family helpers commonly
// take []T and serialize each element through T's own key.
func namedOf(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Named:
			return u.Obj()
		default:
			return nil
		}
	}
}

// ignoreSet maps (file, line) of //postopc:keyignore directives to whether
// the directive carries a reason.
type ignoreSet map[fileLine]bool

type fileLine struct {
	file string
	line int
}

// collectKeyignores parses the keyignore directives of the package, and
// reports the reason-less ones: an exemption without a recorded
// justification is indistinguishable from a stale one.
func collectKeyignores(pass *analysis.Pass) ignoreSet {
	set := ignoreSet{}
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, cmt := range cg.List {
				rest, ok := strings.CutPrefix(cmt.Text, "//postopc:keyignore")
				if !ok {
					continue
				}
				reason := strings.TrimSpace(rest)
				if reason == "" || strings.HasPrefix(reason, "//") {
					pass.Reportf(cmt.Pos(),
						"keyignore directive is missing its reason: //postopc:keyignore <why this field is not part of the key>")
				}
				pos := pass.Fset.Position(cmt.Pos())
				set[fileLine{pos.Filename, pos.Line}] = true
			}
		}
	}
	return set
}

// exempts reports whether field carries a keyignore directive (trailing its
// declaration line, or on the line above).
func (s ignoreSet) exempts(fset *token.FileSet, field *types.Var) bool {
	pos := fset.Position(field.Pos())
	return s[fileLine{pos.Filename, pos.Line}] || s[fileLine{pos.Filename, pos.Line - 1}]
}

// namedStructs enumerates the package-scope named struct types, sorted by
// name for deterministic diagnostics and fact export.
func namedStructs(pkg *types.Package) []*types.TypeName {
	var out []*types.TypeName
	scope := pkg.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if _, ok := tn.Type().Underlying().(*types.Struct); ok {
			out = append(out, tn)
		}
	}
	return out
}

// exportIgnored attaches an Ignored fact to every local struct type with
// keyignore'd fields — keyed or not, so the exemptions are in place before
// any importing package serializes the struct field-by-field.
func exportIgnored(pass *analysis.Pass, ignored ignoreSet) {
	for _, tn := range namedStructs(pass.Pkg) {
		st := tn.Type().Underlying().(*types.Struct)
		var fields []string
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); ignored.exempts(pass.Fset, f) {
				fields = append(fields, f.Name())
			}
		}
		if len(fields) > 0 {
			pass.ExportObjectFact(tn, &Ignored{Fields: fields})
		}
	}
}

// hasAppendKeyMethod reports whether the named type declares an
// AppendKey-family method (value or pointer receiver).
func hasAppendKeyMethod(tn *types.TypeName) bool {
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if keyFuncPrefix(named.Method(i).Name()) {
			return true
		}
	}
	return false
}

// checkLocalTypes verifies every keyed type declared in this package and
// exports its Coverage fact.
func checkLocalTypes(pass *analysis.Pass, cov *coverage, ignored ignoreSet) {
	for _, tn := range namedStructs(pass.Pkg) {
		if !hasAppendKeyMethod(tn) && !cov.piecewise[tn] {
			continue
		}
		st := tn.Type().Underlying().(*types.Struct)
		var missing []string
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == "_" || ignored.exempts(pass.Fset, f) {
				continue
			}
			if cov.accountsFor(f) {
				checkDelegation(pass, cov, f)
				continue
			}
			missing = append(missing, f.Name())
			pass.Reportf(f.Pos(),
				"cache key for %s omits field %s; serialize it with an AppendKey helper or annotate //postopc:keyignore <reason>",
				tn.Name(), f.Name())
		}
		pass.ExportObjectFact(tn, &Coverage{Complete: len(missing) == 0, Missing: missing})
	}
}

// accountsFor reports whether the walk saw field serialized: directly, or —
// for an embedded field — through promoted selections of every field of the
// embedded struct.
func (c *coverage) accountsFor(field *types.Var) bool {
	if c.covered[field] {
		return true
	}
	if !field.Embedded() {
		return false
	}
	tn := namedOf(field.Type())
	if tn == nil {
		return false
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok || st.NumFields() == 0 {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if !c.covered[st.Field(i)] {
			return false
		}
	}
	return true
}

// checkDelegation cross-checks a field whose serialization delegates to a
// foreign type's own AppendKey: if that package's keycover pass exported an
// incomplete Coverage fact, the gap surfaces here too — the importing
// package's signature inherits the collision.
func checkDelegation(pass *analysis.Pass, cov *coverage, field *types.Var) {
	tn := cov.embedded[field]
	if tn == nil || tn.Pkg() == pass.Pkg {
		return
	}
	var c Coverage
	if pass.ImportObjectFact(tn, &c) && !c.Complete {
		pass.Reportf(field.Pos(),
			"field %s delegates to the incomplete cache key of %s.%s (missing %s)",
			field.Name(), tn.Pkg().Name(), tn.Name(), strings.Join(c.Missing, ","))
	}
}

// checkForeignTypes verifies field-by-field serializations of structs
// declared in other packages: the Ignored fact exported at the declaration
// supplies the exemptions, and a field neither serialized here nor exempted
// there is reported at the first serializing use. Types handed whole to
// their own AppendKey are exempt — their declaring package checks them.
func checkForeignTypes(pass *analysis.Pass, cov *coverage) {
	var foreign []*types.TypeName
	for tn := range cov.piecewise {
		if tn.Pkg() != pass.Pkg && !cov.whole[tn] {
			foreign = append(foreign, tn)
		}
	}
	sort.Slice(foreign, func(i, j int) bool { return foreign[i].Name() < foreign[j].Name() })
	for _, tn := range foreign {
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		exempt := map[string]bool{}
		var ig Ignored
		if pass.ImportObjectFact(tn, &ig) {
			for _, name := range ig.Fields {
				exempt[name] = true
			}
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == "_" || exempt[f.Name()] || cov.accountsFor(f) {
				continue
			}
			pass.Reportf(cov.firstUse[tn],
				"cache key serializes %s.%s field-by-field but omits field %s; append it to the key or annotate //postopc:keyignore at its declaration",
				tn.Pkg().Name(), tn.Name(), f.Name())
		}
	}
}

// isTestFile reports whether the file is a _test.go file.
func isTestFile(pass *analysis.Pass, file *ast.File) bool {
	name := pass.Fset.Position(file.Pos()).Filename
	return strings.HasSuffix(name, "_test.go")
}
