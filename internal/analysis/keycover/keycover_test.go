package keycover_test

import (
	"testing"

	"postopc/internal/analysis/analysistest"
	"postopc/internal/analysis/keycover"
)

func TestKeycover(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), keycover.Analyzer,
		"keycover", "keycoverdep", "keycoveruse")
}
