// Fixture for the keycover analyzer: local keyed types.
package keycover

// appendKeyInt stands in for geom.AppendKeyInt.
func appendKeyInt(dst []byte, vs ...int64) []byte { return dst }

// appendKeyFloat stands in for geom.AppendKeyFloat.
func appendKeyFloat(dst []byte, vs ...float64) []byte { return dst }

// Recipe is fully serialized.
type Recipe struct { // want Recipe:`complete`
	NA    float64
	Rings int64
}

// AppendKey covers every field.
func (r Recipe) AppendKey(dst []byte) []byte {
	dst = appendKeyFloat(dst, r.NA)
	return appendKeyInt(dst, r.Rings)
}

// Model's key misses Weight: the shape a deleted field write leaves behind.
type Model struct { // want Model:`incomplete: missing Weight`
	Sigma  float64
	Weight float64 // want `cache key for Model omits field Weight`
}

// AppendKey forgets Weight.
func (m Model) AppendKey(dst []byte) []byte {
	return appendKeyFloat(dst, m.Sigma)
}

// Env is serialized field-by-field by envKey below; one exempted handle,
// one genuinely missing field.
type Env struct { // want Env:`incomplete: missing Extra` Env:`keyignore sink`
	Opt   Recipe
	Extra int64 // want `cache key for Env omits field Extra`
	sink  *int  //postopc:keyignore write-only telemetry handle, never an input
}

// envKey is a signature function by virtue of calling AppendKey helpers.
func envKey(e *Env) []byte {
	return e.Opt.AppendKey(nil)
}

// Base is embedded in Holder; serializing every Base field through the
// promoted selectors covers the embedded field.
type Base struct {
	A int64
	B int64
}

// Holder embeds Base.
type Holder struct { // want Holder:`complete`
	Base
	C int64
}

// holderKey covers Holder completely via promoted reads.
func holderKey(h Holder) []byte {
	b := appendKeyInt(nil, h.A, h.B)
	return appendKeyInt(b, h.C)
}

// Padded exercises the keyignore reason requirement: the directive exempts
// the field but is itself reported.
type Padded struct { // want Padded:`complete` Padded:`keyignore pad`
	V   int64
	pad int64 //postopc:keyignore // want `keyignore directive is missing its reason`
}

// paddedKey serializes the one real field.
func paddedKey(p Padded) []byte {
	return appendKeyInt(nil, p.V)
}
