// Package keycoverdep is the fixture dependency: its Coverage and Ignored
// facts are consumed by the keycoveruse fixture.
package keycoverdep

// appendKeyInt stands in for geom.AppendKeyInt.
func appendKeyInt(dst []byte, vs ...int64) []byte { return dst }

// Opts is complete, with one documented exemption.
type Opts struct { // want Opts:`complete` Opts:`keyignore Note`
	A    int64
	B    int64
	Note string //postopc:keyignore free-form documentation, never an input
}

// AppendKey covers both real fields.
func (o Opts) AppendKey(dst []byte) []byte {
	return appendKeyInt(dst, o.A, o.B)
}

// Partial's key misses Skew.
type Partial struct { // want Partial:`incomplete: missing Skew`
	Gain float64
	Skew float64 // want `cache key for Partial omits field Skew`
}

// AppendKey forgets Skew.
func (p Partial) AppendKey(dst []byte) []byte {
	return appendKeyInt(dst, int64(p.Gain))
}

// Plain has no key of its own; importers serialize it field-by-field.
type Plain struct {
	X int64
	Y int64
}
