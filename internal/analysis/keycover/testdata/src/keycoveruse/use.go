// Package keycoveruse imports keycoverdep and exercises cross-package fact
// consumption: exemptions recorded at a foreign declaration hold here, an
// incomplete foreign key surfaces at the delegating field, and a
// field-by-field serialization of a foreign struct is completeness-checked.
package keycoveruse

import "keycoverdep"

// appendKeyInt stands in for geom.AppendKeyInt.
func appendKeyInt(dst []byte, vs ...int64) []byte { return dst }

// Env delegates Opt to a complete foreign key, Part to an incomplete one,
// and serializes Raw field-by-field.
type Env struct { // want Env:`complete`
	Opt  keycoverdep.Opts
	Part keycoverdep.Partial // want `field Part delegates to the incomplete cache key of keycoverdep.Partial \(missing Skew\)`
	Raw  keycoverdep.Plain
}

// envKey serializes the environment.
func envKey(e *Env) []byte {
	b := e.Opt.AppendKey(nil)
	b = e.Part.AppendKey(b)
	b = appendKeyInt(b, e.Raw.X) // want `cache key serializes keycoverdep.Plain field-by-field but omits field Y`
	return b
}
