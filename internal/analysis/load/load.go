// Package load locates, parses and type-checks the packages named by `go
// list`-style patterns so analyzers can run over them. It is the offline
// stand-in for golang.org/x/tools/go/packages: package enumeration is
// delegated to the go command, imports are resolved by the standard
// library's source importer (which type-checks dependencies from source —
// no compiled export data or network access required).
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"

	"postopc/internal/analysis"
)

// Package is one parsed and type-checked package.
type Package struct {
	// ImportPath is the canonical import path.
	ImportPath string
	// Dir is the package source directory.
	Dir string
	// Fset maps positions for Syntax.
	Fset *token.FileSet
	// Syntax holds the parsed files (comments included), one per GoFile.
	Syntax []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's maps.
	Info *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Packages runs `go list` in dir on the given patterns and returns every
// matched package parsed and type-checked. Test files are not loaded —
// the analyzers enforce invariants on library code, and testdata trees are
// never matched by the go command.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newImporter(fset)
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := analysis.NewInfo()
		conf := types.Config{Importer: imp.forDir(lp.Dir)}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Fset:       fset,
			Syntax:     files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

// goList enumerates packages matching the patterns.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var listed []*listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json: %w", err)
		}
		listed = append(listed, &lp)
	}
	return listed, nil
}

// sharedImporter wraps the standard library's source importer, which
// resolves both standard-library and in-module imports from source. One
// instance is shared across all loaded packages so each dependency is
// type-checked at most once per run.
type sharedImporter struct {
	from types.ImporterFrom
}

func newImporter(fset *token.FileSet) *sharedImporter {
	return &sharedImporter{from: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)}
}

// forDir returns a types.Importer that resolves imports relative to the
// importing package's directory (required for correct module resolution).
func (s *sharedImporter) forDir(dir string) types.Importer {
	return dirImporter{s.from, dir}
}

type dirImporter struct {
	from types.ImporterFrom
	dir  string
}

func (d dirImporter) Import(path string) (*types.Package, error) {
	return d.from.ImportFrom(path, d.dir, 0)
}
