// Package load locates, parses and type-checks the packages named by `go
// list`-style patterns so analyzers can run over them. It is the offline
// stand-in for golang.org/x/tools/go/packages: package enumeration is
// delegated to the go command, imports are resolved by the standard
// library's source importer (which type-checks dependencies from source —
// no compiled export data or network access required).
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"

	"postopc/internal/analysis"
)

// Package is one parsed and type-checked package.
type Package struct {
	// ImportPath is the canonical import path.
	ImportPath string
	// Dir is the package source directory.
	Dir string
	// FactsOnly marks a package loaded purely as a dependency of the
	// requested patterns: analyzers run over it so its facts reach
	// importers, but its findings are not reported (the user did not ask
	// about it).
	FactsOnly bool
	// Imports are the package's direct imports, as import paths. It
	// includes standard-library imports; drivers intersect it with the
	// loaded set to build the dependency graph facts flow along.
	Imports []string
	// Fset maps positions for Syntax.
	Fset *token.FileSet
	// Syntax holds the parsed files (comments included), one per GoFile.
	Syntax []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's maps.
	Info *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// Packages runs `go list` in dir on the given patterns and returns every
// matched package parsed and type-checked. Test files are not loaded —
// the analyzers enforce invariants on library code, and testdata trees are
// never matched by the go command.
//
// Listed packages are checked in dependency order, and an importing
// package resolves an import inside the loaded set to the very
// *types.Package produced for it — never to an independent re-check by the
// source importer. Object identity across the set is what lets analyzer
// facts exported on a dependency's objects be found from its importers.
//
// In-module dependencies of the matched packages load too, marked
// FactsOnly: their facts must reach the requested packages even when the
// pattern names a subtree (linting ./internal/litho alone still sees the
// allocfree annotations of internal/dsp), but nobody asked for their
// findings. Standard-library dependencies are left to the source importer
// — no analyzer exports facts on them.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	requested, err := goListPaths(dir, patterns)
	if err != nil {
		return nil, err
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newImporter(fset)
	st := &loadState{fset: fset, imp: imp, listed: map[string]*listedPackage{}, done: map[string]*Package{}}
	imp.loaded = st
	for _, lp := range listed {
		if !lp.Standard {
			st.listed[lp.ImportPath] = lp
		}
	}
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Standard {
			continue
		}
		p, err := st.load(lp)
		if err != nil {
			return nil, err
		}
		if p != nil {
			p.FactsOnly = !requested[p.ImportPath]
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

// loadState checks listed packages in dependency order, memoizing results
// so each package is checked exactly once.
type loadState struct {
	fset   *token.FileSet
	imp    *sharedImporter
	listed map[string]*listedPackage
	done   map[string]*Package
}

// load parses and type-checks one listed package after its in-set
// dependencies. Import cycles cannot occur in valid Go; go list reports
// them as package errors before we recurse.
func (st *loadState) load(lp *listedPackage) (*Package, error) {
	if p, ok := st.done[lp.ImportPath]; ok {
		return p, nil
	}
	if lp.Error != nil {
		return nil, fmt.Errorf("load %s: %s", lp.ImportPath, lp.Error.Err)
	}
	if len(lp.GoFiles) == 0 {
		return nil, nil
	}
	for _, ipath := range lp.Imports {
		if dep, ok := st.listed[ipath]; ok {
			if _, err := st.load(dep); err != nil {
				return nil, err
			}
		}
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(st.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: st.imp.forDir(lp.Dir)}
	tpkg, err := conf.Check(lp.ImportPath, st.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", lp.ImportPath, err)
	}
	p := &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Imports:    lp.Imports,
		Fset:       st.fset,
		Syntax:     files,
		Types:      tpkg,
		Info:       info,
	}
	st.done[lp.ImportPath] = p
	return p, nil
}

// goListPaths enumerates the import paths the patterns themselves match —
// the packages whose findings the caller asked for.
func goListPaths(dir string, patterns []string) (map[string]bool, error) {
	args := append([]string{"list"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	paths := map[string]bool{}
	for _, line := range strings.Fields(string(out)) {
		paths[line] = true
	}
	return paths, nil
}

// goList enumerates packages matching the patterns plus every dependency
// (-deps), so the loader can analyze in-module deps facts-only.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var listed []*listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json: %w", err)
		}
		listed = append(listed, &lp)
	}
	return listed, nil
}

// sharedImporter wraps the standard library's source importer, which
// resolves both standard-library and in-module imports from source. One
// instance is shared across all loaded packages so each dependency is
// type-checked at most once per run; imports inside the loaded set resolve
// to the loader's own check results, preserving object identity for facts.
type sharedImporter struct {
	from   types.ImporterFrom
	loaded *loadState
}

func newImporter(fset *token.FileSet) *sharedImporter {
	return &sharedImporter{from: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)}
}

// forDir returns a types.Importer that resolves imports relative to the
// importing package's directory (required for correct module resolution).
func (s *sharedImporter) forDir(dir string) types.Importer {
	return dirImporter{s, dir}
}

type dirImporter struct {
	shared *sharedImporter
	dir    string
}

func (d dirImporter) Import(path string) (*types.Package, error) {
	if st := d.shared.loaded; st != nil {
		if p, ok := st.done[path]; ok {
			return p.Types, nil
		}
	}
	return d.shared.from.ImportFrom(path, d.dir, 0)
}
