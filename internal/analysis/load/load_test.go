package load_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"postopc/internal/analysis/load"
)

// write materializes a file tree under a fresh temp module root.
func write(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// fileNames returns the base names of the package's parsed files.
func fileNames(p *load.Package) []string {
	var out []string
	for _, f := range p.Syntax {
		out = append(out, filepath.Base(p.Fset.Position(f.Pos()).Filename))
	}
	return out
}

func TestBuildTagVariantsExcluded(t *testing.T) {
	dir := write(t, map[string]string{
		"go.mod":       "module tmpmod\n\ngo 1.24\n",
		"p/a.go":       "package p\n\nconst A = 1\n",
		"p/b_other.go": "//go:build someothertag\n\npackage p\n\nconst A = 2\n",
	})
	pkgs, err := load.Packages(dir, "./p")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	names := fileNames(pkgs[0])
	if len(names) != 1 || names[0] != "a.go" {
		t.Errorf("loaded files = %v; want [a.go]: the excluded build-tag variant must not be parsed (it even redeclares A)", names)
	}
	if obj := pkgs[0].Types.Scope().Lookup("A"); obj == nil {
		t.Errorf("constant A missing from type-checked package")
	}
}

func TestTestFilesNotLoaded(t *testing.T) {
	dir := write(t, map[string]string{
		"go.mod":        "module tmpmod\n\ngo 1.24\n",
		"p/a.go":        "package p\n\nfunc F() int { return 1 }\n",
		"p/a_test.go":   "package p\n\nimport \"testing\"\n\nfunc TestF(t *testing.T) { _ = F() }\n",
		"p/ext_test.go": "package p_test\n\nimport \"testing\"\n\nfunc TestExt(t *testing.T) { t.Skip() }\n",
	})
	pkgs, err := load.Packages(dir, "./p")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	for _, name := range fileNames(pkgs[0]) {
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("test file %s was loaded; analyzers cover test files via the vet protocol, not the standalone loader", name)
		}
	}
}

func TestMissingImportFailsLoad(t *testing.T) {
	dir := write(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.24\n",
		"p/a.go": "package p\n\nimport _ \"tmpmod/vendor/gone\"\n",
	})
	_, err := load.Packages(dir, "./p")
	if err == nil {
		t.Fatal("load succeeded; want an error for the unresolvable import")
	}
	if !strings.Contains(err.Error(), "gone") {
		t.Errorf("error %q does not name the missing import", err)
	}
}

func TestImportsResolveToLoadedPackages(t *testing.T) {
	// The importing package must see the loader's own check of its
	// dependency — object identity is what lets facts exported on dep
	// objects be found from importers.
	dir := write(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.24\n",
		"d/d.go": "package d\n\ntype T struct{}\n",
		"u/u.go": "package u\n\nimport \"tmpmod/d\"\n\nvar V d.T\n",
	})
	pkgs, err := load.Packages(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*load.Package{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	dep, use := byPath["tmpmod/d"], byPath["tmpmod/u"]
	if dep == nil || use == nil {
		t.Fatalf("missing packages in %v", pkgs)
	}
	for _, imp := range use.Types.Imports() {
		if imp.Path() == "tmpmod/d" && imp != dep.Types {
			t.Errorf("importer re-checked tmpmod/d: facts on its objects would be unreachable")
		}
	}
}
