// Package maporder defines an analyzer that flags ordered output built by
// ranging over a map without a subsequent deterministic sort.
//
// Go randomizes map iteration order, so a `for k := range m` loop that
// appends to a slice, adds report rows, or writes to an output stream
// produces a different ordering every run. This is exactly the bug class
// fixed by hand in flow.Run (extraction results keyed by gate name were
// collected into the Tagged list in map order); the fix — append, then
// sort — is recognized by this analyzer and not flagged.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"postopc/internal/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag map-range loops that build ordered output without sorting\n\n" +
		"A range over a map observes a randomized order. Appending to a slice\n" +
		"is allowed only when the slice is deterministically sorted later in\n" +
		"the same block; report-row building and stream writes inside the loop\n" +
		"are always flagged because their order is fixed at emission time.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, stmt := range list {
				rng, ok := stmt.(*ast.RangeStmt)
				if !ok || !rangesOverMap(pass, rng) {
					continue
				}
				checkMapRange(pass, rng, list[i+1:])
			}
			return true
		})
	}
	return nil
}

// rangesOverMap reports whether the range statement iterates a map.
func rangesOverMap(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange inspects one map-range body. rest holds the statements that
// follow the range in its enclosing block, searched for sorts that launder
// appended slices back to a deterministic order.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure defined in the body runs later, in whatever order
			// its caller imposes; not this analyzer's concern.
			return false
		case *ast.AssignStmt:
			if target := appendTarget(pass, n); target != nil {
				obj := pass.TypesInfo.ObjectOf(target)
				if obj == nil || obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
					return true // slice local to the loop body
				}
				if !sortedAfter(pass, rest, obj) {
					pass.Reportf(n.Pos(), "append to %s inside a map-range loop without a deterministic sort afterwards; map iteration order is randomized", target.Name)
				}
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if why := emitsOrderedOutput(pass, call); why != "" {
					pass.Reportf(call.Pos(), "%s inside a map-range loop emits rows in randomized map order; collect and sort first", why)
				}
			}
		}
		return true
	})
}

// appendTarget returns the identifier assigned by `x = append(x, ...)`, or
// nil if the statement is not a slice-growing self-append.
func appendTarget(pass *analysis.Pass, as *ast.AssignStmt) *ast.Ident {
	if as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil
	}
	if b, ok := pass.TypesInfo.ObjectOf(fn).(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	return lhs
}

// sortedAfter reports whether any statement in rest sorts obj via the sort
// or slices package.
func sortedAfter(pass *analysis.Pass, rest []ast.Stmt, obj types.Object) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if mentions(pass, arg, obj) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// mentions reports whether expr references obj.
func mentions(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// emitsOrderedOutput classifies calls whose emission order is fixed at call
// time: report-table row building and stream writes. It returns a short
// description of the call, or "" if it is not order-sensitive.
func emitsOrderedOutput(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		if named := namedOf(recv.Type()); named != nil &&
			named.Obj().Name() == "Table" && (fn.Name() == "Add" || fn.Name() == "AddF") {
			return "report row " + fn.Name()
		}
		if fn.Name() == "Write" || fn.Name() == "WriteString" {
			return fn.Name() + " call"
		}
		return ""
	}
	if fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "fmt":
		if name := fn.Name(); len(name) >= 5 && name[:5] == "Fprin" {
			return "fmt." + name
		}
	case "io":
		if fn.Name() == "WriteString" {
			return "io.WriteString"
		}
	}
	return ""
}

// namedOf unwraps pointers to reach a named type.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
