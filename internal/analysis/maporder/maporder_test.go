package maporder_test

import (
	"testing"

	"postopc/internal/analysis/analysistest"
	"postopc/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), maporder.Analyzer, "maporder")
}
