package maporder

import (
	"fmt"
	"io"
	"sort"
)

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside a map-range loop`
	}
	return keys
}

func goodSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func badPrint(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside a map-range loop`
	}
}

func goodSliceRange(keys []string, w io.Writer) {
	for _, k := range keys {
		fmt.Fprintln(w, k) // slice order is deterministic
	}
}

// Table mimics report.Table for the row-building rule.
type Table struct{ Rows [][]string }

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

func badRows(t *Table, m map[string]int) {
	for k := range m {
		t.Add(k) // want `report row Add inside a map-range loop`
	}
}

func goodAggregate(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v // order-independent aggregation is fine
	}
	return sum
}

func suppressed(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //postopc:nolint:maporder fixture exercises suppression
	}
	return keys
}
