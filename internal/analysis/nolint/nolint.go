// Package nolint defines the analyzer that polices suppression hygiene:
// every //postopc:nolint directive must scope itself to named analyzers
// and state a reason.
//
// A bare suppression is a time bomb — six months later nobody can tell a
// deliberate exemption from a silenced bug, and a blanket directive keeps
// silencing analyzers that did not exist when it was written. The
// framework therefore treats invalid directives as suppressing nothing
// (see analysis.ParseNolint), and this analyzer turns them into findings
// so they cannot linger.
package nolint

import (
	"postopc/internal/analysis"
)

// Analyzer is the nolint-directive check.
var Analyzer = &analysis.Analyzer{
	Name: "nolint",
	Doc: "flag malformed //postopc:nolint directives\n\n" +
		"A directive must name the analyzers it silences and give a reason:\n" +
		"//postopc:nolint:detrand wall clock confined to obs by design.\n" +
		"Bare or reason-less directives suppress nothing and are reported.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, d := range analysis.Nolints(pass.Fset, pass.Files) {
		if d.Valid {
			continue
		}
		if len(d.Names) == 0 {
			pass.Reportf(d.Pos,
				"nolint directive must name the analyzers it silences and give a reason: //postopc:nolint:<analyzer,...> <reason>")
			continue
		}
		pass.Reportf(d.Pos,
			"nolint directive for %v is missing its reason; append a justification after the analyzer list",
			d.Names)
	}
	return nil
}
