package nolint_test

import (
	"testing"

	"postopc/internal/analysis/analysistest"
	"postopc/internal/analysis/nolint"
)

func TestNolint(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), nolint.Analyzer, "nolint")
}
