// Fixture for the nolint directive-grammar analyzer.
package nolint

func bare() {
	_ = 1 //postopc:nolint // want `nolint directive must name the analyzers it silences and give a reason`
}

func legacySpace() {
	_ = 2 //postopc:nolint maporder // want `nolint directive must name the analyzers it silences and give a reason`
}

func namesOnly() {
	_ = 3 //postopc:nolint:maporder // want `nolint directive for \[maporder\] is missing its reason`
}

func commentReason() {
	_ = 4 //postopc:nolint:maporder // a trailing comment is not a reason // want `nolint directive for \[maporder\] is missing its reason`
}

func valid() {
	_ = 5 //postopc:nolint:maporder fixture exercises the valid form
}
