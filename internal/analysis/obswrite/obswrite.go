// Package obswrite defines the write-only-telemetry analyzer: library code
// may create telemetry handles and write through them, but never read
// metric values or branch on span identity.
//
// The observability layer's core contract (PR 5) is that telemetry observes
// a computation without being an input to it: two runs differing only in
// instrumentation must produce byte-identical results. Writing through a
// handle (Counter.Add, Histogram.Observe, starting and ending spans) keeps
// that contract; reading a value back into library code is exactly the leak
// the contract forbids — a counter read can steer an algorithm, and with it
// scheduling noise flows into results. Readers belong at the export
// boundary: package main, and the CLI's reporting sites, which carry
// explicit //postopc:nolint:obswrite suppressions.
//
// The analyzer flags, outside package main, _test.go files and the obs
// package itself: calls to the obs read API (Counter.Value, Gauge.Value,
// Registry.Snapshot, Tracer.Events, Tracer.SummaryTable,
// Tracer.WriteChromeTrace, WritePrometheus, Handler, plus the run-ledger
// and flight-recorder read half — WriteLedger, ReadLedger, SummaryTables,
// Flight.Recent, Flight.Dump) and comparisons of span identifiers
// (branching on trace topology is reading it).
package obswrite

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"postopc/internal/analysis"
)

// Analyzer is the write-only-telemetry check.
var Analyzer = &analysis.Analyzer{
	Name: "obswrite",
	Doc: "flag library code that reads telemetry instead of only writing it\n\n" +
		"Telemetry is write-only inside the library: creating handles and\n" +
		"recording observations is fine, but reading values (Value, Snapshot,\n" +
		"Events, SummaryTable, ...) or comparing span IDs feeds measurements\n" +
		"back into computation and breaks the instrumentation-independence\n" +
		"contract. Readers live in package main or behind explicit nolint.",
	Run: run,
}

// readAPI is the set of obs identifiers whose call means reading telemetry.
var readAPI = map[string]bool{
	"Value":            true,
	"Snapshot":         true,
	"Events":           true,
	"SummaryTable":     true,
	"SummaryTables":    true,
	"WriteChromeTrace": true,
	"WritePrometheus":  true,
	"Handler":          true,
	"WriteLedger":      true,
	"ReadLedger":       true,
	"Recent":           true,
	"Dump":             true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" || isObsPath(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.BinaryExpr:
				checkCompare(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCall flags calls into the obs read API.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !readAPI[sel.Sel.Name] {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || !isObsPath(obj.Pkg().Path()) {
		return
	}
	pass.Reportf(call.Pos(),
		"library code reads telemetry via %s.%s; telemetry is write-only — move the read to the export boundary (package main / internal/cli)",
		obj.Pkg().Name(), obj.Name())
}

// checkCompare flags equality tests on span identifiers: branching on trace
// topology makes the computation depend on its own instrumentation.
func checkCompare(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if !isObsSpanType(pass.TypesInfo.TypeOf(be.X)) && !isObsSpanType(pass.TypesInfo.TypeOf(be.Y)) {
		return
	}
	pass.Reportf(be.Pos(),
		"library code compares telemetry span identifiers; span state is write-only — do not branch on trace topology")
}

// isObsSpanType reports whether t is obs.Span or obs.SpanID.
func isObsSpanType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !isObsPath(obj.Pkg().Path()) {
		return false
	}
	return obj.Name() == "Span" || obj.Name() == "SpanID"
}

// isObsPath matches the telemetry package in both the real module and
// analyzer fixtures.
func isObsPath(path string) bool {
	return path == "obs" || strings.HasSuffix(path, "/obs")
}

// isTestFile reports whether the file is a _test.go file.
func isTestFile(pass *analysis.Pass, file *ast.File) bool {
	name := pass.Fset.Position(file.Pos()).Filename
	return strings.HasSuffix(name, "_test.go")
}
