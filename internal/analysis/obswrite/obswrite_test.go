package obswrite_test

import (
	"testing"

	"postopc/internal/analysis/analysistest"
	"postopc/internal/analysis/obswrite"
)

func TestObswrite(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), obswrite.Analyzer,
		"obswriteuse", "obswritemain")
}
