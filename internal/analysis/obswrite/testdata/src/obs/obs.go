// Package obs is a miniature stand-in for postopc/internal/obs: just enough
// surface for the obswrite fixtures.
package obs

// Counter is a write-mostly metric.
type Counter struct{ v int64 }

// Add records an observation (write side).
func (c *Counter) Add(d int64) { c.v += d }

// Value reads the metric back (read side).
func (c *Counter) Value() int64 { return c.v }

// SpanID identifies a trace span.
type SpanID uint64

// Span is an open trace span.
type Span struct{ ID SpanID }

// Registry holds metrics.
type Registry struct{ c Counter }

// Counter returns a handle (write side: handle creation is fine).
func (r *Registry) Counter(name string) *Counter { return &r.c }

// Snapshot reads every metric (read side).
func (r *Registry) Snapshot() map[string]int64 { return nil }
