// Command obswritemain shows that package main is the export boundary:
// reads are allowed without suppression.
package main

import "obs"

func main() {
	var r obs.Registry
	r.Counter("runs").Add(1)
	_ = r.Snapshot() // no finding: package main may read telemetry
}
