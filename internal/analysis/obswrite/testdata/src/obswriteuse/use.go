// Package obswriteuse is library code instrumented with obs: writes pass,
// reads and span comparisons are flagged, suppressed readers need a reason.
package obswriteuse

import "obs"

// record writes telemetry: allowed.
func record(r *obs.Registry, n int64) {
	r.Counter("windows").Add(n)
}

// peek reads a metric back into the computation.
func peek(c *obs.Counter) int64 {
	return c.Value() // want `library code reads telemetry via obs.Value; telemetry is write-only`
}

// dump snapshots the whole registry.
func dump(r *obs.Registry) map[string]int64 {
	return r.Snapshot() // want `library code reads telemetry via obs.Snapshot`
}

// sameSpan branches on trace topology.
func sameSpan(a, b obs.SpanID) bool {
	return a == b // want `library code compares telemetry span identifiers`
}

// boundary is an export-boundary reader with a documented suppression.
func boundary(r *obs.Registry) map[string]int64 {
	return r.Snapshot() //postopc:nolint:obswrite fixture stands in for the CLI report path
}
