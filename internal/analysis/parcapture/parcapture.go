// Package parcapture defines an analyzer for closures handed to
// par.ForEach, the bounded worker pool every hot loop runs on.
//
// The pool's determinism contract is that workers communicate only through
// index-disjoint slots: fn(i) may write exts[i] but nothing shared. Two
// regressions break it silently — writing a captured variable (a data race
// that the race detector only catches when the schedule cooperates), and
// indexing shared state by something other than the closure's own index
// parameter (workers overwrite each other's slots). Both are purely
// syntactic properties of the closure, so they are enforced here instead
// of in the occasional -race run.
package parcapture

import (
	"go/ast"
	"go/token"
	"go/types"

	"postopc/internal/analysis"
)

// Analyzer is the parcapture check.
var Analyzer = &analysis.Analyzer{
	Name: "parcapture",
	Doc: "flag par.ForEach closures that write shared state non-index-disjointly\n\n" +
		"A closure passed to par.ForEach runs concurrently: assignments to\n" +
		"captured variables race, and writes to shared slices or maps must be\n" +
		"indexed by the closure's own index parameter. Referencing an enclosing\n" +
		"loop's iteration variable inside the closure is flagged because it is\n" +
		"almost always a stale copy of what should be the index parameter.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		var loops []ast.Stmt // enclosing for/range statements, innermost last
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			ast.Inspect(n, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					loops = append(loops, n.(ast.Stmt))
					if f, ok := n.(*ast.ForStmt); ok {
						walk(f.Body)
					} else {
						walk(n.(*ast.RangeStmt).Body)
					}
					loops = loops[:len(loops)-1]
					return false
				case *ast.CallExpr:
					if fl := forEachClosure(pass, n); fl != nil {
						checkClosure(pass, fl, loops)
					}
				}
				return true
			})
		}
		walk(file)
	}
	return nil
}

// forEachClosure returns the function-literal work argument of a
// par.ForEach call, or nil.
func forEachClosure(pass *analysis.Pass, call *ast.CallExpr) *ast.FuncLit {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "par" || fn.Name() != "ForEach" {
		return nil
	}
	if len(call.Args) < 2 {
		return nil
	}
	fl, _ := call.Args[1].(*ast.FuncLit)
	return fl
}

// checkClosure enforces the index-disjointness contract on one work
// closure. loops are the for/range statements lexically enclosing the
// par.ForEach call.
func checkClosure(pass *analysis.Pass, fl *ast.FuncLit, loops []ast.Stmt) {
	idx := indexParam(pass, fl)
	loopVars := loopVariables(pass, loops)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				checkWrite(pass, fl, idx, lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, fl, idx, n.X)
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil && loopVars[obj] {
				pass.Reportf(n.Pos(), "par.ForEach closure references enclosing loop variable %s; derive work from the closure's index parameter instead", n.Name)
			}
		}
		return true
	})
}

// checkWrite validates one assignment target inside the closure.
func checkWrite(pass *analysis.Pass, fl *ast.FuncLit, idx types.Object, lhs ast.Expr) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		if obj := pass.TypesInfo.ObjectOf(lhs); obj != nil && capturedBy(fl, obj) {
			pass.Reportf(lhs.Pos(), "par.ForEach closure writes captured variable %s — a data race; write into an index-disjoint slot instead", lhs.Name)
		}
	case *ast.IndexExpr:
		base, ok := ast.Unparen(lhs.X).(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.TypesInfo.ObjectOf(base)
		if obj == nil || !capturedBy(fl, obj) {
			return
		}
		if idx == nil || !mentionsObj(pass, lhs.Index, idx) {
			pass.Reportf(lhs.Pos(), "par.ForEach closure writes shared %s at an index not derived from the closure's index parameter; concurrent workers may collide", base.Name)
		}
	case *ast.SelectorExpr:
		if base, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(base); obj != nil && capturedBy(fl, obj) {
				pass.Reportf(lhs.Pos(), "par.ForEach closure writes field of captured %s — a data race; write into an index-disjoint slot instead", base.Name)
			}
		}
	case *ast.StarExpr:
		if base, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(base); obj != nil && capturedBy(fl, obj) {
				pass.Reportf(lhs.Pos(), "par.ForEach closure writes through captured pointer %s — a data race; write into an index-disjoint slot instead", base.Name)
			}
		}
	}
}

// indexParam returns the object of the closure's index parameter.
func indexParam(pass *analysis.Pass, fl *ast.FuncLit) types.Object {
	params := fl.Type.Params
	if params == nil || len(params.List) == 0 || len(params.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.ObjectOf(params.List[0].Names[0])
}

// loopVariables collects the iteration-variable objects of the enclosing
// loops.
func loopVariables(pass *analysis.Pass, loops []ast.Stmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	add := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				vars[obj] = true
			}
		}
	}
	for _, l := range loops {
		switch l := l.(type) {
		case *ast.RangeStmt:
			add(l.Key)
			add(l.Value)
		case *ast.ForStmt:
			if init, ok := l.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					add(lhs)
				}
			}
		}
	}
	return vars
}

// capturedBy reports whether obj is declared outside the closure (and is a
// variable — captured constants and functions are harmless).
func capturedBy(fl *ast.FuncLit, obj types.Object) bool {
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	return obj.Pos() < fl.Pos() || obj.Pos() >= fl.End()
}

// mentionsObj reports whether expr references obj.
func mentionsObj(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
