package parcapture_test

import (
	"testing"

	"postopc/internal/analysis/analysistest"
	"postopc/internal/analysis/parcapture"
)

func TestParcapture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), parcapture.Analyzer, "parcapture")
}
