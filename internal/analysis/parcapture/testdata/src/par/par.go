// Package par mimics the worker pool's ForEach signature so fixtures can
// exercise the parcapture analyzer without importing the real module.
package par

// ForEach invokes fn(i) for i in [0, n).
func ForEach(n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}
