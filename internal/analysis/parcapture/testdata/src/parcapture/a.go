package parcapture

import "par"

func badSharedWrites(n int) int {
	total := 0
	out := make([]int, n)
	par.ForEach(n, func(i int) error {
		total += i // want `writes captured variable total`
		out[0] = i // want `writes shared out at an index not derived from the closure's index parameter`
		return nil
	})
	return total + out[0]
}

func badCount(n int) int {
	count := 0
	par.ForEach(n, func(i int) error {
		count++ // want `writes captured variable count`
		return nil
	})
	return count
}

type result struct{ v int }

func badFieldWrite(n int) result {
	var acc result
	par.ForEach(n, func(i int) error {
		acc.v = i // want `writes field of captured acc`
		return nil
	})
	return acc
}

func goodDisjoint(n int) []int {
	out := make([]int, n)
	par.ForEach(n, func(i int) error {
		out[i] = i * i // index-disjoint slot: the sanctioned pattern
		return nil
	})
	return out
}

func goodLocals(n int) []int {
	out := make([]int, n)
	par.ForEach(n, func(i int) error {
		acc := 0 // locals inside the closure are worker-private
		for j := 0; j < i; j++ {
			acc += j
		}
		out[i] = acc
		return nil
	})
	return out
}

func badLoopVar(rows [][]int) {
	for j := range rows {
		row := rows[j]
		par.ForEach(len(row), func(i int) error {
			row[i] = j // want `references enclosing loop variable j`
			return nil
		})
	}
}

func suppressed(n int) int {
	best := 0
	par.ForEach(n, func(i int) error {
		best = i //postopc:nolint:parcapture fixture exercises suppression
		return nil
	})
	return best
}
