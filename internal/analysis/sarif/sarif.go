// Package sarif renders analysis findings as SARIF 2.1.0, the static
// analysis interchange format CI systems ingest (GitHub code scanning,
// most SARIF viewers). Output is fully deterministic: rules are sorted by
// analyzer name, results arrive in the driver's canonical order, URIs are
// root-relative with forward slashes, and the encoder is encoding/json
// over fixed-order structs — so a SARIF file is byte-identical between
// serial and parallel driver runs.
package sarif

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"postopc/internal/analysis"
)

// infoURI points consumers at the suite documentation (DESIGN.md §
// Static analysis describes every rule).
const infoURI = "https://postopc.example/DESIGN.md#static-analysis"

// Log is the top-level SARIF document.
type Log struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []Run  `json:"runs"`
}

// Run is one tool invocation.
type Run struct {
	Tool    Tool     `json:"tool"`
	Results []Result `json:"results"`
}

// Tool describes the producing tool.
type Tool struct {
	Driver Driver `json:"driver"`
}

// Driver identifies the analyzer suite and its rules.
type Driver struct {
	Name           string `json:"name"`
	InformationURI string `json:"informationUri"`
	Rules          []Rule `json:"rules"`
}

// Rule is one analyzer.
type Rule struct {
	ID               string  `json:"id"`
	ShortDescription Message `json:"shortDescription"`
}

// Message carries SARIF text.
type Message struct {
	Text string `json:"text"`
}

// Result is one finding.
type Result struct {
	RuleID    string     `json:"ruleId"`
	RuleIndex int        `json:"ruleIndex"`
	Level     string     `json:"level"`
	Message   Message    `json:"message"`
	Locations []Location `json:"locations"`
}

// Location anchors a result in source.
type Location struct {
	PhysicalLocation PhysicalLocation `json:"physicalLocation"`
}

// PhysicalLocation is a file region.
type PhysicalLocation struct {
	ArtifactLocation ArtifactLocation `json:"artifactLocation"`
	Region           Region           `json:"region"`
}

// ArtifactLocation names the file.
type ArtifactLocation struct {
	URI string `json:"uri"`
}

// Region is a start position.
type Region struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// New assembles the SARIF document for one run: every analyzer becomes a
// rule (sorted by name, findings or not, so the rule table documents the
// whole gate), every finding a result at level "error" — the lint gate
// fails the build on any finding. root makes file URIs relative; files
// outside root keep their original (slashed) path.
func New(toolName string, analyzers []*analysis.Analyzer, findings []analysis.Finding, root string) *Log {
	rules := make([]Rule, 0, len(analyzers))
	index := map[string]int{}
	for _, a := range analyzers {
		rules = append(rules, Rule{ID: a.Name, ShortDescription: Message{Text: summaryLine(a.Doc)}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	for i, r := range rules {
		index[r.ID] = i
	}
	results := make([]Result, 0, len(findings))
	for _, f := range findings {
		ri, ok := index[f.Analyzer]
		if !ok {
			ri = -1
		}
		results = append(results, Result{
			RuleID:    f.Analyzer,
			RuleIndex: ri,
			Level:     "error",
			Message:   Message{Text: f.Message},
			Locations: []Location{{PhysicalLocation: PhysicalLocation{
				ArtifactLocation: ArtifactLocation{URI: relURI(root, f.Pos.Filename)},
				Region:           Region{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		})
	}
	return &Log{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []Run{{
			Tool:    Tool{Driver: Driver{Name: toolName, InformationURI: infoURI, Rules: rules}},
			Results: results,
		}},
	}
}

// Write encodes the document with stable two-space indentation and a
// trailing newline.
func Write(w io.Writer, l *Log) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l)
}

// summaryLine returns the first line of an analyzer doc.
func summaryLine(doc string) string {
	if i := strings.IndexByte(doc, '\n'); i >= 0 {
		return doc[:i]
	}
	return doc
}

// relURI renders filename relative to root with forward slashes.
func relURI(root, filename string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}
