package sarif_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"postopc/internal/analysis"
	"postopc/internal/analysis/sarif"
)

// fixedInput builds a deterministic document: two analyzers (deliberately
// given out of name order to exercise rule sorting), findings inside and
// outside the root.
func fixedInput() ([]*analysis.Analyzer, []analysis.Finding, string) {
	analyzers := []*analysis.Analyzer{
		{Name: "maporder", Doc: "flag map-range dependence\n\nlong text"},
		{Name: "keycover", Doc: "flag incomplete cache keys"},
	}
	root := filepath.FromSlash("/repo")
	findings := []analysis.Finding{
		{
			Analyzer: "keycover",
			Message:  "cache key for T omits field X",
			Pos:      token.Position{Filename: filepath.FromSlash("/repo/internal/a/a.go"), Line: 10, Column: 2},
		},
		{
			Analyzer: "maporder",
			Message:  "map iteration order reaches output",
			Pos:      token.Position{Filename: filepath.FromSlash("/elsewhere/b.go"), Line: 3, Column: 1},
		},
	}
	return analyzers, findings, root
}

func TestGolden(t *testing.T) {
	analyzers, findings, root := fixedInput()
	var buf bytes.Buffer
	if err := sarif.Write(&buf, sarif.New("postopc-lint", analyzers, findings, root)); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.sarif")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SARIF output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, buf.Bytes(), want)
	}
}

func TestDocumentShape(t *testing.T) {
	analyzers, findings, root := fixedInput()
	var buf bytes.Buffer
	if err := sarif.Write(&buf, sarif.New("postopc-lint", analyzers, findings, root)); err != nil {
		t.Fatal(err)
	}
	// The document must round-trip as generic JSON with the fields SARIF
	// 2.1.0 consumers key on.
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if v := doc["version"]; v != "2.1.0" {
		t.Errorf("version = %v; want 2.1.0", v)
	}
	runs := doc["runs"].([]any)
	run := runs[0].(map[string]any)
	rules := run["tool"].(map[string]any)["driver"].(map[string]any)["rules"].([]any)
	if id0 := rules[0].(map[string]any)["id"]; id0 != "keycover" {
		t.Errorf("rules[0].id = %v; want keycover (sorted by name)", id0)
	}
	results := run["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	r0 := results[0].(map[string]any)
	if lvl := r0["level"]; lvl != "error" {
		t.Errorf("results[0].level = %v; want error", lvl)
	}
	loc := r0["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)
	if uri := loc["artifactLocation"].(map[string]any)["uri"]; uri != "internal/a/a.go" {
		t.Errorf("in-root URI = %v; want root-relative internal/a/a.go", uri)
	}
	// ruleIndex must point back into the sorted rule table.
	if ri := r0["ruleIndex"]; ri != float64(0) {
		t.Errorf("results[0].ruleIndex = %v; want 0", ri)
	}
}
