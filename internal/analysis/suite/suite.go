// Package suite enumerates the repository's analyzers in the order the
// multichecker runs them. cmd/postopc-lint and the CI gate consume this
// list; adding an analyzer here is all that is needed to enforce it
// everywhere.
package suite

import (
	"postopc/internal/analysis"
	"postopc/internal/analysis/allocbudget"
	"postopc/internal/analysis/cachekey"
	"postopc/internal/analysis/deadassign"
	"postopc/internal/analysis/detrand"
	"postopc/internal/analysis/keycover"
	"postopc/internal/analysis/maporder"
	"postopc/internal/analysis/nolint"
	"postopc/internal/analysis/obswrite"
	"postopc/internal/analysis/parcapture"
	"postopc/internal/analysis/unitsafe"
)

// Analyzers is the full suite, in run order.
var Analyzers = []*analysis.Analyzer{
	allocbudget.Analyzer,
	cachekey.Analyzer,
	deadassign.Analyzer,
	detrand.Analyzer,
	keycover.Analyzer,
	maporder.Analyzer,
	nolint.Analyzer,
	obswrite.Analyzer,
	parcapture.Analyzer,
	unitsafe.Analyzer,
}
