package unitsafe

// Coord mirrors geom.Coord: layout quantities are integer nanometres.
type Coord = int64

// Rules mirrors the NM-suffixed design-rule fields of pdk.Rules.
type Rules struct {
	GateLengthNM Coord
	PolyPitchNM  Coord
}

func badField(r Rules) Coord {
	return r.PolyPitchNM * 2.0 // want `PolyPitchNM is an integer-nanometre quantity mixed with float literal 2\.0`
}

func badLocal(widthNM Coord) bool {
	return widthNM < 3.0 // want `widthNM is an integer-nanometre quantity mixed with float literal 3\.0`
}

func badReversed(r Rules) Coord {
	return 10.0 + r.GateLengthNM // want `GateLengthNM is an integer-nanometre quantity mixed with float literal 10\.0`
}

func goodInteger(r Rules) Coord {
	return r.GateLengthNM * 2 // same-unit arithmetic with an integer literal
}

func goodExplicit(r Rules) float64 {
	return float64(r.PolyPitchNM) / 2.0 // explicit conversion leaves the integer domain
}

func goodNonNM(scale int64) int64 {
	return scale * 2.0 // only NM-suffixed quantities carry unit meaning
}

func suppressed(r Rules) Coord {
	return r.PolyPitchNM / 2.0 //postopc:nolint:unitsafe fixture exercises suppression
}
