// Package unitsafe defines an analyzer that flags arithmetic mixing
// NM-suffixed integer quantities with untyped float literals.
//
// Layout quantities in this repository are integer nanometres (geom.Coord
// fields and variables carry an NM suffix: GateLengthNM, PolyPitchNM, ...).
// An untyped float constant silently converts to the integer side when it
// happens to be integral — `w.PolyPitchNM * 2.0` compiles — which is how
// nm/µm scale factors (1000.0, 0.001 written as 1e-3·k, half-pitches) creep
// in without an explicit unit decision. The analyzer requires the intent to
// be spelled out: either an integer literal (same-unit arithmetic) or an
// explicit float64(...) conversion (leaving the integer domain).
package unitsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"postopc/internal/analysis"
)

// Analyzer is the unitsafe check.
var Analyzer = &analysis.Analyzer{
	Name: "unitsafe",
	Doc: "flag arithmetic mixing NM-suffixed integer quantities with float literals\n\n" +
		"Nanometre quantities are integers; a float literal on the other side of\n" +
		"an operator is either a unit conversion that should be explicit\n" +
		"(float64(xNM) / 1000) or an integer in disguise (write 2, not 2.0).",
	Run: run,
}

// arithOps are the operators checked; comparisons are included because
// `xNM < 1.5` truncates the same way.
var arithOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true, token.LSS: true, token.GTR: true, token.LEQ: true,
	token.GEQ: true, token.EQL: true, token.NEQ: true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || !arithOps[bin.Op] {
				return true
			}
			x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
			var nm *ast.Ident
			var lit ast.Expr
			switch {
			case nmQuantity(pass, x) != nil && floatLit(y) != nil:
				nm, lit = nmQuantity(pass, x), floatLit(y)
			case nmQuantity(pass, y) != nil && floatLit(x) != nil:
				nm, lit = nmQuantity(pass, y), floatLit(x)
			default:
				return true
			}
			pass.Reportf(bin.Pos(),
				"%s is an integer-nanometre quantity mixed with float literal %s; use an integer literal for same-unit arithmetic or an explicit float64(%s) conversion",
				nm.Name, litText(lit), nm.Name)
			return true
		})
	}
	return nil
}

// nmQuantity returns the identifier of an NM-suffixed integer-typed operand
// (a bare identifier or the field of a selector), or nil.
func nmQuantity(pass *analysis.Pass, e ast.Expr) *ast.Ident {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	if !strings.HasSuffix(id.Name, "NM") || len(id.Name) <= 2 {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return nil
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	return id
}

// floatLit returns e if it is an untyped float literal, optionally signed.
func floatLit(e ast.Expr) ast.Expr {
	if u, ok := e.(*ast.UnaryExpr); ok && (u.Op == token.SUB || u.Op == token.ADD) {
		e = ast.Unparen(u.X)
	}
	if lit, ok := e.(*ast.BasicLit); ok && lit.Kind == token.FLOAT {
		return lit
	}
	return nil
}

// litText renders the literal for the message.
func litText(e ast.Expr) string {
	if lit, ok := e.(*ast.BasicLit); ok {
		return lit.Value
	}
	return "literal"
}
