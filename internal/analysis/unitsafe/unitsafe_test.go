package unitsafe_test

import (
	"testing"

	"postopc/internal/analysis/analysistest"
	"postopc/internal/analysis/unitsafe"
)

func TestUnitsafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), unitsafe.Analyzer, "unitsafe")
}
