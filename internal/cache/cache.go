// Package cache provides the bounded, sharded, in-memory content-addressed
// store behind the flow's pattern cache: artifacts are keyed by a
// collision-resistant signature of their full input (see flow's window
// signatures), concurrent computations of the same key are deduplicated
// single-flight, and hit/miss/wait/evict counters expose the cache's
// behaviour to reports and CLIs.
//
// Determinism contract: the store memoizes pure functions only — a compute
// callback must depend on nothing but the data folded into its key — so a
// cached run is byte-identical to an uncached one at any worker count.
// Eviction (bounded FIFO per shard) therefore only ever costs recomputation,
// never correctness.
package cache

import (
	"sync"
	"sync/atomic"

	"postopc/internal/obs"
)

// Key is a content signature: a collision-resistant hash (SHA-256 sized) of
// the canonical serialization of every input of the cached computation.
type Key [32]byte

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	// Hits counts lookups satisfied by an already-completed entry.
	Hits uint64
	// Misses counts lookups that started a new computation.
	Misses uint64
	// Waits counts single-flight waits: lookups that found the key already
	// being computed and blocked for its result instead of recomputing.
	Waits uint64
	// Evictions counts completed entries dropped to respect the bound.
	Evictions uint64
	// Entries is the number of live entries (completed and in-flight).
	Entries int
}

// Lookups returns the total number of Do calls observed.
func (s Stats) Lookups() uint64 { return s.Hits + s.Misses + s.Waits }

// HitRate returns the fraction of lookups that avoided a computation
// (hits plus single-flight waits), in [0, 1]; 0 when no lookups happened.
func (s Stats) HitRate() float64 {
	n := s.Lookups()
	if n == 0 {
		return 0
	}
	return float64(s.Hits+s.Waits) / float64(n)
}

// entry is one keyed slot. done is closed when val/err are set; an entry
// whose computation failed is removed from its shard so later callers retry
// (errors are never cached).
type entry struct {
	done chan struct{}
	val  any
	err  error
}

// shard is one lock domain of the store.
type shard struct {
	mu      sync.Mutex
	entries map[Key]*entry
	// fifo holds completed keys in insertion order — the eviction queue.
	// In-flight entries are never evicted (a waiter holds a pointer to
	// them), so fifo is appended to only once a computation completes.
	fifo []Key
}

const numShards = 16

// Store is the sharded single-flight content-addressed store.
type Store struct {
	shards   [numShards]shard
	perShard int

	hits, misses, waits, evictions atomic.Uint64

	// Telemetry handles (see Instrument). All nil on an uninstrumented
	// store, where they cost a nil check per Do; they only ever receive
	// writes, so telemetry can never alter a cached result.
	mHits, mMisses, mWaits, mEvictions *obs.Counter
	hLookup, hWait                     *obs.Histogram
}

// DefaultEntries is the bound used when New is given a non-positive size.
const DefaultEntries = 4096

// New returns a store bounded to roughly maxEntries completed entries
// (rounded up to the shard count; maxEntries <= 0 selects DefaultEntries).
func New(maxEntries int) *Store {
	if maxEntries <= 0 {
		maxEntries = DefaultEntries
	}
	per := (maxEntries + numShards - 1) / numShards
	s := &Store{perShard: per}
	for i := range s.shards {
		s.shards[i].entries = make(map[Key]*entry)
	}
	return s
}

// Instrument attaches telemetry to the store: hit/miss/wait/evict
// counters under "cache.*" plus lookup and single-flight wait latency
// histograms. Call it before the store is shared between goroutines
// (typically right after New); a nil or disabled sink leaves the store
// uninstrumented.
func (s *Store) Instrument(sink *obs.Sink) *Store {
	s.mHits = sink.Counter("cache.hits_total")
	s.mMisses = sink.Counter("cache.misses_total")
	s.mWaits = sink.Counter("cache.waits_total")
	s.mEvictions = sink.Counter("cache.evictions_total")
	s.hLookup = sink.LatencyHistogram("cache.lookup_ns")
	s.hWait = sink.LatencyHistogram("cache.singleflight_wait_ns")
	return s
}

// Do returns the value cached under k, computing it with compute if absent.
// Concurrent calls for the same key run compute exactly once — the others
// block until it finishes and share its result (single-flight). A failed
// compute is not cached: its error is delivered to the callers that waited
// on it, and the next Do for the key computes afresh.
//
// compute must be a pure function of the data hashed into k; the returned
// value is shared between callers and must be treated as immutable.
func (s *Store) Do(k Key, compute func() (any, error)) (any, error) {
	t0 := s.hLookup.StartTimer()
	sh := &s.shards[int(k[0])%numShards]
	sh.mu.Lock()
	if e, ok := sh.entries[k]; ok {
		select {
		case <-e.done: // already complete: a plain hit
			sh.mu.Unlock()
			s.hits.Add(1)
			s.mHits.Inc()
			s.hLookup.ObserveSince(t0)
			return e.val, e.err
		default: // in flight: wait for the leader
			sh.mu.Unlock()
			s.waits.Add(1)
			s.mWaits.Inc()
			s.hLookup.ObserveSince(t0)
			tw := s.hWait.StartTimer()
			<-e.done
			s.hWait.ObserveSince(tw)
			return e.val, e.err
		}
	}
	e := &entry{done: make(chan struct{})}
	sh.entries[k] = e
	sh.mu.Unlock()
	s.misses.Add(1)
	s.mMisses.Inc()
	s.hLookup.ObserveSince(t0)

	e.val, e.err = compute()
	close(e.done)

	sh.mu.Lock()
	if e.err != nil {
		// Errors are not cached; only remove our own entry (a concurrent
		// retry may already have replaced it).
		if sh.entries[k] == e {
			delete(sh.entries, k)
		}
	} else {
		sh.fifo = append(sh.fifo, k)
		for len(sh.fifo) > s.perShard {
			old := sh.fifo[0]
			sh.fifo = sh.fifo[1:]
			delete(sh.entries, old)
			s.evictions.Add(1)
			s.mEvictions.Inc()
		}
	}
	sh.mu.Unlock()
	return e.val, e.err
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Waits:     s.waits.Load(),
		Evictions: s.evictions.Load(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st.Entries += len(sh.entries)
		sh.mu.Unlock()
	}
	return st
}

// Do is the typed wrapper over Store.Do: it preserves the compute
// callback's result type across the cache.
func Do[T any](s *Store, k Key, compute func() (T, error)) (T, error) {
	v, err := s.Do(k, func() (any, error) { return compute() })
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}
