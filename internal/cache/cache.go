// Package cache provides the bounded, sharded, in-memory content-addressed
// store behind the flow's pattern cache: artifacts are keyed by a
// collision-resistant signature of their full input (see flow's window
// signatures), concurrent computations of the same key are deduplicated
// single-flight, and hit/miss/wait/evict counters expose the cache's
// behaviour to reports and CLIs.
//
// Determinism contract: the store memoizes pure functions only — a compute
// callback must depend on nothing but the data folded into its key — so a
// cached run is byte-identical to an uncached one at any worker count.
// Eviction (bounded FIFO per shard) therefore only ever costs recomputation,
// never correctness.
package cache

import (
	"sync"
	"sync/atomic"

	"postopc/internal/obs"
)

// Key is a content signature: a collision-resistant hash (SHA-256 sized) of
// the canonical serialization of every input of the cached computation.
type Key [32]byte

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	// Hits counts lookups satisfied by an already-completed entry.
	Hits uint64
	// Misses counts lookups that started a new computation.
	Misses uint64
	// Waits counts single-flight waits: lookups that found the key already
	// being computed and blocked for its result instead of recomputing.
	Waits uint64
	// Evictions counts completed entries dropped to respect the bound.
	Evictions uint64
	// Entries is the number of live entries (completed and in-flight).
	Entries int
}

// Lookups returns the total number of Do calls observed.
func (s Stats) Lookups() uint64 { return s.Hits + s.Misses + s.Waits }

// HitRate returns the fraction of lookups that avoided a computation
// (hits plus single-flight waits), in [0, 1]; 0 when no lookups happened.
func (s Stats) HitRate() float64 {
	n := s.Lookups()
	if n == 0 {
		return 0
	}
	return float64(s.Hits+s.Waits) / float64(n)
}

// entry is one keyed slot. done is closed when val/err are set; an entry
// whose computation failed is removed from its shard so later callers retry
// (errors are never cached).
type entry struct {
	done chan struct{}
	val  any
	err  error
}

// shard is one lock domain of the store.
type shard struct {
	mu      sync.Mutex
	entries map[Key]*entry
	// fifo holds completed keys in insertion order — the eviction queue.
	// In-flight entries are never evicted (a waiter holds a pointer to
	// them), so fifo is appended to only once a computation completes.
	fifo []Key
}

const numShards = 16

// Store is the sharded single-flight content-addressed store.
type Store struct {
	shards   [numShards]shard
	perShard int

	hits, misses, waits, evictions atomic.Uint64

	// Telemetry handles (see Instrument). All nil on an uninstrumented
	// store, where they cost a nil check per Do; they only ever receive
	// writes, so telemetry can never alter a cached result.
	mHits, mMisses, mWaits, mEvictions *obs.Counter
	hLookup, hWait                     *obs.Histogram
}

// DefaultEntries is the bound used when New is given a non-positive size.
const DefaultEntries = 4096

// New returns a store bounded to roughly maxEntries completed entries
// (rounded up to the shard count; maxEntries <= 0 selects DefaultEntries).
func New(maxEntries int) *Store {
	if maxEntries <= 0 {
		maxEntries = DefaultEntries
	}
	per := (maxEntries + numShards - 1) / numShards
	s := &Store{perShard: per}
	for i := range s.shards {
		s.shards[i].entries = make(map[Key]*entry)
	}
	return s
}

// Instrument attaches telemetry to the store: hit/miss/wait/evict
// counters under "cache.*" plus lookup and single-flight wait latency
// histograms. Call it before the store is shared between goroutines
// (typically right after New); a nil or disabled sink leaves the store
// uninstrumented.
func (s *Store) Instrument(sink *obs.Sink) *Store {
	s.mHits = sink.Counter("cache.hits_total")
	s.mMisses = sink.Counter("cache.misses_total")
	s.mWaits = sink.Counter("cache.waits_total")
	s.mEvictions = sink.Counter("cache.evictions_total")
	s.hLookup = sink.LatencyHistogram("cache.lookup_ns")
	s.hWait = sink.LatencyHistogram("cache.singleflight_wait_ns")
	return s
}

// Ticket is one claimed lookup, the batch-aware face of the single-flight
// protocol. Reserve classifies the lookup immediately — hit, single-flight
// wait, or leadership of a fresh computation — so a staged pipeline can
// route each batch member without blocking: hits (Ready) read their value
// at once and skip the compute stages, leaders run the computation and must
// Complete it, and waiters carry the ticket to a later stage and Wait there.
// The zero Ticket is invalid; tickets are passed by value and must not be
// reused after Wait/Complete returns the result.
type Ticket struct {
	store  *Store
	e      *entry
	k      Key
	leader bool
}

// Leader reports whether this ticket claimed the computation: exactly one
// concurrent Reserve of a key wins leadership, and that caller must call
// Complete exactly once (even on failure) or every waiter blocks forever.
func (t Ticket) Leader() bool { return t.leader }

// Ready reports whether the result was already published when it is called
// — a plain cache hit whose Wait returns without blocking. Always false on
// a leader ticket that has not completed.
func (t Ticket) Ready() bool {
	select {
	case <-t.e.done:
		return true
	default:
		return false
	}
}

// Wait blocks until the result is published and returns it. On a leader
// ticket Wait may only be called after Complete (it would otherwise wait
// on itself). The single-flight wait histogram observes only waits that
// actually block.
func (t Ticket) Wait() (any, error) {
	select {
	case <-t.e.done:
	default:
		tw := t.store.hWait.StartTimer()
		<-t.e.done
		t.store.hWait.ObserveSince(tw)
	}
	return t.e.val, t.e.err
}

// Complete publishes the leader's result, wakes every waiter, and applies
// the store's retention policy: successful values enter the FIFO eviction
// queue, errors are never cached (the entry is removed so the next Reserve
// leads a fresh computation, matching Do). Call exactly once, only on a
// leader ticket, with the computation's own (unwrapped) error.
func (t Ticket) Complete(val any, err error) {
	e := t.e
	e.val, e.err = val, err
	close(e.done)

	s := t.store
	sh := &s.shards[int(t.k[0])%numShards]
	sh.mu.Lock()
	if err != nil {
		// Errors are not cached; only remove our own entry (a concurrent
		// retry may already have replaced it).
		if sh.entries[t.k] == e {
			delete(sh.entries, t.k)
		}
	} else {
		sh.fifo = append(sh.fifo, t.k)
		for len(sh.fifo) > s.perShard {
			old := sh.fifo[0]
			sh.fifo = sh.fifo[1:]
			delete(sh.entries, old)
			s.evictions.Add(1)
			s.mEvictions.Inc()
		}
	}
	sh.mu.Unlock()
}

// Reserve claims the lookup of k and classifies it: a completed entry is a
// hit (Ready ticket), an in-flight entry is a single-flight wait, and an
// absent key makes the caller the leader, obligated to Complete. The
// hit/miss/wait counters are attributed here, exactly as Do attributes
// them.
func (s *Store) Reserve(k Key) Ticket {
	t0 := s.hLookup.StartTimer()
	sh := &s.shards[int(k[0])%numShards]
	sh.mu.Lock()
	if e, ok := sh.entries[k]; ok {
		sh.mu.Unlock()
		select {
		case <-e.done: // already complete: a plain hit
			s.hits.Add(1)
			s.mHits.Inc()
		default: // in flight: the caller will wait for the leader
			s.waits.Add(1)
			s.mWaits.Inc()
		}
		s.hLookup.ObserveSince(t0)
		return Ticket{store: s, e: e, k: k}
	}
	e := &entry{done: make(chan struct{})}
	sh.entries[k] = e
	sh.mu.Unlock()
	s.misses.Add(1)
	s.mMisses.Inc()
	s.hLookup.ObserveSince(t0)
	return Ticket{store: s, e: e, k: k, leader: true}
}

// Do returns the value cached under k, computing it with compute if absent.
// Concurrent calls for the same key run compute exactly once — the others
// block until it finishes and share its result (single-flight). A failed
// compute is not cached: its error is delivered to the callers that waited
// on it, and the next Do for the key computes afresh.
//
// compute must be a pure function of the data hashed into k; the returned
// value is shared between callers and must be treated as immutable.
func (s *Store) Do(k Key, compute func() (any, error)) (any, error) {
	t := s.Reserve(k)
	if !t.leader {
		return t.Wait()
	}
	val, err := compute()
	t.Complete(val, err)
	return val, err
}

// Cap returns the store's effective bound on completed entries (the
// requested bound rounded up to the shard count) — a run-manifest fact,
// never an input to any cached computation.
func (s *Store) Cap() int { return s.perShard * numShards }

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Waits:     s.waits.Load(),
		Evictions: s.evictions.Load(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st.Entries += len(sh.entries)
		sh.mu.Unlock()
	}
	return st
}

// Do is the typed wrapper over Store.Do: it preserves the compute
// callback's result type across the cache.
func Do[T any](s *Store, k Key, compute func() (T, error)) (T, error) {
	v, err := s.Do(k, func() (any, error) { return compute() })
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}
