package cache

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func keyOf(b byte) Key {
	var k Key
	k[0] = b
	k[31] = b
	return k
}

// TestSingleFlight hammers one signature from many goroutines and requires
// exactly one compute: the single-flight contract that keeps concurrent
// par.ForEach workers from duplicating a window simulation. Run under
// -race (make check) to exercise the synchronization.
func TestSingleFlight(t *testing.T) {
	s := New(64)
	const workers = 32
	var computes atomic.Int64
	release := make(chan struct{})

	vals := make([]any, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			vals[w], errs[w] = s.Do(keyOf(7), func() (any, error) {
				computes.Add(1)
				<-release // hold the flight open until every worker has arrived
				return &struct{ v int }{42}, nil
			})
		}(w)
	}
	// Let every worker reach Do before the leader finishes.
	for s.Stats().Waits < workers-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("%d computes for one signature, want exactly 1", got)
	}
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if vals[w] != vals[0] {
			t.Fatalf("worker %d got a different artifact pointer than worker 0 — results were not shared", w)
		}
	}
	st := s.Stats()
	if st.Misses != 1 || st.Waits != workers-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d single-flight waits", st, workers-1)
	}
}

func TestHitAfterCompletion(t *testing.T) {
	s := New(64)
	calls := 0
	get := func() (int, error) {
		return Do(s, keyOf(1), func() (int, error) {
			calls++
			return 99, nil
		})
	}
	for i := 0; i < 5; i++ {
		v, err := get()
		if err != nil || v != 99 {
			t.Fatalf("get %d = (%d, %v), want (99, nil)", i, v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != 4 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 4 hits / 1 entry", st)
	}
	if got := st.HitRate(); got != 0.8 {
		t.Fatalf("hit rate = %g, want 0.8", got)
	}
}

// TestHitRateZeroLookups: a fresh store (or a Stats zero value) has no
// lookups; HitRate must report 0, not NaN — this value flows straight into
// CLI tables and the metrics gauge, where NaN would corrupt the output.
func TestHitRateZeroLookups(t *testing.T) {
	var zero Stats
	if got := zero.HitRate(); got != 0 {
		t.Fatalf("zero-value Stats.HitRate() = %g, want 0", got)
	}
	if got := New(64).Stats().HitRate(); got != 0 {
		t.Fatalf("fresh store HitRate() = %g, want 0", got)
	}
}

// TestErrorsAreNotCached: a failed compute must not poison the key.
func TestErrorsAreNotCached(t *testing.T) {
	s := New(64)
	boom := errors.New("boom")
	if _, err := s.Do(keyOf(2), func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("first Do error = %v, want boom", err)
	}
	v, err := s.Do(keyOf(2), func() (any, error) { return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("retry after error = (%v, %v), want (ok, nil)", v, err)
	}
	if st := s.Stats(); st.Entries != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want the error entry dropped and 2 misses", st)
	}
}

// TestEvictionBound fills the store past its bound and checks it stays
// bounded, evicting oldest-first, and that evicted keys recompute.
func TestEvictionBound(t *testing.T) {
	s := New(numShards) // one completed entry per shard
	key := func(i int) Key {
		var k Key
		k[0] = 0 // pin every key to one shard to make the FIFO order observable
		k[1] = byte(i)
		return k
	}
	for i := 0; i < 4; i++ {
		if _, err := Do(s, key(i), func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Entries != 1 || st.Evictions != 3 {
		t.Fatalf("stats = %+v, want 1 live entry and 3 evictions", st)
	}
	// The newest entry survived; the oldest was evicted and recomputes.
	recomputed := false
	if _, err := Do(s, key(0), func() (int, error) { recomputed = true; return 0, nil }); err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Fatal("oldest key was still cached after eviction")
	}
	kept := false
	if _, err := Do(s, key(0), func() (int, error) { kept = true; return 0, nil }); err != nil {
		t.Fatal(err)
	}
	if kept {
		t.Fatal("just-recomputed key was not cached")
	}
}

// TestConcurrentMixedKeys drives many goroutines over overlapping keys to
// give the race detector surface area on the shard locking.
func TestConcurrentMixedKeys(t *testing.T) {
	s := New(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keyOf(byte(i % 13))
				want := fmt.Sprintf("v%d", i%13)
				v, err := Do(s, k, func() (string, error) { return want, nil })
				if err != nil || v != want {
					t.Errorf("goroutine %d: Do = (%q, %v), want (%q, nil)", g, v, err, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
