package cache

import (
	"errors"
	"sync"
	"testing"
)

func tkey(b byte) Key {
	var k Key
	k[0] = b
	k[1] = b
	return k
}

// TestTicketLeaderThenHit pins the basic Reserve protocol: the first
// reservation leads, Complete publishes, and the next reservation is a
// ready hit sharing the value. Counters match Do's attribution.
func TestTicketLeaderThenHit(t *testing.T) {
	s := New(8)
	t1 := s.Reserve(tkey(1))
	if !t1.Leader() {
		t.Fatal("first Reserve must lead")
	}
	if t1.Ready() {
		t.Fatal("leader ticket ready before Complete")
	}
	t1.Complete("v", nil)
	if v, err := t1.Wait(); err != nil || v != "v" {
		t.Fatalf("leader Wait after Complete = (%v, %v)", v, err)
	}

	t2 := s.Reserve(tkey(1))
	if t2.Leader() {
		t.Fatal("second Reserve of a completed key must not lead")
	}
	if !t2.Ready() {
		t.Fatal("completed entry must be Ready")
	}
	if v, err := t2.Wait(); err != nil || v != "v" {
		t.Fatalf("hit Wait = (%v, %v)", v, err)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Waits != 0 {
		t.Fatalf("stats = %+v, want 1 miss / 1 hit / 0 waits", st)
	}
}

// TestTicketSingleFlight checks that concurrent reservations of one key
// elect exactly one leader, every waiter blocks until Complete and shares
// the published value, and the wait counter attributes them.
func TestTicketSingleFlight(t *testing.T) {
	s := New(8)
	lead := s.Reserve(tkey(2))
	if !lead.Leader() {
		t.Fatal("first Reserve must lead")
	}

	const waiters = 4
	got := make([]any, waiters)
	var started, done sync.WaitGroup
	for w := 0; w < waiters; w++ {
		started.Add(1)
		done.Add(1)
		go func(w int) {
			defer done.Done()
			tk := s.Reserve(tkey(2))
			if tk.Leader() {
				t.Error("waiter elected leader while computation in flight")
			}
			started.Done()
			v, err := tk.Wait()
			if err != nil {
				t.Error(err)
			}
			got[w] = v
		}(w)
	}
	started.Wait()
	lead.Complete(42, nil)
	done.Wait()
	for w := range got {
		if got[w] != 42 {
			t.Fatalf("waiter %d got %v, want 42", w, got[w])
		}
	}
	st := s.Stats()
	if st.Misses != 1 || st.Waits != waiters {
		t.Fatalf("stats = %+v, want 1 miss / %d waits", st, waiters)
	}
}

// TestTicketErrorNotCached checks error retention parity with Do: a leader
// completing with an error delivers it to its waiters, but the next
// reservation leads a fresh computation.
func TestTicketErrorNotCached(t *testing.T) {
	s := New(8)
	boom := errors.New("boom")

	lead := s.Reserve(tkey(3))
	waitTk := s.Reserve(tkey(3))
	lead.Complete(nil, boom)
	if _, err := waitTk.Wait(); !errors.Is(err, boom) {
		t.Fatalf("waiter error = %v, want boom", err)
	}

	retry := s.Reserve(tkey(3))
	if !retry.Leader() {
		t.Fatal("Reserve after a failed computation must lead afresh")
	}
	retry.Complete("ok", nil)
	if v, err := s.Do(tkey(3), func() (any, error) { return nil, errors.New("must not run") }); err != nil || v != "ok" {
		t.Fatalf("Do after retry = (%v, %v), want cached ok", v, err)
	}
}

// TestTicketDoInterop checks that Reserve/Do share one single-flight
// domain: a Do call issued while a ticket leads the key waits for the
// ticket's Complete instead of recomputing.
func TestTicketDoInterop(t *testing.T) {
	s := New(8)
	lead := s.Reserve(tkey(4))

	res := make(chan any, 1)
	go func() {
		v, _ := s.Do(tkey(4), func() (any, error) { return "recomputed", nil })
		res <- v
	}()
	lead.Complete("led", nil)
	if v := <-res; v != "led" {
		t.Fatalf("Do got %v, want the ticket leader's value", v)
	}
	st := s.Stats()
	if st.Misses != 1 {
		t.Fatalf("stats = %+v, want exactly 1 miss across Reserve and Do", st)
	}
}

// TestTicketEviction checks Complete applies the FIFO bound exactly as Do
// does.
func TestTicketEviction(t *testing.T) {
	s := New(numShards) // one completed entry per shard
	// Same shard (same leading byte), three keys: the first must evict.
	k1, k2 := tkey(5), tkey(5)
	k2[1] = 99
	a := s.Reserve(k1)
	a.Complete(1, nil)
	b := s.Reserve(k2)
	b.Complete(2, nil)
	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if tk := s.Reserve(k1); !tk.Leader() {
		t.Fatal("evicted key must lead a fresh computation")
	} else {
		tk.Complete(1, nil)
	}
}
