// Package cdx performs post-OPC extraction of critical dimensions: given a
// simulated aerial image of a layout window and the drawn gate sites inside
// it, it slices each printed gate across its width and measures the printed
// channel length (CD) of every slice — the paper's central measurement.
package cdx

import (
	"fmt"
	"math"

	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/litho"
)

// Slice is one CD measurement across a gate channel.
type Slice struct {
	// Y is the slice position (nm, chip coordinates; for horizontal scans
	// it is the y of the scan line).
	Y float64
	// CD is the printed channel length (nm); 0 when the slice failed.
	CD float64
	// OK reports whether the slice printed.
	OK bool
}

// GateCD is the extracted profile of one gate site.
type GateCD struct {
	// Site is the drawn gate.
	Site layout.GateSite
	// DrawnL is the drawn channel length (nm).
	DrawnL float64
	// Slices holds the per-slice measurements, bottom to top.
	Slices []Slice
	// Printed is true when every slice printed.
	Printed bool
}

// Options for extraction.
type Options struct {
	// Slices is the number of CD scans across the channel width.
	Slices int
	// ScanHalfNM is the half-range of each CD scan around the channel
	// center; it must exceed any plausible printed CD excursion but stay
	// below the distance to the neighbouring poly line.
	ScanHalfNM float64
	// EdgeMarginNM keeps slices away from the channel's width-direction
	// ends, where diffusion-corner effects are not gate-length territory.
	EdgeMarginNM float64
}

// DefaultOptions returns extraction settings matched to the N90 kit.
func DefaultOptions() Options {
	return Options{Slices: 9, ScanHalfNM: 150, EdgeMarginNM: 20}
}

// ExtractGate measures the printed CD profile of a gate site from an aerial
// image that covers it. The gate channel is assumed vertical (poly runs in
// y, length in x) in chip coordinates — true for all generated cells in
// either row orientation.
func ExtractGate(im *litho.Image, site layout.GateSite, threshold float64, pol litho.Polarity, opt Options) GateCD {
	if opt.Slices <= 0 {
		opt.Slices = 9
	}
	if opt.ScanHalfNM <= 0 {
		opt.ScanHalfNM = 150
	}
	ch := site.Channel
	out := GateCD{Site: site, DrawnL: float64(ch.W()), Printed: true}
	cx := float64(ch.X0+ch.X1) / 2
	y0 := float64(ch.Y0) + opt.EdgeMarginNM
	y1 := float64(ch.Y1) - opt.EdgeMarginNM
	if y1 < y0 {
		y0, y1 = float64(ch.Y0), float64(ch.Y1)
	}
	for i := 0; i < opt.Slices; i++ {
		var y float64
		if opt.Slices == 1 {
			y = (y0 + y1) / 2
		} else {
			y = y0 + (y1-y0)*float64(i)/float64(opt.Slices-1)
		}
		res := im.MeasureCD(litho.AxisX, y, cx-opt.ScanHalfNM, cx+opt.ScanHalfNM, cx, threshold, pol)
		sl := Slice{Y: y, CD: res.CD, OK: res.OK}
		if !res.OK {
			out.Printed = false
		}
		out.Slices = append(out.Slices, sl)
	}
	return out
}

// CDs returns the slice CDs (only the printed ones).
func (g GateCD) CDs() []float64 {
	var out []float64
	for _, s := range g.Slices {
		if s.OK {
			out = append(out, s.CD)
		}
	}
	return out
}

// MeanCD returns the average printed CD (0 if nothing printed).
func (g GateCD) MeanCD() float64 {
	cds := g.CDs()
	if len(cds) == 0 {
		return 0
	}
	var s float64
	for _, c := range cds {
		s += c
	}
	return s / float64(len(cds))
}

// Range returns the min and max printed CD.
func (g GateCD) Range() (lo, hi float64) {
	cds := g.CDs()
	if len(cds) == 0 {
		return 0, 0
	}
	lo, hi = cds[0], cds[0]
	for _, c := range cds[1:] {
		lo = math.Min(lo, c)
		hi = math.Max(hi, c)
	}
	return
}

// Nonuniformity returns max-min CD across the gate (the non-rectangularity
// the equivalent-length model exists for).
func (g GateCD) Nonuniformity() float64 {
	lo, hi := g.Range()
	return hi - lo
}

// String summarizes the extraction.
func (g GateCD) String() string {
	lo, hi := g.Range()
	return fmt.Sprintf("%s drawn=%.0fnm printed=%.1fnm [%.1f,%.1f] slices=%d ok=%v",
		g.Site.Name, g.DrawnL, g.MeanCD(), lo, hi, len(g.Slices), g.Printed)
}

// WindowOf returns the simulation window for a set of gate sites: the union
// of their channels expanded by ambit.
func WindowOf(sites []layout.GateSite, ambit geom.Coord) geom.Rect {
	var w geom.Rect
	for _, s := range sites {
		w = w.Union(s.Channel)
	}
	return w.Expand(ambit)
}
