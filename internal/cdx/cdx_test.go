package cdx

import (
	"math"
	"testing"

	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/litho"
)

// syntheticImage builds an image with a dark vertical bar centered at cx.
// The intensity rises linearly through the bar edge (slope 1/20nm, value
// 0.5 exactly at ±width/2), so the I=0.3 printed edge sits analytically at
// ±(width/2 − 4): the printed CD is width − 8, independent of pixel phase.
// Above y=400 the bar narrows by `taper` nm per side.
func syntheticImage(cx float64, width, taper float64) *litho.Image {
	mask := geom.NewRaster(geom.R(0, 0, 600, 800), 5)
	im := litho.NewImage(mask)
	for iy := 0; iy < im.Ny; iy++ {
		for ix := 0; ix < im.Nx; ix++ {
			x, y := mask.PixelCenter(ix, iy)
			w := width
			if y > 400 {
				w -= 2 * taper
			}
			v := 0.5 + (math.Abs(x-cx)-w/2)/20
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			im.Data[iy*im.Nx+ix] = v
		}
	}
	return im
}

func site(cx geom.Coord, l, w geom.Coord) layout.GateSite {
	return layout.GateSite{
		Name: "u1/MN0", Pin: "A", Kind: layout.NMOS,
		Channel: geom.R(cx-l/2, 100, cx+l/2, 100+w),
	}
}

func TestExtractUniformGate(t *testing.T) {
	im := syntheticImage(300, 94, 0)
	g := ExtractGate(im, site(300, 90, 300), 0.3, litho.ClearField, DefaultOptions())
	if !g.Printed {
		t.Fatal("gate should print")
	}
	if len(g.Slices) != 9 {
		t.Fatalf("slices = %d", len(g.Slices))
	}
	if math.Abs(g.MeanCD()-86) > 2 {
		t.Fatalf("mean CD = %.1f, want ~86", g.MeanCD())
	}
	if g.Nonuniformity() > 2 {
		t.Fatalf("uniform gate nonuniformity = %.1f", g.Nonuniformity())
	}
	if g.DrawnL != 90 {
		t.Fatalf("drawn L = %g", g.DrawnL)
	}
	if g.String() == "" {
		t.Fatal("String")
	}
}

func TestExtractTaperedGate(t *testing.T) {
	// Gate channel spans y in [300, 600]: slices above y=400 see the
	// narrowed bar.
	im := syntheticImage(300, 94, 6)
	s := layout.GateSite{Name: "g", Kind: layout.NMOS, Channel: geom.R(255, 300, 345, 600)}
	g := ExtractGate(im, s, 0.3, litho.ClearField, Options{Slices: 11, ScanHalfNM: 120})
	if !g.Printed {
		t.Fatal("gate should print")
	}
	lo, hi := g.Range()
	if hi-lo < 8 {
		t.Fatalf("taper not captured: range [%.1f, %.1f]", lo, hi)
	}
	if math.Abs(hi-86) > 2 || math.Abs(lo-74) > 2 {
		t.Fatalf("taper CDs = [%.1f, %.1f], want ~[74, 86]", lo, hi)
	}
}

func TestExtractMissingGate(t *testing.T) {
	// Clear-field image: nothing prints.
	mask := geom.NewRaster(geom.R(0, 0, 600, 800), 5)
	im := litho.NewImage(mask)
	for i := range im.Data {
		im.Data[i] = 1
	}
	g := ExtractGate(im, site(300, 90, 300), 0.3, litho.ClearField, DefaultOptions())
	if g.Printed {
		t.Fatal("nothing should print on a clear field")
	}
	if got := g.MeanCD(); got != 0 {
		t.Fatalf("mean CD of missing gate = %g", got)
	}
	if lo, hi := g.Range(); lo != 0 || hi != 0 {
		t.Fatal("range of missing gate")
	}
	if cds := g.CDs(); cds != nil {
		t.Fatalf("CDs = %v", cds)
	}
}

func TestExtractSingleSlice(t *testing.T) {
	im := syntheticImage(300, 100, 0)
	g := ExtractGate(im, site(300, 90, 300), 0.3, litho.ClearField, Options{Slices: 1, ScanHalfNM: 120})
	if len(g.Slices) != 1 {
		t.Fatalf("slices = %d", len(g.Slices))
	}
	// Single slice sits at the channel mid-height.
	if math.Abs(g.Slices[0].Y-250) > 25 {
		t.Fatalf("slice y = %g, want ~250", g.Slices[0].Y)
	}
}

func TestWindowOf(t *testing.T) {
	sites := []layout.GateSite{
		{Channel: geom.R(0, 0, 90, 500)},
		{Channel: geom.R(340, 0, 430, 500)},
	}
	w := WindowOf(sites, 100)
	if w != geom.R(-100, -100, 530, 600) {
		t.Fatalf("window = %v", w)
	}
}

func TestDefaultOptionsApplied(t *testing.T) {
	im := syntheticImage(300, 94, 0)
	// Zero-valued options fall back to defaults.
	g := ExtractGate(im, site(300, 90, 300), 0.3, litho.ClearField, Options{})
	if len(g.Slices) != 9 {
		t.Fatalf("default slices = %d", len(g.Slices))
	}
}
