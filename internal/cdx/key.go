package cdx

import "postopc/internal/geom"

// AppendKey appends the CD-extraction settings for the flow's pattern
// cache: slice count and scan geometry change the extracted profile, so
// they are part of every window signature.
func (o Options) AppendKey(dst []byte) []byte {
	dst = geom.AppendKeyInt(dst, int64(o.Slices))
	return geom.AppendKeyFloat(dst, o.ScanHalfNM, o.EdgeMarginNM)
}
