// Package cli holds the shared command-line plumbing of the cmd/ tools:
// uniform fatal-error diagnostics (every tool prefixes stderr with its
// name and exits non-zero) and the run-telemetry flags (-metrics, -trace,
// -pprof) that attach an obs.Sink to a run and export it at exit.
package cli

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"

	"postopc/internal/obs"
)

// Fatal prints "tool: err" to stderr and exits with status 1. Every cmd/
// binary funnels its fatal paths through this so diagnostics are uniform
// across the tool set.
func Fatal(tool string, err error) {
	fmt.Fprintln(os.Stderr, tool+":", err)
	os.Exit(1)
}

// Fatalf is Fatal with a format string.
func Fatalf(tool, format string, args ...interface{}) {
	Fatal(tool, fmt.Errorf(format, args...))
}

// Telemetry wires the -metrics/-trace/-pprof flags to an obs.Sink. Usage:
//
//	tel := cli.Telemetry("mytool")
//	flag.Parse()
//	tel.Start()
//	defer tel.Close()
//	... pass tel.Sink to flow.EnableObs / litho Instrument / par.Obs ...
//
// Sink is nil (all handles no-ops) when none of the flags were given, so
// tools pass it through unconditionally.
type TelemetryFlags struct {
	tool    string
	metrics string
	trace   string
	pprof   string

	// Sink is the run's telemetry sink; nil until Start decides the run
	// is instrumented.
	Sink *obs.Sink
}

// Telemetry registers -metrics, -trace and -pprof on the default FlagSet.
// Call before flag.Parse; Start after.
func Telemetry(tool string) *TelemetryFlags {
	t := &TelemetryFlags{tool: tool}
	flag.StringVar(&t.metrics, "metrics", "",
		"export metrics: a file path writes Prometheus text at exit; \":port\" serves Prometheus (/metrics) and expvar JSON (/debug/vars) live")
	flag.StringVar(&t.trace, "trace", "",
		"write the run's spans to this file as Chrome trace-event JSON (load via chrome://tracing or Perfetto)")
	flag.StringVar(&t.pprof, "pprof", "",
		"serve net/http/pprof on \":port\" for live CPU/heap profiling")
	return t
}

// Start creates the sink when any telemetry flag was given and launches
// the -metrics/-pprof HTTP servers. Server failures (e.g. a busy port)
// are fatal: asking for telemetry and silently not getting it would be
// worse than stopping.
func (t *TelemetryFlags) Start() {
	if t.pprof != "" {
		go func() {
			if err := http.ListenAndServe(t.pprof, nil); err != nil {
				Fatalf(t.tool, "pprof server: %v", err)
			}
		}()
	}
	if t.metrics == "" && t.trace == "" {
		return
	}
	t.Sink = obs.NewSink()
	if isPort(t.metrics) {
		reg := t.Sink.Metrics
		go func() {
			if err := http.ListenAndServe(t.metrics, obs.Handler(reg)); err != nil { //postopc:nolint:obswrite the -metrics server is the export boundary
				Fatalf(t.tool, "metrics server: %v", err)
			}
		}()
	}
}

// Close exports the collected telemetry: the Prometheus file for a
// file-valued -metrics, the Chrome trace for -trace, and a per-span
// summary table on stdout when tracing was on. Call once, at the end of a
// successful run.
func (t *TelemetryFlags) Close() {
	if t.Sink == nil {
		return
	}
	if t.metrics != "" && !isPort(t.metrics) {
		f, err := os.Create(t.metrics)
		if err != nil {
			Fatal(t.tool, err)
		}
		werr := obs.WritePrometheus(f, t.Sink.Metrics.Snapshot()) //postopc:nolint:obswrite Close runs after the computation; this is the export boundary
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			Fatal(t.tool, werr)
		}
		fmt.Println("wrote metrics to", t.metrics)
	}
	if t.trace != "" {
		f, err := os.Create(t.trace)
		if err != nil {
			Fatal(t.tool, err)
		}
		werr := t.Sink.Trace.WriteChromeTrace(f) //postopc:nolint:obswrite Close runs after the computation; this is the export boundary
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			Fatal(t.tool, werr)
		}
		t.Sink.Trace.SummaryTable().Fprint(os.Stdout) //postopc:nolint:obswrite Close runs after the computation; this is the export boundary
		fmt.Println("wrote trace to", t.trace)
	}
}

// isPort reports whether the -metrics value selects the live server
// (":8080", "localhost:8080") rather than an output file.
func isPort(s string) bool {
	if s == "" {
		return false
	}
	if s[0] == ':' {
		return true
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '/' || s[i] == os.PathSeparator {
			return false
		}
		if s[i] == ':' {
			return true
		}
	}
	return false
}
