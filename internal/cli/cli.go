// Package cli holds the shared command-line plumbing of the cmd/ tools:
// uniform fatal-error diagnostics (every tool prefixes stderr with its
// name and exits non-zero) and the run-telemetry flags (-metrics, -trace,
// -pprof, -ledger) that attach an obs.Sink to a run and export it at exit.
package cli

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"runtime"
	"time"

	"postopc/internal/obs"
)

// flightRing, when set by TelemetryFlags.Start, is dumped to stderr on
// every fatal exit (and on SIGQUIT, see sigquit_unix.go): the last spans
// before the crash, straight from the lock-free ring.
var flightRing *obs.Flight

// Fatal prints "tool: err" to stderr and exits with status 1. Every cmd/
// binary funnels its fatal paths through this so diagnostics are uniform
// across the tool set. When a flight recorder is live (-ledger), its ring
// is dumped first — the tail of the span trace that led to the failure.
func Fatal(tool string, err error) {
	if flightRing != nil {
		flightRing.Dump(os.Stderr) //postopc:nolint:obswrite crash path: the dump IS the export boundary
	}
	fmt.Fprintln(os.Stderr, tool+":", err)
	os.Exit(1)
}

// Fatalf is Fatal with a format string.
func Fatalf(tool, format string, args ...interface{}) {
	Fatal(tool, fmt.Errorf(format, args...))
}

// Telemetry wires the -metrics/-trace/-pprof/-ledger flags to an
// obs.Sink. Usage:
//
//	tel := cli.Telemetry("mytool")
//	flag.Parse()
//	tel.Start()
//	defer tel.Close()
//	... pass tel.Sink to flow.EnableObs / litho Instrument / par.Obs ...
//
// Sink is nil (all handles no-ops) when none of the flags were given, so
// tools pass it through unconditionally.
type TelemetryFlags struct {
	tool    string
	metrics string
	trace   string
	pprof   string
	ledger  string

	// Sink is the run's telemetry sink; nil until Start decides the run
	// is instrumented.
	Sink *obs.Sink

	// srv is the live -metrics server, shut down gracefully by Close.
	srv *http.Server
}

// Telemetry registers -metrics, -trace, -pprof and -ledger on the default
// FlagSet. Call before flag.Parse; Start after.
func Telemetry(tool string) *TelemetryFlags {
	t := &TelemetryFlags{tool: tool}
	flag.StringVar(&t.metrics, "metrics", "",
		"export metrics: a file path writes Prometheus text at exit; \":port\" serves Prometheus (/metrics) and expvar JSON (/debug/vars) live")
	flag.StringVar(&t.trace, "trace", "",
		"write the run's spans to this file as Chrome trace-event JSON (load via chrome://tracing or Perfetto)")
	flag.StringVar(&t.pprof, "pprof", "",
		"serve net/http/pprof on \":port\" for live CPU/heap profiling")
	flag.StringVar(&t.ledger, "ledger", "",
		"write the run ledger to this file as JSON lines: manifest, metrics, exact per-stage percentiles, per-window records and slowest-window exemplars (diff two with postopc-report)")
	return t
}

// Start creates the sink when any telemetry flag was given and launches
// the -metrics/-pprof HTTP servers. -ledger additionally attaches the run
// journal and a flight-recorder ring (dumped on fatal exits and SIGQUIT)
// and stamps the run manifest. Server failures (e.g. a busy port) are
// fatal: asking for telemetry and silently not getting it would be worse
// than stopping.
func (t *TelemetryFlags) Start() {
	if t.pprof != "" {
		go func() {
			if err := http.ListenAndServe(t.pprof, nil); err != nil {
				Fatalf(t.tool, "pprof server: %v", err)
			}
		}()
	}
	if t.metrics == "" && t.trace == "" && t.ledger == "" {
		return
	}
	t.Sink = obs.NewSink()
	if t.ledger != "" {
		t.Sink.WithJournal(0).WithFlightRecorder(512)
		bi := obs.GetBuildInfo()
		t.Sink.Journal.SetManifest(obs.Manifest{
			Tool:        t.tool,
			Args:        os.Args[1:],
			GoVersion:   bi.GoVersion,
			GOOS:        bi.GOOS,
			GOARCH:      bi.GOARCH,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			NumCPU:      runtime.NumCPU(),
			VekLevel:    bi.VekLevel,
			CPUFeatures: bi.CPUFeatures,
			Module:      bi.Module,
		})
		flightRing = t.Sink.Flight
		installQuitDump()
	}
	if isPort(t.metrics) {
		t.srv = obs.NewServer(t.metrics, t.Sink.Metrics)
		go func() {
			if err := t.srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				Fatalf(t.tool, "metrics server: %v", err)
			}
		}()
	}
}

// Close exports the collected telemetry: the Prometheus file for a
// file-valued -metrics, the Chrome trace for -trace, the run ledger for
// -ledger, and a per-span summary table on stdout when tracing was on.
// The live -metrics server, if any, is drained gracefully. Call once, at
// the end of a successful run.
func (t *TelemetryFlags) Close() {
	if t.Sink == nil {
		return
	}
	obs.ShutdownServer(t.srv, 2*time.Second)
	if t.metrics != "" && !isPort(t.metrics) {
		f, err := os.Create(t.metrics)
		if err != nil {
			Fatal(t.tool, err)
		}
		werr := obs.WritePrometheus(f, t.Sink.Metrics.Snapshot()) //postopc:nolint:obswrite Close runs after the computation; this is the export boundary
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			Fatal(t.tool, werr)
		}
		fmt.Println("wrote metrics to", t.metrics)
	}
	if t.trace != "" {
		f, err := os.Create(t.trace)
		if err != nil {
			Fatal(t.tool, err)
		}
		werr := t.Sink.Trace.WriteChromeTrace(f) //postopc:nolint:obswrite Close runs after the computation; this is the export boundary
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			Fatal(t.tool, werr)
		}
		t.Sink.Trace.SummaryTable().Fprint(os.Stdout) //postopc:nolint:obswrite Close runs after the computation; this is the export boundary
		fmt.Println("wrote trace to", t.trace)
	}
	if t.ledger != "" {
		f, err := os.Create(t.ledger)
		if err != nil {
			Fatal(t.tool, err)
		}
		werr := t.Sink.WriteLedger(f) //postopc:nolint:obswrite Close runs after the computation; this is the export boundary
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			Fatal(t.tool, werr)
		}
		fmt.Println("wrote run ledger to", t.ledger)
	}
}

// isPort reports whether the -metrics value selects the live server
// (":8080", "localhost:8080") rather than an output file.
func isPort(s string) bool {
	if s == "" {
		return false
	}
	if s[0] == ':' {
		return true
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '/' || s[i] == os.PathSeparator {
			return false
		}
		if s[i] == ':' {
			return true
		}
	}
	return false
}
