//go:build !unix

package cli

// installQuitDump is a no-op where SIGQUIT does not exist; fatal exits
// still dump the flight ring via Fatal.
func installQuitDump() {}
