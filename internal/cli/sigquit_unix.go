//go:build unix

package cli

import (
	"os"
	"os/signal"
	"runtime"
	"syscall"
)

// installQuitDump arms SIGQUIT as a flight-recorder dump: when a run
// wedges, ^\ prints the last recorded spans (the tail of work that led
// into the hang) followed by all goroutine stacks, then exits 2 — the
// same contract as the Go runtime's own SIGQUIT, with the ring dump in
// front. Installed only on ledger runs, so uninstrumented tools keep the
// runtime's default behaviour.
func installQuitDump() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		<-ch
		if flightRing != nil {
			flightRing.Dump(os.Stderr) //postopc:nolint:obswrite crash path: the dump IS the export boundary
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		os.Stderr.Write(buf)
		os.Exit(2)
	}()
}
