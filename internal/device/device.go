// Package device is the compact transistor model: an alpha-power-law drive
// current, an exponential subthreshold leakage model with short-channel
// threshold roll-off, and the equivalent-gate-length extraction that
// collapses a non-rectangular (post-litho) gate into the two effective
// lengths the timing and leakage models consume.
//
// The slice-and-weight equivalent-length method follows Poppe, Wu,
// Neureuther & Capodieci, "From poly line to transistor: building BSIM
// models for non-rectangular transistors" (SPIE 2006), which the DAC 2005
// timing paper relies on: a different effective L for delay (drive) and for
// static power (leakage), because Ion is roughly ∝1/L while Ioff is
// exponential in L through VT roll-off.
package device

import (
	"fmt"
	"math"

	"postopc/internal/layout"
	"postopc/internal/pdk"
)

// Model evaluates transistor currents for a kit.
type Model struct {
	// P holds the electrical parameters.
	P pdk.Device
}

// New builds a device model from the kit parameters.
func New(p pdk.Device) Model { return Model{P: p} }

// VT returns the threshold voltage (V, absolute value) at drawn/effective
// channel length lNM.
func (m Model) VT(kind layout.DeviceKind, lNM float64) float64 {
	vt0 := m.P.VT0N
	if kind == layout.PMOS {
		vt0 = m.P.VT0P
	}
	if lNM < 5 {
		lNM = 5 // avoid pathological exponentials for collapsed gates
	}
	return vt0 - m.P.VTRollOffV*math.Exp(-lNM/m.P.VTRollOffLNM)
}

// IonPerUm returns the saturation drive current in µA per µm of device
// width at the given channel length, using the alpha-power law
// Ion ∝ (VDD − VT(L))^α / L.
func (m Model) IonPerUm(kind layout.DeviceKind, lNM float64) float64 {
	k := m.P.KPrimeN
	if kind == layout.PMOS {
		k = m.P.KPrimeP
	}
	if lNM < 5 {
		lNM = 5
	}
	vgt := m.P.VDD - m.VT(kind, lNM)
	if vgt <= 0 {
		return 0
	}
	// Normalize so that K' is the drive at the nominal 90nm length:
	// Ion = K' · (90/L) · (vgt/vgt90)^alpha.
	vgt90 := m.P.VDD - m.VT(kind, 90)
	return k * (90 / lNM) * math.Pow(vgt/vgt90, m.P.Alpha)
}

// IoffPerUm returns the subthreshold leakage in nA per µm of width at the
// given channel length: Ioff = I0 · 10^(−VT(L)·1000/S).
func (m Model) IoffPerUm(kind layout.DeviceKind, lNM float64) float64 {
	vt := m.VT(kind, lNM)
	// Normalize the prefactor so that leakage at nominal L equals
	// I0LeakNAUM (the datasheet-style number).
	vtNom := m.VT(kind, 90)
	return m.P.I0LeakNAUM * math.Pow(10, (vtNom-vt)*1000/m.P.SubthresholdSwingMV)
}

// SliceCurrents integrates a CD profile: cds[i] is the printed channel
// length of slice i (nm), each slice carrying an equal share of the device
// width. It returns the average Ion and Ioff per µm of width.
func (m Model) SliceCurrents(kind layout.DeviceKind, cds []float64) (ionPerUm, ioffPerUm float64) {
	if len(cds) == 0 {
		return 0, 0
	}
	for _, l := range cds {
		ionPerUm += m.IonPerUm(kind, l)
		ioffPerUm += m.IoffPerUm(kind, l)
	}
	n := float64(len(cds))
	return ionPerUm / n, ioffPerUm / n
}

// EquivalentLengths collapses a non-rectangular gate CD profile into the
// two effective lengths: delayEL reproduces the profile's total drive
// current, leakEL its total leakage. Both are found by inverting the
// monotone current-vs-length maps by bisection.
func (m Model) EquivalentLengths(kind layout.DeviceKind, cds []float64) (delayEL, leakEL float64, err error) {
	if len(cds) == 0 {
		return 0, 0, fmt.Errorf("device: empty CD profile")
	}
	lo, hi := cds[0], cds[0]
	for _, l := range cds {
		if l <= 0 {
			return 0, 0, fmt.Errorf("device: non-printing slice in CD profile (CD=%g)", l)
		}
		lo = math.Min(lo, l)
		hi = math.Max(hi, l)
	}
	ionT, ioffT := m.SliceCurrents(kind, cds)
	delayEL = m.invert(lo, hi, ionT, func(l float64) float64 { return m.IonPerUm(kind, l) })
	leakEL = m.invert(lo, hi, ioffT, func(l float64) float64 { return m.IoffPerUm(kind, l) })
	return delayEL, leakEL, nil
}

// invert finds l in [lo, hi] with f(l) == target for monotone-decreasing f.
func (m Model) invert(lo, hi, target float64, f func(float64) float64) float64 {
	if hi-lo < 1e-9 {
		return lo
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if f(mid) > target {
			lo = mid // current too high -> length too short -> move right
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// GateDrive returns the drive current (µA) of a gate site at the given
// effective length, folding in the drawn device width.
func (m Model) GateDrive(site layout.GateSite, lNM float64) float64 {
	wUm := float64(site.W()) / 1000
	return wUm * m.IonPerUm(site.Kind, lNM)
}

// GateLeak returns the leakage (nA) of a gate site at the given effective
// length.
func (m Model) GateLeak(site layout.GateSite, lNM float64) float64 {
	wUm := float64(site.W()) / 1000
	return wUm * m.IoffPerUm(site.Kind, lNM)
}
