package device

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/pdk"
)

func model() Model { return New(pdk.N90().Device) }

func TestVTRollOff(t *testing.T) {
	m := model()
	// VT decreases as L shrinks (short-channel roll-off).
	if !(m.VT(layout.NMOS, 70) < m.VT(layout.NMOS, 90)) {
		t.Fatal("VT must drop for shorter channels")
	}
	if !(m.VT(layout.NMOS, 130) > m.VT(layout.NMOS, 90)) {
		t.Fatal("VT must recover for longer channels")
	}
	// Sensitivity near nominal is ~1-3 mV/nm.
	dv := m.VT(layout.NMOS, 91) - m.VT(layout.NMOS, 90)
	if dv < 0.0005 || dv > 0.005 {
		t.Fatalf("dVT/dL = %.4f V/nm out of plausible band", dv)
	}
	// PMOS uses its own VT0.
	if m.VT(layout.PMOS, 90) == m.VT(layout.NMOS, 90) {
		t.Fatal("PMOS and NMOS VT should differ")
	}
	// Degenerate lengths clamp instead of exploding.
	if v := m.VT(layout.NMOS, 0); math.IsNaN(v) || v < -2 {
		t.Fatalf("VT(0) = %g", v)
	}
}

func TestIonMonotoneDecreasingInL(t *testing.T) {
	m := model()
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		l := 60 + rnd.Float64()*80 // 60..140nm
		d := 1 + rnd.Float64()*10
		return m.IonPerUm(layout.NMOS, l) > m.IonPerUm(layout.NMOS, l+d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIonNominalAnchor(t *testing.T) {
	m := model()
	p := pdk.N90().Device
	if got := m.IonPerUm(layout.NMOS, 90); math.Abs(got-p.KPrimeN) > 1e-9 {
		t.Fatalf("Ion(90) = %g, want K' = %g", got, p.KPrimeN)
	}
	if got := m.IoffPerUm(layout.NMOS, 90); math.Abs(got-p.I0LeakNAUM) > 1e-9 {
		t.Fatalf("Ioff(90) = %g, want I0 = %g", got, p.I0LeakNAUM)
	}
	// NMOS out-drives PMOS per µm.
	if m.IonPerUm(layout.NMOS, 90) <= m.IonPerUm(layout.PMOS, 90) {
		t.Fatal("NMOS should out-drive PMOS per micron")
	}
}

func TestIoffExponentialSensitivity(t *testing.T) {
	m := model()
	// Leakage at L-10nm should be several times nominal; at L+10nm a
	// fraction. The asymmetry is the whole point of a separate leakage EL.
	nom := m.IoffPerUm(layout.NMOS, 90)
	short := m.IoffPerUm(layout.NMOS, 80)
	long := m.IoffPerUm(layout.NMOS, 100)
	if short/nom < 1.3 {
		t.Fatalf("leakage at 80nm only %.2fx nominal", short/nom)
	}
	if long/nom > 0.8 {
		t.Fatalf("leakage at 100nm still %.2fx nominal", long/nom)
	}
	// Relative leakage swing must exceed relative drive swing.
	ionShort := m.IonPerUm(layout.NMOS, 80) / m.IonPerUm(layout.NMOS, 90)
	if short/nom <= ionShort {
		t.Fatal("leakage must be more L-sensitive than drive")
	}
}

func TestEquivalentLengthsUniformProfile(t *testing.T) {
	m := model()
	cds := []float64{92, 92, 92, 92, 92}
	d, l, err := m.EquivalentLengths(layout.NMOS, cds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-92) > 0.01 || math.Abs(l-92) > 0.01 {
		t.Fatalf("uniform profile ELs = %.3f / %.3f, want 92", d, l)
	}
}

func TestEquivalentLengthsBounds(t *testing.T) {
	m := model()
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 3 + rnd.Intn(8)
		cds := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range cds {
			cds[i] = 70 + rnd.Float64()*40
			lo = math.Min(lo, cds[i])
			hi = math.Max(hi, cds[i])
		}
		d, l, err := m.EquivalentLengths(layout.NMOS, cds)
		if err != nil {
			return false
		}
		const eps = 1e-6
		return d >= lo-eps && d <= hi+eps && l >= lo-eps && l <= hi+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLeakageELShorterThanDelayEL(t *testing.T) {
	m := model()
	// A non-uniform gate: leakage is dominated by the narrow slices, so
	// the leakage EL must sit closer to the minimum CD than the delay EL.
	cds := []float64{80, 85, 90, 95, 100}
	d, l, err := m.EquivalentLengths(layout.NMOS, cds)
	if err != nil {
		t.Fatal(err)
	}
	if !(l < d) {
		t.Fatalf("leakage EL %.2f should be below delay EL %.2f", l, d)
	}
	if l < 80 || d > 100 {
		t.Fatalf("ELs out of profile range: %.2f %.2f", l, d)
	}
}

func TestEquivalentLengthsErrors(t *testing.T) {
	m := model()
	if _, _, err := m.EquivalentLengths(layout.NMOS, nil); err == nil {
		t.Fatal("empty profile accepted")
	}
	if _, _, err := m.EquivalentLengths(layout.NMOS, []float64{90, 0}); err == nil {
		t.Fatal("non-printing slice accepted")
	}
}

func TestGateDriveAndLeak(t *testing.T) {
	m := model()
	site := layout.GateSite{
		Name: "MN0", Pin: "A", Kind: layout.NMOS,
		Channel: geom.R(0, 0, 90, 1000), // W = 1µm
	}
	if got := m.GateDrive(site, 90); math.Abs(got-m.IonPerUm(layout.NMOS, 90)) > 1e-9 {
		t.Fatalf("1µm gate drive = %g", got)
	}
	if got := m.GateLeak(site, 90); math.Abs(got-m.IoffPerUm(layout.NMOS, 90)) > 1e-9 {
		t.Fatalf("1µm gate leak = %g", got)
	}
}

func TestSliceCurrents(t *testing.T) {
	m := model()
	ion, ioff := m.SliceCurrents(layout.NMOS, []float64{90, 90})
	if math.Abs(ion-m.IonPerUm(layout.NMOS, 90)) > 1e-9 {
		t.Fatalf("slice ion = %g", ion)
	}
	if math.Abs(ioff-m.IoffPerUm(layout.NMOS, 90)) > 1e-9 {
		t.Fatalf("slice ioff = %g", ioff)
	}
	if a, b := m.SliceCurrents(layout.NMOS, nil); a != 0 || b != 0 {
		t.Fatal("empty profile currents")
	}
}
