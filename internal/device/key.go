package device

import "postopc/internal/geom"

// AppendKey serializes every electrical parameter that shapes the model's
// currents and equivalent lengths, for the flow's content-addressed pattern
// cache: cached site extractions embed equivalent lengths, so a parameter
// change must change every window signature.
func (m Model) AppendKey(dst []byte) []byte {
	dst = geom.AppendKeyString(dst, "device")
	return geom.AppendKeyFloat(dst,
		m.P.VDD, m.P.VT0N, m.P.VT0P, m.P.VTRollOffV, m.P.VTRollOffLNM,
		m.P.Alpha, m.P.KPrimeN, m.P.KPrimeP, m.P.I0LeakNAUM,
		m.P.SubthresholdSwingMV, m.P.CGateFFUM, m.P.CWireFF,
		m.P.SigmaLRandomNM, m.P.RContactOhm)
}
