// Package drc is a morphological design-rule checker over the layout
// database: minimum width, minimum space, contact enclosure/landing and
// gate endcap checks derived from the kit's rule deck. It validates that
// the generated cell library (and anything a user feeds the flow) is
// legal before lithography gets to judge it.
package drc

import (
	"fmt"
	"sort"

	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/pdk"
)

// Violation is one design-rule failure.
type Violation struct {
	// Rule identifies the failed check, e.g. "poly.space".
	Rule string
	// At marks the offending area (cell or chip coordinates).
	At geom.Rect
	// RequiredNM is the rule value; MeasuredNM the offending dimension
	// when the check measures one (0 for pure coverage checks).
	RequiredNM, MeasuredNM geom.Coord
	// Context names the cell (or instance) the violation was found in.
	Context string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s at %v (need %dnm) in %s", v.Rule, v.At, v.RequiredNM, v.Context)
}

// layerRule is one width/space pair for a layer.
type layerRule struct {
	layer        layout.Layer
	width, space geom.Coord
}

// rulesFor derives the per-layer deck from the kit. Poly width uses the
// gate length (the narrowest legal poly), so gate strips are clean and
// anything thinner is not.
func rulesFor(p *pdk.PDK) []layerRule {
	r := p.Rules
	return []layerRule{
		{layout.LayerPoly, r.GateLengthNM, r.PolySpaceNM},
		{layout.LayerDiffusion, r.DiffWidthNM, r.DiffWidthNM},
		{layout.LayerContact, r.ContactNM, r.ContactSpaceNM},
		{layout.LayerMetal1, r.Metal1WidthNM, r.Metal1SpaceNM},
	}
}

// CheckCell runs the deck over one cell and returns its violations,
// deterministically ordered.
func CheckCell(p *pdk.PDK, c *layout.Cell) []Violation {
	var out []Violation
	regions := map[layout.Layer]geom.Region{}
	region := func(l layout.Layer) geom.Region {
		if rg, ok := regions[l]; ok {
			return rg
		}
		rg := geom.RegionFromRects(c.ShapesOn(l)...).Normalize()
		regions[l] = rg
		return rg
	}

	for _, lr := range rulesFor(p) {
		rg := region(lr.layer)
		if rg.Empty() {
			continue
		}
		name := lr.layer.String()
		for _, r := range rg.NarrowerThan(lr.width) {
			out = append(out, Violation{
				Rule: name + ".width", At: r,
				RequiredNM: lr.width, MeasuredNM: minC(r.W(), r.H()),
				Context: c.Name,
			})
		}
		for _, r := range rg.GapsNarrowerThan(lr.space) {
			out = append(out, Violation{
				Rule: name + ".space", At: r,
				RequiredNM: lr.space, MeasuredNM: minC(r.W(), r.H()),
				Context: c.Name,
			})
		}
	}

	// Contact landing: every contact must land fully on poly or diffusion
	// or metal1 (power-rail taps land on M1 in this library).
	landing := region(layout.LayerPoly).
		Union(region(layout.LayerDiffusion)).
		Union(region(layout.LayerMetal1))
	for _, ct := range c.ShapesOn(layout.LayerContact) {
		if !landing.Covers(geom.RegionFromRects(ct)) {
			out = append(out, Violation{
				Rule: "contact.landing", At: ct,
				RequiredNM: p.Rules.ContactNM,
				Context:    c.Name,
			})
		}
	}

	// Gate endcap: poly must extend past each channel end by PolyExtNM.
	poly := region(layout.LayerPoly)
	for _, g := range c.Gates {
		ch := g.Channel
		ext := p.Rules.PolyExtNM
		above := geom.R(ch.X0, ch.Y1, ch.X1, ch.Y1+ext)
		below := geom.R(ch.X0, ch.Y0-ext, ch.X1, ch.Y0)
		for _, probe := range []geom.Rect{above, below} {
			if !poly.Covers(geom.RegionFromRects(probe)) {
				out = append(out, Violation{
					Rule: "poly.endcap", At: probe,
					RequiredNM: ext,
					Context:    c.Name + "/" + g.Name,
				})
			}
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.At.X0 != b.At.X0 {
			return a.At.X0 < b.At.X0
		}
		return a.At.Y0 < b.At.Y0
	})
	return out
}

// CheckLibrary checks every cell of a library; the result maps cell name
// to its violations (clean cells are omitted).
func CheckLibrary(p *pdk.PDK, cells map[string]*layout.Cell) map[string][]Violation {
	out := map[string][]Violation{}
	for name, c := range cells {
		if v := CheckCell(p, c); len(v) > 0 {
			out[name] = v
		}
	}
	return out
}

// CheckWindow runs the width/space deck over a flattened chip window —
// this is how abutment-induced violations (cell A's shapes against cell
// B's) are caught, which per-cell checks cannot see.
func CheckWindow(p *pdk.PDK, ch *layout.Chip, window geom.Rect) []Violation {
	var out []Violation
	for _, lr := range rulesFor(p) {
		rg := geom.RegionFromRects(ch.WindowShapes(lr.layer, window)...).Normalize()
		if rg.Empty() {
			continue
		}
		name := lr.layer.String()
		// Ignore residues touching the window boundary: clipped shapes
		// there are artifacts of the window, not of the layout.
		interior := window.Expand(-lr.space)
		for _, r := range rg.NarrowerThan(lr.width) {
			if !interior.ContainsRect(r) {
				continue
			}
			out = append(out, Violation{Rule: name + ".width", At: r,
				RequiredNM: lr.width, MeasuredNM: minC(r.W(), r.H()), Context: ch.Name})
		}
		for _, r := range rg.GapsNarrowerThan(lr.space) {
			if !interior.ContainsRect(r) {
				continue
			}
			out = append(out, Violation{Rule: name + ".space", At: r,
				RequiredNM: lr.space, MeasuredNM: minC(r.W(), r.H()), Context: ch.Name})
		}
	}
	return out
}

func minC(a, b geom.Coord) geom.Coord {
	if a < b {
		return a
	}
	return b
}
