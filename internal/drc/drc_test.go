package drc

import (
	"strings"
	"testing"

	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/pdk"
	"postopc/internal/stdcell"
)

func kit(t *testing.T) *pdk.PDK {
	t.Helper()
	return pdk.N90()
}

func TestGeneratedLibraryIsClean(t *testing.T) {
	p := kit(t)
	lib, err := stdcell.NewLibrary(p)
	if err != nil {
		t.Fatal(err)
	}
	cells := map[string]*layout.Cell{}
	for name, info := range lib.Cells {
		cells[name] = info.Layout
	}
	dirty := CheckLibrary(p, cells)
	for name, vs := range dirty {
		for _, v := range vs {
			t.Errorf("%s: %s", name, v)
		}
	}
}

func violCell(p *pdk.PDK) *layout.Cell {
	c := &layout.Cell{Name: "BAD"}
	c.Box = geom.R(0, 0, 2000, 2600)
	// Poly sliver: 40nm wide (needs 90).
	c.AddRect(layout.LayerPoly, geom.R(100, 100, 140, 1000))
	// Poly space: two fat lines 80 apart (needs 160).
	c.AddRect(layout.LayerPoly, geom.R(400, 100, 520, 1000))
	c.AddRect(layout.LayerPoly, geom.R(600, 100, 720, 1000))
	// Contact floating in space (no landing layer).
	c.AddRect(layout.LayerContact, geom.R(1500, 1500, 1620, 1620))
	return c
}

func TestCheckCellFindsPlantedViolations(t *testing.T) {
	p := kit(t)
	vs := CheckCell(p, violCell(p))
	byRule := map[string]int{}
	for _, v := range vs {
		byRule[v.Rule]++
		if v.String() == "" {
			t.Fatal("empty violation string")
		}
	}
	for _, want := range []string{"poly.width", "poly.space", "contact.landing"} {
		if byRule[want] == 0 {
			t.Errorf("missing %s violation (got %v)", want, byRule)
		}
	}
	// Deterministic ordering.
	vs2 := CheckCell(p, violCell(p))
	if len(vs) != len(vs2) {
		t.Fatal("nondeterministic violation count")
	}
	for i := range vs {
		if vs[i] != vs2[i] {
			t.Fatal("nondeterministic violation order")
		}
	}
}

func TestCheckCellEndcap(t *testing.T) {
	p := kit(t)
	c := &layout.Cell{Name: "SHORTCAP"}
	c.Box = geom.R(0, 0, 1000, 2000)
	// Diffusion and a gate strip whose top endcap is only 40nm (needs 110).
	c.AddRect(layout.LayerDiffusion, geom.R(100, 500, 900, 1000))
	c.AddRect(layout.LayerPoly, geom.R(450, 300, 540, 1040))
	c.Gates = append(c.Gates, layout.GateSite{
		Name: "MN0", Pin: "A", Kind: layout.NMOS,
		Channel: geom.R(450, 500, 540, 1000),
	})
	vs := CheckCell(p, c)
	found := false
	for _, v := range vs {
		if v.Rule == "poly.endcap" && strings.Contains(v.Context, "MN0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("short endcap not flagged: %v", vs)
	}
}

func TestCheckWindowAbutment(t *testing.T) {
	p := kit(t)
	// Two cells whose abutment creates a poly space violation: each has a
	// poly line 30nm from its edge; abutted, the lines sit 60nm apart.
	mk := func(name string, x0 geom.Coord) *layout.Cell {
		c := &layout.Cell{Name: name}
		c.Box = geom.R(0, 0, 1000, 2600)
		c.AddRect(layout.LayerPoly, geom.R(x0, 200, x0+120, 2400))
		c.Box = geom.R(0, 0, 1000, 2600)
		return c
	}
	left := mk("L", 850) // 30 from right edge
	right := mk("R", 30) // 30 from left edge
	ch := &layout.Chip{Name: "abut"}
	ch.AddInstance("l", left, geom.Pt(0, 0), layout.R0)
	ch.AddInstance("r", right, geom.Pt(1000, 0), layout.R0)
	ch.BuildIndex()
	// Per-cell: both clean.
	if vs := CheckCell(p, left); len(vs) != 0 {
		t.Fatalf("left cell should be clean: %v", vs)
	}
	// Window check over the seam: a poly.space violation.
	vs := CheckWindow(p, ch, geom.R(0, 0, 2000, 2600))
	found := false
	for _, v := range vs {
		if v.Rule == "poly.space" && v.At.X0 >= 900 && v.At.X1 <= 1100 {
			found = true
		}
	}
	if !found {
		t.Fatalf("abutment violation missed: %v", vs)
	}
}

func TestPlacedChipWindowsClean(t *testing.T) {
	// The generated library placed by the row placer must be DRC clean
	// across cell boundaries too.
	p := kit(t)
	lib, err := stdcell.NewLibrary(p)
	if err != nil {
		t.Fatal(err)
	}
	_ = lib
	// Reuse the placer through the stdcell-only path to avoid an import
	// cycle in tests: build a tiny row manually from library cells.
	ch := &layout.Chip{Name: "row"}
	x := geom.Coord(0)
	for i, name := range []string{"INV_X1", "NAND2_X1", "NOR2_X1", "NAND3_X1", "FILL_X1", "XOR2_X1"} {
		c := lib.Cells[name].Layout
		or := layout.R0
		if i%2 == 1 {
			or = layout.R0 // same row: no flip
		}
		ch.AddInstance(name, c, geom.Pt(x, 0), or)
		x += c.Box.W()
	}
	ch.BuildIndex()
	vs := CheckWindow(p, ch, ch.Die)
	for _, v := range vs {
		t.Errorf("abutted row violation: %s", v)
	}
}
