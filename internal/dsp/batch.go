package dsp

import "fmt"

// BatchPlan executes same-size 2-D transforms over many grids with one plan
// resolution: the bit-reversal and twiddle tables of both dimensions are
// looked up once when the plan is built and reused for every grid of the
// batch, and the column passes interleave their cache-blocked butterflies
// across grids instead of finishing one grid before touching the next.
//
// Determinism contract: for every grid in the batch the sequence of
// floating-point operations applied to that grid is identical to the
// corresponding single-grid Grid method (FFT2D, IFFT2D, FFT2DBandSelect,
// IFFT2DBandLimited) — the tables come from the same plan cache and each
// column/row runs the same butterfly code — so batched and per-grid
// transforms are bit-identical. Only the interleaving across (independent)
// grids differs.
type BatchPlan struct {
	nx, ny   int
	row, col *plan
}

// PlanBatch resolves the transform plans for nx × ny grids. Both dimensions
// must be powers of two.
func PlanBatch(nx, ny int) (*BatchPlan, error) {
	if !IsPow2(nx) || !IsPow2(ny) {
		return nil, fmt.Errorf("dsp: batch plan %dx%d not power-of-two", nx, ny)
	}
	return &BatchPlan{nx: nx, ny: ny, row: planFor(nx), col: planFor(ny)}, nil
}

// Size returns the planned grid dimensions.
//
//postopc:allocfree
func (bp *BatchPlan) Size() (nx, ny int) { return bp.nx, bp.ny }

// check verifies every grid matches the planned size.
func (bp *BatchPlan) check(grids []*Grid) error {
	for _, g := range grids {
		if g.Nx != bp.nx || g.Ny != bp.ny {
			return fmt.Errorf("dsp: grid %dx%d in batch planned for %dx%d", g.Nx, g.Ny, bp.nx, bp.ny)
		}
	}
	return nil
}

// checkRows verifies the row selection stays inside the planned grid.
func (bp *BatchPlan) checkRows(rows []int) error {
	for _, iy := range rows {
		if iy < 0 || iy >= bp.ny {
			return fmt.Errorf("dsp: batch row %d outside grid of %d rows", iy, bp.ny)
		}
	}
	return nil
}

// rowsAll transforms the listed spectrum rows (all rows when rows is nil)
// of every grid through the shared row plan.
//
//postopc:allocfree
func (bp *BatchPlan) rowsAll(grids []*Grid, rows []int, inverse bool) {
	for _, g := range grids {
		if rows == nil {
			for iy := 0; iy < bp.ny; iy++ {
				fftLine(g.Data[iy*bp.nx:(iy+1)*bp.nx], bp.row, inverse)
			}
			continue
		}
		for _, iy := range rows {
			fftLine(g.Data[iy*bp.nx:(iy+1)*bp.nx], bp.row, inverse)
		}
	}
}

// columnsAll transforms every column of every grid, interleaving the
// cache-blocked butterflies across grids: block b of grid 0 is followed by
// block b of grid 1, so the (shared, hot) twiddle tables stay resident
// while the batch streams through memory. The inverse 1/Ny scaling divides
// each element exactly once, as transformColumns does.
//
//postopc:allocfree
func (bp *BatchPlan) columnsAll(grids []*Grid, inverse bool) {
	for c0 := 0; c0 < bp.nx; c0 += columnBlockW {
		cw := columnBlockW
		if bp.nx-c0 < cw {
			cw = bp.nx - c0
		}
		for _, g := range grids {
			fftColumnsBlock(g.Data, bp.nx, bp.col, inverse, c0, cw)
		}
	}
	if inverse {
		nC := complex(float64(bp.ny), 0)
		for _, g := range grids {
			d := g.Data
			for i := range d {
				d[i] /= nC
			}
		}
	}
}

// FFT2DAll performs the forward 2-D FFT over every grid in place —
// bit-identical per grid to Grid.FFT2D (rows first, then columns).
func (bp *BatchPlan) FFT2DAll(grids []*Grid) error {
	if err := bp.check(grids); err != nil {
		return err
	}
	bp.rowsAll(grids, nil, false)
	bp.columnsAll(grids, false)
	return nil
}

// IFFT2DAll performs the inverse 2-D FFT (scaled) over every grid in place
// — bit-identical per grid to Grid.IFFT2D.
func (bp *BatchPlan) IFFT2DAll(grids []*Grid) error {
	if err := bp.check(grids); err != nil {
		return err
	}
	bp.rowsAll(grids, nil, true)
	bp.columnsAll(grids, true)
	return nil
}

// FFT2DBandSelectAll performs the forward transform of every grid computing
// only the listed spectrum rows — bit-identical per grid to
// Grid.FFT2DBandSelect (full column pass, then the selected rows). Rows
// outside the list are left partially transformed and must not be read.
func (bp *BatchPlan) FFT2DBandSelectAll(grids []*Grid, rows []int) error {
	if err := bp.check(grids); err != nil {
		return err
	}
	if err := bp.checkRows(rows); err != nil {
		return err
	}
	bp.columnsAll(grids, false)
	bp.rowsAll(grids, rows, false)
	return nil
}

// IFFT2DBandLimitedAll performs the inverse transform of spectra whose
// energy is confined to the listed rows — bit-identical per grid to
// Grid.IFFT2DBandLimited. Rows outside the list must be zero.
func (bp *BatchPlan) IFFT2DBandLimitedAll(grids []*Grid, rows []int) error {
	if err := bp.check(grids); err != nil {
		return err
	}
	if err := bp.checkRows(rows); err != nil {
		return err
	}
	bp.rowsAll(grids, rows, true)
	bp.columnsAll(grids, true)
	return nil
}
