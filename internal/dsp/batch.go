package dsp

import (
	"fmt"

	"postopc/internal/dsp/vek"
)

// BatchPlan executes same-size 2-D transforms over many grids with one plan
// resolution: the bit-reversal and twiddle tables of both dimensions are
// looked up once when the plan is built and reused for every grid of the
// batch, and the column passes interleave their cache-blocked butterflies
// across grids instead of finishing one grid before touching the next.
//
// Determinism contract: for every grid in the batch the sequence of
// floating-point operations applied to that grid is identical to the
// corresponding single-grid Grid/FGrid method (FFT2D, IFFT2D,
// FFT2DBandSelect, IFFT2DBandLimited) — the tables come from the same plan
// cache and each column/row runs the same vek kernel code — so batched and
// per-grid transforms are bit-identical. Only the interleaving across
// (independent) grids differs.
type BatchPlan struct {
	nx, ny   int
	row, col *plan
}

// PlanBatch resolves the transform plans for nx × ny grids. Both dimensions
// must be powers of two.
func PlanBatch(nx, ny int) (*BatchPlan, error) {
	if !IsPow2(nx) || !IsPow2(ny) {
		return nil, fmt.Errorf("dsp: batch plan %dx%d not power-of-two", nx, ny)
	}
	return &BatchPlan{nx: nx, ny: ny, row: planFor(nx), col: planFor(ny)}, nil
}

// Size returns the planned grid dimensions.
//
//postopc:allocfree
func (bp *BatchPlan) Size() (nx, ny int) { return bp.nx, bp.ny }

// checkPlanes verifies every plane grid matches the planned size.
func (bp *BatchPlan) checkPlanes(fs []*FGrid) error {
	for _, f := range fs {
		if f.Nx != bp.nx || f.Ny != bp.ny {
			return fmt.Errorf("dsp: grid %dx%d in batch planned for %dx%d", f.Nx, f.Ny, bp.nx, bp.ny)
		}
	}
	return nil
}

// checkRows verifies the row selection stays inside the planned grid.
func (bp *BatchPlan) checkRows(rows []int) error {
	for _, iy := range rows {
		if iy < 0 || iy >= bp.ny {
			return fmt.Errorf("dsp: batch row %d outside grid of %d rows", iy, bp.ny)
		}
	}
	return nil
}

// rowsAllPlanes transforms the listed spectrum rows (all rows when rows is
// nil) of every plane grid through the shared row plan.
//
//postopc:allocfree
func (bp *BatchPlan) rowsAllPlanes(fs []*FGrid, rows []int, inverse bool) {
	for _, f := range fs {
		if rows == nil {
			for iy := 0; iy < bp.ny; iy++ {
				fftLinePlanes(f.Re[iy*bp.nx:(iy+1)*bp.nx], f.Im[iy*bp.nx:(iy+1)*bp.nx], bp.row, inverse)
			}
			continue
		}
		for _, iy := range rows {
			fftLinePlanes(f.Re[iy*bp.nx:(iy+1)*bp.nx], f.Im[iy*bp.nx:(iy+1)*bp.nx], bp.row, inverse)
		}
	}
}

// columnsAllPlanes transforms every column of every plane grid,
// interleaving the cache-blocked butterflies across grids: block b of grid
// 0 is followed by block b of grid 1, so the (shared, hot) twiddle tables
// stay resident while the batch streams through memory. The inverse 1/Ny
// scaling divides each element exactly once, as FGrid.transformColumns
// does.
//
//postopc:allocfree
func (bp *BatchPlan) columnsAllPlanes(fs []*FGrid, inverse bool) {
	for c0 := 0; c0 < bp.nx; c0 += columnBlockW {
		cw := columnBlockW
		if bp.nx-c0 < cw {
			cw = bp.nx - c0
		}
		for _, f := range fs {
			fftColumnsBlockPlanes(f.Re, f.Im, bp.nx, bp.col, inverse, c0, cw)
		}
	}
	if inverse {
		for _, f := range fs {
			vek.ScaleInv(f.Re, f.Im, float64(bp.ny))
		}
	}
}

// FFT2DAllPlanes performs the forward 2-D FFT over every plane grid in
// place — bit-identical per grid to FGrid.FFT2D (rows first, then columns).
func (bp *BatchPlan) FFT2DAllPlanes(fs []*FGrid) error {
	if err := bp.checkPlanes(fs); err != nil {
		return err
	}
	bp.rowsAllPlanes(fs, nil, false)
	bp.columnsAllPlanes(fs, false)
	return nil
}

// IFFT2DAllPlanes performs the inverse 2-D FFT (scaled) over every plane
// grid in place — bit-identical per grid to FGrid.IFFT2D.
func (bp *BatchPlan) IFFT2DAllPlanes(fs []*FGrid) error {
	if err := bp.checkPlanes(fs); err != nil {
		return err
	}
	bp.rowsAllPlanes(fs, nil, true)
	bp.columnsAllPlanes(fs, true)
	return nil
}

// FFT2DBandSelectAllPlanes performs the forward transform of every plane
// grid computing only the listed spectrum rows — bit-identical per grid to
// FGrid.FFT2DBandSelect (full column pass, then the selected rows). Rows
// outside the list are left partially transformed and must not be read.
func (bp *BatchPlan) FFT2DBandSelectAllPlanes(fs []*FGrid, rows []int) error {
	if err := bp.checkPlanes(fs); err != nil {
		return err
	}
	if err := bp.checkRows(rows); err != nil {
		return err
	}
	bp.columnsAllPlanes(fs, false)
	bp.rowsAllPlanes(fs, rows, false)
	return nil
}

// IFFT2DBandLimitedAllPlanes performs the inverse transform of spectra
// whose energy is confined to the listed rows — bit-identical per grid to
// FGrid.IFFT2DBandLimited. Rows outside the list must be zero.
func (bp *BatchPlan) IFFT2DBandLimitedAllPlanes(fs []*FGrid, rows []int) error {
	if err := bp.checkPlanes(fs); err != nil {
		return err
	}
	if err := bp.checkRows(rows); err != nil {
		return err
	}
	bp.rowsAllPlanes(fs, rows, true)
	bp.columnsAllPlanes(fs, true)
	return nil
}

// stageAll borrows pooled FGrids holding every grid's values as planes.
func stageAll(grids []*Grid) []*FGrid {
	fs := make([]*FGrid, len(grids))
	for i, g := range grids {
		fs[i] = BorrowFGrid(g.Nx, g.Ny)
		fs[i].LoadGrid(g)
	}
	return fs
}

// unstageAll stores the planes back into the grids and returns the FGrids
// to the pool.
func unstageAll(fs []*FGrid, grids []*Grid) {
	for i, f := range fs {
		f.StoreGrid(grids[i])
		ReturnFGrid(f)
	}
}

// batchPlanes runs op over the staged plane views of grids, storing the
// results back on success.
func (bp *BatchPlan) batchPlanes(grids []*Grid, op func([]*FGrid) error) error {
	for _, g := range grids {
		if g.Nx != bp.nx || g.Ny != bp.ny {
			return fmt.Errorf("dsp: grid %dx%d in batch planned for %dx%d", g.Nx, g.Ny, bp.nx, bp.ny)
		}
	}
	fs := stageAll(grids)
	if err := op(fs); err != nil {
		for _, f := range fs {
			ReturnFGrid(f)
		}
		return err
	}
	unstageAll(fs, grids)
	return nil
}

// FFT2DAll performs the forward 2-D FFT over every grid in place —
// bit-identical per grid to Grid.FFT2D (rows first, then columns).
func (bp *BatchPlan) FFT2DAll(grids []*Grid) error {
	return bp.batchPlanes(grids, bp.FFT2DAllPlanes)
}

// IFFT2DAll performs the inverse 2-D FFT (scaled) over every grid in place
// — bit-identical per grid to Grid.IFFT2D.
func (bp *BatchPlan) IFFT2DAll(grids []*Grid) error {
	return bp.batchPlanes(grids, bp.IFFT2DAllPlanes)
}

// FFT2DBandSelectAll performs the forward transform of every grid computing
// only the listed spectrum rows — bit-identical per grid to
// Grid.FFT2DBandSelect (full column pass, then the selected rows). Rows
// outside the list are left partially transformed and must not be read.
func (bp *BatchPlan) FFT2DBandSelectAll(grids []*Grid, rows []int) error {
	return bp.batchPlanes(grids, func(fs []*FGrid) error {
		return bp.FFT2DBandSelectAllPlanes(fs, rows)
	})
}

// IFFT2DBandLimitedAll performs the inverse transform of spectra whose
// energy is confined to the listed rows — bit-identical per grid to
// Grid.IFFT2DBandLimited. Rows outside the list must be zero.
func (bp *BatchPlan) IFFT2DBandLimitedAll(grids []*Grid, rows []int) error {
	return bp.batchPlanes(grids, func(fs []*FGrid) error {
		return bp.IFFT2DBandLimitedAllPlanes(fs, rows)
	})
}
