package dsp

import (
	"math/rand"
	"testing"
)

// cloneBatch deep-copies a batch of grids.
func cloneBatch(grids []*Grid) []*Grid {
	out := make([]*Grid, len(grids))
	for i, g := range grids {
		out[i] = g.Clone()
	}
	return out
}

// equalBits compares two grids for exact (bit-level) equality.
func equalBits(t *testing.T, tag string, i int, a, b *Grid) {
	t.Helper()
	if a.Nx != b.Nx || a.Ny != b.Ny {
		t.Fatalf("%s grid %d: size %dx%d vs %dx%d", tag, i, a.Nx, a.Ny, b.Nx, b.Ny)
	}
	for j := range a.Data {
		if a.Data[j] != b.Data[j] {
			t.Fatalf("%s grid %d: element %d = %v, want %v", tag, i, j, a.Data[j], b.Data[j])
		}
	}
}

// TestBatchPlanBitIdentical asserts the batched transforms are bit-identical
// per grid to the single-grid Grid methods, for every direction and band
// variant, on a batch of differing contents (including a non-square size).
func TestBatchPlanBitIdentical(t *testing.T) {
	for _, dims := range []struct{ nx, ny int }{{32, 32}, {64, 16}} {
		rnd := rand.New(rand.NewSource(7))
		batch := make([]*Grid, 5)
		for i := range batch {
			batch[i] = randGrid(rnd, dims.nx, dims.ny)
		}
		bp, err := PlanBatch(dims.nx, dims.ny)
		if err != nil {
			t.Fatal(err)
		}
		rows := []int{0, 1, 2, dims.ny - 2, dims.ny - 1}

		// Forward full.
		want := cloneBatch(batch)
		for _, g := range want {
			if err := g.FFT2D(); err != nil {
				t.Fatal(err)
			}
		}
		got := cloneBatch(batch)
		if err := bp.FFT2DAll(got); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			equalBits(t, "FFT2DAll", i, got[i], want[i])
		}

		// Inverse full (of the forward spectra).
		back := cloneBatch(want)
		for _, g := range back {
			if err := g.IFFT2D(); err != nil {
				t.Fatal(err)
			}
		}
		got2 := cloneBatch(want)
		if err := bp.IFFT2DAll(got2); err != nil {
			t.Fatal(err)
		}
		for i := range got2 {
			equalBits(t, "IFFT2DAll", i, got2[i], back[i])
		}

		// Band-selected forward: only the selected rows are defined.
		wantSel := cloneBatch(batch)
		for _, g := range wantSel {
			if err := g.FFT2DBandSelect(rows); err != nil {
				t.Fatal(err)
			}
		}
		gotSel := cloneBatch(batch)
		if err := bp.FFT2DBandSelectAll(gotSel, rows); err != nil {
			t.Fatal(err)
		}
		for i := range gotSel {
			for _, iy := range rows {
				for ix := 0; ix < dims.nx; ix++ {
					if gotSel[i].At(ix, iy) != wantSel[i].At(ix, iy) {
						t.Fatalf("FFT2DBandSelectAll grid %d row %d col %d diverged", i, iy, ix)
					}
				}
			}
		}

		// Band-limited inverse: spectra zero outside the selected rows.
		spectra := make([]*Grid, len(batch))
		for i := range spectra {
			g := NewGrid(dims.nx, dims.ny)
			for _, iy := range rows {
				for ix := 0; ix < dims.nx; ix++ {
					g.Set(ix, iy, complex(rnd.NormFloat64(), rnd.NormFloat64()))
				}
			}
			spectra[i] = g
		}
		wantInv := cloneBatch(spectra)
		for _, g := range wantInv {
			if err := g.IFFT2DBandLimited(rows); err != nil {
				t.Fatal(err)
			}
		}
		gotInv := cloneBatch(spectra)
		if err := bp.IFFT2DBandLimitedAll(gotInv, rows); err != nil {
			t.Fatal(err)
		}
		for i := range gotInv {
			equalBits(t, "IFFT2DBandLimitedAll", i, gotInv[i], wantInv[i])
		}
	}
}

// TestBatchPlanRejectsMismatch asserts size and row validation.
func TestBatchPlanRejectsMismatch(t *testing.T) {
	if _, err := PlanBatch(12, 16); err == nil {
		t.Fatal("PlanBatch accepted a non-power-of-two width")
	}
	bp, err := PlanBatch(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := bp.FFT2DAll([]*Grid{NewGrid(16, 16), NewGrid(32, 16)}); err == nil {
		t.Fatal("FFT2DAll accepted a mis-sized grid")
	}
	if err := bp.FFT2DBandSelectAll([]*Grid{NewGrid(16, 16)}, []int{16}); err == nil {
		t.Fatal("FFT2DBandSelectAll accepted an out-of-range row")
	}
	if err := bp.IFFT2DBandLimitedAll([]*Grid{NewGrid(16, 16)}, []int{-1}); err == nil {
		t.Fatal("IFFT2DBandLimitedAll accepted a negative row")
	}
}

// TestBatchPlanEmptyBatch asserts the degenerate no-grid batch is a no-op.
func TestBatchPlanEmptyBatch(t *testing.T) {
	bp, err := PlanBatch(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := bp.FFT2DAll(nil); err != nil {
		t.Fatal(err)
	}
}
