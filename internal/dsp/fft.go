// Package dsp implements the signal-processing primitives needed by the
// lithography simulator: an in-place radix-2 complex FFT (1-D and 2-D) and a
// small complex grid type. Everything is stdlib-only.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT performs an in-place forward radix-2 FFT on x. len(x) must be a power
// of two.
func FFT(x []complex128) error { return fft(x, false) }

// IFFT performs an in-place inverse FFT on x (including the 1/N scaling).
// len(x) must be a power of two.
func IFFT(x []complex128) error {
	if err := fft(x, true); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}

func fft(x []complex128, inverse bool) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Cooley–Tukey butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		angle := 2 * math.Pi / float64(size)
		if !inverse {
			angle = -angle
		}
		wstep := cmplx.Exp(complex(0, angle))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wstep
			}
		}
	}
	return nil
}

// Grid is a dense Nx × Ny complex field stored row-major, the working
// representation for mask spectra and aerial fields.
type Grid struct {
	Nx, Ny int
	Data   []complex128
}

// NewGrid allocates a zeroed Nx × Ny grid.
func NewGrid(nx, ny int) *Grid {
	return &Grid{Nx: nx, Ny: ny, Data: make([]complex128, nx*ny)}
}

// At returns element (ix, iy).
func (g *Grid) At(ix, iy int) complex128 { return g.Data[iy*g.Nx+ix] }

// Set assigns element (ix, iy).
func (g *Grid) Set(ix, iy int, v complex128) { g.Data[iy*g.Nx+ix] = v }

// Clone returns a deep copy of g.
func (g *Grid) Clone() *Grid {
	out := NewGrid(g.Nx, g.Ny)
	copy(out.Data, g.Data)
	return out
}

// FFT2D performs an in-place forward 2-D FFT over the grid. Both dimensions
// must be powers of two.
func (g *Grid) FFT2D() error { return g.fft2d(false) }

// IFFT2D performs an in-place inverse 2-D FFT over the grid (scaled).
func (g *Grid) IFFT2D() error { return g.fft2d(true) }

func (g *Grid) fft2d(inverse bool) error {
	if !IsPow2(g.Nx) || !IsPow2(g.Ny) {
		return fmt.Errorf("dsp: grid %dx%d not power-of-two", g.Nx, g.Ny)
	}
	do := FFT
	if inverse {
		do = IFFT
	}
	// Rows.
	for iy := 0; iy < g.Ny; iy++ {
		if err := do(g.Data[iy*g.Nx : (iy+1)*g.Nx]); err != nil {
			return err
		}
	}
	// Columns (gathered into a scratch buffer).
	col := make([]complex128, g.Ny)
	for ix := 0; ix < g.Nx; ix++ {
		for iy := 0; iy < g.Ny; iy++ {
			col[iy] = g.Data[iy*g.Nx+ix]
		}
		if err := do(col); err != nil {
			return err
		}
		for iy := 0; iy < g.Ny; iy++ {
			g.Data[iy*g.Nx+ix] = col[iy]
		}
	}
	return nil
}

// FreqIndex maps grid index i (0..n-1) to the signed frequency bin
// (-n/2 .. n/2-1) using standard FFT ordering.
func FreqIndex(i, n int) int {
	if i <= n/2-1 {
		return i
	}
	return i - n
}

// Energy returns the sum of |v|² over the grid.
func (g *Grid) Energy() float64 {
	var s float64
	for _, v := range g.Data {
		re, im := real(v), imag(v)
		s += re*re + im*im
	}
	return s
}
