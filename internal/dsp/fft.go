// Package dsp implements the signal-processing primitives needed by the
// lithography simulator: an in-place radix-2 complex FFT (1-D and 2-D) with
// cached twiddle-factor and bit-reversal tables, a small complex grid type,
// and pooled scratch buffers for the imaging hot path. Everything is
// stdlib-only.
package dsp

import (
	"fmt"
	"math/bits"

	"postopc/internal/dsp/vek"
)

// NextPow2 returns the smallest power of two >= n (and >= 1).
//
//postopc:allocfree
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
//
//postopc:allocfree
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT performs an in-place forward radix-2 FFT on x. len(x) must be a power
// of two.
func FFT(x []complex128) error { return fft1d(x, false) }

// IFFT performs an in-place inverse FFT on x (including the 1/N scaling).
// len(x) must be a power of two.
func IFFT(x []complex128) error { return fft1d(x, true) }

//postopc:allocfree
func fft1d(x []complex128, inverse bool) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n) //postopc:nolint:allocbudget error construction is the failure path
	}
	f := BorrowFGrid(n, 1)
	defer ReturnFGrid(f)
	vek.Split(f.Re, f.Im, x)
	fftLinePlanes(f.Re, f.Im, planFor(n), inverse)
	vek.Join(x, f.Re, f.Im)
	return nil
}

// Grid is a dense Nx × Ny complex field stored row-major, the working
// representation for mask spectra and aerial fields.
type Grid struct {
	Nx, Ny int
	Data   []complex128
}

// NewGrid allocates a zeroed Nx × Ny grid.
func NewGrid(nx, ny int) *Grid {
	return &Grid{Nx: nx, Ny: ny, Data: make([]complex128, nx*ny)}
}

// At returns element (ix, iy).
//
//postopc:allocfree
func (g *Grid) At(ix, iy int) complex128 { return g.Data[iy*g.Nx+ix] }

// Set assigns element (ix, iy).
//
//postopc:allocfree
func (g *Grid) Set(ix, iy int, v complex128) { g.Data[iy*g.Nx+ix] = v }

// Clone returns a deep copy of g.
func (g *Grid) Clone() *Grid {
	out := NewGrid(g.Nx, g.Ny)
	copy(out.Data, g.Data)
	return out
}

// Clear zeroes every element in place.
//
//postopc:allocfree
func (g *Grid) Clear() {
	d := g.Data
	for i := range d {
		d[i] = 0
	}
}

// FFT2D performs an in-place forward 2-D FFT over the grid. Both dimensions
// must be powers of two.
func (g *Grid) FFT2D() error { return g.fft2d(false) }

// IFFT2D performs an in-place inverse 2-D FFT over the grid (scaled).
func (g *Grid) IFFT2D() error { return g.fft2d(true) }

func (g *Grid) fft2d(inverse bool) error {
	// Stage the whole grid through pooled SoA planes once: one
	// deinterleave/reinterleave pair amortized over both passes, with the
	// row and column butterflies running on the vek kernel layer. Per
	// element the float operation sequence matches the historical
	// complex128 implementation, so results are bit-identical.
	f, err := g.borrowPlanes()
	if err != nil {
		return err
	}
	defer ReturnFGrid(f)
	if err := f.fft2d(inverse); err != nil {
		return err
	}
	f.StoreGrid(g)
	return nil
}

// FFT2DBandSelect performs the forward 2-D transform computing only the
// listed spectrum rows: the column pass runs in full, then the row pass
// runs on those rows only. On the listed rows the result equals a full
// separable transform; every other row is left partially transformed and
// must not be read. Band-limited consumers (a pupil filter that reads a
// handful of spectrum rows) use this to skip most of the row pass.
//
// Note the pass order (columns, then rows) is the transpose of FFT2D's;
// the two factorizations agree mathematically but differ in floating-point
// rounding, so a caller must not mix values from both paths and expect
// byte equality.
func (g *Grid) FFT2DBandSelect(rows []int) error {
	f, err := g.borrowPlanes()
	if err != nil {
		return err
	}
	defer ReturnFGrid(f)
	if err := f.FFT2DBandSelect(rows); err != nil {
		return err
	}
	f.StoreGrid(g)
	return nil
}

// IFFT2DBandLimited performs the inverse 2-D transform of a spectrum whose
// energy is confined to the listed rows: the row pass runs on those rows
// only (the inverse FFT of an all-zero row is identically zero), the column
// pass is full. For such spectra the result equals IFFT2D; rows outside the
// list must be zero or the transform is wrong.
func (g *Grid) IFFT2DBandLimited(rows []int) error {
	f, err := g.borrowPlanes()
	if err != nil {
		return err
	}
	defer ReturnFGrid(f)
	if err := f.IFFT2DBandLimited(rows); err != nil {
		return err
	}
	f.StoreGrid(g)
	return nil
}

// borrowPlanes borrows a pooled FGrid holding g's values as SoA planes, the
// working representation of every transform. The caller must StoreGrid the
// result back (on success) and return the FGrid to the pool.
//
//postopc:allocfree
func (g *Grid) borrowPlanes() (*FGrid, error) {
	if !IsPow2(g.Nx) || !IsPow2(g.Ny) {
		return nil, fmt.Errorf("dsp: grid %dx%d not power-of-two", g.Nx, g.Ny) //postopc:nolint:allocbudget error construction is the failure path
	}
	f := BorrowFGrid(g.Nx, g.Ny)
	f.LoadGrid(g)
	return f, nil
}

// FreqIndex maps grid index i (0..n-1) to the signed frequency bin
// (-n/2 .. n/2-1) using standard FFT ordering.
//
//postopc:allocfree
func FreqIndex(i, n int) int {
	if i <= n/2-1 {
		return i
	}
	return i - n
}

// Energy returns the sum of |v|² over the grid.
//
//postopc:allocfree
func (g *Grid) Energy() float64 {
	var s float64
	for _, v := range g.Data {
		re, im := real(v), imag(v)
		s += re*re + im*im
	}
	return s
}
