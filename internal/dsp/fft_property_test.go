package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// randGrid fills a fresh nx×ny grid with unit-normal complex noise.
func randGrid(rnd *rand.Rand, nx, ny int) *Grid {
	g := NewGrid(nx, ny)
	for i := range g.Data {
		g.Data[i] = complex(rnd.NormFloat64(), rnd.NormFloat64())
	}
	return g
}

// randPow2Dims draws non-square power-of-two grid dimensions.
func randPow2Dims(rnd *rand.Rand) (nx, ny int) {
	nx = 1 << (1 + rnd.Intn(6)) // 2..64
	ny = 1 << (1 + rnd.Intn(6))
	if nx == ny {
		ny *= 2
	}
	return
}

func TestFFT2DParsevalProperty(t *testing.T) {
	// Energy conservation on non-square grids:
	// sum |x|² = (1/(Nx·Ny)) sum |X|².
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		nx, ny := randPow2Dims(rnd)
		g := randGrid(rnd, nx, ny)
		e := g.Energy()
		if err := g.FFT2D(); err != nil {
			return false
		}
		ef := g.Energy() / float64(nx*ny)
		return math.Abs(e-ef) <= 1e-9*e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFFT2DImpulseFlatSpectrum(t *testing.T) {
	// A delta at the grid origin transforms to an all-ones spectrum.
	g := NewGrid(32, 8)
	g.Set(0, 0, 1)
	if err := g.FFT2D(); err != nil {
		t.Fatal(err)
	}
	for i, v := range g.Data {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFT2DRoundTripNonSquareProperty(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		nx, ny := randPow2Dims(rnd)
		g := randGrid(rnd, nx, ny)
		orig := g.Clone()
		if err := g.FFT2D(); err != nil {
			return false
		}
		if err := g.IFFT2D(); err != nil {
			return false
		}
		for i := range g.Data {
			if cmplx.Abs(g.Data[i]-orig.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFFT2DDeterminism pins the run-to-run determinism contract: two
// transforms of the same input must be byte-identical, bit for bit. The
// plan cache is warmed first so a cold- and warm-cache transform are
// compared too — building the twiddle tables must not move a result.
func TestFFT2DDeterminism(t *testing.T) {
	mk := func() *Grid {
		r := rand.New(rand.NewSource(99))
		return randGrid(r, 64, 32)
	}
	a := mk()
	if err := a.FFT2D(); err != nil {
		t.Fatal(err)
	}
	b := mk()
	if err := b.FFT2D(); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		ar, ai := math.Float64bits(real(a.Data[i])), math.Float64bits(imag(a.Data[i]))
		br, bi := math.Float64bits(real(b.Data[i])), math.Float64bits(imag(b.Data[i]))
		if ar != br || ai != bi {
			t.Fatalf("bin %d differs between identical transforms: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
}

// TestIFFT2DBandLimitedMatchesFull checks the pruned inverse against the
// full one: for a spectrum whose energy is confined to the listed rows the
// two are the same computation (the inverse FFT of an all-zero row is
// identically zero), so they must agree bit for bit.
func TestIFFT2DBandLimitedMatchesFull(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	const nx, ny = 32, 64
	rows := []int{0, 1, 2, 3, 60, 61, 62, 63} // band around DC with wraparound
	g := NewGrid(nx, ny)
	for _, iy := range rows {
		for ix := 0; ix < nx; ix++ {
			g.Set(ix, iy, complex(rnd.NormFloat64(), rnd.NormFloat64()))
		}
	}
	full := g.Clone()
	if err := full.IFFT2D(); err != nil {
		t.Fatal(err)
	}
	if err := g.IFFT2DBandLimited(rows); err != nil {
		t.Fatal(err)
	}
	for i := range g.Data {
		if math.Float64bits(real(g.Data[i])) != math.Float64bits(real(full.Data[i])) ||
			math.Float64bits(imag(g.Data[i])) != math.Float64bits(imag(full.Data[i])) {
			t.Fatalf("band-limited inverse differs from full at %d: %v vs %v",
				i, g.Data[i], full.Data[i])
		}
	}
}

// TestFFT2DBandSelectMatchesFull checks the forward band-select transform
// against a full FFT2D on the selected rows. The pass order is transposed
// (columns first), so agreement is numerical, not bitwise.
func TestFFT2DBandSelectMatchesFull(t *testing.T) {
	rnd := rand.New(rand.NewSource(6))
	const nx, ny = 16, 32
	g := randGrid(rnd, nx, ny)
	full := g.Clone()
	if err := full.FFT2D(); err != nil {
		t.Fatal(err)
	}
	rows := []int{0, 2, 5, 31}
	if err := g.FFT2DBandSelect(rows); err != nil {
		t.Fatal(err)
	}
	for _, iy := range rows {
		for ix := 0; ix < nx; ix++ {
			if cmplx.Abs(g.At(ix, iy)-full.At(ix, iy)) > 1e-9 {
				t.Fatalf("band-select row %d bin %d = %v, full = %v",
					iy, ix, g.At(ix, iy), full.At(ix, iy))
			}
		}
	}
}

func TestBandRowsValidation(t *testing.T) {
	g := NewGrid(8, 8)
	if err := g.FFT2DBandSelect([]int{8}); err == nil {
		t.Fatal("expected error for out-of-range band-select row")
	}
	if err := g.IFFT2DBandLimited([]int{-1}); err == nil {
		t.Fatal("expected error for negative band-limited row")
	}
	ng := NewGrid(3, 8)
	if err := ng.FFT2DBandSelect(nil); err == nil {
		t.Fatal("expected error for non-power-of-two grid")
	}
	if err := ng.IFFT2DBandLimited(nil); err == nil {
		t.Fatal("expected error for non-power-of-two grid")
	}
}

func TestBorrowGridReuse(t *testing.T) {
	g := BorrowGrid(16, 8)
	if g.Nx != 16 || g.Ny != 8 || len(g.Data) != 128 {
		t.Fatalf("borrowed grid has wrong shape: %dx%d len %d", g.Nx, g.Ny, len(g.Data))
	}
	g.Set(3, 2, 42)
	ReturnGrid(g)
	// A smaller borrow may reuse the same backing array; contents are
	// unspecified, but the shape must be exact.
	h := BorrowGrid(8, 8)
	if h.Nx != 8 || h.Ny != 8 || len(h.Data) != 64 {
		t.Fatalf("reborrowed grid has wrong shape: %dx%d len %d", h.Nx, h.Ny, len(h.Data))
	}
	h.Clear()
	for i, v := range h.Data {
		if v != 0 {
			t.Fatalf("Clear left %v at %d", v, i)
		}
	}
	ReturnGrid(h)
	ReturnGrid(nil) // must not panic
}
