package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 100: 128, 128: 128, 129: 256}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 12, 1023} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	if err := FFT(make([]complex128, 12)); err == nil {
		t.Fatal("expected error for length 12")
	}
	g := NewGrid(3, 4)
	if err := g.FFT2D(); err == nil {
		t.Fatal("expected error for 3x4 grid")
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a delta at 0 is all-ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A pure complex exponential at bin k concentrates all energy in bin k.
	const n, k = 64, 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(k*i)/n))
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		want := 0.0
		if i == k {
			want = n
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Fatalf("bin %d magnitude = %g, want %g", i, cmplx.Abs(v), want)
		}
	}
}

func randSignal(rnd *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rnd.NormFloat64(), rnd.NormFloat64())
	}
	return x
}

func TestFFTRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rnd.Intn(9)) // 2..1024
		x := randSignal(rnd, n)
		orig := append([]complex128(nil), x...)
		if err := FFT(x); err != nil {
			return false
		}
		if err := IFFT(x); err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTParseval(t *testing.T) {
	// sum |x|^2 = (1/N) sum |X|^2.
	rnd := rand.New(rand.NewSource(7))
	x := randSignal(rnd, 256)
	var e float64
	for _, v := range x {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	var ef float64
	for _, v := range x {
		ef += real(v)*real(v) + imag(v)*imag(v)
	}
	ef /= 256
	if math.Abs(e-ef) > 1e-8*e {
		t.Fatalf("Parseval violated: %g vs %g", e, ef)
	}
}

func TestFFTLinearity(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	a := randSignal(rnd, 128)
	b := randSignal(rnd, 128)
	sum := make([]complex128, 128)
	for i := range sum {
		sum[i] = 2*a[i] + 3*b[i]
	}
	fa := append([]complex128(nil), a...)
	fb := append([]complex128(nil), b...)
	fs := append([]complex128(nil), sum...)
	_ = FFT(fa)
	_ = FFT(fb)
	_ = FFT(fs)
	for i := range fs {
		if cmplx.Abs(fs[i]-(2*fa[i]+3*fb[i])) > 1e-8 {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

func TestFFT2DRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	g := NewGrid(32, 16)
	for i := range g.Data {
		g.Data[i] = complex(rnd.NormFloat64(), rnd.NormFloat64())
	}
	orig := g.Clone()
	if err := g.FFT2D(); err != nil {
		t.Fatal(err)
	}
	if err := g.IFFT2D(); err != nil {
		t.Fatal(err)
	}
	for i := range g.Data {
		if cmplx.Abs(g.Data[i]-orig.Data[i]) > 1e-9 {
			t.Fatalf("2D round trip mismatch at %d", i)
		}
	}
}

func TestFFT2DSeparableTone(t *testing.T) {
	// A 2-D plane wave concentrates in a single 2-D bin.
	const nx, ny, kx, ky = 16, 16, 3, 5
	g := NewGrid(nx, ny)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			ph := 2 * math.Pi * (float64(kx*ix)/nx + float64(ky*iy)/ny)
			g.Set(ix, iy, cmplx.Exp(complex(0, ph)))
		}
	}
	if err := g.FFT2D(); err != nil {
		t.Fatal(err)
	}
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			want := 0.0
			if ix == kx && iy == ky {
				want = nx * ny
			}
			if math.Abs(cmplx.Abs(g.At(ix, iy))-want) > 1e-8 {
				t.Fatalf("bin (%d,%d) = %g, want %g", ix, iy, cmplx.Abs(g.At(ix, iy)), want)
			}
		}
	}
}

func TestFreqIndex(t *testing.T) {
	n := 8
	want := []int{0, 1, 2, 3, -4, -3, -2, -1}
	for i, w := range want {
		if got := FreqIndex(i, n); got != w {
			t.Errorf("FreqIndex(%d,%d) = %d, want %d", i, n, got, w)
		}
	}
}

func TestGridAccessors(t *testing.T) {
	g := NewGrid(4, 3)
	g.Set(2, 1, 5+6i)
	if g.At(2, 1) != 5+6i {
		t.Fatal("Set/At mismatch")
	}
	if g.Energy() != 61 {
		t.Fatalf("Energy = %g", g.Energy())
	}
	c := g.Clone()
	c.Set(2, 1, 0)
	if g.At(2, 1) != 5+6i {
		t.Fatal("Clone must not alias")
	}
}

func BenchmarkFFT1D1024(b *testing.B) {
	rnd := rand.New(rand.NewSource(1))
	x := randSignal(rnd, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := append([]complex128(nil), x...)
		_ = FFT(buf)
	}
}

func BenchmarkFFT2D256(b *testing.B) {
	g := NewGrid(256, 256)
	rnd := rand.New(rand.NewSource(1))
	for i := range g.Data {
		g.Data[i] = complex(rnd.NormFloat64(), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := g.Clone()
		_ = c.FFT2D()
	}
}
