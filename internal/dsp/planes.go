package dsp

import (
	"fmt"

	"postopc/internal/dsp/vek"
)

// FGrid is a dense Nx × Ny complex field stored as structure-of-arrays
// float64 planes (row-major, like Grid.Data) — the native representation of
// the vek kernel layer. The imaging hot path works on FGrids end to end so
// no interleave/deinterleave staging happens per transform; Grid remains
// the interchange representation for everything else.
//
// An FGrid and a Grid holding the same values transform to bit-identical
// results: every plane kernel performs the exact float operation sequence
// of the complex128 code it replaced (see package vek).
type FGrid struct {
	Nx, Ny int
	Re, Im []float64
}

// NewFGrid allocates a zeroed Nx × Ny plane grid.
func NewFGrid(nx, ny int) *FGrid {
	return &FGrid{Nx: nx, Ny: ny, Re: make([]float64, nx*ny), Im: make([]float64, nx*ny)}
}

// At returns element (ix, iy) as a complex128.
//
//postopc:allocfree
func (f *FGrid) At(ix, iy int) complex128 {
	i := iy*f.Nx + ix
	return complex(f.Re[i], f.Im[i])
}

// Set assigns element (ix, iy).
//
//postopc:allocfree
func (f *FGrid) Set(ix, iy int, v complex128) {
	i := iy*f.Nx + ix
	f.Re[i], f.Im[i] = real(v), imag(v)
}

// Clear zeroes both planes in place.
//
//postopc:allocfree
func (f *FGrid) Clear() {
	vek.Zero(f.Re)
	vek.Zero(f.Im)
}

// LoadGrid deinterleaves g into the planes. Sizes must match.
//
//postopc:allocfree
func (f *FGrid) LoadGrid(g *Grid) {
	vek.Split(f.Re, f.Im, g.Data)
}

// StoreGrid interleaves the planes back into g. Sizes must match.
//
//postopc:allocfree
func (f *FGrid) StoreGrid(g *Grid) {
	vek.Join(g.Data, f.Re, f.Im)
}

// FFT2D performs an in-place forward 2-D FFT over the plane grid. Both
// dimensions must be powers of two. Bit-identical to Grid.FFT2D on the
// same values.
func (f *FGrid) FFT2D() error { return f.fft2d(false) }

// IFFT2D performs an in-place inverse 2-D FFT (scaled) over the plane grid.
func (f *FGrid) IFFT2D() error { return f.fft2d(true) }

func (f *FGrid) fft2d(inverse bool) error {
	if !IsPow2(f.Nx) || !IsPow2(f.Ny) {
		return fmt.Errorf("dsp: grid %dx%d not power-of-two", f.Nx, f.Ny)
	}
	// Rows first, then columns — the order is load-bearing: floating-point
	// rounding differs between the two factorizations, and determinism
	// tests pin this one.
	rowPlan := planFor(f.Nx)
	for iy := 0; iy < f.Ny; iy++ {
		fftLinePlanes(f.Re[iy*f.Nx:(iy+1)*f.Nx], f.Im[iy*f.Nx:(iy+1)*f.Nx], rowPlan, inverse)
	}
	f.transformColumns(inverse)
	return nil
}

// FFT2DBandSelect performs the forward 2-D transform computing only the
// listed spectrum rows: the column pass runs in full, then the row pass
// runs on those rows only. On the listed rows the result equals a full
// separable transform; every other row is left partially transformed and
// must not be read. Bit-identical to Grid.FFT2DBandSelect on the same
// values (including the pass order caveat documented there).
func (f *FGrid) FFT2DBandSelect(rows []int) error {
	if !IsPow2(f.Nx) || !IsPow2(f.Ny) {
		return fmt.Errorf("dsp: grid %dx%d not power-of-two", f.Nx, f.Ny)
	}
	f.transformColumns(false)
	rowPlan := planFor(f.Nx)
	for _, iy := range rows {
		if iy < 0 || iy >= f.Ny {
			return fmt.Errorf("dsp: band-select row %d outside grid of %d rows", iy, f.Ny)
		}
		fftLinePlanes(f.Re[iy*f.Nx:(iy+1)*f.Nx], f.Im[iy*f.Nx:(iy+1)*f.Nx], rowPlan, false)
	}
	return nil
}

// IFFT2DBandLimited performs the inverse 2-D transform of a spectrum whose
// energy is confined to the listed rows: the row pass runs on those rows
// only (the inverse FFT of an all-zero row is identically zero), the column
// pass is full. For such spectra the result equals IFFT2D; rows outside the
// list must be zero or the transform is wrong.
func (f *FGrid) IFFT2DBandLimited(rows []int) error {
	if !IsPow2(f.Nx) || !IsPow2(f.Ny) {
		return fmt.Errorf("dsp: grid %dx%d not power-of-two", f.Nx, f.Ny)
	}
	rowPlan := planFor(f.Nx)
	for _, iy := range rows {
		if iy < 0 || iy >= f.Ny {
			return fmt.Errorf("dsp: band-limited row %d outside grid of %d rows", iy, f.Ny)
		}
		fftLinePlanes(f.Re[iy*f.Nx:(iy+1)*f.Nx], f.Im[iy*f.Nx:(iy+1)*f.Nx], rowPlan, true)
	}
	f.transformColumns(true)
	return nil
}

// transformColumns transforms every column in place through the blocked
// butterfly path. The inverse 1/Ny scaling is applied grid-wide through
// vek.ScaleInv, which performs per element exactly what the historical
// complex division did and divides each element exactly once.
//
//postopc:allocfree
func (f *FGrid) transformColumns(inverse bool) {
	fftColumnsBlockedPlanes(f.Re, f.Im, f.Nx, planFor(f.Ny), inverse)
	if inverse {
		vek.ScaleInv(f.Re, f.Im, float64(f.Ny))
	}
}

// Energy returns the sum of |v|² over the plane grid.
//
//postopc:allocfree
func (f *FGrid) Energy() float64 {
	var s float64
	im := f.Im[:len(f.Re)]
	for i, re := range f.Re {
		q := im[i]
		s += re*re + q*q
	}
	return s
}
