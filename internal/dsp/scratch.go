package dsp

import "sync"

// Grid pooling for the imaging hot path: a window simulation needs two
// full-size complex grids (transmission/spectrum and per-source-point work
// field) per call, and steady-state full-chip runs simulate thousands of
// equally-sized windows. Borrow/Return recycles the backing arrays so those
// calls allocate nothing after warm-up.
//
// The pool is safe for concurrent use (extraction and ORC workers share
// it). A borrowed grid's contents are unspecified — callers must overwrite
// or Clear before reading, which also keeps results independent of pool
// history.

var gridPool sync.Pool

// BorrowGrid returns an Nx × Ny grid from the pool, allocating only when no
// pooled grid is large enough. Contents are unspecified.
//
//postopc:allocfree
func BorrowGrid(nx, ny int) *Grid {
	g, _ := gridPool.Get().(*Grid)
	if g == nil {
		return NewGrid(nx, ny) //postopc:nolint:allocbudget pool miss before warm-up is the cold path
	}
	n := nx * ny
	if cap(g.Data) < n {
		g.Data = make([]complex128, n) //postopc:nolint:allocbudget regrowth at a new window size is the cold path
	}
	g.Nx, g.Ny = nx, ny
	g.Data = g.Data[:n]
	return g
}

// ReturnGrid puts g back into the pool. The caller must not use g (or
// slices of its Data) afterwards.
//
//postopc:allocfree
func ReturnGrid(g *Grid) {
	if g != nil {
		gridPool.Put(g)
	}
}

var fgridPool sync.Pool

// BorrowFGrid returns an Nx × Ny plane grid from the pool, allocating only
// when no pooled grid is large enough. Contents are unspecified — callers
// must overwrite, Clear, or LoadGrid before reading.
//
//postopc:allocfree
func BorrowFGrid(nx, ny int) *FGrid {
	f, _ := fgridPool.Get().(*FGrid)
	if f == nil {
		return NewFGrid(nx, ny) //postopc:nolint:allocbudget pool miss before warm-up is the cold path
	}
	n := nx * ny
	if cap(f.Re) < n {
		f.Re = make([]float64, n) //postopc:nolint:allocbudget regrowth at a new window size is the cold path
		f.Im = make([]float64, n) //postopc:nolint:allocbudget regrowth at a new window size is the cold path
	}
	f.Nx, f.Ny = nx, ny
	f.Re, f.Im = f.Re[:n], f.Im[:n]
	return f
}

// ReturnFGrid puts f back into the pool. The caller must not use f (or its
// planes) afterwards.
//
//postopc:allocfree
func ReturnFGrid(f *FGrid) {
	if f != nil {
		fgridPool.Put(f)
	}
}
