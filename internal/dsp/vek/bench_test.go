package vek_test

import (
	"testing"

	"postopc/internal/dsp/vek"
)

// BenchmarkKernelInnerLoops is the micro-series behind BENCH_kernel.json's
// kernel_micro block: each of the three dominant inner loops — butterfly,
// pointwise filter apply, scaled intensity accumulate — timed as the
// complex128 reference loop and as the SoA plane kernel, at the span
// length the real pipeline uses (a 256-wide row/column block). Run once
// per GOAMD64 level:
//
//	go test ./internal/dsp/vek/ -run - -bench KernelInnerLoops
//	GOAMD64=v3 go test ./internal/dsp/vek/ -run - -bench KernelInnerLoops
//
// The v1 rows measure the four-wide unrolled generic path against the
// interleaved complex128 loop; the v3 rows measure the AVX2 path.
const benchN = 256

func benchComplexLine(seed float64) []complex128 {
	xs := make([]complex128, benchN)
	for i := range xs {
		xs[i] = complex(seed+float64(i)*0.25, seed-float64(i)*0.125)
	}
	return xs
}

func benchPlanes(seed float64) (re, im []float64) {
	re = make([]float64, benchN)
	im = make([]float64, benchN)
	vek.Split(re, im, benchComplexLine(seed))
	return re, im
}

func BenchmarkKernelInnerLoops(b *testing.B) {
	b.Logf("goamd64=%q simd=%v", vek.BuildLevel(), vek.SIMDEnabled())

	b.Run("butterfly/complex128", func(b *testing.B) {
		lo := benchComplexLine(1.5)
		hi := benchComplexLine(-0.75)
		w := complex(0.6, -0.8)
		b.SetBytes(benchN * 16 * 2)
		for i := 0; i < b.N; i++ {
			for c := range lo {
				a := lo[c]
				bb := hi[c] * w
				lo[c] = a + bb
				hi[c] = a - bb
			}
		}
	})
	b.Run("butterfly/soa", func(b *testing.B) {
		loRe, loIm := benchPlanes(1.5)
		hiRe, hiIm := benchPlanes(-0.75)
		b.SetBytes(benchN * 16 * 2)
		for i := 0; i < b.N; i++ {
			vek.ButterflyCol(loRe, loIm, hiRe, hiIm, 0.6, -0.8)
		}
	})

	b.Run("filter-apply/complex128", func(b *testing.B) {
		s := benchComplexLine(0.5)
		v := benchComplexLine(2.0)
		dst := make([]complex128, benchN)
		b.SetBytes(benchN * 16 * 2)
		for i := 0; i < b.N; i++ {
			for c := range dst {
				dst[c] = s[c] * v[c]
			}
		}
	})
	b.Run("filter-apply/soa", func(b *testing.B) {
		sRe, sIm := benchPlanes(0.5)
		vRe, vIm := benchPlanes(2.0)
		dRe := make([]float64, benchN)
		dIm := make([]float64, benchN)
		b.SetBytes(benchN * 16 * 2)
		for i := 0; i < b.N; i++ {
			vek.CMul(dRe, dIm, sRe, sIm, vRe, vIm)
		}
	})

	b.Run("accumulate/complex128", func(b *testing.B) {
		field := benchComplexLine(0.25)
		acc := make([]float64, benchN)
		b.SetBytes(benchN * (16 + 8))
		for i := 0; i < b.N; i++ {
			for c, e := range field {
				re, im := real(e), imag(e)
				acc[c] += 0.125 * (re*re + im*im)
			}
		}
	})
	b.Run("accumulate/soa", func(b *testing.B) {
		fRe, fIm := benchPlanes(0.25)
		acc := make([]float64, benchN)
		b.SetBytes(benchN * (16 + 8))
		for i := 0; i < b.N; i++ {
			vek.AccIntensity(acc, fRe, fIm, 0.125)
		}
	})

	b.Run("scale-inv/complex128", func(b *testing.B) {
		xs := benchComplexLine(3.0)
		nC := complex(float64(benchN), 0)
		b.SetBytes(benchN * 16)
		for i := 0; i < b.N; i++ {
			for c := range xs {
				xs[c] /= nC
			}
		}
	})
	b.Run("scale-inv/soa", func(b *testing.B) {
		re, im := benchPlanes(3.0)
		b.SetBytes(benchN * 16)
		for i := 0; i < b.N; i++ {
			vek.ScaleInv(re, im, benchN)
		}
	})
}
