//go:build amd64

package vek

// Features describes the CPU capabilities relevant to the kernel layer,
// detected at startup via CPUID. Recorded in BENCH_*.json host blocks next
// to BuildLevel so a benchmark row carries both what the binary could use
// (the GOAMD64 baseline it was compiled against) and what the host could
// have run.
type Features struct {
	// AVX2 reports 256-bit integer/float vector support usable by the OS
	// (CPUID leaf 7 EBX bit 5, gated on OSXSAVE + XCR0 state enabling).
	AVX2 bool
	// FMA reports fused-multiply-add support (CPUID leaf 1 ECX bit 12,
	// same OS gating). The vek kernels never emit FMA — the bit is recorded
	// because its presence is what makes the no-FMA contract worth pinning.
	FMA bool
}

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

var features = detect()

// CPU returns the detected host features.
func CPU() Features { return features }

func detect() Features {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 1 {
		return Features{}
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		bitFMA     = 1 << 12
		bitOSXSAVE = 1 << 27
		bitAVX     = 1 << 28
	)
	osAVX := false
	if ecx1&bitOSXSAVE != 0 && ecx1&bitAVX != 0 {
		// XCR0 bits 1 (SSE) and 2 (AVX upper halves) must both be
		// OS-enabled for YMM state to be usable.
		xcr0, _ := xgetbv()
		osAVX = xcr0&0x6 == 0x6
	}
	var f Features
	f.FMA = osAVX && ecx1&bitFMA != 0
	if osAVX && maxID >= 7 {
		_, ebx7, _, _ := cpuid(7, 0)
		f.AVX2 = ebx7&(1<<5) != 0
	}
	return f
}
