//go:build !amd64

package vek

// Features describes the CPU capabilities relevant to the kernel layer.
// Off amd64 nothing is detected; both fields read false.
type Features struct {
	AVX2 bool
	FMA  bool
}

// CPU returns the detected host features.
func CPU() Features { return Features{} }
