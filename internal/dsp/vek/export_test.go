package vek

// The generic (non-SIMD) kernel bodies, exported for the SIMD-vs-generic
// bit-identity tests. On GOAMD64=v3 builds the public kernels dispatch to
// AVX2 assembly; these always run the four-wide unrolled Go path.
var (
	ButterflyColGeneric = butterflyColGeneric
	ButterflyRowGeneric = butterflyRowGeneric
	CMulGeneric         = cmulGeneric
	AccIntensityGeneric = accIntensityGeneric
)
