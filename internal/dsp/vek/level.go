package vek

// BuildLevel returns the GOAMD64 microarchitecture level this binary was
// compiled for ("v1".."v4"), or the empty string off amd64. BENCH_*.json
// host blocks record it so cross-host comparisons know which instruction
// baseline — and therefore which vek dispatch path — produced the numbers.
func BuildLevel() string { return buildLevel }

// SIMDEnabled reports whether the AVX2 kernel path is compiled into this
// binary (GOAMD64 >= v3).
func SIMDEnabled() bool { return simdOn }
