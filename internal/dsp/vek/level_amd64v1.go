//go:build amd64 && !amd64.v2

package vek

const buildLevel = "v1"
