//go:build amd64.v2 && !amd64.v3

package vek

const buildLevel = "v2"
