//go:build amd64.v3 && !amd64.v4

package vek

const buildLevel = "v3"
