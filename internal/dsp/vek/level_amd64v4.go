//go:build amd64.v4

package vek

const buildLevel = "v4"
