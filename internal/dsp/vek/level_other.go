//go:build !amd64

package vek

const buildLevel = ""
