//go:build amd64.v3

package vek

// GOAMD64=v3 guarantees AVX2 (x86-64-v3 baseline), so the SIMD kernels are
// compiled in and dispatched unconditionally — no runtime feature check on
// the hot path. The assembly performs the identical per-lane IEEE-754
// operation sequence as the generic path: VMULPD/VADDPD/VSUBPD only, no
// VFMADD (the no-FMA contract), no cross-lane arithmetic. n must be a
// multiple of 4; the Go wrappers run the remainder through the generic
// tail.
const simdOn = true

//postopc:allocfree
//go:noescape
func butterflyColSIMD(loRe, loIm, hiRe, hiIm *float64, wr, wi float64, n int)

//postopc:allocfree
//go:noescape
func butterflyRowSIMD(loRe, loIm, hiRe, hiIm, twRe, twIm *float64, n int)

//postopc:allocfree
//go:noescape
func cmulSIMD(dstRe, dstIm, aRe, aIm, bRe, bIm *float64, n int)

//postopc:allocfree
//go:noescape
func accIntensitySIMD(acc, re, im *float64, w float64, n int)
