//go:build amd64.v3

// AVX2 implementations of the SoA kernels. Contract (see package doc):
// per-lane IEEE-754 operations identical to the generic Go path —
// VMULPD/VADDPD/VSUBPD only, never VFMADD, never cross-lane arithmetic —
// so SIMD and generic planes are bit-identical. Every function requires n
// to be a multiple of 4 (the Go wrappers handle tails) and executes
// VZEROUPPER before returning per the AVX calling convention.
//
// Go assembly operand order for VEX three-operand instructions is
// reversed from Intel: `VSUBPD Ya, Yb, Yd` computes Yd = Yb - Ya.

#include "textflag.h"

// func butterflyColSIMD(loRe, loIm, hiRe, hiIm *float64, wr, wi float64, n int)
//
// Per lane: br = hr*wr - hi*wi; bi = hr*wi + hi*wr;
//           lo' = a + b; hi' = a - b.
TEXT ·butterflyColSIMD(SB), NOSPLIT, $0-56
	MOVQ loRe+0(FP), DI
	MOVQ loIm+8(FP), SI
	MOVQ hiRe+16(FP), DX
	MOVQ hiIm+24(FP), CX
	VBROADCASTSD wr+32(FP), Y4
	VBROADCASTSD wi+40(FP), Y5
	MOVQ n+48(FP), BX
	XORQ AX, AX

bcol_loop:
	CMPQ AX, BX
	JGE  bcol_done
	VMOVUPD (DX)(AX*8), Y2 // hr
	VMOVUPD (CX)(AX*8), Y3 // hi
	VMULPD  Y4, Y2, Y6     // hr*wr
	VMULPD  Y5, Y3, Y7     // hi*wi
	VSUBPD  Y7, Y6, Y6     // br = hr*wr - hi*wi
	VMULPD  Y5, Y2, Y7     // hr*wi
	VMULPD  Y4, Y3, Y8     // hi*wr
	VADDPD  Y8, Y7, Y7     // bi = hr*wi + hi*wr
	VMOVUPD (DI)(AX*8), Y0 // ar
	VMOVUPD (SI)(AX*8), Y1 // ai
	VADDPD  Y6, Y0, Y9     // ar+br
	VSUBPD  Y6, Y0, Y10    // ar-br
	VADDPD  Y7, Y1, Y11    // ai+bi
	VSUBPD  Y7, Y1, Y12    // ai-bi
	VMOVUPD Y9, (DI)(AX*8)
	VMOVUPD Y11, (SI)(AX*8)
	VMOVUPD Y10, (DX)(AX*8)
	VMOVUPD Y12, (CX)(AX*8)
	ADDQ    $4, AX
	JMP     bcol_loop

bcol_done:
	VZEROUPPER
	RET

// func butterflyRowSIMD(loRe, loIm, hiRe, hiIm, twRe, twIm *float64, n int)
//
// Same butterfly with per-element twiddles loaded from the tw planes.
TEXT ·butterflyRowSIMD(SB), NOSPLIT, $0-56
	MOVQ loRe+0(FP), DI
	MOVQ loIm+8(FP), SI
	MOVQ hiRe+16(FP), DX
	MOVQ hiIm+24(FP), CX
	MOVQ twRe+32(FP), R8
	MOVQ twIm+40(FP), R9
	MOVQ n+48(FP), BX
	XORQ AX, AX

brow_loop:
	CMPQ AX, BX
	JGE  brow_done
	VMOVUPD (R8)(AX*8), Y4 // wr
	VMOVUPD (R9)(AX*8), Y5 // wi
	VMOVUPD (DX)(AX*8), Y2 // hr
	VMOVUPD (CX)(AX*8), Y3 // hi
	VMULPD  Y4, Y2, Y6     // hr*wr
	VMULPD  Y5, Y3, Y7     // hi*wi
	VSUBPD  Y7, Y6, Y6     // br
	VMULPD  Y5, Y2, Y7     // hr*wi
	VMULPD  Y4, Y3, Y8     // hi*wr
	VADDPD  Y8, Y7, Y7     // bi
	VMOVUPD (DI)(AX*8), Y0 // ar
	VMOVUPD (SI)(AX*8), Y1 // ai
	VADDPD  Y6, Y0, Y9
	VSUBPD  Y6, Y0, Y10
	VADDPD  Y7, Y1, Y11
	VSUBPD  Y7, Y1, Y12
	VMOVUPD Y9, (DI)(AX*8)
	VMOVUPD Y11, (SI)(AX*8)
	VMOVUPD Y10, (DX)(AX*8)
	VMOVUPD Y12, (CX)(AX*8)
	ADDQ    $4, AX
	JMP     brow_loop

brow_done:
	VZEROUPPER
	RET

// func cmulSIMD(dstRe, dstIm, aRe, aIm, bRe, bIm *float64, n int)
//
// Per lane: dr = ar*br - ai*bi; di = ar*bi + ai*br. Loads complete before
// the lane's stores, so dst may alias a or b.
TEXT ·cmulSIMD(SB), NOSPLIT, $0-56
	MOVQ dstRe+0(FP), DI
	MOVQ dstIm+8(FP), SI
	MOVQ aRe+16(FP), DX
	MOVQ aIm+24(FP), CX
	MOVQ bRe+32(FP), R8
	MOVQ bIm+40(FP), R9
	MOVQ n+48(FP), BX
	XORQ AX, AX

cmul_loop:
	CMPQ AX, BX
	JGE  cmul_done
	VMOVUPD (DX)(AX*8), Y0 // ar
	VMOVUPD (CX)(AX*8), Y1 // ai
	VMOVUPD (R8)(AX*8), Y2 // br
	VMOVUPD (R9)(AX*8), Y3 // bi
	VMULPD  Y2, Y0, Y4     // ar*br
	VMULPD  Y3, Y1, Y5     // ai*bi
	VSUBPD  Y5, Y4, Y4     // dr
	VMULPD  Y3, Y0, Y5     // ar*bi
	VMULPD  Y2, Y1, Y6     // ai*br
	VADDPD  Y6, Y5, Y5     // di
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, (SI)(AX*8)
	ADDQ    $4, AX
	JMP     cmul_loop

cmul_done:
	VZEROUPPER
	RET

// func accIntensitySIMD(acc, re, im *float64, w float64, n int)
//
// Per lane: acc += w * (re*re + im*im), in that association.
TEXT ·accIntensitySIMD(SB), NOSPLIT, $0-40
	MOVQ acc+0(FP), DI
	MOVQ re+8(FP), SI
	MOVQ im+16(FP), DX
	VBROADCASTSD w+24(FP), Y4
	MOVQ n+32(FP), BX
	XORQ AX, AX

acc_loop:
	CMPQ AX, BX
	JGE  acc_done
	VMOVUPD (SI)(AX*8), Y0 // r
	VMOVUPD (DX)(AX*8), Y1 // q
	VMULPD  Y0, Y0, Y2     // r*r
	VMULPD  Y1, Y1, Y3     // q*q
	VADDPD  Y3, Y2, Y2     // r*r + q*q
	VMULPD  Y4, Y2, Y2     // w * (...)
	VMOVUPD (DI)(AX*8), Y3 // acc
	VADDPD  Y2, Y3, Y3     // acc + w*(...)
	VMOVUPD Y3, (DI)(AX*8)
	ADDQ    $4, AX
	JMP     acc_loop

acc_done:
	VZEROUPPER
	RET
