//go:build !amd64.v3

package vek

// Below GOAMD64=v3 the AVX2 baseline is not guaranteed, so the kernels run
// the generic scalar path only. The stubs below are never reached: simdOn
// is a compile-time constant, so every `if simdOn` branch is
// dead-code-eliminated.
const simdOn = false

//postopc:allocfree
func butterflyColSIMD(loRe, loIm, hiRe, hiIm *float64, wr, wi float64, n int) {
	panic("vek: SIMD kernel called in a non-v3 build")
}

//postopc:allocfree
func butterflyRowSIMD(loRe, loIm, hiRe, hiIm, twRe, twIm *float64, n int) {
	panic("vek: SIMD kernel called in a non-v3 build")
}

//postopc:allocfree
func cmulSIMD(dstRe, dstIm, aRe, aIm, bRe, bIm *float64, n int) {
	panic("vek: SIMD kernel called in a non-v3 build")
}

//postopc:allocfree
func accIntensitySIMD(acc, re, im *float64, w float64, n int) {
	panic("vek: SIMD kernel called in a non-v3 build")
}
