// Package vek implements the structure-of-arrays (SoA) vector kernels of
// the imaging hot path: the FFT butterflies, the pointwise pupil-filter
// apply and the scaled intensity accumulate, executed over separate
// real/imag float64 planes instead of interleaved []complex128.
//
// # Why SoA
//
// The complex128 inner loops compile to scalar SSE: each element is a
// 16-byte (re, im) pair and every operation decomposes into dependent
// scalar float ops. Deinterleaved planes make each lane an independent
// 8-byte float stream, so on GOAMD64=v3 builds the kernels execute with
// 4-lane AVX2 vector instructions (VMULPD/VADDPD/VSUBPD) that perform the
// identical per-lane IEEE-754 operation. On lower build levels a flat
// scalar loop runs instead — measurement rejected manual 4-wide unrolling
// there (six live slice streams spill; the out-of-order core extracts the
// ILP from the simple loop on its own), so the generic path stays 1-wide
// and bounds-check-free via reslicing.
//
// # Bit-identity contract
//
// Every kernel performs the exact floating-point operation sequence of the
// complex128 loop it replaces:
//
//   - complex multiply is the naive expansion the Go compiler open-codes,
//     in its operand order: re = a.re*b.re - a.im*b.im,
//     im = a.re*b.im + a.im*b.re;
//   - no fused multiply-add, anywhere: the generic path relies on the gc
//     compiler never contracting a*b+c on amd64 (asserted by the golden-SHA
//     regression test at every GOAMD64 level), and the AVX2 path emits only
//     VMULPD/VADDPD/VSUBPD, never VFMADD;
//   - no reassociation: sums are accumulated in the order of the original
//     loops;
//   - the inverse-FFT 1/N scaling mirrors runtime.complex128div for a
//     positive real divisor (see ScaleInv), including its NaN fixup, and
//     substitutes the division by a multiplication only when the divisor is
//     a power of two — an exact, bit-preserving rewrite.
//
// Lane independence makes vectorization order-preserving: a 4-lane VADDPD
// is four one-lane additions with no cross-lane arithmetic, so the SIMD
// and generic paths produce bit-identical planes (property-tested in this
// package, pinned end-to-end by the litho golden-SHA test). The only
// unpinned detail is the payload and sign of a NaN produced when BOTH
// operands of one commutative operation (+, *) are NaNs with different
// payloads: SSE/AVX propagate the first operand's payload, and the gc SSA
// backend commutes Add64F/Mul64F operands freely, so the complex128 code
// itself does not pin that bit pattern between compilations. Which
// elements come out NaN, and every non-NaN bit, is exact; the property
// tests therefore compare NaNs payload-insensitively and everything else
// bit-for-bit.
package vek

// Split deinterleaves src into separate real and imaginary planes.
// re and im must each hold at least len(src) elements.
//
//postopc:allocfree
func Split(re, im []float64, src []complex128) {
	n := len(src)
	re = re[:n]
	im = im[:n]
	for i, v := range src {
		re[i] = real(v)
		im[i] = imag(v)
	}
}

// Join interleaves the real and imaginary planes into dst.
// dst must hold at least len(re) elements; len(im) must match len(re).
//
//postopc:allocfree
func Join(dst []complex128, re, im []float64) {
	n := len(re)
	im = im[:n]
	dst = dst[:n]
	for i := range dst {
		dst[i] = complex(re[i], im[i])
	}
}

// Zero clears the plane.
//
//postopc:allocfree
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// ButterflyCol executes one radix-2 butterfly with a single twiddle across
// a span of independent columns — the inner loop of the blocked column
// transform. For every lane i it performs exactly
//
//	a := lo[i]; b := hi[i] * w
//	lo[i] = a + b; hi[i] = a - b
//
// in the complex128 operation order: br = hr*wr - hi*wi, bi = hr*wi + hi*wr.
// All four planes must have len(loRe) elements.
//
//postopc:allocfree
func ButterflyCol(loRe, loIm, hiRe, hiIm []float64, wr, wi float64) {
	n := len(loRe)
	loIm = loIm[:n]
	hiRe = hiRe[:n]
	hiIm = hiIm[:n]
	if simdOn && n >= 4 {
		m := n &^ 3
		butterflyColSIMD(&loRe[0], &loIm[0], &hiRe[0], &hiIm[0], wr, wi, m)
		loRe, loIm = loRe[m:], loIm[m:]
		hiRe, hiIm = hiRe[m:], hiIm[m:]
	}
	butterflyColGeneric(loRe, loIm, hiRe, hiIm, wr, wi)
}

//postopc:allocfree
func butterflyColGeneric(loRe, loIm, hiRe, hiIm []float64, wr, wi float64) {
	n := len(loRe)
	loIm = loIm[:n]
	hiRe = hiRe[:n]
	hiIm = hiIm[:n]
	for i := range loRe {
		hr, him := hiRe[i], hiIm[i]
		br := hr*wr - him*wi
		bi := hr*wi + him*wr
		ar, ai := loRe[i], loIm[i]
		loRe[i], loIm[i] = ar+br, ai+bi
		hiRe[i], hiIm[i] = ar-br, ai-bi
	}
}

// ButterflyRow executes one radix-2 butterfly span with per-element
// twiddles — the inner loop of a 1-D line transform, where for one stage
// block the lo/hi halves are contiguous and the twiddle varies along the
// span. Per element: br = hr*twRe - hi*twIm, bi = hr*twIm + hi*twRe, then
// lo' = a+b, hi' = a-b. All six planes must have len(loRe) elements.
//
//postopc:allocfree
func ButterflyRow(loRe, loIm, hiRe, hiIm, twRe, twIm []float64) {
	n := len(loRe)
	loIm = loIm[:n]
	hiRe = hiRe[:n]
	hiIm = hiIm[:n]
	twRe = twRe[:n]
	twIm = twIm[:n]
	if simdOn && n >= 4 {
		m := n &^ 3
		butterflyRowSIMD(&loRe[0], &loIm[0], &hiRe[0], &hiIm[0], &twRe[0], &twIm[0], m)
		loRe, loIm = loRe[m:], loIm[m:]
		hiRe, hiIm = hiRe[m:], hiIm[m:]
		twRe, twIm = twRe[m:], twIm[m:]
	}
	butterflyRowGeneric(loRe, loIm, hiRe, hiIm, twRe, twIm)
}

//postopc:allocfree
func butterflyRowGeneric(loRe, loIm, hiRe, hiIm, twRe, twIm []float64) {
	n := len(loRe)
	loIm = loIm[:n]
	hiRe = hiRe[:n]
	hiIm = hiIm[:n]
	twRe = twRe[:n]
	twIm = twIm[:n]
	for i := range loRe {
		hr, him := hiRe[i], hiIm[i]
		wr, wi := twRe[i], twIm[i]
		br := hr*wr - him*wi
		bi := hr*wi + him*wr
		ar, ai := loRe[i], loIm[i]
		loRe[i], loIm[i] = ar+br, ai+bi
		hiRe[i], hiIm[i] = ar-br, ai-bi
	}
}

// CMul computes the elementwise complex product dst = a × b over SoA
// planes — the pupil-filter apply (spectrum row × filter row). The operand
// order matches the complex128 expression s*v with a as the left operand:
// dr = ar*br - ai*bi, di = ar*bi + ai*br. dst may alias a or b. All planes
// must have len(dstRe) elements.
//
//postopc:allocfree
func CMul(dstRe, dstIm, aRe, aIm, bRe, bIm []float64) {
	n := len(dstRe)
	dstIm = dstIm[:n]
	aRe = aRe[:n]
	aIm = aIm[:n]
	bRe = bRe[:n]
	bIm = bIm[:n]
	if simdOn && n >= 4 {
		m := n &^ 3
		cmulSIMD(&dstRe[0], &dstIm[0], &aRe[0], &aIm[0], &bRe[0], &bIm[0], m)
		dstRe, dstIm = dstRe[m:], dstIm[m:]
		aRe, aIm = aRe[m:], aIm[m:]
		bRe, bIm = bRe[m:], bIm[m:]
	}
	cmulGeneric(dstRe, dstIm, aRe, aIm, bRe, bIm)
}

//postopc:allocfree
func cmulGeneric(dstRe, dstIm, aRe, aIm, bRe, bIm []float64) {
	n := len(dstRe)
	dstIm = dstIm[:n]
	aRe = aRe[:n]
	aIm = aIm[:n]
	bRe = bRe[:n]
	bIm = bIm[:n]
	for i := range dstRe {
		ar, ai := aRe[i], aIm[i]
		br, bi := bRe[i], bIm[i]
		dstRe[i] = ar*br - ai*bi
		dstIm[i] = ar*bi + ai*br
	}
}

// AccIntensity accumulates the weighted intensity of a complex field over
// SoA planes: acc[i] += w * (re[i]*re[i] + im[i]*im[i]) — the source-point
// intensity sum of the Abbe kernel, in its exact operation order. re and im
// must have len(acc) elements.
//
//postopc:allocfree
func AccIntensity(acc, re, im []float64, w float64) {
	n := len(acc)
	re = re[:n]
	im = im[:n]
	if simdOn && n >= 4 {
		m := n &^ 3
		accIntensitySIMD(&acc[0], &re[0], &im[0], w, m)
		acc, re, im = acc[m:], re[m:], im[m:]
	}
	accIntensityGeneric(acc, re, im, w)
}

//postopc:allocfree
func accIntensityGeneric(acc, re, im []float64, w float64) {
	n := len(acc)
	re = re[:n]
	im = im[:n]
	for i := range acc {
		r, q := re[i], im[i]
		acc[i] = acc[i] + w*(r*r+q*q)
	}
}

// ScaleInv applies the inverse-FFT 1/N scaling to a plane pair, performing
// per element exactly what x /= complex(n, 0) performs through
// runtime.complex128div (Smith's algorithm, |real| >= |imag| branch, with
// the C99 Annex G fixup on the both-NaN path):
//
//	ratio = 0/n          (+0 for the positive divisors the FFT uses)
//	e = (re + im*ratio) / n
//	f = (im - re*ratio) / n
//
// When n is a power of two — every FFT length — the two divisions are
// replaced by multiplication with the exactly representable 1/n, which is
// bit-identical for every input including denormals, infinities and NaNs
// (scaling by an exact power of two rounds the same true value either
// way). If e and f both come out NaN the element is recomputed through
// real complex128 division, reproducing the runtime's fixup exactly.
// im must have len(re) elements; n must be positive and finite.
//
//postopc:allocfree
func ScaleInv(re, im []float64, n float64) {
	im = im[:len(re)]
	ratio := 0 / n
	if isPow2Float(n) {
		invN := 1 / n
		for i := range re {
			r, q := re[i], im[i]
			e, f := (r+q*ratio)*invN, (q-r*ratio)*invN
			if e != e && f != f {
				e, f = divFixup(r, q, n)
			}
			re[i], im[i] = e, f
		}
		return
	}
	// General real divisor: the literal two-division mirror.
	denom := n + ratio*0
	for i := range re {
		r, q := re[i], im[i]
		e, f := (r+q*ratio)/denom, (q-r*ratio)/denom
		if e != e && f != f {
			e, f = divFixup(r, q, n)
		}
		re[i], im[i] = e, f
	}
}

// divFixup delegates one element to real complex128 division — the
// runtime's own code path, so the rare both-NaN fixup (Inf inputs, NaN
// divisors) matches runtime.complex128div bit for bit.
//
//postopc:allocfree
func divFixup(re, im, n float64) (float64, float64) {
	q := complex(re, im) / complex(n, 0)
	return real(q), imag(q)
}

// isPow2Float reports whether n is a positive power of two whose exact
// reciprocal is a normal float64 — the precondition for the
// multiply-by-reciprocal rewrite in ScaleInv.
//
//postopc:allocfree
func isPow2Float(n float64) bool {
	i := int64(n)
	return n >= 1 && float64(i) == n && i&(i-1) == 0
}
