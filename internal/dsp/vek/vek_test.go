package vek_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"postopc/internal/dsp/vek"
)

// Property tests pinning the package contract: every kernel is bit-identical
// to the complex128 reference loop it replaces — on non-power-aligned
// lengths, NaN/Inf/denormal inputs, signed zeros and empty slices. The
// references below are verbatim copies of the pre-vek inner loops.
//
// Bit-identical carries one caveat (see the package doc): when BOTH
// operands of a commutative op are NaNs with different payloads, the
// surviving payload depends on SSA operand order, which the complex128
// reference itself does not pin between compilations. Comparisons below are
// therefore payload-insensitive for NaN results (NaN == NaN) and exact to
// the bit for everything else — including which elements are NaN.

// genValue draws one float64 biased heavily toward IEEE-754 edge cases.
func genValue(r *rand.Rand) float64 {
	switch r.Intn(12) {
	case 0:
		return math.NaN()
	case 1:
		return math.Inf(1)
	case 2:
		return math.Inf(-1)
	case 3:
		return 0
	case 4:
		return math.Copysign(0, -1)
	case 5:
		// Denormals: the 1/N-scaling exactness proof must hold below the
		// normal range too.
		return math.Float64frombits(uint64(r.Intn(1 << 20)) + 1)
	case 6:
		return -math.Float64frombits(uint64(r.Intn(1 << 20)) + 1)
	default:
		return (r.Float64()*2 - 1) * math.Ldexp(1, r.Intn(80)-40)
	}
}

// cline is a complex line whose quick.Generator produces awkward lengths
// (including 0) and edge-case values.
type cline []complex128

func (cline) Generate(r *rand.Rand, _ int) reflect.Value {
	n := r.Intn(67)
	xs := make(cline, n)
	for i := range xs {
		xs[i] = complex(genValue(r), genValue(r))
	}
	return reflect.ValueOf(xs)
}

// split returns freshly allocated SoA planes of xs.
func split(xs []complex128) (re, im []float64) {
	re = make([]float64, len(xs))
	im = make([]float64, len(xs))
	vek.Split(re, im, xs)
	return re, im
}

// bitsEqual compares two floats bit-for-bit, except that any NaN matches
// any NaN (payloads are the one compiler-unpinned detail).
func bitsEqual(got, want float64) bool {
	if math.IsNaN(want) {
		return math.IsNaN(got)
	}
	return math.Float64bits(got) == math.Float64bits(want)
}

// planesEqual compares a plane pair against a complex line bit-for-bit
// (NaN payload-insensitive).
func planesEqual(re, im []float64, want []complex128) bool {
	if len(re) != len(want) || len(im) != len(want) {
		return false
	}
	for i, w := range want {
		if !bitsEqual(re[i], real(w)) || !bitsEqual(im[i], imag(w)) {
			return false
		}
	}
	return true
}

func floatsEqual(got, want []float64) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if !bitsEqual(got[i], want[i]) {
			return false
		}
	}
	return true
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}
}

func TestButterflyColMatchesComplex(t *testing.T) {
	prop := func(lo, hi cline, wre, wim int64) bool {
		n := len(lo)
		if len(hi) < n {
			n = len(hi)
		}
		lo, hi = lo[:n], hi[:n]
		r := rand.New(rand.NewSource(wre ^ wim))
		w := complex(genValue(r), genValue(r))

		refLo := append([]complex128(nil), lo...)
		refHi := append([]complex128(nil), hi...)
		for c := range refLo { // the fftColumnsBlock inner loop, verbatim
			a := refLo[c]
			b := refHi[c] * w
			refLo[c] = a + b
			refHi[c] = a - b
		}

		loRe, loIm := split(lo)
		hiRe, hiIm := split(hi)
		vek.ButterflyCol(loRe, loIm, hiRe, hiIm, real(w), imag(w))
		return planesEqual(loRe, loIm, refLo) && planesEqual(hiRe, hiIm, refHi)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestButterflyRowMatchesComplex(t *testing.T) {
	prop := func(lo, hi, tw cline) bool {
		n := len(lo)
		if len(hi) < n {
			n = len(hi)
		}
		if len(tw) < n {
			n = len(tw)
		}
		lo, hi, tw = lo[:n], hi[:n], tw[:n]

		refLo := append([]complex128(nil), lo...)
		refHi := append([]complex128(nil), hi...)
		for k, w := range tw { // the fftPlanned stage loop, verbatim
			a := refLo[k]
			b := refHi[k] * w
			refLo[k] = a + b
			refHi[k] = a - b
		}

		loRe, loIm := split(lo)
		hiRe, hiIm := split(hi)
		twRe, twIm := split(tw)
		vek.ButterflyRow(loRe, loIm, hiRe, hiIm, twRe, twIm)
		return planesEqual(loRe, loIm, refLo) && planesEqual(hiRe, hiIm, refHi)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestCMulMatchesComplex(t *testing.T) {
	prop := func(a, b cline) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]

		ref := make([]complex128, n)
		for i := range ref { // the aerialFiltered filter apply, verbatim
			ref[i] = a[i] * b[i]
		}

		aRe, aIm := split(a)
		bRe, bIm := split(b)
		dstRe := make([]float64, n)
		dstIm := make([]float64, n)
		vek.CMul(dstRe, dstIm, aRe, aIm, bRe, bIm)
		if !planesEqual(dstRe, dstIm, ref) {
			return false
		}
		// Aliased destination (dst == a), as the in-place apply uses it.
		vek.CMul(aRe, aIm, aRe, aIm, bRe, bIm)
		return planesEqual(aRe, aIm, ref)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestAccIntensityMatchesComplex(t *testing.T) {
	prop := func(field cline, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := genValue(r)
		acc := make([]float64, len(field))
		for i := range acc {
			acc[i] = genValue(r)
		}

		ref := append([]float64(nil), acc...)
		for i, e := range field { // the Abbe intensity accumulate, verbatim
			re, im := real(e), imag(e)
			ref[i] += w * (re*re + im*im)
		}

		fRe, fIm := split(field)
		vek.AccIntensity(acc, fRe, fIm, w)
		return floatsEqual(acc, ref)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestScaleInvMatchesComplexDiv(t *testing.T) {
	divisors := []float64{1, 2, 4, 64, 256, 1024, 65536, 1 << 30, // pow2 fast path
		3, 6.5, 100, 255} // general mirror path
	prop := func(xs cline, pick uint8) bool {
		n := divisors[int(pick)%len(divisors)]

		ref := append([]complex128(nil), xs...)
		nC := complex(n, 0)
		for i := range ref { // the inverse-FFT scaling loop, verbatim
			ref[i] /= nC
		}

		re, im := split(xs)
		vek.ScaleInv(re, im, n)
		return planesEqual(re, im, ref)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestSIMDMatchesGeneric pins the dispatch equivalence: on a GOAMD64>=v3
// build the public kernels run AVX2 assembly, which must agree with the
// four-wide generic Go path bit-for-bit (per-lane IEEE operations only).
// On lower build levels both sides run the same code and the test is a
// tautology — it still runs, keeping the harness level-independent.
func TestSIMDMatchesGeneric(t *testing.T) {
	if vek.SIMDEnabled() {
		t.Logf("GOAMD64=%s: public kernels dispatch to AVX2", vek.BuildLevel())
	}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := r.Intn(67)
		mk := func() []float64 {
			p := make([]float64, n)
			for i := range p {
				p[i] = genValue(r)
			}
			return p
		}
		loRe, loIm, hiRe, hiIm := mk(), mk(), mk(), mk()
		twRe, twIm := mk(), mk()
		wr, wi, w := genValue(r), genValue(r), genValue(r)

		cp := func(p []float64) []float64 { return append([]float64(nil), p...) }

		gLoRe, gLoIm, gHiRe, gHiIm := cp(loRe), cp(loIm), cp(hiRe), cp(hiIm)
		vek.ButterflyCol(loRe, loIm, hiRe, hiIm, wr, wi)
		vek.ButterflyColGeneric(gLoRe, gLoIm, gHiRe, gHiIm, wr, wi)
		if !floatsEqual(loRe, gLoRe) || !floatsEqual(loIm, gLoIm) ||
			!floatsEqual(hiRe, gHiRe) || !floatsEqual(hiIm, gHiIm) {
			t.Fatalf("trial %d: ButterflyCol SIMD != generic (n=%d)", trial, n)
		}

		gLoRe, gLoIm, gHiRe, gHiIm = cp(loRe), cp(loIm), cp(hiRe), cp(hiIm)
		vek.ButterflyRow(loRe, loIm, hiRe, hiIm, twRe, twIm)
		vek.ButterflyRowGeneric(gLoRe, gLoIm, gHiRe, gHiIm, twRe, twIm)
		if !floatsEqual(loRe, gLoRe) || !floatsEqual(hiIm, gHiIm) {
			t.Fatalf("trial %d: ButterflyRow SIMD != generic (n=%d)", trial, n)
		}

		dRe, dIm, gdRe, gdIm := mk(), mk(), make([]float64, n), make([]float64, n)
		vek.CMul(dRe, dIm, loRe, loIm, hiRe, hiIm)
		vek.CMulGeneric(gdRe, gdIm, loRe, loIm, hiRe, hiIm)
		if !floatsEqual(dRe, gdRe) || !floatsEqual(dIm, gdIm) {
			t.Fatalf("trial %d: CMul SIMD != generic (n=%d)", trial, n)
		}

		acc, gAcc := mk(), []float64(nil)
		gAcc = cp(acc)
		vek.AccIntensity(acc, loRe, loIm, w)
		vek.AccIntensityGeneric(gAcc, loRe, loIm, w)
		if !floatsEqual(acc, gAcc) {
			t.Fatalf("trial %d: AccIntensity SIMD != generic (n=%d)", trial, n)
		}
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	prop := func(xs cline) bool {
		re, im := split(xs)
		out := make([]complex128, len(xs))
		vek.Join(out, re, im)
		for i := range xs {
			if math.Float64bits(real(out[i])) != math.Float64bits(real(xs[i])) ||
				math.Float64bits(imag(out[i])) != math.Float64bits(imag(xs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestEmptyAndTinySpans exercises every kernel at lengths 0..7 explicitly —
// below, at and above the SIMD width and the unroll factor — so the
// empty-slice and tail paths are covered even if quick's random lengths
// miss one.
func TestEmptyAndTinySpans(t *testing.T) {
	for n := 0; n <= 7; n++ {
		xs := make([]complex128, n)
		for i := range xs {
			xs[i] = complex(float64(i)+0.5, -float64(i))
		}
		re, im := split(xs)
		vek.ButterflyCol(re, im, append([]float64(nil), re...), append([]float64(nil), im...), 0.6, -0.8)
		vek.ScaleInv(re, im, 4)
		vek.Zero(re)
		acc := make([]float64, n)
		vek.AccIntensity(acc, re, im, 0.25)
		out := make([]complex128, n)
		vek.Join(out, re, im)
		for i := range re {
			if re[i] != 0 {
				t.Fatalf("n=%d: Zero left re[%d] = %g", n, i, re[i])
			}
		}
	}
}
