package flow

import (
	"fmt"
	"sort"

	"postopc/internal/layout"
	"postopc/internal/litho"
	"postopc/internal/netlist"
	"postopc/internal/place"
	"postopc/internal/sta"
	"postopc/internal/timinglib"
)

// Annotations builds the per-gate effective-length annotators from
// extraction results, selecting corner index ci. Sites that failed to print
// fall back to drawn (pinched gates are catastrophic yield events, not
// timing annotations; they are visible via GateExtraction.Printed).
func Annotations(extrs map[string]*GateExtraction, ci int) sta.Annotations {
	ann := sta.Annotations{}
	for name, ext := range extrs {
		byLocal := map[string]timinglib.Lengths{}
		for _, s := range ext.Sites {
			if ci >= len(s.PerCorner) {
				continue
			}
			cc := s.PerCorner[ci]
			if !cc.Printed || cc.DelayEL <= 0 {
				continue
			}
			byLocal[s.LocalName] = timinglib.Lengths{DelayL: cc.DelayEL, LeakL: cc.LeakEL}
		}
		ann[name] = func(site layout.GateSite) timinglib.Lengths {
			if l, ok := byLocal[site.Name]; ok {
				return l
			}
			return timinglib.Drawn(site)
		}
	}
	return ann
}

// RunOptions drive the full pipeline.
type RunOptions struct {
	// STA boundary conditions.
	STA sta.Config
	// Place options.
	Place place.Options
	// Mode is the OPC applied during extraction.
	Mode OPCMode
	// Corners for extraction (default Nominal only).
	Corners []litho.Corner
	// TagTopK restricts extraction to the gates on the K worst drawn-CD
	// paths (the paper's critical-gate tagging). 0 extracts every gate.
	TagTopK int
	// Workers bounds extraction concurrency (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// Batch > 1 routes extraction through the batched window pipeline in
	// groups of Batch windows (see ExtractOptions.Batch).
	Batch int
}

// RunResult is the pipeline outcome.
type RunResult struct {
	// Netlist analyzed.
	Netlist *netlist.Netlist
	// Place is the placement.
	Place *place.Result
	// Tagged lists the extracted gates.
	Tagged []string
	// Extractions maps gate name -> extraction.
	Extractions map[string]*GateExtraction
	// Drawn is the sign-off-style drawn-CD analysis.
	Drawn *sta.Result
	// Annotated is the silicon-calibrated analysis at Corners[0].
	Annotated *sta.Result
	// Shift and Ranks compare the two.
	Shift sta.SlackShift
	// Ranks quantifies speed-path reordering.
	Ranks sta.RankComparison
	// Graph is kept for follow-on analyses (Monte Carlo, corners).
	Graph *sta.Graph
}

// Run executes the full post-OPC timing pipeline on a netlist.
func (f *Flow) Run(n *netlist.Netlist, opt RunOptions) (*RunResult, error) {
	if opt.STA.ClockPS == 0 {
		return nil, fmt.Errorf("flow: STA clock period not set")
	}
	if len(opt.Corners) == 0 {
		opt.Corners = []litho.Corner{litho.Nominal}
	}
	root := f.Obs.Start("flow.run")
	defer root.End()
	sp := f.Obs.StartChild("flow.place", root.ID())
	pl, err := f.Place(n, opt.Place)
	sp.End()
	if err != nil {
		return nil, err
	}
	g, err := f.BuildGraph(n)
	if err != nil {
		return nil, err
	}
	sp = f.Obs.StartChild("flow.sta.drawn", root.ID())
	drawn, err := g.Analyze(opt.STA, nil)
	sp.End()
	if err != nil {
		return nil, err
	}
	// Tag critical gates from the drawn analysis.
	var tagged []string
	if opt.TagTopK > 0 {
		tagged = drawn.CriticalGates(opt.TagTopK)
	}
	extrs, err := f.ExtractGates(pl.Chip, tagged, ExtractOptions{Corners: opt.Corners, Mode: opt.Mode, Workers: opt.Workers, Batch: opt.Batch})
	if err != nil {
		return nil, err
	}
	if tagged == nil {
		for name := range extrs {
			tagged = append(tagged, name)
		}
		// Map iteration order is random; keep reports reproducible.
		sort.Strings(tagged)
	}
	sp = f.Obs.StartChild("flow.sta.annotated", root.ID())
	annotated, err := g.Analyze(opt.STA, Annotations(extrs, 0))
	sp.End()
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Netlist:     n,
		Place:       pl,
		Tagged:      tagged,
		Extractions: extrs,
		Drawn:       drawn,
		Annotated:   annotated,
		Shift:       sta.CompareSlacks(drawn, annotated),
		Ranks:       sta.CompareOrders(drawn, annotated, 5, 10),
		Graph:       g,
	}, nil
}
