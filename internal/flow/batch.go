package flow

import (
	"fmt"

	"postopc/internal/cache"
	"postopc/internal/cdx"
	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/litho"
	"postopc/internal/obs"
	"postopc/internal/par"
)

// This file is the batched window pipeline: instead of fork-joining one
// goroutine per window (par.ForEach over extractInstance / verifyTile),
// windows are grouped into batches of opt.Batch and streamed through a
// three-stage par.Pipeline —
//
//	prep:   clip → canonicalize → signature   (pure geometry, no kernels)
//	kernel: cache reservation + OPC → batched image → contour/profile
//	post:   single-flight waits + artifact → result mapping
//
// — so clipping of later batches overlaps imaging of earlier ones, and the
// kernel stage amortizes FFT plans, filter-bank lookups and scratch across
// a whole batch via litho.BatchModel.AerialBatch.
//
// Determinism: every float is produced by the same stage functions the
// per-window path runs (stages.go), batch members write into
// index-addressed slots, and batches are admitted in ascending order with
// the lowest failing batch's lowest item error returned — so batched
// output is byte-identical to the per-window path at any worker count and
// batch size, cache on or off.
//
// Cache discipline (deadlock freedom): tickets are claimed AND completed
// inside the kernel stage's Fn — a leader never crosses a channel between
// Reserve and Complete. Only non-leader (wait) tickets flow to the post
// stage; every such wait is on a leader that is actively executing a
// kernel Fn (never parked on a channel send, which happens only after its
// Fn returns), so post-stage waits always terminate. Ready hits resolve in
// place and skip the kernel work entirely.

// batchRange returns the item index range [lo, hi) of batch b over n items
// split into batches of size.
func batchRange(n, size, b int) (lo, hi int) {
	lo = b * size
	hi = lo + size
	if hi > n {
		hi = n
	}
	return lo, hi
}

// stageImageBatch rasterizes and images a set of masks, routing them
// through the verification model's batch entry point when it has one. On a
// batch-level error it falls back to imaging each window individually so
// every member surfaces exactly the error the per-window path would.
// Rasters are pooled scratch and are recycled before returning, whatever
// the outcome.
func stageImageBatch(env *stageEnv, masks [][]geom.Polygon, bounds []geom.Rect, corners []litho.Corner) ([][]*litho.Image, []error) {
	n := len(masks)
	imgs := make([][]*litho.Image, n)
	errs := make([]error, n)
	if n == 0 {
		return imgs, errs
	}
	recipe := env.Verify.Recipe()
	rasters := make([]*geom.Raster, n)
	for i := range masks {
		rasters[i] = litho.RasterizeInWindow(masks[i], bounds[i], recipe.PixelNM)
	}
	batched := false
	if bm, ok := env.Verify.(litho.BatchModel); ok {
		if out, err := bm.AerialBatch(rasters, corners); err == nil {
			copy(imgs, out)
			batched = true
		}
	}
	if !batched {
		for i := range masks {
			imgs[i], errs[i] = env.Verify.AerialSeries(rasters[i], corners)
		}
	}
	for _, r := range rasters {
		litho.RecycleRaster(r)
	}
	return imgs, errs
}

// stageWindowBatch computes the window artifacts of one batch: per-window
// OPC (identical to stageWindow's), one batched imaging call, per-window
// contour → profile. Results and errors are parallel to clips; a window
// failing OPC drops out of imaging with its own error. recs are the
// members' ledger records (parallel to clips; entries may be nil): OPC,
// contour and profile are attributed per window, while the shared imaging
// call's duration is stamped on every live member — the batch amortizes
// one kernel invocation, so each member's image_ns is the batch's.
func stageWindowBatch(env *stageEnv, clips []layout.CanonicalWindow, sites [][]layout.GateSite, corners []litho.Corner, recs []*obs.WindowRecord, parent obs.SpanID) ([]*WindowArtifact, []error) {
	n := len(clips)
	arts := make([]*WindowArtifact, n)
	errs := make([]error, n)
	masks := make([][]geom.Polygon, 0, n)
	bounds := make([]geom.Rect, 0, n)
	epeVals := make([][]float64, n)
	live := make([]int, 0, n)
	for i := range clips {
		mask, vals, err := stageWindowOPC(env, clips[i], recs[i], parent)
		if err != nil {
			errs[i] = err
			continue
		}
		epeVals[i] = vals
		masks = append(masks, mask)
		bounds = append(bounds, clips[i].Bounds)
		live = append(live, i)
	}
	sp := env.obs.StartChild("stage.image", parent)
	t0 := env.met.image.StartTimer()
	imgs, imgErrs := stageImageBatch(env, masks, bounds, corners)
	imageNS := env.met.image.TimedSince(t0)
	sp.End()
	for _, i := range live {
		recs[i].Observe(obs.StageImage, imageNS)
	}
	for k, i := range live {
		if imgErrs[k] != nil {
			errs[i] = imgErrs[k]
			continue
		}
		arts[i] = stageWindowArtifact(env, imgs[k], sites[i], corners, epeVals[i], recs[i], parent)
	}
	return arts, errs
}

// stageTileBatch is stageWindowBatch's ORC counterpart: per-tile OPC, one
// batched imaging call, per-tile pinch/bridge/pullback scans. recs follow
// stageWindowBatch's attribution.
func stageTileBatch(env *stageEnv, rects [][]geom.Rect, bounds, tiles []geom.Rect, corners []litho.Corner, scan orcScanOptions, recs []*obs.WindowRecord, parent obs.SpanID) ([]*TileArtifact, []error) {
	n := len(rects)
	arts := make([]*TileArtifact, n)
	errs := make([]error, n)
	masks := make([][]geom.Polygon, 0, n)
	mBounds := make([]geom.Rect, 0, n)
	live := make([]int, 0, n)
	for i := range rects {
		mask, err := stageTileMask(env, rects[i], recs[i], parent)
		if err != nil {
			errs[i] = err
			continue
		}
		masks = append(masks, mask)
		mBounds = append(mBounds, bounds[i])
		live = append(live, i)
	}
	sp := env.obs.StartChild("stage.image", parent)
	t0 := env.met.image.StartTimer()
	imgs, imgErrs := stageImageBatch(env, masks, mBounds, corners)
	imageNS := env.met.image.TimedSince(t0)
	sp.End()
	for _, i := range live {
		recs[i].Observe(obs.StageImage, imageNS)
	}
	for k, i := range live {
		if imgErrs[k] != nil {
			errs[i] = imgErrs[k]
			continue
		}
		arts[i] = stageTileArtifact(env, imgs[k], rects[i], tiles[i], corners, scan)
	}
	return arts, errs
}

// windowItem threads one instance's window through the pipeline stages.
// Items live in one index-addressed slice, so no stage ever depends on
// scheduling for where it reads or writes.
type windowItem struct {
	err    error
	skip   bool // prep produced the final error; no wrapping, no kernel work
	clip   layout.CanonicalWindow
	csites []layout.GateSite
	key    cache.Key
	ticket cache.Ticket
	wait   bool // non-leader ticket: resolved by the post stage
	art    *WindowArtifact
	rec    *obs.WindowRecord // ledger record (nil when no journal)
}

// extractGatesBatched is the Batch > 1 path of ExtractGates: the resolved
// instances stream through the prep → kernel → post pipeline in batches of
// opt.Batch, and results land in the same index-addressed exts slots the
// per-window path fills.
func (f *Flow) extractGatesBatched(env *stageEnv, chip *layout.Chip, insts []*layout.Instance, opt ExtractOptions, exts []*GateExtraction, parent obs.SpanID) error {
	n := len(insts)
	size := opt.Batch
	batches := (n + size - 1) / size
	items := make([]windowItem, n)
	ambit := env.Verify.Recipe().GuardNM + env.PitchNM

	stages := []par.Stage{
		{Name: "prep", Fn: func(b int) error {
			lo, hi := batchRange(n, size, b)
			for i := lo; i < hi; i++ {
				it := &items[i]
				if env.jrn != nil {
					// Worker is stamped by the kernel stage's slot; -1 marks
					// a window that never reached it (prep error).
					it.rec = &obs.WindowRecord{Index: i, Kind: "window", Class: "compute", Batch: b, Worker: -1}
				}
				inst := insts[i]
				sites := inst.GateSites()
				if len(sites) == 0 {
					it.err = fmt.Errorf("flow: instance %s has no gate sites", inst.Name)
					it.skip = true
					continue
				}
				sp := env.obs.StartChild("stage.clip", parent)
				t0 := env.met.clip.StartTimer()
				window := cdx.WindowOf(sites, ambit)
				it.clip = stageClip(chip, window)
				it.rec.Observe(obs.StageClip, env.met.clip.TimedSince(t0))
				sp.End()
				if len(it.clip.Polys) == 0 {
					it.err = fmt.Errorf("flow: no poly in window of %s", inst.Name)
					it.skip = true
					continue
				}
				sp = env.obs.StartChild("stage.canonicalize", parent)
				t0 = env.met.canonicalize.StartTimer()
				it.csites = make([]layout.GateSite, len(sites))
				for si, s := range sites {
					it.csites[si] = layout.GateSite{
						Name:    localSiteName(s.Name),
						Pin:     s.Pin,
						Kind:    s.Kind,
						Channel: s.Channel.Translate(geom.Pt(-it.clip.Origin.X, -it.clip.Origin.Y)),
					}
				}
				it.rec.Observe(obs.StageCanonicalize, env.met.canonicalize.TimedSince(t0))
				sp.End()
				if f.Cache != nil || it.rec != nil {
					it.key = windowSignature(env, it.clip, it.csites, opt.Corners)
					recordSig(it.rec, it.key)
				}
			}
			return nil
		}},
		{Name: "kernel", FnW: func(b, w int) error {
			lo, hi := batchRange(n, size, b)
			// Classify each member: ready hits resolve here and skip the
			// kernels, leaders compute below, non-leaders wait in post.
			var leaders []int
			for i := lo; i < hi; i++ {
				it := &items[i]
				if it.skip {
					continue
				}
				if it.rec != nil {
					it.rec.Worker = w
				}
				if f.Cache == nil {
					leaders = append(leaders, i)
					continue
				}
				tk := f.Cache.Reserve(it.key)
				switch {
				case tk.Leader():
					recordClass(it.rec, "miss")
					it.ticket = tk
					leaders = append(leaders, i)
				case tk.Ready():
					recordClass(it.rec, "hit")
					v, err := tk.Wait()
					art, _ := v.(*WindowArtifact)
					it.art, it.err = art, err
				default:
					recordClass(it.rec, "wait")
					it.ticket, it.wait = tk, true
				}
			}
			if len(leaders) == 0 {
				return nil
			}
			clips := make([]layout.CanonicalWindow, len(leaders))
			sites := make([][]layout.GateSite, len(leaders))
			recs := make([]*obs.WindowRecord, len(leaders))
			for k, i := range leaders {
				clips[k] = items[i].clip
				sites[k] = items[i].csites
				recs[k] = items[i].rec
			}
			arts, errs := stageWindowBatch(env, clips, sites, opt.Corners, recs, parent)
			for k, i := range leaders {
				it := &items[i]
				it.art, it.err = arts[k], errs[k]
				if f.Cache != nil {
					// Publish with the computation's own (unwrapped) error,
					// exactly as Do does; waiters wrap with their own names.
					it.ticket.Complete(it.art, it.err)
				}
			}
			return nil
		}},
		{Name: "post", Fn: func(b int) error {
			lo, hi := batchRange(n, size, b)
			for i := lo; i < hi; i++ {
				it := &items[i]
				if it.wait {
					v, err := it.ticket.Wait()
					art, _ := v.(*WindowArtifact)
					it.art, it.err = art, err
				}
				env.jrn.Record(it.rec)
				if it.err != nil {
					continue
				}
				exts[i] = &GateExtraction{
					Gate:      insts[i].Name,
					Cell:      insts[i].Cell.Name,
					Sites:     it.art.Sites,
					EPE:       it.art.EPE,
					EPEValues: it.art.EPEValues,
					Mode:      opt.Mode,
				}
			}
			// The batch's lowest-index error, wrapped exactly as the
			// per-window path wraps cachedWindow errors (prep errors are
			// already in final form).
			for i := lo; i < hi; i++ {
				if it := &items[i]; it.err != nil {
					if it.skip {
						return it.err
					}
					return fmt.Errorf("flow: window of %s: %w", insts[i].Name, it.err)
				}
			}
			return nil
		}},
	}
	return par.Pipeline(batches, stages, par.Workers(opt.Workers), par.Obs(f.Obs))
}

// tileItem threads one ORC tile through the pipeline stages.
type tileItem struct {
	err    error
	origin geom.Point
	rects  []geom.Rect
	window geom.Rect // canonical window bounds
	tile   geom.Rect // canonical interior tile
	key    cache.Key
	ticket cache.Ticket
	wait   bool
	art    *TileArtifact
	rec    *obs.WindowRecord // ledger record (nil when no journal)
}

// verifyChipBatched is the Batch > 1 path of VerifyChip: row-major tiles
// stream through the prep → kernel → post pipeline, and each tile's shard
// report lands in its index-addressed slot for the caller's deterministic
// row-major merge. Tiles whose window holds no poly produce an empty shard,
// exactly like verifyTile's early return.
func (f *Flow) verifyChipBatched(env *stageEnv, chip *layout.Chip, tiles []geom.Rect, guard geom.Coord, opt ORCOptions, scan orcScanOptions, shards []*ORCReport, parent obs.SpanID) error {
	n := len(tiles)
	size := opt.Batch
	batches := (n + size - 1) / size
	items := make([]tileItem, n)

	stages := []par.Stage{
		{Name: "prep", Fn: func(b int) error {
			lo, hi := batchRange(n, size, b)
			for i := lo; i < hi; i++ {
				it := &items[i]
				if env.jrn != nil {
					it.rec = &obs.WindowRecord{Index: i, Kind: "tile", Class: "compute", Batch: b, Worker: -1}
				}
				window := tiles[i].Expand(guard + env.PitchNM)
				sp := env.obs.StartChild("stage.clip", parent)
				t0 := env.met.clip.StartTimer()
				it.origin, it.rects = chip.CanonicalWindowRects(layout.LayerPoly, window)
				it.rec.Observe(obs.StageClip, env.met.clip.TimedSince(t0))
				sp.End()
				if len(it.rects) == 0 {
					continue // nothing drawn: an empty shard, not an error
				}
				back := geom.Pt(-it.origin.X, -it.origin.Y)
				it.window = window.Translate(back)
				it.tile = tiles[i].Translate(back)
				if f.Cache != nil || it.rec != nil {
					it.key = tileSignature(env, it.rects, it.window, it.tile, opt.Corners, scan)
					recordSig(it.rec, it.key)
				}
			}
			return nil
		}},
		{Name: "kernel", FnW: func(b, w int) error {
			lo, hi := batchRange(n, size, b)
			var leaders []int
			for i := lo; i < hi; i++ {
				it := &items[i]
				if len(it.rects) == 0 {
					continue
				}
				if it.rec != nil {
					it.rec.Worker = w
				}
				if f.Cache == nil {
					leaders = append(leaders, i)
					continue
				}
				tk := f.Cache.Reserve(it.key)
				switch {
				case tk.Leader():
					recordClass(it.rec, "miss")
					it.ticket = tk
					leaders = append(leaders, i)
				case tk.Ready():
					recordClass(it.rec, "hit")
					v, err := tk.Wait()
					art, _ := v.(*TileArtifact)
					it.art, it.err = art, err
				default:
					recordClass(it.rec, "wait")
					it.ticket, it.wait = tk, true
				}
			}
			if len(leaders) == 0 {
				return nil
			}
			rects := make([][]geom.Rect, len(leaders))
			bounds := make([]geom.Rect, len(leaders))
			interiors := make([]geom.Rect, len(leaders))
			recs := make([]*obs.WindowRecord, len(leaders))
			for k, i := range leaders {
				rects[k] = items[i].rects
				bounds[k] = items[i].window
				interiors[k] = items[i].tile
				recs[k] = items[i].rec
			}
			arts, errs := stageTileBatch(env, rects, bounds, interiors, opt.Corners, scan, recs, parent)
			for k, i := range leaders {
				it := &items[i]
				it.art, it.err = arts[k], errs[k]
				if f.Cache != nil {
					it.ticket.Complete(it.art, it.err)
				}
			}
			return nil
		}},
		{Name: "post", Fn: func(b int) error {
			lo, hi := batchRange(n, size, b)
			for i := lo; i < hi; i++ {
				it := &items[i]
				if it.wait {
					v, err := it.ticket.Wait()
					art, _ := v.(*TileArtifact)
					it.art, it.err = art, err
				}
				env.jrn.Record(it.rec)
				shard := &ORCReport{ByKind: map[HotspotKind]int{}}
				shards[i] = shard
				if it.err != nil || it.art == nil {
					continue
				}
				shard.ScannedCDs += it.art.ScannedCDs
				for _, h := range it.art.Hotspots {
					h.At = geom.Pt(h.At.X+it.origin.X, h.At.Y+it.origin.Y)
					h.Gate = nearestInstance(chip, h.At)
					shard.add(h)
				}
			}
			for i := lo; i < hi; i++ {
				if items[i].err != nil {
					return items[i].err
				}
			}
			return nil
		}},
	}
	return par.Pipeline(batches, stages, par.Workers(opt.Workers), par.Obs(f.Obs))
}
