package flow

// Determinism matrix for the batched window pipeline (batch.go): batched
// extraction and ORC must be byte-identical to the per-window fork-join at
// every combination of worker count, batch size, and cache state. Run with
// -race to exercise the pipeline's synchronization (see `make check`).

import (
	"reflect"
	"runtime"
	"testing"

	"postopc/internal/litho"
	"postopc/internal/netlist"
	"postopc/internal/obs"
	"postopc/internal/place"
)

// batchMatrix is the (workers, batch) sweep of the determinism tests.
func batchMatrix() (workers, sizes []int) {
	return []int{1, 2, runtime.GOMAXPROCS(0)}, []int{2, 3, 16}
}

// TestExtractGatesBatchedMatchesPerWindow pins the tentpole contract for
// extraction: batched results equal the per-window path bit-for-bit at any
// worker count and batch size, cache on and off.
func TestExtractGatesBatchedMatchesPerWindow(t *testing.T) {
	design := netlist.InverterChain(8)
	ref := fastFlow(t)
	pl, err := ref.Place(design, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.ExtractGates(pl.Chip, nil, ExtractOptions{Mode: OPCModel, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	workers, sizes := batchMatrix()
	for _, cached := range []bool{false, true} {
		f := fastFlow(t)
		if cached {
			f.EnableCache(0)
		}
		for _, w := range workers {
			for _, size := range sizes {
				got, err := f.ExtractGates(pl.Chip, nil, ExtractOptions{Mode: OPCModel, Workers: w, Batch: size})
				if err != nil {
					t.Fatalf("cached=%v workers=%d batch=%d: %v", cached, w, size, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("cached=%v workers=%d batch=%d: batched extraction diverged from per-window",
						cached, w, size)
				}
			}
		}
	}
}

// TestVerifyChipBatchedMatchesPerTile pins the tentpole contract for ORC:
// the batched tile pipeline reproduces the per-tile report exactly,
// including hotspot order, at every matrix point.
func TestVerifyChipBatchedMatchesPerTile(t *testing.T) {
	f0 := fastFlow(t)
	pl, err := f0.Place(netlist.InverterChain(4), place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt := ORCOptions{
		Corners: []litho.Corner{{DefocusNM: 0, Dose: 1.8}, litho.Nominal},
		Mode:    OPCNone,
		TileNM:  3000, // several tiles even on the small test chip
		Workers: 1,
	}
	want, err := f0.VerifyChip(pl.Chip, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Hotspots) == 0 || want.Tiles < 2 {
		t.Fatalf("fixture too weak: %d hotspots over %d tiles", len(want.Hotspots), want.Tiles)
	}
	workers, sizes := batchMatrix()
	for _, cached := range []bool{false, true} {
		f := fastFlow(t)
		if cached {
			f.EnableCache(0)
		}
		for _, w := range workers {
			for _, size := range sizes {
				o := opt
				o.Workers, o.Batch = w, size
				got, err := f.VerifyChip(pl.Chip, o)
				if err != nil {
					t.Fatalf("cached=%v workers=%d batch=%d: %v", cached, w, size, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("cached=%v workers=%d batch=%d: batched ORC report diverged:\nwant %+v\ngot  %+v",
						cached, w, size, want, got)
				}
			}
		}
	}
}

// TestBatchedCacheSingleFlight checks the Reserve-based kernel stage keeps
// the cache single-flight: however many workers race over a batched run,
// each unique window signature is computed exactly once (the per-window
// serial run's miss count), and a second batched pass recomputes nothing.
func TestBatchedCacheSingleFlight(t *testing.T) {
	design := netlist.InverterChain(8)
	serial := fastFlow(t).EnableCache(0)
	pl, err := serial.Place(design, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := serial.ExtractGates(pl.Chip, nil, ExtractOptions{Mode: OPCModel, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	unique := serial.CacheStats().Misses
	if unique == 0 {
		t.Fatal("fixture broken: serial cached run missed nothing")
	}
	workers, sizes := batchMatrix()
	for _, w := range workers {
		for _, size := range sizes {
			f := fastFlow(t).EnableCache(0)
			opt := ExtractOptions{Mode: OPCModel, Workers: w, Batch: size}
			if _, err := f.ExtractGates(pl.Chip, nil, opt); err != nil {
				t.Fatal(err)
			}
			st := f.CacheStats()
			if st.Misses != unique {
				t.Fatalf("workers=%d batch=%d: %d misses, want %d (single-flight violated)",
					w, size, st.Misses, unique)
			}
			if _, err := f.ExtractGates(pl.Chip, nil, opt); err != nil {
				t.Fatal(err)
			}
			if st := f.CacheStats(); st.Misses != unique {
				t.Fatalf("workers=%d batch=%d: second pass recomputed (%d misses, want %d)",
					w, size, st.Misses, unique)
			}
		}
	}
}

// TestBatchedPipelinePoolBalance runs batched extraction and ORC with the
// litho scratch pools instrumented and asserts every borrow was returned —
// the batched image stage hands rasters and kernel scratch back exactly
// like the per-window path.
func TestBatchedPipelinePoolBalance(t *testing.T) {
	sink := obs.NewSink()
	litho.InstrumentPools(sink)
	defer litho.InstrumentPools(nil)

	f := fastFlow(t).EnableCache(0)
	f.Obs = sink
	pl, err := f.Place(netlist.InverterChain(6), place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt := ExtractOptions{Mode: OPCModel, Workers: 2, Batch: 3}
	if _, err := f.ExtractGates(pl.Chip, nil, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := f.VerifyChip(pl.Chip, ORCOptions{
		Corners: []litho.Corner{{DefocusNM: 0, Dose: 1.8}},
		TileNM:  3000,
		Workers: 2,
		Batch:   3,
	}); err != nil {
		t.Fatal(err)
	}
	borrows := sink.Counter("litho.pool_borrows_total").Value()
	returns := sink.Counter("litho.pool_returns_total").Value()
	if borrows == 0 {
		t.Fatal("pools saw no traffic: instrumentation or batching broken")
	}
	if borrows != returns {
		t.Fatalf("pool borrow/return imbalance under the batched pipeline: %d borrowed, %d returned",
			borrows, returns)
	}
}

// TestBatchedErrorParity: a batch member that fails in prep surfaces the
// same error, and the same lowest-index-wins choice, as the per-window
// path.
func TestBatchedErrorParity(t *testing.T) {
	f := fastFlow(t)
	pl, err := f.Place(netlist.InverterChain(4), place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// An instance without gate sites (a fill/tap cell) makes prep fail for
	// exactly one window.
	var bad string
	for i := range pl.Chip.Instances {
		if in := &pl.Chip.Instances[i]; len(in.Cell.Gates) == 0 {
			bad = in.Name
			break
		}
	}
	if bad == "" {
		t.Skip("no gateless instance on the fixture chip")
	}
	names := []string{"u1", bad, "u2"}
	_, wantErr := f.ExtractGates(pl.Chip, names, ExtractOptions{Mode: OPCNone, Workers: 1})
	if wantErr == nil {
		t.Fatal("per-window path accepted a gateless instance")
	}
	workers, sizes := batchMatrix()
	for _, w := range workers {
		for _, size := range sizes {
			_, gotErr := f.ExtractGates(pl.Chip, names, ExtractOptions{Mode: OPCNone, Workers: w, Batch: size})
			if gotErr == nil || gotErr.Error() != wantErr.Error() {
				t.Fatalf("workers=%d batch=%d: error = %v, want %v", w, size, gotErr, wantErr)
			}
		}
	}
}
