package flow

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"postopc/internal/litho"
	"postopc/internal/netlist"
	"postopc/internal/pdk"
	"postopc/internal/place"
	"postopc/internal/sta"
)

func newFastFlow(t *testing.T) *Flow {
	t.Helper()
	f, err := New(pdk.N90(), Config{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// renderRun serializes a pipeline result to full float precision: two runs
// agree on this string iff they agree bit-for-bit on every reported value.
func renderRun(res *RunResult) string {
	var b strings.Builder
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	fmt.Fprintf(&b, "WNS drawn=%s annotated=%s mean-shift=%s\n",
		g(res.Drawn.WNS), g(res.Annotated.WNS), g(res.Shift.MeanAbsShiftPS))
	for _, name := range res.Tagged {
		ext := res.Extractions[name]
		fmt.Fprintf(&b, "%s cell=%s mode=%s epe.max=%s\n", name, ext.Cell, ext.Mode, g(ext.EPE.MaxAbs))
		for _, s := range ext.Sites {
			fmt.Fprintf(&b, "  %s drawn=%s", s.LocalName, g(s.DrawnL))
			for _, cc := range s.PerCorner {
				fmt.Fprintf(&b, " [cd=%s nu=%s del=%s leak=%s printed=%v]",
					g(cc.MeanCD), g(cc.Nonuniformity), g(cc.DelayEL), g(cc.LeakEL), cc.Printed)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestRunCacheDeterminism is the tentpole's hard requirement: flow.Run must
// render byte-identically with the cache on and off, at one, four, and
// GOMAXPROCS workers.
func TestRunCacheDeterminism(t *testing.T) {
	design := netlist.InverterChain(8)
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	var want string
	for _, cached := range []bool{false, true} {
		for _, workers := range workerCounts {
			f := newFastFlow(t)
			if cached {
				f.EnableCache(0)
			}
			res, err := f.Run(design, RunOptions{
				STA:     sta.DefaultConfig(1500),
				Mode:    OPCModel,
				Workers: workers,
			})
			if err != nil {
				t.Fatalf("cached=%v workers=%d: %v", cached, workers, err)
			}
			got := renderRun(res)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("cached=%v workers=%d rendered differently:\n--- want ---\n%s--- got ---\n%s",
					cached, workers, want, got)
			}
			if cached {
				if st := f.CacheStats(); st.Hits+st.Waits == 0 {
					t.Fatalf("cached=%v workers=%d: no cache reuse on a repeated-context chain (stats %+v)",
						cached, workers, st)
				}
			}
		}
	}
}

// TestCacheSharesRepeatedContexts: two instances of the same cell in the
// same neighbourhood must recall one artifact, not simulate twice.
func TestCacheSharesRepeatedContexts(t *testing.T) {
	f := newFastFlow(t)
	f.EnableCache(0)
	n := netlist.InverterChain(6)
	pl, err := f.Place(n, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The placer rows up three inverters per row; u1 and u2 sit in the
	// same row at different x with identical neighbourhoods, so their
	// canonical windows are byte-equal.
	a, err := f.ExtractInstance(pl.Chip, pl.Chip.FindInstance("u1"), ExtractOptions{Mode: OPCModel})
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.ExtractInstance(pl.Chip, pl.Chip.FindInstance("u2"), ExtractOptions{Mode: OPCModel})
	if err != nil {
		t.Fatal(err)
	}
	if a.Gate == b.Gate {
		t.Fatal("fixture broken: extracted the same instance twice")
	}
	if len(a.Sites) == 0 || &a.Sites[0] != &b.Sites[0] {
		t.Fatalf("u1/u2 windows did not share one artifact (stats %+v)", f.CacheStats())
	}
	if st := f.CacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want exactly one miss then one hit", st)
	}
}

// TestVerifyChipCachedMatchesUncached: tiled ORC must produce an identical
// report with the cache attached.
func TestVerifyChipCachedMatchesUncached(t *testing.T) {
	design := netlist.InverterChain(8)
	run := func(f *Flow) *ORCReport {
		t.Helper()
		pl, err := f.Place(design, place.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Small tiles force several windows on this die; the overdose
		// corner guarantees scan work in each.
		rep, err := f.VerifyChip(pl.Chip, ORCOptions{
			TileNM:  2000,
			Corners: []litho.Corner{{DefocusNM: 0, Dose: 1.35}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := run(newFastFlow(t))
	cachedF := newFastFlow(t).EnableCache(0)
	cached := run(cachedF)
	if plain.Tiles != cached.Tiles || plain.ScannedCDs != cached.ScannedCDs ||
		len(plain.Hotspots) != len(cached.Hotspots) {
		t.Fatalf("reports differ: %+v vs %+v", plain, cached)
	}
	for i := range plain.Hotspots {
		if plain.Hotspots[i] != cached.Hotspots[i] {
			t.Fatalf("hotspot %d differs: %+v vs %+v", i, plain.Hotspots[i], cached.Hotspots[i])
		}
	}
	if st := cachedF.CacheStats(); st.Lookups() == 0 {
		t.Fatalf("ORC made no cache lookups: %+v", st)
	}
}

// TestSelectiveSweepCached: the sweep's overlapping taggings must be
// incremental under the cache, and its results identical to the uncached
// sweep.
func TestSelectiveSweepCached(t *testing.T) {
	design := netlist.RippleCarryAdder(2)
	run := func(f *Flow) *SelectiveResult {
		t.Helper()
		pl, err := f.Place(design, place.Options{})
		if err != nil {
			t.Fatal(err)
		}
		g, err := f.BuildGraph(design)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sta.DefaultConfig(1500)
		cfg.KPaths = 10
		drawn, err := g.Analyze(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.SelectiveSweep(pl.Chip, g, drawn, cfg, SelectiveOptions{Ks: []int{0, 1, 2}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(newFastFlow(t))
	cachedF := newFastFlow(t).EnableCache(0)
	cached := run(cachedF)

	if len(plain.Steps) != len(cached.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(plain.Steps), len(cached.Steps))
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i := range plain.Steps {
		p, c := plain.Steps[i], cached.Steps[i]
		if g(p.WNS) != g(c.WNS) || g(p.MeanAbsCDErrNM) != g(c.MeanAbsCDErrNM) || len(p.Tagged) != len(c.Tagged) {
			t.Fatalf("step %d differs: %+v vs %+v", i, p, c)
		}
	}
	if g(plain.FullWNS) != g(cached.FullWNS) {
		t.Fatalf("full-OPC WNS differs: %v vs %v", plain.FullWNS, cached.FullWNS)
	}
	st := cachedF.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("sweep produced no cache hits: %+v", st)
	}
	// Every gate tagged at K=1 is tagged again at K=2 and extracted across
	// the baseline/full passes; the sweep must be mostly recall.
	if st.HitRate() < 0.3 {
		t.Fatalf("sweep hit rate %.2f too low for overlapping taggings: %+v", st.HitRate(), st)
	}
}
