package flow

import (
	"postopc/internal/cache"
	"postopc/internal/report"
)

// CacheStatsTable renders pattern-cache counters as a report table, for CLI
// and example output.
func CacheStatsTable(st cache.Stats) *report.Table {
	tb := report.NewTable("pattern cache",
		"lookups", "hits", "waits", "misses", "hit rate", "evictions", "entries")
	tb.AddF(3, st.Lookups(), st.Hits, st.Waits, st.Misses, st.HitRate(), st.Evictions, st.Entries)
	return tb
}
