package flow

import (
	"bytes"
	"strings"
	"testing"

	"postopc/internal/cache"
)

// TestCacheStatsTableZeroLookups: rendering the stats of an idle cache (the
// -cache flag given but nothing extracted yet) must print a 0.000 hit rate,
// never NaN — Stats.HitRate guards the zero-lookup division and the table
// must preserve that.
func TestCacheStatsTableZeroLookups(t *testing.T) {
	var buf bytes.Buffer
	CacheStatsTable(cache.Stats{}).Fprint(&buf)
	out := buf.String()
	if strings.Contains(out, "NaN") {
		t.Fatalf("zero-stats table renders NaN:\n%s", out)
	}
	if !strings.Contains(out, "0.000") {
		t.Fatalf("zero-stats table missing 0.000 hit rate:\n%s", out)
	}
	buf.Reset()
	CacheStatsTable(cache.New(16).Stats()).Fprint(&buf)
	if out := buf.String(); strings.Contains(out, "NaN") {
		t.Fatalf("fresh-store table renders NaN:\n%s", out)
	}
}
