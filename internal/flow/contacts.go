package flow

import (
	"fmt"

	"postopc/internal/cdx"
	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/litho"
	"postopc/internal/sta"
	"postopc/internal/timinglib"
)

// Multi-layer extraction — the companion paper's proposed extension: the
// contact (dark-field) layer is imaged too, printed contact areas are
// extracted per instance, and the resulting contact resistances are folded
// into the back-annotated timing model alongside the poly-layer effective
// lengths.

// ContactCD is one printed contact measurement.
type ContactCD struct {
	// Center of the drawn contact (chip nm).
	Center geom.Point
	// DrawnNM is the drawn contact size.
	DrawnNM float64
	// WNM, HNM are the printed x/y dimensions (0 when unprinted).
	WNM, HNM float64
	// AreaRatio is printed/drawn area (0 when unprinted).
	AreaRatio float64
	// Printed reports whether the contact opened at all.
	Printed bool
}

// ContactExtraction is the contact-layer view of one instance.
type ContactExtraction struct {
	// Gate is the instance name.
	Gate string
	// Contacts are the instance's measured cuts.
	Contacts []ContactCD
	// MeanAreaRatio averages the printed contacts' area ratios.
	MeanAreaRatio float64
	// Failed counts unopened contacts.
	Failed int
}

// contactModel builds the dark-field Abbe model exactly once (contacts are
// always verified with the physical model; the fitted Gaussian is a
// clear-field poly model). Safe for concurrent callers.
func (f *Flow) contactModel() (litho.Model, error) {
	f.lazy.contactOnce.Do(func() {
		f.lazy.contact, f.lazy.contactErr = litho.NewAbbe(f.PDK.ContactLitho())
	})
	return f.lazy.contact, f.lazy.contactErr
}

// ExtractContacts images the contact layer around one instance and
// measures every printed cut at the given corner.
func (f *Flow) ExtractContacts(chip *layout.Chip, inst *layout.Instance, corner litho.Corner) (*ContactExtraction, error) {
	m, err := f.contactModel()
	if err != nil {
		return nil, err
	}
	recipe := m.Recipe()
	cuts := inst.TransformRectAll(inst.Cell.ShapesOn(layout.LayerContact))
	if len(cuts) == 0 {
		return nil, fmt.Errorf("flow: instance %s has no contacts", inst.Name)
	}
	window := cdx.WindowOf(sitesOf(cuts), recipe.GuardNM+f.PDK.Rules.PolyPitchNM)
	var polys []geom.Polygon
	for _, r := range chip.WindowShapes(layout.LayerContact, window) {
		polys = append(polys, r.Polygon())
	}
	raster := litho.RasterizeInWindow(polys, window, recipe.PixelNM)
	im, err := m.Aerial(raster, corner)
	if err != nil {
		return nil, err
	}
	th := recipe.EffectiveThreshold(corner)
	out := &ContactExtraction{Gate: inst.Name}
	var ratioSum float64
	printed := 0
	for _, cut := range cuts {
		c := ContactCD{Center: cut.Center(), DrawnNM: float64(cut.W())}
		cx, cy := float64(c.Center.X), float64(c.Center.Y)
		half := float64(f.PDK.Rules.ContactNM) * 1.6
		rx := im.MeasureCD(litho.AxisX, cy, cx-half, cx+half, cx, th, recipe.Polarity)
		ry := im.MeasureCD(litho.AxisY, cx, cy-half, cy+half, cy, th, recipe.Polarity)
		if rx.OK && ry.OK {
			c.WNM, c.HNM = rx.CD, ry.CD
			c.AreaRatio = (rx.CD * ry.CD) / (c.DrawnNM * float64(cut.H()))
			c.Printed = true
			ratioSum += c.AreaRatio
			printed++
		} else {
			out.Failed++
		}
		out.Contacts = append(out.Contacts, c)
	}
	if printed > 0 {
		out.MeanAreaRatio = ratioSum / float64(printed)
	}
	return out, nil
}

func sitesOf(rects []geom.Rect) []layout.GateSite {
	out := make([]layout.GateSite, len(rects))
	for i, r := range rects {
		out[i] = layout.GateSite{Channel: r}
	}
	return out
}

// WithContacts layers contact-resistance annotations over an existing
// per-gate annotation set: each gate's devices get
// RContact = Rc0 / areaRatio from its contact extraction. Gates absent
// from cext keep ideal contacts. Unopened contacts clamp the ratio to
// minRatio (an open contact is a yield event, not a timing annotation).
func (f *Flow) WithContacts(ann sta.Annotations, cext map[string]*ContactExtraction) sta.Annotations {
	const minRatio = 0.25
	rc0 := f.PDK.Device.RContactOhm
	out := sta.Annotations{}
	for gate, base := range ann {
		out[gate] = base
	}
	for gate, ce := range cext {
		ratio := ce.MeanAreaRatio
		if ratio <= minRatio {
			ratio = minRatio
		}
		rc := rc0 / ratio
		base := out[gate]
		out[gate] = wrapWithContact(base, rc)
	}
	return out
}

func wrapWithContact(base timinglib.Annotator, rcOhm float64) timinglib.Annotator {
	return func(site layout.GateSite) timinglib.Lengths {
		var l timinglib.Lengths
		if base != nil {
			l = base(site)
		} else {
			l = timinglib.Drawn(site)
		}
		l.RContactOhm = rcOhm
		return l
	}
}
