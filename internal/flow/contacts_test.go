package flow

import (
	"testing"

	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/litho"
	"postopc/internal/netlist"
	"postopc/internal/place"
	"postopc/internal/sta"
)

func TestExtractContactsNominal(t *testing.T) {
	f := fastFlow(t)
	pl, err := f.Place(netlist.InverterChain(3), place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inst := pl.Chip.FindInstance("u1")
	ce, err := f.ExtractContacts(pl.Chip, inst, litho.Nominal)
	if err != nil {
		t.Fatal(err)
	}
	if len(ce.Contacts) != len(inst.Cell.ShapesOn(contactLayer())) {
		t.Fatalf("measured %d contacts", len(ce.Contacts))
	}
	if ce.Failed != 0 {
		t.Fatalf("%d contacts failed to open at nominal", ce.Failed)
	}
	// Printed contacts land near drawn size at nominal.
	if ce.MeanAreaRatio < 0.8 || ce.MeanAreaRatio > 1.25 {
		t.Fatalf("mean area ratio %.3f implausible at nominal", ce.MeanAreaRatio)
	}
	for _, c := range ce.Contacts {
		if !c.Printed || c.WNM < 90 || c.WNM > 150 || c.HNM < 90 || c.HNM > 150 {
			t.Fatalf("contact %+v out of plausible print range", c)
		}
	}
}

func TestExtractContactsDefocusShrinks(t *testing.T) {
	f := fastFlow(t)
	pl, err := f.Place(netlist.InverterChain(3), place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inst := pl.Chip.FindInstance("u1")
	nom, err := f.ExtractContacts(pl.Chip, inst, litho.Nominal)
	if err != nil {
		t.Fatal(err)
	}
	def, err := f.ExtractContacts(pl.Chip, inst, litho.Corner{DefocusNM: f.PDK.Window.DefocusNM, Dose: 1})
	if err != nil {
		t.Fatal(err)
	}
	if def.MeanAreaRatio >= nom.MeanAreaRatio {
		t.Fatalf("defocus should shrink contacts: %.3f -> %.3f",
			nom.MeanAreaRatio, def.MeanAreaRatio)
	}
}

func TestWithContactsSlowsTiming(t *testing.T) {
	f := fastFlow(t)
	n := netlist.InverterChain(6)
	pl, err := f.Place(n, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := f.BuildGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sta.DefaultConfig(2000)
	base, err := g.Analyze(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Extract contacts at heavy defocus (shrunken cuts, higher R).
	cext := map[string]*ContactExtraction{}
	for _, gate := range n.Gates {
		inst := pl.Chip.FindInstance(gate.Name)
		ce, err := f.ExtractContacts(pl.Chip, inst, litho.Corner{DefocusNM: 120, Dose: 1})
		if err != nil {
			t.Fatal(err)
		}
		cext[gate.Name] = ce
	}
	ann := f.WithContacts(sta.Annotations{}, cext)
	withRc, err := g.Analyze(cfg, ann)
	if err != nil {
		t.Fatal(err)
	}
	if withRc.WNS >= base.WNS {
		t.Fatalf("contact resistance must slow the chain: %.2f vs %.2f", withRc.WNS, base.WNS)
	}
	// The effect is a perturbation, not a blow-up.
	if base.WNS-withRc.WNS > 0.2*(cfg.ClockPS-base.WNS) {
		t.Fatalf("contact derate implausibly large: %.2f -> %.2f", base.WNS, withRc.WNS)
	}
}

func TestWithContactsClampsOpenContacts(t *testing.T) {
	f := fastFlow(t)
	cext := map[string]*ContactExtraction{
		"u0": {Gate: "u0", MeanAreaRatio: 0.01}, // nearly open
	}
	ann := f.WithContacts(sta.Annotations{}, cext)
	l := ann["u0"](fakeSite())
	maxRc := f.PDK.Device.RContactOhm / 0.25
	if l.RContactOhm > maxRc+1e-9 {
		t.Fatalf("contact R %.1f exceeds clamp %.1f", l.RContactOhm, maxRc)
	}
	if l.DelayL != float64(fakeSite().L()) {
		t.Fatal("base annotation (drawn) lost")
	}
}

func contactLayer() layout.Layer { return layout.LayerContact }

func fakeSite() layout.GateSite {
	return layout.GateSite{Name: "MN0_0", Kind: layout.NMOS, Channel: geom.R(0, 0, 90, 520)}
}
