package flow

import (
	"fmt"
	"sort"
	"strings"

	"postopc/internal/cdx"
	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/litho"
	"postopc/internal/opc"
	"postopc/internal/par"
)

// CornerCD is one gate site's extraction under one process corner.
type CornerCD struct {
	// Corner is the process condition.
	Corner litho.Corner
	// MeanCD is the average printed channel length (nm).
	MeanCD float64
	// Nonuniformity is max−min CD across the gate width (nm).
	Nonuniformity float64
	// DelayEL and LeakEL are the equivalent lengths (nm).
	DelayEL, LeakEL float64
	// Printed is false when any slice failed (pinched gate).
	Printed bool
}

// SiteCD is the extraction of one transistor across all corners.
type SiteCD struct {
	// LocalName is the cell-local device name ("MN0_0").
	LocalName string
	// Kind is NMOS or PMOS.
	Kind layout.DeviceKind
	// DrawnL is the drawn channel length (nm).
	DrawnL float64
	// PerCorner holds one entry per requested corner, in order.
	PerCorner []CornerCD
}

// GateExtraction is the post-OPC extraction of one placed gate instance.
type GateExtraction struct {
	// Gate is the instance (and netlist gate) name.
	Gate string
	// Cell is the library cell.
	Cell string
	// Sites are the instance's transistors.
	Sites []SiteCD
	// EPE is the residual-EPE report of the window's OPC run at nominal
	// (zero-valued for OPCNone).
	EPE opc.EPEStats
	// EPEValues are the raw interior EPE samples behind EPE (nm), for
	// histogramming.
	EPEValues []float64
	// Mode records the OPC applied.
	Mode OPCMode
}

// ExtractOptions configure window extraction.
type ExtractOptions struct {
	// Corners are the process conditions to extract (default: Nominal).
	Corners []litho.Corner
	// Mode selects the OPC applied to each window.
	Mode OPCMode
	// Workers bounds instance-level concurrency in ExtractGates
	// (0 = GOMAXPROCS, 1 = serial).
	Workers int
}

// ExtractInstance runs the window pipeline for one placed instance:
// clip → OPC → aerial series → CD extraction → equivalent lengths.
func (f *Flow) ExtractInstance(chip *layout.Chip, inst *layout.Instance, opt ExtractOptions) (*GateExtraction, error) {
	if len(opt.Corners) == 0 {
		opt.Corners = []litho.Corner{litho.Nominal}
	}
	sites := inst.GateSites()
	if len(sites) == 0 {
		return nil, fmt.Errorf("flow: instance %s has no gate sites", inst.Name)
	}
	recipe := f.VerifySim.Recipe()
	ambit := recipe.GuardNM + f.PDK.Rules.PolyPitchNM
	window := cdx.WindowOf(sites, ambit)

	// Drawn poly in the window, as polygons.
	var drawn []geom.Polygon
	for _, r := range chip.WindowShapes(layout.LayerPoly, window) {
		drawn = append(drawn, r.Polygon())
	}
	if len(drawn) == 0 {
		return nil, fmt.Errorf("flow: no poly in window of %s", inst.Name)
	}

	out := &GateExtraction{Gate: inst.Name, Cell: inst.Cell.Name, Mode: opt.Mode}
	mask := drawn
	switch opt.Mode {
	case OPCNone:
		// Image the drawn layout.
	case OPCRule:
		rt, err := f.ruleTable()
		if err != nil {
			return nil, err
		}
		var ctx geom.Region
		for _, pg := range drawn {
			ctx = append(ctx, geom.RegionFromPolygon(pg)...)
		}
		ctx = ctx.Normalize()
		corrected, err := opc.RuleBased(drawn, ctx, rt, f.OPCOpt.Fragment, 4*f.PDK.Rules.PolyPitchNM)
		if err != nil {
			return nil, fmt.Errorf("flow: rule OPC on %s: %w", inst.Name, err)
		}
		mask = corrected
		// Report residual EPE of the rule-corrected mask at nominal,
		// ignoring window-boundary clipping artifacts.
		frags, epes, err := f.verifyEPE(corrected, drawn)
		if err != nil {
			return nil, err
		}
		out.EPEValues, err = interiorEPEs(frags, epes, window.Expand(-recipe.GuardNM))
		if err != nil {
			return nil, fmt.Errorf("flow: rule OPC on %s: %w", inst.Name, err)
		}
		out.EPE = opc.SummarizeEPE(out.EPEValues, 8)
	case OPCModel:
		res, err := opc.ModelBased(f.OPCModelSim, drawn, nil, f.OPCOpt)
		if err != nil {
			return nil, fmt.Errorf("flow: model OPC on %s: %w", inst.Name, err)
		}
		mask = res.Polygons
		out.EPEValues, err = interiorEPEs(res.Fragmented, res.FinalEPE, window.Expand(-recipe.GuardNM))
		if err != nil {
			return nil, fmt.Errorf("flow: model OPC on %s: %w", inst.Name, err)
		}
		out.EPE = opc.SummarizeEPE(out.EPEValues, 8)
	}

	raster := litho.RasterizeInWindow(mask, window, recipe.PixelNM)
	imgs, err := f.VerifySim.AerialSeries(raster, opt.Corners)
	if err != nil {
		return nil, fmt.Errorf("flow: imaging window of %s: %w", inst.Name, err)
	}

	cdxOpt := cdx.Options{Slices: f.CDX.Slices, ScanHalfNM: f.CDX.ScanHalfNM, EdgeMarginNM: f.CDX.EdgeMarginNM}
	for _, site := range sites {
		local := localSiteName(site.Name)
		sc := SiteCD{LocalName: local, Kind: site.Kind, DrawnL: float64(site.L())}
		for ci, corner := range opt.Corners {
			th := recipe.EffectiveThreshold(corner)
			g := cdx.ExtractGate(imgs[ci], site, th, recipe.Polarity, cdxOpt)
			cc := CornerCD{
				Corner:        corner,
				MeanCD:        g.MeanCD(),
				Nonuniformity: g.Nonuniformity(),
				Printed:       g.Printed,
			}
			if cds := g.CDs(); len(cds) > 0 {
				d, l, err := f.Dev.EquivalentLengths(site.Kind, cds)
				if err == nil {
					cc.DelayEL, cc.LeakEL = d, l
				} else {
					cc.Printed = false
				}
			}
			sc.PerCorner = append(sc.PerCorner, cc)
		}
		out.Sites = append(out.Sites, sc)
	}
	return out, nil
}

// verifyEPE measures residual EPE of a corrected mask against drawn targets
// using the OPC model at nominal.
func (f *Flow) verifyEPE(corrected, drawn []geom.Polygon) ([]*opc.FragmentedPolygon, []float64, error) {
	var targets []*opc.FragmentedPolygon
	for _, pg := range drawn {
		fp, err := opc.Fragmentize(pg, f.OPCOpt.Fragment)
		if err != nil {
			return nil, nil, err
		}
		targets = append(targets, fp)
	}
	epes, _, err := opc.Verify(f.OPCModelSim, corrected, nil, targets, litho.Nominal, 8)
	return targets, epes, err
}

// interiorEPEs keeps only the EPE samples whose fragment control point lies
// inside the interior rectangle: fragments created by clipping shapes at
// the simulation-window boundary measure the clear-field roll-off, not OPC
// quality. A sample/fragment count mismatch is an explicit error — EPE
// statistics must never be quietly computed over a truncated sample set.
func interiorEPEs(frags []*opc.FragmentedPolygon, epes []float64, interior geom.Rect) ([]float64, error) {
	total := 0
	for _, fp := range frags {
		total += len(fp.Frags)
	}
	if total != len(epes) {
		return nil, fmt.Errorf("%d EPE samples for %d fragments", len(epes), total)
	}
	var out []float64
	i := 0
	for _, fp := range frags {
		for _, fr := range fp.Frags {
			if interior.Contains(fr.Control) {
				out = append(out, epes[i])
			}
			i++
		}
	}
	return out, nil
}

// ExtractGates runs ExtractInstance for the named gates (or all netlist
// gates when names is nil). Results are keyed by instance name.
func (f *Flow) ExtractGates(chip *layout.Chip, names []string, opt ExtractOptions) (map[string]*GateExtraction, error) {
	if names == nil {
		for i := range chip.Instances {
			in := &chip.Instances[i]
			if len(in.Cell.Gates) > 0 && !strings.HasPrefix(in.Name, "fill") {
				names = append(names, in.Name)
			}
		}
	}
	sort.Strings(names)
	// Resolve instances up front (and build the chip index once) so the
	// parallel workers only read shared state.
	insts := make([]*layout.Instance, len(names))
	for i, name := range names {
		inst := chip.FindInstance(name)
		if inst == nil {
			return nil, fmt.Errorf("flow: instance %s not found on chip", name)
		}
		insts[i] = inst
	}
	chip.BuildIndex()
	if opt.Mode == OPCRule {
		if _, err := f.ruleTable(); err != nil {
			return nil, err
		}
	}

	exts := make([]*GateExtraction, len(names))
	err := par.ForEach(len(names), func(i int) error {
		ext, err := f.ExtractInstance(chip, insts[i], opt)
		if err != nil {
			return err
		}
		exts[i] = ext
		return nil
	}, par.Workers(opt.Workers))
	if err != nil {
		return nil, err
	}
	out := make(map[string]*GateExtraction, len(names))
	for i, name := range names {
		out[name] = exts[i]
	}
	return out, nil
}

func localSiteName(qualified string) string {
	if i := strings.LastIndex(qualified, "/"); i >= 0 {
		return qualified[i+1:]
	}
	return qualified
}
