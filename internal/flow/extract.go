package flow

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"postopc/internal/cdx"
	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/litho"
	"postopc/internal/obs"
	"postopc/internal/opc"
	"postopc/internal/par"
)

// CornerCD is one gate site's extraction under one process corner.
type CornerCD struct {
	// Corner is the process condition.
	Corner litho.Corner
	// MeanCD is the average printed channel length (nm).
	MeanCD float64
	// Nonuniformity is max−min CD across the gate width (nm).
	Nonuniformity float64
	// DelayEL and LeakEL are the equivalent lengths (nm).
	DelayEL, LeakEL float64
	// Printed is false when any slice failed (pinched gate).
	Printed bool
}

// SiteCD is the extraction of one transistor across all corners.
type SiteCD struct {
	// LocalName is the cell-local device name ("MN0_0").
	LocalName string
	// Kind is NMOS or PMOS.
	Kind layout.DeviceKind
	// DrawnL is the drawn channel length (nm).
	DrawnL float64
	// PerCorner holds one entry per requested corner, in order.
	PerCorner []CornerCD
}

// GateExtraction is the post-OPC extraction of one placed gate instance.
type GateExtraction struct {
	// Gate is the instance (and netlist gate) name.
	Gate string
	// Cell is the library cell.
	Cell string
	// Sites are the instance's transistors.
	Sites []SiteCD
	// EPE is the residual-EPE report of the window's OPC run at nominal
	// (zero-valued for OPCNone).
	EPE opc.EPEStats
	// EPEValues are the raw interior EPE samples behind EPE (nm), for
	// histogramming.
	EPEValues []float64
	// Mode records the OPC applied.
	Mode OPCMode
}

// ExtractOptions configure window extraction.
type ExtractOptions struct {
	// Corners are the process conditions to extract (default: Nominal).
	Corners []litho.Corner
	// Mode selects the OPC applied to each window.
	Mode OPCMode
	// Workers bounds instance-level concurrency in ExtractGates
	// (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// Batch groups windows through the staged batch pipeline (batch.go):
	// Batch > 1 streams windows in groups of Batch through overlapping
	// prep → kernel → post stages, amortizing FFT plans and scratch across
	// each group. Results are byte-identical to the per-window path.
	// <= 1 keeps the per-window fork-join. Like Workers, Batch is a
	// scheduling knob and never enters cache signatures.
	Batch int
}

// ExtractInstance runs the staged window pipeline for one placed instance:
// clip → canonicalize → OPC → image → contour → profile (see stages.go).
// All simulation happens in canonical window coordinates, so the result for
// an instance depends only on its layout context — and, when f.Cache is
// set, repeated contexts are recalled instead of recomputed.
func (f *Flow) ExtractInstance(chip *layout.Chip, inst *layout.Instance, opt ExtractOptions) (*GateExtraction, error) {
	env, err := f.envFor(opt.Mode)
	if err != nil {
		return nil, err
	}
	if len(opt.Corners) == 0 {
		opt.Corners = []litho.Corner{litho.Nominal}
	}
	return f.extractInstance(env, chip, inst, opt, 0, 0, 0)
}

// extractInstance is ExtractInstance with the stage environment already
// built (ExtractGates builds it once for all workers). parent is the
// telemetry span the per-window stage spans nest under (0 for a root);
// idx and worker are the window's position and pool slot, recorded in the
// run ledger — scheduling metadata, never inputs the result depends on.
func (f *Flow) extractInstance(env *stageEnv, chip *layout.Chip, inst *layout.Instance, opt ExtractOptions, idx, worker int, parent obs.SpanID) (*GateExtraction, error) {
	var rec *obs.WindowRecord
	if env.jrn != nil {
		rec = &obs.WindowRecord{Index: idx, Kind: "window", Class: "compute", Batch: -1, Worker: worker}
		defer env.jrn.Record(rec)
	}
	sites := inst.GateSites()
	if len(sites) == 0 {
		return nil, fmt.Errorf("flow: instance %s has no gate sites", inst.Name)
	}
	recipe := env.Verify.Recipe()
	ambit := recipe.GuardNM + env.PitchNM
	sp := env.obs.StartChild("stage.clip", parent)
	t0 := env.met.clip.StartTimer()
	window := cdx.WindowOf(sites, ambit)
	clip := stageClip(chip, window)
	rec.Observe(obs.StageClip, env.met.clip.TimedSince(t0))
	sp.End()
	if len(clip.Polys) == 0 {
		return nil, fmt.Errorf("flow: no poly in window of %s", inst.Name)
	}
	// Canonicalize the sites to match the clip: cell-local names,
	// window-relative channels. Instance identity must not reach the
	// artifact — it would defeat both caching and determinism.
	sp = env.obs.StartChild("stage.canonicalize", parent)
	t0 = env.met.canonicalize.StartTimer()
	csites := make([]layout.GateSite, len(sites))
	for i, s := range sites {
		csites[i] = layout.GateSite{
			Name:    localSiteName(s.Name),
			Pin:     s.Pin,
			Kind:    s.Kind,
			Channel: s.Channel.Translate(geom.Pt(-clip.Origin.X, -clip.Origin.Y)),
		}
	}
	rec.Observe(obs.StageCanonicalize, env.met.canonicalize.TimedSince(t0))
	sp.End()
	art, err := f.cachedWindow(env, clip, csites, opt.Corners, rec, parent)
	if err != nil {
		return nil, fmt.Errorf("flow: window of %s: %w", inst.Name, err)
	}
	// The artifact is shared between cache hits; the extraction borrows its
	// slices rather than copying, so consumers must not mutate them.
	return &GateExtraction{
		Gate:      inst.Name,
		Cell:      inst.Cell.Name,
		Sites:     art.Sites,
		EPE:       art.EPE,
		EPEValues: art.EPEValues,
		Mode:      opt.Mode,
	}, nil
}

// interiorEPEs keeps only the EPE samples whose fragment control point lies
// inside the interior rectangle: fragments created by clipping shapes at
// the simulation-window boundary measure the clear-field roll-off, not OPC
// quality. A sample/fragment count mismatch is an explicit error — EPE
// statistics must never be quietly computed over a truncated sample set.
func interiorEPEs(frags []*opc.FragmentedPolygon, epes []float64, interior geom.Rect) ([]float64, error) {
	total := 0
	for _, fp := range frags {
		total += len(fp.Frags)
	}
	if total != len(epes) {
		return nil, fmt.Errorf("%d EPE samples for %d fragments", len(epes), total)
	}
	var out []float64
	i := 0
	for _, fp := range frags {
		for _, fr := range fp.Frags {
			if interior.Contains(fr.Control) {
				out = append(out, epes[i])
			}
			i++
		}
	}
	return out, nil
}

// ExtractGates runs ExtractInstance for the named gates (or all netlist
// gates when names is nil). Results are keyed by instance name.
func (f *Flow) ExtractGates(chip *layout.Chip, names []string, opt ExtractOptions) (map[string]*GateExtraction, error) {
	if names == nil {
		for i := range chip.Instances {
			in := &chip.Instances[i]
			if len(in.Cell.Gates) > 0 && !strings.HasPrefix(in.Name, "fill") {
				names = append(names, in.Name)
			}
		}
	}
	sort.Strings(names)
	// Resolve instances up front (and build the chip index once) so the
	// parallel workers only read shared state.
	insts := make([]*layout.Instance, len(names))
	for i, name := range names {
		inst := chip.FindInstance(name)
		if inst == nil {
			return nil, fmt.Errorf("flow: instance %s not found on chip", name)
		}
		insts[i] = inst
	}
	chip.BuildIndex()
	// Build the stage environment (and, for rule mode, the OPC deck) once
	// so the parallel workers only read shared state.
	env, err := f.envFor(opt.Mode)
	if err != nil {
		return nil, err
	}
	if len(opt.Corners) == 0 {
		opt.Corners = []litho.Corner{litho.Nominal}
	}

	// Run-shape manifest fields: how this extraction was scheduled, so a
	// ledger diff can tell config drift from genuine regressions.
	if j := f.Obs.Ledger(); j != nil {
		j.SetField("flow.extract.mode", opt.Mode.String())
		j.SetField("flow.extract.workers", strconv.Itoa(opt.Workers))
		j.SetField("flow.extract.batch", strconv.Itoa(opt.Batch))
		j.SetField("flow.extract.corners", strconv.Itoa(len(opt.Corners)))
		j.SetField("flow.extract.gates", strconv.Itoa(len(names)))
		if f.Cache != nil {
			j.SetField("flow.cache.entries", strconv.Itoa(f.Cache.Cap()))
		} else {
			j.SetField("flow.cache.entries", "off")
		}
	}

	sp := f.Obs.Start("flow.extract")
	exts := make([]*GateExtraction, len(names))
	if opt.Batch > 1 {
		err = f.extractGatesBatched(env, chip, insts, opt, exts, sp.ID())
	} else {
		err = par.ForEachWorker(len(names), func(w, i int) error {
			ext, err := f.extractInstance(env, chip, insts[i], opt, i, w, sp.ID())
			if err != nil {
				return err
			}
			exts[i] = ext
			return nil
		}, par.Workers(opt.Workers), par.Obs(f.Obs))
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	out := make(map[string]*GateExtraction, len(names))
	for i, name := range names {
		out[name] = exts[i]
	}
	return out, nil
}

func localSiteName(qualified string) string {
	if i := strings.LastIndex(qualified, "/"); i >= 0 {
		return qualified[i+1:]
	}
	return qualified
}
