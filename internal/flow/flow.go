// Package flow implements the paper's methodology end to end: tag critical
// gates from a drawn-CD STA, clip per-gate layout windows from the placed
// chip, apply OPC, run patterning-process simulation through the process
// window, extract post-OPC gate CDs, collapse them to equivalent lengths,
// back-annotate the timing model, re-run STA and compare — plus the
// selective-OPC DFM loop and Monte Carlo statistical timing over realistic
// CD distributions.
package flow

import (
	"sync"

	"postopc/internal/cache"
	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/litho"
	"postopc/internal/netlist"
	"postopc/internal/obs"
	"postopc/internal/opc"
	"postopc/internal/pdk"
	"postopc/internal/place"
	"postopc/internal/sta"
	"postopc/internal/stdcell"
	"postopc/internal/timinglib"
)

// OPCMode selects the correction applied to each simulated window.
type OPCMode int

const (
	// OPCNone images the drawn layout as-is.
	OPCNone OPCMode = iota
	// OPCRule applies table-lookup (rule-based) correction.
	OPCRule
	// OPCModel applies iterative model-based correction.
	OPCModel
)

// String implements fmt.Stringer.
func (m OPCMode) String() string {
	switch m {
	case OPCNone:
		return "none"
	case OPCRule:
		return "rule"
	default:
		return "model"
	}
}

// Flow bundles the technology stack of one run.
type Flow struct {
	// PDK is the kit.
	PDK *pdk.PDK
	// Lib is the generated cell library.
	Lib *stdcell.Library
	// TL is the timing library.
	TL *timinglib.Lib
	// Dev is the device model.
	Dev deviceModel
	// OPCModelSim drives the OPC inner loop (fast model by default, as in
	// production).
	OPCModelSim litho.Model
	// VerifySim drives extraction/verification (the accurate model).
	VerifySim litho.Model
	// OPCOpt configures model-based OPC.
	OPCOpt opc.Options
	// CDX configures gate CD extraction.
	CDX cdxOptions
	// RuleTab optionally pre-seeds the rule-based OPC deck; when nil the
	// deck is built lazily (and race-safely) on first use.
	RuleTab *opc.RuleTable
	// Cache, when non-nil, memoizes window and tile artifacts by content
	// signature (see signature.go): repeated layout contexts — and repeated
	// extractions of the same gates across sweep iterations — are recalled
	// instead of resimulated. Results are byte-identical with and without
	// it, at any worker count. Shallow Flow copies share the store, which
	// is safe: signatures capture every option a copy might tweak.
	Cache *cache.Store
	// Obs, when non-nil, receives run telemetry — per-stage spans and
	// latency histograms, cache/kernel/scheduler counters (see EnableObs).
	// Telemetry is write-only: like Workers, it never enters a signature
	// and never changes a result.
	Obs *obs.Sink

	// lazy holds the members built on first use. It is a pointer so that
	// shallow copies of a Flow (e.g. per-sweep option tweaks) share one
	// build, and so the struct stays free of copyable locks.
	lazy *lazyInits
}

// lazyInits guards the Flow members that are built on first use. Concurrent
// extraction and verification workers all funnel through it, so a
// half-written pointer or double build cannot be observed.
type lazyInits struct {
	ruleOnce sync.Once
	rule     *opc.RuleTable
	ruleErr  error

	contactOnce sync.Once
	contact     litho.Model
	contactErr  error
}

// small aliases keep the struct doc readable without extra imports in docs
type deviceModel = interface {
	EquivalentLengths(kind layout.DeviceKind, cds []float64) (float64, float64, error)
}

type cdxOptions struct {
	Slices       int
	ScanHalfNM   float64
	EdgeMarginNM float64
}

// Config selects the simulation accuracy profile.
type Config struct {
	// Fast uses the Gaussian model for verification too — for tests and
	// quick sweeps. Default (false) verifies with the Abbe model.
	Fast bool
}

// New assembles a Flow for the kit.
func New(p *pdk.PDK, cfg Config) (*Flow, error) {
	lib, err := stdcell.NewLibrary(p)
	if err != nil {
		return nil, err
	}
	gauss, err := p.FastModel()
	if err != nil {
		return nil, err
	}
	var verify litho.Model = gauss
	if !cfg.Fast {
		abbe, err := litho.NewAbbe(p.Litho)
		if err != nil {
			return nil, err
		}
		verify = abbe
	}
	tl := timinglib.New(p)
	return &Flow{
		PDK:         p,
		Lib:         lib,
		TL:          tl,
		Dev:         tl.Dev,
		OPCModelSim: gauss,
		VerifySim:   verify,
		OPCOpt:      opc.DefaultOptions(),
		CDX: cdxOptions{
			Slices:       7,
			ScanHalfNM:   float64(p.Rules.PolyPitchNM) / 2,
			EdgeMarginNM: 25,
		},
		lazy: &lazyInits{},
	}, nil
}

// EnableCache attaches a pattern cache bounded to roughly maxEntries
// artifacts (<= 0 selects the default bound) and returns f for chaining.
func (f *Flow) EnableCache(maxEntries int) *Flow {
	f.Cache = cache.New(maxEntries)
	if f.Obs.Enabled() {
		f.Cache.Instrument(f.Obs)
	}
	return f
}

// EnableObs attaches a telemetry sink to the run and returns f for
// chaining: the pattern cache (if attached), both litho models, the
// package-level scratch pools and every graph built afterwards report into
// it, and the staged pipeline emits per-stage spans and latency
// histograms. EnableObs in either order with EnableCache works. A nil sink
// detaches nothing but is harmless — telemetry is already off by default.
func (f *Flow) EnableObs(sink *obs.Sink) *Flow {
	f.Obs = sink
	if f.Cache != nil {
		f.Cache.Instrument(sink)
	}
	if m, ok := f.VerifySim.(interface{ Instrument(*obs.Sink) }); ok {
		m.Instrument(sink)
	}
	if f.OPCModelSim != f.VerifySim {
		if m, ok := f.OPCModelSim.(interface{ Instrument(*obs.Sink) }); ok {
			m.Instrument(sink)
		}
	}
	litho.InstrumentPools(sink)
	return f
}

// CacheStats snapshots the pattern cache's counters (zero Stats when no
// cache is attached).
func (f *Flow) CacheStats() cache.Stats {
	if f.Cache == nil {
		return cache.Stats{}
	}
	return f.Cache.Stats()
}

// Place runs the row placer on a netlist.
func (f *Flow) Place(n *netlist.Netlist, opt place.Options) (*place.Result, error) {
	return place.Place(n, f.Lib, opt)
}

// BuildGraph constructs the STA graph (instrumented when Obs is set).
func (f *Flow) BuildGraph(n *netlist.Netlist) (*sta.Graph, error) {
	g, err := sta.Build(n, f.Lib, f.TL)
	if err != nil {
		return nil, err
	}
	g.Instrument(f.Obs)
	return g, nil
}

// ruleTable returns the rule-based OPC deck, building it from the OPC model
// exactly once — safe for concurrent callers.
func (f *Flow) ruleTable() (*opc.RuleTable, error) {
	if f.RuleTab != nil {
		return f.RuleTab, nil
	}
	f.lazy.ruleOnce.Do(func() {
		w := f.PDK.Rules.GateLengthNM
		spaces := []geom.Coord{
			f.PDK.Rules.PolySpaceNM,
			f.PDK.Rules.PolyPitchNM - w,
			2*f.PDK.Rules.PolyPitchNM - w,
			4 * f.PDK.Rules.PolyPitchNM,
		}
		f.lazy.rule, f.lazy.ruleErr = opc.BuildRuleTable(f.OPCModelSim, w, spaces)
	})
	return f.lazy.rule, f.lazy.ruleErr
}
