package flow

import (
	"math"
	"testing"

	"postopc/internal/litho"
	"postopc/internal/netlist"
	"postopc/internal/pdk"
	"postopc/internal/place"
	"postopc/internal/sta"
	"postopc/internal/timinglib"
)

var cachedFlow *Flow

func fastFlow(t *testing.T) *Flow {
	t.Helper()
	if cachedFlow == nil {
		f, err := New(pdk.N90(), Config{Fast: true})
		if err != nil {
			t.Fatal(err)
		}
		cachedFlow = f
	}
	return cachedFlow
}

// cachedRun executes the full pipeline once (it is the expensive fixture
// shared by several tests).
var cachedRunResult *RunResult

func fullRun(t *testing.T) *RunResult {
	t.Helper()
	if cachedRunResult == nil {
		f := fastFlow(t)
		res, err := f.Run(netlist.RippleCarryAdder(2), RunOptions{
			STA:     sta.DefaultConfig(1500),
			Mode:    OPCModel,
			Corners: VariationCorners(f.PDK.Window),
		})
		if err != nil {
			t.Fatal(err)
		}
		cachedRunResult = res
	}
	return cachedRunResult
}

func TestGaussianThresholdCalibrated(t *testing.T) {
	f := fastFlow(t)
	stored := f.PDK.GaussianLitho().Threshold
	g, err := f.PDK.FastModel()
	if err != nil {
		t.Fatal(err)
	}
	th, err := litho.CalibrateThreshold(g, f.PDK.Rules.GateLengthNM, f.PDK.Rules.PolyPitchNM)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(th-stored) > 0.01 {
		t.Fatalf("stored Gaussian threshold %.4f drifted from calibration %.4f", stored, th)
	}
}

func TestExtractInstanceNominal(t *testing.T) {
	f := fastFlow(t)
	n := netlist.InverterChain(3)
	pl, err := f.Place(n, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inst := pl.Chip.FindInstance("u1")
	ext, err := f.ExtractInstance(pl.Chip, inst, ExtractOptions{Mode: OPCModel})
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.Sites) != 2 { // INV: one NMOS + one PMOS
		t.Fatalf("sites = %d", len(ext.Sites))
	}
	for _, s := range ext.Sites {
		if len(s.PerCorner) != 1 {
			t.Fatalf("corners = %d", len(s.PerCorner))
		}
		cc := s.PerCorner[0]
		if !cc.Printed {
			t.Fatalf("site %s did not print", s.LocalName)
		}
		if cc.MeanCD < 82 || cc.MeanCD > 100 {
			t.Fatalf("site %s printed CD %.1f far from drawn 90", s.LocalName, cc.MeanCD)
		}
		if cc.DelayEL <= 0 || cc.LeakEL <= 0 {
			t.Fatalf("bad ELs: %+v", cc)
		}
		// Leakage EL weights short slices more.
		if cc.LeakEL > cc.DelayEL+0.5 {
			t.Fatalf("leak EL %.2f above delay EL %.2f", cc.LeakEL, cc.DelayEL)
		}
		// Some across-gate nonuniformity must exist (line ends, neighbours).
		if cc.Nonuniformity <= 0 {
			t.Fatalf("zero nonuniformity is implausible")
		}
	}
	if ext.EPE.Count == 0 {
		t.Fatal("OPC EPE report empty")
	}
}

func TestOPCModesChangeCD(t *testing.T) {
	f := fastFlow(t)
	n := netlist.InverterChain(3)
	pl, err := f.Place(n, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inst := pl.Chip.FindInstance("u1")
	mean := func(mode OPCMode) float64 {
		ext, err := f.ExtractInstance(pl.Chip, inst, ExtractOptions{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, site := range ext.Sites {
			s += site.PerCorner[0].MeanCD
		}
		return s / float64(len(ext.Sites))
	}
	none := mean(OPCNone)
	model := mean(OPCModel)
	// The INV sits at a loose gate pitch, so uncorrected it prints several
	// nm off target; model OPC must pull it close to drawn.
	if math.Abs(none-90) > 7 {
		t.Fatalf("uncorrected CD implausible: none=%.2f", none)
	}
	if math.Abs(model-90) > 2.5 {
		t.Fatalf("model OPC missed target: model=%.2f", model)
	}
	if math.Abs(model-90) >= math.Abs(none-90) {
		t.Fatalf("OPC did not improve CD: none=%.2f model=%.2f", none, model)
	}
}

func TestRunPipeline(t *testing.T) {
	res := fullRun(t)
	if res.Drawn == nil || res.Annotated == nil {
		t.Fatal("missing STA results")
	}
	if len(res.Extractions) != len(res.Netlist.Gates) {
		t.Fatalf("extractions = %d, want %d", len(res.Extractions), len(res.Netlist.Gates))
	}
	// The annotated analysis must differ from drawn (post-OPC CDs ≠ drawn)
	// but stay in the same ballpark at nominal.
	if res.Shift.MeanAbsShiftPS == 0 {
		t.Fatal("annotation had no effect at all")
	}
	if math.Abs(res.Shift.WNSShiftPct) > 30 {
		t.Fatalf("nominal post-OPC shift %.1f%% implausibly large", res.Shift.WNSShiftPct)
	}
	if res.Ranks.N != len(res.Drawn.Endpoints) {
		t.Fatalf("rank comparison covered %d endpoints", res.Ranks.N)
	}
}

func TestAnnotationsFallback(t *testing.T) {
	res := fullRun(t)
	ann := Annotations(res.Extractions, 0)
	if len(ann) != len(res.Extractions) {
		t.Fatalf("annotations = %d", len(ann))
	}
	// Out-of-range corner index falls back to drawn for every site.
	annBad := Annotations(res.Extractions, 99)
	g, err := res.Graph.Analyze(sta.DefaultConfig(1500), annBad)
	if err != nil {
		t.Fatal(err)
	}
	drawn, err := res.Graph.Analyze(sta.DefaultConfig(1500), nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.WNS != drawn.WNS {
		t.Fatalf("fallback annotation changed timing: %.2f vs %.2f", g.WNS, drawn.WNS)
	}
}

func TestTagTopK(t *testing.T) {
	f := fastFlow(t)
	res, err := f.Run(netlist.RippleCarryAdder(2), RunOptions{
		STA:     sta.DefaultConfig(1500),
		Mode:    OPCNone,
		TagTopK: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tagged) == 0 || len(res.Tagged) >= len(res.Netlist.Gates) {
		t.Fatalf("tagged %d of %d gates", len(res.Tagged), len(res.Netlist.Gates))
	}
	if len(res.Extractions) != len(res.Tagged) {
		t.Fatalf("extracted %d, tagged %d", len(res.Extractions), len(res.Tagged))
	}
}

func TestVariationModelAndMonteCarlo(t *testing.T) {
	res := fullRun(t)
	f := fastFlow(t)
	vm, err := BuildVariationModel(res.Extractions, f.PDK.Window, f.PDK.Device.SigmaLRandomNM)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sta.DefaultConfig(1500)
	mc, err := vm.MonteCarlo(res.Graph, cfg, 60, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(mc.WNS) != 60 || mc.StdWNS <= 0 {
		t.Fatalf("MC stats: %+v", mc)
	}
	// Worst-case corner must be at least as pessimistic as every MC draw.
	slow, err := res.Graph.Analyze(cfg, vm.SlowCorner(3))
	if err != nil {
		t.Fatal(err)
	}
	if slow.WNS > mc.WNS[0] {
		t.Fatalf("slow corner WNS %.1f less pessimistic than MC min %.1f", slow.WNS, mc.WNS[0])
	}
	// Fast corner bounds from the other side.
	fast, err := res.Graph.Analyze(cfg, vm.FastCorner(3))
	if err != nil {
		t.Fatal(err)
	}
	if fast.WNS < mc.WNS[len(mc.WNS)-1] {
		t.Fatalf("fast corner WNS %.1f below MC max %.1f", fast.WNS, mc.WNS[len(mc.WNS)-1])
	}
	// Determinism.
	mc2, err := vm.MonteCarlo(res.Graph, cfg, 60, 42)
	if err != nil {
		t.Fatal(err)
	}
	if mc.MeanWNS != mc2.MeanWNS {
		t.Fatal("MC not reproducible for equal seeds")
	}
	// Percentile accessor.
	if p := mc.Percentile(0); p != mc.WNS[0] {
		t.Fatalf("p0 = %g", p)
	}
	if p := mc.Percentile(1); p != mc.WNS[len(mc.WNS)-1] {
		t.Fatalf("p100 = %g", p)
	}
}

func TestVariationAnnotationsFocusEffect(t *testing.T) {
	res := fullRun(t)
	f := fastFlow(t)
	vm, err := BuildVariationModel(res.Extractions, f.PDK.Window, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sta.DefaultConfig(1500)
	nom, err := res.Graph.Analyze(cfg, vm.Annotations(0, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	defoc, err := res.Graph.Analyze(cfg, vm.Annotations(f.PDK.Window.DefocusNM, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	// Defocus thins dense gates -> shorter channels -> FASTER timing but
	// much leakier. Check both directions.
	if defoc.WNS <= nom.WNS {
		t.Fatalf("defocus should speed up the N90 dense gates: %.1f vs %.1f", defoc.WNS, nom.WNS)
	}
	if defoc.LeakNW <= nom.LeakNW {
		t.Fatalf("defocus must raise leakage: %.1f vs %.1f", defoc.LeakNW, nom.LeakNW)
	}
}

func TestGuardbandDefaultAnnotator(t *testing.T) {
	res := fullRun(t)
	cfg := sta.DefaultConfig(1500)
	drawn, err := res.Graph.Analyze(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	guard, err := res.Graph.Analyze(cfg, sta.Annotations{"*": guardband8})
	if err != nil {
		t.Fatal(err)
	}
	if guard.WNS >= drawn.WNS {
		t.Fatalf("guardband must slow the design: %.1f vs %.1f", guard.WNS, drawn.WNS)
	}
}

// guardband8 is an 8nm blanket slow-corner guardband.
var guardband8 = timinglib.Guardband(8)
