package flow

import (
	"fmt"

	"postopc/internal/sta"
)

// MultiCornerSTAOptions shape the process-corner grid a multi-corner
// sign-off analyzes.
type MultiCornerSTAOptions struct {
	// DefocusSteps is the number of defocus grid points beyond nominal,
	// spread evenly over (0, PW.DefocusNM]. 0 keeps focus nominal.
	DefocusSteps int
	// DoseSteps is the number of dose grid points on EACH side of nominal,
	// spread evenly over (1−Δd, 1+Δd). 0 keeps dose nominal.
	DoseSteps int
	// GuardbandKSigma, when > 0, appends the classic pessimistic corner
	// (VariationModel.SlowCorner at that sigma) to the grid — the
	// worst-case assumption the paper's realistic grid is measured
	// against.
	GuardbandKSigma float64
	// Workers bounds corner-level concurrency (0 = GOMAXPROCS, 1 =
	// serial). Results are identical for any value.
	Workers int
	// Full forces a full analysis per corner instead of incremental
	// re-analysis from the nominal baseline (see sta.MultiCornerOptions).
	Full bool
}

// CornerGrid materializes the corner set for the options: the nominal
// process point first (it seeds the incremental engine and should carry the
// smallest deltas), then the (defocus × dose) grid in deterministic
// defocus-major order, then the optional guardband corner. Corner names
// encode the grid point ("f+080/d0.975"); the random CD component is left
// off — corners are systematic process excursions, Monte Carlo owns the
// random part.
func (vm *VariationModel) CornerGrid(opt MultiCornerSTAOptions) []sta.CornerSpec {
	corners := []sta.CornerSpec{{Name: "nominal", Ann: vm.Annotations(0, 1, nil)}}
	focus := []float64{0}
	for i := 1; i <= opt.DefocusSteps; i++ {
		focus = append(focus, vm.PW.DefocusNM*float64(i)/float64(opt.DefocusSteps))
	}
	dose := []float64{1}
	for i := 1; i <= opt.DoseSteps; i++ {
		d := vm.PW.DoseFrac * float64(i) / float64(opt.DoseSteps)
		dose = append(dose, 1-d, 1+d)
	}
	for _, fv := range focus {
		for _, dv := range dose {
			if fv == 0 && dv == 1 {
				continue // nominal already leads the set
			}
			corners = append(corners, sta.CornerSpec{
				Name: fmt.Sprintf("f%+04.0f/d%.3f", fv, dv),
				Ann:  vm.Annotations(fv, dv, nil),
			})
		}
	}
	if opt.GuardbandKSigma > 0 {
		corners = append(corners, sta.CornerSpec{
			Name: fmt.Sprintf("guard%+.1fs", opt.GuardbandKSigma),
			Ann:  vm.SlowCorner(opt.GuardbandKSigma),
		})
	}
	return corners
}

// MultiCornerSTA runs multi-corner process-window sign-off: the variation
// model is evaluated on the (defocus × dose) grid, every corner is analyzed
// — nominal in full, the rest incrementally from it, fanned out
// corner-parallel — and the merged worst-slack view is returned. The output
// is byte-identical at any worker count, with or without the pattern cache,
// and with Full either way.
func (f *Flow) MultiCornerSTA(g *sta.Graph, cfg sta.Config, vm *VariationModel, opt MultiCornerSTAOptions) (*sta.MultiCornerResult, error) {
	sp := f.Obs.Start("flow.multicorner")
	defer sp.End()
	return g.MultiCorner(cfg, vm.CornerGrid(opt), sta.MultiCornerOptions{
		Workers: opt.Workers,
		Full:    opt.Full,
		Obs:     f.Obs,
	})
}
