package flow

import (
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"postopc/internal/netlist"
	"postopc/internal/sta"
)

// renderMultiCorner serializes a merged multi-corner result at full float
// precision: two runs agree on this string iff they agree bit-for-bit.
func renderMultiCorner(mc *sta.MultiCornerResult) string {
	var b strings.Builder
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	fmt.Fprintf(&b, "WNS=%s TNS=%s\n", g(mc.WNS), g(mc.TNS))
	for _, c := range mc.Corners {
		fmt.Fprintf(&b, "corner %s WNS=%s TNS=%s leak=%s\n", c.Name, g(c.Res.WNS), g(c.Res.TNS), g(c.Res.LeakNW))
		for _, ep := range c.Res.Endpoints {
			fmt.Fprintf(&b, "  %s a=%s r=%s s=%s rise=%v\n", ep.Name, g(ep.ArrivalPS), g(ep.RequiredPS), g(ep.SlackPS), ep.Rise)
		}
		for _, p := range c.Res.Paths {
			fmt.Fprintf(&b, "  path %s s=%s:", p.Endpoint, g(p.SlackPS))
			for _, pt := range p.Points {
				fmt.Fprintf(&b, " %s/%v@%s", pt.Net, pt.Rise, g(pt.ArrivalPS))
			}
			b.WriteByte('\n')
		}
	}
	for _, m := range mc.Merged {
		fmt.Fprintf(&b, "merged %s s=%s a=%s r=%s from=%s\n", m.Name, g(m.SlackPS), g(m.ArrivalPS), g(m.RequiredPS), m.Corner)
	}
	return b.String()
}

// TestMultiCornerIncrementalDeterminism is the tentpole's hard requirement:
// the merged multi-corner output must be byte-identical at one, four and
// GOMAXPROCS corner workers, with the pattern cache on and off, and whether
// every corner is analyzed in full or incrementally from the nominal
// baseline.
func TestMultiCornerIncrementalDeterminism(t *testing.T) {
	// A repeated-context chain keeps the two pipeline legs (cache off/on)
	// affordable under -race; the corner grid and engine matrix are the
	// point of the test, not extraction breadth.
	design := netlist.InverterChain(6)
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	cacheModes := []bool{false, true}
	if raceEnabled {
		// Each cache mode pays one full pipeline run; under the race
		// detector one (cached — it exercises the single-flight and worker
		// fan-out races) keeps the package inside go test's default
		// timeout. The corner-engine matrix below stays complete.
		cacheModes = []bool{true}
	}
	opt := MultiCornerSTAOptions{DefocusSteps: 2, DoseSteps: 1, GuardbandKSigma: 3}
	var want string
	for _, cached := range cacheModes {
		f := newFastFlow(t)
		if cached {
			f.EnableCache(0)
		}
		res, err := f.Run(design, RunOptions{
			STA:     sta.DefaultConfig(1500),
			Mode:    OPCModel,
			Corners: VariationCorners(f.PDK.Window),
		})
		if err != nil {
			t.Fatal(err)
		}
		vm, err := BuildVariationModel(res.Extractions, f.PDK.Window, f.PDK.Device.SigmaLRandomNM)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range workerCounts {
			for _, full := range []bool{false, true} {
				o := opt
				o.Workers = workers
				o.Full = full
				mc, err := f.MultiCornerSTA(res.Graph, sta.DefaultConfig(1500), vm, o)
				if err != nil {
					t.Fatal(err)
				}
				got := renderMultiCorner(mc)
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("cache=%v workers=%d full=%v: multi-corner output diverged:\n--- want ---\n%s--- got ---\n%s",
						cached, workers, full, want, got)
				}
			}
		}
	}
}

// TestCornerGridShape locks the grid construction: nominal first, then the
// defocus-major grid, then the guardband corner — deterministically named.
func TestCornerGridShape(t *testing.T) {
	res := fullRun(t)
	f := fastFlow(t)
	vm, err := BuildVariationModel(res.Extractions, f.PDK.Window, f.PDK.Device.SigmaLRandomNM)
	if err != nil {
		t.Fatal(err)
	}
	corners := vm.CornerGrid(MultiCornerSTAOptions{DefocusSteps: 2, DoseSteps: 1, GuardbandKSigma: 3})
	// 1 nominal + (3 focus × 3 dose − 1 nominal) + 1 guardband = 10.
	if len(corners) != 10 {
		var names []string
		for _, c := range corners {
			names = append(names, c.Name)
		}
		t.Fatalf("grid size = %d: %v", len(corners), names)
	}
	if corners[0].Name != "nominal" {
		t.Fatalf("first corner = %q, want nominal", corners[0].Name)
	}
	if got := corners[len(corners)-1].Name; got != "guard+3.0s" {
		t.Fatalf("last corner = %q, want guard+3.0s", got)
	}
	seen := map[string]bool{}
	for _, c := range corners {
		if c.Ann == nil {
			t.Fatalf("corner %s has nil annotations", c.Name)
		}
		if seen[c.Name] {
			t.Fatalf("duplicate corner name %q", c.Name)
		}
		seen[c.Name] = true
	}
	// No steps: nominal only.
	if g := vm.CornerGrid(MultiCornerSTAOptions{}); len(g) != 1 || g[0].Name != "nominal" {
		t.Fatalf("empty grid: %+v", g)
	}
}

// TestMultiCornerGuardbandDominates checks the physics: the pessimistic
// guardband corner must bound the realistic grid from below — its WNS is
// the merged WNS and it dominates the critical endpoint.
func TestMultiCornerGuardbandDominates(t *testing.T) {
	res := fullRun(t)
	f := fastFlow(t)
	vm, err := BuildVariationModel(res.Extractions, f.PDK.Window, f.PDK.Device.SigmaLRandomNM)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := f.MultiCornerSTA(res.Graph, sta.DefaultConfig(1500), vm,
		MultiCornerSTAOptions{DefocusSteps: 2, DoseSteps: 1, GuardbandKSigma: 3})
	if err != nil {
		t.Fatal(err)
	}
	guard := mc.Corners[len(mc.Corners)-1]
	if !strings.HasPrefix(guard.Name, "guard") {
		t.Fatalf("last corner = %q", guard.Name)
	}
	if math.Float64bits(mc.WNS) != math.Float64bits(guard.Res.WNS) {
		t.Fatalf("merged WNS %v should equal guardband WNS %v", mc.WNS, guard.Res.WNS)
	}
	for _, c := range mc.Corners[:len(mc.Corners)-1] {
		if c.Res.WNS < guard.Res.WNS {
			t.Fatalf("corner %s (%v) worse than guardband (%v)", c.Name, c.Res.WNS, guard.Res.WNS)
		}
	}
	if mc.Merged[0].Corner != guard.Name {
		t.Fatalf("critical endpoint dominated by %s, want %s", mc.Merged[0].Corner, guard.Name)
	}
}
