package flow

import (
	"runtime"
	"testing"

	"postopc/internal/netlist"
	"postopc/internal/obs"
	"postopc/internal/sta"
)

// TestRunObsDeterminism is the telemetry hard requirement: attaching a live
// Sink must not perturb a single reported bit, at any worker count, with or
// without the cache — telemetry is write-only. The baseline is the plain
// uninstrumented run.
func TestRunObsDeterminism(t *testing.T) {
	design := netlist.InverterChain(8)
	opts := func(workers int) RunOptions {
		return RunOptions{
			STA:     sta.DefaultConfig(1500),
			Mode:    OPCModel,
			Workers: workers,
		}
	}
	base := newFastFlow(t)
	res, err := base.Run(design, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	want := renderRun(res)

	for _, cached := range []bool{false, true} {
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			f := newFastFlow(t)
			if cached {
				f.EnableCache(0)
			}
			sink := obs.NewSink()
			f.EnableObs(sink)
			res, err := f.Run(design, opts(workers))
			if err != nil {
				t.Fatalf("cached=%v workers=%d: %v", cached, workers, err)
			}
			if got := renderRun(res); got != want {
				t.Fatalf("cached=%v workers=%d: instrumented run rendered differently:\n--- want ---\n%s--- got ---\n%s",
					cached, workers, want, got)
			}
		}
	}
}

// TestRunObsCoverage: one instrumented run must trace every pipeline stage
// and populate the cross-package metric families the exporter promises.
func TestRunObsCoverage(t *testing.T) {
	f := newFastFlow(t).EnableCache(0)
	sink := obs.NewSink()
	f.EnableObs(sink)
	if _, err := f.Run(netlist.InverterChain(8), RunOptions{
		STA:     sta.DefaultConfig(1500),
		Mode:    OPCModel,
		Workers: 2,
	}); err != nil {
		t.Fatal(err)
	}

	spans := map[string]bool{}
	for _, ev := range sink.Trace.Events() {
		spans[ev.Name] = true
	}
	for _, name := range []string{
		"flow.run", "flow.extract",
		"stage.clip", "stage.canonicalize", "stage.opc",
		"stage.image", "stage.contour", "stage.profile",
	} {
		if !spans[name] {
			t.Errorf("trace missing span %q (got %v)", name, spans)
		}
	}

	snap := sink.Metrics.Snapshot()
	counters := map[string]uint64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	for _, name := range []string{
		"cache.misses_total", "par.items_total", "sta.analyses_total",
		"litho.pool_borrows_total", "litho.pool_returns_total",
	} {
		if counters[name] == 0 {
			t.Errorf("counter %q not populated (counters %v)", name, counters)
		}
	}
	if counters["litho.pool_borrows_total"] != counters["litho.pool_returns_total"] {
		t.Errorf("scratch pool unbalanced: %d borrows vs %d returns",
			counters["litho.pool_borrows_total"], counters["litho.pool_returns_total"])
	}
	hists := map[string]uint64{}
	for _, h := range snap.Histograms {
		hists[h.Name] = h.Count
	}
	for _, name := range []string{
		"flow.stage.clip_ns", "flow.stage.canonicalize_ns", "flow.stage.opc_ns",
		"flow.stage.image_ns", "flow.stage.contour_ns", "flow.stage.profile_ns",
		"cache.lookup_ns",
	} {
		if hists[name] == 0 {
			t.Errorf("histogram %q recorded no observations", name)
		}
	}
}
