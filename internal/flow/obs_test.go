package flow

import (
	"bytes"
	"runtime"
	"testing"

	"postopc/internal/netlist"
	"postopc/internal/obs"
	"postopc/internal/sta"
)

// TestRunObsDeterminism is the telemetry hard requirement: attaching a live
// Sink must not perturb a single reported bit, at any worker count, with or
// without the cache — telemetry is write-only. The baseline is the plain
// uninstrumented run.
func TestRunObsDeterminism(t *testing.T) {
	design := netlist.InverterChain(8)
	opts := func(workers int) RunOptions {
		return RunOptions{
			STA:     sta.DefaultConfig(1500),
			Mode:    OPCModel,
			Workers: workers,
		}
	}
	base := newFastFlow(t)
	res, err := base.Run(design, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	want := renderRun(res)

	for _, cached := range []bool{false, true} {
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			f := newFastFlow(t)
			if cached {
				f.EnableCache(0)
			}
			sink := obs.NewSink()
			f.EnableObs(sink)
			res, err := f.Run(design, opts(workers))
			if err != nil {
				t.Fatalf("cached=%v workers=%d: %v", cached, workers, err)
			}
			if got := renderRun(res); got != want {
				t.Fatalf("cached=%v workers=%d: instrumented run rendered differently:\n--- want ---\n%s--- got ---\n%s",
					cached, workers, want, got)
			}
		}
	}

	// The run-ledger extension of the same contract: a journal + flight
	// recorder must not perturb a bit either, across the worker × batch ×
	// cache grid (the batched path stamps records in different stages than
	// the per-window path, so both are exercised).
	for _, cached := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			for _, batch := range []int{0, 3} {
				f := newFastFlow(t)
				if cached {
					f.EnableCache(0)
				}
				sink := obs.NewSink().WithJournal(0).WithFlightRecorder(64)
				f.EnableObs(sink)
				o := opts(workers)
				o.Batch = batch
				res, err := f.Run(design, o)
				if err != nil {
					t.Fatalf("ledger cached=%v workers=%d batch=%d: %v", cached, workers, batch, err)
				}
				if got := renderRun(res); got != want {
					t.Fatalf("ledger cached=%v workers=%d batch=%d: ledger-on run rendered differently:\n--- want ---\n%s--- got ---\n%s",
						cached, workers, batch, want, got)
				}
			}
		}
	}
}

// TestRunLedgerCoverage: with a journal attached, every extracted window
// lands in the written ledger with a signature, a cache classification
// consistent with the store's own counters, per-stage latencies on the
// computed windows, run-shape manifest fields, and exact per-stage
// percentile lines.
func TestRunLedgerCoverage(t *testing.T) {
	f := newFastFlow(t).EnableCache(0)
	sink := obs.NewSink().WithJournal(3).WithFlightRecorder(64)
	f.EnableObs(sink)
	res, err := f.Run(netlist.InverterChain(8), RunOptions{
		STA:     sta.DefaultConfig(1500),
		Mode:    OPCModel,
		Workers: 2,
		Batch:   3,
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := sink.WriteLedger(&buf); err != nil {
		t.Fatal(err)
	}
	led, err := obs.ReadLedger(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if len(led.Windows) != len(res.Tagged) {
		t.Fatalf("ledger has %d windows for %d extracted gates", len(led.Windows), len(res.Tagged))
	}
	classes := map[string]int{}
	for _, w := range led.Windows {
		if w.Kind != "window" {
			t.Errorf("window %d: kind %q", w.Index, w.Kind)
		}
		if w.Sig == "" {
			t.Errorf("window %d has no signature", w.Index)
		}
		if w.Batch < 0 {
			t.Errorf("batched run: window %d carries batch %d", w.Index, w.Batch)
		}
		if w.Class == "miss" && w.Total <= 0 {
			t.Errorf("computed window %d has no stage latencies", w.Index)
		}
		classes[w.Class]++
	}
	// Leadership is claimed atomically, so miss counts must agree exactly;
	// the hit/wait split can shift between the store's Reserve-time view
	// and the record's later Ready check, so only their sum is pinned.
	stats := f.CacheStats()
	if classes["miss"] != int(stats.Misses) {
		t.Errorf("ledger classified %d misses, cache counted %d", classes["miss"], stats.Misses)
	}
	if classes["hit"]+classes["wait"] != int(stats.Hits+stats.Waits) {
		t.Errorf("ledger classified %d hits+waits, cache counted %d",
			classes["hit"]+classes["wait"], stats.Hits+stats.Waits)
	}

	for _, k := range []string{
		"flow.extract.mode", "flow.extract.workers", "flow.extract.batch",
		"flow.extract.gates", "flow.cache.entries", "flow.env.model",
	} {
		if led.Fields[k] == "" {
			t.Errorf("manifest field %q missing (fields %v)", k, led.Fields)
		}
	}

	stages := map[string]bool{}
	for _, s := range led.Stages {
		stages[s.Stage] = true
	}
	for _, s := range []string{"clip", "canonicalize", "opc", "image", "contour", "profile"} {
		if !stages[s] {
			t.Errorf("no exact percentile line for stage %q", s)
		}
	}
	if len(led.Exemplars) == 0 {
		t.Error("ledger has no slowest-window exemplars")
	}
}

// TestRunObsCoverage: one instrumented run must trace every pipeline stage
// and populate the cross-package metric families the exporter promises.
func TestRunObsCoverage(t *testing.T) {
	f := newFastFlow(t).EnableCache(0)
	sink := obs.NewSink()
	f.EnableObs(sink)
	if _, err := f.Run(netlist.InverterChain(8), RunOptions{
		STA:     sta.DefaultConfig(1500),
		Mode:    OPCModel,
		Workers: 2,
	}); err != nil {
		t.Fatal(err)
	}

	spans := map[string]bool{}
	for _, ev := range sink.Trace.Events() {
		spans[ev.Name] = true
	}
	for _, name := range []string{
		"flow.run", "flow.extract",
		"stage.clip", "stage.canonicalize", "stage.opc",
		"stage.image", "stage.contour", "stage.profile",
	} {
		if !spans[name] {
			t.Errorf("trace missing span %q (got %v)", name, spans)
		}
	}

	snap := sink.Metrics.Snapshot()
	counters := map[string]uint64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	for _, name := range []string{
		"cache.misses_total", "par.items_total", "sta.analyses_total",
		"litho.pool_borrows_total", "litho.pool_returns_total",
	} {
		if counters[name] == 0 {
			t.Errorf("counter %q not populated (counters %v)", name, counters)
		}
	}
	if counters["litho.pool_borrows_total"] != counters["litho.pool_returns_total"] {
		t.Errorf("scratch pool unbalanced: %d borrows vs %d returns",
			counters["litho.pool_borrows_total"], counters["litho.pool_returns_total"])
	}
	hists := map[string]uint64{}
	for _, h := range snap.Histograms {
		hists[h.Name] = h.Count
	}
	for _, name := range []string{
		"flow.stage.clip_ns", "flow.stage.canonicalize_ns", "flow.stage.opc_ns",
		"flow.stage.image_ns", "flow.stage.contour_ns", "flow.stage.profile_ns",
		"cache.lookup_ns",
	} {
		if hists[name] == 0 {
			t.Errorf("histogram %q recorded no observations", name)
		}
	}
}
