package flow

import (
	"math"
	"sort"
	"strconv"

	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/litho"
	"postopc/internal/obs"
	"postopc/internal/par"
)

// The abstract argues for a "post-OPC verification embedded design flow":
// beyond per-gate extraction, the full chip must be checked for outright
// printability failures. This file implements that ORC pass: the chip is
// tiled, each tile's poly is (optionally) OPC'd and imaged through the
// process window, and the printed image is scanned for pinching (a line
// narrowing below the process floor) and bridging (two lines merging).
//
// Each tile is computed in canonical (window-origin) coordinates by
// stageTileScan (stages.go), so tiles holding identical layout context —
// regular datapaths are full of them — share one simulation through the
// pattern cache when f.Cache is set.

// HotspotKind classifies a printability failure.
type HotspotKind uint8

const (
	// Pinch: a drawn feature prints below the minimum acceptable CD.
	Pinch HotspotKind = iota
	// Bridge: the space between two drawn features prints closed.
	Bridge
	// EndPullback: a line end retreats past the tolerated pullback (for
	// gate poly, pullback beyond the endcap margin breaks the channel).
	EndPullback
)

// String implements fmt.Stringer.
func (k HotspotKind) String() string {
	switch k {
	case Pinch:
		return "pinch"
	case Bridge:
		return "bridge"
	default:
		return "end-pullback"
	}
}

// Hotspot is one printability failure.
type Hotspot struct {
	// Kind is pinch or bridge.
	Kind HotspotKind
	// At is the failing location (nm, chip coordinates).
	At geom.Point
	// CDNM is the offending printed dimension (line CD for pinches, 0 for
	// a closed bridge).
	CDNM float64
	// Corner is the process condition that failed.
	Corner litho.Corner
	// Gate is the enclosing/nearest instance name ("" when outside any).
	Gate string
}

// ORCOptions configure full-chip verification.
type ORCOptions struct {
	// TileNM is the tile size (default 6000nm); each tile is simulated
	// with the optical guard band around it.
	TileNM geom.Coord
	// Corners are the process conditions to check (default: window
	// extremes of the kit).
	Corners []litho.Corner
	// Mode is the OPC applied per tile before imaging.
	Mode OPCMode
	// PinchFrac is the fraction of drawn width below which a printed CD
	// is a pinch (default 0.6).
	PinchFrac float64
	// StepNM is the scan step along features (default 120nm).
	StepNM float64
	// EndExclusionNM keeps CD scans away from line ends, which are judged
	// by the pullback check instead (default 160nm).
	EndExclusionNM float64
	// MaxPullbackNM is the tolerated line-end pullback (default: the
	// kit's poly endcap extension minus 20nm — more than that and the
	// retreat threatens the channel).
	MaxPullbackNM float64
	// Workers bounds tile-level concurrency (0 = GOMAXPROCS, 1 = serial).
	// The report is identical for every worker count: tiles are merged in
	// row-major order before hotspots are sorted.
	Workers int
	// Batch groups tiles through the staged batch pipeline (batch.go):
	// Batch > 1 streams tiles in groups of Batch through overlapping
	// prep → kernel → post stages. The report is byte-identical to the
	// per-tile path. <= 1 keeps the per-tile fork-join. Like Workers,
	// Batch is a scheduling knob and never enters cache signatures.
	Batch int
}

// ORCReport is the outcome of VerifyChip.
type ORCReport struct {
	// Hotspots found, pinches first, sorted by severity (ascending CD).
	Hotspots []Hotspot
	// Tiles processed.
	Tiles int
	// ScannedCDs is the number of CD scans performed.
	ScannedCDs int
	// ByKind counts hotspots per kind.
	ByKind map[HotspotKind]int
}

// VerifyChip runs tiled ORC over the chip's poly layer.
func (f *Flow) VerifyChip(chip *layout.Chip, opt ORCOptions) (*ORCReport, error) {
	if opt.TileNM <= 0 {
		opt.TileNM = 6000
	}
	if len(opt.Corners) == 0 {
		opt.Corners = f.PDK.Window.Corners()
	}
	if opt.PinchFrac <= 0 {
		opt.PinchFrac = 0.6
	}
	if opt.StepNM <= 0 {
		opt.StepNM = 120
	}
	if opt.EndExclusionNM <= 0 {
		opt.EndExclusionNM = 160
	}
	if opt.MaxPullbackNM <= 0 {
		opt.MaxPullbackNM = float64(f.PDK.Rules.PolyExtNM) - 20
	}
	scan := orcScanOptions{
		PinchFrac:      opt.PinchFrac,
		StepNM:         opt.StepNM,
		EndExclusionNM: opt.EndExclusionNM,
		MaxPullbackNM:  opt.MaxPullbackNM,
	}
	die := chip.Die
	// Build shared state up front so the tile workers only read: the
	// chip's spatial index and the stage environment (with the OPC deck
	// for rule mode).
	chip.BuildIndex()
	env, err := f.envFor(opt.Mode)
	if err != nil {
		return nil, err
	}
	guard := env.Verify.Recipe().GuardNM
	var tiles []geom.Rect // row-major: the deterministic merge order
	for ty := die.Y0; ty < die.Y1; ty += opt.TileNM {
		for tx := die.X0; tx < die.X1; tx += opt.TileNM {
			tiles = append(tiles, geom.R(tx, ty, minC(tx+opt.TileNM, die.X1), minC(ty+opt.TileNM, die.Y1)))
		}
	}
	// Run-shape manifest fields for the ledger (see ExtractGates).
	if j := f.Obs.Ledger(); j != nil {
		j.SetField("flow.orc.mode", opt.Mode.String())
		j.SetField("flow.orc.workers", strconv.Itoa(opt.Workers))
		j.SetField("flow.orc.batch", strconv.Itoa(opt.Batch))
		j.SetField("flow.orc.corners", strconv.Itoa(len(opt.Corners)))
		j.SetField("flow.orc.tiles", strconv.Itoa(len(tiles)))
	}
	sp := f.Obs.Start("flow.orc")
	shards := make([]*ORCReport, len(tiles))
	if opt.Batch > 1 {
		err = f.verifyChipBatched(env, chip, tiles, guard, opt, scan, shards, sp.ID())
	} else {
		err = par.ForEachWorker(len(tiles), func(w, i int) error {
			shard := &ORCReport{ByKind: map[HotspotKind]int{}}
			if err := f.verifyTile(env, chip, tiles[i], guard, opt.Corners, scan, shard, i, w, sp.ID()); err != nil {
				return err
			}
			shards[i] = shard
			return nil
		}, par.Workers(opt.Workers), par.Obs(f.Obs))
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	rep := &ORCReport{ByKind: map[HotspotKind]int{}, Tiles: len(tiles)}
	for _, shard := range shards {
		rep.Hotspots = append(rep.Hotspots, shard.Hotspots...)
		rep.ScannedCDs += shard.ScannedCDs
		for k, c := range shard.ByKind {
			rep.ByKind[k] += c
		}
	}
	// Stable sort over the row-major merge: hotspot ordering is
	// reproducible across runs and worker counts even under severity ties.
	sort.SliceStable(rep.Hotspots, func(i, j int) bool {
		a, b := rep.Hotspots[i], rep.Hotspots[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.CDNM < b.CDNM
	})
	return rep, nil
}

// verifyTile scans one tile: the window is clipped and canonicalized, the
// scan runs (or is recalled) in canonical coordinates, and the resulting
// hotspots are mapped back to chip space with their owning instances.
// parent is the telemetry span the tile's stage spans nest under; idx and
// worker are the tile's position and pool slot for the run ledger.
func (f *Flow) verifyTile(env *stageEnv, chip *layout.Chip, tile geom.Rect, guard geom.Coord,
	corners []litho.Corner, scan orcScanOptions, rep *ORCReport, idx, worker int, parent obs.SpanID) error {
	var rec *obs.WindowRecord
	if env.jrn != nil {
		rec = &obs.WindowRecord{Index: idx, Kind: "tile", Class: "compute", Batch: -1, Worker: worker}
		defer env.jrn.Record(rec)
	}
	window := tile.Expand(guard + env.PitchNM)
	sp := env.obs.StartChild("stage.clip", parent)
	t0 := env.met.clip.StartTimer()
	origin, rects := chip.CanonicalWindowRects(layout.LayerPoly, window)
	rec.Observe(obs.StageClip, env.met.clip.TimedSince(t0))
	sp.End()
	if len(rects) == 0 {
		return nil
	}
	back := geom.Pt(-origin.X, -origin.Y)
	art, err := f.cachedTile(env, rects, window.Translate(back), tile.Translate(back), corners, scan, rec, parent)
	if err != nil {
		return err
	}
	rep.ScannedCDs += art.ScannedCDs
	for _, h := range art.Hotspots {
		h.At = geom.Pt(h.At.X+origin.X, h.At.Y+origin.Y)
		h.Gate = nearestInstance(chip, h.At)
		rep.add(h)
	}
	return nil
}

// scanPinches walks each drawn poly rect lengthwise measuring the printed
// CD across it. Coordinates are canonical (window-relative); hotspots go to
// the tile artifact with Gate unresolved.
func scanPinches(env *stageEnv, im *litho.Image, rects []geom.Rect,
	tile geom.Rect, th float64, corner litho.Corner, scan orcScanOptions, art *TileArtifact) {
	recipe := env.Verify.Recipe()
	for _, r := range rects {
		vertical := r.H() >= r.W()
		var drawnW geom.Coord
		if vertical {
			drawnW = r.W()
		} else {
			drawnW = r.H()
		}
		minCD := scan.PinchFrac * float64(drawnW)
		scanHalf := float64(drawnW) * 2.5
		length := r.H()
		if !vertical {
			length = r.W()
		}
		// CD scans stay away from the ends (judged by the pullback check).
		lo := scan.EndExclusionNM
		hi := float64(length) - scan.EndExclusionNM
		steps := int((hi-lo)/scan.StepNM) + 1
		// Report at most one pinch per feature per corner: the worst scan.
		worst := Hotspot{CDNM: math.Inf(1)}
		found := false
		for s := 0; s < steps && hi > lo; s++ {
			frac := (float64(s) + 0.5) / float64(steps)
			pos := lo + frac*(hi-lo)
			var at geom.Point
			var res litho.CDResult
			if vertical {
				y := float64(r.Y0) + pos
				cx := float64(r.X0+r.X1) / 2
				at = geom.Pt(geom.Coord(cx), geom.Coord(y))
				res = im.MeasureCD(litho.AxisX, y, cx-scanHalf, cx+scanHalf, cx, th, recipe.Polarity)
			} else {
				x := float64(r.X0) + pos
				cy := float64(r.Y0+r.Y1) / 2
				at = geom.Pt(geom.Coord(x), geom.Coord(cy))
				res = im.MeasureCD(litho.AxisY, x, cy-scanHalf, cy+scanHalf, cy, th, recipe.Polarity)
			}
			art.ScannedCDs++
			if !tile.Contains(at) {
				continue // counted by the neighbouring tile
			}
			if !res.OK || res.CD < minCD {
				cd := 0.0
				if res.OK {
					cd = res.CD
				}
				if cd < worst.CDNM {
					worst = Hotspot{Kind: Pinch, At: at, CDNM: cd, Corner: corner}
					found = true
				}
			}
		}
		if found {
			art.Hotspots = append(art.Hotspots, worst)
		}
		scanPullback(env, im, r, vertical, tile, th, corner, scan, art)
	}
}

// scanPullback measures how far each line end of a feature retreats from
// its drawn position and flags retreats beyond the tolerance. Only long
// features (strips) have meaningful line ends; squares are judged by the
// pinch check alone.
func scanPullback(env *stageEnv, im *litho.Image, r geom.Rect, vertical bool,
	tile geom.Rect, th float64, corner litho.Corner, scan orcScanOptions, art *TileArtifact) {
	recipe := env.Verify.Recipe()
	length := r.H()
	if !vertical {
		length = r.W()
	}
	if float64(length) < 3*scan.EndExclusionNM {
		return
	}
	var res litho.CDResult
	var drawnLo, drawnHi float64
	if vertical {
		cx := float64(r.X0+r.X1) / 2
		mid := float64(r.Y0+r.Y1) / 2
		res = im.MeasureCD(litho.AxisY, cx, float64(r.Y0)-2*scan.MaxPullbackNM,
			float64(r.Y1)+2*scan.MaxPullbackNM, mid, th, recipe.Polarity)
		drawnLo, drawnHi = float64(r.Y0), float64(r.Y1)
	} else {
		cy := float64(r.Y0+r.Y1) / 2
		mid := float64(r.X0+r.X1) / 2
		res = im.MeasureCD(litho.AxisX, cy, float64(r.X0)-2*scan.MaxPullbackNM,
			float64(r.X1)+2*scan.MaxPullbackNM, mid, th, recipe.Polarity)
		drawnLo, drawnHi = float64(r.X0), float64(r.X1)
	}
	art.ScannedCDs++
	if !res.OK {
		return // total failure already reported as a pinch
	}
	report := func(pullback, pos float64) {
		if pullback <= scan.MaxPullbackNM {
			return
		}
		var at geom.Point
		if vertical {
			at = geom.Pt((r.X0+r.X1)/2, geom.Coord(pos))
		} else {
			at = geom.Pt(geom.Coord(pos), (r.Y0+r.Y1)/2)
		}
		if !tile.Contains(at) {
			return
		}
		art.Hotspots = append(art.Hotspots, Hotspot{Kind: EndPullback, At: at, CDNM: pullback, Corner: corner})
	}
	report(res.Lo-drawnLo, res.Lo)
	report(drawnHi-res.Hi, res.Hi)
}

// scanBridges samples the space between horizontally adjacent poly rects.
// drawn is the region of all drawn geometry in the window: a sample only
// counts as a bridge when resist prints where nothing is drawn (this also
// rejects pairs separated by an intermediate feature).
func scanBridges(env *stageEnv, im *litho.Image, rects []geom.Rect,
	drawn geom.Region, tile geom.Rect, th float64, corner litho.Corner, scan orcScanOptions, art *TileArtifact) {
	recipe := env.Verify.Recipe()
	printed := func(x, y float64) bool {
		v := im.Sample(x, y)
		if recipe.Polarity == litho.ClearField {
			return v < th
		}
		return v > th
	}
	maxSpace := 2 * env.PitchNM
	for i, a := range rects {
		for _, b := range rects[i+1:] {
			// Horizontal neighbours with y overlap.
			if b.X0 < a.X1 || b.X0-a.X1 > maxSpace {
				continue
			}
			y0 := maxC(a.Y0, b.Y0)
			y1 := minC(a.Y1, b.Y1)
			if y1 <= y0 {
				continue
			}
			midX := float64(a.X1+b.X0) / 2
			steps := int(float64(y1-y0)/scan.StepNM) + 1
			// At most one bridge hotspot per rect pair per corner.
			for s := 0; s < steps; s++ {
				y := float64(y0) + (float64(s)+0.5)/float64(steps)*float64(y1-y0)
				at := geom.Pt(geom.Coord(midX), geom.Coord(y))
				art.ScannedCDs++
				if !tile.Contains(at) || drawn.Contains(at) {
					continue
				}
				if printed(midX, y) {
					art.Hotspots = append(art.Hotspots, Hotspot{Kind: Bridge, At: at, CDNM: 0, Corner: corner})
					break
				}
			}
		}
	}
}

func (rep *ORCReport) add(h Hotspot) {
	rep.Hotspots = append(rep.Hotspots, h)
	rep.ByKind[h.Kind]++
}

// nearestInstance names the instance containing p (or "" if none).
func nearestInstance(chip *layout.Chip, p geom.Point) string {
	for _, in := range chip.InstancesIn(geom.R(p.X, p.Y, p.X+1, p.Y+1)) {
		return in.Name
	}
	return ""
}

func minC(a, b geom.Coord) geom.Coord {
	if a < b {
		return a
	}
	return b
}

func maxC(a, b geom.Coord) geom.Coord {
	if a > b {
		return a
	}
	return b
}
