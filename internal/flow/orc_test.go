package flow

import (
	"testing"

	"postopc/internal/litho"
	"postopc/internal/netlist"
	"postopc/internal/place"
)

func TestVerifyChipCleanAtNominal(t *testing.T) {
	f := fastFlow(t)
	pl, err := f.Place(netlist.InverterChain(4), place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.VerifyChip(pl.Chip, ORCOptions{
		Corners: []litho.Corner{litho.Nominal},
		Mode:    OPCModel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tiles == 0 || rep.ScannedCDs == 0 {
		t.Fatalf("nothing verified: %+v", rep)
	}
	// A small OPC'd chain at nominal must print without pinches or
	// bridges.
	if len(rep.Hotspots) != 0 {
		t.Fatalf("unexpected hotspots at nominal: %v", rep.Hotspots[:min(3, len(rep.Hotspots))])
	}
}

func TestVerifyChipCatchesOverdose(t *testing.T) {
	f := fastFlow(t)
	pl, err := f.Place(netlist.InverterChain(4), place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A absurd overdose washes lines away: the verifier must report
	// pinches.
	rep, err := f.VerifyChip(pl.Chip, ORCOptions{
		Corners: []litho.Corner{{DefocusNM: 0, Dose: 1.8}},
		Mode:    OPCNone,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByKind[Pinch] == 0 {
		t.Fatal("overdose produced no pinch hotspots")
	}
	// Hotspots carry locations inside the die and kind strings.
	h := rep.Hotspots[0]
	if !pl.Chip.Die.Contains(h.At) {
		t.Fatalf("hotspot outside die: %v", h)
	}
	if h.Kind.String() != "pinch" {
		t.Fatalf("kind = %s", h.Kind)
	}
}

func TestVerifyChipCatchesBridging(t *testing.T) {
	f := fastFlow(t)
	// NAND3 cells put poly landing pads at minimum space — the bridging
	// risk site. A massive underdose fattens everything until they merge.
	n := &netlist.Netlist{Name: "dense", Inputs: []string{"a", "b", "c"}}
	n.AddGate("g0", "NAND3_X1", map[string]string{"A": "a", "B": "b", "C": "c", "Y": "n1"})
	n.AddGate("g1", "NAND3_X1", map[string]string{"A": "n1", "B": "b", "C": "c", "Y": "n2"})
	n.Outputs = []string{"n2"}
	pl, err := f.Place(n, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.VerifyChip(pl.Chip, ORCOptions{
		Corners: []litho.Corner{{DefocusNM: 0, Dose: 0.38}},
		Mode:    OPCNone,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByKind[Bridge] == 0 {
		t.Fatal("underdose produced no bridge hotspots")
	}
}

func TestVerifyChipHotspotsSorted(t *testing.T) {
	f := fastFlow(t)
	pl, err := f.Place(netlist.InverterChain(3), place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.VerifyChip(pl.Chip, ORCOptions{
		Corners: []litho.Corner{{DefocusNM: 0, Dose: 1.8}},
		Mode:    OPCNone,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rep.Hotspots); i++ {
		a, b := rep.Hotspots[i-1], rep.Hotspots[i]
		if a.Kind > b.Kind || (a.Kind == b.Kind && a.CDNM > b.CDNM) {
			t.Fatalf("hotspots not sorted at %d: %v then %v", i, a, b)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
