package flow

// Concurrency and determinism coverage for the parallel hot loops: tiled
// ORC, gate extraction, and the Flow's lazily built members. Run with
// -race to exercise the synchronization (see `make check`).

import (
	"reflect"
	"sync"
	"testing"

	"postopc/internal/geom"
	"postopc/internal/litho"
	"postopc/internal/netlist"
	"postopc/internal/opc"
	"postopc/internal/pdk"
	"postopc/internal/place"
)

func TestVerifyChipParallelMatchesSerial(t *testing.T) {
	f := fastFlow(t)
	pl, err := f.Place(netlist.InverterChain(4), place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Overdose without OPC produces real hotspots, so the deterministic
	// merge and stable severity sort are actually exercised.
	opt := ORCOptions{
		Corners: []litho.Corner{{DefocusNM: 0, Dose: 1.8}, litho.Nominal},
		Mode:    OPCNone,
		TileNM:  3000, // several tiles even on the small test chip
	}
	optSerial := opt
	optSerial.Workers = 1
	serial, err := f.VerifyChip(pl.Chip, optSerial)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Hotspots) == 0 || serial.Tiles < 2 {
		t.Fatalf("fixture too weak to test merging: %d hotspots over %d tiles",
			len(serial.Hotspots), serial.Tiles)
	}
	for _, workers := range []int{0, 2, 5} {
		optPar := opt
		optPar.Workers = workers
		parallel, err := f.VerifyChip(pl.Chip, optPar)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("workers=%d: parallel ORC report diverged from serial:\nserial   %+v\nparallel %+v",
				workers, serial, parallel)
		}
	}
}

func TestExtractGatesParallelMatchesSerial(t *testing.T) {
	f := fastFlow(t)
	pl, err := f.Place(netlist.InverterChain(5), place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt := ExtractOptions{Mode: OPCModel, Workers: 1}
	serial, err := f.ExtractGates(pl.Chip, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 4
	parallel, err := f.ExtractGates(pl.Chip, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel extraction diverged from serial")
	}
}

// TestConcurrentLazyInits hammers a fresh Flow's lazily built members —
// the rule-OPC deck (via rule-mode ExtractInstance) and the dark-field
// contact model (via ExtractContacts) — from many goroutines at once. With
// -race this proves first use is safe by construction.
func TestConcurrentLazyInits(t *testing.T) {
	f, err := New(pdk.N90(), Config{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := f.Place(netlist.InverterChain(3), place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pl.Chip.BuildIndex()
	inst := pl.Chip.FindInstance("u1")
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				_, errs[i] = f.ExtractInstance(pl.Chip, inst, ExtractOptions{Mode: OPCRule})
			} else {
				_, errs[i] = f.ExtractContacts(pl.Chip, inst, litho.Nominal)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
}

func TestInteriorEPEsRejectsTruncatedSamples(t *testing.T) {
	frag := func(x, y geom.Coord) *opc.Fragment {
		return &opc.Fragment{Control: geom.Pt(x, y)}
	}
	frags := []*opc.FragmentedPolygon{
		{Frags: []*opc.Fragment{frag(10, 10), frag(20, 10)}},
		{Frags: []*opc.Fragment{frag(500, 500)}},
	}
	interior := geom.R(0, 0, 100, 100)
	// Matching counts: only the two interior control points survive.
	out, err := interiorEPEs(frags, []float64{1, 2, 3}, interior)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != 1 || out[1] != 2 {
		t.Fatalf("interior EPEs = %v", out)
	}
	// A short sample vector used to be silently truncated; now it must
	// fail loudly.
	if _, err := interiorEPEs(frags, []float64{1, 2}, interior); err == nil {
		t.Fatal("short EPE vector accepted")
	}
	if _, err := interiorEPEs(frags, []float64{1, 2, 3, 4}, interior); err == nil {
		t.Fatal("long EPE vector accepted")
	}
}
