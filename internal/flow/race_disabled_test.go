//go:build !race

package flow

const raceEnabled = false
