//go:build race

package flow

// raceEnabled reports whether the race detector is active; its
// counterpart in race_disabled_test.go covers regular builds. Heavy
// pipeline-matrix tests shrink their combinations under the detector
// (it multiplies the litho simulation cost ~20×) — correctness of the
// full matrix is covered by the regular suite.
const raceEnabled = true
