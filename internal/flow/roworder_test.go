package flow

import (
	"testing"

	"postopc/internal/netlist"
	"postopc/internal/report"
	"postopc/internal/sta"
)

// TestRunRowOrderStable locks in the PR 1 map-iteration fix that the
// maporder analyzer now guards statically: the Tagged gate list is
// collected from the map-keyed extraction results, so without the
// deterministic sort the report rows built from it would reshuffle
// between runs. Ten runs must render byte-identical tables.
func TestRunRowOrderStable(t *testing.T) {
	f := fastFlow(t)
	n := netlist.InverterChain(4)
	opt := RunOptions{
		STA:  sta.DefaultConfig(1500),
		Mode: OPCRule,
	}
	render := func(res *RunResult) string {
		tb := report.NewTable("tagged gates", "gate", "sites")
		for _, name := range res.Tagged {
			tb.AddF(0, name, len(res.Extractions[name].Sites))
		}
		return tb.String()
	}
	var first string
	for run := 0; run < 10; run++ {
		res, err := f.Run(n, opt)
		if err != nil {
			t.Fatal(err)
		}
		got := render(res)
		if run == 0 {
			first = got
			continue
		}
		if got != first {
			t.Fatalf("run %d: report rows reordered:\nfirst:\n%s\nnow:\n%s", run, first, got)
		}
	}
}
