package flow

import (
	"math"
	"testing"

	"postopc/internal/netlist"
	"postopc/internal/pdk"
	"postopc/internal/place"
)

func TestExtractInstanceRuleOPC(t *testing.T) {
	f := fastFlow(t)
	pl, err := f.Place(netlist.InverterChain(3), place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inst := pl.Chip.FindInstance("u1")
	ext, err := f.ExtractInstance(pl.Chip, inst, ExtractOptions{Mode: OPCRule})
	if err != nil {
		t.Fatal(err)
	}
	if ext.Mode != OPCRule || ext.Mode.String() != "rule" {
		t.Fatalf("mode = %v", ext.Mode)
	}
	// Rule OPC produces a printed gate near drawn, with an EPE report.
	cc := ext.Sites[0].PerCorner[0]
	if !cc.Printed || math.Abs(cc.MeanCD-90) > 8 {
		t.Fatalf("rule-OPC CD = %.1f", cc.MeanCD)
	}
	if ext.EPE.Count == 0 {
		t.Fatal("rule-OPC EPE report empty")
	}
	// The rule table is built once and cached on the flow.
	rt1, err := f.ruleTable()
	if err != nil {
		t.Fatal(err)
	}
	if rt1 == nil || len(rt1.SpacesNM) == 0 {
		t.Fatal("rule table not built")
	}
	if rt2, _ := f.ruleTable(); rt2 != rt1 {
		t.Fatal("rule table not cached")
	}
	// OPCNone stringer too.
	if OPCNone.String() != "none" || OPCModel.String() != "model" {
		t.Fatal("mode strings")
	}
}

func TestRunRejectsMissingClock(t *testing.T) {
	f := fastFlow(t)
	if _, err := f.Run(netlist.InverterChain(2), RunOptions{}); err == nil {
		t.Fatal("zero clock accepted")
	}
}

func TestNewAbbeFlow(t *testing.T) {
	// The accurate (Abbe-verified) constructor path.
	f, err := New(pdk.N90(), Config{Fast: false})
	if err != nil {
		t.Fatal(err)
	}
	if f.VerifySim == f.OPCModelSim {
		t.Fatal("accurate flow must verify with a different model than the OPC loop")
	}
	if f.VerifySim.Recipe().Threshold == f.OPCModelSim.Recipe().Threshold {
		t.Fatal("Abbe and Gaussian thresholds must differ (separate calibrations)")
	}
}

func TestVariationHelpers(t *testing.T) {
	if clampF(5, 1.5) != 1.5 || clampF(-5, 1.5) != -1.5 || clampF(0.3, 1.5) != 0.3 {
		t.Fatal("clampF")
	}
	if nonzero(0) != 1 || nonzero(7) != 7 {
		t.Fatal("nonzero")
	}
	var mc MCResult
	if !math.IsNaN(mc.Percentile(0.5)) {
		t.Fatal("empty MC percentile should be NaN")
	}
	mc.WNS = []float64{1, 2, 3}
	if mc.Percentile(-1) != 1 || mc.Percentile(2) != 3 {
		t.Fatal("percentile clamping")
	}
}

func TestLocalSiteName(t *testing.T) {
	if localSiteName("u1/MN0_0") != "MN0_0" {
		t.Fatal("qualified")
	}
	if localSiteName("MN0_0") != "MN0_0" {
		t.Fatal("bare")
	}
	if localSiteName("a/b/c") != "c" {
		t.Fatal("nested")
	}
}
