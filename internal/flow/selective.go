package flow

import (
	"fmt"
	"sort"

	"postopc/internal/layout"
	"postopc/internal/litho"
	"postopc/internal/sta"
)

// The paper's DFM feedback loop: pass design intent (tagged critical gates)
// to the OPC side and spend aggressive correction only where timing needs
// it. The sweep extracts the chip uncorrected once, then walks an
// increasing tagging depth K, re-extracting only the newly tagged windows.
// With the pattern cache enabled the sweep's cost is incremental by
// construction: gates tagged at step K were already simulated at step K−1
// (same window signature), so each step pays only for its newly tagged
// contexts — and repeated cell contexts collapse further.

// SelectiveOptions configure SelectiveSweep.
type SelectiveOptions struct {
	// Ks are the tagging depths to sweep (paths tagged per step); 0 means
	// "no OPC anywhere" and is always implicitly the baseline.
	Ks []int
	// Mode is the correction applied to tagged gates (default OPCModel).
	Mode OPCMode
	// Corners are the extraction conditions (default Nominal).
	Corners []litho.Corner
	// CritPaths is the number of worst drawn paths whose gates the CD
	// metric is evaluated over (default 5).
	CritPaths int
	// Workers bounds extraction concurrency (0 = GOMAXPROCS, 1 = serial).
	Workers int
}

// SelectiveStep is the outcome of one tagging depth.
type SelectiveStep struct {
	// K is the tagging depth (number of worst paths tagged).
	K int
	// Tagged are the gates OPC'd at this depth.
	Tagged []string
	// WNS is the annotated worst slack (ps) at Corners[0].
	WNS float64
	// DeltaWNS is WNS minus the full-OPC reference WNS (ps).
	DeltaWNS float64
	// MeanAbsCDErrNM averages |meanCD − drawn| over the critical gates'
	// sites (nm) — the paper's CD-control metric.
	MeanAbsCDErrNM float64
}

// SelectiveResult is the outcome of SelectiveSweep.
type SelectiveResult struct {
	// Steps holds one entry per requested K, in order.
	Steps []SelectiveStep
	// FullWNS is the reference worst slack with Mode applied everywhere.
	FullWNS float64
	// FullMeanAbsCDErrNM is the CD metric of the full correction.
	FullMeanAbsCDErrNM float64
	// GatesTotal is the number of extractable gates on the chip.
	GatesTotal int
	// CriticalGates are the gates the CD metric is evaluated on.
	CriticalGates []string
}

// SelectiveSweep runs the selective-OPC loop on a placed chip: drawn is the
// sign-off analysis used to tag critical paths, cfg the STA conditions for
// the annotated re-analyses.
func (f *Flow) SelectiveSweep(chip *layout.Chip, g *sta.Graph, drawn *sta.Result, cfg sta.Config, opt SelectiveOptions) (*SelectiveResult, error) {
	if len(opt.Ks) == 0 {
		return nil, fmt.Errorf("flow: selective sweep needs at least one tagging depth")
	}
	if opt.Mode == OPCNone {
		opt.Mode = OPCModel
	}
	if len(opt.Corners) == 0 {
		opt.Corners = []litho.Corner{litho.Nominal}
	}
	if opt.CritPaths <= 0 {
		opt.CritPaths = 5
	}
	base := ExtractOptions{Corners: opt.Corners, Mode: OPCNone, Workers: opt.Workers}
	sel := ExtractOptions{Corners: opt.Corners, Mode: opt.Mode, Workers: opt.Workers}

	noOPC, err := f.ExtractGates(chip, nil, base)
	if err != nil {
		return nil, err
	}
	fullOPC, err := f.ExtractGates(chip, nil, sel)
	if err != nil {
		return nil, err
	}
	fullRes, err := g.Analyze(cfg, Annotations(fullOPC, 0))
	if err != nil {
		return nil, err
	}
	crit := drawn.CriticalGates(opt.CritPaths)
	sort.Strings(crit)
	critSet := make(map[string]bool, len(crit))
	for _, n := range crit {
		critSet[n] = true
	}
	out := &SelectiveResult{
		FullWNS:            fullRes.WNS,
		FullMeanAbsCDErrNM: MeanAbsCDError(fullOPC, critSet),
		GatesTotal:         len(fullOPC),
		CriticalGates:      crit,
	}
	for _, k := range opt.Ks {
		extrs := make(map[string]*GateExtraction, len(noOPC))
		for name, e := range noOPC {
			extrs[name] = e
		}
		var tagged []string
		if k > 0 {
			tagged = drawn.CriticalGates(k)
			selExtrs, err := f.ExtractGates(chip, tagged, sel)
			if err != nil {
				return nil, err
			}
			for name, e := range selExtrs {
				extrs[name] = e
			}
		}
		res, err := g.Analyze(cfg, Annotations(extrs, 0))
		if err != nil {
			return nil, err
		}
		out.Steps = append(out.Steps, SelectiveStep{
			K:              k,
			Tagged:         tagged,
			WNS:            res.WNS,
			DeltaWNS:       res.WNS - fullRes.WNS,
			MeanAbsCDErrNM: MeanAbsCDError(extrs, critSet),
		})
	}
	return out, nil
}

// MeanAbsCDError averages |meanCD − drawn| at the first extracted corner
// over the sites of the selected gates (nm).
func MeanAbsCDError(extrs map[string]*GateExtraction, gates map[string]bool) float64 {
	var sum float64
	n := 0
	for name, e := range extrs {
		if !gates[name] {
			continue
		}
		for _, s := range e.Sites {
			if len(s.PerCorner) == 0 {
				continue
			}
			d := s.PerCorner[0].MeanCD - s.DrawnL
			if d < 0 {
				d = -d
			}
			sum += d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
