package flow

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"postopc/internal/cache"
	"postopc/internal/cdx"
	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/litho"
	"postopc/internal/obs"
)

// Window signatures: each cached artifact is keyed by a SHA-256 over the
// canonical serialization of its full input — the environment fingerprint
// (models, OPC and extraction options, device parameters, mode) plus the
// canonical clipped geometry and the per-call parameters (sites, corners,
// scan settings). Two calls with equal signatures are guaranteed to compute
// identical artifacts, so the cache can substitute one for the other; the
// Workers option never enters a signature because scheduling must not
// change results.

// envFor builds the stage environment for mode, including the fingerprint.
// It is computed per call, never memoized on the Flow: sweeps tweak shallow
// Flow copies (sharing lazy state but differing in options), and a stale
// fingerprint would silently alias their signatures.
func (f *Flow) envFor(mode OPCMode) (*stageEnv, error) {
	env := &stageEnv{
		Verify: f.VerifySim,
		OPCSim: f.OPCModelSim,
		OPCOpt: f.OPCOpt,
		CDX: cdx.Options{
			Slices:       f.CDX.Slices,
			ScanHalfNM:   f.CDX.ScanHalfNM,
			EdgeMarginNM: f.CDX.EdgeMarginNM,
		},
		Dev:     f.Dev,
		PitchNM: f.PDK.Rules.PolyPitchNM,
		Mode:    mode,
		obs:     f.Obs,
		met:     newStageMetrics(f.Obs),
		jrn:     f.Obs.Ledger(),
	}
	if mode == OPCRule {
		rt, err := f.ruleTable()
		if err != nil {
			return nil, err
		}
		env.Rule = rt
	}
	b := geom.AppendKeyString(nil, "postopc/flow/v1")
	b = geom.AppendKeyInt(b, int64(env.Mode), int64(env.PitchNM))
	b = env.Verify.AppendKey(b)
	b = env.OPCSim.AppendKey(b)
	b = env.OPCOpt.AppendKey(b)
	if env.Rule != nil {
		b = env.Rule.AppendKey(b)
	}
	b = env.CDX.AppendKey(b)
	b = appendKeyDev(b, env.Dev)
	env.fingerprint = b
	// The run ledger's manifest carries a short digest of the environment
	// fingerprint, so two ledgers can be checked for comparable inputs
	// before their latencies are diffed.
	if env.jrn != nil {
		sum := sha256.Sum256(b)
		env.jrn.SetField("flow.env."+mode.String(), hex.EncodeToString(sum[:8]))
	}
	return env, nil
}

// appendKeyDev serializes the device model. The kit's device.Model keys its
// parameters precisely; an injected model without AppendKey falls back to
// its Go-syntax representation, which covers exported state of comparable
// implementations.
func appendKeyDev(dst []byte, dev deviceModel) []byte {
	if k, ok := dev.(interface{ AppendKey([]byte) []byte }); ok {
		return k.AppendKey(dst)
	}
	return geom.AppendKeyString(dst, fmt.Sprintf("%#v", dev))
}

// windowSignature keys one gate-extraction window: environment, canonical
// clip, canonical sites, corners.
func windowSignature(env *stageEnv, clip layout.CanonicalWindow, sites []layout.GateSite, corners []litho.Corner) cache.Key {
	b := append([]byte(nil), env.fingerprint...)
	b = geom.AppendKeyString(b, "window")
	b = geom.AppendKeyRect(b, clip.Bounds)
	b = geom.AppendKeyPolygons(b, clip.Polys)
	b = geom.AppendKeyInt(b, int64(len(sites)))
	for _, s := range sites {
		b = geom.AppendKeyString(b, s.Name)
		b = geom.AppendKeyString(b, s.Pin)
		b = geom.AppendKeyInt(b, int64(s.Kind))
		b = geom.AppendKeyRect(b, s.Channel)
	}
	b = litho.AppendKeyCorners(b, corners)
	return cache.Key(sha256.Sum256(b))
}

// tileSignature keys one ORC tile: environment, canonical clipped rects,
// canonical window and tile bounds, corners, scan parameters.
func tileSignature(env *stageEnv, rects []geom.Rect, bounds, tile geom.Rect, corners []litho.Corner, scan orcScanOptions) cache.Key {
	b := append([]byte(nil), env.fingerprint...)
	b = geom.AppendKeyString(b, "tile")
	b = geom.AppendKeyRect(b, bounds)
	b = geom.AppendKeyRect(b, tile)
	b = geom.AppendKeyInt(b, int64(len(rects)))
	for _, r := range rects {
		b = geom.AppendKeyRect(b, r)
	}
	b = litho.AppendKeyCorners(b, corners)
	b = geom.AppendKeyFloat(b, scan.PinchFrac, scan.StepNM, scan.EndExclusionNM, scan.MaxPullbackNM)
	return cache.Key(sha256.Sum256(b))
}

// recordSig stamps the hex signature into a ledger record (nil-safe).
func recordSig(rec *obs.WindowRecord, key cache.Key) {
	if rec != nil {
		rec.Sig = hex.EncodeToString(key[:])
	}
}

// recordClass stamps the cache classification into a ledger record
// (nil-safe).
func recordClass(rec *obs.WindowRecord, class string) {
	if rec != nil {
		rec.Class = class
	}
}

// cachedWindow computes (or recalls) the window artifact for one canonical
// clip. With no cache attached it simply runs the stages. parent is the
// telemetry span the stage spans nest under; it never enters the
// signature (a cache hit recalls the artifact without re-running — and
// therefore without re-tracing — the stages). rec, when non-nil, receives
// the window's signature and cache classification for the run ledger; it
// mirrors cache.Do's attribution exactly (leader = miss, ready = hit,
// blocked single-flight = wait) and never feeds back into the result.
func (f *Flow) cachedWindow(env *stageEnv, clip layout.CanonicalWindow, sites []layout.GateSite, corners []litho.Corner, rec *obs.WindowRecord, parent obs.SpanID) (*WindowArtifact, error) {
	if f.Cache == nil {
		// No cache: signatures are computed only when the ledger wants
		// them, so uninstrumented runs keep skipping the hash entirely.
		if rec != nil {
			recordSig(rec, windowSignature(env, clip, sites, corners))
		}
		return stageWindow(env, clip, sites, corners, rec, parent)
	}
	key := windowSignature(env, clip, sites, corners)
	recordSig(rec, key)
	tk := f.Cache.Reserve(key)
	if tk.Leader() {
		recordClass(rec, "miss")
		art, err := stageWindow(env, clip, sites, corners, rec, parent)
		tk.Complete(art, err)
		return art, err
	}
	if tk.Ready() {
		recordClass(rec, "hit")
	} else {
		recordClass(rec, "wait")
	}
	v, err := tk.Wait()
	art, _ := v.(*WindowArtifact)
	return art, err
}

// cachedTile computes (or recalls) the scan artifact for one canonical ORC
// tile, with the same ledger attribution as cachedWindow.
func (f *Flow) cachedTile(env *stageEnv, rects []geom.Rect, bounds, tile geom.Rect, corners []litho.Corner, scan orcScanOptions, rec *obs.WindowRecord, parent obs.SpanID) (*TileArtifact, error) {
	if f.Cache == nil {
		if rec != nil {
			recordSig(rec, tileSignature(env, rects, bounds, tile, corners, scan))
		}
		return stageTileScan(env, rects, bounds, tile, corners, scan, rec, parent)
	}
	key := tileSignature(env, rects, bounds, tile, corners, scan)
	recordSig(rec, key)
	tk := f.Cache.Reserve(key)
	if tk.Leader() {
		recordClass(rec, "miss")
		art, err := stageTileScan(env, rects, bounds, tile, corners, scan, rec, parent)
		tk.Complete(art, err)
		return art, err
	}
	if tk.Ready() {
		recordClass(rec, "hit")
	} else {
		recordClass(rec, "wait")
	}
	v, err := tk.Wait()
	art, _ := v.(*TileArtifact)
	return art, err
}
