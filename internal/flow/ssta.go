package flow

import (
	"fmt"

	"postopc/internal/layout"
	"postopc/internal/netlist"
	"postopc/internal/sta"
	"postopc/internal/timinglib"
)

// CanonicalArcs bridges the per-gate variation model into the SSTA engine:
// each gate's cell is evaluated at five annotation points — nominal, full
// window defocus (u = 1), the two dose extremes (d = ±1), and a +1σ random
// CD offset — and arc delays at those points yield the canonical delay's
// sensitivities.
type canonicalArcs struct {
	tl    *timinglib.Lib
	evals map[string]*gateEvalSet
}

type gateEvalSet struct {
	nominal, defocus, dosePlus, doseMinus, randPlus timinglib.Eval
}

// CanonicalArcs builds the SSTA arc model for a netlist from its variation
// model (see BuildVariationModel). Gates missing from the model time at
// drawn with zero sensitivities.
func (f *Flow) CanonicalArcs(n *netlist.Netlist, vm *VariationModel) (sta.CanonicalArcs, error) {
	points := []sta.Annotations{
		vm.Annotations(0, 1, nil),                                   // nominal
		vm.Annotations(vm.PW.DefocusNM, 1, nil),                     // u = 1
		vm.Annotations(0, 1+vm.PW.DoseFrac, nil),                    // d = +1
		vm.Annotations(0, 1-vm.PW.DoseFrac, nil),                    // d = −1
		withRandomOffset(vm.Annotations(0, 1, nil), vm.RandSigmaNM), // +1σ random
	}
	ca := &canonicalArcs{tl: f.TL, evals: map[string]*gateEvalSet{}}
	for _, gate := range n.Gates {
		info, err := f.Lib.Get(gate.Cell)
		if err != nil {
			return nil, err
		}
		set := &gateEvalSet{}
		for i, dst := range []*timinglib.Eval{
			&set.nominal, &set.defocus, &set.dosePlus, &set.doseMinus, &set.randPlus,
		} {
			ann := points[i][gate.Name]
			ev, err := f.TL.Evaluate(info, ann)
			if err != nil {
				return nil, fmt.Errorf("flow: SSTA eval of %s: %w", gate.Name, err)
			}
			*dst = ev
		}
		ca.evals[gate.Name] = set
	}
	return ca, nil
}

// withRandomOffset shifts every site of every gate by +sigma nm.
func withRandomOffset(base sta.Annotations, sigmaNM float64) sta.Annotations {
	out := sta.Annotations{}
	for gate, ann := range base {
		a := ann
		out[gate] = func(site layout.GateSite) timinglib.Lengths {
			var l timinglib.Lengths
			if a != nil {
				l = a(site)
			} else {
				l = timinglib.Drawn(site)
			}
			l.DelayL += sigmaNM
			l.LeakL += sigmaNM
			return l
		}
	}
	return out
}

// Arc implements sta.CanonicalArcs.
func (ca *canonicalArcs) Arc(gate string, outRise bool, loadFF, inSlewPS float64) (sta.Canonical, float64) {
	return ca.canonical(gate, outRise, loadFF, inSlewPS)
}

// Launch implements sta.CanonicalArcs.
func (ca *canonicalArcs) Launch(gate string, outRise bool, loadFF, inSlewPS float64) (sta.Canonical, float64) {
	return ca.canonical(gate, outRise, loadFF, inSlewPS)
}

func (ca *canonicalArcs) canonical(gate string, outRise bool, loadFF, inSlewPS float64) (sta.Canonical, float64) {
	set := ca.evals[gate]
	if set == nil {
		// Unknown gate: zero-delay placeholder (cannot happen for graphs
		// built from the same netlist).
		return sta.Canonical{}, inSlewPS
	}
	d0, s0 := ca.tl.ArcDelay(set.nominal, outRise, loadFF, inSlewPS)
	du, _ := ca.tl.ArcDelay(set.defocus, outRise, loadFF, inSlewPS)
	dp, _ := ca.tl.ArcDelay(set.dosePlus, outRise, loadFF, inSlewPS)
	dm, _ := ca.tl.ArcDelay(set.doseMinus, outRise, loadFF, inSlewPS)
	dr, _ := ca.tl.ArcDelay(set.randPlus, outRise, loadFF, inSlewPS)
	c := sta.Canonical{
		Mean:  d0,
		SensU: du - d0,
		SensD: (dp - dm) / 2,
	}
	c.Rand2 = (dr - d0) * (dr - d0)
	return c, s0
}
