package flow

import (
	"math"
	"testing"

	"postopc/internal/sta"
)

func TestSSTAMatchesMonteCarlo(t *testing.T) {
	res := fullRun(t)
	f := fastFlow(t)
	vm, err := BuildVariationModel(res.Extractions, f.PDK.Window, f.PDK.Device.SigmaLRandomNM)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sta.DefaultConfig(1500)
	arcs, err := f.CanonicalArcs(res.Netlist, vm)
	if err != nil {
		t.Fatal(err)
	}
	p := sta.DefaultSSTAParams()
	ss, err := res.Graph.AnalyzeSSTA(cfg, p, arcs)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := vm.MonteCarlo(res.Graph, cfg, 400, 9)
	if err != nil {
		t.Fatal(err)
	}
	ssMean := ss.WNS.MeanTotal(p)
	ssSigma := ss.WNS.Sigma(p)
	// First-order SSTA against sampled truth: mean within a few ps (or a
	// fraction of the spread), sigma within a factor of two.
	tol := math.Max(3, 0.5*mc.StdWNS)
	if math.Abs(ssMean-mc.MeanWNS) > tol {
		t.Fatalf("SSTA WNS mean %.2f vs MC %.2f (tol %.2f)", ssMean, mc.MeanWNS, tol)
	}
	if ssSigma < mc.StdWNS/2 || ssSigma > mc.StdWNS*2 {
		t.Fatalf("SSTA sigma %.2f vs MC %.2f", ssSigma, mc.StdWNS)
	}
	// Endpoint ordering agrees with the deterministic nominal analysis on
	// the most critical endpoint.
	det, err := res.Graph.Analyze(cfg, Annotations(res.Extractions, 0))
	if err != nil {
		t.Fatal(err)
	}
	if ss.Endpoints[0].Name != det.Endpoints[0].Name {
		t.Logf("note: SSTA worst endpoint %s vs nominal %s (can differ when sensitivities reorder)",
			ss.Endpoints[0].Name, det.Endpoints[0].Name)
	}
	// Endpoints are sorted by mean slack.
	for i := 1; i < len(ss.Endpoints); i++ {
		if ss.Endpoints[i].Slack.MeanTotal(p) < ss.Endpoints[i-1].Slack.MeanTotal(p) {
			t.Fatal("SSTA endpoints not sorted")
		}
	}
}

func TestCanonicalArcsSensitivities(t *testing.T) {
	res := fullRun(t)
	f := fastFlow(t)
	vm, err := BuildVariationModel(res.Extractions, f.PDK.Window, f.PDK.Device.SigmaLRandomNM)
	if err != nil {
		t.Fatal(err)
	}
	arcs, err := f.CanonicalArcs(res.Netlist, vm)
	if err != nil {
		t.Fatal(err)
	}
	gate := res.Netlist.Gates[0].Name
	c, slew := arcs.Arc(gate, true, 8, 30)
	if c.Mean <= 0 || slew <= 0 {
		t.Fatalf("arc canonical %+v slew %g", c, slew)
	}
	// Defocus shortens gates -> faster -> negative focus sensitivity.
	if c.SensU >= 0 {
		t.Fatalf("SensU = %g, want negative (defocus speeds up)", c.SensU)
	}
	// Random CD lengthening slows the arc: positive variance recorded.
	if c.Rand2 <= 0 {
		t.Fatalf("Rand2 = %g", c.Rand2)
	}
	// Unknown gates degrade to zero-delay placeholders.
	z, _ := arcs.Arc("ghost", true, 8, 30)
	if z.Mean != 0 {
		t.Fatalf("ghost arc = %+v", z)
	}
}
