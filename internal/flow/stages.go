package flow

import (
	"postopc/internal/cdx"
	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/litho"
	"postopc/internal/obs"
	"postopc/internal/opc"
)

// This file decomposes the per-window work of extraction (extract.go) and
// full-chip ORC (orc.go) into staged units — clip → canonicalize → OPC →
// image → contour → profile — communicating through typed artifacts. Every
// stage computes in canonical (window-origin) coordinates: the clipped
// geometry is translated so the window's lower-left corner is (0,0) before
// any simulation, which makes every float downstream a pure function of the
// window's content rather than of its chip position. That purity is what
// the content-addressed pattern cache (signature.go) relies on; it also
// means the cached and uncached paths run the same code on the same bytes,
// so enabling the cache can never change a result.
//
// Stage functions are deliberately free functions over an explicit
// *stageEnv, never methods on Flow: everything they read is either a
// parameter or a field of env, and env's fingerprint serializes all of it
// into the cache signature. The cachekey analyzer (internal/analysis)
// enforces this shape — a stage* function must not be a method and must not
// read package-level state.

// stageEnv captures every Flow-derived input of the staged computations.
// Anything that can change a stage's output must be a field here AND must
// be folded into fingerprint by envFor; Workers-style scheduling knobs must
// never appear.
type stageEnv struct {
	// Verify is the accurate model driving imaging and verification.
	Verify litho.Model
	// OPCSim drives the OPC inner loop and EPE measurement.
	OPCSim litho.Model
	// OPCOpt configures model-based correction and fragmentation.
	OPCOpt opc.Options
	// Rule is the rule-based deck; non-nil exactly when Mode is OPCRule.
	Rule *opc.RuleTable
	// CDX configures gate CD extraction.
	CDX cdx.Options
	// Dev collapses CD profiles to equivalent lengths.
	Dev deviceModel
	// PitchNM is the kit's poly pitch (context ambit, rule reach, bridge
	// search range).
	PitchNM geom.Coord
	// Mode is the OPC applied to each window.
	Mode OPCMode

	// fingerprint is the canonical serialization of every field above —
	// the environment half of every window/tile signature.
	fingerprint []byte //postopc:keyignore the serialized key itself, not an input to it

	// obs, met and jrn carry the run's telemetry (write-only, nil-safe).
	// Like Workers, they are deliberately NOT part of fingerprint:
	// telemetry observes a computation without being an input to it, so two
	// runs differing only in instrumentation must share cache entries.
	obs *obs.Sink    //postopc:keyignore telemetry observes the computation without being an input
	met stageMetrics //postopc:keyignore telemetry observes the computation without being an input
	jrn *obs.Journal //postopc:keyignore telemetry observes the computation without being an input
}

// stageMetrics are the pre-resolved per-stage latency histograms of one
// environment. All handles are nil (no-ops) when telemetry is off.
type stageMetrics struct {
	clip, canonicalize, opc, image, contour, profile *obs.Histogram
}

// newStageMetrics resolves the per-stage histograms from the sink.
func newStageMetrics(sink *obs.Sink) stageMetrics {
	return stageMetrics{
		clip:         sink.LatencyHistogram("flow.stage.clip_ns"),
		canonicalize: sink.LatencyHistogram("flow.stage.canonicalize_ns"),
		opc:          sink.LatencyHistogram("flow.stage.opc_ns"),
		image:        sink.LatencyHistogram("flow.stage.image_ns"),
		contour:      sink.LatencyHistogram("flow.stage.contour_ns"),
		profile:      sink.LatencyHistogram("flow.stage.profile_ns"),
	}
}

// WindowArtifact is the outcome of one window's OPC → image → contour →
// profile chain, in canonical coordinates. Artifacts are shared between
// cache hits and must be treated as immutable by every consumer.
type WindowArtifact struct {
	// Sites holds the per-transistor extractions, named by cell-local
	// device name.
	Sites []SiteCD
	// EPE summarizes the interior residual EPE of the window's OPC run at
	// nominal (zero-valued for OPCNone).
	EPE opc.EPEStats
	// EPEValues are the raw interior EPE samples behind EPE (nm).
	EPEValues []float64
}

// TileArtifact is the outcome of one ORC tile scan in canonical
// coordinates: hotspot locations are window-relative and instance names are
// unresolved (the caller maps At back to chip space and fills Gate).
// Artifacts are shared between cache hits and must be treated as immutable.
type TileArtifact struct {
	// Hotspots found in the tile, in scan order, Gate unset.
	Hotspots []Hotspot
	// ScannedCDs is the number of CD scans performed.
	ScannedCDs int
}

// orcScanOptions are the geometric scan parameters of an ORC tile pass —
// the subset of ORCOptions that changes the scan result (Workers stays
// out; Corners and Mode are keyed separately).
type orcScanOptions struct {
	PinchFrac      float64
	StepNM         float64
	EndExclusionNM float64
	MaxPullbackNM  float64
}

// stageClip clips the chip's poly layer inside window and canonicalizes it:
// geometry is translated to the window origin and put into canonical
// polygon order, so equal layout contexts anywhere on the chip produce
// byte-identical clips.
func stageClip(chip *layout.Chip, window geom.Rect) layout.CanonicalWindow {
	return chip.CanonicalWindowPolygons(layout.LayerPoly, window)
}

// stageOPC applies the environment's correction mode to the drawn polygons
// and, for the correcting modes with measureEPE set, measures the interior
// residual EPE of the corrected mask against the drawn target at nominal.
// interior bounds the EPE sample region (fragments created by clipping at
// the window boundary measure roll-off, not OPC quality).
func stageOPC(env *stageEnv, drawn []geom.Polygon, interior geom.Rect, measureEPE bool) (mask []geom.Polygon, epeValues []float64, err error) {
	switch env.Mode {
	case OPCNone:
		return drawn, nil, nil
	case OPCRule:
		var ctx geom.Region
		for _, pg := range drawn {
			ctx = append(ctx, geom.RegionFromPolygon(pg)...)
		}
		corrected, err := opc.RuleBased(drawn, ctx.Normalize(), env.Rule, env.OPCOpt.Fragment, 4*env.PitchNM)
		if err != nil {
			return nil, nil, err
		}
		if !measureEPE {
			return corrected, nil, nil
		}
		var targets []*opc.FragmentedPolygon
		for _, pg := range drawn {
			fp, err := opc.Fragmentize(pg, env.OPCOpt.Fragment)
			if err != nil {
				return nil, nil, err
			}
			targets = append(targets, fp)
		}
		epes, _, err := opc.Verify(env.OPCSim, corrected, nil, targets, litho.Nominal, 8)
		if err != nil {
			return nil, nil, err
		}
		vals, err := interiorEPEs(targets, epes, interior)
		if err != nil {
			return nil, nil, err
		}
		return corrected, vals, nil
	default: // OPCModel
		res, err := opc.ModelBased(env.OPCSim, drawn, nil, env.OPCOpt)
		if err != nil {
			return nil, nil, err
		}
		if !measureEPE {
			return res.Polygons, nil, nil
		}
		vals, err := interiorEPEs(res.Fragmented, res.FinalEPE, interior)
		if err != nil {
			return nil, nil, err
		}
		return res.Polygons, vals, nil
	}
}

// stageImage rasterizes the mask over the canonical window and images it
// through the requested corners with the verification model. The raster is
// pooled scratch: models never retain it past AerialSeries, so it is handed
// back for the next window regardless of the call's outcome.
func stageImage(env *stageEnv, mask []geom.Polygon, bounds geom.Rect, corners []litho.Corner) ([]*litho.Image, error) {
	recipe := env.Verify.Recipe()
	raster := litho.RasterizeInWindow(mask, bounds, recipe.PixelNM)
	imgs, err := env.Verify.AerialSeries(raster, corners)
	litho.RecycleRaster(raster)
	return imgs, err
}

// stageContour extracts each gate site's printed CD profile from the
// corner images: the resist contour is sampled across every site's channel
// at each corner's effective threshold. Extractions are independent per
// (site, corner), so splitting them from the collapse (stageProfile) only
// regroups the computation — the floats are identical.
func stageContour(env *stageEnv, imgs []*litho.Image, sites []layout.GateSite, corners []litho.Corner) [][]cdx.GateCD {
	recipe := env.Verify.Recipe()
	out := make([][]cdx.GateCD, len(sites))
	for si, site := range sites {
		out[si] = make([]cdx.GateCD, len(corners))
		for ci, corner := range corners {
			th := recipe.EffectiveThreshold(corner)
			out[si][ci] = cdx.ExtractGate(imgs[ci], site, th, recipe.Polarity, env.CDX)
		}
	}
	return out
}

// stageProfile collapses the extracted CD profiles to per-corner summary
// statistics and equivalent lengths. gates is stageContour's output,
// indexed [site][corner]; sites are in canonical coordinates with
// cell-local names.
func stageProfile(env *stageEnv, gates [][]cdx.GateCD, sites []layout.GateSite, corners []litho.Corner) []SiteCD {
	out := make([]SiteCD, 0, len(sites))
	for si, site := range sites {
		sc := SiteCD{LocalName: site.Name, Kind: site.Kind, DrawnL: float64(site.L())}
		for ci, corner := range corners {
			g := gates[si][ci]
			cc := CornerCD{
				Corner:        corner,
				MeanCD:        g.MeanCD(),
				Nonuniformity: g.Nonuniformity(),
				Printed:       g.Printed,
			}
			if cds := g.CDs(); len(cds) > 0 {
				d, l, err := env.Dev.EquivalentLengths(site.Kind, cds)
				if err == nil {
					cc.DelayEL, cc.LeakEL = d, l
				} else {
					cc.Printed = false
				}
			}
			sc.PerCorner = append(sc.PerCorner, cc)
		}
		out = append(out, sc)
	}
	return out
}

// stageWindowOPC runs the OPC half of one window's chain (with its span
// and timer) — shared verbatim by the per-window and batched paths so the
// corrected mask and EPE samples are byte-identical between them. rec
// receives the stage's duration for the run ledger (nil when no ledger).
func stageWindowOPC(env *stageEnv, clip layout.CanonicalWindow, rec *obs.WindowRecord, parent obs.SpanID) (mask []geom.Polygon, epeValues []float64, err error) {
	guard := env.Verify.Recipe().GuardNM
	sp := env.obs.StartChild("stage.opc", parent)
	t0 := env.met.opc.StartTimer()
	mask, epeValues, err = stageOPC(env, clip.Polys, clip.Bounds.Expand(-guard), true)
	rec.Observe(obs.StageOPC, env.met.opc.TimedSince(t0))
	sp.End()
	return mask, epeValues, err
}

// stageWindowArtifact runs the contour → profile half of one window's chain
// over already-computed corner images — shared verbatim by the per-window
// and batched paths.
func stageWindowArtifact(env *stageEnv, imgs []*litho.Image, sites []layout.GateSite, corners []litho.Corner, epeValues []float64, rec *obs.WindowRecord, parent obs.SpanID) *WindowArtifact {
	sp := env.obs.StartChild("stage.contour", parent)
	t0 := env.met.contour.StartTimer()
	gates := stageContour(env, imgs, sites, corners)
	rec.Observe(obs.StageContour, env.met.contour.TimedSince(t0))
	sp.End()
	sp = env.obs.StartChild("stage.profile", parent)
	t0 = env.met.profile.StartTimer()
	art := &WindowArtifact{
		Sites:     stageProfile(env, gates, sites, corners),
		EPEValues: epeValues,
	}
	if env.Mode != OPCNone {
		art.EPE = opc.SummarizeEPE(epeValues, 8)
	}
	rec.Observe(obs.StageProfile, env.met.profile.TimedSince(t0))
	sp.End()
	return art
}

// stageWindow chains OPC → image → contour → profile over one canonical
// clip: the unit of work the pattern cache memoizes for gate extraction.
// parent is the telemetry span the stage spans nest under (0 when tracing
// is off or the caller has no enclosing span).
func stageWindow(env *stageEnv, clip layout.CanonicalWindow, sites []layout.GateSite, corners []litho.Corner, rec *obs.WindowRecord, parent obs.SpanID) (*WindowArtifact, error) {
	mask, epeValues, err := stageWindowOPC(env, clip, rec, parent)
	if err != nil {
		return nil, err
	}
	sp := env.obs.StartChild("stage.image", parent)
	t0 := env.met.image.StartTimer()
	imgs, err := stageImage(env, mask, clip.Bounds, corners)
	rec.Observe(obs.StageImage, env.met.image.TimedSince(t0))
	sp.End()
	if err != nil {
		return nil, err
	}
	return stageWindowArtifact(env, imgs, sites, corners, epeValues, rec, parent), nil
}

// stageTileMask runs the OPC half of one tile's chain (with its span and
// timer) — shared verbatim by the per-tile and batched paths.
func stageTileMask(env *stageEnv, rects []geom.Rect, rec *obs.WindowRecord, parent obs.SpanID) ([]geom.Polygon, error) {
	var drawn []geom.Polygon
	for _, r := range rects {
		drawn = append(drawn, r.Polygon())
	}
	sp := env.obs.StartChild("stage.opc", parent)
	t0 := env.met.opc.StartTimer()
	mask, _, err := stageOPC(env, drawn, geom.Rect{}, false)
	rec.Observe(obs.StageOPC, env.met.opc.TimedSince(t0))
	sp.End()
	return mask, err
}

// stageTileArtifact runs the pinch / bridge / pullback scans of one tile
// over already-computed corner images — shared verbatim by the per-tile and
// batched paths.
func stageTileArtifact(env *stageEnv, imgs []*litho.Image, rects []geom.Rect, tile geom.Rect, corners []litho.Corner, scan orcScanOptions) *TileArtifact {
	art := &TileArtifact{}
	drawnRegion := geom.RegionFromRects(rects...).Normalize()
	recipe := env.Verify.Recipe()
	for ci, corner := range corners {
		th := recipe.EffectiveThreshold(corner)
		scanPinches(env, imgs[ci], rects, tile, th, corner, scan, art)
		scanBridges(env, imgs[ci], rects, drawnRegion, tile, th, corner, scan, art)
	}
	return art
}

// stageTileScan is the ORC counterpart of stageWindow: OPC → image → pinch
// / bridge / pullback scans over one canonical tile window. rects are the
// canonical clipped poly rects, bounds the canonical window, tile the
// canonical interior tile that owns the hotspots.
func stageTileScan(env *stageEnv, rects []geom.Rect, bounds, tile geom.Rect, corners []litho.Corner, scan orcScanOptions, rec *obs.WindowRecord, parent obs.SpanID) (*TileArtifact, error) {
	mask, err := stageTileMask(env, rects, rec, parent)
	if err != nil {
		return nil, err
	}
	sp := env.obs.StartChild("stage.image", parent)
	t0 := env.met.image.StartTimer()
	imgs, err := stageImage(env, mask, bounds, corners)
	rec.Observe(obs.StageImage, env.met.image.TimedSince(t0))
	sp.End()
	if err != nil {
		return nil, err
	}
	return stageTileArtifact(env, imgs, rects, tile, corners, scan), nil
}
