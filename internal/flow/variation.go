package flow

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"postopc/internal/layout"
	"postopc/internal/litho"
	"postopc/internal/obs"
	"postopc/internal/par"
	"postopc/internal/sta"
	"postopc/internal/timinglib"
)

// VariationCorners returns the extraction corners needed to fit the
// per-gate variation response: nominal, max defocus, and the two dose
// extremes — in that fixed order.
func VariationCorners(pw litho.ProcessWindow) []litho.Corner {
	return []litho.Corner{
		litho.Nominal,
		{DefocusNM: pw.DefocusNM, Dose: 1},
		{DefocusNM: 0, Dose: 1 - pw.DoseFrac},
		{DefocusNM: 0, Dose: 1 + pw.DoseFrac},
	}
}

// siteResponse is the fitted per-transistor CD response:
// EL(f, dose) = EL0 + dF2·(f/F)² + dDose·(dose−1)/Δd, for delay and leak.
type siteResponse struct {
	delay0, leak0       float64
	dDelayF2, dLeakF2   float64
	dDelayDose, dLeakDo float64
	drawn               float64
}

// VariationModel maps process excursions to per-gate effective-length
// annotations — the "realistic CD distribution" replacing worst-case
// corner assumptions in Monte Carlo timing.
type VariationModel struct {
	// PW is the process window the model was fitted over.
	PW litho.ProcessWindow
	// RandSigmaNM is the per-site random (non-litho) CD sigma.
	RandSigmaNM float64
	// Obs, when non-nil, receives Monte Carlo telemetry: an
	// "sta.mc_samples_total" counter, a "flow.montecarlo" span and
	// per-worker scheduler metrics. Write-only; never changes a sample.
	Obs *obs.Sink

	sites map[string]map[string]siteResponse // gate -> local site -> fit
}

// BuildVariationModel fits the response model from extractions performed at
// VariationCorners(pw).
func BuildVariationModel(extrs map[string]*GateExtraction, pw litho.ProcessWindow, randSigmaNM float64) (*VariationModel, error) {
	vm := &VariationModel{PW: pw, RandSigmaNM: randSigmaNM, sites: map[string]map[string]siteResponse{}}
	for name, ext := range extrs {
		m := map[string]siteResponse{}
		for _, s := range ext.Sites {
			if len(s.PerCorner) < 4 {
				return nil, fmt.Errorf("flow: gate %s site %s extracted at %d corners, need 4 (VariationCorners order)",
					name, s.LocalName, len(s.PerCorner))
			}
			c0, cf, cdm, cdp := s.PerCorner[0], s.PerCorner[1], s.PerCorner[2], s.PerCorner[3]
			if !c0.Printed {
				continue // pinched at nominal: no annotation (drawn fallback)
			}
			r := siteResponse{
				delay0: c0.DelayEL, leak0: c0.LeakEL, drawn: s.DrawnL,
			}
			if cf.Printed {
				r.dDelayF2 = cf.DelayEL - c0.DelayEL
				r.dLeakF2 = cf.LeakEL - c0.LeakEL
			}
			if cdm.Printed && cdp.Printed {
				r.dDelayDose = (cdp.DelayEL - cdm.DelayEL) / 2
				r.dLeakDo = (cdp.LeakEL - cdm.LeakEL) / 2
			}
			m[s.LocalName] = r
		}
		vm.sites[name] = m
	}
	return vm, nil
}

// eval computes the lengths of one site at a process point. fNorm = f/F
// (clamped to ±1.5), doseNorm = (dose−1)/Δd (clamped to ±1.5), dRand is
// the site's random CD offset in nm.
func (r siteResponse) eval(fNorm, doseNorm, dRand float64) timinglib.Lengths {
	f2 := fNorm * fNorm
	d := r.delay0 + r.dDelayF2*f2 + r.dDelayDose*doseNorm + dRand
	l := r.leak0 + r.dLeakF2*f2 + r.dLeakDo*doseNorm + dRand
	if d < 5 {
		d = 5
	}
	if l < 5 {
		l = 5
	}
	return timinglib.Lengths{DelayL: d, LeakL: l}
}

// Annotations evaluates the model at a process point. Each site draws its
// own random CD offset from rnd (pass nil for no random component).
func (vm *VariationModel) Annotations(focusNM, dose float64, rnd *rand.Rand) sta.Annotations {
	fNorm := clampF(focusNM/nonzero(vm.PW.DefocusNM), 1.5)
	doseNorm := clampF((dose-1)/nonzero(vm.PW.DoseFrac), 1.5)
	ann := sta.Annotations{}
	// Deterministic iteration so equal seeds give identical samples.
	for _, gate := range vm.gateNames() {
		m := vm.sites[gate]
		lengths := map[string]timinglib.Lengths{}
		for _, local := range sortedKeys(m) {
			var dr float64
			if rnd != nil {
				dr = rnd.NormFloat64() * vm.RandSigmaNM
			}
			lengths[local] = m[local].eval(fNorm, doseNorm, dr)
		}
		ann[gate] = lookupOrDrawn(lengths)
	}
	return ann
}

func (vm *VariationModel) gateNames() []string {
	out := make([]string, 0, len(vm.sites))
	for g := range vm.sites {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

func sortedKeys(m map[string]siteResponse) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SlowCorner builds the classic pessimistic guardband annotation: every
// site at its maximum delay length across the window extremes plus kSigma
// of random variation — simultaneously, everywhere.
func (vm *VariationModel) SlowCorner(kSigma float64) sta.Annotations {
	ann := sta.Annotations{}
	for gate, m := range vm.sites {
		lengths := map[string]timinglib.Lengths{}
		for local, r := range m {
			worst := r.delay0
			worstLeak := r.leak0
			for _, fn := range []float64{0, 1} {
				for _, dn := range []float64{-1, 0, 1} {
					l := r.eval(fn, dn, 0)
					worst = math.Max(worst, l.DelayL)
					worstLeak = math.Max(worstLeak, l.LeakL)
				}
			}
			lengths[local] = timinglib.Lengths{
				DelayL: worst + kSigma*vm.RandSigmaNM,
				LeakL:  worstLeak + kSigma*vm.RandSigmaNM,
			}
		}
		ann[gate] = lookupOrDrawn(lengths)
	}
	return ann
}

// FastCorner is the symmetric optimistic corner (minimum delay lengths −
// kSigma random), used for leakage-dominated analyses.
func (vm *VariationModel) FastCorner(kSigma float64) sta.Annotations {
	ann := sta.Annotations{}
	for gate, m := range vm.sites {
		lengths := map[string]timinglib.Lengths{}
		for local, r := range m {
			best := r.delay0
			bestLeak := r.leak0
			for _, fn := range []float64{0, 1} {
				for _, dn := range []float64{-1, 0, 1} {
					l := r.eval(fn, dn, 0)
					best = math.Min(best, l.DelayL)
					bestLeak = math.Min(bestLeak, l.LeakL)
				}
			}
			lengths[local] = timinglib.Lengths{
				DelayL: math.Max(5, best-kSigma*vm.RandSigmaNM),
				LeakL:  math.Max(5, bestLeak-kSigma*vm.RandSigmaNM),
			}
		}
		ann[gate] = lookupOrDrawn(lengths)
	}
	return ann
}

func lookupOrDrawn(lengths map[string]timinglib.Lengths) timinglib.Annotator {
	return func(site layout.GateSite) timinglib.Lengths {
		if l, ok := lengths[site.Name]; ok {
			return l
		}
		return timinglib.Drawn(site)
	}
}

func clampF(v, lim float64) float64 {
	if v > lim {
		return lim
	}
	if v < -lim {
		return -lim
	}
	return v
}

func nonzero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// MCResult is the Monte Carlo timing outcome.
type MCResult struct {
	// WNS samples (ps), sorted ascending.
	WNS []float64
	// Leak samples (nW), parallel to WNS draws (unsorted pairing is not
	// preserved; Leak is sorted too).
	Leak []float64
	// MeanWNS, StdWNS summarize the distribution.
	MeanWNS, StdWNS float64
}

// Percentile returns the p-quantile (0..1) of the WNS distribution by
// linear interpolation between order statistics. Truncating the fractional
// rank (the previous behaviour) biased every reported quantile toward the
// lower order statistic.
func (m MCResult) Percentile(p float64) float64 {
	n := len(m.WNS)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return m.WNS[0]
	}
	if p >= 1 {
		return m.WNS[n-1]
	}
	x := p * float64(n-1)
	i := int(x)
	if i >= n-1 {
		return m.WNS[n-1]
	}
	frac := x - float64(i)
	return m.WNS[i] + frac*(m.WNS[i+1]-m.WNS[i])
}

// MonteCarlo samples process excursions (focus ~ N(0, F/3), dose ~
// N(1, Δd/3), per-site random CD ~ N(0, σ)) and re-runs STA per sample,
// fanning samples out over up to GOMAXPROCS workers. See MonteCarloWorkers
// for the determinism contract and explicit worker control.
func (vm *VariationModel) MonteCarlo(g *sta.Graph, cfg sta.Config, samples int, seed int64) (MCResult, error) {
	return vm.MonteCarloWorkers(g, cfg, samples, seed, 0)
}

// MonteCarloWorkers is MonteCarlo with an explicit worker bound
// (0 = GOMAXPROCS, 1 = serial). The result depends only on the seed, never
// on the worker count: each sample's RNG stream is seeded up front from a
// master stream over the given seed, samples are merged in sample order,
// and only then are the WNS/Leak distributions sorted.
func (vm *VariationModel) MonteCarloWorkers(g *sta.Graph, cfg sta.Config, samples int, seed int64, workers int) (MCResult, error) {
	var out MCResult
	if samples <= 0 {
		return out, nil
	}
	master := rand.New(rand.NewSource(seed))
	seeds := make([]int64, samples)
	for s := range seeds {
		seeds[s] = master.Int63()
	}
	sp := vm.Obs.Start("flow.montecarlo")
	cSamples := vm.Obs.Counter("sta.mc_samples_total")
	wns := make([]float64, samples)
	leak := make([]float64, samples)
	err := par.ForEach(samples, func(s int) error {
		rnd := rand.New(rand.NewSource(seeds[s]))
		f := rnd.NormFloat64() * vm.PW.DefocusNM / 3
		d := 1 + rnd.NormFloat64()*vm.PW.DoseFrac/3
		res, err := g.Analyze(cfg, vm.Annotations(f, d, rnd))
		if err != nil {
			return err
		}
		cSamples.Inc()
		wns[s], leak[s] = res.WNS, res.LeakNW
		return nil
	}, par.Workers(workers), par.Obs(vm.Obs))
	sp.End()
	if err != nil {
		return out, err
	}
	out.WNS, out.Leak = wns, leak
	sort.Float64s(out.WNS)
	sort.Float64s(out.Leak)
	var sum float64
	for _, v := range out.WNS {
		sum += v
	}
	out.MeanWNS = sum / float64(len(out.WNS))
	var ss float64
	for _, v := range out.WNS {
		ss += (v - out.MeanWNS) * (v - out.MeanWNS)
	}
	out.StdWNS = math.Sqrt(ss / float64(len(out.WNS)))
	return out, nil
}
