package flow

import (
	"math"
	"reflect"
	"testing"

	"postopc/internal/sta"
)

func TestPercentileInterpolates(t *testing.T) {
	// 0..100: the p-quantile of this grid is exactly 100p.
	grid := MCResult{}
	for i := 0; i <= 100; i++ {
		grid.WNS = append(grid.WNS, float64(i))
	}
	cases := []struct {
		name string
		m    MCResult
		p    float64
		want float64
	}{
		{"midpoint of two", MCResult{WNS: []float64{10, 20}}, 0.5, 15},
		{"grid p50", grid, 0.50, 50},
		{"grid p25", grid, 0.25, 25},
		{"grid p10", grid, 0.10, 10},
		{"grid p1", grid, 0.01, 1},
		{"fractional rank", MCResult{WNS: []float64{1, 2, 3, 4}}, 0.5, 2.5},
		{"between samples", MCResult{WNS: []float64{0, 10, 20, 30}}, 0.4, 12},
		{"p0 is min", MCResult{WNS: []float64{3, 7, 9}}, 0, 3},
		{"p1 is max", MCResult{WNS: []float64{3, 7, 9}}, 1, 9},
		{"clamp below", MCResult{WNS: []float64{3, 7}}, -0.5, 3},
		{"clamp above", MCResult{WNS: []float64{3, 7}}, 1.5, 7},
		{"single sample", MCResult{WNS: []float64{42}}, 0.3, 42},
	}
	for _, c := range cases {
		if got := c.m.Percentile(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Percentile(%g) = %g, want %g", c.name, c.p, got, c.want)
		}
	}
	if got := (MCResult{}).Percentile(0.5); !math.IsNaN(got) {
		t.Errorf("empty Percentile = %g, want NaN", got)
	}
}

func TestPercentileNotTruncationBiased(t *testing.T) {
	// The old int(p·(n−1)) truncation mapped p=0.5 of {1,2,3,4} to the
	// second order statistic (2); interpolation must give 2.5.
	m := MCResult{WNS: []float64{1, 2, 3, 4}}
	if got := m.Percentile(0.5); got != 2.5 {
		t.Fatalf("median of {1,2,3,4} = %g, want 2.5", got)
	}
}

func TestMonteCarloParallelMatchesSerial(t *testing.T) {
	res := fullRun(t)
	f := fastFlow(t)
	vm, err := BuildVariationModel(res.Extractions, f.PDK.Window, f.PDK.Device.SigmaLRandomNM)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sta.DefaultConfig(1500)
	serial, err := vm.MonteCarloWorkers(res.Graph, cfg, 48, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 5} {
		parallel, err := vm.MonteCarloWorkers(res.Graph, cfg, 48, 7, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("workers=%d: parallel Monte Carlo diverged from serial:\nserial   %+v\nparallel %+v",
				workers, serial, parallel)
		}
	}
	// The default entry point is the same computation.
	def, err := vm.MonteCarlo(res.Graph, cfg, 48, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, def) {
		t.Fatal("MonteCarlo diverged from MonteCarloWorkers with equal seed")
	}
}

func TestMonteCarloNoSamples(t *testing.T) {
	res := fullRun(t)
	f := fastFlow(t)
	vm, err := BuildVariationModel(res.Extractions, f.PDK.Window, f.PDK.Device.SigmaLRandomNM)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := vm.MonteCarlo(res.Graph, sta.DefaultConfig(1500), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(mc.WNS) != 0 || len(mc.Leak) != 0 {
		t.Fatalf("zero-sample MC returned data: %+v", mc)
	}
}
