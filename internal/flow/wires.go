package flow

import (
	"fmt"

	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/netlist"
)

// CWirePerUMFF is the estimated routed-wire capacitance per micron of
// half-perimeter wirelength at the 90nm node (fF/µm).
const CWirePerUMFF = 0.20

// WireLoads estimates per-net wire capacitance from the placement: the
// half-perimeter wirelength (HPWL) of the bounding box of the net's pin
// instances, times CWirePerUMFF. Primary I/O pins are assumed to enter at
// the driver/sink bounding box (they add no span of their own).
//
// This replaces the flat per-fanout wire cap of the kit with a
// placement-aware estimate — the "extracted parasitics" flavour of load
// the paper's sign-off flow would use. Pass the result via
// sta.Config.WireLoads.
func (f *Flow) WireLoads(chip *layout.Chip, n *netlist.Netlist) (map[string]float64, error) {
	conns, err := n.Connectivity(f.Lib)
	if err != nil {
		return nil, err
	}
	// Instance centers by gate index.
	centers := make([]geom.Point, len(n.Gates))
	for gi, g := range n.Gates {
		inst := chip.FindInstance(g.Name)
		if inst == nil {
			return nil, fmt.Errorf("flow: gate %s not placed", g.Name)
		}
		centers[gi] = inst.Bounds().Center()
	}
	out := make(map[string]float64, len(conns))
	for net, c := range conns {
		var pts []geom.Point
		if c.Driver.Gate >= 0 {
			pts = append(pts, centers[c.Driver.Gate])
		}
		for _, s := range c.Sinks {
			if s.Gate >= 0 {
				pts = append(pts, centers[s.Gate])
			}
		}
		if len(pts) < 2 {
			out[net] = 0 // single-pin or pure-I/O net: no routed span
			continue
		}
		bb := geom.BBoxOf(pts)
		hpwlUM := float64(bb.W()+bb.H()) / 1000
		out[net] = hpwlUM * CWirePerUMFF
	}
	return out, nil
}
