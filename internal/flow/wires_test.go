package flow

import (
	"testing"

	"postopc/internal/netlist"
	"postopc/internal/place"
	"postopc/internal/sta"
)

func TestWireLoadsBasics(t *testing.T) {
	f := fastFlow(t)
	n := netlist.RippleCarryAdder(4)
	pl, err := f.Place(n, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	loads, err := f.WireLoads(pl.Chip, n)
	if err != nil {
		t.Fatal(err)
	}
	conns, err := n.Connectivity(f.Lib)
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != len(conns) {
		t.Fatalf("loads for %d nets, want %d", len(loads), len(conns))
	}
	anyPositive := false
	for net, l := range loads {
		if l < 0 {
			t.Fatalf("negative wire load on %s", net)
		}
		if l > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		t.Fatal("all wire loads zero on a placed design")
	}
}

func TestWireLoadsScaleWithDistance(t *testing.T) {
	f := fastFlow(t)
	n := netlist.InverterChain(40)
	// Narrow rows force the chain to snake across many rows: late nets
	// connect gates in adjacent rows, early nets connect neighbours.
	pl, err := f.Place(n, place.Options{RowWidthNM: 6000})
	if err != nil {
		t.Fatal(err)
	}
	loads, err := f.WireLoads(pl.Chip, n)
	if err != nil {
		t.Fatal(err)
	}
	// Adjacent-gate nets should be cheaper than the row-wrapping nets.
	var maxLoad, minLoad float64
	first := true
	for _, g := range n.Gates {
		l := loads[g.Conn["Y"]]
		if first {
			maxLoad, minLoad = l, l
			first = false
			continue
		}
		if l > maxLoad {
			maxLoad = l
		}
		if l < minLoad {
			minLoad = l
		}
	}
	if maxLoad <= 2*minLoad {
		t.Fatalf("wire loads show no placement structure: min %.3f max %.3f", minLoad, maxLoad)
	}
}

func TestWireLoadsAffectTiming(t *testing.T) {
	f := fastFlow(t)
	n := netlist.RippleCarryAdder(4)
	pl, err := f.Place(n, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := f.BuildGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sta.DefaultConfig(3000)
	flat, err := g.Analyze(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	loads, err := f.WireLoads(pl.Chip, n)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WireLoads = loads
	wired, err := g.Analyze(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if flat.WNS == wired.WNS {
		t.Fatal("placement-aware loads had no timing effect")
	}
	// Determinism with the same loads.
	wired2, err := g.Analyze(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wired.WNS != wired2.WNS {
		t.Fatal("wire-load analysis not deterministic")
	}
}

func TestWireLoadsUnplacedGate(t *testing.T) {
	f := fastFlow(t)
	n := netlist.InverterChain(2)
	pl, err := f.Place(netlist.InverterChain(3), place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Chip belongs to a different netlist: u0/u1 exist, but the netlists
	// differ in name only — construct a real mismatch instead.
	n.AddGate("ghost", "INV_X1", map[string]string{"A": n.Outputs[0], "Y": "gy"})
	if _, err := f.WireLoads(pl.Chip, n); err == nil {
		t.Fatal("unplaced gate accepted")
	}
}
