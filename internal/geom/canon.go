package geom

import (
	"encoding/binary"
	"math"
	"sort"
)

// This file provides the canonical forms and serialization that the flow's
// content-addressed pattern cache hashes: two layout windows holding the
// same geometry — regardless of which instances contributed which shape, in
// what order, or where on the chip the window sits (the caller translates
// to the window origin first) — must serialize to identical bytes.

// Canonical returns pg in canonical form: counter-clockwise orientation,
// vertices rotated to start at the lexicographically smallest vertex
// (minimum Y, then minimum X). Geometrically equal polygons whose vertex
// lists differ only by orientation or starting point canonicalize to the
// same vertex sequence.
func (pg Polygon) Canonical() Polygon {
	if len(pg) == 0 {
		return nil
	}
	out := pg.Clone()
	if !out.IsCCW() {
		out = out.Reverse()
	}
	start := 0
	for i, p := range out {
		s := out[start]
		if p.Y < s.Y || (p.Y == s.Y && p.X < s.X) {
			start = i
		}
	}
	rot := make(Polygon, len(out))
	copy(rot, out[start:])
	copy(rot[len(out)-start:], out[:start])
	return rot
}

// comparePolygons orders canonical polygons lexicographically by vertex
// sequence (then by length).
func comparePolygons(a, b Polygon) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i].Y != b[i].Y:
			if a[i].Y < b[i].Y {
				return -1
			}
			return 1
		case a[i].X != b[i].X:
			if a[i].X < b[i].X {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// CanonicalPolygons canonicalizes every polygon and sorts the set into a
// single canonical order, so that the serialized form is independent of
// construction order. The input is not modified.
func CanonicalPolygons(polys []Polygon) []Polygon {
	out := make([]Polygon, len(polys))
	for i, pg := range polys {
		out[i] = pg.Canonical()
	}
	sort.Slice(out, func(i, j int) bool { return comparePolygons(out[i], out[j]) < 0 })
	return out
}

// Key-serialization helpers. Every package contributing to a window
// signature appends its inputs through these so the byte layout is uniform:
// fixed-width little-endian integers, IEEE-754 bit patterns for floats, and
// length-prefixed strings and vertex lists.

// AppendKeyInt appends int64 values in fixed little-endian form.
func AppendKeyInt(dst []byte, vs ...int64) []byte {
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

// AppendKeyFloat appends float64 values as their IEEE-754 bit patterns.
func AppendKeyFloat(dst []byte, vs ...float64) []byte {
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// AppendKeyString appends a length-prefixed string.
func AppendKeyString(dst []byte, s string) []byte {
	dst = AppendKeyInt(dst, int64(len(s)))
	return append(dst, s...)
}

// AppendKeyRect appends the rectangle's four coordinates.
func AppendKeyRect(dst []byte, r Rect) []byte {
	return AppendKeyInt(dst, r.X0, r.Y0, r.X1, r.Y1)
}

// AppendKeyPolygon appends a length-prefixed vertex list.
func AppendKeyPolygon(dst []byte, pg Polygon) []byte {
	dst = AppendKeyInt(dst, int64(len(pg)))
	for _, p := range pg {
		dst = AppendKeyInt(dst, p.X, p.Y)
	}
	return dst
}

// AppendKeyPolygons appends a count-prefixed list of polygons. Pass the
// result of CanonicalPolygons for an order-independent serialization.
func AppendKeyPolygons(dst []byte, polys []Polygon) []byte {
	dst = AppendKeyInt(dst, int64(len(polys)))
	for _, pg := range polys {
		dst = AppendKeyPolygon(dst, pg)
	}
	return dst
}
