package geom

import (
	"bytes"
	"reflect"
	"testing"
)

func TestPolygonCanonicalInvariance(t *testing.T) {
	base := Polygon{Pt(0, 0), Pt(10, 0), Pt(10, 5), Pt(0, 5)}
	variants := []Polygon{
		base,
		{Pt(10, 0), Pt(10, 5), Pt(0, 5), Pt(0, 0)}, // rotated start
		{Pt(0, 5), Pt(10, 5), Pt(10, 0), Pt(0, 0)}, // clockwise
		base.Reverse(), // clockwise, other start
	}
	want := base.Canonical()
	if !want.IsCCW() {
		t.Fatal("canonical form must be CCW")
	}
	if want[0] != Pt(0, 0) {
		t.Fatalf("canonical start = %v, want lexicographically smallest (0,0)", want[0])
	}
	for i, v := range variants {
		if got := v.Canonical(); !reflect.DeepEqual(got, want) {
			t.Fatalf("variant %d canonicalized to %v, want %v", i, got, want)
		}
	}
}

func TestCanonicalPolygonsOrderIndependent(t *testing.T) {
	a := R(0, 0, 10, 5).Polygon()
	b := R(20, 0, 30, 5).Polygon()
	c := Polygon{Pt(40, 5), Pt(50, 5), Pt(50, 0), Pt(40, 0)} // clockwise
	x := CanonicalPolygons([]Polygon{a, b, c})
	y := CanonicalPolygons([]Polygon{c.Reverse(), b, a})
	if !reflect.DeepEqual(x, y) {
		t.Fatalf("canonical sets differ:\n%v\n%v", x, y)
	}
	if !bytes.Equal(AppendKeyPolygons(nil, x), AppendKeyPolygons(nil, y)) {
		t.Fatal("serialized canonical sets differ")
	}
}

func TestCanonicalTranslationInvariance(t *testing.T) {
	polys := []Polygon{
		R(100, 200, 190, 1200).Polygon(),
		R(440, 200, 530, 1200).Polygon(),
	}
	d := Pt(7130, -3240)
	var moved []Polygon
	for _, pg := range polys {
		moved = append(moved, pg.Translate(d))
	}
	// Translate both sets back to their common bounding-box origin: the
	// serializations must agree byte for byte.
	norm := func(ps []Polygon) []byte {
		bb := ps[0].BBox()
		for _, pg := range ps[1:] {
			bb = bb.Union(pg.BBox())
		}
		var rel []Polygon
		for _, pg := range ps {
			rel = append(rel, pg.Translate(Pt(-bb.X0, -bb.Y0)))
		}
		return AppendKeyPolygons(nil, CanonicalPolygons(rel))
	}
	if !bytes.Equal(norm(polys), norm(moved)) {
		t.Fatal("translated window serialized differently from the original")
	}
}

func TestAppendKeyEncodings(t *testing.T) {
	if got := len(AppendKeyInt(nil, 1, 2, 3)); got != 24 {
		t.Fatalf("AppendKeyInt wrote %d bytes, want 24", got)
	}
	if got := len(AppendKeyFloat(nil, 1.5)); got != 8 {
		t.Fatalf("AppendKeyFloat wrote %d bytes, want 8", got)
	}
	// +0.0 and -0.0 must key differently (distinct bit patterns) but two
	// equal computations of the same value must not.
	if bytes.Equal(AppendKeyFloat(nil, 0.0), AppendKeyFloat(nil, negZero())) {
		t.Fatal("+0 and -0 serialized identically")
	}
	if !bytes.Equal(AppendKeyString(nil, "abc"), AppendKeyString(nil, "abc")) {
		t.Fatal("equal strings serialized differently")
	}
	// Length prefixes keep concatenation ambiguity out: ("a","bc") and
	// ("ab","c") must serialize differently.
	x := AppendKeyString(AppendKeyString(nil, "a"), "bc")
	y := AppendKeyString(AppendKeyString(nil, "ab"), "c")
	if bytes.Equal(x, y) {
		t.Fatal("length-prefixed strings are ambiguous under concatenation")
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}
