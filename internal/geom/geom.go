// Package geom provides the integer-nanometre planar geometry used by every
// layout-facing subsystem: points, rectangles, polygons, rectilinear regions,
// clipping, rasterization and a simple spatial index.
//
// Coordinates are int64 nanometres. All mask layout in this repository is
// Manhattan (rectilinear); general polygons are supported where printed
// contours (which are not rectilinear) need to be represented.
package geom

import "fmt"

// Coord is a layout coordinate in integer nanometres.
type Coord = int64

// Point is a location on the layout plane, in nanometres.
type Point struct {
	X, Y Coord
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y Coord) Point { return Point{x, y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k Coord) Point { return Point{p.X * k, p.Y * k} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Manhattan returns the L1 distance between p and q.
func (p Point) Manhattan(q Point) Coord {
	return absC(p.X-q.X) + absC(p.Y-q.Y)
}

func absC(v Coord) Coord {
	if v < 0 {
		return -v
	}
	return v
}

func minC(a, b Coord) Coord {
	if a < b {
		return a
	}
	return b
}

func maxC(a, b Coord) Coord {
	if a > b {
		return a
	}
	return b
}
