package geom

// Index is a uniform-grid spatial index over items with rectangular extents.
// It answers "which items overlap this window" queries, which is how the
// flow clips per-gate simulation windows out of a placed chip layout.
type Index[T any] struct {
	bounds Rect
	cell   Coord
	nx, ny int
	bins   [][]indexEntry[T]
	items  []T
	rects  []Rect
}

type indexEntry[T any] struct{ id int }

// NewIndex creates an index over the given bounds with the given bin pitch.
func NewIndex[T any](bounds Rect, cell Coord) *Index[T] {
	if cell <= 0 {
		panic("geom: index cell pitch must be positive")
	}
	nx := int((bounds.W() + cell - 1) / cell)
	ny := int((bounds.H() + cell - 1) / cell)
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return &Index[T]{
		bounds: bounds,
		cell:   cell,
		nx:     nx,
		ny:     ny,
		bins:   make([][]indexEntry[T], nx*ny),
	}
}

// Insert adds an item with extent r. Items outside the index bounds are
// clamped into the border bins so they are still discoverable.
func (ix *Index[T]) Insert(r Rect, item T) {
	id := len(ix.items)
	ix.items = append(ix.items, item)
	ix.rects = append(ix.rects, r)
	bx0, by0, bx1, by1 := ix.binRange(r)
	for by := by0; by <= by1; by++ {
		for bx := bx0; bx <= bx1; bx++ {
			b := by*ix.nx + bx
			ix.bins[b] = append(ix.bins[b], indexEntry[T]{id})
		}
	}
}

func (ix *Index[T]) binRange(r Rect) (bx0, by0, bx1, by1 int) {
	clampInt := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	bx0 = clampInt(int((r.X0-ix.bounds.X0)/ix.cell), 0, ix.nx-1)
	by0 = clampInt(int((r.Y0-ix.bounds.Y0)/ix.cell), 0, ix.ny-1)
	bx1 = clampInt(int((r.X1-ix.bounds.X0)/ix.cell), 0, ix.nx-1)
	by1 = clampInt(int((r.Y1-ix.bounds.Y0)/ix.cell), 0, ix.ny-1)
	return
}

// Len returns the number of items inserted.
func (ix *Index[T]) Len() int { return len(ix.items) }

// Query calls fn for every item whose extent intersects w. Items spanning
// multiple bins are reported once. If fn returns false the query stops.
func (ix *Index[T]) Query(w Rect, fn func(r Rect, item T) bool) {
	seen := make(map[int]struct{})
	bx0, by0, bx1, by1 := ix.binRange(w)
	for by := by0; by <= by1; by++ {
		for bx := bx0; bx <= bx1; bx++ {
			for _, e := range ix.bins[by*ix.nx+bx] {
				if _, ok := seen[e.id]; ok {
					continue
				}
				seen[e.id] = struct{}{}
				r := ix.rects[e.id]
				if r.Intersects(w) || r.ContainsRect(w) || w.ContainsRect(r) {
					if !fn(r, ix.items[e.id]) {
						return
					}
				}
			}
		}
	}
}

// QueryAll returns all items whose extent intersects w.
func (ix *Index[T]) QueryAll(w Rect) []T {
	var out []T
	ix.Query(w, func(_ Rect, item T) bool {
		out = append(out, item)
		return true
	})
	return out
}
