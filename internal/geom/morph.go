package geom

// Morphological operations on Regions — the computational core of design
// rule checking: minimum-width violations are the residue removed by an
// opening, minimum-space violations are the same on the complement.

// Expand grows the region by d on every side (Minkowski sum with a 2d
// square). Negative d is not supported here; use Shrink.
func (rg Region) Expand(d Coord) Region {
	if d < 0 {
		panic("geom: Region.Expand needs d >= 0; use Shrink")
	}
	out := make(Region, 0, len(rg))
	for _, r := range rg {
		if !r.Empty() {
			out = append(out, r.Expand(d))
		}
	}
	return out.Normalize()
}

// Shrink erodes the region by d on every side: the set of points at least
// d inside. Computed as the complement of the expanded complement within a
// sufficiently padded universe.
func (rg Region) Shrink(d Coord) Region {
	if d < 0 {
		panic("geom: Region.Shrink needs d >= 0")
	}
	if d == 0 {
		return rg.Normalize()
	}
	if rg.Empty() {
		return nil
	}
	bb := rg.BBox()
	universe := RegionFromRects(bb.Expand(2*d + 2))
	complement := universe.Subtract(rg)
	return universe.Subtract(complement.Expand(d)).ClipToRect(bb)
}

// Opening erodes then dilates: features narrower than 2d disappear and
// reappear nowhere; everything else survives (with corners squared off).
func (rg Region) Opening(d Coord) Region {
	return rg.Shrink(d).Expand(d)
}

// NarrowerThan returns the sub-region of rg that is locally narrower than
// w (in its thinnest direction) — the minimum-width DRC residue. Thin
// slivers narrower than w vanish under an opening; what the opening fails
// to cover is the violation area.
//
// w is exclusive: features exactly w wide are clean, w−1 is flagged. The
// computation runs on a doubled coordinate grid so the half-integer
// erosion distance (w−1)/2 is exact.
func (rg Region) NarrowerThan(w Coord) Region {
	if w <= 1 {
		return nil
	}
	doubled := rg.scale2()
	opened := doubled.Opening(w - 1) // kills doubled widths ≤ 2w−2, i.e. real widths ≤ w−1
	return doubled.Subtract(opened).unscale2()
}

// scale2 doubles all coordinates (exact half-unit grid).
func (rg Region) scale2() Region {
	out := make(Region, 0, len(rg))
	for _, r := range rg {
		out = append(out, Rect{2 * r.X0, 2 * r.Y0, 2 * r.X1, 2 * r.Y1})
	}
	return out.Normalize()
}

// unscale2 halves all coordinates, rounding outward (violation markers may
// only grow, never vanish).
func (rg Region) unscale2() Region {
	out := make(Region, 0, len(rg))
	for _, r := range rg {
		if r.Empty() {
			continue
		}
		out = append(out, Rect{
			floorDiv2(r.X0), floorDiv2(r.Y0),
			ceilDiv2(r.X1), ceilDiv2(r.Y1),
		})
	}
	return out.Normalize()
}

func floorDiv2(v Coord) Coord {
	if v >= 0 {
		return v / 2
	}
	return -((-v + 1) / 2)
}

func ceilDiv2(v Coord) Coord {
	if v >= 0 {
		return (v + 1) / 2
	}
	return -(-v / 2)
}

// GapsNarrowerThan returns the parts of the space between features of rg
// that are narrower than s — the minimum-space DRC residue. The outer
// boundary of the layout does not count as a gap.
func (rg Region) GapsNarrowerThan(s Coord) Region {
	if s <= 1 || rg.Empty() {
		return nil
	}
	bb := rg.BBox()
	universe := RegionFromRects(bb.Expand(2*s + 2))
	gaps := universe.Subtract(rg)
	// The unbounded outside survives any opening of size < padding, so
	// only genuine inter-feature gaps appear in the residue.
	return gaps.NarrowerThan(s).ClipToRect(bb)
}

// Covers reports whether rg completely covers other.
func (rg Region) Covers(other Region) bool {
	return other.Subtract(rg).Empty()
}
