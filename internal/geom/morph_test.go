package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegionExpandShrinkBasics(t *testing.T) {
	rg := RegionFromRects(R(100, 100, 300, 200))
	if got := rg.Expand(10).Area(); got != 220*120 {
		t.Fatalf("expand area = %d", got)
	}
	if got := rg.Shrink(10).Area(); got != 180*80 {
		t.Fatalf("shrink area = %d", got)
	}
	// Shrink by half the height kills the rect entirely.
	if got := rg.Shrink(50); !got.Empty() {
		t.Fatalf("over-shrink = %v", got)
	}
	if got := rg.Shrink(0).Area(); got != rg.Area() {
		t.Fatal("zero shrink must be identity")
	}
	var empty Region
	if empty.Shrink(5) != nil || len(empty.Expand(5)) != 0 {
		t.Fatal("empty region morphs to empty")
	}
}

func TestRegionShrinkExpandInverseForFatRects(t *testing.T) {
	// For a single rectangle much larger than d, expand∘shrink is identity.
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		d := Coord(1 + rnd.Intn(20))
		r := R(0, 0, 100+Coord(rnd.Intn(200)), 100+Coord(rnd.Intn(200)))
		rg := RegionFromRects(r)
		back := rg.Shrink(d).Expand(d)
		return back.Area() == rg.Area() && back.Subtract(rg).Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOpeningRemovesSlivers(t *testing.T) {
	// A 200x200 pad with a 20nm-wide, 200-long finger sticking out.
	rg := RegionFromRects(
		R(0, 0, 200, 200),
		R(200, 90, 400, 110), // 20nm sliver
	)
	opened := rg.Opening(30)
	// The sliver must be gone, the pad (shrunk corners aside) retained.
	if opened.Contains(Pt(300, 100)) {
		t.Fatal("opening kept the sliver")
	}
	if !opened.Contains(Pt(100, 100)) {
		t.Fatal("opening destroyed the pad")
	}
}

func TestNarrowerThanFindsSliver(t *testing.T) {
	rg := RegionFromRects(
		R(0, 0, 200, 200),    // fat pad
		R(200, 90, 400, 110), // 20nm neck: violates w=60
		R(400, 0, 600, 200),  // fat pad
	)
	viol := rg.NarrowerThan(60)
	if viol.Empty() {
		t.Fatal("sliver not detected")
	}
	// The violation lies on the neck.
	if !viol.Contains(Pt(300, 100)) {
		t.Fatalf("violation region misses the neck: %v", viol)
	}
	// Wide-enough geometry is clean.
	clean := RegionFromRects(R(0, 0, 200, 200)).NarrowerThan(60)
	if !clean.Empty() {
		t.Fatalf("clean pad flagged: %v", clean)
	}
	// Exact-width feature is clean (exclusive rule).
	exact := RegionFromRects(R(0, 0, 60, 500)).NarrowerThan(60)
	if !exact.Empty() {
		t.Fatalf("exact-width flagged: %v", exact)
	}
	// One less is caught.
	thin := RegionFromRects(R(0, 0, 59, 500)).NarrowerThan(60)
	if thin.Empty() {
		t.Fatal("59nm line not flagged at w=60")
	}
}

func TestGapsNarrowerThan(t *testing.T) {
	// Two lines 100 apart and two lines 300 apart.
	rg := RegionFromRects(
		R(0, 0, 90, 1000),
		R(190, 0, 280, 1000), // gap 100
		R(580, 0, 670, 1000), // gap 300 from previous
	)
	viol := rg.GapsNarrowerThan(160)
	if viol.Empty() {
		t.Fatal("100nm gap not flagged at s=160")
	}
	if !viol.Contains(Pt(135, 500)) {
		t.Fatalf("violation misses the narrow gap: %v", viol)
	}
	if viol.Contains(Pt(430, 500)) {
		t.Fatal("wide gap falsely flagged")
	}
	// The outer boundary is not a gap.
	single := RegionFromRects(R(0, 0, 90, 1000)).GapsNarrowerThan(160)
	if !single.Empty() {
		t.Fatalf("outer boundary flagged as gap: %v", single)
	}
}

func TestCovers(t *testing.T) {
	a := RegionFromRects(R(0, 0, 100, 100))
	b := RegionFromRects(R(10, 10, 90, 90))
	if !a.Covers(b) {
		t.Fatal("a must cover b")
	}
	if b.Covers(a) {
		t.Fatal("b must not cover a")
	}
	if !a.Covers(nil) {
		t.Fatal("anything covers empty")
	}
}

func TestMorphPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RegionFromRects(R(0, 0, 10, 10)).Expand(-1)
}

func TestOpeningIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		var rg Region
		for i := 0; i < 2+rnd.Intn(4); i++ {
			rg = append(rg, randRect(rnd))
		}
		d := Coord(1 + rnd.Intn(15))
		once := rg.Opening(d)
		twice := once.Opening(d)
		// Opening is idempotent.
		return twice.Area() == once.Area() && twice.Subtract(once).Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNarrowerThanMonotoneProperty(t *testing.T) {
	// A stricter width rule never flags less area.
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		var rg Region
		for i := 0; i < 2+rnd.Intn(4); i++ {
			rg = append(rg, randRect(rnd))
		}
		w1 := Coord(5 + rnd.Intn(40))
		w2 := w1 + Coord(1+rnd.Intn(40))
		v1 := rg.NarrowerThan(w1)
		v2 := rg.NarrowerThan(w2)
		return v2.Area() >= v1.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
