package geom

import "fmt"

// Polygon is a simple polygon given by its vertices in order (either
// orientation; most constructors produce counter-clockwise). The polygon is
// implicitly closed: the last vertex connects back to the first.
type Polygon []Point

// Clone returns a deep copy of pg.
func (pg Polygon) Clone() Polygon {
	out := make(Polygon, len(pg))
	copy(out, pg)
	return out
}

// Translate returns pg shifted by d.
func (pg Polygon) Translate(d Point) Polygon {
	out := make(Polygon, len(pg))
	for i, p := range pg {
		out[i] = p.Add(d)
	}
	return out
}

// BBox returns the bounding box of pg.
func (pg Polygon) BBox() Rect { return BBoxOf(pg) }

// SignedArea2 returns twice the signed area of pg (positive when the
// vertices run counter-clockwise). Using twice the area keeps everything in
// exact integer arithmetic.
func (pg Polygon) SignedArea2() int64 {
	var s int64
	n := len(pg)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		s += int64(pg[i].X)*int64(pg[j].Y) - int64(pg[j].X)*int64(pg[i].Y)
	}
	return s
}

// Area returns the absolute area of pg in nm².
func (pg Polygon) Area() int64 {
	a := pg.SignedArea2()
	if a < 0 {
		a = -a
	}
	return a / 2
}

// IsCCW reports whether the vertices run counter-clockwise.
func (pg Polygon) IsCCW() bool { return pg.SignedArea2() > 0 }

// Reverse returns pg with its orientation flipped.
func (pg Polygon) Reverse() Polygon {
	out := make(Polygon, len(pg))
	for i, p := range pg {
		out[len(pg)-1-i] = p
	}
	return out
}

// Contains reports whether p is strictly inside pg (even-odd rule, via ray
// casting to +X). Points exactly on an edge may be reported either way;
// layout code never depends on edge cases because physical quantities are
// areas, not point membership.
func (pg Polygon) Contains(p Point) bool {
	inside := false
	n := len(pg)
	for i := 0; i < n; i++ {
		a, b := pg[i], pg[(i+1)%n]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			// x coordinate of the edge at height p.Y, exact in rationals:
			// a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y) compared to p.X.
			num := int64(p.Y-a.Y) * int64(b.X-a.X)
			den := int64(b.Y - a.Y)
			// Compare p.X < a.X + num/den without division. den != 0 here.
			lhs := int64(p.X-a.X) * den
			if den > 0 {
				if lhs < num {
					inside = !inside
				}
			} else {
				if lhs > num {
					inside = !inside
				}
			}
		}
	}
	return inside
}

// IsRectilinear reports whether every edge of pg is axis-parallel.
func (pg Polygon) IsRectilinear() bool {
	n := len(pg)
	if n < 4 {
		return false
	}
	for i := 0; i < n; i++ {
		a, b := pg[i], pg[(i+1)%n]
		if a.X != b.X && a.Y != b.Y {
			return false
		}
	}
	return true
}

// AsRect returns the rectangle equal to pg and true when pg is exactly an
// axis-aligned rectangle (4 distinct corners in either orientation).
func (pg Polygon) AsRect() (Rect, bool) {
	if len(pg) != 4 || !pg.IsRectilinear() {
		return Rect{}, false
	}
	b := pg.BBox()
	if pg.Area() != b.Area() {
		return Rect{}, false
	}
	return b, true
}

// Perimeter returns the total edge length of pg in nm.
func (pg Polygon) Perimeter() int64 {
	var s int64
	n := len(pg)
	for i := 0; i < n; i++ {
		s += int64(pg[i].Manhattan(pg[(i+1)%n]))
	}
	return s
}

// String implements fmt.Stringer.
func (pg Polygon) String() string {
	return fmt.Sprintf("poly%v", []Point(pg))
}

// Simplify removes consecutive duplicate vertices and collinear vertices on
// axis-parallel runs. It returns nil if the polygon degenerates.
func (pg Polygon) Simplify() Polygon { return dedupVertices(pg) }

// ClipToRect clips pg against the rectangle w using Sutherland–Hodgman.
// The result may be empty. Collinear duplicate vertices are removed.
// Clipping a rectilinear polygon to a rect yields a rectilinear polygon.
func (pg Polygon) ClipToRect(w Rect) Polygon {
	if len(pg) == 0 || w.Empty() {
		return nil
	}
	out := pg
	// Clip successively against the four half-planes of w.
	out = clipHalfPlane(out, func(p Point) bool { return p.X >= w.X0 }, func(a, b Point) Point {
		return intersectVert(a, b, w.X0)
	})
	out = clipHalfPlane(out, func(p Point) bool { return p.X <= w.X1 }, func(a, b Point) Point {
		return intersectVert(a, b, w.X1)
	})
	out = clipHalfPlane(out, func(p Point) bool { return p.Y >= w.Y0 }, func(a, b Point) Point {
		return intersectHoriz(a, b, w.Y0)
	})
	out = clipHalfPlane(out, func(p Point) bool { return p.Y <= w.Y1 }, func(a, b Point) Point {
		return intersectHoriz(a, b, w.Y1)
	})
	return dedupVertices(out)
}

func clipHalfPlane(pg Polygon, inside func(Point) bool, cross func(a, b Point) Point) Polygon {
	if len(pg) == 0 {
		return nil
	}
	var out Polygon
	n := len(pg)
	for i := 0; i < n; i++ {
		cur, next := pg[i], pg[(i+1)%n]
		curIn, nextIn := inside(cur), inside(next)
		if curIn {
			out = append(out, cur)
			if !nextIn {
				out = append(out, cross(cur, next))
			}
		} else if nextIn {
			out = append(out, cross(cur, next))
		}
	}
	return out
}

// intersectVert returns the intersection of segment a-b with the vertical
// line x = x. Coordinates are rounded to the nearest nanometre.
func intersectVert(a, b Point, x Coord) Point {
	if a.X == b.X {
		return Point{x, a.Y}
	}
	y := a.Y + roundDiv(int64(b.Y-a.Y)*int64(x-a.X), int64(b.X-a.X))
	return Point{x, y}
}

// intersectHoriz returns the intersection of segment a-b with the horizontal
// line y = y.
func intersectHoriz(a, b Point, y Coord) Point {
	if a.Y == b.Y {
		return Point{a.X, y}
	}
	x := a.X + roundDiv(int64(b.X-a.X)*int64(y-a.Y), int64(b.Y-a.Y))
	return Point{x, y}
}

// roundDiv divides num by den rounding half away from zero.
func roundDiv(num, den int64) int64 {
	if den < 0 {
		num, den = -num, -den
	}
	if num >= 0 {
		return (num + den/2) / den
	}
	return -((-num + den/2) / den)
}

// dedupVertices removes consecutive duplicate vertices and vertices that are
// collinear midpoints of their neighbours on axis-parallel runs.
func dedupVertices(pg Polygon) Polygon {
	if len(pg) < 3 {
		return nil
	}
	var out Polygon
	for _, p := range pg {
		if len(out) > 0 && out[len(out)-1] == p {
			continue
		}
		out = append(out, p)
	}
	if len(out) > 1 && out[0] == out[len(out)-1] {
		out = out[:len(out)-1]
	}
	if len(out) < 3 {
		return nil
	}
	// Remove collinear points on axis-parallel runs.
	var res Polygon
	n := len(out)
	for i := 0; i < n; i++ {
		prev := out[(i-1+n)%n]
		cur := out[i]
		next := out[(i+1)%n]
		if (prev.X == cur.X && cur.X == next.X) || (prev.Y == cur.Y && cur.Y == next.Y) {
			continue
		}
		res = append(res, cur)
	}
	if len(res) < 3 {
		return nil
	}
	return res
}
