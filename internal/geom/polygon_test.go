package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// lShape returns a rectilinear L-shaped polygon with known area 300+400=700:
//
//	(0,0)-(30,0)-(30,10)-(10,10)-(10,30)-(0,30)
func lShape() Polygon {
	return Polygon{{0, 0}, {30, 0}, {30, 10}, {10, 10}, {10, 30}, {0, 30}}
}

func TestPolygonArea(t *testing.T) {
	sq := R(0, 0, 10, 10).Polygon()
	if got := sq.Area(); got != 100 {
		t.Fatalf("square area = %d, want 100", got)
	}
	if !sq.IsCCW() {
		t.Fatal("Rect.Polygon must be CCW")
	}
	if got := sq.Reverse().Area(); got != 100 {
		t.Fatal("area must be orientation independent")
	}
	if got := lShape().Area(); got != 500 {
		t.Fatalf("L area = %d, want 500", got)
	}
}

func TestPolygonAreaTranslationInvariant(t *testing.T) {
	f := func(dx, dy int16) bool {
		pg := lShape()
		moved := pg.Translate(Pt(Coord(dx), Coord(dy)))
		return pg.Area() == moved.Area()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPolygonContains(t *testing.T) {
	pg := lShape()
	inside := []Point{{5, 5}, {25, 5}, {5, 25}, {9, 9}}
	outside := []Point{{25, 25}, {11, 11}, {31, 5}, {-1, -1}, {5, 31}}
	for _, p := range inside {
		if !pg.Contains(p) {
			t.Errorf("point %v should be inside", p)
		}
	}
	for _, p := range outside {
		if pg.Contains(p) {
			t.Errorf("point %v should be outside", p)
		}
	}
}

func TestPolygonIsRectilinearAndAsRect(t *testing.T) {
	if !lShape().IsRectilinear() {
		t.Fatal("L shape is rectilinear")
	}
	tri := Polygon{{0, 0}, {10, 0}, {5, 8}}
	if tri.IsRectilinear() {
		t.Fatal("triangle is not rectilinear")
	}
	if _, ok := tri.AsRect(); ok {
		t.Fatal("triangle is not a rect")
	}
	r, ok := R(2, 3, 9, 8).Polygon().AsRect()
	if !ok || r != R(2, 3, 9, 8) {
		t.Fatalf("AsRect = %v, %v", r, ok)
	}
	if _, ok := lShape().AsRect(); ok {
		t.Fatal("L shape is not a rect")
	}
}

func TestPolygonPerimeter(t *testing.T) {
	if got := R(0, 0, 10, 5).Polygon().Perimeter(); got != 30 {
		t.Fatalf("perimeter = %d, want 30", got)
	}
	if got := lShape().Perimeter(); got != 120 {
		t.Fatalf("L perimeter = %d, want 120", got)
	}
}

func TestClipToRectBasic(t *testing.T) {
	sq := R(0, 0, 20, 20).Polygon()
	got := sq.ClipToRect(R(10, 10, 30, 30))
	r, ok := got.AsRect()
	if !ok || r != R(10, 10, 20, 20) {
		t.Fatalf("clip = %v", got)
	}
	// Fully inside: unchanged area.
	got = sq.ClipToRect(R(-5, -5, 25, 25))
	if got.Area() != 400 {
		t.Fatalf("clip fully-inside area = %d", got.Area())
	}
	// Fully outside: empty.
	if got := sq.ClipToRect(R(100, 100, 120, 120)); len(got) != 0 {
		t.Fatalf("clip fully-outside = %v", got)
	}
}

func TestClipToRectLShape(t *testing.T) {
	pg := lShape()
	w := R(5, 5, 40, 40)
	clipped := pg.ClipToRect(w)
	// Expected area: L minus the [0,5] strips.
	// Region arithmetic cross-check:
	want := RegionFromPolygon(pg).ClipToRect(w).Area()
	if got := clipped.Area(); got != want {
		t.Fatalf("clipped area = %d, want %d", got, want)
	}
	if !w.ContainsRect(clipped.BBox()) {
		t.Fatal("clip result must lie within the window")
	}
}

func TestClipToRectProperties(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		// Random rectangle polygon and window.
		r := randRect(rnd)
		if r.Empty() {
			return true
		}
		w := randRect(rnd)
		clipped := r.Polygon().ClipToRect(w)
		wantArea := r.Intersect(w).Area()
		return clipped.Area() == wantArea
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundDiv(t *testing.T) {
	cases := []struct{ num, den, want int64 }{
		{7, 2, 4}, {-7, 2, -4}, {7, -2, -4}, {-7, -2, 4},
		{6, 2, 3}, {5, 10, 1}, {4, 10, 0}, {-5, 10, -1}, {-4, 10, 0},
	}
	for _, c := range cases {
		if got := roundDiv(c.num, c.den); got != c.want {
			t.Errorf("roundDiv(%d,%d) = %d, want %d", c.num, c.den, got, c.want)
		}
	}
}

func TestDedupVertices(t *testing.T) {
	pg := Polygon{{0, 0}, {5, 0}, {10, 0}, {10, 10}, {10, 10}, {0, 10}}
	got := dedupVertices(pg)
	if len(got) != 4 {
		t.Fatalf("dedup = %v, want 4 corners", got)
	}
	if got.Area() != 100 {
		t.Fatalf("dedup area = %d", got.Area())
	}
	if dedupVertices(Polygon{{0, 0}, {1, 1}}) != nil {
		t.Fatal("degenerate polygon must dedup to nil")
	}
}
