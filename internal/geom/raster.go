package geom

// Raster is a uniform float64 pixel grid over a layout window, used to turn
// mask geometry into the transmission function consumed by the imaging code.
// Pixel values are area-coverage fractions in [0,1].
type Raster struct {
	// Origin is the layout coordinate of the lower-left corner of pixel
	// (0,0), in nm.
	Origin Point
	// Pixel is the pixel pitch in nm.
	Pixel Coord
	// Nx, Ny are the grid dimensions.
	Nx, Ny int
	// Data holds Nx*Ny coverage values in row-major order
	// (index = iy*Nx + ix).
	Data []float64
}

// NewRaster allocates a zeroed raster covering window w at the given pixel
// pitch. The grid is sized to cover w completely (the last row/column may
// extend past w).
func NewRaster(w Rect, pixel Coord) *Raster {
	ra := new(Raster)
	ra.Reset(w, pixel)
	return ra
}

// Reset reconfigures ra to a zeroed raster covering window w at the given
// pixel pitch, reusing the existing Data allocation when its capacity
// allows. The result is indistinguishable from a fresh NewRaster, which
// makes Raster values poolable.
//
//postopc:allocfree
func (ra *Raster) Reset(w Rect, pixel Coord) {
	if pixel <= 0 {
		panic("geom: raster pixel pitch must be positive")
	}
	nx := int((w.W() + pixel - 1) / pixel)
	ny := int((w.H() + pixel - 1) / pixel)
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	ra.Origin = Point{w.X0, w.Y0}
	ra.Pixel = pixel
	ra.Nx = nx
	ra.Ny = ny
	if cap(ra.Data) < nx*ny {
		ra.Data = make([]float64, nx*ny) //postopc:nolint:allocbudget growth at a new raster size is the cold path
		return
	}
	ra.Data = ra.Data[:nx*ny]
	for i := range ra.Data {
		ra.Data[i] = 0
	}
}

// At returns the coverage of pixel (ix, iy); out-of-range pixels read 0.
//
//postopc:allocfree
func (ra *Raster) At(ix, iy int) float64 {
	if ix < 0 || iy < 0 || ix >= ra.Nx || iy >= ra.Ny {
		return 0
	}
	return ra.Data[iy*ra.Nx+ix]
}

// Set assigns the coverage of pixel (ix, iy); out-of-range writes are
// ignored.
//
//postopc:allocfree
func (ra *Raster) Set(ix, iy int, v float64) {
	if ix < 0 || iy < 0 || ix >= ra.Nx || iy >= ra.Ny {
		return
	}
	ra.Data[iy*ra.Nx+ix] = v
}

// Bounds returns the layout-space rectangle covered by the raster.
func (ra *Raster) Bounds() Rect {
	return Rect{
		ra.Origin.X, ra.Origin.Y,
		ra.Origin.X + Coord(ra.Nx)*ra.Pixel,
		ra.Origin.Y + Coord(ra.Ny)*ra.Pixel,
	}
}

// PixelCenter returns the layout coordinate of the center of pixel (ix, iy)
// in nm as floats (centers fall on half-pixel positions).
func (ra *Raster) PixelCenter(ix, iy int) (x, y float64) {
	x = float64(ra.Origin.X) + (float64(ix)+0.5)*float64(ra.Pixel)
	y = float64(ra.Origin.Y) + (float64(iy)+0.5)*float64(ra.Pixel)
	return
}

// AddRect accumulates the exact area coverage of r into the raster. Values
// are added, so disjoint rectangles (e.g. a normalized Region) sum to a
// physical coverage in [0,1].
func (ra *Raster) AddRect(r Rect) {
	r = r.Intersect(ra.Bounds())
	if r.Empty() {
		return
	}
	px := ra.Pixel
	ix0 := int((r.X0 - ra.Origin.X) / px)
	iy0 := int((r.Y0 - ra.Origin.Y) / px)
	ix1 := int((r.X1 - ra.Origin.X - 1) / px)
	iy1 := int((r.Y1 - ra.Origin.Y - 1) / px)
	pixArea := float64(px) * float64(px)
	for iy := iy0; iy <= iy1 && iy < ra.Ny; iy++ {
		py0 := ra.Origin.Y + Coord(iy)*px
		cell := Rect{0, py0, 0, py0 + px}
		for ix := ix0; ix <= ix1 && ix < ra.Nx; ix++ {
			cell.X0 = ra.Origin.X + Coord(ix)*px
			cell.X1 = cell.X0 + px
			ov := r.Intersect(cell)
			if !ov.Empty() {
				ra.Data[iy*ra.Nx+ix] += float64(ov.Area()) / pixArea
			}
		}
	}
}

// AddRegion accumulates the coverage of rg (normalized internally, so
// overlapping input rectangles still produce coverage ≤ 1).
func (ra *Raster) AddRegion(rg Region) {
	for _, r := range rg.Normalize() {
		ra.AddRect(r)
	}
}

// AddPolygon accumulates the coverage of an arbitrary simple polygon using
// 4×4 supersampling per pixel. Rectilinear polygons take the exact path via
// Region decomposition.
func (ra *Raster) AddPolygon(pg Polygon) {
	if rg := RegionFromPolygon(pg); rg != nil {
		ra.AddRegion(rg)
		return
	}
	bb := pg.BBox().Intersect(ra.Bounds())
	if bb.Empty() {
		return
	}
	px := ra.Pixel
	ix0 := int((bb.X0 - ra.Origin.X) / px)
	iy0 := int((bb.Y0 - ra.Origin.Y) / px)
	ix1 := int((bb.X1 - ra.Origin.X - 1) / px)
	iy1 := int((bb.Y1 - ra.Origin.Y - 1) / px)
	const ss = 4
	for iy := iy0; iy <= iy1 && iy < ra.Ny; iy++ {
		for ix := ix0; ix <= ix1 && ix < ra.Nx; ix++ {
			hits := 0
			for sy := 0; sy < ss; sy++ {
				for sx := 0; sx < ss; sx++ {
					x := ra.Origin.X + Coord(ix)*px + Coord((2*sx+1))*px/(2*ss)
					y := ra.Origin.Y + Coord(iy)*px + Coord((2*sy+1))*px/(2*ss)
					if pg.Contains(Point{x, y}) {
						hits++
					}
				}
			}
			if hits > 0 {
				ra.Data[iy*ra.Nx+ix] += float64(hits) / (ss * ss)
			}
		}
	}
}

// Clamp limits every pixel to [0, 1].
func (ra *Raster) Clamp() {
	for i, v := range ra.Data {
		if v < 0 {
			ra.Data[i] = 0
		} else if v > 1 {
			ra.Data[i] = 1
		}
	}
}

// CoverageArea returns the summed coverage converted back to nm².
func (ra *Raster) CoverageArea() float64 {
	var s float64
	for _, v := range ra.Data {
		s += v
	}
	return s * float64(ra.Pixel) * float64(ra.Pixel)
}
