package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRasterDimensions(t *testing.T) {
	ra := NewRaster(R(0, 0, 100, 50), 10)
	if ra.Nx != 10 || ra.Ny != 5 {
		t.Fatalf("dims = %dx%d", ra.Nx, ra.Ny)
	}
	// Non-multiple window rounds up.
	ra = NewRaster(R(0, 0, 95, 41), 10)
	if ra.Nx != 10 || ra.Ny != 5 {
		t.Fatalf("rounded dims = %dx%d", ra.Nx, ra.Ny)
	}
	if !ra.Bounds().ContainsRect(R(0, 0, 95, 41)) {
		t.Fatal("raster must cover its window")
	}
}

func TestAddRectExactCoverage(t *testing.T) {
	ra := NewRaster(R(0, 0, 40, 40), 10)
	ra.AddRect(R(5, 5, 15, 15)) // quarter of four pixels
	want := map[[2]int]float64{
		{0, 0}: 0.25, {1, 0}: 0.25, {0, 1}: 0.25, {1, 1}: 0.25,
	}
	for k, v := range want {
		if got := ra.At(k[0], k[1]); math.Abs(got-v) > 1e-12 {
			t.Errorf("pixel %v = %g, want %g", k, got, v)
		}
	}
	if got := ra.At(2, 2); got != 0 {
		t.Errorf("far pixel = %g, want 0", got)
	}
}

func TestAddRectAreaConservation(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		win := R(0, 0, 200, 200)
		ra := NewRaster(win, 7) // deliberately non-divisor pitch
		r := R(Coord(rnd.Intn(150)), Coord(rnd.Intn(150)),
			Coord(rnd.Intn(150)), Coord(rnd.Intn(150)))
		ra.AddRect(r)
		want := float64(r.Intersect(ra.Bounds()).Area())
		return math.Abs(ra.CoverageArea()-want) < 1e-6*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAddRegionDisjointSum(t *testing.T) {
	ra := NewRaster(R(0, 0, 100, 100), 5)
	// Overlapping rects through a Region must still cap coverage at 1.
	rg := RegionFromRects(R(10, 10, 60, 60), R(30, 30, 90, 90))
	ra.AddRegion(rg)
	for _, v := range ra.Data {
		if v > 1+1e-9 {
			t.Fatalf("coverage exceeded 1: %g", v)
		}
	}
	want := float64(rg.Area())
	if math.Abs(ra.CoverageArea()-want) > 1e-6*want {
		t.Fatalf("region coverage area = %g, want %g", ra.CoverageArea(), want)
	}
}

func TestAddPolygonRectilinearExact(t *testing.T) {
	ra := NewRaster(R(0, 0, 40, 40), 4)
	ra.AddPolygon(lShape())
	want := float64(lShape().Area())
	if math.Abs(ra.CoverageArea()-want) > 1e-6*want {
		t.Fatalf("polygon coverage = %g, want %g", ra.CoverageArea(), want)
	}
}

func TestAddPolygonSupersampled(t *testing.T) {
	// A right triangle covering half of a 40x40 square: supersampled
	// coverage should land within a few percent of the exact area.
	tri := Polygon{{0, 0}, {40, 0}, {0, 40}}
	ra := NewRaster(R(0, 0, 40, 40), 4)
	ra.AddPolygon(tri)
	want := 800.0
	if math.Abs(ra.CoverageArea()-want) > 0.05*want {
		t.Fatalf("triangle coverage = %g, want ~%g", ra.CoverageArea(), want)
	}
}

func TestRasterClampAndAccessors(t *testing.T) {
	ra := NewRaster(R(0, 0, 10, 10), 10)
	ra.Set(0, 0, 1.5)
	ra.Set(-1, 0, 99) // ignored
	ra.Clamp()
	if got := ra.At(0, 0); got != 1 {
		t.Fatalf("clamped = %g", got)
	}
	if got := ra.At(-1, 0); got != 0 {
		t.Fatalf("out of range read = %g", got)
	}
	x, y := ra.PixelCenter(0, 0)
	if x != 5 || y != 5 {
		t.Fatalf("pixel center = %g,%g", x, y)
	}
}

func TestIndexQuery(t *testing.T) {
	idx := NewIndex[string](R(0, 0, 1000, 1000), 100)
	idx.Insert(R(10, 10, 50, 50), "a")
	idx.Insert(R(400, 400, 600, 600), "b")
	idx.Insert(R(0, 0, 1000, 1000), "chip")
	got := idx.QueryAll(R(20, 20, 30, 30))
	if len(got) != 2 { // "a" and "chip"
		t.Fatalf("query = %v", got)
	}
	got = idx.QueryAll(R(700, 700, 800, 800))
	if len(got) != 1 || got[0] != "chip" {
		t.Fatalf("query = %v", got)
	}
	if idx.Len() != 3 {
		t.Fatalf("len = %d", idx.Len())
	}
	// Early termination.
	count := 0
	idx.Query(R(0, 0, 1000, 1000), func(_ Rect, _ string) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestIndexOutOfBoundsInsert(t *testing.T) {
	idx := NewIndex[int](R(0, 0, 100, 100), 10)
	idx.Insert(R(-50, -50, -10, -10), 1) // clamped into border bin
	got := idx.QueryAll(R(-100, -100, 0, 0))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("out-of-bounds item lost: %v", got)
	}
}
