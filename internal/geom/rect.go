package geom

import "fmt"

// Rect is an axis-aligned rectangle. It is half-open in spirit but since all
// quantities are physical nanometres, edges are treated as closed for
// containment and area is (X1-X0)*(Y1-Y0). A Rect with X0 >= X1 or Y0 >= Y1
// is empty.
type Rect struct {
	X0, Y0, X1, Y1 Coord
}

// R constructs a normalized Rect from any two opposite corners.
func R(x0, y0, x1, y1 Coord) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1, y1}
}

// Empty reports whether r has zero (or negative) extent.
func (r Rect) Empty() bool { return r.X0 >= r.X1 || r.Y0 >= r.Y1 }

// W returns the width of r.
//
//postopc:allocfree
func (r Rect) W() Coord { return r.X1 - r.X0 }

// H returns the height of r.
//
//postopc:allocfree
func (r Rect) H() Coord { return r.Y1 - r.Y0 }

// Area returns the area of r in nm². Empty rectangles have zero area.
func (r Rect) Area() int64 {
	if r.Empty() {
		return 0
	}
	return int64(r.W()) * int64(r.H())
}

// Center returns the center of r (rounded toward negative infinity for odd
// extents).
func (r Rect) Center() Point { return Point{(r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2} }

// Contains reports whether p lies inside r (closed edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X <= r.X1 && p.Y >= r.Y0 && p.Y <= r.Y1
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return s.X0 >= r.X0 && s.X1 <= r.X1 && s.Y0 >= r.Y0 && s.Y1 <= r.Y1
}

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{maxC(r.X0, s.X0), maxC(r.Y0, s.Y0), minC(r.X1, s.X1), minC(r.Y1, s.Y1)}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Intersects reports whether r and s share interior area.
func (r Rect) Intersects(s Rect) bool {
	return !r.Empty() && !s.Empty() &&
		r.X0 < s.X1 && s.X0 < r.X1 && r.Y0 < s.Y1 && s.Y0 < r.Y1
}

// Union returns the bounding box of r and s. Empty inputs are ignored.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{minC(r.X0, s.X0), minC(r.Y0, s.Y0), maxC(r.X1, s.X1), maxC(r.Y1, s.Y1)}
}

// Expand grows r by d on every side (shrinks for negative d). The result is
// normalized to the empty Rect if it collapses.
func (r Rect) Expand(d Coord) Rect {
	out := Rect{r.X0 - d, r.Y0 - d, r.X1 + d, r.Y1 + d}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Translate returns r shifted by p.
func (r Rect) Translate(p Point) Rect {
	return Rect{r.X0 + p.X, r.Y0 + p.Y, r.X1 + p.X, r.Y1 + p.Y}
}

// Polygon returns the counter-clockwise rectangle outline as a Polygon.
func (r Rect) Polygon() Polygon {
	return Polygon{
		{r.X0, r.Y0}, {r.X1, r.Y0}, {r.X1, r.Y1}, {r.X0, r.Y1},
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d %d,%d]", r.X0, r.Y0, r.X1, r.Y1)
}

// BBoxOf returns the bounding box of a set of points. It returns the empty
// Rect for an empty set.
func BBoxOf(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	b := Rect{pts[0].X, pts[0].Y, pts[0].X, pts[0].Y}
	for _, p := range pts[1:] {
		b.X0 = minC(b.X0, p.X)
		b.Y0 = minC(b.Y0, p.Y)
		b.X1 = maxC(b.X1, p.X)
		b.Y1 = maxC(b.Y1, p.Y)
	}
	return b
}
