package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRNormalizes(t *testing.T) {
	r := R(10, 20, 5, 2)
	want := Rect{5, 2, 10, 20}
	if r != want {
		t.Fatalf("R(10,20,5,2) = %v, want %v", r, want)
	}
}

func TestRectEmptyAndArea(t *testing.T) {
	cases := []struct {
		r     Rect
		empty bool
		area  int64
	}{
		{Rect{}, true, 0},
		{Rect{0, 0, 10, 10}, false, 100},
		{Rect{5, 5, 5, 10}, true, 0},
		{Rect{-10, -10, 10, 10}, false, 400},
		{Rect{3, 3, 2, 4}, true, 0},
	}
	for _, c := range cases {
		if got := c.r.Empty(); got != c.empty {
			t.Errorf("%v.Empty() = %v, want %v", c.r, got, c.empty)
		}
		if got := c.r.Area(); got != c.area {
			t.Errorf("%v.Area() = %d, want %d", c.r, got, c.area)
		}
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	got := a.Intersect(b)
	want := Rect{5, 5, 10, 10}
	if got != want {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	if !a.Intersects(b) {
		t.Fatal("Intersects should be true")
	}
	c := Rect{10, 0, 20, 10} // abutting, no interior overlap
	if a.Intersects(c) {
		t.Fatal("abutting rects must not report interior intersection")
	}
	if !a.Intersect(c).Empty() {
		t.Fatal("abutting rects intersect to empty")
	}
}

func TestRectUnionContains(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{10, 10, 12, 12}
	u := a.Union(b)
	if !u.ContainsRect(a) || !u.ContainsRect(b) {
		t.Fatalf("union %v must contain both operands", u)
	}
	if got := (Rect{}).Union(a); got != a {
		t.Fatalf("union with empty = %v, want %v", got, a)
	}
	if !a.Contains(Pt(0, 0)) || !a.Contains(Pt(4, 4)) {
		t.Fatal("closed-edge containment failed")
	}
	if a.Contains(Pt(5, 2)) {
		t.Fatal("point outside reported inside")
	}
}

func TestRectExpand(t *testing.T) {
	a := Rect{10, 10, 20, 20}
	if got := a.Expand(5); got != (Rect{5, 5, 25, 25}) {
		t.Fatalf("Expand(5) = %v", got)
	}
	if got := a.Expand(-5); !got.Empty() {
		t.Fatalf("Expand(-5) should collapse to empty, got %v", got)
	}
	if got := a.Expand(-3); got != (Rect{13, 13, 17, 17}) {
		t.Fatalf("Expand(-3) = %v", got)
	}
}

func TestRectTranslateAndCenter(t *testing.T) {
	a := Rect{0, 0, 10, 6}
	if got := a.Translate(Pt(100, -50)); got != (Rect{100, -50, 110, -44}) {
		t.Fatalf("Translate = %v", got)
	}
	if got := a.Center(); got != Pt(5, 3) {
		t.Fatalf("Center = %v", got)
	}
}

// randRect produces small random rects for property tests.
func randRect(rnd *rand.Rand) Rect {
	x0 := Coord(rnd.Intn(200) - 100)
	y0 := Coord(rnd.Intn(200) - 100)
	return Rect{x0, y0, x0 + Coord(rnd.Intn(100)), y0 + Coord(rnd.Intn(100))}
}

func TestRectIntersectionProperties(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a, b := randRect(rnd), randRect(rnd)
		c := a.Intersect(b)
		// Intersection is commutative and contained in both operands.
		if c != b.Intersect(a) {
			return false
		}
		if !c.Empty() && (!a.ContainsRect(c) || !b.ContainsRect(c)) {
			return false
		}
		// Intersection area never exceeds either operand.
		if c.Area() > a.Area() || c.Area() > b.Area() {
			return false
		}
		// Union bounding box contains both.
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBBoxOf(t *testing.T) {
	if got := BBoxOf(nil); !got.Empty() {
		t.Fatalf("BBoxOf(nil) = %v, want empty", got)
	}
	pts := []Point{{3, 4}, {-1, 10}, {7, -2}}
	if got := BBoxOf(pts); got != (Rect{-1, -2, 7, 10}) {
		t.Fatalf("BBoxOf = %v", got)
	}
}

func TestPointOps(t *testing.T) {
	p, q := Pt(3, 4), Pt(-1, 2)
	if p.Add(q) != Pt(2, 6) {
		t.Fatal("Add")
	}
	if p.Sub(q) != Pt(4, 2) {
		t.Fatal("Sub")
	}
	if p.Scale(3) != Pt(9, 12) {
		t.Fatal("Scale")
	}
	if p.Manhattan(q) != 6 {
		t.Fatal("Manhattan")
	}
}
