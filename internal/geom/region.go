package geom

import "sort"

// Region is a rectilinear area represented as a set of rectangles. The
// rectangles of a normalized Region are pairwise disjoint and organized as
// horizontal slabs; most operations normalize internally, so callers may
// build Regions from overlapping rectangles freely.
//
// Regions are how the extraction code forms boolean combinations of layout
// layers (e.g. gate area = poly ∩ diffusion) without a general polygon
// clipper: all mask layout in this repository is Manhattan.
type Region []Rect

// RegionFromRects builds a Region, dropping empty rectangles.
func RegionFromRects(rs ...Rect) Region {
	var out Region
	for _, r := range rs {
		if !r.Empty() {
			out = append(out, r)
		}
	}
	return out
}

// RegionFromPolygon decomposes a rectilinear polygon into a normalized
// Region. Non-rectilinear input returns nil.
func RegionFromPolygon(pg Polygon) Region {
	if r, ok := pg.AsRect(); ok {
		return Region{r}
	}
	if !pg.IsRectilinear() {
		return nil
	}
	// Vertical edges of the polygon.
	type vedge struct {
		x, y0, y1 Coord
	}
	var edges []vedge
	ys := make([]Coord, 0, len(pg))
	n := len(pg)
	for i := 0; i < n; i++ {
		a, b := pg[i], pg[(i+1)%n]
		ys = append(ys, a.Y)
		if a.X == b.X && a.Y != b.Y {
			y0, y1 := a.Y, b.Y
			if y0 > y1 {
				y0, y1 = y1, y0
			}
			edges = append(edges, vedge{a.X, y0, y1})
		}
	}
	ys = dedupSortedCoords(ys)
	var out Region
	for bi := 0; bi+1 < len(ys); bi++ {
		y0, y1 := ys[bi], ys[bi+1]
		if y0 >= y1 {
			continue
		}
		mid := y0 + (y1-y0)/2
		var xs []Coord
		for _, e := range edges {
			if e.y0 <= mid && mid < e.y1 {
				xs = append(xs, e.x)
			}
		}
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		for i := 0; i+1 < len(xs); i += 2 {
			if xs[i] < xs[i+1] {
				out = append(out, Rect{xs[i], y0, xs[i+1], y1})
			}
		}
	}
	return out.Normalize()
}

func dedupSortedCoords(cs []Coord) []Coord {
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	out := cs[:0]
	for i, c := range cs {
		if i == 0 || c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// Normalize returns an equivalent Region whose rectangles are pairwise
// disjoint horizontal slabs; slabs with identical x-intervals in adjacent
// bands are merged vertically. Normalize is idempotent.
func (rg Region) Normalize() Region {
	if len(rg) == 0 {
		return nil
	}
	// Collect band boundaries.
	ys := make([]Coord, 0, 2*len(rg))
	for _, r := range rg {
		if r.Empty() {
			continue
		}
		ys = append(ys, r.Y0, r.Y1)
	}
	if len(ys) == 0 {
		return nil
	}
	ys = dedupSortedCoords(ys)

	var out Region
	// prev band's merged intervals, to allow vertical coalescing.
	var prev []interval
	var prevY0, prevY1 Coord
	flushPrev := func() {
		for _, iv := range prev {
			out = append(out, Rect{iv.x0, prevY0, iv.x1, prevY1})
		}
		prev = nil
	}
	for bi := 0; bi+1 < len(ys); bi++ {
		y0, y1 := ys[bi], ys[bi+1]
		var ivs []interval
		for _, r := range rg {
			if r.Empty() || r.Y0 > y0 || r.Y1 < y1 {
				continue
			}
			ivs = append(ivs, interval{r.X0, r.X1})
		}
		if len(ivs) == 0 {
			flushPrev()
			continue
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].x0 < ivs[j].x0 })
		merged := ivs[:1:1]
		for _, iv := range ivs[1:] {
			last := &merged[len(merged)-1]
			if iv.x0 <= last.x1 {
				if iv.x1 > last.x1 {
					last.x1 = iv.x1
				}
			} else {
				merged = append(merged, iv)
			}
		}
		// Try to coalesce with the previous band.
		if prev != nil && prevY1 == y0 && sameIntervals(prev, merged) {
			prevY1 = y1
			continue
		}
		flushPrev()
		prev, prevY0, prevY1 = merged, y0, y1
	}
	flushPrev()
	return out
}

// interval is an x-extent within one horizontal slab of a Region.
type interval struct{ x0, x1 Coord }

func sameIntervals(a, b []interval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Area returns the total area of rg in nm², counting overlaps once.
func (rg Region) Area() int64 {
	var s int64
	for _, r := range rg.Normalize() {
		s += r.Area()
	}
	return s
}

// BBox returns the bounding box of rg.
func (rg Region) BBox() Rect {
	var b Rect
	for _, r := range rg {
		b = b.Union(r)
	}
	return b
}

// Empty reports whether rg covers zero area.
func (rg Region) Empty() bool {
	for _, r := range rg {
		if !r.Empty() {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of rg and other.
func (rg Region) Intersect(other Region) Region {
	var out Region
	for _, a := range rg {
		for _, b := range other {
			if c := a.Intersect(b); !c.Empty() {
				out = append(out, c)
			}
		}
	}
	return out.Normalize()
}

// Union returns the union of rg and other.
func (rg Region) Union(other Region) Region {
	out := make(Region, 0, len(rg)+len(other))
	out = append(out, rg...)
	out = append(out, other...)
	return out.Normalize()
}

// Subtract returns rg minus other.
func (rg Region) Subtract(other Region) Region {
	cur := rg.Normalize()
	for _, b := range other.Normalize() {
		var next Region
		for _, a := range cur {
			next = append(next, subtractRect(a, b)...)
		}
		cur = next
	}
	return cur.Normalize()
}

// subtractRect returns a minus b as up to four rectangles.
func subtractRect(a, b Rect) []Rect {
	c := a.Intersect(b)
	if c.Empty() {
		return []Rect{a}
	}
	var out []Rect
	add := func(r Rect) {
		if !r.Empty() {
			out = append(out, r)
		}
	}
	add(Rect{a.X0, a.Y0, a.X1, c.Y0}) // below
	add(Rect{a.X0, c.Y1, a.X1, a.Y1}) // above
	add(Rect{a.X0, c.Y0, c.X0, c.Y1}) // left
	add(Rect{c.X1, c.Y0, a.X1, c.Y1}) // right
	return out
}

// Contains reports whether p is covered by rg.
func (rg Region) Contains(p Point) bool {
	for _, r := range rg {
		if !r.Empty() && p.X >= r.X0 && p.X < r.X1 && p.Y >= r.Y0 && p.Y < r.Y1 {
			return true
		}
	}
	return false
}

// ClipToRect returns the part of rg inside w.
func (rg Region) ClipToRect(w Rect) Region {
	var out Region
	for _, r := range rg {
		if c := r.Intersect(w); !c.Empty() {
			out = append(out, c)
		}
	}
	return out.Normalize()
}
