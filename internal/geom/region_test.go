package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegionNormalizeDisjointArea(t *testing.T) {
	// Two overlapping rects: union area must count overlap once.
	rg := RegionFromRects(R(0, 0, 10, 10), R(5, 5, 15, 15))
	if got := rg.Area(); got != 175 {
		t.Fatalf("area = %d, want 175", got)
	}
	n := rg.Normalize()
	// Normalized rects must be pairwise disjoint.
	for i := range n {
		for j := i + 1; j < len(n); j++ {
			if n[i].Intersects(n[j]) {
				t.Fatalf("normalized rects overlap: %v %v", n[i], n[j])
			}
		}
	}
	// Idempotence.
	if got := n.Normalize().Area(); got != 175 {
		t.Fatalf("normalize not idempotent: %d", got)
	}
}

func TestRegionNormalizeCoalesces(t *testing.T) {
	// Two stacked rects with the same x-interval must merge into one.
	rg := RegionFromRects(R(0, 0, 10, 5), R(0, 5, 10, 10))
	n := rg.Normalize()
	if len(n) != 1 || n[0] != R(0, 0, 10, 10) {
		t.Fatalf("coalesce = %v", n)
	}
}

func TestRegionFromPolygon(t *testing.T) {
	rg := RegionFromPolygon(lShape())
	if rg == nil {
		t.Fatal("decomposition failed")
	}
	if got := rg.Area(); got != 500 {
		t.Fatalf("region area = %d, want 500", got)
	}
	// Non-rectilinear returns nil.
	if RegionFromPolygon(Polygon{{0, 0}, {10, 0}, {5, 8}}) != nil {
		t.Fatal("non-rectilinear decomposition must return nil")
	}
	// Point sampling agreement.
	pg := lShape()
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		p := Pt(Coord(rnd.Intn(35)), Coord(rnd.Intn(35)))
		// Skip points on grid lines of the polygon edges where membership
		// conventions differ.
		if p.X%10 == 0 || p.Y%10 == 0 {
			continue
		}
		if pg.Contains(p) != rg.Contains(p) {
			t.Fatalf("membership mismatch at %v", p)
		}
	}
}

func TestRegionBooleans(t *testing.T) {
	a := RegionFromRects(R(0, 0, 20, 20))
	b := RegionFromRects(R(10, 10, 30, 30))
	if got := a.Intersect(b).Area(); got != 100 {
		t.Fatalf("intersect area = %d, want 100", got)
	}
	if got := a.Union(b).Area(); got != 700 {
		t.Fatalf("union area = %d, want 700", got)
	}
	if got := a.Subtract(b).Area(); got != 300 {
		t.Fatalf("subtract area = %d, want 300", got)
	}
	// A - A = empty.
	if got := a.Subtract(a); !got.Empty() {
		t.Fatalf("self-subtract = %v", got)
	}
	// Disjoint intersect = empty.
	c := RegionFromRects(R(100, 100, 110, 110))
	if got := a.Intersect(c); !got.Empty() {
		t.Fatalf("disjoint intersect = %v", got)
	}
}

func TestRegionInclusionExclusion(t *testing.T) {
	// |A ∪ B| = |A| + |B| - |A ∩ B| for random rect pairs.
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a := RegionFromRects(randRect(rnd), randRect(rnd))
		b := RegionFromRects(randRect(rnd))
		union := a.Union(b).Area()
		inter := a.Intersect(b).Area()
		return union == a.Area()+b.Area()-inter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionSubtractProperty(t *testing.T) {
	// |A - B| = |A| - |A ∩ B|.
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a := RegionFromRects(randRect(rnd), randRect(rnd))
		b := RegionFromRects(randRect(rnd), randRect(rnd))
		return a.Subtract(b).Area() == a.Area()-a.Intersect(b).Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionClipToRect(t *testing.T) {
	rg := RegionFromPolygon(lShape())
	w := R(5, 5, 12, 40)
	clipped := rg.ClipToRect(w)
	if !w.ContainsRect(clipped.BBox()) {
		t.Fatal("clip escaped window")
	}
	want := rg.Intersect(RegionFromRects(w)).Area()
	if got := clipped.Area(); got != want {
		t.Fatalf("clip area = %d, want %d", got, want)
	}
}

func TestRegionEmptyAndBBox(t *testing.T) {
	var rg Region
	if !rg.Empty() {
		t.Fatal("nil region is empty")
	}
	if !rg.BBox().Empty() {
		t.Fatal("nil region bbox is empty")
	}
	rg = RegionFromRects(R(1, 2, 3, 4), R(10, 2, 11, 9))
	if rg.BBox() != (Rect{1, 2, 11, 9}) {
		t.Fatalf("bbox = %v", rg.BBox())
	}
}
