// Package layout is the mask-layout database: layers, shapes, cells,
// placed instances and full-chip assembly with windowed flattening. All
// drawn geometry is Manhattan rectangles; printed (simulated) geometry
// lives elsewhere as general polygons.
package layout

import (
	"fmt"
	"sort"

	"postopc/internal/geom"
)

// Layer identifies a mask layer.
type Layer uint8

// The mask layers used by the synthetic cell library. Only Diffusion and
// Poly participate in gate formation; the interconnect layers exist so the
// cell layouts are complete and the OPC context is realistic.
const (
	LayerNWell Layer = iota
	LayerDiffusion
	LayerPoly
	LayerContact
	LayerMetal1
	LayerVia1
	LayerMetal2
	NumLayers
)

var layerNames = [...]string{
	"nwell", "diffusion", "poly", "contact", "metal1", "via1", "metal2",
}

// String implements fmt.Stringer.
func (l Layer) String() string {
	if int(l) < len(layerNames) {
		return layerNames[l]
	}
	return fmt.Sprintf("layer%d", uint8(l))
}

// ParseLayer resolves a layer name.
func ParseLayer(s string) (Layer, error) {
	for i, n := range layerNames {
		if n == s {
			return Layer(i), nil
		}
	}
	return 0, fmt.Errorf("layout: unknown layer %q", s)
}

// Shape is one drawn rectangle on a layer.
type Shape struct {
	Layer Layer
	Rect  geom.Rect
}

// DeviceKind distinguishes transistor types.
type DeviceKind uint8

const (
	NMOS DeviceKind = iota
	PMOS
)

// String implements fmt.Stringer.
func (k DeviceKind) String() string {
	if k == NMOS {
		return "nmos"
	}
	return "pmos"
}

// GateSite is one transistor channel inside a cell: the rectangle where a
// poly gate crosses diffusion. The post-OPC flow measures the printed CD of
// exactly these rectangles.
type GateSite struct {
	// Name identifies the device within the cell (e.g. "MN0").
	Name string
	// Pin is the cell input pin driving this gate.
	Pin string
	// Kind is NMOS or PMOS.
	Kind DeviceKind
	// Channel is the drawn channel rectangle: width = drawn gate length L
	// (x extent, poly runs vertically), height = device width W.
	Channel geom.Rect
}

// L returns the drawn gate length in nm.
func (g GateSite) L() geom.Coord { return g.Channel.W() }

// W returns the drawn device width in nm.
func (g GateSite) W() geom.Coord { return g.Channel.H() }

// Cell is a reusable layout macro (standard cell).
type Cell struct {
	// Name is the library cell name (e.g. "NAND2_X1").
	Name string
	// Box is the placement bounding box (origin at (0,0)).
	Box geom.Rect
	// Shapes holds the drawn geometry in cell coordinates.
	Shapes []Shape
	// Gates lists the transistor channels in cell coordinates.
	Gates []GateSite
}

// ShapesOn returns the cell's rectangles on one layer.
func (c *Cell) ShapesOn(l Layer) []geom.Rect {
	var out []geom.Rect
	for _, s := range c.Shapes {
		if s.Layer == l {
			out = append(out, s.Rect)
		}
	}
	return out
}

// AddRect appends a rectangle to the cell.
func (c *Cell) AddRect(l Layer, r geom.Rect) {
	c.Shapes = append(c.Shapes, Shape{Layer: l, Rect: r})
	c.Box = c.Box.Union(r)
}

// Orient is a placement orientation. Standard-cell rows only need the
// identity and the vertical flip (alternate rows share power rails).
type Orient uint8

const (
	// R0 is the identity orientation.
	R0 Orient = iota
	// MX mirrors about the x-axis (flips y), the orientation of every
	// other standard-cell row.
	MX
)

// Apply transforms a cell-space rectangle into chip space for an instance
// with the given origin. For MX the cell is flipped about its own x-axis
// before translation, so a cell spanning [0,h] in y maps to [origin-h+...]:
// we flip within the cell box so placement origins stay at the lower-left.
func (o Orient) Apply(r geom.Rect, box geom.Rect, origin geom.Point) geom.Rect {
	if o == MX {
		// Flip inside the cell box: y -> (box.Y0 + box.Y1) - y.
		sum := box.Y0 + box.Y1
		r = geom.R(r.X0, sum-r.Y1, r.X1, sum-r.Y0)
	}
	return r.Translate(origin)
}

// Instance is a placed occurrence of a cell.
type Instance struct {
	// Name is the unique instance name (matches the netlist gate name).
	Name string
	// Cell is the master.
	Cell *Cell
	// Origin is the chip-space position of the cell's lower-left corner.
	Origin geom.Point
	// Orient is the placement orientation.
	Orient Orient
}

// Bounds returns the chip-space bounding box of the instance.
func (in *Instance) Bounds() geom.Rect {
	return in.Orient.Apply(in.Cell.Box, in.Cell.Box, in.Origin)
}

// TransformRect maps a cell-space rect of this instance into chip space.
func (in *Instance) TransformRect(r geom.Rect) geom.Rect {
	return in.Orient.Apply(r, in.Cell.Box, in.Origin)
}

// TransformRectAll maps a set of cell-space rects into chip space.
func (in *Instance) TransformRectAll(rs []geom.Rect) []geom.Rect {
	out := make([]geom.Rect, len(rs))
	for i, r := range rs {
		out[i] = in.TransformRect(r)
	}
	return out
}

// GateSites returns the instance's transistor channels in chip space, with
// names qualified by the instance name ("inst/MN0").
func (in *Instance) GateSites() []GateSite {
	out := make([]GateSite, len(in.Cell.Gates))
	for i, g := range in.Cell.Gates {
		out[i] = GateSite{
			Name:    in.Name + "/" + g.Name,
			Pin:     g.Pin,
			Kind:    g.Kind,
			Channel: in.TransformRect(g.Channel),
		}
	}
	return out
}

// Chip is a placed design.
type Chip struct {
	// Name is the design name.
	Name string
	// Die is the chip outline.
	Die geom.Rect
	// Instances holds every placed cell.
	Instances []Instance

	index *geom.Index[*Instance]
}

// AddInstance places a cell on the chip. The returned pointer is only valid
// until the next AddInstance call (the instance slice may reallocate).
func (ch *Chip) AddInstance(name string, cell *Cell, origin geom.Point, o Orient) *Instance {
	ch.Instances = append(ch.Instances, Instance{Name: name, Cell: cell, Origin: origin, Orient: o})
	in := &ch.Instances[len(ch.Instances)-1]
	ch.Die = ch.Die.Union(in.Bounds())
	ch.index = nil // invalidate
	return in
}

// BuildIndex (re)builds the spatial index; it is also built lazily by
// WindowShapes. Call it explicitly after bulk placement for determinism in
// benchmarks.
func (ch *Chip) BuildIndex() {
	cellPitch := ch.Die.W() / 32
	if cellPitch < 1000 {
		cellPitch = 1000
	}
	idx := geom.NewIndex[*Instance](ch.Die, cellPitch)
	for i := range ch.Instances {
		in := &ch.Instances[i]
		idx.Insert(in.Bounds(), in)
	}
	ch.index = idx
}

// InstancesIn returns the instances whose bounds intersect the window,
// sorted by name for determinism.
func (ch *Chip) InstancesIn(w geom.Rect) []*Instance {
	if ch.index == nil {
		ch.BuildIndex()
	}
	out := ch.index.QueryAll(w)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WindowShapes flattens the chip geometry on one layer inside the window,
// clipped to it. This is what feeds per-gate litho simulation windows.
func (ch *Chip) WindowShapes(l Layer, w geom.Rect) []geom.Rect {
	var out []geom.Rect
	for _, in := range ch.InstancesIn(w) {
		for _, s := range in.Cell.Shapes {
			if s.Layer != l {
				continue
			}
			r := in.TransformRect(s.Rect).Intersect(w)
			if !r.Empty() {
				out = append(out, r)
			}
		}
	}
	return out
}

// AllGateSites returns every transistor channel on the chip.
func (ch *Chip) AllGateSites() []GateSite {
	var out []GateSite
	for i := range ch.Instances {
		out = append(out, ch.Instances[i].GateSites()...)
	}
	return out
}

// FindInstance returns the named instance, or nil.
func (ch *Chip) FindInstance(name string) *Instance {
	for i := range ch.Instances {
		if ch.Instances[i].Name == name {
			return &ch.Instances[i]
		}
	}
	return nil
}
