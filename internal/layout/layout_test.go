package layout

import (
	"testing"

	"postopc/internal/geom"
)

func invCell() *Cell {
	c := &Cell{Name: "TINV"}
	c.Box = geom.R(0, 0, 680, 2600)
	c.AddRect(LayerDiffusion, geom.R(100, 400, 580, 900))   // ndiff
	c.AddRect(LayerDiffusion, geom.R(100, 1700, 580, 2200)) // pdiff
	c.AddRect(LayerPoly, geom.R(295, 290, 385, 2310))
	c.AddRect(LayerMetal1, geom.R(0, 0, 680, 240))
	c.Gates = append(c.Gates,
		GateSite{Name: "MN0", Pin: "A", Kind: NMOS, Channel: geom.R(295, 400, 385, 900)},
		GateSite{Name: "MP0", Pin: "A", Kind: PMOS, Channel: geom.R(295, 1700, 385, 2200)},
	)
	c.Box = geom.R(0, 0, 680, 2600)
	return c
}

func TestLayerString(t *testing.T) {
	if LayerPoly.String() != "poly" {
		t.Fatalf("poly name = %s", LayerPoly)
	}
	l, err := ParseLayer("metal1")
	if err != nil || l != LayerMetal1 {
		t.Fatalf("ParseLayer = %v, %v", l, err)
	}
	if _, err := ParseLayer("bogus"); err == nil {
		t.Fatal("expected error for unknown layer")
	}
	if Layer(200).String() == "" {
		t.Fatal("out-of-range layer must still stringify")
	}
}

func TestGateSiteDims(t *testing.T) {
	g := invCell().Gates[0]
	if g.L() != 90 || g.W() != 500 {
		t.Fatalf("L=%d W=%d", g.L(), g.W())
	}
}

func TestCellShapesOn(t *testing.T) {
	c := invCell()
	if n := len(c.ShapesOn(LayerDiffusion)); n != 2 {
		t.Fatalf("diffusion shapes = %d", n)
	}
	if n := len(c.ShapesOn(LayerVia1)); n != 0 {
		t.Fatalf("via shapes = %d", n)
	}
}

func TestOrientApply(t *testing.T) {
	box := geom.R(0, 0, 100, 200)
	r := geom.R(10, 20, 30, 50)
	// R0: pure translation.
	got := R0.Apply(r, box, geom.Pt(1000, 2000))
	if got != geom.R(1010, 2020, 1030, 2050) {
		t.Fatalf("R0 = %v", got)
	}
	// MX: flip inside the box (y -> 200 - y), then translate.
	got = MX.Apply(r, box, geom.Pt(0, 0))
	if got != geom.R(10, 150, 30, 180) {
		t.Fatalf("MX = %v", got)
	}
	// Flip twice = identity.
	got = MX.Apply(MX.Apply(r, box, geom.Pt(0, 0)), box, geom.Pt(0, 0))
	if got != r {
		t.Fatalf("MX∘MX = %v", got)
	}
}

func TestInstanceTransforms(t *testing.T) {
	c := invCell()
	in := Instance{Name: "u1", Cell: c, Origin: geom.Pt(5000, 2600), Orient: MX}
	b := in.Bounds()
	if b != geom.R(5000, 2600, 5680, 5200) {
		t.Fatalf("bounds = %v", b)
	}
	sites := in.GateSites()
	if len(sites) != 2 {
		t.Fatalf("sites = %d", len(sites))
	}
	if sites[0].Name != "u1/MN0" {
		t.Fatalf("site name = %s", sites[0].Name)
	}
	// The NMOS channel (low in the cell) must land high after MX flip.
	n := sites[0].Channel
	p := sites[1].Channel
	if n.Y0 <= p.Y0 {
		t.Fatalf("MX flip should put NMOS above PMOS: n=%v p=%v", n, p)
	}
	// Gate dimensions survive the transform.
	if sites[0].L() != 90 || sites[0].W() != 500 {
		t.Fatalf("transformed L=%d W=%d", sites[0].L(), sites[0].W())
	}
}

func buildChip(t *testing.T) *Chip {
	t.Helper()
	c := invCell()
	ch := &Chip{Name: "testchip"}
	for i := 0; i < 4; i++ {
		or := R0
		if i%2 == 1 {
			or = MX
		}
		ch.AddInstance(
			// Instances in one row.
			fmtName(i), c, geom.Pt(geom.Coord(i)*680, 0), or)
	}
	ch.BuildIndex()
	return ch
}

func fmtName(i int) string { return string(rune('a'+i)) + "0" }

func TestChipWindowShapes(t *testing.T) {
	ch := buildChip(t)
	// Window over the second instance only.
	w := geom.R(700, 0, 1340, 2600)
	polys := ch.WindowShapes(LayerPoly, w)
	if len(polys) != 1 {
		t.Fatalf("poly shapes in window = %d", len(polys))
	}
	if !w.ContainsRect(polys[0]) {
		t.Fatal("window shape not clipped")
	}
	// Window spanning all: 4 poly strips.
	all := ch.WindowShapes(LayerPoly, ch.Die)
	if len(all) != 4 {
		t.Fatalf("total poly strips = %d", len(all))
	}
}

func TestChipInstancesIn(t *testing.T) {
	ch := buildChip(t)
	got := ch.InstancesIn(geom.R(0, 0, 10, 10))
	if len(got) != 1 || got[0].Name != "a0" {
		t.Fatalf("instances = %v", names(got))
	}
	got = ch.InstancesIn(ch.Die)
	if len(got) != 4 {
		t.Fatalf("all instances = %d", len(got))
	}
	// Deterministic sorted order.
	for i := 1; i < len(got); i++ {
		if got[i-1].Name >= got[i].Name {
			t.Fatal("instances not sorted")
		}
	}
}

func names(ins []*Instance) []string {
	var out []string
	for _, in := range ins {
		out = append(out, in.Name)
	}
	return out
}

func TestChipGateSitesAndFind(t *testing.T) {
	ch := buildChip(t)
	sites := ch.AllGateSites()
	if len(sites) != 8 {
		t.Fatalf("gate sites = %d", len(sites))
	}
	if in := ch.FindInstance("c0"); in == nil || in.Name != "c0" {
		t.Fatal("FindInstance failed")
	}
	if in := ch.FindInstance("zz"); in != nil {
		t.Fatal("FindInstance ghost")
	}
}
