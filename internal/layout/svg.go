package layout

import (
	"bufio"
	"fmt"
	"io"

	"postopc/internal/geom"
)

// SVG rendering of layout windows: the visualization used by the CLIs and
// examples to show drawn layers, OPC-corrected masks and printed contours
// in one picture. The y axis is flipped so layout +y points up.

// SVGStyle maps layers to fill colors (with opacity baked in).
var svgLayerStyle = map[Layer]string{
	LayerNWell:     "fill:#f2e8c9;fill-opacity:0.6",
	LayerDiffusion: "fill:#3f9b41;fill-opacity:0.65",
	LayerPoly:      "fill:#d04a3a;fill-opacity:0.75",
	LayerContact:   "fill:#222222;fill-opacity:0.9",
	LayerMetal1:    "fill:#3a6fd0;fill-opacity:0.45",
	LayerVia1:      "fill:#111166;fill-opacity:0.9",
	LayerMetal2:    "fill:#9b3fd0;fill-opacity:0.40",
}

// SVGOverlay is extra geometry drawn on top of the layer stack (corrected
// mask outlines, printed contours, gate channel markers...).
type SVGOverlay struct {
	// Polys are drawn as outlines.
	Polys []geom.Polygon
	// Style is the SVG style attribute, e.g. "fill:none;stroke:#000".
	Style string
}

// SVGWriter accumulates a drawing of one layout window.
type SVGWriter struct {
	window   geom.Rect
	scale    float64 // SVG units per nm
	body     []string
	layers   []Layer
	overlays []SVGOverlay
	shapes   map[Layer][]geom.Rect
}

// NewSVG starts a drawing of the given window; widthPX sets the output
// image width in pixels.
func NewSVG(window geom.Rect, widthPX int) *SVGWriter {
	if widthPX <= 0 {
		widthPX = 800
	}
	return &SVGWriter{
		window: window,
		scale:  float64(widthPX) / float64(window.W()),
		shapes: map[Layer][]geom.Rect{},
	}
}

// AddChip draws the chip's geometry inside the window, layer by layer.
func (s *SVGWriter) AddChip(ch *Chip, layers ...Layer) {
	if len(layers) == 0 {
		layers = []Layer{LayerNWell, LayerDiffusion, LayerPoly, LayerContact, LayerMetal1}
	}
	for _, l := range layers {
		s.AddRects(l, ch.WindowShapes(l, s.window))
	}
}

// AddRects draws rectangles on a layer.
func (s *SVGWriter) AddRects(l Layer, rects []geom.Rect) {
	if len(rects) == 0 {
		return
	}
	if s.shapes[l] == nil {
		s.layers = append(s.layers, l)
	}
	s.shapes[l] = append(s.shapes[l], rects...)
}

// AddOverlay draws polygon outlines above the layer stack.
func (s *SVGWriter) AddOverlay(polys []geom.Polygon, style string) {
	s.overlays = append(s.overlays, SVGOverlay{Polys: polys, Style: style})
}

// x/y map layout nm to SVG coordinates (y flipped).
func (s *SVGWriter) x(v geom.Coord) float64 { return float64(v-s.window.X0) * s.scale }
func (s *SVGWriter) y(v geom.Coord) float64 { return float64(s.window.Y1-v) * s.scale }

// Write emits the SVG document.
func (s *SVGWriter) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	wpx := float64(s.window.W()) * s.scale
	hpx := float64(s.window.H()) * s.scale
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		wpx, hpx, wpx, hpx)
	fmt.Fprintf(bw, `<rect width="%.0f" height="%.0f" fill="#fafafa"/>`+"\n", wpx, hpx)
	for _, l := range s.layers {
		style := svgLayerStyle[l]
		if style == "" {
			style = "fill:#888888;fill-opacity:0.5"
		}
		fmt.Fprintf(bw, `<g style="%s">`+"\n", style)
		for _, r := range s.shapes[l] {
			rc := r.Intersect(s.window)
			if rc.Empty() {
				continue
			}
			fmt.Fprintf(bw, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f"/>`+"\n",
				s.x(rc.X0), s.y(rc.Y1), float64(rc.W())*s.scale, float64(rc.H())*s.scale)
		}
		fmt.Fprintln(bw, "</g>")
	}
	for _, ov := range s.overlays {
		fmt.Fprintf(bw, `<g style="%s">`+"\n", ov.Style)
		for _, pg := range ov.Polys {
			if len(pg) < 2 {
				continue
			}
			fmt.Fprint(bw, `<polygon points="`)
			for i, p := range pg {
				if i > 0 {
					fmt.Fprint(bw, " ")
				}
				fmt.Fprintf(bw, "%.2f,%.2f", s.x(p.X), s.y(p.Y))
			}
			fmt.Fprintln(bw, `"/>`)
		}
		fmt.Fprintln(bw, "</g>")
	}
	fmt.Fprintln(bw, "</svg>")
	return bw.Flush()
}
