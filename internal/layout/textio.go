package layout

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"postopc/internal/geom"
)

// This file implements the plain-text layout format (".plf"), the
// repository's interchange format for cells and placed chips — a GDS
// stand-in that stays greppable:
//
//	plf 1
//	cell INV_X1 box 0 0 680 2600
//	  rect poly 295 290 385 2310
//	  gate MN0_0 A nmos 295 400 385 900
//	endcell
//	chip adder die 0 0 50000 26000
//	  inst u1 INV_X1 0 0 R0
//	  inst u2 NAND2_X1 680 0 MX
//	endchip
//
// Coordinates are integer nanometres. A file holds any number of cells
// followed by at most one chip; chip instances refer to cells defined
// earlier in the same file.

// WriteChip serializes the chip and every cell it references.
func WriteChip(w io.Writer, ch *Chip) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "plf 1")
	// Unique masters, by name.
	masters := map[string]*Cell{}
	for i := range ch.Instances {
		masters[ch.Instances[i].Cell.Name] = ch.Instances[i].Cell
	}
	names := make([]string, 0, len(masters))
	for n := range masters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		writeCell(bw, masters[n])
	}
	d := ch.Die
	fmt.Fprintf(bw, "chip %s die %d %d %d %d\n", nameOr(ch.Name, "chip"), d.X0, d.Y0, d.X1, d.Y1)
	for i := range ch.Instances {
		in := &ch.Instances[i]
		o := "R0"
		if in.Orient == MX {
			o = "MX"
		}
		fmt.Fprintf(bw, "  inst %s %s %d %d %s\n", in.Name, in.Cell.Name, in.Origin.X, in.Origin.Y, o)
	}
	fmt.Fprintln(bw, "endchip")
	return bw.Flush()
}

// WriteCell serializes a single cell.
func WriteCell(w io.Writer, c *Cell) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "plf 1")
	writeCell(bw, c)
	return bw.Flush()
}

func writeCell(bw *bufio.Writer, c *Cell) {
	b := c.Box
	fmt.Fprintf(bw, "cell %s box %d %d %d %d\n", c.Name, b.X0, b.Y0, b.X1, b.Y1)
	for _, s := range c.Shapes {
		r := s.Rect
		fmt.Fprintf(bw, "  rect %s %d %d %d %d\n", s.Layer, r.X0, r.Y0, r.X1, r.Y1)
	}
	for _, g := range c.Gates {
		r := g.Channel
		fmt.Fprintf(bw, "  gate %s %s %s %d %d %d %d\n", g.Name, g.Pin, g.Kind, r.X0, r.Y0, r.X1, r.Y1)
	}
	fmt.Fprintln(bw, "endcell")
}

func nameOr(n, def string) string {
	if n == "" {
		return def
	}
	return n
}

// File is the parsed content of a .plf stream.
type File struct {
	// Cells in declaration order.
	Cells []*Cell
	// Chip is non-nil when the file contains a chip section.
	Chip *Chip
}

// Read parses a .plf stream.
func Read(r io.Reader) (*File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	f := &File{}
	byName := map[string]*Cell{}
	var curCell *Cell
	var curChip *Chip
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		bad := func(msg string) error {
			return fmt.Errorf("layout: line %d: %s", lineNo, msg)
		}
		switch fields[0] {
		case "plf":
			if len(fields) != 2 || fields[1] != "1" {
				return nil, bad("unsupported plf version")
			}
		case "cell":
			if curCell != nil || curChip != nil {
				return nil, bad("nested cell")
			}
			if len(fields) != 7 || fields[2] != "box" {
				return nil, bad("malformed cell header")
			}
			box, err := parseRect(fields[3:7])
			if err != nil {
				return nil, bad(err.Error())
			}
			curCell = &Cell{Name: fields[1], Box: box}
		case "rect":
			if curCell == nil {
				return nil, bad("rect outside cell")
			}
			if len(fields) != 6 {
				return nil, bad("malformed rect")
			}
			layer, err := ParseLayer(fields[1])
			if err != nil {
				return nil, bad(err.Error())
			}
			rc, err := parseRect(fields[2:6])
			if err != nil {
				return nil, bad(err.Error())
			}
			curCell.Shapes = append(curCell.Shapes, Shape{Layer: layer, Rect: rc})
		case "gate":
			if curCell == nil {
				return nil, bad("gate outside cell")
			}
			if len(fields) != 8 {
				return nil, bad("malformed gate")
			}
			var kind DeviceKind
			switch fields[3] {
			case "nmos":
				kind = NMOS
			case "pmos":
				kind = PMOS
			default:
				return nil, bad("unknown device kind " + fields[3])
			}
			rc, err := parseRect(fields[4:8])
			if err != nil {
				return nil, bad(err.Error())
			}
			curCell.Gates = append(curCell.Gates, GateSite{
				Name: fields[1], Pin: fields[2], Kind: kind, Channel: rc,
			})
		case "endcell":
			if curCell == nil {
				return nil, bad("endcell outside cell")
			}
			if _, dup := byName[curCell.Name]; dup {
				return nil, bad("duplicate cell " + curCell.Name)
			}
			byName[curCell.Name] = curCell
			f.Cells = append(f.Cells, curCell)
			curCell = nil
		case "chip":
			if curCell != nil || curChip != nil {
				return nil, bad("unexpected chip")
			}
			if len(fields) != 7 || fields[2] != "die" {
				return nil, bad("malformed chip header")
			}
			die, err := parseRect(fields[3:7])
			if err != nil {
				return nil, bad(err.Error())
			}
			curChip = &Chip{Name: fields[1], Die: die}
		case "inst":
			if curChip == nil {
				return nil, bad("inst outside chip")
			}
			if len(fields) != 6 {
				return nil, bad("malformed inst")
			}
			master, ok := byName[fields[2]]
			if !ok {
				return nil, bad("unknown cell " + fields[2])
			}
			x, err1 := strconv.ParseInt(fields[3], 10, 64)
			y, err2 := strconv.ParseInt(fields[4], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, bad("bad instance origin")
			}
			var o Orient
			switch fields[5] {
			case "R0":
				o = R0
			case "MX":
				o = MX
			default:
				return nil, bad("unknown orientation " + fields[5])
			}
			curChip.AddInstance(fields[1], master, geom.Pt(x, y), o)
		case "endchip":
			if curChip == nil {
				return nil, bad("endchip outside chip")
			}
			curChip.BuildIndex()
			f.Chip = curChip
			curChip = nil
		default:
			return nil, bad("unknown directive " + fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if curCell != nil {
		return nil, fmt.Errorf("layout: unterminated cell %s", curCell.Name)
	}
	if curChip != nil {
		return nil, fmt.Errorf("layout: unterminated chip %s", curChip.Name)
	}
	return f, nil
}

func parseRect(fields []string) (geom.Rect, error) {
	var v [4]int64
	for i, s := range fields {
		x, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return geom.Rect{}, fmt.Errorf("bad coordinate %q", s)
		}
		v[i] = x
	}
	return geom.R(v[0], v[1], v[2], v[3]), nil
}
