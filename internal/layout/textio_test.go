package layout

import (
	"bytes"
	"strings"
	"testing"

	"postopc/internal/geom"
)

func TestChipRoundTrip(t *testing.T) {
	ch := buildChip(t)
	var buf bytes.Buffer
	if err := WriteChip(&buf, ch); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Chip == nil {
		t.Fatal("chip missing after round trip")
	}
	if f.Chip.Name != ch.Name || f.Chip.Die != ch.Die {
		t.Fatalf("chip header: %s %v", f.Chip.Name, f.Chip.Die)
	}
	if len(f.Chip.Instances) != len(ch.Instances) {
		t.Fatalf("instances %d != %d", len(f.Chip.Instances), len(ch.Instances))
	}
	for i := range ch.Instances {
		a, b := &ch.Instances[i], &f.Chip.Instances[i]
		if a.Name != b.Name || a.Origin != b.Origin || a.Orient != b.Orient ||
			a.Cell.Name != b.Cell.Name {
			t.Fatalf("instance %d differs: %+v vs %+v", i, a, b)
		}
	}
	// Geometry identical: same window flattening.
	w := ch.Die
	if len(ch.WindowShapes(LayerPoly, w)) != len(f.Chip.WindowShapes(LayerPoly, w)) {
		t.Fatal("flattened geometry differs")
	}
	// Gate sites identical.
	ga, gb := ch.AllGateSites(), f.Chip.AllGateSites()
	if len(ga) != len(gb) {
		t.Fatalf("gate sites %d != %d", len(ga), len(gb))
	}
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("gate site %d: %+v vs %+v", i, ga[i], gb[i])
		}
	}
}

func TestCellRoundTrip(t *testing.T) {
	c := invCell()
	var buf bytes.Buffer
	if err := WriteCell(&buf, c); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Cells) != 1 || f.Chip != nil {
		t.Fatalf("parsed %d cells, chip=%v", len(f.Cells), f.Chip)
	}
	got := f.Cells[0]
	if got.Name != c.Name || got.Box != c.Box {
		t.Fatalf("cell header %s %v", got.Name, got.Box)
	}
	if len(got.Shapes) != len(c.Shapes) || len(got.Gates) != len(c.Gates) {
		t.Fatal("cell contents differ")
	}
	for i := range c.Gates {
		if got.Gates[i] != c.Gates[i] {
			t.Fatalf("gate %d: %+v vs %+v", i, got.Gates[i], c.Gates[i])
		}
	}
}

func TestReadComments(t *testing.T) {
	src := `plf 1
# a comment
cell C box 0 0 10 10
  rect poly 1 1 2 2
endcell
`
	f, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Cells) != 1 || len(f.Cells[0].Shapes) != 1 {
		t.Fatalf("parsed %+v", f)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"plf 2",
		"rect poly 0 0 1 1",
		"cell A box 0 0 x 10\nendcell",
		"cell A box 0 0 10 10\n rect mystery 0 0 1 1\nendcell",
		"cell A box 0 0 10 10\n gate G A quantum 0 0 1 1\nendcell",
		"cell A box 0 0 10 10",
		"cell A box 0 0 10 10\nendcell\ncell A box 0 0 10 10\nendcell",
		"chip c die 0 0 10 10\n inst u1 NOPE 0 0 R0\nendchip",
		"chip c die 0 0 10 10\n inst u1",
		"chip c die 0 0 10 10",
		"endcell",
		"endchip",
		"bogus line here",
		"cell A box 0 0 10 10\n gate G A nmos 0 0 1 1 extra\nendcell",
		"chip c die 0 0 10 10\n inst u1 C 0 0 R9\nendchip",
	}
	for i, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted: %q", i, src)
		}
	}
}

func TestSVGOutput(t *testing.T) {
	ch := buildChip(t)
	svg := NewSVG(ch.Die, 400)
	svg.AddChip(ch)
	svg.AddOverlay([]geom.Polygon{geom.R(10, 10, 200, 200).Polygon()},
		"fill:none;stroke:#000;stroke-width:1")
	var buf bytes.Buffer
	if err := svg.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "<polygon", "<rect"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q:\n%.300s", want, out)
		}
	}
	// Empty overlays and unknown layers don't break rendering.
	svg2 := NewSVG(geom.R(0, 0, 100, 100), 0)
	svg2.AddRects(Layer(250), []geom.Rect{geom.R(0, 0, 10, 10)})
	svg2.AddOverlay(nil, "fill:none")
	if err := svg2.Write(&buf); err != nil {
		t.Fatal(err)
	}
}
