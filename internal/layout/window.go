package layout

import "postopc/internal/geom"

// Window canonicalization for the flow's pattern cache: a clipped
// simulation window is reduced to translation-normalized, canonically
// ordered polygons so that two windows holding the same layout context —
// the common case on a placed standard-cell chip, where identical cells
// repeat in identical neighbourhoods — serialize (and therefore hash) to
// identical bytes regardless of where on the chip they sit and which
// instances contributed which shape.

// CanonicalWindow is one translation-normalized clipped window.
type CanonicalWindow struct {
	// Origin is the chip-space point mapped to (0,0); add it to canonical
	// coordinates to return to chip space.
	Origin geom.Point //postopc:keyignore canonical windows are translation-normalized so identical patterns share cache entries regardless of placement
	// Bounds is the window in canonical coordinates: (0, 0, W, H).
	Bounds geom.Rect
	// Polys is the clipped layer geometry in canonical coordinates,
	// canonically ordered (see geom.CanonicalPolygons).
	Polys []geom.Polygon
}

// CanonicalWindowPolygons clips the layer inside w and normalizes the
// result to the window origin. The returned window's polygon set is
// independent of instance naming and traversal order.
func (ch *Chip) CanonicalWindowPolygons(l Layer, w geom.Rect) CanonicalWindow {
	origin := geom.Pt(w.X0, w.Y0)
	var polys []geom.Polygon
	for _, r := range ch.WindowShapes(l, w) {
		polys = append(polys, r.Translate(geom.Pt(-origin.X, -origin.Y)).Polygon())
	}
	return CanonicalWindow{
		Origin: origin,
		Bounds: w.Translate(geom.Pt(-origin.X, -origin.Y)),
		Polys:  geom.CanonicalPolygons(polys),
	}
}

// CanonicalWindowRects is CanonicalWindowPolygons' rectangle counterpart for
// scan passes that walk drawn rects (full-chip ORC): the clipped rects are
// translated to the window origin and sorted into a canonical order.
func (ch *Chip) CanonicalWindowRects(l Layer, w geom.Rect) (geom.Point, []geom.Rect) {
	origin := geom.Pt(w.X0, w.Y0)
	rects := ch.WindowShapes(l, w)
	out := make([]geom.Rect, len(rects))
	for i, r := range rects {
		out[i] = r.Translate(geom.Pt(-origin.X, -origin.Y))
	}
	sortRectsCanonical(out)
	return origin, out
}

// sortRectsCanonical orders rects by (X0, Y0, X1, Y1).
func sortRectsCanonical(rs []geom.Rect) {
	less := func(a, b geom.Rect) bool {
		switch {
		case a.X0 != b.X0:
			return a.X0 < b.X0
		case a.Y0 != b.Y0:
			return a.Y0 < b.Y0
		case a.X1 != b.X1:
			return a.X1 < b.X1
		}
		return a.Y1 < b.Y1
	}
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && less(rs[j], rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
