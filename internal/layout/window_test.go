package layout

import (
	"bytes"
	"testing"

	"postopc/internal/geom"
)

// buildRepeatedChip places the same cell in the same local neighbourhood at
// two far-apart chip positions, so the two windows hold byte-identical
// context after translation normalization.
func buildRepeatedChip(t *testing.T) (*Chip, geom.Rect, geom.Rect) {
	t.Helper()
	c := invCell()
	ch := &Chip{Name: "repeat"}
	// Two copies of a two-cell context: target cell with an abutting
	// neighbour to its right. Instance names differ on purpose — the
	// canonical window must not depend on them.
	ch.AddInstance("a0", c, geom.Pt(0, 0), R0)
	ch.AddInstance("a1", c, geom.Pt(680, 0), R0)
	ch.AddInstance("z9", c, geom.Pt(40800, 13000), R0)
	ch.AddInstance("z8", c, geom.Pt(40800+680, 13000), R0)
	ch.BuildIndex()
	w := geom.R(-400, -400, 680+400, 2600+400)
	w2 := w.Translate(geom.Pt(40800, 13000))
	return ch, w, w2
}

func TestCanonicalWindowTranslationInvariance(t *testing.T) {
	ch, w, w2 := buildRepeatedChip(t)
	a := ch.CanonicalWindowPolygons(LayerPoly, w)
	b := ch.CanonicalWindowPolygons(LayerPoly, w2)
	if a.Bounds != b.Bounds {
		t.Fatalf("canonical bounds differ: %v vs %v", a.Bounds, b.Bounds)
	}
	ka := geom.AppendKeyPolygons(nil, a.Polys)
	kb := geom.AppendKeyPolygons(nil, b.Polys)
	if !bytes.Equal(ka, kb) {
		t.Fatalf("identical contexts at different chip positions serialized differently:\n%v\n%v", a.Polys, b.Polys)
	}
	if a.Origin == b.Origin {
		t.Fatal("distinct windows reported the same origin")
	}
}

func TestCanonicalWindowRects(t *testing.T) {
	ch, w, w2 := buildRepeatedChip(t)
	o1, r1 := ch.CanonicalWindowRects(LayerDiffusion, w)
	o2, r2 := ch.CanonicalWindowRects(LayerDiffusion, w2)
	if len(r1) == 0 || len(r1) != len(r2) {
		t.Fatalf("rect counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("rect %d differs: %v vs %v", i, r1[i], r2[i])
		}
	}
	if o1.X+40800 != o2.X || o1.Y+13000 != o2.Y {
		t.Fatalf("origins %v / %v do not differ by the placement offset", o1, o2)
	}
	// Canonical order is sorted, independent of instance-name order.
	for i := 1; i < len(r1); i++ {
		a, b := r1[i-1], r1[i]
		if a.X0 > b.X0 || (a.X0 == b.X0 && a.Y0 > b.Y0) {
			t.Fatalf("rects not in canonical order: %v before %v", a, b)
		}
	}
}
