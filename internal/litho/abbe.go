package litho

import (
	"fmt"
	"math"
	"math/cmplx"

	"postopc/internal/dsp"
	"postopc/internal/geom"
)

// Abbe is the physical aerial-image model: partially coherent imaging
// computed by Abbe's method (source-point summation). For every sampled
// source point the mask spectrum is filtered by the (defocused) pupil
// shifted by the source tilt, inverse transformed, and the resulting
// coherent intensities are weight-summed.
type Abbe struct {
	recipe Recipe
	source []SourcePoint
}

// NewAbbe builds an Abbe model from the recipe.
func NewAbbe(r Recipe) (*Abbe, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &Abbe{
		recipe: r,
		source: SampleSource(r.SigmaInner, r.SigmaOuter, r.SourceRings),
	}, nil
}

// Recipe returns the optical settings.
func (a *Abbe) Recipe() Recipe { return a.recipe }

// SourcePoints exposes the sampled source (for ablation studies).
func (a *Abbe) SourcePoints() []SourcePoint { return a.source }

// Aerial implements Model.
func (a *Abbe) Aerial(mask *geom.Raster, c Corner) (*Image, error) {
	imgs, err := a.AerialSeries(mask, []Corner{c})
	if err != nil {
		return nil, err
	}
	return imgs[0], nil
}

// AerialSeries computes aerial images for several process corners while
// reusing the (expensive) mask spectrum. Dose does not change the image —
// it is folded into the resist threshold — so corners differing only in
// dose share one simulation.
func (a *Abbe) AerialSeries(mask *geom.Raster, corners []Corner) ([]*Image, error) {
	if mask.Nx == 0 || mask.Ny == 0 {
		return nil, fmt.Errorf("litho: empty mask raster")
	}
	nx := dsp.NextPow2(mask.Nx)
	ny := dsp.NextPow2(mask.Ny)
	// Transmission grid, padded with clear-field background.
	bg := 1.0 // ClearField: open background
	if a.recipe.Polarity == DarkField {
		bg = 0
	}
	t := dsp.NewGrid(nx, ny)
	for i := range t.Data {
		t.Data[i] = complex(bg, 0)
	}
	for iy := 0; iy < mask.Ny; iy++ {
		for ix := 0; ix < mask.Nx; ix++ {
			cov := mask.Data[iy*mask.Nx+ix]
			var tv float64
			if a.recipe.Polarity == ClearField {
				tv = 1 - cov // chrome blocks light
			} else {
				tv = cov // opening passes light
			}
			t.Set(ix, iy, complex(tv, 0))
		}
	}
	if err := t.FFT2D(); err != nil {
		return nil, err
	}

	// Unique defocus values across the corners.
	type defocusKey struct{ z float64 }
	uniq := map[defocusKey]*Image{}
	order := make([]*Image, len(corners))
	for ci, c := range corners {
		k := defocusKey{c.DefocusNM}
		if im, ok := uniq[k]; ok {
			order[ci] = im
			continue
		}
		im, err := a.aerialAtDefocus(t, mask, c.DefocusNM)
		if err != nil {
			return nil, err
		}
		uniq[k] = im
		order[ci] = im
	}
	return order, nil
}

// aerialAtDefocus runs the source-point sum for one defocus value. spectrum
// is the FFT of the transmission grid and must not be modified.
func (a *Abbe) aerialAtDefocus(spectrum *dsp.Grid, mask *geom.Raster, defocusNM float64) (*Image, error) {
	r := a.recipe
	nx, ny := spectrum.Nx, spectrum.Ny
	px := float64(mask.Pixel)
	fmax := r.NA / r.WavelengthNM   // pupil cutoff, cycles/nm
	dfx := 1.0 / (float64(nx) * px) // frequency steps, cycles/nm
	dfy := 1.0 / (float64(ny) * px)
	lambda := r.WavelengthNM

	acc := make([]float64, nx*ny)
	work := dsp.NewGrid(nx, ny)
	for _, sp := range a.source {
		fsx := sp.SX * fmax
		fsy := sp.SY * fmax
		// work = spectrum × P(f + fs)
		for iy := 0; iy < ny; iy++ {
			fy := float64(dsp.FreqIndex(iy, ny))*dfy + fsy
			for ix := 0; ix < nx; ix++ {
				fx := float64(dsp.FreqIndex(ix, nx))*dfx + fsx
				f2 := fx*fx + fy*fy
				idx := iy*nx + ix
				if f2 > fmax*fmax {
					work.Data[idx] = 0
					continue
				}
				v := spectrum.Data[idx]
				if defocusNM != 0 {
					// Paraxial defocus aberration: φ = π λ z |f|².
					ph := math.Pi * lambda * defocusNM * f2
					v *= cmplx.Exp(complex(0, ph))
				}
				work.Data[idx] = v
			}
		}
		if err := work.IFFT2D(); err != nil {
			return nil, err
		}
		w := sp.Weight
		for i, e := range work.Data {
			re, im := real(e), imag(e)
			acc[i] += w * (re*re + im*im)
		}
	}

	out := NewImage(mask)
	for iy := 0; iy < mask.Ny; iy++ {
		copy(out.Data[iy*mask.Nx:(iy+1)*mask.Nx], acc[iy*nx:iy*nx+mask.Nx])
	}
	return out, nil
}
