package litho

import (
	"fmt"

	"postopc/internal/dsp"
	"postopc/internal/dsp/vek"
	"postopc/internal/geom"
	"postopc/internal/obs"
)

// Abbe is the physical aerial-image model: partially coherent imaging
// computed by Abbe's method (source-point summation). For every sampled
// source point the mask spectrum is filtered by the (defocused) pupil
// shifted by the source tilt, inverse transformed, and the resulting
// coherent intensities are weight-summed.
//
// The per-source-point pupil filters depend only on the recipe, grid
// geometry and defocus — never on the mask — so they are precomputed once
// per (recipe, grid size, pixel, defocus) in the package-level shared
// read-mostly filter bank (see filterbank.go) and the hot loop reduces to a
// branch-free complex multiply over the filter's support rows, a
// band-limited inverse transform, and an intensity accumulation.
type Abbe struct {
	recipe    Recipe
	source    []SourcePoint //postopc:keyignore derived deterministically from recipe by NewAbbe
	recipeKey string        //postopc:keyignore the recipe's own serialization, precomputed for bank lookups

	// Telemetry handles (see Instrument); nil on an uninstrumented model.
	// They are write-only and allocation-free, so the kernel's steady-state
	// allocation budget holds with telemetry on or off.
	hAerial *obs.Histogram //postopc:keyignore telemetry observes the computation without being an input
	cBuilds *obs.Counter   //postopc:keyignore telemetry observes the computation without being an input
}

// Instrument attaches telemetry to the model: aerial latency under
// "litho.abbe_aerial_ns" (one observation per Aerial/AerialSeries call)
// and a "litho.filterbank_builds_total" counter. Call before the model is
// shared between workers; a nil or disabled sink is a no-op.
func (a *Abbe) Instrument(sink *obs.Sink) {
	a.hAerial = sink.LatencyHistogram("litho.abbe_aerial_ns")
	a.cBuilds = sink.Counter("litho.filterbank_builds_total")
}

// NewAbbe builds an Abbe model from the recipe.
func NewAbbe(r Recipe) (*Abbe, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &Abbe{
		recipe:    r,
		source:    SampleSource(r.SigmaInner, r.SigmaOuter, r.SourceRings),
		recipeKey: string(r.AppendKey(nil)),
	}, nil
}

// Recipe returns the optical settings.
func (a *Abbe) Recipe() Recipe { return a.recipe }

// SourcePoints exposes the sampled source (for ablation studies).
func (a *Abbe) SourcePoints() []SourcePoint { return a.source }

// Aerial implements Model. The single-corner path skips the series
// bookkeeping: in steady state (warm filter bank and scratch pools) it
// allocates only the returned Image.
func (a *Abbe) Aerial(mask *geom.Raster, c Corner) (*Image, error) {
	t0 := a.hAerial.StartTimer()
	im, err := a.aerialOne(mask, c)
	a.hAerial.ObserveSince(t0)
	return im, err
}

// aerialOne is the uninstrumented single-corner imaging path, shared by
// Aerial and AerialSeries so each public call observes exactly once.
func (a *Abbe) aerialOne(mask *geom.Raster, c Corner) (*Image, error) {
	if mask.Nx == 0 || mask.Ny == 0 {
		return nil, fmt.Errorf("litho: empty mask raster")
	}
	nx := dsp.NextPow2(mask.Nx)
	ny := dsp.NextPow2(mask.Ny)
	fs := a.filtersFor(nx, ny, float64(mask.Pixel), c.DefocusNM)
	bg := a.backgroundLevel()
	t := a.transmissionPlanes(mask, nx, ny, bg)
	defer dsp.ReturnFGrid(t)
	if err := t.FFT2DBandSelect(fs.unionRows); err != nil {
		return nil, err
	}
	ks := borrowKernelScratch()
	defer ks.release()
	return a.aerialFiltered(t, mask, fs, bg, ks)
}

// backgroundLevel is the transmission of the unpatterned field for the
// recipe's polarity.
//
//postopc:allocfree
func (a *Abbe) backgroundLevel() float64 {
	if a.recipe.Polarity == DarkField {
		return 0
	}
	return 1
}

// transmissionPlanes builds the complex transmission over a borrowed
// power-of-two plane grid, padding outside the mask with the background
// level. The transmission is real, so the imaginary plane is simply zeroed.
// The caller owns the grid and must return it to the pool.
//
//postopc:allocfree
func (a *Abbe) transmissionPlanes(mask *geom.Raster, nx, ny int, bg float64) *dsp.FGrid {
	t := dsp.BorrowFGrid(nx, ny)
	re := t.Re
	for i := range re {
		re[i] = bg
	}
	vek.Zero(t.Im)
	for iy := 0; iy < mask.Ny; iy++ {
		row := re[iy*nx : iy*nx+mask.Nx]
		mrow := mask.Data[iy*mask.Nx : (iy+1)*mask.Nx]
		if a.recipe.Polarity == ClearField {
			for ix, cov := range mrow {
				row[ix] = 1 - cov // chrome blocks light
			}
		} else {
			for ix, cov := range mrow {
				row[ix] = cov // opening passes light
			}
		}
	}
	return t
}

// AerialSeries computes aerial images for several process corners while
// reusing the (expensive) mask spectrum. Dose does not change the image —
// it is folded into the resist threshold — so corners that share a defocus
// alias one *Image in the returned slice. Callers must treat the returned
// images as immutable: mutating one mutates it for every corner that
// shares it.
func (a *Abbe) AerialSeries(mask *geom.Raster, corners []Corner) ([]*Image, error) {
	if mask.Nx == 0 || mask.Ny == 0 {
		return nil, fmt.Errorf("litho: empty mask raster")
	}
	t0 := a.hAerial.StartTimer()
	defer a.hAerial.ObserveSince(t0)
	if len(corners) == 1 {
		im, err := a.aerialOne(mask, corners[0])
		if err != nil {
			return nil, err
		}
		return []*Image{im}, nil
	}
	nx := dsp.NextPow2(mask.Nx)
	ny := dsp.NextPow2(mask.Ny)
	px := float64(mask.Pixel)

	sets, spectrumRows := a.resolveSets(nx, ny, px, corners)

	// Transmission grid, padded with the polarity's background level.
	bg := a.backgroundLevel()
	t := a.transmissionPlanes(mask, nx, ny, bg)
	defer dsp.ReturnFGrid(t)
	// The filters only read the union support rows of the spectrum, so the
	// forward transform computes just those.
	if err := t.FFT2DBandSelect(spectrumRows); err != nil {
		return nil, err
	}

	ks := borrowKernelScratch()
	defer ks.release()
	return a.imageCorners(t, mask, corners, sets, bg, ks)
}

// resolveSets fetches the filter set of every unique corner defocus up
// front, so the forward transform knows which spectrum rows the filters
// will read. sets[ci] is nil when an earlier corner shares the defocus (the
// image is aliased there); rows is the ascending union of all resolved
// sets' support rows.
func (a *Abbe) resolveSets(nx, ny int, px float64, corners []Corner) (sets []*filterSet, rows []int) {
	sets = make([]*filterSet, len(corners))
	for ci, c := range corners {
		dup := false
		for _, p := range corners[:ci] {
			if p.DefocusNM == c.DefocusNM {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		sets[ci] = a.filtersFor(nx, ny, px, c.DefocusNM)
		rows = mergeRows(rows, sets[ci].unionRows)
	}
	return sets, rows
}

// imageCorners runs the filtered source sum of every corner over the
// band-selected spectrum t, aliasing duplicate-defocus corners to the
// earlier corner's image per the AerialSeries contract.
func (a *Abbe) imageCorners(t *dsp.FGrid, mask *geom.Raster, corners []Corner, sets []*filterSet, bg float64, ks *kernelScratch) ([]*Image, error) {
	order := make([]*Image, len(corners))
	for ci, c := range corners {
		if sets[ci] == nil { // duplicate defocus: alias the earlier image
			for cj, p := range corners[:ci] {
				if p.DefocusNM == c.DefocusNM {
					order[ci] = order[cj]
					break
				}
			}
			continue
		}
		im, err := a.aerialFiltered(t, mask, sets[ci], bg, ks)
		if err != nil {
			return nil, err
		}
		order[ci] = im
	}
	return order, nil
}

// aerialFiltered runs the folded source-point sum for one filter set.
// spectrum is the band-selected FFT of the transmission planes and must not
// be modified. The whole loop runs on the vek kernel layer: a CMul per
// support row (work = spectrum × P(f + fs)), the band-limited inverse
// transform, and an AccIntensity over the grid — each performing per
// element the exact float sequence of the complex128 loop it replaced.
func (a *Abbe) aerialFiltered(spectrum *dsp.FGrid, mask *geom.Raster, fs *filterSet, bg float64, ks *kernelScratch) (*Image, error) {
	nx, ny := spectrum.Nx, spectrum.Ny
	ks.acc = growFloats(ks.acc, nx*ny)
	acc := ks.acc
	vek.Zero(acc)
	work := dsp.BorrowFGrid(nx, ny)
	defer dsp.ReturnFGrid(work)
	for pi := range fs.points {
		pf := &fs.points[pi]
		// work = spectrum × P(f + fs), nonzero only on the support rows.
		work.Clear()
		for ri, iy := range pf.rows {
			o := ri * nx
			s := iy * nx
			vek.CMul(
				work.Re[s:s+nx], work.Im[s:s+nx],
				spectrum.Re[s:s+nx], spectrum.Im[s:s+nx],
				pf.valsRe[o:o+nx], pf.valsIm[o:o+nx])
		}
		if err := work.IFFT2DBandLimited(pf.rows); err != nil {
			return nil, err
		}
		vek.AccIntensity(acc, work.Re, work.Im, pf.weight)
	}

	out := NewImage(mask)
	out.Background = bg
	for iy := 0; iy < mask.Ny; iy++ {
		copy(out.Data[iy*mask.Nx:(iy+1)*mask.Nx], acc[iy*nx:iy*nx+mask.Nx])
	}
	return out, nil
}
