package litho

import (
	"fmt"

	"postopc/internal/dsp"
	"postopc/internal/geom"
)

// BatchModel is implemented by models that can image many windows in one
// call, amortizing plan resolution, filter-bank lookup and scratch
// borrowing across the batch. The contract is strict bit-identity:
// AerialBatch(masks, corners)[i] equals AerialSeries(masks[i], corners)
// element-for-element (including the duplicate-defocus aliasing of the
// series contract), for every mask independently — batching changes
// throughput, never results.
type BatchModel interface {
	Model
	AerialBatch(masks []*geom.Raster, corners []Corner) ([][]*Image, error)
}

// batchGroup collects the batch members sharing one padded grid geometry:
// the group shares one filter-set resolution, one dsp.BatchPlan and one
// interleaved forward transform.
type batchGroup struct {
	nx, ny int
	px     float64
	idx    []int // indices into the masks slice, in batch order
}

// groupByGeometry partitions the batch by (padded size, pixel) preserving
// first-appearance order. Full-chip batches come from fixed-pitch window
// tiling, so in practice there is one group.
func groupByGeometry(masks []*geom.Raster) []batchGroup {
	var groups []batchGroup
	for mi, m := range masks {
		nx, ny, px := dsp.NextPow2(m.Nx), dsp.NextPow2(m.Ny), float64(m.Pixel)
		found := false
		for gi := range groups {
			g := &groups[gi]
			if g.nx == nx && g.ny == ny && g.px == px {
				g.idx = append(g.idx, mi)
				found = true
				break
			}
		}
		if !found {
			groups = append(groups, batchGroup{nx: nx, ny: ny, px: px, idx: []int{mi}})
		}
	}
	return groups
}

// AerialBatch implements BatchModel. Masks are grouped by padded grid
// geometry; each group resolves its filter sets once, rasterizes its
// transmission grids, runs one batched band-selected forward transform
// (bit-identical per grid to the single-grid path, see dsp.BatchPlan), and
// images every member through one shared kernel scratch. Latency is
// observed once per batch on the model's aerial histogram.
func (a *Abbe) AerialBatch(masks []*geom.Raster, corners []Corner) ([][]*Image, error) {
	if len(masks) == 0 {
		return nil, nil
	}
	t0 := a.hAerial.StartTimer()
	defer a.hAerial.ObserveSince(t0)
	for _, m := range masks {
		if m.Nx == 0 || m.Ny == 0 {
			return nil, fmt.Errorf("litho: empty mask raster")
		}
	}
	out := make([][]*Image, len(masks))
	ks := borrowKernelScratch()
	defer ks.release()

	bg := a.backgroundLevel()
	for _, g := range groupByGeometry(masks) {
		bp, err := dsp.PlanBatch(g.nx, g.ny)
		if err != nil {
			return nil, err
		}
		sets, rows := a.resolveSets(g.nx, g.ny, g.px, corners)
		grids := make([]*dsp.FGrid, len(g.idx))
		for k, mi := range g.idx {
			grids[k] = a.transmissionPlanes(masks[mi], g.nx, g.ny, bg)
		}
		err = bp.FFT2DBandSelectAllPlanes(grids, rows)
		if err == nil {
			for k, mi := range g.idx {
				imgs, ierr := a.imageCorners(grids[k], masks[mi], corners, sets, bg, ks)
				if ierr != nil {
					err = ierr
					break
				}
				out[mi] = imgs
			}
		}
		for _, gr := range grids {
			dsp.ReturnFGrid(gr)
		}
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AerialBatch implements BatchModel for the Gaussian kernel. The separable
// convolution has no cross-window transform to amortize, so the batch
// shares one kernel scratch (and one latency observation) across the
// member series loops; results match per-mask AerialSeries exactly.
func (g *Gaussian) AerialBatch(masks []*geom.Raster, corners []Corner) ([][]*Image, error) {
	if len(masks) == 0 {
		return nil, nil
	}
	t0 := g.hAerial.StartTimer()
	defer g.hAerial.ObserveSince(t0)
	ks := borrowKernelScratch()
	defer ks.release()
	out := make([][]*Image, len(masks))
	for mi, mask := range masks {
		imgs := make([]*Image, len(corners))
		for ci, c := range corners {
			dup := false
			for cj, p := range corners[:ci] {
				if p.DefocusNM == c.DefocusNM {
					imgs[ci] = imgs[cj]
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			im, err := g.aerial(mask, c, ks)
			if err != nil {
				return nil, err
			}
			imgs[ci] = im
		}
		out[mi] = imgs
	}
	return out, nil
}

var (
	_ BatchModel = (*Abbe)(nil)
	_ BatchModel = (*Gaussian)(nil)
)
