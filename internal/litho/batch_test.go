package litho

import (
	"sync"
	"testing"

	"postopc/internal/geom"
	"postopc/internal/obs"
)

// maskHalf rasterizes the standard 3-line test pattern on a window of the
// given half-size, so batches can mix padded grid geometries.
func maskHalf(half geom.Coord) *geom.Raster {
	la := LineArray{WidthNM: 130, PitchNM: 280, Count: 3, LengthNM: 600}
	ra := geom.NewRaster(geom.R(-half, -half, half, half), 10)
	for _, r := range la.Rects() {
		ra.AddRect(r)
	}
	ra.Clamp()
	return ra
}

// TestAerialBatchBitIdentical pins the BatchModel contract for both models:
// AerialBatch(masks, corners)[i] is bit-identical to
// AerialSeries(masks[i], corners), including the duplicate-defocus image
// aliasing, on a batch mixing two padded grid sizes.
func TestAerialBatchBitIdentical(t *testing.T) {
	masks := []*geom.Raster{maskHalf(640), maskHalf(320), maskHalf(640), maskHalf(320)}
	corners := []Corner{
		{DefocusNM: 0, Dose: 1},
		{DefocusNM: 80, Dose: 1},
		{DefocusNM: 0, Dose: 1.05}, // aliases corner 0
	}
	for _, m := range []BatchModel{newAbbeT(t), newGaussT(t)} {
		batch, err := m.AerialBatch(masks, corners)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != len(masks) {
			t.Fatalf("%T: batch returned %d results for %d masks", m, len(batch), len(masks))
		}
		for mi, mask := range masks {
			series, err := m.AerialSeries(mask, corners)
			if err != nil {
				t.Fatal(err)
			}
			for ci := range corners {
				b, s := batch[mi][ci], series[ci]
				if b.Nx != s.Nx || b.Ny != s.Ny || b.Background != s.Background {
					t.Fatalf("%T mask %d corner %d: image shape/background mismatch", m, mi, ci)
				}
				for i := range s.Data {
					if b.Data[i] != s.Data[i] {
						t.Fatalf("%T mask %d corner %d pixel %d: batch %v != series %v",
							m, mi, ci, i, b.Data[i], s.Data[i])
					}
				}
			}
			if batch[mi][2] != batch[mi][0] {
				t.Fatalf("%T mask %d: equal-defocus corners must alias one image", m, mi)
			}
			if batch[mi][1] == batch[mi][0] {
				t.Fatalf("%T mask %d: distinct defoci must not alias", m, mi)
			}
		}
	}
}

// TestAerialBatchSingleCorner covers the degenerate corner list — the
// series path's aerialOne fast path — against the batch path.
func TestAerialBatchSingleCorner(t *testing.T) {
	m := newAbbeT(t)
	masks := []*geom.Raster{maskHalf(640), maskHalf(640)}
	batch, err := m.AerialBatch(masks, []Corner{Nominal})
	if err != nil {
		t.Fatal(err)
	}
	for mi, mask := range masks {
		single, err := m.Aerial(mask, Nominal)
		if err != nil {
			t.Fatal(err)
		}
		for i := range single.Data {
			if batch[mi][0].Data[i] != single.Data[i] {
				t.Fatalf("mask %d pixel %d: batch != single-corner Aerial", mi, i)
			}
		}
	}
}

// TestAerialBatchEdgeCases covers the empty batch and the empty-raster
// member error.
func TestAerialBatchEdgeCases(t *testing.T) {
	m := newAbbeT(t)
	out, err := m.AerialBatch(nil, []Corner{Nominal})
	if err != nil || out != nil {
		t.Fatalf("empty batch: got (%v, %v), want (nil, nil)", out, err)
	}
	if _, err := m.AerialBatch([]*geom.Raster{{}}, []Corner{Nominal}); err == nil {
		t.Fatal("AerialBatch accepted an empty mask raster")
	}
}

// TestAerialBatchPoolBalance asserts the batch path returns every borrowed
// scratch buffer: after a batch, pool borrows equal pool returns.
func TestAerialBatchPoolBalance(t *testing.T) {
	sink := obs.NewSink()
	InstrumentPools(sink)
	defer InstrumentPools(nil)
	m := newAbbeT(t)
	masks := []*geom.Raster{maskHalf(640), maskHalf(320), maskHalf(640)}
	if _, err := m.AerialBatch(masks, []Corner{Nominal, {DefocusNM: 80, Dose: 1}}); err != nil {
		t.Fatal(err)
	}
	borrows := sink.Counter("litho.pool_borrows_total").Value()
	returns := sink.Counter("litho.pool_returns_total").Value()
	if borrows == 0 || borrows != returns {
		t.Fatalf("pool borrow/return imbalance after batch: %d borrows, %d returns", borrows, returns)
	}
}

// TestSharedBankConcurrentModels hammers the shared bank from concurrent
// workers holding distinct equal-recipe models (the read-mostly service
// contract): every worker must end up with the same filter-set pointer and
// imaging must succeed throughout. Run with -race this also checks the
// copy-on-write snapshot discipline.
func TestSharedBankConcurrentModels(t *testing.T) {
	const workers = 8
	mask := maskHalf(640)
	models := make([]*Abbe, workers)
	for w := range models {
		models[w] = newAbbeT(t)
	}
	ptrs := make([]*filterSet, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if _, err := models[w].Aerial(mask, Nominal); err != nil {
				t.Error(err)
				return
			}
			ptrs[w] = models[w].filtersFor(128, 128, 10, 0)
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for w := 1; w < workers; w++ {
		if ptrs[w] != ptrs[0] {
			t.Fatalf("worker %d resolved a different filter set than worker 0", w)
		}
	}
}
