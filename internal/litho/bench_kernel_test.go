package litho

import (
	"os"
	"sync"
	"testing"
	"time"

	"postopc/internal/geom"
	"postopc/internal/report"
)

// Micro-benchmarks of the optical kernel engine (filter bank + twiddle-cached
// FFT + scratch pooling). BenchmarkKernelReport additionally emits the
// kernel table as text and CSV (the BENCH_kernel.json numbers come from
// these benches):
//
//	go test -run=NONE -bench=Kernel -benchmem ./internal/litho/
//
// Pre-engine baseline on the same 256×256 window (commit 6f68ef9):
// Abbe 115.9ms/op 35 allocs/op, dual Gaussian 9.7ms/op 12 allocs/op.

// benchMask256 rasterizes a 7-line grating onto an exactly 256×256 grid at
// the testRecipe pixel (10nm), the window size of a production gate clip.
func benchMask256() *geom.Raster {
	la := LineArray{WidthNM: 130, PitchNM: 280, Count: 7, LengthNM: 2000}
	ra := geom.NewRaster(geom.R(-1280, -1280, 1280, 1280), 10)
	for _, r := range la.Rects() {
		ra.AddRect(r)
	}
	ra.Clamp()
	return ra
}

func benchAbbe(b *testing.B) *Abbe {
	b.Helper()
	m, err := NewAbbe(testRecipe())
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkAbbeAerial is the headline kernel bench: one nominal Abbe window
// with the default ring source. Steady state reuses the cached pupil-filter
// bank and every scratch pool; only the returned Image allocates.
func BenchmarkAbbeAerial(b *testing.B) {
	m := benchAbbe(b)
	mask := benchMask256()
	corners := []Corner{Nominal}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.AerialSeries(mask, corners); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAbbeAerialDefocus exercises the defocused path: complex pupil
// phases and no Hermitian source folding, so the source sum runs at full
// length.
func BenchmarkAbbeAerialDefocus(b *testing.B) {
	m := benchAbbe(b)
	mask := benchMask256()
	corners := []Corner{{DefocusNM: 120, Dose: 1}}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.AerialSeries(mask, corners); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGaussianAerial times the dual-kernel fast model on the same
// window (pooled convolution scratch, hoisted pad fill).
func BenchmarkGaussianAerial(b *testing.B) {
	m, err := NewGaussianDual(testRecipe(), 120, 0.15)
	if err != nil {
		b.Fatal(err)
	}
	mask := benchMask256()
	corners := []Corner{Nominal}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.AerialSeries(mask, corners); err != nil {
			b.Fatal(err)
		}
	}
}

// kernelPrintGuards backs printKernelOnce (same pattern as the root bench
// harness): the testing package re-invokes fast benchmarks with growing
// b.N, and every invocation restarts at i == 0.
var kernelPrintGuards sync.Map

func printKernelOnce(b *testing.B, i int, fn func()) {
	if i != 0 {
		return
	}
	once, _ := kernelPrintGuards.LoadOrStore(b.Name(), &sync.Once{})
	once.(*sync.Once).Do(fn)
}

// BenchmarkKernelReport measures every kernel once and emits the table as
// aligned text plus CSV (ns/op and allocs/op per kernel). `make
// bench-kernel` runs it with -short, which trims the sample count for CI.
func BenchmarkKernelReport(b *testing.B) {
	mask := benchMask256()
	abbe := benchAbbe(b)
	gauss, err := NewGaussianDual(testRecipe(), 120, 0.15)
	if err != nil {
		b.Fatal(err)
	}
	nominal := []Corner{Nominal}
	defocus := []Corner{{DefocusNM: 120, Dose: 1}}
	kernels := []struct {
		name string
		run  func() error
	}{
		{"abbe-nominal", func() error { _, err := abbe.AerialSeries(mask, nominal); return err }},
		{"abbe-defocus120", func() error { _, err := abbe.AerialSeries(mask, defocus); return err }},
		{"gaussian-dual", func() error { _, err := gauss.AerialSeries(mask, nominal); return err }},
	}
	samples := 10
	if testing.Short() {
		samples = 2
	}
	for i := 0; i < b.N; i++ {
		printKernelOnce(b, i, func() {
			tb := report.NewTable("optical kernel engine: 256×256 window, default ring source",
				"kernel", "ns/op", "allocs/op")
			for _, k := range kernels {
				if err := k.run(); err != nil { // warm pools and filter bank
					b.Fatal(err)
				}
				allocs := testing.AllocsPerRun(samples, func() {
					if err := k.run(); err != nil {
						b.Fatal(err)
					}
				})
				t0 := time.Now()
				for s := 0; s < samples; s++ {
					if err := k.run(); err != nil {
						b.Fatal(err)
					}
				}
				nsOp := time.Since(t0).Nanoseconds() / int64(samples)
				tb.AddF(0, k.name, nsOp, allocs)
			}
			tb.Fprint(os.Stdout)
			tb.CSV(os.Stdout)
		})
	}
}
