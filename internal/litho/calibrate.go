package litho

import (
	"fmt"

	"postopc/internal/geom"
)

// CalibrateThreshold anchors the constant-threshold resist model: it finds
// the threshold at which a reference line of the given drawn width, in an
// array at the given pitch, prints at exactly its drawn CD under nominal
// conditions. Real fabs anchor their resist models the same way (dose-to-
// size on a reference structure).
//
// The search bisects on the monotone relationship between threshold and the
// printed CD of a clear-field line: raising the threshold widens the
// printed (sub-threshold) region.
func CalibrateThreshold(m Model, widthNM, pitchNM geom.Coord) (float64, error) {
	r := m.Recipe()
	la := LineArray{WidthNM: widthNM, PitchNM: pitchNM, Count: 7, LengthNM: widthNM * 20}
	mask := RasterizeRects(la.Rects(), r.PixelNM, r.GuardNM)
	im, err := m.Aerial(mask, Nominal)
	if err != nil {
		return 0, err
	}
	centers := la.CenterXs()
	mid := centers[len(centers)/2]
	scanHalf := float64(pitchNM) / 2
	measure := func(th float64) (float64, bool) {
		res := im.MeasureCD(AxisX, 0, mid-scanHalf, mid+scanHalf, mid, th, r.Polarity)
		return res.CD, res.OK
	}
	target := float64(widthNM)
	lo, hi := 0.02, 0.9
	for iter := 0; iter < 60; iter++ {
		th := (lo + hi) / 2
		cd, ok := measure(th)
		tooThin := !ok || cd < target
		if r.Polarity == ClearField {
			// Clear field: raising the threshold widens the printed
			// (sub-threshold) feature.
			if tooThin {
				lo = th
			} else {
				hi = th
			}
		} else {
			// Dark field: raising the threshold shrinks the printed
			// (above-threshold) feature.
			if tooThin {
				hi = th
			} else {
				lo = th
			}
		}
	}
	th := (lo + hi) / 2
	cd, ok := measure(th)
	if !ok {
		return 0, fmt.Errorf("litho: calibration failed — %dnm line does not print", widthNM)
	}
	if d := cd - target; d > 2 || d < -2 {
		return 0, fmt.Errorf("litho: calibration did not converge (printed %.1fnm for drawn %dnm)", cd, widthNM)
	}
	return th, nil
}
