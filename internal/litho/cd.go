package litho

import (
	"math"
	"sort"
)

// Axis selects the direction of a CD scan.
type Axis int

const (
	// AxisX scans along x (measures the width of a vertical feature).
	AxisX Axis = iota
	// AxisY scans along y (measures the height of a horizontal feature).
	AxisY
)

// Crossings returns the positions (in nm, along the scan axis) where the
// image intensity crosses the threshold on the scan line. For AxisX the
// scan line is y = fixed and positions are x coordinates; for AxisY the
// scan line is x = fixed. Positions are sub-pixel, found by sampling at a
// quarter-pixel step and linearly interpolating each sign change.
func (im *Image) Crossings(axis Axis, fixed, lo, hi, threshold float64) []float64 {
	if hi <= lo {
		return nil
	}
	step := float64(im.Pixel) / 4
	sample := func(t float64) float64 {
		if axis == AxisX {
			return im.Sample(t, fixed)
		}
		return im.Sample(fixed, t)
	}
	var out []float64
	prevT := lo
	prevV := sample(lo) - threshold
	for t := lo + step; t <= hi+step/2; t += step {
		if t > hi {
			t = hi
		}
		v := sample(t) - threshold
		if (prevV < 0 && v >= 0) || (prevV >= 0 && v < 0) {
			// Linear interpolation of the crossing.
			den := v - prevV
			var x float64
			if den == 0 {
				x = t
			} else {
				x = prevT - prevV*(t-prevT)/den
			}
			out = append(out, x)
		}
		prevT, prevV = t, v
		if t == hi {
			break
		}
	}
	sort.Float64s(out)
	return out
}

// CDResult is one critical-dimension measurement: the printed extent of a
// feature along a scan line.
type CDResult struct {
	// CD is the printed dimension in nm (0 when the feature failed to
	// print or vanished at this scan).
	CD float64
	// Lo, Hi are the printed edge positions along the scan axis.
	Lo, Hi float64
	// OK reports whether a printed interval containing the probe point was
	// found.
	OK bool
}

// MeasureCD measures the printed dimension of the feature containing
// position `at` (along the scan axis) on the scan line. For ClearField
// polarity the feature is the interval where intensity < threshold.
//
// axis/fixed/lo/hi define the scan line exactly as in Crossings.
func (im *Image) MeasureCD(axis Axis, fixed, lo, hi, at, threshold float64, pol Polarity) CDResult {
	cross := im.Crossings(axis, fixed, lo, hi, threshold)
	sample := func(t float64) float64 {
		if axis == AxisX {
			return im.Sample(t, fixed)
		}
		return im.Sample(fixed, t)
	}
	printed := func(t float64) bool {
		if pol == ClearField {
			return sample(t) < threshold
		}
		return sample(t) > threshold
	}
	if !printed(at) {
		return CDResult{}
	}
	// Bracket `at` between adjacent crossings (or the scan ends).
	loEdge, hiEdge := lo, hi
	for _, c := range cross {
		if c <= at && c > loEdge {
			loEdge = c
		}
		if c > at && c < hiEdge {
			hiEdge = c
		}
	}
	if loEdge == lo && hiEdge == hi && len(cross) > 0 {
		// The probe point lies outside every crossing pair; treat the whole
		// scan as the feature only when no crossing brackets exist at all.
		for _, c := range cross {
			if c > at {
				hiEdge = math.Min(hiEdge, c)
			} else {
				loEdge = math.Max(loEdge, c)
			}
		}
	}
	return CDResult{CD: hiEdge - loEdge, Lo: loEdge, Hi: hiEdge, OK: true}
}

// CDStats summarizes a set of CD measurements.
type CDStats struct {
	N          int
	Mean, Std  float64
	Min, Max   float64
	MeanAbsErr float64 // vs. a per-sample target, when provided
}

// SummarizeCDs computes statistics over measured CDs; target may be nil or
// per-sample drawn CDs for error accounting.
func SummarizeCDs(cds []float64, target []float64) CDStats {
	st := CDStats{N: len(cds)}
	if len(cds) == 0 {
		return st
	}
	st.Min, st.Max = cds[0], cds[0]
	var sum float64
	for _, v := range cds {
		sum += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean = sum / float64(len(cds))
	var ss float64
	for _, v := range cds {
		d := v - st.Mean
		ss += d * d
	}
	st.Std = math.Sqrt(ss / float64(len(cds)))
	if len(target) == len(cds) {
		var ae float64
		for i, v := range cds {
			ae += math.Abs(v - target[i])
		}
		st.MeanAbsErr = ae / float64(len(cds))
	}
	return st
}
