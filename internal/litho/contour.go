package litho

import (
	"math"

	"postopc/internal/geom"
)

// Contours extracts the printed-feature outlines at the given threshold as
// closed polygons in layout nanometres, using marching squares with linear
// edge interpolation. For ClearField polarity the inside of a contour is
// the printed (dark) feature.
//
// Vertices are rounded to integer nm; printed contours are therefore
// general (non-rectilinear) geom.Polygons.
func (im *Image) Contours(threshold float64, pol Polarity) []geom.Polygon {
	// Work with "level set" values where inside > 0.
	val := func(ix, iy int) float64 {
		v := im.At(ix, iy)
		if pol == ClearField {
			return threshold - v
		}
		return v - threshold
	}

	type fpoint struct{ x, y float64 }
	// Segments keyed by quantized start point for stitching.
	segs := make(map[[2]int64][]fpoint) // start -> list of ends
	quant := func(p fpoint) [2]int64 {
		return [2]int64{int64(math.Round(p.x * 64)), int64(math.Round(p.y * 64))}
	}
	addSeg := func(a, b fpoint) {
		segs[quant(a)] = append(segs[quant(a)], b)
	}

	// Pixel-center coordinates.
	cx := func(ix int) float64 { return float64(im.Origin.X) + (float64(ix)+0.5)*float64(im.Pixel) }
	cy := func(iy int) float64 { return float64(im.Origin.Y) + (float64(iy)+0.5)*float64(im.Pixel) }
	interp := func(x0, y0, v0, x1, y1, v1 float64) fpoint {
		den := v1 - v0
		t := 0.5
		if den != 0 {
			t = -v0 / den
		}
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
		return fpoint{x0 + t*(x1-x0), y0 + t*(y1-y0)}
	}

	// March over cells between pixel centers. Boundary cells use the
	// clear-field value outside the image (At handles it).
	for iy := -1; iy < im.Ny; iy++ {
		for ix := -1; ix < im.Nx; ix++ {
			v00 := val(ix, iy)     // lower-left
			v10 := val(ix+1, iy)   // lower-right
			v11 := val(ix+1, iy+1) // upper-right
			v01 := val(ix, iy+1)   // upper-left
			idx := 0
			if v00 > 0 {
				idx |= 1
			}
			if v10 > 0 {
				idx |= 2
			}
			if v11 > 0 {
				idx |= 4
			}
			if v01 > 0 {
				idx |= 8
			}
			if idx == 0 || idx == 15 {
				continue
			}
			x0, y0 := cx(ix), cy(iy)
			x1, y1 := cx(ix+1), cy(iy+1)
			// Edge interpolation points.
			bottom := func() fpoint { return interp(x0, y0, v00, x1, y0, v10) }
			top := func() fpoint { return interp(x0, y1, v01, x1, y1, v11) }
			left := func() fpoint { return interp(x0, y0, v00, x0, y1, v01) }
			right := func() fpoint { return interp(x1, y0, v10, x1, y1, v11) }
			// Emit segments oriented so the inside (positive) region is on
			// the LEFT of the directed segment; loops then come out CCW
			// around printed features.
			switch idx {
			case 1:
				addSeg(left(), bottom())
			case 2:
				addSeg(bottom(), right())
			case 3:
				addSeg(left(), right())
			case 4:
				addSeg(right(), top())
			case 5: // ambiguous: split by center sign
				if v00+v10+v11+v01 > 0 {
					addSeg(left(), top())
					addSeg(right(), bottom())
				} else {
					addSeg(left(), bottom())
					addSeg(right(), top())
				}
			case 6:
				addSeg(bottom(), top())
			case 7:
				addSeg(left(), top())
			case 8:
				addSeg(top(), left())
			case 9:
				addSeg(top(), bottom())
			case 10:
				if v00+v10+v11+v01 > 0 {
					addSeg(top(), right())
					addSeg(bottom(), left())
				} else {
					addSeg(top(), left())
					addSeg(bottom(), right())
				}
			case 11:
				addSeg(top(), right())
			case 12:
				addSeg(right(), left())
			case 13:
				addSeg(right(), bottom())
			case 14:
				addSeg(bottom(), left())
			}
		}
	}

	// Stitch segments into closed loops.
	var loops []geom.Polygon
	for len(segs) > 0 {
		// Pick any remaining start.
		var startKey [2]int64
		for k := range segs {
			startKey = k
			break
		}
		var loop []fpoint
		cur := startKey
		start := fpoint{float64(startKey[0]) / 64, float64(startKey[1]) / 64}
		loop = append(loop, start)
		for {
			ends := segs[cur]
			if len(ends) == 0 {
				delete(segs, cur)
				break // open chain (shouldn't happen except at numeric ties)
			}
			next := ends[0]
			if len(ends) == 1 {
				delete(segs, cur)
			} else {
				segs[cur] = ends[1:]
			}
			nk := quant(next)
			if nk == startKey {
				break // closed
			}
			loop = append(loop, next)
			cur = nk
			if len(loop) > 4*(im.Nx+2)*(im.Ny+2) {
				break // safety against pathological stitching
			}
		}
		if len(loop) >= 3 {
			pg := make(geom.Polygon, 0, len(loop))
			for _, p := range loop {
				pg = append(pg, geom.Pt(geom.Coord(math.Round(p.x)), geom.Coord(math.Round(p.y))))
			}
			// Drop consecutive duplicates introduced by nm rounding.
			pg = dedupPoly(pg)
			if len(pg) >= 3 {
				loops = append(loops, pg)
			}
		}
	}
	return loops
}

func dedupPoly(pg geom.Polygon) geom.Polygon {
	var out geom.Polygon
	for _, p := range pg {
		if len(out) > 0 && out[len(out)-1] == p {
			continue
		}
		out = append(out, p)
	}
	if len(out) > 1 && out[0] == out[len(out)-1] {
		out = out[:len(out)-1]
	}
	return out
}
