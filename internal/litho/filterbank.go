package litho

import (
	"math"
	"math/cmplx"
	"sort"
	"sync"
	"sync/atomic"

	"postopc/internal/dsp"
)

// The pupil-filter bank: the Abbe hot loop multiplies the mask spectrum by
// P(f + fs)·exp(iπλz|f|²) for every source point, and that filter depends
// only on the recipe, the grid geometry and the defocus — never on the
// mask. Each filter grid is therefore built once per (grid size, pixel,
// defocus) and reused for every window the model images, turning the
// per-source-point inner loop into a branch-free complex multiply over
// precomputed tables.
//
// Filters are stored band-limited: only the spectrum rows that intersect
// the shifted pupil are kept (the pupil cutoff NA/λ spans a handful of
// frequency bins at production pixel pitches), so both the filter apply and
// the inverse transform prune to those rows.
//
// At zero defocus the bank additionally folds the source sum in half: the
// mask transmission is real, its spectrum Hermitian, and the pupil
// indicator is even, so a source point at -σ produces the conjugate field
// of the point at +σ — the identical intensity. Mirrored pairs are merged
// into one filter carrying both weights. Defocus breaks the symmetry (the
// aberration phase does not conjugate), so defocused filter sets keep every
// point.

// filterKey identifies one filter set in the shared bank: the recipe
// serialization (Recipe.AppendKey, which also determines the sampled
// source), the simulation grid geometry and the defocus.
type filterKey struct {
	recipe    string
	nx, ny    int
	pixelNM   float64
	defocusNM float64
}

// pointFilter is the precomputed filter of one (possibly folded) source
// point: the effective weight and the filter values over the support rows.
type pointFilter struct {
	// weight is the source-point weight, doubled (summed) when a mirrored
	// partner was folded into this filter.
	weight float64
	// rows lists the spectrum rows (iy indices, ascending) intersecting the
	// shifted pupil.
	rows []int
	// valsRe/valsIm hold len(rows)*nx filter values as structure-of-arrays
	// planes (row-major, matching dsp.FGrid), zero outside the pupil so the
	// apply loop is a branch-free vek.CMul per support row. Splitting the
	// complex values into planes moves no bit.
	valsRe, valsIm []float64
}

// filterSet is the bank entry for one filterKey.
type filterSet struct {
	points []pointFilter
	// unionRows is the ascending union of all points' support rows — the
	// only spectrum rows any filter of this set reads.
	unionRows []int
}

// maxFilterSets bounds the shared bank. A flow images windows at one or two
// grid sizes and a handful of defocus values, so the bank normally holds a
// few entries; the reset guards against a pathological caller cycling
// window sizes.
const maxFilterSets = 16

// sharedBank is the package-level read-mostly filter-bank service. Filter
// tables are pure functions of their key (the build is deterministic), so
// one process-wide bank serves every Abbe instance: concurrent workers —
// even workers holding distinct models built from equal recipes — never
// rebuild or contend on an existing entry. Reads are a single atomic load
// of an immutable map snapshot; builds serialize on the mutex and publish a
// grown copy (copy-on-write), so the hot path takes no lock at all.
var sharedBank struct {
	mu  sync.Mutex // serializes builds and snapshot swaps
	cur atomic.Pointer[map[filterKey]*filterSet]
}

// filtersFor returns the filter set for the grid geometry and defocus,
// building it into the shared bank on first use.
//
//postopc:allocfree
func (a *Abbe) filtersFor(nx, ny int, px, defocusNM float64) *filterSet {
	key := filterKey{recipe: a.recipeKey, nx: nx, ny: ny, pixelNM: px, defocusNM: defocusNM}
	if m := sharedBank.cur.Load(); m != nil {
		if fs, ok := (*m)[key]; ok {
			return fs
		}
	}
	return a.buildFilters(key) //postopc:nolint:allocbudget first build per (recipe, geometry, defocus) is the one-time cold path
}

// buildFilters builds and publishes the filter set of key under the bank
// mutex, double-checking for a concurrent build. The snapshot swap is
// copy-on-write: readers keep the map they loaded, the next lookup sees the
// grown one. When the bank is full the new snapshot starts over with just
// this entry (the maxFilterSets reset).
func (a *Abbe) buildFilters(key filterKey) *filterSet {
	sharedBank.mu.Lock()
	defer sharedBank.mu.Unlock()
	if m := sharedBank.cur.Load(); m != nil {
		if fs, ok := (*m)[key]; ok {
			return fs
		}
	}
	fs := buildFilterSet(a.recipe, a.source, key.nx, key.ny, key.pixelNM, key.defocusNM)
	a.cBuilds.Inc()
	next := make(map[filterKey]*filterSet, maxFilterSets)
	if old := sharedBank.cur.Load(); old != nil && len(*old) < maxFilterSets {
		for k, v := range *old {
			next[k] = v
		}
	}
	next[key] = fs
	sharedBank.cur.Store(&next)
	return fs
}

// foldedPoint selects a source point and its effective weight after
// mirror-pair folding.
type foldedPoint struct {
	idx    int
	weight float64
}

// foldSource pairs each source point with its mirror (-σx, -σy) and merges
// the pair's weight onto one representative. The sampled source is 4-fold
// symmetric by construction, so in practice everything pairs; any point
// without an exact-enough mirror keeps its own weight unpaired.
func foldSource(source []SourcePoint) []foldedPoint {
	const tol = 1e-9
	used := make([]bool, len(source))
	out := make([]foldedPoint, 0, (len(source)+1)/2)
	for i, p := range source {
		if used[i] {
			continue
		}
		used[i] = true
		fp := foldedPoint{idx: i, weight: p.Weight}
		for j := i + 1; j < len(source); j++ {
			if used[j] {
				continue
			}
			q := source[j]
			if math.Abs(p.SX+q.SX) < tol && math.Abs(p.SY+q.SY) < tol {
				fp.weight += q.Weight
				used[j] = true
				break
			}
		}
		out = append(out, fp)
	}
	return out
}

// buildFilterSet computes the filter tables for one key. The per-bin
// formulas mirror the original inner loop expression-for-expression so the
// precomputed values are the ones the loop used to compute in place.
func buildFilterSet(r Recipe, source []SourcePoint, nx, ny int, px, defocusNM float64) *filterSet {
	fmax := r.NA / r.WavelengthNM   // pupil cutoff, cycles/nm
	dfx := 1.0 / (float64(nx) * px) // frequency steps, cycles/nm
	dfy := 1.0 / (float64(ny) * px)
	lambda := r.WavelengthNM

	// Mirror folding is valid only at zero defocus and only while the
	// shifted pupil stays strictly inside the representable frequency range
	// (no wrap through the asymmetric -n/2 Nyquist bin).
	maxf := fmax * (1 + r.SigmaOuter)
	foldable := defocusNM == 0 &&
		maxf < (float64(nx)/2-1)*dfx && maxf < (float64(ny)/2-1)*dfy
	var picks []foldedPoint
	if foldable {
		picks = foldSource(source)
	} else {
		picks = make([]foldedPoint, len(source))
		for i, sp := range source {
			picks[i] = foldedPoint{idx: i, weight: sp.Weight}
		}
	}

	fs := &filterSet{points: make([]pointFilter, 0, len(picks))}
	inUnion := make([]bool, ny)
	rowRe := make([]float64, nx)
	rowIm := make([]float64, nx)
	for _, pk := range picks {
		sp := source[pk.idx]
		fsx := sp.SX * fmax
		fsy := sp.SY * fmax
		pf := pointFilter{weight: pk.weight}
		for iy := 0; iy < ny; iy++ {
			fy := float64(dsp.FreqIndex(iy, ny))*dfy + fsy
			any := false
			for ix := 0; ix < nx; ix++ {
				fx := float64(dsp.FreqIndex(ix, nx))*dfx + fsx
				f2 := fx*fx + fy*fy
				if f2 > fmax*fmax {
					rowRe[ix], rowIm[ix] = 0, 0
					continue
				}
				v := complex(1, 0)
				if defocusNM != 0 {
					// Paraxial defocus aberration: φ = π λ z |f|².
					ph := math.Pi * lambda * defocusNM * f2
					v = cmplx.Exp(complex(0, ph))
				}
				rowRe[ix], rowIm[ix] = real(v), imag(v)
				any = true
			}
			if any {
				pf.rows = append(pf.rows, iy)
				pf.valsRe = append(pf.valsRe, rowRe...)
				pf.valsIm = append(pf.valsIm, rowIm...)
				if !inUnion[iy] {
					inUnion[iy] = true
					fs.unionRows = append(fs.unionRows, iy)
				}
			}
		}
		fs.points = append(fs.points, pf)
	}
	sort.Ints(fs.unionRows)
	return fs
}

// mergeRows returns the ascending union of two ascending row lists. When a
// is empty it returns b itself (not a copy) — callers treat the result as
// read-only.
func mergeRows(a, b []int) []int {
	if len(a) == 0 {
		return b
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
