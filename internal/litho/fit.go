package litho

import (
	"fmt"
	"math"

	"postopc/internal/geom"
)

// DualFit is the result of calibrating the fast dual-Gaussian model against
// reference (Abbe or measured) CD-through-pitch data.
type DualFit struct {
	// Sigma2NM and Weight parameterize the secondary kernel.
	Sigma2NM, Weight float64
	// Threshold is the resist threshold calibrated for the fitted model.
	Threshold float64
	// RMS is the residual CD error over the fitting targets (nm).
	RMS float64
}

// FitDualGaussian grid-searches the secondary kernel of the fast model so
// that its printed CD through pitch matches the reference targets. The
// threshold is recalibrated (dose-to-size on width/refPitch) for every
// candidate, exactly as a fab would anchor a fast OPC model.
func FitDualGaussian(r Recipe, width, refPitch geom.Coord, targets map[geom.Coord]float64) (DualFit, error) {
	best := DualFit{RMS: math.Inf(1)}
	for _, sigma2 := range []float64{120, 160, 200, 240, 280, 320} {
		for w := -0.15; w <= 0.35+1e-9; w += 0.05 {
			m, err := NewGaussianDual(r, sigma2, w)
			if err != nil {
				return best, err
			}
			th, err := CalibrateThreshold(m, width, refPitch)
			if err != nil {
				continue // candidate cannot even print the anchor
			}
			var se float64
			n := 0
			ok := true
			for pitch, want := range targets {
				cd, err := measureArrayCD(m, width, pitch, th)
				if err != nil {
					ok = false
					break
				}
				se += (cd - want) * (cd - want)
				n++
			}
			if !ok || n == 0 {
				continue
			}
			rms := math.Sqrt(se / float64(n))
			if rms < best.RMS {
				best = DualFit{Sigma2NM: sigma2, Weight: w, Threshold: th, RMS: rms}
			}
		}
	}
	if math.IsInf(best.RMS, 1) {
		return best, fmt.Errorf("litho: dual-Gaussian fit found no printable candidate")
	}
	return best, nil
}

// measureArrayCD images a 7-line array and measures the center line's CD at
// the given threshold.
func measureArrayCD(m Model, width, pitch geom.Coord, threshold float64) (float64, error) {
	r := m.Recipe()
	la := LineArray{WidthNM: width, PitchNM: pitch, Count: 7, LengthNM: width * 16}
	mask := RasterizeRects(la.Rects(), r.PixelNM, r.GuardNM)
	im, err := m.Aerial(mask, Nominal)
	if err != nil {
		return 0, err
	}
	centers := la.CenterXs()
	mid := centers[len(centers)/2]
	res := im.MeasureCD(AxisX, 0, mid-float64(pitch)/2, mid+float64(pitch)/2, mid, threshold, r.Polarity)
	if !res.OK {
		return 0, fmt.Errorf("litho: line w=%d p=%d did not print", width, pitch)
	}
	return res.CD, nil
}
