package litho

import (
	"fmt"
	"math"

	"postopc/internal/geom"
	"postopc/internal/obs"
)

// Gaussian is the fast approximate aerial model: the amplitude point-spread
// function is modeled as an isotropic Gaussian whose width tracks the
// diffraction-limited Airy core (≈0.42 λ/NA) and broadens with defocus.
// The image is |t ⊛ G|² with the transmission t, computed by separable
// spatial convolution — no FFT, linear in pixels.
//
// It reproduces the first-order proximity behaviour (iso-dense bias,
// corner rounding, line-end pullback) at a fraction of the Abbe cost and is
// the model of choice for unit tests and OPC inner loops; the Abbe model is
// used for verification-grade simulation. BenchmarkAblation_FastModel
// quantifies the CD fidelity gap.
type Gaussian struct {
	recipe Recipe
	// sigma2NM/weight2 define an optional secondary kernel component:
	// amplitude PSF = (1−w)·G(σ1) + w·G(σ2). The broad second Gaussian
	// mimics the longer-range proximity interaction of the partially
	// coherent optics, which a single narrow kernel misses entirely. Fit
	// with FitDualGaussian; zero weight degrades to the single kernel.
	sigma2NM float64
	weight2  float64

	// hAerial is the telemetry handle (see Instrument); nil when
	// uninstrumented. Write-only and allocation-free.
	hAerial *obs.Histogram //postopc:keyignore telemetry observes the computation without being an input
}

// Instrument attaches telemetry to the model: aerial latency under
// "litho.gaussian_aerial_ns", one observation per Aerial/AerialSeries
// call. Call before the model is shared between workers; a nil or
// disabled sink is a no-op.
func (g *Gaussian) Instrument(sink *obs.Sink) {
	g.hAerial = sink.LatencyHistogram("litho.gaussian_aerial_ns")
}

// NewGaussian builds the fast model from the recipe (single kernel).
func NewGaussian(r Recipe) (*Gaussian, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &Gaussian{recipe: r}, nil
}

// NewGaussianDual builds the fast model with a secondary kernel component
// of width sigma2NM and amplitude weight w (see Gaussian).
func NewGaussianDual(r Recipe, sigma2NM, w float64) (*Gaussian, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if sigma2NM <= 0 && w != 0 {
		return nil, fmt.Errorf("litho: dual Gaussian needs positive sigma2")
	}
	return &Gaussian{recipe: r, sigma2NM: sigma2NM, weight2: w}, nil
}

// Recipe returns the optical settings.
func (g *Gaussian) Recipe() Recipe { return g.recipe }

// SigmaAt returns the Gaussian amplitude PSF sigma (nm) at the given
// defocus.
func (g *Gaussian) SigmaAt(defocusNM float64) float64 {
	r := g.recipe
	// 0.30·λ/NA: the effective amplitude PSF width of a partially coherent
	// system (σ≈0.7) is markedly narrower than the coherent Airy core
	// (0.42·λ/NA); 0.30 keeps production-pitch gratings resolvable, which
	// the OPC inner loop depends on.
	sigma0 := 0.30 * r.WavelengthNM / r.NA
	// Geometric blur from defocus: the converging cone defocused by z
	// spreads by ~z·NA; the 0.30 prefactor is fitted so the dense-line CD
	// through focus tracks the Abbe reference within ~2nm
	// (BenchmarkAblation_FastModel quantifies the remaining gap).
	blur := 0.30 * math.Abs(defocusNM) * r.NA
	return math.Sqrt(sigma0*sigma0 + blur*blur)
}

// Aerial implements Model.
func (g *Gaussian) Aerial(mask *geom.Raster, c Corner) (*Image, error) {
	t0 := g.hAerial.StartTimer()
	ks := borrowKernelScratch()
	im, err := g.aerial(mask, c, ks)
	ks.release()
	g.hAerial.ObserveSince(t0)
	return im, err
}

func (g *Gaussian) aerial(mask *geom.Raster, c Corner, ks *kernelScratch) (*Image, error) {
	r := g.recipe
	px := float64(mask.Pixel)
	bg := 1.0
	if r.Polarity == DarkField {
		bg = 0
	}
	nx, ny := mask.Nx, mask.Ny
	// Transmission amplitude.
	ks.amp = growFloats(ks.amp, nx*ny)
	amp := ks.amp
	for i, cov := range mask.Data {
		if r.Polarity == ClearField {
			amp[i] = 1 - cov
		} else {
			amp[i] = cov
		}
	}
	// Defocus broadens both kernel components in quadrature.
	blur := 0.30 * math.Abs(c.DefocusNM) * r.NA
	s1 := math.Sqrt(sq(g.SigmaAt(0)) + blur*blur)
	ks.field = growFloats(ks.field, nx*ny)
	field := ks.field
	convolveGaussianInto(field, amp, nx, ny, bg, s1, px, ks)
	if g.weight2 != 0 {
		s2 := math.Sqrt(sq(g.sigma2NM) + blur*blur)
		// The broad component reuses one pooled buffer instead of
		// allocating a second field per call.
		ks.wide = growFloats(ks.wide, nx*ny)
		wide := ks.wide
		convolveGaussianInto(wide, amp, nx, ny, bg, s2, px, ks)
		w := g.weight2
		for i := range field {
			field[i] = (1-w)*field[i] + w*wide[i]
		}
	}
	out := NewImage(mask)
	out.Background = bg
	for i, v := range field {
		out.Data[i] = v * v // intensity = amplitude²
	}
	return out, nil
}

// convolveGaussianInto blurs amp (nx×ny, row-major) into dst with an
// isotropic Gaussian of the given sigma, extending edges with the background
// level. The kernel is truncated at 3σ and normalized to unit sum so a
// uniform field is preserved exactly. dst must have nx*ny elements; its
// prior contents are ignored. Row scratch comes from ks.
func convolveGaussianInto(dst, amp []float64, nx, ny int, bg, sigma, px float64, ks *kernelScratch) {
	half := int(math.Ceil(3 * sigma / px))
	if half < 1 {
		half = 1
	}
	ks.kern = growFloats(ks.kern, 2*half+1)
	kern := ks.kern
	var ksum float64
	for i := -half; i <= half; i++ {
		v := math.Exp(-0.5 * sq(float64(i)*px/sigma))
		kern[i+half] = v
		ksum += v
	}
	for i := range kern {
		kern[i] /= ksum
	}
	// Horizontal pass over a background-padded row buffer (branch-free
	// inner loop). The pad's end fills are constant across rows, so they
	// are written once, outside the row loop.
	ks.tmp = growFloats(ks.tmp, nx*ny)
	tmp := ks.tmp
	ks.pad = growFloats(ks.pad, nx+2*half)
	pad := ks.pad
	for i := 0; i < half; i++ {
		pad[i] = bg
		pad[nx+half+i] = bg
	}
	for iy := 0; iy < ny; iy++ {
		copy(pad[half:half+nx], amp[iy*nx:(iy+1)*nx])
		row := tmp[iy*nx : (iy+1)*nx]
		for ix := 0; ix < nx; ix++ {
			var s float64
			win := pad[ix : ix+2*half+1]
			for j, k := range kern {
				s += win[j] * k
			}
			row[ix] = s
		}
	}
	// Vertical pass, accumulated row-wise for sequential memory access.
	// dst is an accumulator here, so it is zeroed first.
	for i := range dst {
		dst[i] = 0
	}
	for k := -half; k <= half; k++ {
		w := kern[k+half]
		for iy := 0; iy < ny; iy++ {
			row := dst[iy*nx : (iy+1)*nx]
			j := iy + k
			if j < 0 || j >= ny {
				add := bg * w
				for ix := range row {
					row[ix] += add
				}
				continue
			}
			src := tmp[j*nx : (j+1)*nx]
			for ix := range row {
				row[ix] += src[ix] * w
			}
		}
	}
}

// AerialSeries implements Model, sharing simulations between corners that
// differ only in dose: corners sharing a defocus alias one *Image in the
// returned slice, so callers must not mutate the returned images.
func (g *Gaussian) AerialSeries(mask *geom.Raster, corners []Corner) ([]*Image, error) {
	t0 := g.hAerial.StartTimer()
	defer g.hAerial.ObserveSince(t0)
	ks := borrowKernelScratch()
	defer ks.release()
	out := make([]*Image, len(corners))
	for ci, c := range corners {
		dup := false
		for cj, p := range corners[:ci] {
			if p.DefocusNM == c.DefocusNM {
				out[ci] = out[cj]
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		im, err := g.aerial(mask, c, ks)
		if err != nil {
			return nil, err
		}
		out[ci] = im
	}
	return out, nil
}

var (
	_ Model = (*Abbe)(nil)
	_ Model = (*Gaussian)(nil)
)
