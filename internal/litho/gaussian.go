package litho

import (
	"fmt"
	"math"

	"postopc/internal/geom"
)

// Gaussian is the fast approximate aerial model: the amplitude point-spread
// function is modeled as an isotropic Gaussian whose width tracks the
// diffraction-limited Airy core (≈0.42 λ/NA) and broadens with defocus.
// The image is |t ⊛ G|² with the transmission t, computed by separable
// spatial convolution — no FFT, linear in pixels.
//
// It reproduces the first-order proximity behaviour (iso-dense bias,
// corner rounding, line-end pullback) at a fraction of the Abbe cost and is
// the model of choice for unit tests and OPC inner loops; the Abbe model is
// used for verification-grade simulation. BenchmarkAblation_FastModel
// quantifies the CD fidelity gap.
type Gaussian struct {
	recipe Recipe
	// sigma2NM/weight2 define an optional secondary kernel component:
	// amplitude PSF = (1−w)·G(σ1) + w·G(σ2). The broad second Gaussian
	// mimics the longer-range proximity interaction of the partially
	// coherent optics, which a single narrow kernel misses entirely. Fit
	// with FitDualGaussian; zero weight degrades to the single kernel.
	sigma2NM float64
	weight2  float64
}

// NewGaussian builds the fast model from the recipe (single kernel).
func NewGaussian(r Recipe) (*Gaussian, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &Gaussian{recipe: r}, nil
}

// NewGaussianDual builds the fast model with a secondary kernel component
// of width sigma2NM and amplitude weight w (see Gaussian).
func NewGaussianDual(r Recipe, sigma2NM, w float64) (*Gaussian, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if sigma2NM <= 0 && w != 0 {
		return nil, fmt.Errorf("litho: dual Gaussian needs positive sigma2")
	}
	return &Gaussian{recipe: r, sigma2NM: sigma2NM, weight2: w}, nil
}

// Recipe returns the optical settings.
func (g *Gaussian) Recipe() Recipe { return g.recipe }

// SigmaAt returns the Gaussian amplitude PSF sigma (nm) at the given
// defocus.
func (g *Gaussian) SigmaAt(defocusNM float64) float64 {
	r := g.recipe
	// 0.30·λ/NA: the effective amplitude PSF width of a partially coherent
	// system (σ≈0.7) is markedly narrower than the coherent Airy core
	// (0.42·λ/NA); 0.30 keeps production-pitch gratings resolvable, which
	// the OPC inner loop depends on.
	sigma0 := 0.30 * r.WavelengthNM / r.NA
	// Geometric blur from defocus: the converging cone defocused by z
	// spreads by ~z·NA; the 0.30 prefactor is fitted so the dense-line CD
	// through focus tracks the Abbe reference within ~2nm
	// (BenchmarkAblation_FastModel quantifies the remaining gap).
	blur := 0.30 * math.Abs(defocusNM) * r.NA
	return math.Sqrt(sigma0*sigma0 + blur*blur)
}

// Aerial implements Model.
func (g *Gaussian) Aerial(mask *geom.Raster, c Corner) (*Image, error) {
	r := g.recipe
	px := float64(mask.Pixel)
	bg := 1.0
	if r.Polarity == DarkField {
		bg = 0
	}
	nx, ny := mask.Nx, mask.Ny
	// Transmission amplitude.
	amp := make([]float64, nx*ny)
	for i, cov := range mask.Data {
		if r.Polarity == ClearField {
			amp[i] = 1 - cov
		} else {
			amp[i] = cov
		}
	}
	// Defocus broadens both kernel components in quadrature.
	blur := 0.30 * math.Abs(c.DefocusNM) * r.NA
	s1 := math.Sqrt(sq(g.SigmaAt(0)) + blur*blur)
	field := convolveGaussian(amp, nx, ny, bg, s1, px)
	if g.weight2 != 0 {
		s2 := math.Sqrt(sq(g.sigma2NM) + blur*blur)
		wide := convolveGaussian(amp, nx, ny, bg, s2, px)
		w := g.weight2
		for i := range field {
			field[i] = (1-w)*field[i] + w*wide[i]
		}
	}
	out := NewImage(mask)
	for i, v := range field {
		out.Data[i] = v * v // intensity = amplitude²
	}
	return out, nil
}

// convolveGaussian blurs amp (nx×ny, row-major) with an isotropic Gaussian
// of the given sigma, extending edges with the background level. The kernel
// is truncated at 3σ and normalized to unit sum so a uniform field is
// preserved exactly.
func convolveGaussian(amp []float64, nx, ny int, bg, sigma, px float64) []float64 {
	half := int(math.Ceil(3 * sigma / px))
	if half < 1 {
		half = 1
	}
	kern := make([]float64, 2*half+1)
	var ksum float64
	for i := -half; i <= half; i++ {
		v := math.Exp(-0.5 * sq(float64(i)*px/sigma))
		kern[i+half] = v
		ksum += v
	}
	for i := range kern {
		kern[i] /= ksum
	}
	// Horizontal pass over a background-padded row buffer (branch-free
	// inner loop).
	tmp := make([]float64, nx*ny)
	pad := make([]float64, nx+2*half)
	for iy := 0; iy < ny; iy++ {
		for i := 0; i < half; i++ {
			pad[i] = bg
			pad[nx+half+i] = bg
		}
		copy(pad[half:half+nx], amp[iy*nx:(iy+1)*nx])
		dst := tmp[iy*nx : (iy+1)*nx]
		for ix := 0; ix < nx; ix++ {
			var s float64
			win := pad[ix : ix+2*half+1]
			for j, k := range kern {
				s += win[j] * k
			}
			dst[ix] = s
		}
	}
	// Vertical pass, accumulated row-wise for sequential memory access.
	out := make([]float64, nx*ny)
	for k := -half; k <= half; k++ {
		w := kern[k+half]
		for iy := 0; iy < ny; iy++ {
			dst := out[iy*nx : (iy+1)*nx]
			j := iy + k
			if j < 0 || j >= ny {
				add := bg * w
				for ix := range dst {
					dst[ix] += add
				}
				continue
			}
			src := tmp[j*nx : (j+1)*nx]
			for ix := range dst {
				dst[ix] += src[ix] * w
			}
		}
	}
	return out
}

// AerialSeries implements Model, sharing simulations between corners that
// differ only in dose.
func (g *Gaussian) AerialSeries(mask *geom.Raster, corners []Corner) ([]*Image, error) {
	uniq := map[float64]*Image{}
	out := make([]*Image, len(corners))
	for ci, c := range corners {
		if im, ok := uniq[c.DefocusNM]; ok {
			out[ci] = im
			continue
		}
		im, err := g.Aerial(mask, c)
		if err != nil {
			return nil, err
		}
		uniq[c.DefocusNM] = im
		out[ci] = im
	}
	return out, nil
}

var (
	_ Model = (*Abbe)(nil)
	_ Model = (*Gaussian)(nil)
)
