package litho

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"testing"
)

// Golden-SHA pins of the Abbe aerial image. The hashes were recorded from
// the pre-vek complex128 kernel path; the SoA kernel layer (internal/dsp/vek)
// preserves the exact floating-point operation sequence of that code, so
// the images must stay byte-identical — across the refactor AND across
// GOAMD64 build levels (the kernels contain no fused operations, see the
// no-FMA contract in DESIGN.md "SIMD inner loops"). CI runs this test under
// both the default GOAMD64 and the v3 lane; a hash change on either means a
// kernel reordered, fused or otherwise perturbed a float operation.

// goldenAerialSHA256 hashes the image: dimensions, background and every
// sample as its exact IEEE-754 bit pattern, little-endian.
func goldenAerialSHA256(im *Image) string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(im.Nx))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(im.Ny))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(im.Background))
	h.Write(buf[:])
	for _, v := range im.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestAbbeAerialGoldenSHA locks the nominal and defocused Abbe images of
// the fixed 256×256 grating window to their recorded hashes. The defocused
// corner exercises the unfolded full source sum and the complex pupil
// phases; nominal exercises Hermitian folding. Together they cover every
// vek kernel: transmission fill, forward band-selected butterflies, the
// filter apply, the inverse band-limited butterflies with their 1/N
// scaling, and the intensity accumulate.
func TestAbbeAerialGoldenSHA(t *testing.T) {
	golden := map[string]string{
		"nominal":    "c7d23219c1727153264c63589ed8da02f118e5143339dde5992efd6bc6f98829",
		"defocus120": "db29a873f1b6e4d818dd2221ec2f6401b239ca668b952e3d8ccf7d014b90b0b3",
	}
	m := newAbbeT(t)
	mask := benchMask256()
	for name, c := range map[string]Corner{
		"nominal":    Nominal,
		"defocus120": {DefocusNM: 120, Dose: 1},
	} {
		im, err := m.Aerial(mask, c)
		if err != nil {
			t.Fatal(err)
		}
		got := goldenAerialSHA256(im)
		if want := golden[name]; got != want {
			t.Errorf("%s aerial SHA-256 = %s, want %s\n"+
				"(a mismatch means a kernel changed its floating-point op sequence;"+
				" see the bit-identity contract in DESIGN.md)", name, got, want)
		}
	}
}
