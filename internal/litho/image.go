package litho

import (
	"fmt"
	"math"

	"postopc/internal/geom"
)

// Image is an aerial-image intensity map over a layout window. Intensities
// are normalized to the clear-field level (open frame = 1.0).
type Image struct {
	// Origin is the layout coordinate of the lower-left corner, in nm.
	Origin geom.Point
	// Pixel is the pixel pitch in nm.
	Pixel geom.Coord
	// Nx, Ny are the grid dimensions.
	Nx, Ny int
	// Data holds Nx*Ny intensities, row-major.
	Data []float64
	// Background is the intensity reads outside the window return: the
	// unpatterned-field level of the mask polarity — 1.0 for a clear-field
	// mask (open background), 0.0 for dark-field (opaque background). Set
	// by the model that produced the image.
	Background float64
}

// NewImage allocates a zeroed image aligned with the given mask raster.
// Background defaults to the clear-field level 1.0; models producing
// dark-field images overwrite it.
func NewImage(mask *geom.Raster) *Image {
	return &Image{
		Origin:     mask.Origin,
		Pixel:      mask.Pixel,
		Nx:         mask.Nx,
		Ny:         mask.Ny,
		Data:       make([]float64, mask.Nx*mask.Ny),
		Background: 1,
	}
}

// At returns the intensity of pixel (ix, iy); out-of-range reads return the
// Background level so that scans off the window edge behave as unpatterned
// field for the mask's polarity.
func (im *Image) At(ix, iy int) float64 {
	if ix < 0 || iy < 0 || ix >= im.Nx || iy >= im.Ny {
		return im.Background
	}
	return im.Data[iy*im.Nx+ix]
}

// Bounds returns the layout-space rectangle covered by the image.
func (im *Image) Bounds() geom.Rect {
	return geom.Rect{
		X0: im.Origin.X, Y0: im.Origin.Y,
		X1: im.Origin.X + geom.Coord(im.Nx)*im.Pixel,
		Y1: im.Origin.Y + geom.Coord(im.Ny)*im.Pixel,
	}
}

// Sample returns the bilinearly interpolated intensity at layout position
// (x, y) in nm.
func (im *Image) Sample(x, y float64) float64 {
	// Convert to pixel-center coordinates.
	fx := (x-float64(im.Origin.X))/float64(im.Pixel) - 0.5
	fy := (y-float64(im.Origin.Y))/float64(im.Pixel) - 0.5
	ix := int(math.Floor(fx))
	iy := int(math.Floor(fy))
	tx := fx - float64(ix)
	ty := fy - float64(iy)
	v00 := im.At(ix, iy)
	v10 := im.At(ix+1, iy)
	v01 := im.At(ix, iy+1)
	v11 := im.At(ix+1, iy+1)
	return v00*(1-tx)*(1-ty) + v10*tx*(1-ty) + v01*(1-tx)*ty + v11*tx*ty
}

// MinMax returns the extreme intensities of the image.
func (im *Image) MinMax() (lo, hi float64) {
	if len(im.Data) == 0 {
		return 0, 0
	}
	lo, hi = im.Data[0], im.Data[0]
	for _, v := range im.Data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return
}

// Printed reports whether the resist feature is present at pixel (ix, iy)
// for the given threshold and polarity.
func (im *Image) Printed(ix, iy int, threshold float64, pol Polarity) bool {
	v := im.At(ix, iy)
	if pol == ClearField {
		return v < threshold
	}
	return v > threshold
}

// PrintedCoverage returns the fraction of pixels inside rect r (layout nm)
// that print, a cheap area metric used by tests.
func (im *Image) PrintedCoverage(r geom.Rect, threshold float64, pol Polarity) float64 {
	r = r.Intersect(im.Bounds())
	if r.Empty() {
		return 0
	}
	ix0 := int((r.X0 - im.Origin.X) / im.Pixel)
	iy0 := int((r.Y0 - im.Origin.Y) / im.Pixel)
	ix1 := int((r.X1 - im.Origin.X - 1) / im.Pixel)
	iy1 := int((r.Y1 - im.Origin.Y - 1) / im.Pixel)
	total, printed := 0, 0
	for iy := iy0; iy <= iy1 && iy < im.Ny; iy++ {
		for ix := ix0; ix <= ix1 && ix < im.Nx; ix++ {
			total++
			if im.Printed(ix, iy, threshold, pol) {
				printed++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(printed) / float64(total)
}

// ILS returns the image log slope |d ln I / dx| (1/nm) at layout position
// (x, y) along the given unit direction (dx, dy), estimated by central
// differences at half-pixel steps. Higher ILS means a sharper, more
// dose-stable edge.
func (im *Image) ILS(x, y, dx, dy float64) float64 {
	h := float64(im.Pixel) / 2
	i0 := im.Sample(x-dx*h, y-dy*h)
	i1 := im.Sample(x+dx*h, y+dy*h)
	ic := im.Sample(x, y)
	if ic <= 1e-9 {
		return 0
	}
	return math.Abs((i1 - i0) / (2 * h) / ic)
}

// String summarizes the image.
func (im *Image) String() string {
	lo, hi := im.MinMax()
	return fmt.Sprintf("image %dx%d px=%dnm I=[%.3f,%.3f]", im.Nx, im.Ny, im.Pixel, lo, hi)
}
