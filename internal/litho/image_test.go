package litho

import (
	"math"
	"testing"

	"postopc/internal/geom"
)

// rampImage builds a synthetic image whose intensity rises linearly with x:
// I = x / 100 (x in nm), on a 200x100nm window at 5nm pixels.
func rampImage() *Image {
	mask := geom.NewRaster(geom.R(0, 0, 200, 100), 5)
	im := NewImage(mask)
	for iy := 0; iy < im.Ny; iy++ {
		for ix := 0; ix < im.Nx; ix++ {
			x, _ := mask.PixelCenter(ix, iy)
			im.Data[iy*im.Nx+ix] = x / 100
		}
	}
	return im
}

func TestImageSampleBilinear(t *testing.T) {
	im := rampImage()
	// Inside the grid the ramp must be reproduced exactly by bilinear
	// interpolation.
	for _, x := range []float64{10, 37.5, 100, 155} {
		if got := im.Sample(x, 50); math.Abs(got-x/100) > 1e-9 {
			t.Fatalf("Sample(%g) = %g, want %g", x, got, x/100)
		}
	}
}

func TestImageOutOfRangeIsClearField(t *testing.T) {
	im := rampImage()
	if got := im.At(-5, 0); got != 1 {
		t.Fatalf("out-of-range At = %g, want clear field 1", got)
	}
	if got := im.Sample(-500, -500); math.Abs(got-1) > 1e-9 {
		t.Fatalf("far sample = %g, want 1", got)
	}
}

func TestImageCrossings(t *testing.T) {
	im := rampImage()
	// The ramp crosses I=0.5 at x=50.
	xs := im.Crossings(AxisX, 50, 10, 190, 0.5)
	if len(xs) != 1 || math.Abs(xs[0]-50) > 1.5 {
		t.Fatalf("crossings = %v, want [50]", xs)
	}
	// No crossing below the ramp range.
	if xs := im.Crossings(AxisX, 50, 10, 190, 5.0); len(xs) != 0 {
		t.Fatalf("unexpected crossings %v", xs)
	}
	// Degenerate scan.
	if xs := im.Crossings(AxisX, 50, 100, 100, 0.5); xs != nil {
		t.Fatalf("degenerate scan = %v", xs)
	}
}

func TestImageMeasureCD(t *testing.T) {
	// Synthetic V-shaped intensity dip centered at x=100: printed region
	// (I < th) is an interval around 100.
	mask := geom.NewRaster(geom.R(0, 0, 200, 40), 5)
	im := NewImage(mask)
	for iy := 0; iy < im.Ny; iy++ {
		for ix := 0; ix < im.Nx; ix++ {
			x, _ := mask.PixelCenter(ix, iy)
			im.Data[iy*im.Nx+ix] = math.Abs(x-100) / 100
		}
	}
	res := im.MeasureCD(AxisX, 20, 5, 195, 100, 0.4, ClearField)
	if !res.OK {
		t.Fatal("feature not found")
	}
	if math.Abs(res.CD-80) > 3 {
		t.Fatalf("CD = %g, want ~80", res.CD)
	}
	// Probe point outside the feature.
	res = im.MeasureCD(AxisX, 20, 5, 195, 190, 0.4, ClearField)
	if res.OK {
		t.Fatal("probe outside feature must not report OK")
	}
	// DarkField polarity flips the feature.
	res = im.MeasureCD(AxisX, 20, 5, 195, 190, 0.4, DarkField)
	if !res.OK {
		t.Fatal("dark-field feature missing")
	}
}

func TestPrintedCoverage(t *testing.T) {
	im := rampImage()
	// I < 0.5 for x < 50: one quarter of the 200-wide window.
	cov := im.PrintedCoverage(geom.R(0, 0, 200, 100), 0.5, ClearField)
	if math.Abs(cov-0.25) > 0.05 {
		t.Fatalf("printed coverage = %g, want ~0.25", cov)
	}
	if got := im.PrintedCoverage(geom.R(500, 500, 600, 600), 0.5, ClearField); got != 0 {
		t.Fatalf("out-of-window coverage = %g", got)
	}
}

func TestSummarizeCDs(t *testing.T) {
	st := SummarizeCDs(nil, nil)
	if st.N != 0 {
		t.Fatal("empty stats")
	}
	st = SummarizeCDs([]float64{90, 100, 110}, []float64{100, 100, 100})
	if st.N != 3 || st.Mean != 100 || st.Min != 90 || st.Max != 110 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.Std-math.Sqrt(200.0/3)) > 1e-9 {
		t.Fatalf("std = %g", st.Std)
	}
	if math.Abs(st.MeanAbsErr-20.0/3) > 1e-9 {
		t.Fatalf("mae = %g", st.MeanAbsErr)
	}
}

func TestProcessWindowCorners(t *testing.T) {
	pw := ProcessWindow{DefocusNM: 120, DoseFrac: 0.05}
	cs := pw.Corners()
	if len(cs) != 5 || cs[0] != Nominal {
		t.Fatalf("corners = %v", cs)
	}
	grid := pw.Sample(3, 3)
	if len(grid) != 9 {
		t.Fatalf("sample grid = %d", len(grid))
	}
	// Extremes present.
	foundMax := false
	for _, c := range grid {
		if c.DefocusNM == 120 && math.Abs(c.Dose-1.05) < 1e-12 {
			foundMax = true
		}
	}
	if !foundMax {
		t.Fatal("sample grid missing extreme corner")
	}
	if got := pw.Sample(0, 0); len(got) != 1 {
		t.Fatalf("degenerate sample = %v", got)
	}
}

func TestContoursOfPrintedLine(t *testing.T) {
	r := testRecipe()
	m, err := NewAbbe(r)
	if err != nil {
		t.Fatal(err)
	}
	rect := geom.R(-80, -400, 80, 400)
	mask := RasterizeRects([]geom.Rect{rect}, r.PixelNM, r.GuardNM)
	im, err := m.Aerial(mask, Nominal)
	if err != nil {
		t.Fatal(err)
	}
	loops := im.Contours(0.3, ClearField)
	if len(loops) == 0 {
		t.Fatal("no contours extracted")
	}
	// The largest loop should be comparable to the drawn rect.
	var best geom.Polygon
	for _, l := range loops {
		if best == nil || l.Area() > best.Area() {
			best = l
		}
	}
	drawn := float64(rect.Area())
	got := float64(best.Area())
	if got < 0.5*drawn || got > 1.6*drawn {
		t.Fatalf("printed contour area %g vs drawn %g", got, drawn)
	}
	// Contour must enclose the feature center.
	if !best.Contains(geom.Pt(0, 0)) {
		t.Fatal("contour does not contain the line center")
	}
}

func TestContoursEmptyImage(t *testing.T) {
	mask := geom.NewRaster(geom.R(0, 0, 300, 300), 10)
	im := NewImage(mask)
	for i := range im.Data {
		im.Data[i] = 1 // all clear field
	}
	if loops := im.Contours(0.3, ClearField); len(loops) != 0 {
		t.Fatalf("contours of clear field = %d", len(loops))
	}
}

func TestImageILS(t *testing.T) {
	im := rampImage()
	// ILS of the ramp at x=100: dI/dx = 0.01, I = 1 -> ILS = 0.01.
	ils := im.ILS(100, 50, 1, 0)
	if math.Abs(ils-0.01) > 1e-3 {
		t.Fatalf("ILS = %g, want 0.01", ils)
	}
	// Perpendicular direction: flat.
	if ils := im.ILS(100, 50, 0, 1); ils > 1e-9 {
		t.Fatalf("perpendicular ILS = %g", ils)
	}
}

func TestLineArrayGeometry(t *testing.T) {
	la := LineArray{WidthNM: 100, PitchNM: 300, Count: 3, LengthNM: 1000}
	rects := la.Rects()
	if len(rects) != 3 {
		t.Fatalf("rects = %d", len(rects))
	}
	xs := la.CenterXs()
	if xs[0] != -300 || xs[1] != 0 || xs[2] != 300 {
		t.Fatalf("centers = %v", xs)
	}
	for i, r := range rects {
		if r.W() != 100 || r.H() != 1000 {
			t.Fatalf("rect %d = %v", i, r)
		}
	}
	if (LineArray{}).Rects() != nil {
		t.Fatal("empty array must have no rects")
	}
}
