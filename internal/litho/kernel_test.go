package litho

import (
	"math"
	"runtime/debug"
	"testing"

	"postopc/internal/geom"
)

// Tests for the optical kernel engine: image background polarity, the
// AerialSeries aliasing contract, filter-bank correctness and the
// steady-state allocation budget of the hot path.

// smallMask is a 3-line pattern on a small window, cheap enough for
// property-style kernel tests.
func smallMask() *geom.Raster {
	la := LineArray{WidthNM: 130, PitchNM: 280, Count: 3, LengthNM: 600}
	ra := geom.NewRaster(geom.R(-640, -640, 640, 640), 10)
	for _, r := range la.Rects() {
		ra.AddRect(r)
	}
	ra.Clamp()
	return ra
}

// TestImageBackgroundPolarity pins the Image.At polarity contract:
// out-of-window reads return the unpatterned-field level of the mask
// polarity — 1.0 for clear field, 0.0 for dark field. (Before the
// Background field existed, dark-field images read 1.0 off the edge, which
// turned the dark surround into printing bright field.)
func TestImageBackgroundPolarity(t *testing.T) {
	dark := testRecipe()
	dark.Polarity = DarkField
	mask := smallMask()
	for _, tc := range []struct {
		name   string
		recipe Recipe
		wantBG float64
	}{
		{"clear-abbe", testRecipe(), 1},
		{"dark-abbe", dark, 0},
	} {
		m, err := NewAbbe(tc.recipe)
		if err != nil {
			t.Fatal(err)
		}
		im, err := m.Aerial(mask, Nominal)
		if err != nil {
			t.Fatal(err)
		}
		if im.Background != tc.wantBG {
			t.Errorf("%s: Background = %g, want %g", tc.name, im.Background, tc.wantBG)
		}
		if got := im.At(-1, -1); got != tc.wantBG {
			t.Errorf("%s: At(-1,-1) = %g, want background %g", tc.name, got, tc.wantBG)
		}
		if got := im.At(im.Nx, 0); got != tc.wantBG {
			t.Errorf("%s: At(Nx,0) = %g, want background %g", tc.name, got, tc.wantBG)
		}
	}
	// The Gaussian model must agree with the Abbe model on the contract.
	gm, err := NewGaussian(dark)
	if err != nil {
		t.Fatal(err)
	}
	im, err := gm.Aerial(mask, Nominal)
	if err != nil {
		t.Fatal(err)
	}
	if im.Background != 0 || im.At(-1, -1) != 0 {
		t.Errorf("dark-gauss: Background=%g At(-1,-1)=%g, want 0", im.Background, im.At(-1, -1))
	}
}

// TestAerialSeriesAliasing pins the documented sharing contract of
// Model.AerialSeries: corners that differ only in dose alias ONE *Image,
// and distinct defoci get distinct images.
func TestAerialSeriesAliasing(t *testing.T) {
	mask := smallMask()
	corners := []Corner{
		{DefocusNM: 0, Dose: 1},
		{DefocusNM: 0, Dose: 1.05}, // same defocus: must alias corner 0
		{DefocusNM: 80, Dose: 1},
		{DefocusNM: 0, Dose: 0.95}, // same defocus: must alias corner 0
		{DefocusNM: 80, Dose: 1.05},
	}
	for _, m := range []Model{newAbbeT(t), newGaussT(t)} {
		imgs, err := m.AerialSeries(mask, corners)
		if err != nil {
			t.Fatal(err)
		}
		if imgs[1] != imgs[0] || imgs[3] != imgs[0] {
			t.Errorf("%T: equal-defocus corners must alias one image", m)
		}
		if imgs[4] != imgs[2] {
			t.Errorf("%T: equal-defocus defocused corners must alias one image", m)
		}
		if imgs[2] == imgs[0] {
			t.Errorf("%T: distinct defoci must not alias", m)
		}
	}
}

// TestAbbeSeriesMatchesSingle checks the multi-corner series path (merged
// spectrum rows, shared transform) against independent single-corner calls.
func TestAbbeSeriesMatchesSingle(t *testing.T) {
	m := newAbbeT(t)
	mask := smallMask()
	corners := []Corner{Nominal, {DefocusNM: 80, Dose: 1}, {DefocusNM: -80, Dose: 1}}
	series, err := m.AerialSeries(mask, corners)
	if err != nil {
		t.Fatal(err)
	}
	for ci, c := range corners {
		single, err := m.Aerial(mask, c)
		if err != nil {
			t.Fatal(err)
		}
		for i := range single.Data {
			if d := math.Abs(series[ci].Data[i] - single.Data[i]); d > 1e-12 {
				t.Fatalf("corner %d pixel %d: series %g vs single %g", ci, i, series[ci].Data[i], single.Data[i])
			}
		}
	}
}

// TestFoldSourceWeights checks the Hermitian mirror folding: folded weights
// sum to the original total and every mirrored pair is merged.
func TestFoldSourceWeights(t *testing.T) {
	src := SampleSource(0, 0.7, 3)
	folded := foldSource(src)
	if len(folded) >= len(src) {
		t.Fatalf("folding did not reduce the source: %d -> %d points", len(src), len(folded))
	}
	var wSrc, wFold float64
	for _, p := range src {
		wSrc += p.Weight
	}
	for _, p := range folded {
		wFold += p.weight
	}
	if math.Abs(wSrc-wFold) > 1e-12 {
		t.Fatalf("folded weight %g != source weight %g", wFold, wSrc)
	}
}

// TestFilterBankReuse checks that repeated Aerial calls hit the same cached
// filter set (pointer equality) instead of rebuilding it, and that the
// shared bank serves distinct model instances built from equal recipes the
// same tables — the read-mostly bank service contract.
func TestFilterBankReuse(t *testing.T) {
	m := newAbbeT(t)
	mask := smallMask()
	if _, err := m.Aerial(mask, Nominal); err != nil {
		t.Fatal(err)
	}
	fs1 := m.filtersFor(128, 128, 10, 0)
	fs2 := m.filtersFor(128, 128, 10, 0)
	if fs1 != fs2 {
		t.Fatal("filter bank rebuilt an existing entry")
	}
	if bank := sharedBank.cur.Load(); bank == nil || len(*bank) == 0 {
		t.Fatal("Aerial did not populate the shared filter bank")
	}
	// A second instance with the same recipe must share the entry.
	other := newAbbeT(t)
	if other == m {
		t.Fatal("test needs distinct instances")
	}
	if fs3 := other.filtersFor(128, 128, 10, 0); fs3 != fs1 {
		t.Fatal("equal-recipe models did not share the bank entry")
	}
	// A different recipe must not collide with the entry.
	rec := testRecipe()
	rec.NA += 0.05
	changed, err := NewAbbe(rec)
	if err != nil {
		t.Fatal(err)
	}
	if fs4 := changed.filtersFor(128, 128, 10, 0); fs4 == fs1 {
		t.Fatal("distinct recipes shared one filter set")
	}
}

// TestKernelAllocBudget asserts the steady-state allocation budget of the
// imaging hot path: with warm pools and filter bank, a window simulation
// allocates only the returned Image (struct + Data) plus the series slice.
// GC is disabled during the measurement so sync.Pool contents survive —
// the budget is about the code path, not GC timing.
func TestKernelAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; budget is asserted in the non-race run")
	}
	mask := smallMask()
	abbe := newAbbeT(t)
	gauss, err := NewGaussianDual(testRecipe(), 120, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	corners := []Corner{Nominal}
	// Warm filter bank and every pool before counting.
	for i := 0; i < 3; i++ {
		if _, err := abbe.AerialSeries(mask, corners); err != nil {
			t.Fatal(err)
		}
		if _, err := gauss.AerialSeries(mask, corners); err != nil {
			t.Fatal(err)
		}
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	const budget = 4
	if got := testing.AllocsPerRun(10, func() {
		if _, err := abbe.AerialSeries(mask, corners); err != nil {
			t.Fatal(err)
		}
	}); got > budget {
		t.Errorf("Abbe AerialSeries allocs/op = %g, budget %d", got, budget)
	}
	if got := testing.AllocsPerRun(10, func() {
		if _, err := gauss.AerialSeries(mask, corners); err != nil {
			t.Fatal(err)
		}
	}); got > budget {
		t.Errorf("Gaussian AerialSeries allocs/op = %g, budget %d", got, budget)
	}
}
