package litho

import "postopc/internal/geom"

// Key serialization for the flow's content-addressed pattern cache: every
// optical input that can change a simulated image must fold into the window
// signature. The model identity tag matters — the same recipe produces
// different images under *Abbe and *Gaussian — as do fitted kernel
// parameters, which are not part of the recipe.

// AppendKey appends the recipe's full optical and resist state.
func (r Recipe) AppendKey(dst []byte) []byte {
	dst = geom.AppendKeyFloat(dst,
		r.WavelengthNM, r.NA, r.SigmaOuter, r.SigmaInner, r.Threshold)
	return geom.AppendKeyInt(dst,
		int64(r.SourceRings), int64(r.PixelNM), int64(r.GuardNM), int64(r.Polarity))
}

// AppendKey appends the process-corner excursion.
func (c Corner) AppendKey(dst []byte) []byte {
	return geom.AppendKeyFloat(dst, c.DefocusNM, c.Dose)
}

// AppendKeyCorners appends a count-prefixed corner list.
func AppendKeyCorners(dst []byte, corners []Corner) []byte {
	dst = geom.AppendKeyInt(dst, int64(len(corners)))
	for _, c := range corners {
		dst = c.AppendKey(dst)
	}
	return dst
}

// AppendKey identifies the Abbe model: its images are fully determined by
// the recipe (the source grid is derived from it deterministically).
func (a *Abbe) AppendKey(dst []byte) []byte {
	dst = geom.AppendKeyString(dst, "abbe")
	return a.recipe.AppendKey(dst)
}

// AppendKey identifies the Gaussian model including the fitted dual-kernel
// parameters, which change the image but live outside the recipe.
func (g *Gaussian) AppendKey(dst []byte) []byte {
	dst = geom.AppendKeyString(dst, "gaussian")
	dst = g.recipe.AppendKey(dst)
	return geom.AppendKeyFloat(dst, g.sigma2NM, g.weight2)
}
