package litho

import (
	"math"
	"testing"

	"postopc/internal/geom"
)

// testRecipe is a 90nm-node-class ArF recipe used throughout the litho
// tests. The pixel is kept coarse (10nm) for speed.
func testRecipe() Recipe {
	return Recipe{
		WavelengthNM: 193,
		NA:           0.85,
		SigmaOuter:   0.7,
		SigmaInner:   0,
		SourceRings:  3,
		Threshold:    0.30,
		PixelNM:      10,
		GuardNM:      400,
		Polarity:     ClearField,
	}
}

func newAbbeT(t *testing.T) *Abbe {
	t.Helper()
	m, err := NewAbbe(testRecipe())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newGaussT(t *testing.T) *Gaussian {
	t.Helper()
	m, err := NewGaussian(testRecipe())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRecipeValidate(t *testing.T) {
	good := testRecipe()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Recipe){
		func(r *Recipe) { r.WavelengthNM = 0 },
		func(r *Recipe) { r.NA = -1 },
		func(r *Recipe) { r.NA = 2 },
		func(r *Recipe) { r.SigmaOuter = 0 },
		func(r *Recipe) { r.SigmaOuter = 1.2 },
		func(r *Recipe) { r.SigmaInner = 0.9 },
		func(r *Recipe) { r.SourceRings = 0 },
		func(r *Recipe) { r.Threshold = 0 },
		func(r *Recipe) { r.Threshold = 1 },
		func(r *Recipe) { r.PixelNM = 0 },
		func(r *Recipe) { r.GuardNM = -1 },
	}
	for i, mod := range bad {
		r := testRecipe()
		mod(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestRecipeDerived(t *testing.T) {
	r := testRecipe()
	if hp := r.RayleighHalfPitch(); math.Abs(hp-113.5) > 1 {
		t.Fatalf("half pitch = %g", hp)
	}
	if dof := r.DepthOfFocus(); math.Abs(dof-267.1) > 1 {
		t.Fatalf("DOF = %g", dof)
	}
	if th := r.EffectiveThreshold(Corner{Dose: 1.1}); math.Abs(th-0.30/1.1) > 1e-12 {
		t.Fatalf("effective threshold = %g", th)
	}
	if th := r.EffectiveThreshold(Corner{Dose: 0}); th != r.Threshold {
		t.Fatalf("zero dose threshold = %g", th)
	}
}

func TestSampleSourceWeights(t *testing.T) {
	for _, tc := range []struct {
		inner, outer float64
		rings        int
	}{
		{0, 0.7, 3}, {0.5, 0.8, 4}, {0, 0.9, 1}, {0, 0.5, 5},
	} {
		pts := SampleSource(tc.inner, tc.outer, tc.rings)
		if len(pts) == 0 {
			t.Fatalf("no source points for %+v", tc)
		}
		var sum float64
		for _, p := range pts {
			sum += p.Weight
			r := math.Hypot(p.SX, p.SY)
			if r > tc.outer+1e-9 {
				t.Fatalf("source point outside sigma: %v", p)
			}
			if r < tc.inner-1e-9 {
				t.Fatalf("source point inside annulus hole: %v", p)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("weights sum to %g", sum)
		}
	}
	// Coherent special case.
	pts := SampleSource(0, 0.7, 1)
	if len(pts) < 4 {
		t.Fatalf("single ring should still sample the disk, got %d points", len(pts))
	}
}

func TestAbbeClearField(t *testing.T) {
	m := newAbbeT(t)
	mask := geom.NewRaster(geom.R(0, 0, 1000, 1000), 10) // empty mask
	im, err := m.Aerial(mask, Nominal)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := im.MinMax()
	if math.Abs(lo-1) > 1e-6 || math.Abs(hi-1) > 1e-6 {
		t.Fatalf("clear field intensity = [%g, %g], want 1", lo, hi)
	}
}

func TestGaussianClearField(t *testing.T) {
	m := newGaussT(t)
	mask := geom.NewRaster(geom.R(0, 0, 1000, 1000), 10)
	im, err := m.Aerial(mask, Nominal)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := im.MinMax()
	if math.Abs(lo-1) > 1e-9 || math.Abs(hi-1) > 1e-9 {
		t.Fatalf("clear field intensity = [%g, %g], want 1", lo, hi)
	}
}

func TestAbbeWideLineDark(t *testing.T) {
	m := newAbbeT(t)
	// A very wide chrome pad: center must be nearly dark.
	mask := RasterizeRects([]geom.Rect{geom.R(-600, -600, 600, 600)}, 10, 400)
	im, err := m.Aerial(mask, Nominal)
	if err != nil {
		t.Fatal(err)
	}
	if v := im.Sample(0, 0); v > 0.02 {
		t.Fatalf("center of wide pad = %g, want ~0", v)
	}
	// Far away from the pad: clear field.
	if v := im.Sample(950, 950); math.Abs(v-1) > 0.05 {
		t.Fatalf("far field = %g, want ~1", v)
	}
}

func measureLineCD(t *testing.T, m Model, width, pitch geom.Coord, c Corner, th float64) float64 {
	t.Helper()
	la := LineArray{WidthNM: width, PitchNM: pitch, Count: 7, LengthNM: 2000}
	mask := RasterizeRects(la.Rects(), m.Recipe().PixelNM, m.Recipe().GuardNM)
	im, err := m.Aerial(mask, c)
	if err != nil {
		t.Fatal(err)
	}
	centers := la.CenterXs()
	mid := centers[len(centers)/2]
	half := float64(pitch) / 2
	res := im.MeasureCD(AxisX, 0, mid-half, mid+half, mid, th, m.Recipe().Polarity)
	if !res.OK {
		t.Fatalf("line (w=%d p=%d) did not print", width, pitch)
	}
	return res.CD
}

func TestAbbeLinePrints(t *testing.T) {
	m := newAbbeT(t)
	th := m.Recipe().Threshold
	cd := measureLineCD(t, m, 130, 390, Nominal, th)
	// Uncalibrated threshold: printed CD within ~40% of drawn.
	if cd < 80 || cd > 190 {
		t.Fatalf("printed CD = %g for drawn 130", cd)
	}
}

func TestIsoDenseBias(t *testing.T) {
	// The printed CD of a dense line differs from an isolated line of the
	// same drawn width — the proximity effect OPC exists to fix.
	m := newAbbeT(t)
	th := m.Recipe().Threshold
	dense := measureLineCD(t, m, 130, 280, Nominal, th)
	iso := measureLineCD(t, m, 130, 1400, Nominal, th)
	if math.Abs(dense-iso) < 2 {
		t.Fatalf("iso-dense bias suspiciously small: dense=%g iso=%g", dense, iso)
	}
}

func TestDefocusDegradesImage(t *testing.T) {
	m := newAbbeT(t)
	la := LineArray{WidthNM: 130, PitchNM: 280, Count: 7, LengthNM: 2000}
	mask := RasterizeRects(la.Rects(), 10, 400)
	imgs, err := m.AerialSeries(mask, []Corner{Nominal, {DefocusNM: 150, Dose: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Image log slope at the drawn edge must drop with defocus.
	edgeX := la.CenterXs()[3] + 65
	ils0 := imgs[0].ILS(edgeX, 0, 1, 0)
	ils1 := imgs[1].ILS(edgeX, 0, 1, 0)
	if ils1 >= ils0 {
		t.Fatalf("defocus did not degrade ILS: %g -> %g", ils0, ils1)
	}
}

func TestAerialSeriesSharesDoseCorners(t *testing.T) {
	m := newAbbeT(t)
	mask := RasterizeRects([]geom.Rect{geom.R(-65, -500, 65, 500)}, 10, 400)
	imgs, err := m.AerialSeries(mask, []Corner{
		{DefocusNM: 0, Dose: 0.95},
		{DefocusNM: 0, Dose: 1.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Dose-only corners must share the identical image.
	if imgs[0] != imgs[1] {
		t.Fatal("dose-only corners should share one simulated image")
	}
}

func TestGaussianTracksAbbe(t *testing.T) {
	// The fast model should agree with Abbe on a comfortable feature to
	// within ~15nm of CD.
	ab := newAbbeT(t)
	ga := newGaussT(t)
	th := 0.3
	cdA := measureLineCD(t, ab, 180, 540, Nominal, th)
	cdG := measureLineCD(t, ga, 180, 540, Nominal, th)
	if math.Abs(cdA-cdG) > 20 {
		t.Fatalf("fast model CD %g vs Abbe %g", cdG, cdA)
	}
}

func TestCalibrateThreshold(t *testing.T) {
	m := newAbbeT(t)
	th, err := CalibrateThreshold(m, 130, 390)
	if err != nil {
		t.Fatal(err)
	}
	if th <= 0.05 || th >= 0.9 {
		t.Fatalf("calibrated threshold = %g out of plausible range", th)
	}
	// With the calibrated threshold the reference line prints at size.
	cd := measureLineCD(t, m, 130, 390, Nominal, th)
	if math.Abs(cd-130) > 2.5 {
		t.Fatalf("calibrated CD = %g, want 130±2.5", cd)
	}
}

func TestDoseMovesCD(t *testing.T) {
	m := newAbbeT(t)
	r := m.Recipe()
	th, err := CalibrateThreshold(m, 130, 390)
	if err != nil {
		t.Fatal(err)
	}
	overdose := r
	overdose.Threshold = th
	// Higher dose -> lower effective threshold -> thinner clear-field line.
	cdNom := measureLineCD(t, m, 130, 390, Nominal, overdose.EffectiveThreshold(Nominal))
	cdOver := measureLineCD(t, m, 130, 390, Corner{Dose: 1.1}, overdose.EffectiveThreshold(Corner{Dose: 1.1}))
	if cdOver >= cdNom {
		t.Fatalf("overdose must thin the line: %g -> %g", cdNom, cdOver)
	}
}
