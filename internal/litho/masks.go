package litho

import "postopc/internal/geom"

// LineArray describes a test pattern of parallel vertical lines, the
// standard structure for CD-through-pitch characterization.
type LineArray struct {
	// WidthNM is the drawn line width (the CD).
	WidthNM geom.Coord
	// PitchNM is the line-to-line pitch; PitchNM == 0 or a single line
	// means isolated.
	PitchNM geom.Coord
	// Count is the number of lines.
	Count int
	// LengthNM is the line length (vertical extent).
	LengthNM geom.Coord
}

// Rects returns the drawn rectangles of the array, centered on the origin.
func (la LineArray) Rects() []geom.Rect {
	if la.Count < 1 {
		return nil
	}
	pitch := la.PitchNM
	if pitch == 0 {
		pitch = la.WidthNM * 10
	}
	span := geom.Coord(la.Count-1) * pitch
	var out []geom.Rect
	for i := 0; i < la.Count; i++ {
		cx := -span/2 + geom.Coord(i)*pitch
		out = append(out, geom.R(cx-la.WidthNM/2, -la.LengthNM/2, cx+la.WidthNM/2, la.LengthNM/2))
	}
	return out
}

// CenterXs returns the x coordinate of each line center.
func (la LineArray) CenterXs() []float64 {
	pitch := la.PitchNM
	if pitch == 0 {
		pitch = la.WidthNM * 10
	}
	span := float64(la.Count-1) * float64(pitch)
	var out []float64
	for i := 0; i < la.Count; i++ {
		out = append(out, -span/2+float64(i)*float64(pitch))
	}
	return out
}

// RasterizeRects builds a mask raster covering the bounding box of rects
// expanded by guard, at the given pixel pitch.
func RasterizeRects(rects []geom.Rect, pixel, guard geom.Coord) *geom.Raster {
	var bb geom.Rect
	for _, r := range rects {
		bb = bb.Union(r)
	}
	ra := geom.NewRaster(bb.Expand(guard), pixel)
	for _, r := range rects {
		ra.AddRect(r)
	}
	ra.Clamp()
	return ra
}

// RasterizeInWindow builds a mask raster over exactly the given window (no
// extra guard — the caller's window already includes it), at the given
// pixel pitch. The raster comes from an internal pool: callers that are done
// with it (and hold no aliases of its Data) should hand it back with
// RecycleRaster so full-chip window loops rasterize without allocating.
func RasterizeInWindow(polys []geom.Polygon, window geom.Rect, pixel geom.Coord) *geom.Raster {
	ra := borrowRaster(window, pixel)
	for _, pg := range polys {
		ra.AddPolygon(pg)
	}
	ra.Clamp()
	return ra
}

// RasterizePolygons builds a mask raster for arbitrary polygons (OPC output
// is rectilinear but not rectangular).
func RasterizePolygons(polys []geom.Polygon, pixel, guard geom.Coord) *geom.Raster {
	var bb geom.Rect
	for _, pg := range polys {
		bb = bb.Union(pg.BBox())
	}
	ra := geom.NewRaster(bb.Expand(guard), pixel)
	for _, pg := range polys {
		ra.AddPolygon(pg)
	}
	ra.Clamp()
	return ra
}
