//go:build !race

package litho

const raceEnabled = false
