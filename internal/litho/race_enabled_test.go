//go:build race

package litho

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates on its own, so allocation-budget assertions
// skip under -race.
const raceEnabled = true
