// Package litho simulates optical projection lithography: partially coherent
// aerial-image formation (Abbe source-point summation), a constant-threshold
// resist model, process-window (focus/dose) excursions, printed-contour
// extraction and CD measurement.
//
// This is the "patterning process simulation" substrate of the post-OPC
// timing flow. It is physically faithful but uncalibrated: wavelength, NA
// and partial coherence are real knobs, and proximity behaviour (iso-dense
// bias, line-end pullback, corner rounding) emerges from the optics rather
// than from fitted heuristics.
package litho

import (
	"fmt"

	"postopc/internal/geom"
)

// Polarity selects which side of the resist threshold prints.
type Polarity int

const (
	// ClearField: mask features are opaque (chrome) lines on a clear
	// background; resist feature remains where intensity is BELOW the
	// threshold. This is how poly gates print.
	ClearField Polarity = iota
	// DarkField: mask features are openings in chrome; the feature prints
	// where intensity is ABOVE the threshold (contacts, vias).
	DarkField
)

// Recipe holds the optical and resist settings of the exposure tool.
type Recipe struct {
	// WavelengthNM is the exposure wavelength λ in nm (193 for ArF).
	WavelengthNM float64
	// NA is the numerical aperture of the projection lens.
	NA float64
	// SigmaOuter is the outer partial-coherence factor of the source.
	SigmaOuter float64
	// SigmaInner is the inner radius for annular illumination
	// (0 = conventional disk source).
	SigmaInner float64
	// SourceRings controls Abbe source sampling density: the number of
	// concentric rings used to sample the source. Typical 3–5.
	SourceRings int
	// Threshold is the constant resist threshold as a fraction of the
	// clear-field intensity (0 < Threshold < 1).
	Threshold float64
	// PixelNM is the simulation raster pitch in nm.
	PixelNM geom.Coord
	// GuardNM is the optical guard band clipped around every simulation
	// window so that FFT periodicity does not contaminate the result.
	GuardNM geom.Coord
	// Polarity selects the print convention (ClearField for poly).
	Polarity Polarity
}

// Validate checks the recipe for physically meaningful settings.
func (r Recipe) Validate() error {
	switch {
	case r.WavelengthNM <= 0:
		return fmt.Errorf("litho: wavelength %g must be positive", r.WavelengthNM)
	case r.NA <= 0 || r.NA >= 1.6:
		return fmt.Errorf("litho: NA %g out of range (0, 1.6)", r.NA)
	case r.SigmaOuter <= 0 || r.SigmaOuter > 1:
		return fmt.Errorf("litho: sigma outer %g out of range (0, 1]", r.SigmaOuter)
	case r.SigmaInner < 0 || r.SigmaInner >= r.SigmaOuter:
		return fmt.Errorf("litho: sigma inner %g out of range [0, outer)", r.SigmaInner)
	case r.SourceRings < 1:
		return fmt.Errorf("litho: source rings %d must be >= 1", r.SourceRings)
	case r.Threshold <= 0 || r.Threshold >= 1:
		return fmt.Errorf("litho: threshold %g out of range (0, 1)", r.Threshold)
	case r.PixelNM <= 0:
		return fmt.Errorf("litho: pixel pitch %d must be positive", r.PixelNM)
	case r.GuardNM < 0:
		return fmt.Errorf("litho: guard band %d must be non-negative", r.GuardNM)
	}
	return nil
}

// RayleighHalfPitch returns the classic resolution estimate
// k1·λ/NA with k1 = 0.5 (smallest half pitch the optics can form with
// conventional illumination), in nm.
func (r Recipe) RayleighHalfPitch() float64 {
	return 0.5 * r.WavelengthNM / r.NA
}

// DepthOfFocus returns the Rayleigh depth of focus λ/NA² in nm.
func (r Recipe) DepthOfFocus() float64 {
	return r.WavelengthNM / (r.NA * r.NA)
}

// Corner is one process-window condition: a focus excursion and a dose
// multiplier. The nominal condition is {0, 1}.
type Corner struct {
	// DefocusNM is the focus error in nm (0 = best focus).
	DefocusNM float64
	// Dose is the relative exposure dose (1 = nominal). Higher dose moves
	// the printed edge of a clear-field line inward (thinner line).
	Dose float64
}

// Nominal is the centered process condition.
var Nominal = Corner{DefocusNM: 0, Dose: 1}

// EffectiveThreshold folds the dose excursion into the resist threshold:
// increasing the dose scales the delivered intensity, which is equivalent to
// lowering the threshold on the nominal image.
func (r Recipe) EffectiveThreshold(c Corner) float64 {
	if c.Dose <= 0 {
		return r.Threshold
	}
	return r.Threshold / c.Dose
}

// Model computes aerial images for mask rasters under a process corner.
// Implementations: *Abbe (physical, slower) and *Gaussian (approximate,
// fast — for tests and quick sweeps).
type Model interface {
	// Aerial returns the aerial-image intensity over the mask raster's
	// window, normalized so the clear-field intensity is 1.0. The mask
	// raster holds feature coverage in [0,1] (1 = fully covered by the
	// drawn/chrome feature).
	Aerial(mask *geom.Raster, c Corner) (*Image, error)
	// AerialSeries computes images for several corners, sharing work where
	// the model permits: dose never changes the image, so corners that
	// share a defocus alias ONE *Image in the returned slice (the same
	// pointer appears at every such index). Callers must treat the
	// returned images as immutable — mutating one mutates it for every
	// corner that shares it.
	AerialSeries(mask *geom.Raster, corners []Corner) ([]*Image, error)
	// Recipe returns the optical settings of the model.
	Recipe() Recipe
	// AppendKey appends a serialization of the model's identity and every
	// parameter that can change its images — used by content-addressed
	// caches to build window signatures. Two models whose keys are equal
	// must produce bit-identical images for equal inputs.
	AppendKey(dst []byte) []byte
}
