package litho

import (
	"sync"
	"sync/atomic"

	"postopc/internal/geom"
	"postopc/internal/obs"
)

// Scratch pooling for the imaging kernels. A single window simulation
// needs several full-size float work buffers (intensity accumulator,
// transmission amplitude, convolution fields and pad rows); full-chip runs
// simulate thousands of equally-sized windows from concurrent workers, so
// the buffers are recycled through sync.Pools and steady-state simulation
// allocates only the returned *Image.
//
// Lifetime rules: a kernelScratch (and every slice grown from it) is owned
// by exactly one Aerial/AerialSeries call between borrow and release, and
// nothing borrowed may escape into a returned value — returned Images
// always own freshly allocated Data. Borrowed buffers come back with
// unspecified contents; every consumer fully overwrites or zeroes before
// reading, which also keeps results independent of pool history.

// poolCounters are the telemetry handles of the package-level scratch
// pools: borrow/return counters whose difference is the number of buffers
// currently checked out (a leak detector — in steady state the balance is
// the number of in-flight simulations).
type poolCounters struct {
	borrows, returns *obs.Counter
}

// poolObs holds the active pool telemetry; an atomic pointer so
// InstrumentPools is safe to call while concurrent workers borrow. A nil
// pointer (the default) costs one atomic load per borrow/return.
var poolObs atomic.Pointer[poolCounters]

// InstrumentPools attaches telemetry to the package's scratch pools
// (kernel scratch and mask rasters): "litho.pool_borrows_total" and
// "litho.pool_returns_total". A nil or disabled sink detaches.
func InstrumentPools(sink *obs.Sink) {
	if !sink.Enabled() {
		poolObs.Store(nil)
		return
	}
	poolObs.Store(&poolCounters{
		borrows: sink.Counter("litho.pool_borrows_total"),
		returns: sink.Counter("litho.pool_returns_total"),
	})
}

//postopc:allocfree
func poolBorrowed() {
	if pc := poolObs.Load(); pc != nil {
		pc.borrows.Inc()
	}
}

//postopc:allocfree
func poolReturned() {
	if pc := poolObs.Load(); pc != nil {
		pc.returns.Inc()
	}
}

// kernelScratch carries the per-call work buffers of both kernels.
type kernelScratch struct {
	acc   []float64 // Abbe: weighted intensity accumulator (padded grid)
	amp   []float64 // Gaussian: transmission amplitude
	field []float64 // Gaussian: convolved amplitude field
	wide  []float64 // Gaussian: secondary (broad) kernel field
	tmp   []float64 // Gaussian: horizontal-pass intermediate
	pad   []float64 // Gaussian: background-padded row
	kern  []float64 // Gaussian: normalized 1-D kernel taps
}

var kernelScratchPool = sync.Pool{New: func() interface{} { return new(kernelScratch) }}

//postopc:allocfree
func borrowKernelScratch() *kernelScratch {
	poolBorrowed()
	return kernelScratchPool.Get().(*kernelScratch)
}

//postopc:allocfree
func (s *kernelScratch) release() {
	poolReturned()
	kernelScratchPool.Put(s)
}

// growFloats returns a slice of length n, reusing s when its capacity
// allows. Contents are unspecified.
//
//postopc:allocfree
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n) //postopc:nolint:allocbudget growth at a new buffer size is the cold path
	}
	return s[:n]
}

// rasterPool recycles mask rasters for the window pipeline: the raster is
// scratch — models read it during Aerial and never retain it — so staged
// callers hand it back with RecycleRaster once imaging is done.
var rasterPool sync.Pool

//postopc:allocfree
func borrowRaster(window geom.Rect, pixel geom.Coord) *geom.Raster {
	poolBorrowed()
	ra, _ := rasterPool.Get().(*geom.Raster)
	if ra == nil {
		ra = new(geom.Raster) //postopc:nolint:allocbudget pool miss before warm-up is the cold path
	}
	ra.Reset(window, pixel)
	return ra
}

// RecycleRaster returns a raster obtained from RasterizeInWindow to the
// internal pool. The caller must not use ra (or aliases of its Data)
// afterwards. Safe to call with nil.
//
//postopc:allocfree
func RecycleRaster(ra *geom.Raster) {
	if ra != nil {
		poolReturned()
		rasterPool.Put(ra)
	}
}
