package litho

import "math"

// SourcePoint is one Abbe sample of the illumination source in pupil
// coordinates (units of NA/λ; |σ| ≤ 1 lies within the pupil).
type SourcePoint struct {
	SX, SY float64 // normalized source coordinates (σ units)
	Weight float64 // normalized so all weights sum to 1
}

// SampleSource discretizes a conventional (disk) or annular source into
// concentric rings of points. The sampling is deterministic: ring radii are
// the midpoints of equal-width annular bands, and each ring carries a point
// count proportional to its circumference so the areal density is uniform.
func SampleSource(sigmaInner, sigmaOuter float64, rings int) []SourcePoint {
	if rings < 1 {
		rings = 1
	}
	var pts []SourcePoint
	band := (sigmaOuter - sigmaInner) / float64(rings)
	var totalW float64
	for k := 0; k < rings; k++ {
		r := sigmaInner + (float64(k)+0.5)*band
		// Points per ring proportional to radius, minimum 4, rounded to a
		// multiple of 4 to keep the sampling 4-fold symmetric.
		n := int(math.Round(2*math.Pi*r/band)) / 4 * 4
		if n < 4 {
			n = 4
		}
		// Weight of the whole ring equals its band area.
		ringArea := math.Pi * (sq(r+band/2) - sq(r-band/2))
		w := ringArea / float64(n)
		// Stagger alternate rings by half a step to avoid angular aliasing.
		phase := 0.0
		if k%2 == 1 {
			phase = math.Pi / float64(n)
		}
		for i := 0; i < n; i++ {
			th := phase + 2*math.Pi*float64(i)/float64(n)
			pts = append(pts, SourcePoint{r * math.Cos(th), r * math.Sin(th), w})
			totalW += w
		}
	}
	for i := range pts {
		pts[i].Weight /= totalW
	}
	return pts
}

func sq(x float64) float64 { return x * x }
