package litho

import "fmt"

// ProcessWindow is the set of focus/dose excursions a design must survive.
type ProcessWindow struct {
	// DefocusNM is the maximum focus error (±) in nm.
	DefocusNM float64
	// DoseFrac is the maximum relative dose error (±), e.g. 0.05 for ±5%.
	DoseFrac float64
}

// Corners returns the nominal condition plus the four extreme corners of
// the window, nominal first. Because a positive focus excursion images the
// same as a negative one for thin masks (paraxial defocus is symmetric),
// only the positive defocus branch is simulated; dose excursions are free.
func (pw ProcessWindow) Corners() []Corner {
	return []Corner{
		Nominal,
		{DefocusNM: pw.DefocusNM, Dose: 1 - pw.DoseFrac},
		{DefocusNM: pw.DefocusNM, Dose: 1 + pw.DoseFrac},
		{DefocusNM: 0, Dose: 1 - pw.DoseFrac},
		{DefocusNM: 0, Dose: 1 + pw.DoseFrac},
	}
}

// Sample returns an (nf × nd) grid of corners spanning the window,
// including the extremes — used for full process-window CD maps.
func (pw ProcessWindow) Sample(nf, nd int) []Corner {
	if nf < 1 {
		nf = 1
	}
	if nd < 1 {
		nd = 1
	}
	var out []Corner
	for i := 0; i < nf; i++ {
		var z float64
		if nf == 1 {
			z = 0
		} else {
			z = pw.DefocusNM * float64(i) / float64(nf-1)
		}
		for j := 0; j < nd; j++ {
			var d float64
			if nd == 1 {
				d = 1
			} else {
				d = 1 - pw.DoseFrac + 2*pw.DoseFrac*float64(j)/float64(nd-1)
			}
			out = append(out, Corner{DefocusNM: z, Dose: d})
		}
	}
	return out
}

// String implements fmt.Stringer.
func (c Corner) String() string {
	return fmt.Sprintf("f=%+.0fnm d=%.2f", c.DefocusNM, c.Dose)
}
