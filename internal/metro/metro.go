// Package metro implements design-driven metrology planning: instead of
// measuring (or simulating) every gate on the chip, gate sites are grouped
// into layout-context classes — same cell, same device, same abutting
// neighbours — and a few representatives per class are measured; the class
// statistics then annotate every member. This is the CD-SEM sampling
// methodology of the paper's authors (design-based metrology), and it is
// what makes the extraction flow affordable on real chips: the class count
// grows with the library, not the gate count.
package metro

import (
	"fmt"
	"sort"

	"postopc/internal/geom"
	"postopc/internal/layout"
)

// Site is one plannable measurement target.
type Site struct {
	// Gate is the instance name; Local the device within it.
	Gate, Local string
	// Class is the context-class signature the site belongs to.
	Class string
	// Channel is the drawn gate in chip coordinates.
	Channel geom.Rect
}

// Plan is a metrology sampling plan.
type Plan struct {
	// Classes maps class signature -> member sites (deterministic order).
	Classes map[string][]Site
	// Selected are the sites to actually measure, per class.
	Selected []Site
	// PerClass is the sampling depth used.
	PerClass int
}

// Classify groups every gate site on the chip into context classes. The
// signature captures the intra-cell context exactly (cell + device name +
// orientation) and the inter-cell context by the abutting neighbour cells
// — the resolution at which the optical neighbourhood repeats in a
// row-based layout.
func Classify(chip *layout.Chip) map[string][]Site {
	classes := map[string][]Site{}
	for i := range chip.Instances {
		inst := &chip.Instances[i]
		if len(inst.Cell.Gates) == 0 {
			continue
		}
		left, right := neighbours(chip, inst)
		for _, g := range inst.Cell.Gates {
			sig := fmt.Sprintf("%s/%s/o%d|L:%s|R:%s", inst.Cell.Name, g.Name, inst.Orient, left, right)
			classes[sig] = append(classes[sig], Site{
				Gate:    inst.Name,
				Local:   g.Name,
				Class:   sig,
				Channel: inst.TransformRect(g.Channel),
			})
		}
	}
	for _, sites := range classes {
		sort.Slice(sites, func(i, j int) bool {
			if sites[i].Gate != sites[j].Gate {
				return sites[i].Gate < sites[j].Gate
			}
			return sites[i].Local < sites[j].Local
		})
	}
	return classes
}

// neighbours names the cells abutting an instance in its row ("edge" when
// none).
func neighbours(chip *layout.Chip, inst *layout.Instance) (left, right string) {
	left, right = "edge", "edge"
	b := inst.Bounds()
	probeL := geom.R(b.X0-10, b.Y0+10, b.X0-1, b.Y1-10)
	probeR := geom.R(b.X1+1, b.Y0+10, b.X1+10, b.Y1-10)
	for _, o := range chip.InstancesIn(probeL) {
		if o != inst {
			left = o.Cell.Name
		}
	}
	for _, o := range chip.InstancesIn(probeR) {
		if o != inst {
			right = o.Cell.Name
		}
	}
	return
}

// NewPlan classifies the chip and selects perClass representatives of
// every class (the first members in deterministic order — corresponding
// to a fab picking fixed die locations).
func NewPlan(chip *layout.Chip, perClass int) *Plan {
	if perClass < 1 {
		perClass = 1
	}
	p := &Plan{Classes: Classify(chip), PerClass: perClass}
	sigs := make([]string, 0, len(p.Classes))
	for sig := range p.Classes {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		members := p.Classes[sig]
		k := perClass
		if k > len(members) {
			k = len(members)
		}
		p.Selected = append(p.Selected, members[:k]...)
	}
	return p
}

// Gates returns the distinct instance names the plan needs measured.
func (p *Plan) Gates() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range p.Selected {
		if !seen[s.Gate] {
			seen[s.Gate] = true
			out = append(out, s.Gate)
		}
	}
	sort.Strings(out)
	return out
}

// Coverage summarizes the plan.
type Coverage struct {
	TotalSites, Classes, Measured int
	// SamplingFraction = Measured / TotalSites.
	SamplingFraction float64
}

// Coverage computes plan statistics.
func (p *Plan) Coverage() Coverage {
	total := 0
	for _, m := range p.Classes {
		total += len(m)
	}
	c := Coverage{TotalSites: total, Classes: len(p.Classes), Measured: len(p.Selected)}
	if total > 0 {
		c.SamplingFraction = float64(c.Measured) / float64(total)
	}
	return c
}

// Inference spreads measured per-site values to every class member.
type Inference struct {
	// ClassMean maps class signature -> mean measured value.
	ClassMean map[string]float64
	plan      *Plan
}

// Infer averages the measured values (keyed "gate/local") per class.
func (p *Plan) Infer(measured map[string]float64) (*Inference, error) {
	inf := &Inference{ClassMean: map[string]float64{}, plan: p}
	counts := map[string]int{}
	for _, s := range p.Selected {
		v, ok := measured[s.Gate+"/"+s.Local]
		if !ok {
			return nil, fmt.Errorf("metro: selected site %s/%s not measured", s.Gate, s.Local)
		}
		inf.ClassMean[s.Class] += v
		counts[s.Class]++
	}
	for sig, c := range counts {
		inf.ClassMean[sig] /= float64(c)
	}
	return inf, nil
}

// Predict returns the inferred value for any site on the chip (measured or
// not) and whether its class was covered.
func (inf *Inference) Predict(site Site) (float64, bool) {
	v, ok := inf.ClassMean[site.Class]
	return v, ok
}

// PredictAll returns predictions for every site on the chip, keyed
// "gate/local".
func (inf *Inference) PredictAll() map[string]float64 {
	out := map[string]float64{}
	for _, members := range inf.plan.Classes {
		for _, s := range members {
			if v, ok := inf.Predict(s); ok {
				out[s.Gate+"/"+s.Local] = v
			}
		}
	}
	return out
}
