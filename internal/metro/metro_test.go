package metro

import (
	"math"
	"testing"

	"postopc/internal/netlist"
	"postopc/internal/pdk"
	"postopc/internal/place"
	"postopc/internal/stdcell"
)

func placedChip(t *testing.T) (*place.Result, *netlist.Netlist) {
	t.Helper()
	lib, err := stdcell.NewLibrary(pdk.N90())
	if err != nil {
		t.Fatal(err)
	}
	n := netlist.Datapath(8, 6, 4)
	pl, err := place.Place(n, lib, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return pl, n
}

func TestClassifyCoversAllGates(t *testing.T) {
	pl, _ := placedChip(t)
	classes := Classify(pl.Chip)
	total := 0
	for _, m := range classes {
		total += len(m)
	}
	want := len(pl.Chip.AllGateSites())
	// Fill cells have no gates; everything else must be classified.
	if total != want {
		t.Fatalf("classified %d sites, want %d", total, want)
	}
	// Members of one class share cell-derived geometry (same channel
	// dimensions).
	for sig, m := range classes {
		for _, s := range m[1:] {
			if s.Channel.W() != m[0].Channel.W() || s.Channel.H() != m[0].Channel.H() {
				t.Fatalf("class %s mixes geometries", sig)
			}
		}
	}
}

func TestPlanSelectionAndCoverage(t *testing.T) {
	pl, _ := placedChip(t)
	p := NewPlan(pl.Chip, 2)
	cov := p.Coverage()
	if cov.Classes == 0 || cov.Measured == 0 || cov.TotalSites == 0 {
		t.Fatalf("coverage: %+v", cov)
	}
	if cov.Measured > cov.TotalSites {
		t.Fatal("measured more than exists")
	}
	if cov.SamplingFraction <= 0 || cov.SamplingFraction > 1 {
		t.Fatalf("fraction = %g", cov.SamplingFraction)
	}
	// Sampling saves work on repetitive designs: an inverter chain has a
	// handful of context classes regardless of length.
	lib, err := stdcell.NewLibrary(pdk.N90())
	if err != nil {
		t.Fatal(err)
	}
	chain, err := place.Place(netlist.InverterChain(60), lib, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cchain := NewPlan(chain.Chip, 2).Coverage()
	if cchain.SamplingFraction > 0.5 {
		t.Fatalf("repetitive chain should compress: fraction %.2f (classes %d of %d sites)",
			cchain.SamplingFraction, cchain.Classes, cchain.TotalSites)
	}
	// Per-class cap respected.
	perClass := map[string]int{}
	for _, s := range p.Selected {
		perClass[s.Class]++
		if perClass[s.Class] > 2 {
			t.Fatalf("class %s oversampled", s.Class)
		}
	}
	// Gates list is deduplicated and sorted.
	gates := p.Gates()
	for i := 1; i < len(gates); i++ {
		if gates[i-1] >= gates[i] {
			t.Fatal("gates not sorted/deduped")
		}
	}
}

func TestInferencePredictsClassMeans(t *testing.T) {
	pl, _ := placedChip(t)
	p := NewPlan(pl.Chip, 2)
	// Synthetic measurement: value depends only on the class (plus a
	// deterministic perturbation below the class spread).
	classIndex := map[string]float64{}
	i := 0.0
	for sig := range p.Classes {
		classIndex[sig] = i
		i++
	}
	measured := map[string]float64{}
	for _, s := range p.Selected {
		measured[s.Gate+"/"+s.Local] = 90 + classIndex[s.Class]
	}
	inf, err := p.Infer(measured)
	if err != nil {
		t.Fatal(err)
	}
	preds := inf.PredictAll()
	// Every site on the chip gets a prediction equal to its class value.
	for sig, members := range p.Classes {
		for _, s := range members {
			got, ok := preds[s.Gate+"/"+s.Local]
			if !ok {
				t.Fatalf("no prediction for %s/%s", s.Gate, s.Local)
			}
			if math.Abs(got-(90+classIndex[sig])) > 1e-12 {
				t.Fatalf("prediction %g for class %s", got, sig)
			}
		}
	}
}

func TestInferMissingMeasurement(t *testing.T) {
	pl, _ := placedChip(t)
	p := NewPlan(pl.Chip, 1)
	if _, err := p.Infer(map[string]float64{}); err == nil {
		t.Fatal("missing measurements accepted")
	}
}

func TestNeighbourSignatureMatters(t *testing.T) {
	pl, _ := placedChip(t)
	classes := Classify(pl.Chip)
	// There must exist at least two classes with the same cell/device but
	// different neighbours (the datapath shuffles cell order per chain).
	prefixes := map[string]map[string]bool{}
	for sig := range classes {
		pre := sig[:len(sig)-0]
		// prefix = part before the neighbour fields
		if i := indexOf(sig, "|L:"); i > 0 {
			pre = sig[:i]
		}
		if prefixes[pre] == nil {
			prefixes[pre] = map[string]bool{}
		}
		prefixes[pre][sig] = true
	}
	found := false
	for _, sigs := range prefixes {
		if len(sigs) > 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("neighbour context never differentiated any class")
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
