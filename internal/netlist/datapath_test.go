package netlist

import (
	"bytes"
	"testing"
)

func TestDatapathShape(t *testing.T) {
	n := Datapath(8, 10, 1)
	if len(n.Gates) != 80 {
		t.Fatalf("gates = %d, want 80", len(n.Gates))
	}
	if len(n.Outputs) != 8 {
		t.Fatalf("outputs = %d, want 8", len(n.Outputs))
	}
	// 8 side inputs + 8 chain inputs.
	if len(n.Inputs) != 16 {
		t.Fatalf("inputs = %d, want 16", len(n.Inputs))
	}
	if _, err := n.Connectivity(lib(t)); err != nil {
		t.Fatal(err)
	}
}

func TestDatapathChainsShareCellMultiset(t *testing.T) {
	n := Datapath(6, 12, 7)
	// Count cells per chain: gates are emitted chain by chain, 12 each.
	counts := make([]map[string]int, 6)
	for c := 0; c < 6; c++ {
		counts[c] = map[string]int{}
		for g := 0; g < 12; g++ {
			counts[c][n.Gates[c*12+g].Cell]++
		}
	}
	for c := 1; c < 6; c++ {
		if len(counts[c]) != len(counts[0]) {
			t.Fatalf("chain %d cell variety differs", c)
		}
		for cell, k := range counts[0] {
			if counts[c][cell] != k {
				t.Fatalf("chain %d has %d %s, chain 0 has %d", c, counts[c][cell], cell, k)
			}
		}
	}
}

func TestDatapathDeterministicAndSeeded(t *testing.T) {
	var a, b, c bytes.Buffer
	if err := WriteVerilog(&a, Datapath(5, 6, 9)); err != nil {
		t.Fatal(err)
	}
	if err := WriteVerilog(&b, Datapath(5, 6, 9)); err != nil {
		t.Fatal(err)
	}
	if err := WriteVerilog(&c, Datapath(5, 6, 10)); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed must reproduce the netlist")
	}
	if a.String() == c.String() {
		t.Fatal("different seeds should differ")
	}
}

func TestDatapathDegenerate(t *testing.T) {
	n := Datapath(0, 0, 1)
	if len(n.Gates) != 1 || len(n.Outputs) != 1 {
		t.Fatalf("degenerate datapath: %+v", n.Summary())
	}
	if _, err := n.Connectivity(lib(t)); err != nil {
		t.Fatal(err)
	}
}
