package netlist

import (
	"fmt"
	"math/rand"
)

// builder helps the generators allocate names.
type builder struct {
	n     *Netlist
	gates int
	nets  int
}

func newBuilder(name string) *builder {
	return &builder{n: &Netlist{Name: name}}
}

func (b *builder) net() string {
	b.nets++
	return fmt.Sprintf("n%d", b.nets-1)
}

func (b *builder) gate(cell string, conn map[string]string) string {
	b.gates++
	name := fmt.Sprintf("u%d", b.gates-1)
	b.n.AddGate(name, cell, conn)
	return name
}

// cell2 instantiates a 2-input cell and returns its output net.
func (b *builder) cell2(cell, a, bb string) string {
	y := b.net()
	b.gate(cell, map[string]string{"A": a, "B": bb, "Y": y})
	return y
}

func (b *builder) inv(a string) string {
	y := b.net()
	b.gate("INV_X1", map[string]string{"A": a, "Y": y})
	return y
}

// InverterChain builds a chain of n inverters between "in" and "out" — the
// minimal timing benchmark.
func InverterChain(n int) *Netlist {
	if n < 1 {
		n = 1
	}
	b := newBuilder(fmt.Sprintf("invchain%d", n))
	b.n.Inputs = []string{"in"}
	cur := "in"
	for i := 0; i < n; i++ {
		cur = b.inv(cur)
	}
	b.n.Outputs = []string{cur}
	return b.n
}

// fullAdder adds one FA built from XOR2/NAND2 gates; returns (sum, cout).
func (b *builder) fullAdder(a, bb, cin string) (sum, cout string) {
	xab := b.cell2("XOR2_X1", a, bb)
	sum = b.cell2("XOR2_X1", xab, cin)
	n1 := b.cell2("NAND2_X1", a, bb)
	n2 := b.cell2("NAND2_X1", xab, cin)
	cout = b.cell2("NAND2_X1", n1, n2)
	return
}

// RippleCarryAdder builds a bits-wide ripple-carry adder: inputs a[i], b[i],
// cin; outputs s[i], cout. The carry chain is the classic long speed path.
func RippleCarryAdder(bits int) *Netlist {
	if bits < 1 {
		bits = 1
	}
	b := newBuilder(fmt.Sprintf("rca%d", bits))
	carry := "cin"
	b.n.Inputs = append(b.n.Inputs, "cin")
	var sums []string
	for i := 0; i < bits; i++ {
		ai := fmt.Sprintf("a%d", i)
		bi := fmt.Sprintf("b%d", i)
		b.n.Inputs = append(b.n.Inputs, ai, bi)
		var s string
		s, carry = b.fullAdder(ai, bi, carry)
		sums = append(sums, s)
	}
	b.n.Outputs = append(sums, carry)
	return b.n
}

// ArrayMultiplier builds an unsigned bits×bits carry-save array multiplier
// with a ripple-carry final stage; outputs p[0..2*bits-1]. Its many
// re-convergent paths make speed-path reordering visible.
func ArrayMultiplier(bits int) *Netlist {
	if bits < 2 {
		bits = 2
	}
	b := newBuilder(fmt.Sprintf("mult%d", bits))
	for i := 0; i < bits; i++ {
		b.n.Inputs = append(b.n.Inputs, fmt.Sprintf("a%d", i))
	}
	for j := 0; j < bits; j++ {
		b.n.Inputs = append(b.n.Inputs, fmt.Sprintf("b%d", j))
	}
	// Partial products pp[i][j] = a_i AND b_j (NAND + INV).
	pp := make([][]string, bits)
	for i := 0; i < bits; i++ {
		pp[i] = make([]string, bits)
		for j := 0; j < bits; j++ {
			nn := b.cell2("NAND2_X1", fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", j))
			pp[i][j] = b.inv(nn)
		}
	}
	// Carry-save reduction, row by row.
	// sumRow holds the running partial sums aligned to output weight.
	out := make([]string, 2*bits)
	sum := make([]string, bits) // current row sums for weights i+? ...
	copy(sum, pp[0])
	out[0] = sum[0]
	carries := make([]string, bits)
	for i := range carries {
		carries[i] = "" // no carry into the first row
	}
	for r := 1; r < bits; r++ {
		newSum := make([]string, bits)
		newCarr := make([]string, bits)
		for c := 0; c < bits; c++ {
			// Operands at weight r+c: pp[r][c], previous sum shifted, carry.
			var opA string
			if c+1 < bits {
				opA = sum[c+1]
			}
			opB := pp[r][c]
			opC := carries[c]
			switch {
			case opA == "" && opC == "":
				newSum[c] = opB
				newCarr[c] = ""
			case opC == "":
				// Half adder.
				newSum[c] = b.cell2("XOR2_X1", opA, opB)
				nn := b.cell2("NAND2_X1", opA, opB)
				newCarr[c] = b.inv(nn)
			case opA == "":
				newSum[c] = b.cell2("XOR2_X1", opC, opB)
				nn := b.cell2("NAND2_X1", opC, opB)
				newCarr[c] = b.inv(nn)
			default:
				newSum[c], newCarr[c] = b.fullAdder(opA, opB, opC)
			}
		}
		sum, carries = newSum, newCarr
		out[r] = sum[0]
	}
	// Final ripple stage merges remaining sums and carries.
	carry := ""
	for c := 0; c+1 < bits; c++ {
		opA := sum[c+1]
		opB := carries[c]
		switch {
		case carry == "" && opB == "":
			out[bits+c] = opA
		case carry == "":
			s := b.cell2("XOR2_X1", opA, opB)
			nn := b.cell2("NAND2_X1", opA, opB)
			carry = b.inv(nn)
			out[bits+c] = s
		case opB == "":
			s := b.cell2("XOR2_X1", opA, carry)
			nn := b.cell2("NAND2_X1", opA, carry)
			carry = b.inv(nn)
			out[bits+c] = s
		default:
			out[bits+c], carry = b.fullAdder(opA, opB, carry)
		}
	}
	if carry == "" {
		// Degenerate small widths: tie the MSB to the last carry chain bit.
		carry = carries[bits-1]
		if carry == "" {
			carry = b.inv(out[2*bits-2])
		}
	}
	out[2*bits-1] = carry
	b.n.Outputs = out
	return b.n
}

// RandomLogic builds a pseudo-random combinational DAG with the given gate
// count and primary-input count, in the spirit of the ISCAS benchmarks.
// The same seed always yields the same netlist.
func RandomLogic(gates, inputs int, seed int64) *Netlist {
	if inputs < 2 {
		inputs = 2
	}
	if gates < 1 {
		gates = 1
	}
	rnd := rand.New(rand.NewSource(seed))
	b := newBuilder(fmt.Sprintf("rand%d_%d", gates, seed))
	pool := make([]string, 0, inputs+gates)
	for i := 0; i < inputs; i++ {
		in := fmt.Sprintf("i%d", i)
		b.n.Inputs = append(b.n.Inputs, in)
		pool = append(pool, in)
	}
	type choice struct {
		cell string
		pins []string
		w    int
	}
	menu := []choice{
		{"INV_X1", []string{"A"}, 18},
		{"INV_X2", []string{"A"}, 6},
		{"BUF_X1", []string{"A"}, 6},
		{"NAND2_X1", []string{"A", "B"}, 22},
		{"NAND2_X2", []string{"A", "B"}, 6},
		{"NOR2_X1", []string{"A", "B"}, 14},
		{"NAND3_X1", []string{"A", "B", "C"}, 8},
		{"NOR3_X1", []string{"A", "B", "C"}, 4},
		{"AOI21_X1", []string{"A1", "A2", "B"}, 6},
		{"OAI21_X1", []string{"A1", "A2", "B"}, 6},
		{"XOR2_X1", []string{"A", "B"}, 8},
	}
	var totalW int
	for _, m := range menu {
		totalW += m.w
	}
	hasSink := map[string]bool{}
	for g := 0; g < gates; g++ {
		// Weighted cell choice.
		t := rnd.Intn(totalW)
		var m choice
		for _, c := range menu {
			if t < c.w {
				m = c
				break
			}
			t -= c.w
		}
		conn := map[string]string{}
		for _, pin := range m.pins {
			// Bias selection toward recent nets for a levelized structure.
			var net string
			if rnd.Float64() < 0.7 && len(pool) > inputs {
				lo := len(pool) * 3 / 4
				net = pool[lo+rnd.Intn(len(pool)-lo)]
			} else {
				net = pool[rnd.Intn(len(pool))]
			}
			// Avoid tying two pins of one gate to the same net.
			for tries := 0; conn2Has(conn, net) && tries < 4; tries++ {
				net = pool[rnd.Intn(len(pool))]
			}
			conn[pin] = net
			hasSink[net] = true
		}
		y := b.net()
		conn["Y"] = y
		b.gate(m.cell, conn)
		pool = append(pool, y)
	}
	// Outputs: every net without a sink.
	for _, net := range pool[inputs:] {
		if !hasSink[net] {
			b.n.Outputs = append(b.n.Outputs, net)
		}
	}
	if len(b.n.Outputs) == 0 {
		b.n.Outputs = []string{pool[len(pool)-1]}
	}
	return b.n
}

// Datapath builds a datapath-style block: nChains parallel logic chains of
// equal depth but randomly varied cell composition, each ending at its own
// primary output. Because every chain has the same depth, the endpoint
// slacks cluster within a few picoseconds of each other — the "slack wall"
// regime of real datapaths, where context-dependent CD shifts visibly
// reorder speed-path criticality.
func Datapath(nChains, depth int, seed int64) *Netlist {
	if nChains < 1 {
		nChains = 1
	}
	if depth < 1 {
		depth = 1
	}
	rnd := rand.New(rand.NewSource(seed))
	b := newBuilder(fmt.Sprintf("dp%dx%d_%d", nChains, depth, seed))
	// Shared side inputs give the 2-input stages something to chew on.
	const nSide = 8
	for i := 0; i < nSide; i++ {
		b.n.Inputs = append(b.n.Inputs, fmt.Sprintf("s%d", i))
	}
	type stage struct {
		cell string
		two  bool
	}
	menu := []stage{
		{"INV_X1", false}, {"INV_X2", false}, {"BUF_X1", false},
		{"NAND2_X1", true}, {"NOR2_X1", true}, {"NAND2_X2", true},
	}
	// Every chain executes the SAME multiset of stages in a chain-specific
	// random order: identical nominal slices, like the bit slices of a
	// real datapath.
	multiset := make([]stage, depth)
	for d := 0; d < depth; d++ {
		multiset[d] = menu[d%len(menu)]
	}
	var outs []string
	for c := 0; c < nChains; c++ {
		in := fmt.Sprintf("in%d", c)
		b.n.Inputs = append(b.n.Inputs, in)
		order := rnd.Perm(depth)
		cur := in
		for _, d := range order {
			m := multiset[d]
			if m.two {
				side := fmt.Sprintf("s%d", rnd.Intn(nSide))
				cur = b.cell2(m.cell, cur, side)
			} else {
				y := b.net()
				b.gate(m.cell, map[string]string{"A": cur, "Y": y})
				cur = y
			}
		}
		outs = append(outs, cur)
	}
	b.n.Outputs = outs
	return b.n
}

// DatapathRegular builds the fully repeated-context flavour of Datapath:
// every chain executes the shared stage multiset in the SAME (seed-chosen)
// order with the same side-input wiring, so the placed rows are
// geometrically identical bit slices. Where Datapath's per-chain shuffle
// makes almost every neighbourhood unique, here nearly every gate window
// recurs — the regime the pattern cache targets.
func DatapathRegular(nChains, depth int, seed int64) *Netlist {
	if nChains < 1 {
		nChains = 1
	}
	if depth < 1 {
		depth = 1
	}
	rnd := rand.New(rand.NewSource(seed))
	b := newBuilder(fmt.Sprintf("dpreg%dx%d_%d", nChains, depth, seed))
	const nSide = 8
	for i := 0; i < nSide; i++ {
		b.n.Inputs = append(b.n.Inputs, fmt.Sprintf("s%d", i))
	}
	type stage struct {
		cell string
		side string // second input for 2-input cells, "" otherwise
	}
	menu := []struct {
		cell string
		two  bool
	}{
		{"INV_X1", false}, {"INV_X2", false}, {"BUF_X1", false},
		{"NAND2_X1", true}, {"NOR2_X1", true}, {"NAND2_X2", true},
	}
	slice := make([]stage, depth)
	for d := 0; d < depth; d++ {
		m := menu[d%len(menu)]
		s := stage{cell: m.cell}
		if m.two {
			s.side = fmt.Sprintf("s%d", rnd.Intn(nSide))
		}
		slice[d] = s
	}
	rnd.Shuffle(depth, func(i, j int) { slice[i], slice[j] = slice[j], slice[i] })
	var outs []string
	for c := 0; c < nChains; c++ {
		in := fmt.Sprintf("in%d", c)
		b.n.Inputs = append(b.n.Inputs, in)
		cur := in
		for _, st := range slice {
			if st.side != "" {
				cur = b.cell2(st.cell, cur, st.side)
			} else {
				y := b.net()
				b.gate(st.cell, map[string]string{"A": cur, "Y": y})
				cur = y
			}
		}
		outs = append(outs, cur)
	}
	b.n.Outputs = outs
	return b.n
}

func conn2Has(conn map[string]string, net string) bool {
	for _, v := range conn {
		if v == net {
			return true
		}
	}
	return false
}
