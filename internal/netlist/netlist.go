// Package netlist represents gate-level designs: named gates instantiating
// library cells, nets connecting pins, and primary I/O. It includes a
// structural-Verilog-subset reader/writer and generators for the benchmark
// circuits used in the evaluation (inverter chains, ripple-carry adders,
// array multipliers, random logic).
package netlist

import (
	"fmt"
	"sort"

	"postopc/internal/stdcell"
)

// Gate is one cell instance.
type Gate struct {
	// Name is the unique instance name.
	Name string
	// Cell is the library cell name (e.g. "NAND2_X1").
	Cell string
	// Conn maps pin name -> net name.
	Conn map[string]string
}

// Netlist is a flat gate-level design.
type Netlist struct {
	// Name is the design name.
	Name string
	// Inputs and Outputs are the primary I/O net names, in declaration
	// order.
	Inputs, Outputs []string
	// Gates lists the instances in declaration order.
	Gates []*Gate
}

// Pin identifies one connection point: a gate pin or a primary I/O.
type Pin struct {
	// Gate is the gate index in Netlist.Gates, or -1 for a primary I/O.
	Gate int
	// Pin is the pin name ("" for primary I/O).
	Pin string
}

// Conn is the connectivity of one net.
type Conn struct {
	// Driver is the unique driver of the net (gate output or primary
	// input). Driver.Gate == -1 marks a primary input.
	Driver Pin
	// Sinks are the driven pins (gate inputs and primary outputs;
	// Gate == -1 entries are primary outputs).
	Sinks []Pin
}

// AddGate appends a gate.
func (n *Netlist) AddGate(name, cell string, conn map[string]string) *Gate {
	g := &Gate{Name: name, Cell: cell, Conn: conn}
	n.Gates = append(n.Gates, g)
	return g
}

// FindGate returns the index of the named gate, or -1.
func (n *Netlist) FindGate(name string) int {
	for i, g := range n.Gates {
		if g.Name == name {
			return i
		}
	}
	return -1
}

// Connectivity builds the net -> Conn map, validating against the library:
// every pin must exist on its cell, every net needs exactly one driver, and
// fill cells may not appear. The returned map's Sinks are in deterministic
// order.
func (n *Netlist) Connectivity(lib *stdcell.Library) (map[string]*Conn, error) {
	conns := map[string]*Conn{}
	get := func(net string) *Conn {
		c, ok := conns[net]
		if !ok {
			c = &Conn{Driver: Pin{Gate: -2}}
			conns[net] = c
		}
		return c
	}
	for _, in := range n.Inputs {
		c := get(in)
		c.Driver = Pin{Gate: -1}
	}
	for gi, g := range n.Gates {
		info, err := lib.Get(g.Cell)
		if err != nil {
			return nil, fmt.Errorf("netlist %s: gate %s: %w", n.Name, g.Name, err)
		}
		if info.Kind == stdcell.Fill {
			return nil, fmt.Errorf("netlist %s: gate %s instantiates fill cell %s", n.Name, g.Name, g.Cell)
		}
		want := map[string]bool{info.Output: true}
		for _, p := range info.Inputs {
			want[p] = true
		}
		for pin, net := range g.Conn {
			if !want[pin] {
				return nil, fmt.Errorf("netlist %s: gate %s (%s): unknown pin %s", n.Name, g.Name, g.Cell, pin)
			}
			c := get(net)
			if pin == info.Output {
				if c.Driver.Gate != -2 {
					return nil, fmt.Errorf("netlist %s: net %s has multiple drivers", n.Name, net)
				}
				c.Driver = Pin{Gate: gi, Pin: pin}
			} else {
				c.Sinks = append(c.Sinks, Pin{Gate: gi, Pin: pin})
			}
		}
		for p := range want {
			if _, ok := g.Conn[p]; !ok {
				return nil, fmt.Errorf("netlist %s: gate %s (%s): pin %s unconnected", n.Name, g.Name, g.Cell, p)
			}
		}
	}
	for _, out := range n.Outputs {
		c, ok := conns[out]
		if !ok {
			return nil, fmt.Errorf("netlist %s: primary output %s is not driven", n.Name, out)
		}
		c.Sinks = append(c.Sinks, Pin{Gate: -1})
	}
	// Validate drivers and order sinks deterministically.
	for net, c := range conns {
		if c.Driver.Gate == -2 {
			return nil, fmt.Errorf("netlist %s: net %s has no driver", n.Name, net)
		}
		sort.Slice(c.Sinks, func(i, j int) bool {
			if c.Sinks[i].Gate != c.Sinks[j].Gate {
				return c.Sinks[i].Gate < c.Sinks[j].Gate
			}
			return c.Sinks[i].Pin < c.Sinks[j].Pin
		})
	}
	return conns, nil
}

// Stats summarizes a netlist.
type Stats struct {
	Gates   int
	ByCell  map[string]int
	Inputs  int
	Outputs int
}

// Summary computes instance statistics.
func (n *Netlist) Summary() Stats {
	st := Stats{Gates: len(n.Gates), ByCell: map[string]int{},
		Inputs: len(n.Inputs), Outputs: len(n.Outputs)}
	for _, g := range n.Gates {
		st.ByCell[g.Cell]++
	}
	return st
}
