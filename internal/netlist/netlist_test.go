package netlist

import (
	"bytes"
	"strings"
	"testing"

	"postopc/internal/pdk"
	"postopc/internal/stdcell"
)

var testLib *stdcell.Library

func lib(t *testing.T) *stdcell.Library {
	t.Helper()
	if testLib == nil {
		l, err := stdcell.NewLibrary(pdk.N90())
		if err != nil {
			t.Fatal(err)
		}
		testLib = l
	}
	return testLib
}

func TestInverterChain(t *testing.T) {
	n := InverterChain(5)
	if len(n.Gates) != 5 || len(n.Inputs) != 1 || len(n.Outputs) != 1 {
		t.Fatalf("chain shape: %+v", n.Summary())
	}
	conns, err := n.Connectivity(lib(t))
	if err != nil {
		t.Fatal(err)
	}
	// "in" has one sink, the chain output drives the PO.
	if len(conns["in"].Sinks) != 1 || conns["in"].Driver.Gate != -1 {
		t.Fatalf("input conn = %+v", conns["in"])
	}
	out := n.Outputs[0]
	last := conns[out]
	if len(last.Sinks) != 1 || last.Sinks[0].Gate != -1 {
		t.Fatalf("output conn = %+v", last)
	}
	if InverterChain(0).Summary().Gates != 1 {
		t.Fatal("degenerate chain")
	}
}

func TestRippleCarryAdder(t *testing.T) {
	n := RippleCarryAdder(8)
	if got := len(n.Gates); got != 8*5 {
		t.Fatalf("rca8 gates = %d, want 40", got)
	}
	if len(n.Inputs) != 17 || len(n.Outputs) != 9 {
		t.Fatalf("rca8 io = %d/%d", len(n.Inputs), len(n.Outputs))
	}
	if _, err := n.Connectivity(lib(t)); err != nil {
		t.Fatal(err)
	}
}

func TestArrayMultiplier(t *testing.T) {
	for _, bits := range []int{2, 4, 6, 8} {
		n := ArrayMultiplier(bits)
		if len(n.Inputs) != 2*bits || len(n.Outputs) != 2*bits {
			t.Fatalf("mult%d io = %d/%d", bits, len(n.Inputs), len(n.Outputs))
		}
		if _, err := n.Connectivity(lib(t)); err != nil {
			t.Fatalf("mult%d: %v", bits, err)
		}
		for _, o := range n.Outputs {
			if o == "" {
				t.Fatalf("mult%d: empty output net", bits)
			}
		}
	}
}

func TestRandomLogicDeterministic(t *testing.T) {
	a := RandomLogic(200, 16, 42)
	b := RandomLogic(200, 16, 42)
	var bufA, bufB bytes.Buffer
	if err := WriteVerilog(&bufA, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteVerilog(&bufB, b); err != nil {
		t.Fatal(err)
	}
	if bufA.String() != bufB.String() {
		t.Fatal("same seed must give identical netlists")
	}
	c := RandomLogic(200, 16, 43)
	var bufC bytes.Buffer
	_ = WriteVerilog(&bufC, c)
	if bufA.String() == bufC.String() {
		t.Fatal("different seeds should differ")
	}
	if _, err := a.Connectivity(lib(t)); err != nil {
		t.Fatal(err)
	}
	if got := len(a.Gates); got != 200 {
		t.Fatalf("gates = %d", got)
	}
}

func TestVerilogRoundTrip(t *testing.T) {
	orig := ArrayMultiplier(4)
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseVerilog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Name != orig.Name {
		t.Fatalf("name %s != %s", parsed.Name, orig.Name)
	}
	if len(parsed.Gates) != len(orig.Gates) {
		t.Fatalf("gates %d != %d", len(parsed.Gates), len(orig.Gates))
	}
	if strings.Join(parsed.Inputs, ",") != strings.Join(orig.Inputs, ",") {
		t.Fatal("inputs differ")
	}
	if strings.Join(parsed.Outputs, ",") != strings.Join(orig.Outputs, ",") {
		t.Fatal("outputs differ")
	}
	// Per-gate connections survive.
	for i, g := range orig.Gates {
		pg := parsed.Gates[i]
		if pg.Name != g.Name || pg.Cell != g.Cell {
			t.Fatalf("gate %d: %s/%s != %s/%s", i, pg.Name, pg.Cell, g.Name, g.Cell)
		}
		for pin, net := range g.Conn {
			if pg.Conn[pin] != net {
				t.Fatalf("gate %s pin %s: %s != %s", g.Name, pin, pg.Conn[pin], net)
			}
		}
	}
	// Round-tripped netlist still validates.
	if _, err := parsed.Connectivity(lib(t)); err != nil {
		t.Fatal(err)
	}
}

func TestParseVerilogComments(t *testing.T) {
	src := `
// a comment
module top (a, y); // trailing
  input a;
  output y;
  INV_X1 u0 (.A(a), .Y(y));
endmodule
`
	n, err := ParseVerilog(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "top" || len(n.Gates) != 1 {
		t.Fatalf("parsed %+v", n)
	}
}

func TestParseVerilogErrors(t *testing.T) {
	cases := []string{
		"",
		"module",
		"module m (a;",
		"module m (a); input a gibberish",
		"module m (); INV_X1 u0 (.A x); endmodule",
		"module m (); INV_X1 u0 (.A(x), .A(z), .Y(y)); endmodule",
		"module m (); INV_X1 u0 (.A(x), .Y(y));", // missing endmodule
	}
	for i, src := range cases {
		if _, err := ParseVerilog(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestConnectivityErrors(t *testing.T) {
	l := lib(t)
	// Unknown cell.
	n := &Netlist{Name: "bad"}
	n.AddGate("u0", "MYSTERY_X1", map[string]string{"A": "a", "Y": "y"})
	if _, err := n.Connectivity(l); err == nil {
		t.Error("unknown cell accepted")
	}
	// Unknown pin.
	n = &Netlist{Name: "bad", Inputs: []string{"a"}}
	n.AddGate("u0", "INV_X1", map[string]string{"Q": "a", "Y": "y"})
	if _, err := n.Connectivity(l); err == nil {
		t.Error("unknown pin accepted")
	}
	// Unconnected pin.
	n = &Netlist{Name: "bad"}
	n.AddGate("u0", "NAND2_X1", map[string]string{"A": "a", "Y": "y"})
	if _, err := n.Connectivity(l); err == nil {
		t.Error("unconnected pin accepted")
	}
	// Multiple drivers.
	n = &Netlist{Name: "bad", Inputs: []string{"a"}}
	n.AddGate("u0", "INV_X1", map[string]string{"A": "a", "Y": "y"})
	n.AddGate("u1", "INV_X1", map[string]string{"A": "a", "Y": "y"})
	if _, err := n.Connectivity(l); err == nil {
		t.Error("multiple drivers accepted")
	}
	// Undriven input net.
	n = &Netlist{Name: "bad"}
	n.AddGate("u0", "INV_X1", map[string]string{"A": "ghost", "Y": "y"})
	if _, err := n.Connectivity(l); err == nil {
		t.Error("undriven net accepted")
	}
	// Undriven primary output.
	n = &Netlist{Name: "bad", Inputs: []string{"a"}, Outputs: []string{"nope"}}
	n.AddGate("u0", "INV_X1", map[string]string{"A": "a", "Y": "y"})
	if _, err := n.Connectivity(l); err == nil {
		t.Error("undriven PO accepted")
	}
	// Fill cell instantiation.
	n = &Netlist{Name: "bad"}
	n.AddGate("u0", "FILL_X1", map[string]string{})
	if _, err := n.Connectivity(l); err == nil {
		t.Error("fill cell accepted")
	}
}

func TestSummaryAndFindGate(t *testing.T) {
	n := RippleCarryAdder(2)
	st := n.Summary()
	if st.Gates != 10 || st.ByCell["XOR2_X1"] != 4 || st.ByCell["NAND2_X1"] != 6 {
		t.Fatalf("summary = %+v", st)
	}
	if n.FindGate("u0") != 0 || n.FindGate("nope") != -1 {
		t.Fatal("FindGate")
	}
}
