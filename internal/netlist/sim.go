package netlist

import (
	"fmt"
	"strings"

	"postopc/internal/stdcell"
)

// Simulate evaluates the combinational netlist on one input vector and
// returns the value of every net. It exists to validate that generated
// benchmarks compute what they claim (the timing flow never checks
// function). Sequential cells are rejected — drive Q nets as inputs and
// read D nets as outputs to simulate across register stages.
func Simulate(n *Netlist, lib *stdcell.Library, inputs map[string]bool) (map[string]bool, error) {
	conns, err := n.Connectivity(lib)
	if err != nil {
		return nil, err
	}
	values := map[string]bool{}
	for _, in := range n.Inputs {
		v, ok := inputs[in]
		if !ok {
			return nil, fmt.Errorf("netlist: input %s not driven", in)
		}
		values[in] = v
	}
	// Iterate to a fixed point in topological fashion: evaluate any gate
	// whose inputs are all known. The netlists are DAGs, so this
	// terminates in at most depth passes.
	remaining := make([]int, 0, len(n.Gates))
	for gi := range n.Gates {
		remaining = append(remaining, gi)
	}
	_ = conns
	for len(remaining) > 0 {
		progressed := false
		next := remaining[:0]
		for _, gi := range remaining {
			g := n.Gates[gi]
			info, err := lib.Get(g.Cell)
			if err != nil {
				return nil, err
			}
			if info.Kind == stdcell.Seq {
				return nil, fmt.Errorf("netlist: Simulate is combinational; gate %s is sequential", g.Name)
			}
			ready := true
			in := map[string]bool{}
			for _, pin := range info.Inputs {
				v, ok := values[g.Conn[pin]]
				if !ok {
					ready = false
					break
				}
				in[pin] = v
			}
			if !ready {
				next = append(next, gi)
				continue
			}
			out, err := evalCell(info.Name, in)
			if err != nil {
				return nil, fmt.Errorf("netlist: gate %s: %w", g.Name, err)
			}
			values[g.Conn[info.Output]] = out
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("netlist: %d gates never became ready (loop or undriven input)", len(next))
		}
		remaining = next
	}
	return values, nil
}

// evalCell computes one cell's boolean function from its base family name.
func evalCell(cell string, in map[string]bool) (bool, error) {
	base := cell
	if i := strings.Index(base, "_X"); i >= 0 {
		base = base[:i]
	}
	switch base {
	case "INV":
		return !in["A"], nil
	case "BUF":
		return in["A"], nil
	case "NAND2":
		return !(in["A"] && in["B"]), nil
	case "NAND3":
		return !(in["A"] && in["B"] && in["C"]), nil
	case "NOR2":
		return !(in["A"] || in["B"]), nil
	case "NOR3":
		return !(in["A"] || in["B"] || in["C"]), nil
	case "AOI21":
		return !((in["A1"] && in["A2"]) || in["B"]), nil
	case "OAI21":
		return !((in["A1"] || in["A2"]) && in["B"]), nil
	case "XOR2":
		return in["A"] != in["B"], nil
	case "XNOR2":
		return in["A"] == in["B"], nil
	}
	return false, fmt.Errorf("no boolean model for cell %s", cell)
}
