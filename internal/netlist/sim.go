package netlist

import (
	"fmt"
	"strings"

	"postopc/internal/stdcell"
)

// Simulate evaluates the combinational netlist on one input vector and
// returns the value of every net. It exists to validate that generated
// benchmarks compute what they claim (the timing flow never checks
// function). Sequential cells are rejected — drive Q nets as inputs and
// read D nets as outputs to simulate across register stages.
func Simulate(n *Netlist, lib *stdcell.Library, inputs map[string]bool) (map[string]bool, error) {
	conns, err := n.Connectivity(lib)
	if err != nil {
		return nil, err
	}
	values := map[string]bool{}
	// Event-driven topological evaluation over the connectivity graph:
	// each gate waits on a count of unknown inputs; setting a net's value
	// decrements the count of every gate the net sinks into, and a gate
	// whose count hits zero is evaluated. Each gate and each net is
	// processed exactly once.
	unknown := make([]int, len(n.Gates))
	infos := make([]*stdcell.Info, len(n.Gates))
	evaluated := 0
	var ready []int
	for gi, g := range n.Gates {
		info, err := lib.Get(g.Cell)
		if err != nil {
			return nil, err
		}
		if info.Kind == stdcell.Seq {
			return nil, fmt.Errorf("netlist: Simulate is combinational; gate %s is sequential", g.Name)
		}
		infos[gi] = info
		if unknown[gi] = len(info.Inputs); unknown[gi] == 0 {
			ready = append(ready, gi)
		}
	}
	set := func(net string, v bool) {
		values[net] = v
		for _, sink := range conns[net].Sinks {
			if sink.Gate < 0 {
				continue // primary output
			}
			if unknown[sink.Gate]--; unknown[sink.Gate] == 0 {
				ready = append(ready, sink.Gate)
			}
		}
	}
	for _, in := range n.Inputs {
		v, ok := inputs[in]
		if !ok {
			return nil, fmt.Errorf("netlist: input %s not driven", in)
		}
		set(in, v)
	}
	for len(ready) > 0 {
		gi := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		g := n.Gates[gi]
		info := infos[gi]
		in := map[string]bool{}
		for _, pin := range info.Inputs {
			in[pin] = values[g.Conn[pin]]
		}
		out, err := evalCell(info.Name, in)
		if err != nil {
			return nil, fmt.Errorf("netlist: gate %s: %w", g.Name, err)
		}
		evaluated++
		set(g.Conn[info.Output], out)
	}
	if evaluated < len(n.Gates) {
		return nil, fmt.Errorf("netlist: %d gates never became ready (loop or undriven input)", len(n.Gates)-evaluated)
	}
	return values, nil
}

// evalCell computes one cell's boolean function from its base family name.
func evalCell(cell string, in map[string]bool) (bool, error) {
	base := cell
	if i := strings.Index(base, "_X"); i >= 0 {
		base = base[:i]
	}
	switch base {
	case "INV":
		return !in["A"], nil
	case "BUF":
		return in["A"], nil
	case "NAND2":
		return !(in["A"] && in["B"]), nil
	case "NAND3":
		return !(in["A"] && in["B"] && in["C"]), nil
	case "NOR2":
		return !(in["A"] || in["B"]), nil
	case "NOR3":
		return !(in["A"] || in["B"] || in["C"]), nil
	case "AOI21":
		return !((in["A1"] && in["A2"]) || in["B"]), nil
	case "OAI21":
		return !((in["A1"] || in["A2"]) && in["B"]), nil
	case "XOR2":
		return in["A"] != in["B"], nil
	case "XNOR2":
		return in["A"] == in["B"], nil
	}
	return false, fmt.Errorf("no boolean model for cell %s", cell)
}
