package netlist

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestSimulateInverterChain(t *testing.T) {
	n := InverterChain(5)
	for _, v := range []bool{false, true} {
		out, err := Simulate(n, lib(t), map[string]bool{"in": v})
		if err != nil {
			t.Fatal(err)
		}
		// Odd chain inverts.
		if out[n.Outputs[0]] != !v {
			t.Fatalf("chain(%v) = %v", v, out[n.Outputs[0]])
		}
	}
}

func TestSimulateRippleCarryAdder(t *testing.T) {
	const bits = 8
	n := RippleCarryAdder(bits)
	rnd := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		a := rnd.Uint64() & (1<<bits - 1)
		bb := rnd.Uint64() & (1<<bits - 1)
		cin := rnd.Intn(2) == 1
		in := map[string]bool{"cin": cin}
		for i := 0; i < bits; i++ {
			in[fmt.Sprintf("a%d", i)] = a>>i&1 == 1
			in[fmt.Sprintf("b%d", i)] = bb>>i&1 == 1
		}
		out, err := Simulate(n, lib(t), in)
		if err != nil {
			t.Fatal(err)
		}
		var got uint64
		for i, o := range n.Outputs {
			if out[o] {
				got |= 1 << i
			}
		}
		want := a + bb
		if cin {
			want++
		}
		if got != want {
			t.Fatalf("rca: %d + %d + %v = %d, want %d", a, bb, cin, got, want)
		}
	}
}

func TestSimulateArrayMultiplier(t *testing.T) {
	const bits = 5
	n := ArrayMultiplier(bits)
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		a := rnd.Uint64() & (1<<bits - 1)
		bb := rnd.Uint64() & (1<<bits - 1)
		in := map[string]bool{}
		for i := 0; i < bits; i++ {
			in[fmt.Sprintf("a%d", i)] = a>>i&1 == 1
			in[fmt.Sprintf("b%d", i)] = bb>>i&1 == 1
		}
		out, err := Simulate(n, lib(t), in)
		if err != nil {
			t.Fatal(err)
		}
		var got uint64
		for i, o := range n.Outputs {
			if out[o] {
				got |= 1 << i
			}
		}
		if got != a*bb {
			t.Fatalf("mult: %d * %d = %d, want %d", a, bb, got, a*bb)
		}
	}
}

func TestSimulateExhaustiveSmallMultiplier(t *testing.T) {
	const bits = 3
	n := ArrayMultiplier(bits)
	for a := uint64(0); a < 1<<bits; a++ {
		for bb := uint64(0); bb < 1<<bits; bb++ {
			in := map[string]bool{}
			for i := 0; i < bits; i++ {
				in[fmt.Sprintf("a%d", i)] = a>>i&1 == 1
				in[fmt.Sprintf("b%d", i)] = bb>>i&1 == 1
			}
			out, err := Simulate(n, lib(t), in)
			if err != nil {
				t.Fatal(err)
			}
			var got uint64
			for i, o := range n.Outputs {
				if out[o] {
					got |= 1 << i
				}
			}
			if got != a*bb {
				t.Fatalf("mult3: %d*%d = %d, want %d", a, bb, got, a*bb)
			}
		}
	}
}

func TestSimulateRandomAndDatapath(t *testing.T) {
	// Random logic and datapath blocks must at least evaluate (no loops,
	// no unknown cells) and be deterministic.
	for _, n := range []*Netlist{
		RandomLogic(120, 10, 5),
		Datapath(6, 8, 2),
	} {
		in := map[string]bool{}
		for i, name := range n.Inputs {
			in[name] = i%2 == 0
		}
		out1, err := Simulate(n, lib(t), in)
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		out2, err := Simulate(n, lib(t), in)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range n.Outputs {
			if out1[o] != out2[o] {
				t.Fatalf("%s: nondeterministic output %s", n.Name, o)
			}
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	l := lib(t)
	// Missing input.
	n := InverterChain(1)
	if _, err := Simulate(n, l, map[string]bool{}); err == nil {
		t.Fatal("missing input accepted")
	}
	// Sequential cell.
	seq := &Netlist{Name: "seq", Inputs: []string{"d", "ck"}, Outputs: []string{"q"}}
	seq.AddGate("f", "DFF_X1", map[string]string{"D": "d", "CK": "ck", "Q": "q"})
	if _, err := Simulate(seq, l, map[string]bool{"d": true, "ck": false}); err == nil {
		t.Fatal("sequential cell accepted")
	}
}

func TestEvalCellUnknown(t *testing.T) {
	if _, err := evalCell("MYSTERY_X1", nil); err == nil {
		t.Fatal("unknown cell accepted")
	}
}
