package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"unicode"
)

// WriteVerilog emits the netlist as a structural Verilog subset:
//
//	module name (a, b, y);
//	  input a;
//	  input b;
//	  output y;
//	  NAND2_X1 u1 (.A(a), .B(b), .Y(y));
//	endmodule
func WriteVerilog(w io.Writer, n *Netlist) error {
	bw := bufio.NewWriter(w)
	ports := append(append([]string{}, n.Inputs...), n.Outputs...)
	fmt.Fprintf(bw, "module %s (%s);\n", n.Name, strings.Join(ports, ", "))
	for _, in := range n.Inputs {
		fmt.Fprintf(bw, "  input %s;\n", in)
	}
	for _, out := range n.Outputs {
		fmt.Fprintf(bw, "  output %s;\n", out)
	}
	// Internal wires: every net that is not a port.
	isPort := map[string]bool{}
	for _, p := range ports {
		isPort[p] = true
	}
	wireSet := map[string]bool{}
	for _, g := range n.Gates {
		for _, net := range g.Conn {
			if !isPort[net] {
				wireSet[net] = true
			}
		}
	}
	wires := make([]string, 0, len(wireSet))
	for wn := range wireSet {
		wires = append(wires, wn)
	}
	sort.Strings(wires)
	for _, wn := range wires {
		fmt.Fprintf(bw, "  wire %s;\n", wn)
	}
	for _, g := range n.Gates {
		pins := make([]string, 0, len(g.Conn))
		for p := range g.Conn {
			pins = append(pins, p)
		}
		sort.Strings(pins)
		var conns []string
		for _, p := range pins {
			conns = append(conns, fmt.Sprintf(".%s(%s)", p, g.Conn[p]))
		}
		fmt.Fprintf(bw, "  %s %s (%s);\n", g.Cell, g.Name, strings.Join(conns, ", "))
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

// ParseVerilog reads the structural subset produced by WriteVerilog. It is
// not a general Verilog parser: one module per file, explicit pin
// connections, no expressions, no buses.
func ParseVerilog(r io.Reader) (*Netlist, error) {
	toks, err := tokenize(r)
	if err != nil {
		return nil, err
	}
	p := &vparser{toks: toks}
	return p.module()
}

type vparser struct {
	toks []string
	pos  int
}

func (p *vparser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *vparser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *vparser) expect(t string) error {
	if got := p.next(); got != t {
		return fmt.Errorf("netlist: expected %q, got %q (token %d)", t, got, p.pos-1)
	}
	return nil
}

func (p *vparser) module() (*Netlist, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	n := &Netlist{Name: p.next()}
	if n.Name == "" {
		return nil, fmt.Errorf("netlist: missing module name")
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for p.peek() != ")" && p.peek() != "" {
		p.next() // port list is re-derived from input/output declarations
		if p.peek() == "," {
			p.next()
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	for {
		switch t := p.peek(); t {
		case "endmodule":
			p.next()
			return n, nil
		case "":
			return nil, fmt.Errorf("netlist: unexpected end of file in module %s", n.Name)
		case "input", "output", "wire":
			p.next()
			for {
				name := p.next()
				if name == "" || name == ";" {
					return nil, fmt.Errorf("netlist: bad %s declaration", t)
				}
				switch t {
				case "input":
					n.Inputs = append(n.Inputs, name)
				case "output":
					n.Outputs = append(n.Outputs, name)
				}
				if sep := p.next(); sep == ";" {
					break
				} else if sep != "," {
					return nil, fmt.Errorf("netlist: bad separator %q in %s declaration", sep, t)
				}
			}
		default:
			// Cell instantiation: CELL name (.PIN(net), ...);
			cell := p.next()
			inst := p.next()
			if inst == "" {
				return nil, fmt.Errorf("netlist: missing instance name for cell %s", cell)
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			conn := map[string]string{}
			for p.peek() != ")" {
				if err := p.expect("."); err != nil {
					return nil, err
				}
				pin := p.next()
				if err := p.expect("("); err != nil {
					return nil, err
				}
				net := p.next()
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				if _, dup := conn[pin]; dup {
					return nil, fmt.Errorf("netlist: %s.%s connected twice", inst, pin)
				}
				conn[pin] = net
				if p.peek() == "," {
					p.next()
				}
			}
			p.next() // ")"
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			n.AddGate(inst, cell, conn)
		}
	}
}

// tokenize splits the input into identifiers and punctuation, dropping //
// comments.
func tokenize(r io.Reader) ([]string, error) {
	var toks []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		var cur strings.Builder
		flush := func() {
			if cur.Len() > 0 {
				toks = append(toks, cur.String())
				cur.Reset()
			}
		}
		for _, c := range line {
			switch {
			case unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '[' || c == ']' || c == '\\' || c == '/':
				cur.WriteRune(c)
			case unicode.IsSpace(c):
				flush()
			case strings.ContainsRune("(),;.", c):
				flush()
				toks = append(toks, string(c))
			default:
				return nil, fmt.Errorf("netlist: unexpected character %q", c)
			}
		}
		flush()
	}
	return toks, sc.Err()
}
