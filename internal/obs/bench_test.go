package obs

import "testing"

// The overhead budget of disabled telemetry, asserted (TestDisabledSink*)
// and measured (BenchmarkObsOverhead; reference numbers in BENCH_obs.json):
//
//	go test -run=NONE -bench=ObsOverhead -benchmem ./internal/obs/
//
// A disabled handle must cost one nil check — no clock read, no atomic, no
// allocation — because the kernel and scheduler hot paths update handles
// unconditionally and their steady-state allocation budgets (see
// litho.TestKernelAllocBudget) hold with telemetry compiled in.

// TestDisabledSinkZeroAlloc is the hard budget: a full disabled
// counter/timer/span/ledger round adds zero allocations.
func TestDisabledSinkZeroAlloc(t *testing.T) {
	var s *Sink
	c := s.Counter("x")
	g := s.Gauge("x")
	h := s.LatencyHistogram("x")
	j := s.Ledger()
	var rec *WindowRecord
	var f *Flight
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(1)
		h.ObserveSince(h.StartTimer())
		rec.Observe(StageOPC, h.TimedSince(h.StartTimer()))
		j.Record(rec)
		f.Record(SpanEvent{})
		sp := s.StartChild("x", 0)
		sp.End()
	}); n != 0 {
		t.Fatalf("disabled telemetry costs %v allocs/op, want 0", n)
	}
}

// TestEnabledCounterZeroAlloc: live counter increments are a single atomic
// add — also allocation-free, so hot loops never pay GC for metrics.
func TestEnabledCounterZeroAlloc(t *testing.T) {
	s := NewSink()
	c := s.Counter("x")
	h := s.LatencyHistogram("x")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(5e3)
	}); n != 0 {
		t.Fatalf("enabled counter+histogram cost %v allocs/op, want 0", n)
	}
}

func BenchmarkObsOverhead(b *testing.B) {
	b.Run("counter-disabled", func(b *testing.B) {
		var s *Sink
		c := s.Counter("x")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("counter-enabled", func(b *testing.B) {
		c := NewSink().Counter("x")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram-timer-disabled", func(b *testing.B) {
		var s *Sink
		h := s.LatencyHistogram("x")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.ObserveSince(h.StartTimer())
		}
	})
	b.Run("histogram-timer-enabled", func(b *testing.B) {
		h := NewSink().LatencyHistogram("x")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.ObserveSince(h.StartTimer())
		}
	})
	b.Run("ledger-record-disabled", func(b *testing.B) {
		var s *Sink
		j := s.Ledger()
		var rec *WindowRecord
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec.Observe(StageOPC, 5)
			j.Record(rec)
		}
	})
	b.Run("ledger-record-enabled", func(b *testing.B) {
		j := NewJournal(5)
		rec := &WindowRecord{Kind: "window"}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec.Observe(StageOPC, 5)
		}
		j.Record(rec)
	})
	b.Run("flight-record-enabled", func(b *testing.B) {
		f := NewFlight(256)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.Record(SpanEvent{Name: "x", ID: SpanID(i)})
		}
	})
	b.Run("span-disabled", func(b *testing.B) {
		var s *Sink
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := s.Start("x")
			sp.End()
		}
	})
	b.Run("span-enabled", func(b *testing.B) {
		s := NewSink()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := s.Start("x")
			sp.End()
		}
	})
}
