package obs

import (
	"runtime"
	"runtime/debug"
	"strings"

	"postopc/internal/dsp/vek"
)

// BuildInfo identifies the binary a telemetry export came from: go
// toolchain, platform, the GOAMD64 level the vector kernels were built
// for, the CPU features actually detected at run time, and the module
// version. Bench hosts (and future multi-tenant daemons) are
// distinguishable from scrapes and ledgers alone.
type BuildInfo struct {
	GoVersion   string
	GOOS        string
	GOARCH      string
	VekLevel    string
	CPUFeatures string
	Module      string
}

// GetBuildInfo assembles the build identity of the running binary.
func GetBuildInfo() BuildInfo {
	bi := BuildInfo{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		VekLevel:  vek.BuildLevel(),
		Module:    "postopc",
	}
	if bi.VekLevel == "" {
		bi.VekLevel = "none"
	}
	var feats []string
	cpu := vek.CPU()
	if cpu.AVX2 {
		feats = append(feats, "avx2")
	}
	if cpu.FMA {
		feats = append(feats, "fma")
	}
	if len(feats) == 0 {
		feats = append(feats, "none")
	}
	bi.CPUFeatures = strings.Join(feats, ",")
	if info, ok := debug.ReadBuildInfo(); ok && info.Main.Path != "" {
		bi.Module = info.Main.Path
		if v := info.Main.Version; v != "" && v != "(devel)" {
			bi.Module += "@" + v
		}
	}
	return bi
}
