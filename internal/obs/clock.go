package obs

import "time"

// The telemetry clock: monotonic nanoseconds since process start. The
// detrand analyzer bans time.Now from library code because wall-clock
// input silently breaks the parallel==serial reproducibility contract;
// telemetry is the one sanctioned exception — timestamps feed traces and
// latency histograms only, never any computed result — so the read is
// confined to this file and suppressed explicitly.

// epoch anchors Monotonic; time.Time carries a monotonic reading, so Sub
// is immune to wall-clock steps.
var epoch = sysNow()

// sysNow reads the system clock. Telemetry-only: nothing derived from it
// may reach an algorithm or artifact (see the package determinism
// contract).
//
//postopc:allocfree
func sysNow() time.Time {
	return time.Now() //postopc:nolint:detrand telemetry clock; readings never reach computed results
}

// Monotonic returns nanoseconds elapsed since process start on the
// monotonic clock.
//
//postopc:allocfree
func Monotonic() int64 {
	return int64(sysNow().Sub(epoch))
}
