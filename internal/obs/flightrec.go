package obs

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// Flight is a bounded lock-free flight recorder: a ring of the most
// recent completed span events, overwritten in arrival order. It exists
// for the failure path — when a run dies (cli.Fatal) or is poked with
// SIGQUIT during an apparent stall, the ring shows what the pipeline was
// doing in its last moments, without the cost or volume of a full trace.
//
// Record is wait-free: a slot index from one atomic add, then an atomic
// pointer store. Concurrent writers may interleave arbitrarily; Dump
// sorts the surviving slots by sequence number, so the view is the most
// recent N completions in completion order (modulo racing overwrites —
// this is a crash-dump facility, not a deterministic export). The nil
// *Flight is a no-op.
type Flight struct {
	slots []atomic.Pointer[flightSlot]
	next  atomic.Uint64
}

type flightSlot struct {
	seq uint64
	ev  SpanEvent
}

// NewFlight returns a flight recorder keeping the last n span events
// (n <= 0 selects the default of 256).
func NewFlight(n int) *Flight {
	if n <= 0 {
		n = 256
	}
	return &Flight{slots: make([]atomic.Pointer[flightSlot], n)}
}

// Record stores one completed span event in the ring, evicting the
// oldest. Nil-safe; the live path allocates one slot cell (the recorder
// rides on the span tracer, which already allocates per event — it adds
// no cost to the metrics hot path, which never touches it).
func (f *Flight) Record(ev SpanEvent) {
	if f == nil {
		return
	}
	seq := f.next.Add(1)
	f.slots[(seq-1)%uint64(len(f.slots))].Store(&flightSlot{seq: seq, ev: ev})
}

// Recent returns the surviving ring contents, oldest first.
func (f *Flight) Recent() []SpanEvent {
	if f == nil {
		return nil
	}
	type seqEv struct {
		seq uint64
		ev  SpanEvent
	}
	got := make([]seqEv, 0, len(f.slots))
	for i := range f.slots {
		if s := f.slots[i].Load(); s != nil {
			got = append(got, seqEv{s.seq, s.ev})
		}
	}
	sort.Slice(got, func(i, j int) bool { return got[i].seq < got[j].seq })
	out := make([]SpanEvent, len(got))
	for i, s := range got {
		out[i] = s.ev
	}
	return out
}

// Dump writes the ring as human-readable lines: one span per line,
// oldest first, with start offset and duration in milliseconds.
func (f *Flight) Dump(w io.Writer) {
	if f == nil {
		return
	}
	recent := f.Recent()
	total := f.next.Load()
	fmt.Fprintf(w, "flight recorder: last %d of %d span(s)\n", len(recent), total)
	for _, ev := range recent {
		fmt.Fprintf(w, "  +%12.3fms %8.3fms  %-28s id=%d parent=%d\n",
			float64(ev.Start)/1e6, float64(ev.Dur)/1e6, ev.Name, ev.ID, ev.Parent)
	}
}
