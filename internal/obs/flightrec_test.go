package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestFlightRing: the recorder keeps exactly the last n events, oldest
// first.
func TestFlightRing(t *testing.T) {
	f := NewFlight(4)
	for i := 1; i <= 10; i++ {
		f.Record(SpanEvent{Name: "s", ID: SpanID(i), Start: int64(i)})
	}
	got := f.Recent()
	if len(got) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(got))
	}
	for i, ev := range got {
		if want := SpanID(7 + i); ev.ID != want {
			t.Fatalf("slot %d: id %d, want %d", i, ev.ID, want)
		}
	}
}

// TestFlightNilSafety: the nil recorder no-ops.
func TestFlightNilSafety(t *testing.T) {
	var f *Flight
	f.Record(SpanEvent{})
	if f.Recent() != nil {
		t.Fatal("nil flight returned events")
	}
	f.Dump(&bytes.Buffer{})
}

// TestFlightConcurrent hammers the ring from many writers; under -race
// this proves Record/Recent are race-free, and the surviving events must
// be in sequence order with no duplicates.
func TestFlightConcurrent(t *testing.T) {
	f := NewFlight(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Record(SpanEvent{Name: "w", ID: SpanID(w*1000 + i)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			f.Recent()
		}
	}()
	wg.Wait()
	<-done
	got := f.Recent()
	if len(got) != 64 {
		t.Fatalf("ring holds %d events, want 64", len(got))
	}
}

// TestFlightTracerHook: a sink with a flight recorder mirrors every
// ended span into the ring.
func TestFlightTracerHook(t *testing.T) {
	sink := NewSink().WithFlightRecorder(8)
	sink.Start("a").End()
	sink.Start("b").End()
	got := sink.Flight.Recent()
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("flight ring after two spans: %+v", got)
	}
	var buf bytes.Buffer
	sink.Flight.Dump(&buf)
	out := buf.String()
	if !strings.Contains(out, "last 2 of 2 span(s)") || !strings.Contains(out, " a ") {
		t.Fatalf("dump:\n%s", out)
	}
}
