package obs

import "math"

// HDR-style log-linear latency buckets. The PR 5 grid (LatencyBuckets,
// 15 half-decade steps) bounds any bucket-derived percentile to a ~3.2×
// band; that is fine for spotting a stage that fell off a cliff and
// useless for a regression gate that must resolve a 20% shift. The
// log-linear layout fixes the resolution without giving up the fixed
// atomic-array histogram: each power-of-two octave is divided into
// hdrSubBuckets equal linear sub-buckets, so the relative quantization
// error is at most 1/hdrSubBuckets (12.5%) everywhere in range before
// interpolation, and far less after it.

const (
	hdrMinPow2    = 10 // 2^10 ns ≈ 1µs — below the first bound lands in bucket 0
	hdrMaxPow2    = 34 // 2^34 ns ≈ 17.2s — beyond lands in the +Inf bucket
	hdrSubBuckets = 8
)

// HDRLatencyBuckets are the default histogram bounds for duration
// metrics resolved through Sink.LatencyHistogram, in nanoseconds:
// log-linear (8 linear sub-buckets per power-of-two octave) from ~1µs to
// ~17.2s, 193 bounds total. Quantiles interpolated from these buckets
// (HistogramValue.Quantile) are accurate to well under the 12.5%
// sub-bucket width — tight enough to gate on a 20% latency regression.
var HDRLatencyBuckets = hdrBuckets()

func hdrBuckets() []float64 {
	b := make([]float64, 0, (hdrMaxPow2-hdrMinPow2)*hdrSubBuckets+1)
	for e := hdrMinPow2; e < hdrMaxPow2; e++ {
		base := math.Ldexp(1, e)
		for j := 0; j < hdrSubBuckets; j++ {
			b = append(b, base*(1+float64(j)/hdrSubBuckets))
		}
	}
	return append(b, math.Ldexp(1, hdrMaxPow2))
}

// Quantile estimates the p-quantile of the recorded distribution by
// linear interpolation inside the bucket where the target rank falls —
// the histogram-side analogue of percentileNS. Out-of-range p clamps;
// an empty histogram reports 0. Samples in the +Inf bucket are credited
// at the last finite bound (the estimator cannot see past it).
func (h HistogramValue) Quantile(p float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(h.Count)
	var cum uint64
	for i, c := range h.Counts {
		if i >= len(h.Bounds) {
			return h.Bounds[len(h.Bounds)-1]
		}
		if float64(cum+c) >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			hi := h.Bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return h.Bounds[len(h.Bounds)-1]
}
