package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// The run ledger: a structured, deterministic per-run artifact. A Journal
// accumulates the run manifest (who ran, on what hardware, with which
// cache/batch/worker configuration), one WindowRecord per extraction
// window or ORC tile (signature, cache classification, per-stage
// latencies, worker/batch attribution), and — at write time — the top-K
// slowest exemplars per stage. WriteLedger renders everything, together
// with a metrics snapshot and the span trace, as JSON lines: one
// self-describing object per line, each tagged with a "t" type field, in
// a fixed section and sort order so two ledgers of the same run data are
// byte-identical.
//
// The Journal obeys the Sink contract: the nil *Journal (and the nil
// *WindowRecord) is a no-op on every method, library code only ever
// writes into it, and nothing an algorithm reads ever comes back out —
// ledger-on runs are byte-identical to ledger-off (TestRunObsDeterminism).

// StageID indexes the per-stage latency slots of a WindowRecord. The
// stages are the flow's canonical pipeline order; the ledger schema
// names them so postopc-report can diff per-stage percentiles across
// runs by name.
type StageID int

const (
	StageClip StageID = iota
	StageCanonicalize
	StageOPC
	StageImage
	StageContour
	StageProfile
	// NumStages sizes per-stage arrays.
	NumStages
)

// stageNames are the ledger-schema stage labels, indexed by StageID.
var stageNames = [NumStages]string{"clip", "canonicalize", "opc", "image", "contour", "profile"}

// String returns the ledger label of a stage ("" out of range).
func (st StageID) String() string {
	if st < 0 || st >= NumStages {
		return ""
	}
	return stageNames[st]
}

// Manifest identifies one run: the tool and its arguments, the host
// environment, and the vector-kernel build/CPU capabilities. The cli
// package fills it from the build info; flow adds run-shape fields
// (workers, batch, corner grid, cache config, env fingerprint) through
// Journal.SetField.
type Manifest struct {
	Tool        string   `json:"tool"`
	Args        []string `json:"args,omitempty"`
	GoVersion   string   `json:"go"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	NumCPU      int      `json:"numcpu"`
	VekLevel    string   `json:"vek_level"`
	CPUFeatures string   `json:"cpu_features"`
	Module      string   `json:"module"`
}

// WindowRecord is the ledger entry of one unit of work: an extraction
// window or an ORC tile. Stage latencies are nanoseconds; a stage the
// window never executed (cache hit, wait) stays 0. Class is the cache
// classification: "compute" (no cache), "miss" (leader, computed and
// published), "hit" (served from cache), "wait" (blocked on another
// window's single-flight computation). Batch is -1 on the per-window
// path; Worker is the pool slot that ran the window's kernel work.
type WindowRecord struct {
	Index  int
	Kind   string // "window" | "tile"
	Sig    string // hex cache signature ("" when signatures are off)
	Class  string
	Batch  int
	Worker int
	NS     [NumStages]int64
}

// Observe accumulates ns into one stage slot. Nil-safe: instrumented
// code records unconditionally and the ledger-off path is a single
// branch.
//
//postopc:allocfree
func (r *WindowRecord) Observe(st StageID, ns int64) {
	if r == nil || st < 0 || st >= NumStages {
		return
	}
	r.NS[st] += ns
}

// Total is the sum of the stage slots.
func (r *WindowRecord) Total() int64 {
	if r == nil {
		return 0
	}
	var t int64
	for _, ns := range r.NS {
		t += ns
	}
	return t
}

// Journal accumulates the per-run ledger. Safe for concurrent use; the
// nil *Journal is a no-op on every method.
type Journal struct {
	mu       sync.Mutex
	manifest Manifest
	fields   map[string]string
	records  []WindowRecord
	topK     int
}

// NewJournal returns an empty journal keeping topK exemplars per stage
// in the written ledger (topK <= 0 selects the default of 5).
func NewJournal(topK int) *Journal {
	if topK <= 0 {
		topK = 5
	}
	return &Journal{fields: map[string]string{}, topK: topK}
}

// SetManifest replaces the run manifest.
func (j *Journal) SetManifest(m Manifest) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.manifest = m
	j.mu.Unlock()
}

// SetField records one free-form manifest field ("flow.batch" → "8").
// Re-setting a key overwrites it; the written ledger sorts keys.
func (j *Journal) SetField(key, value string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.fields[key] = value
	j.mu.Unlock()
}

// Record appends a copy of one window record. Nil-safe on both the
// journal and the record, so callers build the record only when the
// ledger is on and hand it over unconditionally.
func (j *Journal) Record(r *WindowRecord) {
	if j == nil || r == nil {
		return
	}
	j.mu.Lock()
	j.records = append(j.records, *r)
	j.mu.Unlock()
}

// Ledger line shapes. Every line carries "t"; encoding/json emits struct
// fields in declaration order, so each shape serializes identically
// across runs of the same data.

type ledgerManifestLine struct {
	T string `json:"t"`
	Manifest
	Fields map[string]string `json:"fields,omitempty"`
}

type ledgerCounterLine struct {
	T     string `json:"t"`
	Name  string `json:"name"`
	Value uint64 `json:"v"`
}

type ledgerGaugeLine struct {
	T     string `json:"t"`
	Name  string `json:"name"`
	Value float64 `json:"v"`
}

type ledgerHistLine struct {
	T     string  `json:"t"`
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Q50   float64 `json:"q50"`
	Q95   float64 `json:"q95"`
	Q99   float64 `json:"q99"`
}

type ledgerStageLine struct {
	T     string `json:"t"`
	Stage string `json:"stage"`
	Count int    `json:"count"`
	Total int64  `json:"total_ns"`
	P50   int64  `json:"p50_ns"`
	P95   int64  `json:"p95_ns"`
	P99   int64  `json:"p99_ns"`
	Max   int64  `json:"max_ns"`
}

type ledgerSpanLine struct {
	T     string `json:"t"`
	Name  string `json:"name"`
	Count int    `json:"count"`
	Total int64  `json:"total_ns"`
	P50   int64  `json:"p50_ns"`
	P99   int64  `json:"p99_ns"`
}

type ledgerWindowLine struct {
	T      string `json:"t"`
	Kind   string `json:"kind"`
	Index  int    `json:"i"`
	Sig    string `json:"sig,omitempty"`
	Class  string `json:"class"`
	Batch  int    `json:"batch"`
	Worker int    `json:"worker"`
	Clip   int64  `json:"clip_ns"`
	Canon  int64  `json:"canonicalize_ns"`
	OPC    int64  `json:"opc_ns"`
	Image  int64  `json:"image_ns"`
	Cont   int64  `json:"contour_ns"`
	Prof   int64  `json:"profile_ns"`
	Total  int64  `json:"total_ns"`
}

type ledgerExemplarLine struct {
	T     string `json:"t"`
	Stage string `json:"stage"`
	Rank  int    `json:"rank"`
	Kind  string `json:"kind"`
	Index int    `json:"i"`
	Sig   string `json:"sig,omitempty"`
	NS    int64  `json:"ns"`
}

// WriteLedger renders the journal, a metrics snapshot and the span trace
// as JSON lines. Section order: manifest, counters, gauges, histograms
// (bucket-interpolated q50/q95/q99), per-stage summaries with exact
// p50/p95/p99 over the raw per-window samples, per-span-name summaries,
// the window records (windows before tiles, by index), and the top-K
// slowest exemplars per stage. Every section is sorted, so the ledger is
// byte-deterministic for a given set of run data.
func (j *Journal) WriteLedger(w io.Writer, snap Snapshot, spans []SpanEvent) error {
	j.mu.Lock()
	manifest := j.manifest
	fields := make(map[string]string, len(j.fields))
	for k, v := range j.fields {
		fields[k] = v
	}
	records := append([]WindowRecord(nil), j.records...)
	topK := j.topK
	j.mu.Unlock()

	enc := json.NewEncoder(w)
	emit := func(v interface{}) error { return enc.Encode(v) }

	if err := emit(ledgerManifestLine{T: "manifest", Manifest: manifest, Fields: fields}); err != nil {
		return err
	}
	for _, c := range snap.Counters {
		if err := emit(ledgerCounterLine{T: "counter", Name: c.Name, Value: c.Value}); err != nil {
			return err
		}
	}
	for _, g := range snap.Gauges {
		if err := emit(ledgerGaugeLine{T: "gauge", Name: g.Name, Value: g.Value}); err != nil {
			return err
		}
	}
	for _, h := range snap.Histograms {
		if err := emit(ledgerHistLine{
			T: "hist", Name: h.Name, Count: h.Count, Sum: h.Sum,
			Q50: h.Quantile(0.50), Q95: h.Quantile(0.95), Q99: h.Quantile(0.99),
		}); err != nil {
			return err
		}
	}

	sort.SliceStable(records, func(a, b int) bool {
		if records[a].Kind != records[b].Kind {
			return records[a].Kind > records[b].Kind // "window" before "tile"
		}
		return records[a].Index < records[b].Index
	})

	// Exact per-stage percentiles over the raw samples: only records that
	// actually executed a stage contribute, so cache hits do not dilute
	// the compute distribution.
	for st := StageID(0); st < NumStages; st++ {
		var samples []int64
		var total, max int64
		for i := range records {
			if ns := records[i].NS[st]; ns > 0 {
				samples = append(samples, ns)
				total += ns
				if ns > max {
					max = ns
				}
			}
		}
		if len(samples) == 0 {
			continue
		}
		sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
		if err := emit(ledgerStageLine{
			T: "stage", Stage: stageNames[st], Count: len(samples), Total: total,
			P50: percentileNS(samples, 0.50), P95: percentileNS(samples, 0.95),
			P99: percentileNS(samples, 0.99), Max: max,
		}); err != nil {
			return err
		}
	}

	if err := writeSpanSummaries(emit, spans); err != nil {
		return err
	}

	for i := range records {
		r := &records[i]
		if err := emit(ledgerWindowLine{
			T: "window", Kind: r.Kind, Index: r.Index, Sig: r.Sig, Class: r.Class,
			Batch: r.Batch, Worker: r.Worker,
			Clip: r.NS[StageClip], Canon: r.NS[StageCanonicalize], OPC: r.NS[StageOPC],
			Image: r.NS[StageImage], Cont: r.NS[StageContour], Prof: r.NS[StageProfile],
			Total: r.Total(),
		}); err != nil {
			return err
		}
	}

	// Top-K slowest exemplars per stage, keyed by signature: the handles
	// AdaOPC-style recipe reuse and cache tuning need — *which* patterns
	// cost the most, not just how much the aggregate cost.
	for st := StageID(0); st < NumStages; st++ {
		idx := make([]int, 0, len(records))
		for i := range records {
			if records[i].NS[st] > 0 {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			continue
		}
		sort.SliceStable(idx, func(a, b int) bool { return records[idx[a]].NS[st] > records[idx[b]].NS[st] })
		if len(idx) > topK {
			idx = idx[:topK]
		}
		for rank, i := range idx {
			r := &records[i]
			if err := emit(ledgerExemplarLine{
				T: "exemplar", Stage: stageNames[st], Rank: rank + 1,
				Kind: r.Kind, Index: r.Index, Sig: r.Sig, NS: r.NS[st],
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSpanSummaries emits one "span" line per span name, sorted by name.
func writeSpanSummaries(emit func(interface{}) error, spans []SpanEvent) error {
	byName := map[string][]int64{}
	for _, ev := range spans {
		byName[ev.Name] = append(byName[ev.Name], ev.Dur)
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		durs := byName[n]
		sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
		var total int64
		for _, d := range durs {
			total += d
		}
		if err := emit(ledgerSpanLine{
			T: "span", Name: n, Count: len(durs), Total: total,
			P50: percentileNS(durs, 0.50), P99: percentileNS(durs, 0.99),
		}); err != nil {
			return err
		}
	}
	return nil
}
