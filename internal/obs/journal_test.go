package obs

import (
	"bytes"
	"strings"
	"testing"
)

// testJournal builds a journal with a fixed manifest and a deterministic
// set of window records; scale inflates every stage latency, so two
// journals at different scales model a uniform regression.
func testJournal(scale int64) *Journal {
	j := NewJournal(3)
	j.SetManifest(Manifest{
		Tool: "test", GoVersion: "go1.x", GOOS: "linux", GOARCH: "amd64",
		GOMAXPROCS: 4, NumCPU: 4, VekLevel: "v1", CPUFeatures: "none", Module: "postopc",
	})
	j.SetField("flow.workers", "4")
	j.SetField("flow.batch", "8")
	for i := 0; i < 10; i++ {
		rec := &WindowRecord{Index: i, Kind: "window", Sig: "sig", Class: "miss", Batch: i / 4, Worker: i % 2}
		rec.Observe(StageClip, int64(1000+100*i)*scale)
		rec.Observe(StageOPC, int64(50000+1000*i)*scale)
		rec.Observe(StageImage, int64(200000+5000*i)*scale)
		j.Record(rec)
	}
	// A couple of cache hits: no stage work, still attributed.
	for i := 10; i < 12; i++ {
		j.Record(&WindowRecord{Index: i, Kind: "window", Sig: "sig", Class: "hit", Batch: -1, Worker: 0})
	}
	return j
}

func ledgerBytes(t *testing.T, j *Journal, snap Snapshot, spans []SpanEvent) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := j.WriteLedger(&buf, snap, spans); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLedgerRoundTrip: a written ledger parses back to the same manifest,
// fields, records, stage summaries and exemplars.
func TestLedgerRoundTrip(t *testing.T) {
	j := testJournal(1)
	snap := Snapshot{
		Counters: []CounterValue{{Name: "cache.hits_total", Value: 2}, {Name: "cache.misses_total", Value: 10}},
		Gauges:   []GaugeValue{{Name: "par.items_per_worker", Value: 2.5}},
	}
	spans := []SpanEvent{{Name: "flow.run", ID: 1, Start: 0, Dur: 5e6}}
	raw := ledgerBytes(t, j, snap, spans)

	l, err := ReadLedger(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if l.Manifest.Tool != "test" || l.Manifest.VekLevel != "v1" {
		t.Fatalf("manifest did not round-trip: %+v", l.Manifest)
	}
	if l.Fields["flow.workers"] != "4" || l.Fields["flow.batch"] != "8" {
		t.Fatalf("fields did not round-trip: %v", l.Fields)
	}
	if len(l.Windows) != 12 {
		t.Fatalf("got %d windows, want 12", len(l.Windows))
	}
	if l.Counters["cache.hits_total"] != 2 {
		t.Fatalf("counters did not round-trip: %v", l.Counters)
	}
	// Stage summaries: clip, opc, image executed; the two hits contribute
	// no samples.
	if len(l.Stages) != 3 {
		t.Fatalf("got %d stage summaries, want 3: %+v", len(l.Stages), l.Stages)
	}
	for _, s := range l.Stages {
		if s.Count != 10 {
			t.Fatalf("stage %s: %d samples, want 10", s.Stage, s.Count)
		}
		if s.P50 <= 0 || s.P99 < s.P50 || s.Max < s.P99 {
			t.Fatalf("stage %s: implausible percentiles %+v", s.Stage, s)
		}
	}
	// Exemplars: topK=3 per executed stage, rank 1 is the slowest (index 9
	// — latencies grow with index).
	perStage := map[string][]LedgerExemplar{}
	for _, e := range l.Exemplars {
		perStage[e.Stage] = append(perStage[e.Stage], e)
	}
	if len(perStage) != 3 {
		t.Fatalf("exemplar stages: %v", perStage)
	}
	for st, exs := range perStage {
		if len(exs) != 3 {
			t.Fatalf("stage %s: %d exemplars, want 3", st, len(exs))
		}
		if exs[0].Rank != 1 || exs[0].Index != 9 {
			t.Fatalf("stage %s: top exemplar %+v, want rank 1 index 9", st, exs[0])
		}
	}
	// Classification survives.
	hits := 0
	for _, w := range l.Windows {
		if w.Class == "hit" {
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("got %d hit windows, want 2", hits)
	}
}

// TestLedgerDeterministic: the same run data renders byte-identically,
// regardless of record insertion order.
func TestLedgerDeterministic(t *testing.T) {
	snap := Snapshot{Counters: []CounterValue{{Name: "c", Value: 1}}}
	a := ledgerBytes(t, testJournal(1), snap, nil)

	// Same records, reversed insertion order.
	j := NewJournal(3)
	j.SetManifest(Manifest{
		Tool: "test", GoVersion: "go1.x", GOOS: "linux", GOARCH: "amd64",
		GOMAXPROCS: 4, NumCPU: 4, VekLevel: "v1", CPUFeatures: "none", Module: "postopc",
	})
	j.SetField("flow.batch", "8")
	j.SetField("flow.workers", "4")
	for i := 11; i >= 10; i-- {
		j.Record(&WindowRecord{Index: i, Kind: "window", Sig: "sig", Class: "hit", Batch: -1, Worker: 0})
	}
	for i := 9; i >= 0; i-- {
		rec := &WindowRecord{Index: i, Kind: "window", Sig: "sig", Class: "miss", Batch: i / 4, Worker: i % 2}
		rec.Observe(StageClip, int64(1000+100*i))
		rec.Observe(StageOPC, int64(50000+1000*i))
		rec.Observe(StageImage, int64(200000+5000*i))
		j.Record(rec)
	}
	b := ledgerBytes(t, j, snap, nil)
	if !bytes.Equal(a, b) {
		t.Fatal("ledger bytes depend on record insertion order")
	}
}

// TestJournalNilSafety: the nil journal and nil record are no-ops on
// every method — the ledger-off path has no conditionals at call sites.
func TestJournalNilSafety(t *testing.T) {
	var j *Journal
	j.SetManifest(Manifest{Tool: "x"})
	j.SetField("k", "v")
	j.Record(&WindowRecord{})
	j.Record(nil)
	var r *WindowRecord
	r.Observe(StageOPC, 5)
	if r.Total() != 0 {
		t.Fatal("nil record has a total")
	}
	var s *Sink
	if s.Ledger() != nil {
		t.Fatal("nil sink resolves a journal")
	}
	s.Ledger().Record(nil)
	// Out-of-range stages are dropped, not a panic.
	rec := &WindowRecord{}
	rec.Observe(StageID(-1), 5)
	rec.Observe(NumStages, 5)
	if rec.Total() != 0 {
		t.Fatal("out-of-range stage recorded")
	}
}

// TestSinkWriteLedger: the sink-level convenience gathers snapshot and
// spans; a sink without a journal still writes metric/span sections.
func TestSinkWriteLedger(t *testing.T) {
	sink := NewSink().WithJournal(0).WithFlightRecorder(0)
	sink.Counter("cache.hits_total").Add(5)
	sink.Start("flow.run").End()
	sink.Ledger().SetManifest(Manifest{Tool: "t"})
	sink.Ledger().Record(&WindowRecord{Index: 0, Kind: "window", Class: "compute", Batch: -1})
	var buf bytes.Buffer
	if err := sink.WriteLedger(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"t":"manifest"`, `"t":"counter"`, `"t":"span"`, `"t":"window"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("ledger missing %s:\n%s", want, out)
		}
	}
	l, err := ReadLedger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Windows) != 1 || l.Counters["cache.hits_total"] != 5 {
		t.Fatalf("sink ledger did not round-trip: %+v", l)
	}

	// No journal: metrics still exported.
	plain := NewSink()
	plain.Counter("c").Inc()
	buf.Reset()
	if err := plain.WriteLedger(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"name":"c"`) {
		t.Fatalf("journal-less ledger missing metrics:\n%s", buf.String())
	}
}

// TestLedgerSummaryTables smoke-tests the report rendering.
func TestLedgerSummaryTables(t *testing.T) {
	raw := ledgerBytes(t, testJournal(1), Snapshot{}, []SpanEvent{{Name: "flow.run", Dur: 1e6}})
	l, err := ReadLedger(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tb := range l.SummaryTables() {
		tb.Fprint(&buf)
	}
	out := buf.String()
	for _, want := range []string{"run manifest", "stage latency", "span summary", "cache classification", "slowest windows"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
