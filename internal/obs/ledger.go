package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"postopc/internal/report"
)

// Ledger reading, summarizing and diffing — the read half of the run
// ledger, used by cmd/postopc-report and the regression gate. It lives
// in obs (the one package exempt from the obswrite analyzer) so the
// export/report boundary stays the only place telemetry is ever read.

// Ledger is a parsed run ledger.
type Ledger struct {
	Manifest  Manifest
	Fields    map[string]string
	Counters  map[string]uint64
	Gauges    map[string]float64
	Hists     []LedgerHist
	Stages    []LedgerStage
	Spans     []LedgerSpan
	Windows   []LedgerWindow
	Exemplars []LedgerExemplar
}

// LedgerHist is one histogram summary line.
type LedgerHist struct {
	Name          string
	Count         uint64
	Sum           float64
	Q50, Q95, Q99 float64
}

// LedgerStage is one exact per-stage percentile line.
type LedgerStage struct {
	Stage               string
	Count               int
	Total               int64
	P50, P95, P99, Max int64
}

// LedgerSpan is one per-span-name summary line.
type LedgerSpan struct {
	Name     string
	Count    int
	Total    int64
	P50, P99 int64
}

// LedgerWindow is one per-window record line.
type LedgerWindow struct {
	Kind   string
	Index  int
	Sig    string
	Class  string
	Batch  int
	Worker int
	NS     [NumStages]int64
	Total  int64
}

// LedgerExemplar is one top-K slowest-window line.
type LedgerExemplar struct {
	Stage string
	Rank  int
	Kind  string
	Index int
	Sig   string
	NS    int64
}

// ledgerAnyLine is the union of every line shape, for decoding.
type ledgerAnyLine struct {
	T string `json:"t"`
	Manifest
	Fields map[string]string `json:"fields"`

	Name   string  `json:"name"`
	V      float64 `json:"v"`
	Count  float64 `json:"count"`
	Sum    float64 `json:"sum"`
	Q50    float64 `json:"q50"`
	Q95    float64 `json:"q95"`
	Q99    float64 `json:"q99"`
	Stage  string  `json:"stage"`
	Total  int64   `json:"total_ns"`
	P50    int64   `json:"p50_ns"`
	P95    int64   `json:"p95_ns"`
	P99    int64   `json:"p99_ns"`
	Max    int64   `json:"max_ns"`
	Kind   string  `json:"kind"`
	Index  int     `json:"i"`
	Sig    string  `json:"sig"`
	Class  string  `json:"class"`
	Batch  int     `json:"batch"`
	Worker int     `json:"worker"`
	Rank   int     `json:"rank"`
	NS     int64   `json:"ns"`
	Clip   int64   `json:"clip_ns"`
	Canon  int64   `json:"canonicalize_ns"`
	OPC    int64   `json:"opc_ns"`
	Image  int64   `json:"image_ns"`
	Cont   int64   `json:"contour_ns"`
	Prof   int64   `json:"profile_ns"`
}

// ReadLedger parses a JSON-lines run ledger. Unknown line types are
// skipped, so the format can grow fields and sections without breaking
// older readers.
func ReadLedger(r io.Reader) (*Ledger, error) {
	l := &Ledger{
		Fields:   map[string]string{},
		Counters: map[string]uint64{},
		Gauges:   map[string]float64{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var ln ledgerAnyLine
		if err := json.Unmarshal([]byte(raw), &ln); err != nil {
			return nil, fmt.Errorf("ledger line %d: %w", lineNo, err)
		}
		switch ln.T {
		case "manifest":
			l.Manifest = ln.Manifest
			for k, v := range ln.Fields {
				l.Fields[k] = v
			}
		case "counter":
			l.Counters[ln.Name] = uint64(ln.V)
		case "gauge":
			l.Gauges[ln.Name] = ln.V
		case "hist":
			l.Hists = append(l.Hists, LedgerHist{Name: ln.Name, Count: uint64(ln.Count), Sum: ln.Sum, Q50: ln.Q50, Q95: ln.Q95, Q99: ln.Q99})
		case "stage":
			l.Stages = append(l.Stages, LedgerStage{Stage: ln.Stage, Count: int(ln.Count), Total: ln.Total, P50: ln.P50, P95: ln.P95, P99: ln.P99, Max: ln.Max})
		case "span":
			l.Spans = append(l.Spans, LedgerSpan{Name: ln.Name, Count: int(ln.Count), Total: ln.Total, P50: ln.P50, P99: ln.P99})
		case "window":
			l.Windows = append(l.Windows, LedgerWindow{
				Kind: ln.Kind, Index: ln.Index, Sig: ln.Sig, Class: ln.Class, Batch: ln.Batch, Worker: ln.Worker,
				NS:    [NumStages]int64{ln.Clip, ln.Canon, ln.OPC, ln.Image, ln.Cont, ln.Prof},
				Total: ln.Total,
			})
		case "exemplar":
			l.Exemplars = append(l.Exemplars, LedgerExemplar{Stage: ln.Stage, Rank: ln.Rank, Kind: ln.Kind, Index: ln.Index, Sig: ln.Sig, NS: ln.NS})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if l.Manifest.Tool == "" && len(l.Counters) == 0 && len(l.Windows) == 0 && len(l.Stages) == 0 {
		return nil, fmt.Errorf("not a run ledger (no manifest, metrics or windows)")
	}
	return l, nil
}

// Metrics flattens the ledger into the named scalar series the diff gate
// compares: "stage.<name>.{p50,p95,p99,max}_ns" and ".count" from the
// exact per-stage lines, "hist.<name>.{q50,q95,q99}" and ".count" from
// histogram summaries, "span.<name>.{p50,p99,total}_ns", raw
// "counter.<name>" / "gauge.<name>" values, plus derived series:
// "cache.hit_rate" and "windows.count".
func (l *Ledger) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, s := range l.Stages {
		m["stage."+s.Stage+".p50_ns"] = float64(s.P50)
		m["stage."+s.Stage+".p95_ns"] = float64(s.P95)
		m["stage."+s.Stage+".p99_ns"] = float64(s.P99)
		m["stage."+s.Stage+".max_ns"] = float64(s.Max)
		m["stage."+s.Stage+".count"] = float64(s.Count)
	}
	for _, h := range l.Hists {
		m["hist."+h.Name+".q50"] = h.Q50
		m["hist."+h.Name+".q95"] = h.Q95
		m["hist."+h.Name+".q99"] = h.Q99
		m["hist."+h.Name+".count"] = float64(h.Count)
	}
	for _, s := range l.Spans {
		m["span."+s.Name+".p50_ns"] = float64(s.P50)
		m["span."+s.Name+".p99_ns"] = float64(s.P99)
		m["span."+s.Name+".total_ns"] = float64(s.Total)
	}
	for name, v := range l.Counters {
		m["counter."+name] = float64(v)
	}
	for name, v := range l.Gauges {
		m["gauge."+name] = v
	}
	if len(l.Windows) > 0 {
		m["windows.count"] = float64(len(l.Windows))
	}
	hits := float64(l.Counters["cache.hits_total"])
	misses := float64(l.Counters["cache.misses_total"])
	if hits+misses > 0 {
		m["cache.hit_rate"] = hits / (hits + misses)
	}
	return m
}

// ReadBenchMetrics flattens a committed BENCH_*.json baseline into the
// same named-scalar form as Ledger.Metrics: "bench.<benchmark>.<path>"
// for every numeric leaf of each results entry ("bench.BenchmarkFoo.
// engine.ns_per_op"). Non-numeric leaves are skipped.
func ReadBenchMetrics(r io.Reader) (map[string]float64, error) {
	var doc struct {
		Results []map[string]interface{} `json:"results"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, err
	}
	if len(doc.Results) == 0 {
		return nil, fmt.Errorf("not a bench baseline (no results array)")
	}
	m := map[string]float64{}
	for _, res := range doc.Results {
		name, _ := res["benchmark"].(string)
		if name == "" {
			name, _ = res["name"].(string)
		}
		if name == "" {
			continue
		}
		for k, v := range res {
			if k == "benchmark" || k == "name" {
				continue
			}
			flattenBench(m, "bench."+name+"."+k, v)
		}
	}
	return m, nil
}

func flattenBench(m map[string]float64, prefix string, v interface{}) {
	switch x := v.(type) {
	case float64:
		m[prefix] = x
	case map[string]interface{}:
		for k, sub := range x {
			flattenBench(m, prefix+"."+k, sub)
		}
	}
}

// DiffOptions configure a regression diff.
type DiffOptions struct {
	// ThresholdPct is the default allowed worsening in percent (20 means a
	// metric may grow to 1.2× its baseline before it regresses).
	ThresholdPct float64
	// PerMetric overrides the threshold for specific metric names.
	PerMetric map[string]float64
	// Rename maps current-run metric names onto baseline names, so a
	// ledger series can gate against a BENCH_*.json series
	// ("stage.image.p50_ns" → "bench.BenchmarkGaussianAerial.engine.ns_per_op").
	Rename map[string]string
	// MinNS drops latency comparisons whose baseline is below this floor
	// (sub-resolution timings are noise, not signal).
	MinNS float64
}

// DiffRow is one compared metric.
type DiffRow struct {
	Metric    string
	Base, Cur float64
	DeltaPct  float64
	Threshold float64
	Regressed bool
}

// DiffResult is the outcome of comparing two metric sets.
type DiffResult struct {
	Rows        []DiffRow
	Regressions int
}

// lowerIsWorse reports whether a metric regresses by shrinking (rates)
// rather than growing (latencies, counts, allocations).
func lowerIsWorse(name string) bool {
	return strings.HasSuffix(name, "hit_rate") || strings.HasSuffix(name, "_rate")
}

// latencyMetric reports whether a metric is a nanosecond series (subject
// to the MinNS noise floor).
func latencyMetric(name string) bool {
	return strings.HasSuffix(name, "_ns") || strings.HasSuffix(name, "ns_per_op") ||
		strings.HasSuffix(name, ".q50") || strings.HasSuffix(name, ".q95") || strings.HasSuffix(name, ".q99")
}

// Diff compares the current run against a baseline over the intersection
// of their metric names (after Rename), flagging every metric that
// worsened past its threshold. Rows come back sorted: regressions first
// (largest relative worsening first), then the rest by name.
func Diff(base, cur map[string]float64, opt DiffOptions) DiffResult {
	var res DiffResult
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		baseName := name
		if opt.Rename != nil {
			if mapped, ok := opt.Rename[name]; ok {
				baseName = mapped
			}
		}
		b, ok := base[baseName]
		if !ok {
			continue
		}
		c := cur[name]
		if latencyMetric(name) && b < opt.MinNS {
			continue
		}
		row := DiffRow{Metric: name, Base: b, Cur: c}
		if baseName != name {
			row.Metric = name + "→" + baseName
		}
		row.Threshold = opt.ThresholdPct
		if t, ok := opt.PerMetric[name]; ok {
			row.Threshold = t
		}
		if b != 0 {
			row.DeltaPct = (c - b) / b * 100
		} else if c != 0 {
			row.DeltaPct = 100
		}
		if lowerIsWorse(name) {
			row.Regressed = c < b*(1-row.Threshold/100)
		} else {
			row.Regressed = c > b*(1+row.Threshold/100)
		}
		if row.Regressed {
			res.Regressions++
		}
		res.Rows = append(res.Rows, row)
	}
	sort.SliceStable(res.Rows, func(i, j int) bool {
		a, b := res.Rows[i], res.Rows[j]
		if a.Regressed != b.Regressed {
			return a.Regressed
		}
		if a.Regressed && a.DeltaPct != b.DeltaPct {
			return a.DeltaPct > b.DeltaPct
		}
		return a.Metric < b.Metric
	})
	return res
}

// Table renders the diff as a report table.
func (d DiffResult) Table() *report.Table {
	tb := report.NewTable("regression diff", "metric", "base", "current", "delta", "threshold", "verdict")
	for _, r := range d.Rows {
		verdict := "ok"
		if r.Regressed {
			verdict = "REGRESSED"
		}
		tb.Add(r.Metric,
			formatFloat(r.Base), formatFloat(r.Cur),
			fmt.Sprintf("%+.1f%%", r.DeltaPct),
			fmt.Sprintf("%.0f%%", r.Threshold),
			verdict)
	}
	return tb
}

// SummaryTables renders a parsed ledger as report tables: manifest,
// exact stage percentiles, span summary, cache classification mix, and
// the slowest exemplars — postopc-report's human view of a run.
func (l *Ledger) SummaryTables() []*report.Table {
	man := report.NewTable("run manifest", "key", "value")
	m := l.Manifest
	man.Add("tool", m.Tool)
	man.Add("go", fmt.Sprintf("%s %s/%s", m.GoVersion, m.GOOS, m.GOARCH))
	man.Add("gomaxprocs", fmt.Sprintf("%d (numcpu %d)", m.GOMAXPROCS, m.NumCPU))
	man.Add("vek", fmt.Sprintf("%s cpu=%s", m.VekLevel, m.CPUFeatures))
	man.Add("module", m.Module)
	keys := make([]string, 0, len(l.Fields))
	for k := range l.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		man.Add(k, l.Fields[k])
	}

	st := report.NewTable("stage latency (exact percentiles)", "stage", "count", "total(ms)", "p50(ms)", "p95(ms)", "p99(ms)", "max(ms)")
	for _, s := range l.Stages {
		st.AddF(3, s.Stage, s.Count, float64(s.Total)/1e6, float64(s.P50)/1e6,
			float64(s.P95)/1e6, float64(s.P99)/1e6, float64(s.Max)/1e6)
	}

	sp := report.NewTable("span summary", "span", "count", "total(ms)", "p50(ms)", "p99(ms)")
	for _, s := range l.Spans {
		sp.AddF(3, s.Name, s.Count, float64(s.Total)/1e6, float64(s.P50)/1e6, float64(s.P99)/1e6)
	}

	classes := map[string]int{}
	for _, w := range l.Windows {
		classes[w.Class]++
	}
	classNames := make([]string, 0, len(classes))
	for c := range classes {
		classNames = append(classNames, c)
	}
	sort.Strings(classNames)
	cl := report.NewTable("cache classification", "class", "windows")
	for _, c := range classNames {
		cl.AddF(0, c, classes[c])
	}

	ex := report.NewTable("slowest windows per stage", "stage", "rank", "kind", "index", "ms", "signature")
	for _, e := range l.Exemplars {
		sig := e.Sig
		if len(sig) > 16 {
			sig = sig[:16]
		}
		ex.AddF(3, e.Stage, e.Rank, e.Kind, e.Index, float64(e.NS)/1e6, sig)
	}

	return []*report.Table{man, st, sp, cl, ex}
}
