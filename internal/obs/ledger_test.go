package obs

import (
	"bytes"
	"strings"
	"testing"
)

// ledgerMetrics writes a journal out and reads its flat metric view back
// — the exact pipeline postopc-report diff runs.
func ledgerMetrics(t *testing.T, j *Journal) map[string]float64 {
	t.Helper()
	snap := Snapshot{
		Counters: []CounterValue{{Name: "cache.hits_total", Value: 2}, {Name: "cache.misses_total", Value: 10}},
	}
	raw := ledgerBytes(t, j, snap, []SpanEvent{{Name: "flow.run", ID: 1, Dur: 5e6}})
	l, err := ReadLedger(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return l.Metrics()
}

// TestDiffFlagsInjectedRegression is the acceptance gate: a 25% uniform
// per-stage latency inflation between two otherwise identical runs must
// regress past a 20% threshold, and the identical pair must diff clean.
func TestDiffFlagsInjectedRegression(t *testing.T) {
	base := ledgerMetrics(t, testJournal(1))
	slow := ledgerMetrics(t, testJournal(5)) // 5× — far past any 20% gate
	same := ledgerMetrics(t, testJournal(1))

	opt := DiffOptions{ThresholdPct: 20}
	if d := Diff(base, same, opt); d.Regressions != 0 {
		t.Fatalf("identical ledgers regressed: %+v", d.Rows[:d.Regressions])
	}
	d := Diff(base, slow, opt)
	if d.Regressions == 0 {
		t.Fatal("5× stage latencies not flagged at a 20% threshold")
	}
	// Every stage percentile series must be among the regressions, and
	// regressions sort first.
	regressed := map[string]bool{}
	for _, r := range d.Rows[:d.Regressions] {
		if !r.Regressed {
			t.Fatal("rows not sorted regressions-first")
		}
		regressed[r.Metric] = true
	}
	for _, m := range []string{"stage.opc.p50_ns", "stage.opc.p99_ns", "stage.image.p50_ns", "stage.clip.p95_ns"} {
		if !regressed[m] {
			t.Fatalf("expected %s among regressions; got %v", m, regressed)
		}
	}
	// A modest 25% inflation must also trip a 20% gate (the literal
	// acceptance criterion).
	q := NewJournal(3)
	q.SetManifest(Manifest{Tool: "test"})
	for i := 0; i < 10; i++ {
		rec := &WindowRecord{Index: i, Kind: "window", Class: "miss", Batch: -1}
		rec.Observe(StageOPC, (50000+1000*int64(i))*5/4)
		q.Record(rec)
	}
	b := NewJournal(3)
	b.SetManifest(Manifest{Tool: "test"})
	for i := 0; i < 10; i++ {
		rec := &WindowRecord{Index: i, Kind: "window", Class: "miss", Batch: -1}
		rec.Observe(StageOPC, 50000+1000*int64(i))
		b.Record(rec)
	}
	d = Diff(ledgerMetrics(t, b), ledgerMetrics(t, q), opt)
	found := false
	for _, r := range d.Rows {
		if r.Metric == "stage.opc.p50_ns" {
			found = true
			if !r.Regressed {
				t.Fatalf("25%% opc p50 inflation not flagged at 20%%: %+v", r)
			}
		}
	}
	if !found {
		t.Fatal("stage.opc.p50_ns not compared")
	}
}

// TestDiffDirectionAndOverrides: rates regress downward, per-metric
// thresholds override the default, and the MinNS floor drops noise.
func TestDiffDirectionAndOverrides(t *testing.T) {
	base := map[string]float64{"cache.hit_rate": 0.9, "stage.opc.p50_ns": 100, "stage.tiny.p50_ns": 40}
	cur := map[string]float64{"cache.hit_rate": 0.5, "stage.opc.p50_ns": 125, "stage.tiny.p50_ns": 4000}
	d := Diff(base, cur, DiffOptions{ThresholdPct: 20, MinNS: 1000,
		PerMetric: map[string]float64{"stage.opc.p50_ns": 30}})
	byName := map[string]DiffRow{}
	for _, r := range d.Rows {
		byName[r.Metric] = r
	}
	if r, ok := byName["cache.hit_rate"]; !ok || !r.Regressed {
		t.Fatalf("hit-rate collapse not flagged: %+v", byName)
	}
	if r := byName["stage.opc.p50_ns"]; r.Regressed {
		t.Fatalf("25%% growth flagged despite 30%% per-metric threshold: %+v", r)
	}
	if _, ok := byName["stage.tiny.p50_ns"]; ok {
		t.Fatal("sub-MinNS baseline compared")
	}
}

// TestDiffRename maps a ledger series onto a bench-baseline series.
func TestDiffRename(t *testing.T) {
	base := map[string]float64{"bench.BenchmarkX.engine.ns_per_op": 1000}
	cur := map[string]float64{"stage.image.p50_ns": 5000}
	d := Diff(base, cur, DiffOptions{ThresholdPct: 50,
		Rename: map[string]string{"stage.image.p50_ns": "bench.BenchmarkX.engine.ns_per_op"}})
	if len(d.Rows) != 1 || !d.Rows[0].Regressed {
		t.Fatalf("renamed comparison missing or unflagged: %+v", d.Rows)
	}
	if !strings.Contains(d.Rows[0].Metric, "→") {
		t.Fatalf("renamed row should show the mapping: %+v", d.Rows[0])
	}
}

// TestReadBenchMetrics flattens both the flat and the nested
// (baseline/engine) BENCH_*.json result shapes.
func TestReadBenchMetrics(t *testing.T) {
	doc := `{
	  "name": "kernel", "results": [
	    {"benchmark": "BenchmarkA", "ns_per_op": 123.5, "allocs_per_op": 3},
	    {"benchmark": "BenchmarkB", "baseline": {"ns_per_op": 10}, "engine": {"ns_per_op": 2, "note": "x"}}
	  ]}`
	m, err := ReadBenchMetrics(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"bench.BenchmarkA.ns_per_op":          123.5,
		"bench.BenchmarkA.allocs_per_op":      3,
		"bench.BenchmarkB.baseline.ns_per_op": 10,
		"bench.BenchmarkB.engine.ns_per_op":   2,
	}
	for k, v := range want {
		if m[k] != v {
			t.Fatalf("metric %s: got %g want %g (all: %v)", k, m[k], v, m)
		}
	}
	if _, err := ReadBenchMetrics(strings.NewReader(`{"nope": 1}`)); err == nil {
		t.Fatal("non-bench JSON accepted")
	}
}

// TestDiffTable renders verdict rows.
func TestDiffTable(t *testing.T) {
	d := Diff(map[string]float64{"a_ns": 100}, map[string]float64{"a_ns": 300}, DiffOptions{ThresholdPct: 20})
	var buf bytes.Buffer
	d.Table().Fprint(&buf)
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Fatalf("diff table missing verdict:\n%s", buf.String())
	}
}

// TestReadLedgerRejectsGarbage: non-ledger input errors instead of
// returning an empty ledger.
func TestReadLedgerRejectsGarbage(t *testing.T) {
	if _, err := ReadLedger(strings.NewReader("not json\n")); err == nil {
		t.Fatal("invalid JSON accepted")
	}
	if _, err := ReadLedger(strings.NewReader(`{"foo": 1}`)); err == nil {
		t.Fatal("unrelated JSON accepted as a ledger")
	}
}
