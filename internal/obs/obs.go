// Package obs is the run-telemetry layer of the flow–cache–kernel stack:
// a metrics registry (atomic counters, gauges and fixed-bucket latency
// histograms with zero-alloc hot-path updates and deterministic snapshot
// order), span tracing with monotonic timestamps and explicit parent IDs
// (exportable as Chrome trace-event JSON and as a report.Table summary),
// and the HTTP plumbing to expose both (Prometheus text format and expvar
// JSON).
//
// Everything hangs off a Sink, and the zero value is a no-op: a nil *Sink
// — and every handle resolved through one — is safe to use and does
// nothing, so instrumented code carries no conditionals and library
// packages never need to know whether telemetry is on.
//
// Determinism contract: telemetry must never perturb results. Metric and
// span updates only ever write to telemetry state — never to anything an
// algorithm reads — and the clock they read (see clock.go) is confined to
// this package, so a run with a Sink attached is byte-identical to a run
// without one at any worker count (the flow's TestRunObsDeterminism
// asserts this end to end). Snapshots are sorted by metric name, so
// exports are reproducible even though registration order is
// schedule-dependent.
//
// Naming conventions: metric names are lower-case dotted paths,
// "subsystem.metric", with the unit as a suffix — "_total" for counters,
// "_ns" for latency histograms (nanoseconds), bare nouns for gauges
// ("cache.entries"). The Prometheus exporter maps them to
// "postopc_subsystem_metric" series.
package obs

// Sink bundles the telemetry backends of one run. Either field may be nil
// to disable that half; a nil *Sink disables everything. Handles resolved
// from a disabled Sink are nil and no-ops, so callers resolve once and use
// unconditionally.
type Sink struct {
	// Metrics receives counter/gauge/histogram updates.
	Metrics *Registry
	// Trace receives completed spans.
	Trace *Tracer
}

// NewSink returns a Sink with both a metrics registry and a tracer.
func NewSink() *Sink {
	return &Sink{Metrics: NewRegistry(), Trace: NewTracer()}
}

// Enabled reports whether any backend is attached.
func (s *Sink) Enabled() bool {
	return s != nil && (s.Metrics != nil || s.Trace != nil)
}

// Counter resolves a counter handle (nil, a no-op, when disabled).
func (s *Sink) Counter(name string) *Counter {
	if s == nil || s.Metrics == nil {
		return nil
	}
	return s.Metrics.Counter(name)
}

// Gauge resolves a gauge handle (nil, a no-op, when disabled).
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil || s.Metrics == nil {
		return nil
	}
	return s.Metrics.Gauge(name)
}

// LatencyHistogram resolves a histogram handle over the default latency
// buckets (nil, a no-op, when disabled). Observations are nanoseconds.
func (s *Sink) LatencyHistogram(name string) *Histogram {
	if s == nil || s.Metrics == nil {
		return nil
	}
	return s.Metrics.Histogram(name, LatencyBuckets)
}

// CountHistogram resolves a histogram handle over the default count
// buckets (nil, a no-op, when disabled). Observations are item counts —
// gates evaluated per analysis, entries per batch.
func (s *Sink) CountHistogram(name string) *Histogram {
	if s == nil || s.Metrics == nil {
		return nil
	}
	return s.Metrics.Histogram(name, CountBuckets)
}

// Start opens a root span (a zero Span, a no-op, when tracing is
// disabled).
func (s *Sink) Start(name string) Span {
	if s == nil || s.Trace == nil {
		return Span{}
	}
	return s.Trace.Start(name, 0)
}

// StartChild opens a span with an explicit parent (pass parent 0 for a
// root).
func (s *Sink) StartChild(name string, parent SpanID) Span {
	if s == nil || s.Trace == nil {
		return Span{}
	}
	return s.Trace.Start(name, parent)
}
