// Package obs is the run-telemetry layer of the flow–cache–kernel stack:
// a metrics registry (atomic counters, gauges and fixed-bucket latency
// histograms with zero-alloc hot-path updates and deterministic snapshot
// order), span tracing with monotonic timestamps and explicit parent IDs
// (exportable as Chrome trace-event JSON and as a report.Table summary),
// and the HTTP plumbing to expose both (Prometheus text format and expvar
// JSON).
//
// Everything hangs off a Sink, and the zero value is a no-op: a nil *Sink
// — and every handle resolved through one — is safe to use and does
// nothing, so instrumented code carries no conditionals and library
// packages never need to know whether telemetry is on.
//
// Determinism contract: telemetry must never perturb results. Metric and
// span updates only ever write to telemetry state — never to anything an
// algorithm reads — and the clock they read (see clock.go) is confined to
// this package, so a run with a Sink attached is byte-identical to a run
// without one at any worker count (the flow's TestRunObsDeterminism
// asserts this end to end). Snapshots are sorted by metric name, so
// exports are reproducible even though registration order is
// schedule-dependent.
//
// Naming conventions: metric names are lower-case dotted paths,
// "subsystem.metric", with the unit as a suffix — "_total" for counters,
// "_ns" for latency histograms (nanoseconds), bare nouns for gauges
// ("cache.entries"). The Prometheus exporter maps them to
// "postopc_subsystem_metric" series.
package obs

import "io"

// Sink bundles the telemetry backends of one run. Any field may be nil
// to disable that part; a nil *Sink disables everything. Handles resolved
// from a disabled Sink are nil and no-ops, so callers resolve once and use
// unconditionally.
type Sink struct {
	// Metrics receives counter/gauge/histogram updates.
	Metrics *Registry
	// Trace receives completed spans.
	Trace *Tracer
	// Journal receives the run manifest and per-window ledger records
	// (nil unless the run writes a ledger).
	Journal *Journal
	// Flight is the crash-dump ring of recent spans (nil unless enabled).
	Flight *Flight
}

// NewSink returns a Sink with both a metrics registry and a tracer.
// Journal and flight recorder are opt-in via WithJournal /
// WithFlightRecorder.
func NewSink() *Sink {
	return &Sink{Metrics: NewRegistry(), Trace: NewTracer()}
}

// WithJournal attaches a run journal keeping topK exemplars per stage
// (<= 0 for the default) and returns the sink.
func (s *Sink) WithJournal(topK int) *Sink {
	s.Journal = NewJournal(topK)
	return s
}

// WithFlightRecorder attaches a flight-recorder ring of the last n spans
// (<= 0 for the default) and hooks it into the tracer, so every span End
// also lands in the ring. Call at setup, before spans are started.
func (s *Sink) WithFlightRecorder(n int) *Sink {
	s.Flight = NewFlight(n)
	if s.Trace != nil {
		s.Trace.flight = s.Flight
	}
	return s
}

// Enabled reports whether any backend is attached.
func (s *Sink) Enabled() bool {
	return s != nil && (s.Metrics != nil || s.Trace != nil || s.Journal != nil)
}

// Ledger resolves the run journal (nil, a no-op, when disabled). Library
// code only ever writes into it — records, manifest fields — never reads.
func (s *Sink) Ledger() *Journal {
	if s == nil {
		return nil
	}
	return s.Journal
}

// WriteLedger renders the sink's journal, metrics snapshot and span
// trace as a JSON-lines run ledger. Export boundary only (cli/report);
// a sink without a journal writes a ledger with metric and span sections
// but no manifest fields or window records.
func (s *Sink) WriteLedger(w io.Writer) error {
	j := s.Ledger()
	if j == nil {
		j = NewJournal(0)
	}
	var snap Snapshot
	if s != nil && s.Metrics != nil {
		snap = s.Metrics.Snapshot()
	}
	var spans []SpanEvent
	if s != nil && s.Trace != nil {
		spans = s.Trace.Events()
	}
	return j.WriteLedger(w, snap, spans)
}

// Counter resolves a counter handle (nil, a no-op, when disabled).
func (s *Sink) Counter(name string) *Counter {
	if s == nil || s.Metrics == nil {
		return nil
	}
	return s.Metrics.Counter(name)
}

// Gauge resolves a gauge handle (nil, a no-op, when disabled).
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil || s.Metrics == nil {
		return nil
	}
	return s.Metrics.Gauge(name)
}

// LatencyHistogram resolves a histogram handle over the HDR log-linear
// latency buckets (nil, a no-op, when disabled). Observations are
// nanoseconds; quantiles interpolated from the snapshot resolve well
// below the 12.5% sub-bucket width (see hdr.go).
func (s *Sink) LatencyHistogram(name string) *Histogram {
	if s == nil || s.Metrics == nil {
		return nil
	}
	return s.Metrics.Histogram(name, HDRLatencyBuckets)
}

// CountHistogram resolves a histogram handle over the default count
// buckets (nil, a no-op, when disabled). Observations are item counts —
// gates evaluated per analysis, entries per batch.
func (s *Sink) CountHistogram(name string) *Histogram {
	if s == nil || s.Metrics == nil {
		return nil
	}
	return s.Metrics.Histogram(name, CountBuckets)
}

// Start opens a root span (a zero Span, a no-op, when tracing is
// disabled).
func (s *Sink) Start(name string) Span {
	if s == nil || s.Trace == nil {
		return Span{}
	}
	return s.Trace.Start(name, 0)
}

// StartChild opens a span with an explicit parent (pass parent 0 for a
// root).
func (s *Sink) StartChild(name string, parent SpanID) Span {
	if s == nil || s.Trace == nil {
		return Span{}
	}
	return s.Trace.Start(name, parent)
}
