package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety: every handle resolved through a nil or empty Sink must be
// usable and do nothing — instrumented library code carries no
// conditionals, so the nil paths are load-bearing API.
func TestNilSafety(t *testing.T) {
	var s *Sink
	if s.Enabled() {
		t.Fatal("nil sink reports enabled")
	}
	c := s.Counter("x")
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	g := s.Gauge("x")
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge holds a value")
	}
	h := s.LatencyHistogram("x")
	h.Observe(1)
	h.ObserveSince(h.StartTimer())
	sp := s.Start("root")
	if sp.ID() != 0 {
		t.Fatal("disabled span has an identity")
	}
	sp.End()
	s.StartChild("child", sp.ID()).End()
	if (&Sink{}).Enabled() {
		t.Fatal("empty sink reports enabled")
	}
}

// TestRegistryConcurrency hammers one registry from concurrent writers —
// handle resolution and updates interleaved — and checks nothing is lost.
// Run under -race this also proves the hot paths are data-race free.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("shared.counter")
			h := reg.Histogram("shared.hist", LatencyBuckets)
			g := reg.Gauge("shared.gauge")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i))
				g.Set(float64(w))
			}
		}(w)
	}
	wg.Wait()
	s := reg.Snapshot()
	if got := s.Counters[0].Value; got != workers*perWorker {
		t.Fatalf("counter lost updates: got %d want %d", got, workers*perWorker)
	}
	if got := s.Histograms[0].Count; got != workers*perWorker {
		t.Fatalf("histogram lost observations: got %d want %d", got, workers*perWorker)
	}
	wantSum := float64(workers) * float64(perWorker*(perWorker-1)) / 2
	if s.Histograms[0].Sum != wantSum {
		t.Fatalf("histogram sum: got %g want %g", s.Histograms[0].Sum, wantSum)
	}
}

// TestSnapshotDeterministicOrder: snapshots must come out sorted by name
// regardless of the (schedule-dependent) registration order. Ten fresh
// registries populated from concurrent goroutines must all render the same
// order.
func TestSnapshotDeterministicOrder(t *testing.T) {
	names := []string{"zeta.z", "alpha.a", "mid.m", "beta.b", "omega.o"}
	var want []string
	for run := 0; run < 10; run++ {
		reg := NewRegistry()
		var wg sync.WaitGroup
		for _, n := range names {
			wg.Add(1)
			go func(n string) {
				defer wg.Done()
				reg.Counter(n).Inc()
				reg.Gauge(n).Set(1)
				reg.Histogram(n, LatencyBuckets).Observe(1)
			}(n)
		}
		wg.Wait()
		s := reg.Snapshot()
		var got []string
		for _, c := range s.Counters {
			got = append(got, c.Name)
		}
		if !sort.StringsAreSorted(got) {
			t.Fatalf("run %d: counters not sorted: %v", run, got)
		}
		if want == nil {
			want = got
		} else if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: snapshot order changed: %v vs %v", run, got, want)
		}
		for i := range s.Gauges {
			if s.Gauges[i].Name != want[i] || s.Histograms[i].Name != want[i] {
				t.Fatalf("run %d: gauge/histogram order diverges from counter order", run)
			}
		}
	}
}

// TestHistogramBucketBoundaries pins the edge semantics: bounds are upper
// edges, a sample equal to a bound lands in that bound's bucket, and
// anything past the last bound lands in the +Inf bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{10, 100, 1000})
	for _, v := range []float64{0, 10, 10.5, 100, 1000, 1000.1, math.Inf(1)} {
		h.Observe(v)
	}
	s := reg.Snapshot()
	hv := s.Histograms[0]
	want := []uint64{2, 2, 1, 2} // {0,10} {10.5,100} {1000} {1000.1,+Inf}
	if !reflect.DeepEqual(hv.Counts, want) {
		t.Fatalf("bucket counts: got %v want %v", hv.Counts, want)
	}
	if hv.Count != 7 {
		t.Fatalf("count: got %d want 7", hv.Count)
	}
}

// TestHistogramReRegistration: same name + same bucket count returns the
// original handle; a different bucket count is a programming error and
// must panic rather than silently fork the series.
func TestHistogramReRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.Histogram("h", LatencyBuckets)
	if b := reg.Histogram("h", LatencyBuckets); a != b {
		t.Fatal("re-resolution returned a different handle")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched re-registration did not panic")
		}
	}()
	reg.Histogram("h", []float64{1, 2})
}

// TestChromeTraceRoundTrip writes a small trace and decodes it back
// through encoding/json, verifying the event fields, the µs time base and
// the parent linkage survive.
func TestChromeTraceRoundTrip(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("run", 0)
	child := tr.Start("stage", root.ID())
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Args struct {
				ID     uint64 `json:"id"`
				Parent uint64 `json:"parent"`
			} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// Two complete events plus metadata: one process_name, and a
	// thread_name + thread_sort_index pair per span-name lane.
	byName := map[string]int{}
	var xEvents, procMeta, threadMeta int
	laneFor := map[string]int{}
	for i, ev := range got.TraceEvents {
		switch ev.Ph {
		case "X":
			xEvents++
			if ev.Dur < 0 || ev.Ts < 0 {
				t.Fatalf("event %q: negative timestamp/duration", ev.Name)
			}
			byName[ev.Name] = i
		case "M":
			switch ev.Name {
			case "process_name":
				procMeta++
			case "thread_name":
				threadMeta++
			}
		default:
			t.Fatalf("event %q: unexpected ph %q", ev.Name, ev.Ph)
		}
	}
	if xEvents != 2 {
		t.Fatalf("got %d complete events, want 2", xEvents)
	}
	if procMeta != 1 || threadMeta != 2 {
		t.Fatalf("metadata events: %d process_name (want 1), %d thread_name (want 2)", procMeta, threadMeta)
	}
	// Lane naming: each X event's tid must carry a thread_name metadata
	// event naming its span, and distinct names get distinct lanes.
	var raw struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Tid  int             `json:"tid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, ev := range raw.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			var a struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(ev.Args, &a); err != nil {
				t.Fatal(err)
			}
			laneFor[a.Name] = ev.Tid
		}
	}
	for _, ev := range raw.TraceEvents {
		if ev.Ph == "X" && laneFor[ev.Name] != ev.Tid {
			t.Fatalf("span %q on tid %d, but its thread_name lane is %d", ev.Name, ev.Tid, laneFor[ev.Name])
		}
	}
	if laneFor["run"] == laneFor["stage"] {
		t.Fatal("distinct span names share a lane")
	}
	runEv := got.TraceEvents[byName["run"]]
	stageEv := got.TraceEvents[byName["stage"]]
	if stageEv.Args.Parent != runEv.Args.ID {
		t.Fatalf("stage parent %d != run id %d", stageEv.Args.Parent, runEv.Args.ID)
	}
	if runEv.Args.Parent != 0 {
		t.Fatalf("root has parent %d", runEv.Args.Parent)
	}
	if got.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", got.DisplayTimeUnit)
	}
}

// TestTracerEventsOrdered: Events sorts by start time with ID tiebreak, so
// exports are stable for a given recording even though spans complete (and
// append) in arbitrary order.
func TestTracerEventsOrdered(t *testing.T) {
	tr := NewTracer()
	a := tr.Start("a", 0)
	b := tr.Start("b", 0)
	b.End() // b completes first but started second (or same tick)
	a.End()
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Start < evs[i-1].Start ||
			(evs[i].Start == evs[i-1].Start && evs[i].ID < evs[i-1].ID) {
			t.Fatalf("events out of order at %d: %+v", i, evs)
		}
	}
}

// TestWritePrometheus checks the exposition basics a scraper depends on:
// postopc_-prefixed sanitized names, TYPE lines, cumulative le buckets
// ending at +Inf, and _sum/_count for histograms.
func TestWritePrometheus(t *testing.T) {
	sink := NewSink()
	sink.Counter("cache.hits_total").Add(3)
	sink.Gauge("par.items_per_worker").Set(2.5)
	h := sink.Metrics.Histogram("h.lat_ns", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, sink.Metrics.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE postopc_cache_hits_total counter",
		"postopc_cache_hits_total 3",
		"# TYPE postopc_par_items_per_worker gauge",
		"postopc_par_items_per_worker 2.5",
		"# TYPE postopc_h_lat_ns histogram",
		`postopc_h_lat_ns_bucket{le="10"} 1`,
		`postopc_h_lat_ns_bucket{le="100"} 2`,
		`postopc_h_lat_ns_bucket{le="+Inf"} 3`,
		"postopc_h_lat_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestSummaryTable: aggregation keys by span name and orders rows by total
// duration descending.
func TestSummaryTable(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < 3; i++ {
		tr.Start("busy", 0).End()
	}
	tr.Start("quick", 0).End()
	tb := tr.SummaryTable()
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "busy") || !strings.Contains(out, "quick") {
		t.Fatalf("summary missing span rows:\n%s", out)
	}
}

// TestMonotonic: the package clock must never run backwards — span
// durations and ObserveSince deltas rely on it.
func TestMonotonic(t *testing.T) {
	prev := Monotonic()
	for i := 0; i < 1000; i++ {
		now := Monotonic()
		if now < prev {
			t.Fatalf("clock went backwards: %d -> %d", prev, now)
		}
		prev = now
	}
}
