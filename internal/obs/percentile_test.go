package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPercentileNSEdges pins the estimator's edge cases: empty input,
// a single sample, all-equal ties, and the p=0 / p=1 extremes.
func TestPercentileNSEdges(t *testing.T) {
	if got := percentileNS(nil, 0.5); got != 0 {
		t.Fatalf("empty: got %d, want 0", got)
	}
	one := []int64{42}
	for _, p := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := percentileNS(one, p); got != 42 {
			t.Fatalf("single sample p=%g: got %d, want 42", p, got)
		}
	}
	ties := []int64{7, 7, 7, 7, 7}
	for _, p := range []float64{0, 0.5, 0.95, 1} {
		if got := percentileNS(ties, p); got != 7 {
			t.Fatalf("ties p=%g: got %d, want 7", p, got)
		}
	}
	sorted := []int64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want int64
	}{
		{-0.5, 10}, // clamps low
		{0, 10},
		{0.5, 25}, // interpolates between order statistics
		{1, 40},
		{1.5, 40}, // clamps high
	}
	for _, c := range cases {
		if got := percentileNS(sorted, c.p); got != c.want {
			t.Fatalf("p=%g: got %d, want %d", c.p, got, c.want)
		}
	}
	// Interior interpolation: p=0.9 over n=4 → x=2.7 → 30 + 0.7*10.
	if got := percentileNS(sorted, 0.9); got != 37 {
		t.Fatalf("p=0.9: got %d, want 37", got)
	}
}

// TestHDRQuantile: quantiles interpolated from the HDR grid must land
// within one sub-bucket (12.5%) of the exact value — the resolution the
// regression gate depends on.
func TestHDRQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", HDRLatencyBuckets)
	// 1000 samples spread 2µs..1ms (log-uniform-ish via squares), all
	// above the first HDR bound so interpolation has a finite lower edge.
	var samples []float64
	for i := 1; i <= 1000; i++ {
		v := 2000.0 + float64(i*i)
		samples = append(samples, v)
		h.Observe(v)
	}
	hv := reg.Snapshot().Histograms[0]
	for _, p := range []float64{0.5, 0.95, 0.99} {
		exact := samples[int(p*float64(len(samples)))-1]
		got := hv.Quantile(p)
		if rel := math.Abs(got-exact) / exact; rel > 0.125 {
			t.Fatalf("p=%g: got %g, exact %g (rel err %.3f > 0.125)", p, got, exact, rel)
		}
	}
	// Edges and degenerates.
	if (HistogramValue{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	if got := hv.Quantile(-1); got <= 0 {
		t.Fatalf("clamped p<0 quantile: %g", got)
	}
	if got := hv.Quantile(2); got < hv.Quantile(0.99) {
		t.Fatal("clamped p>1 below p99")
	}
}

// TestHDRGridShape pins the grid: ascending, log-linear, 193 bounds from
// 2^10 to 2^34 ns.
func TestHDRGridShape(t *testing.T) {
	b := HDRLatencyBuckets
	if len(b) != (hdrMaxPow2-hdrMinPow2)*hdrSubBuckets+1 {
		t.Fatalf("got %d bounds", len(b))
	}
	if b[0] != 1024 || b[len(b)-1] != math.Ldexp(1, hdrMaxPow2) {
		t.Fatalf("grid endpoints: %g .. %g", b[0], b[len(b)-1])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %g <= %g", i, b[i], b[i-1])
		}
		if ratio := b[i] / b[i-1]; ratio > 1.0+1.0/hdrSubBuckets+1e-9 {
			t.Fatalf("gap at %d too wide: ratio %g", i, ratio)
		}
	}
}

// TestSnapshotDuringObserve runs Snapshot concurrently with a storm of
// Observe calls; under -race this proves the snapshot path takes a
// consistent, race-free copy, and the final snapshot must see every
// observation.
func TestSnapshotDuringObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", HDRLatencyBuckets)
	const writers = 4
	const perWriter = 5000
	var stop atomic.Bool
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		for !stop.Load() {
			s := reg.Snapshot()
			if len(s.Histograms) > 0 {
				var sum uint64
				for _, c := range s.Histograms[0].Counts {
					sum += c
				}
				// Bucket sum can trail the count (they are separate atomics)
				// but never exceed the true total.
				if sum > writers*perWriter {
					t.Error("snapshot bucket sum exceeds observations")
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(float64(1000 + i + w))
			}
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	snaps.Wait()
	final := reg.Snapshot().Histograms[0]
	if final.Count != writers*perWriter {
		t.Fatalf("final count %d, want %d", final.Count, writers*perWriter)
	}
	var sum uint64
	for _, c := range final.Counts {
		sum += c
	}
	if sum != writers*perWriter {
		t.Fatalf("final bucket sum %d, want %d", sum, writers*perWriter)
	}
}
