package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text-format export of a registry snapshot. Dotted internal
// names map to "postopc_"-prefixed underscore series ("cache.hits_total"
// -> "postopc_cache_hits_total"); histograms render as native Prometheus
// histograms (cumulative "le" buckets plus _sum and _count). Snapshot
// order is sorted by name, so the export is deterministic for a given set
// of metric values.

// promName sanitizes an internal metric name into a Prometheus series
// name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("postopc_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format. The export opens with a constant postopc_build_info gauge
// (the usual build-identity idiom: value 1, identity in the labels) so
// every scrape names the toolchain, GOAMD64 level and detected CPU
// features that produced the numbers.
func WritePrometheus(w io.Writer, s Snapshot) error {
	bi := GetBuildInfo()
	if _, err := fmt.Fprintf(w,
		"# TYPE postopc_build_info gauge\npostopc_build_info{go=%q,goos=%q,goarch=%q,goamd64=%q,cpu=%q,module=%q} 1\n",
		bi.GoVersion, bi.GOOS, bi.GOARCH, bi.VekLevel, bi.CPUFeatures, bi.Module); err != nil {
		return err
	}
	for _, c := range s.Counters {
		n := promName(c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, formatFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		n := promName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, formatFloat(bound), cum); err != nil {
				return err
			}
		}
		cum += h.Counts[len(h.Bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			n, cum, n, formatFloat(h.Sum), n, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a float the shortest round-trippable way, matching
// Prometheus conventions (no trailing zeros).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
