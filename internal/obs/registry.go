package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The nil handle is a no-op,
// so instrumented hot paths update unconditionally; a live increment is a
// single atomic add — no locks, no allocation.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
//
//postopc:allocfree
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
//
//postopc:allocfree
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for the nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. The nil handle is a no-op; a
// live update is a single atomic store of the float's bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
//
//postopc:allocfree
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 for the nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// LatencyBuckets are the coarse half-decade histogram bounds for duration
// metrics, in nanoseconds: steps from 1µs to 10s. Latencies below the
// first bound land in bucket 0; anything past the last bound lands in the
// implicit +Inf bucket. Sink.LatencyHistogram now resolves the HDR
// log-linear grid (HDRLatencyBuckets, hdr.go) instead — this grid remains
// for callers that want few-bucket exports over quantile resolution.
var LatencyBuckets = []float64{
	1e3, 3.2e3, 1e4, 3.2e4, 1e5, 3.2e5, 1e6, 3.2e6, 1e7, 3.2e7, 1e8, 3.2e8, 1e9, 3.2e9, 1e10,
}

// CountBuckets are the default histogram bounds for small-count
// distributions (gates evaluated per analysis, items per batch): roughly
// half-decade steps from 1 to 100k. Counts past the last bound land in the
// implicit +Inf bucket.
var CountBuckets = []float64{
	1, 3, 10, 32, 100, 320, 1e3, 3.2e3, 1e4, 3.2e4, 1e5,
}

// Histogram is a fixed-bucket distribution. Bounds are upper bucket edges
// (ascending); counts[len(bounds)] is the +Inf bucket. The nil handle is a
// no-op; a live observation is a binary search over the bounds plus two
// atomic adds — no locks, no allocation, and log2(len) comparisons so the
// 193-bound HDR latency grid costs the same as the old 15-bound walk.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// Observe records one sample.
//
//postopc:allocfree
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Hand-rolled first-bound-≥-v binary search (sort.Search would pull a
	// closure into this allocfree path). A sample equal to a bound lands in
	// that bound's bucket; NaN compares false everywhere and lands in
	// bucket 0, same as the linear walk it replaced.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// StartTimer returns a start mark for ObserveSince, without reading the
// clock when the handle is disabled.
//
//postopc:allocfree
func (h *Histogram) StartTimer() int64 {
	if h == nil {
		return 0
	}
	return Monotonic()
}

// ObserveSince records the nanoseconds elapsed since a StartTimer mark.
//
//postopc:allocfree
func (h *Histogram) ObserveSince(start int64) {
	if h == nil {
		return
	}
	h.Observe(float64(Monotonic() - start))
}

// TimedSince records the elapsed nanoseconds like ObserveSince and also
// returns them, so a caller that feeds both a histogram and a per-window
// ledger record reads the clock once. The nil handle records nothing and
// returns 0 — the disabled path never touches the clock.
//
//postopc:allocfree
func (h *Histogram) TimedSince(start int64) int64 {
	if h == nil {
		return 0
	}
	d := Monotonic() - start
	h.Observe(float64(d))
	return d
}

// Registry holds the named metrics of one run. Metrics are created on
// first resolution and live for the registry's lifetime; resolving the
// same name again returns the same handle. Resolution takes a lock —
// callers resolve once at setup and keep the handle out of hot loops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if absent.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if absent.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// if absent. Bounds must be ascending; a histogram resolved twice keeps
// its original bounds (mismatched re-registration panics — metric names
// identify one distribution).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
		return h
	}
	if len(h.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different buckets", name))
	}
	return h
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string
	Value uint64
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string
	Value float64
}

// HistogramValue is one histogram in a snapshot. Counts has one entry per
// bound plus the trailing +Inf bucket.
type HistogramValue struct {
	Name   string
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot is a point-in-time copy of every metric, each section sorted by
// name — the deterministic order every exporter renders.
type Snapshot struct {
	Counters   []CounterValue
	Gauges     []GaugeValue
	Histograms []HistogramValue
}

// Snapshot copies the registry. Concurrent updates may or may not be
// included (each metric is read atomically); the ordering is always
// sorted by name.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hv := HistogramValue{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Count:  h.count.Load(),
			Sum:    math.Float64frombits(h.sumBits.Load()),
		}
		for i := range h.counts {
			hv.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
