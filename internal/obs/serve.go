package obs

import (
	"context"
	"expvar"
	"net/http"
	"sync"
	"time"
)

// HTTP exposure: Handler serves a registry over three conventional
// endpoints — Prometheus text format at /metrics, expvar-style JSON at
// /debug/vars (the stock expvar handler, with the registry published as
// the "postopc" variable and the build identity as "postopc_build_info"),
// and a trivial liveness probe at /healthz. NewServer wraps the handler
// in an http.Server hardened for long-lived embedding (header-read
// timeout against slowloris peers, graceful Shutdown) — the listener the
// future postopc-served daemon will mount. CLIs mount it with
// -metrics :port; the pprof endpoints come from net/http/pprof on the
// CLI side.

// publishOnce guards expvar.Publish, which panics on duplicate names; the
// registry behind the variable is swappable so tests and successive
// Handler calls stay safe.
var (
	publishOnce sync.Once
	publishMu   sync.Mutex
	publishReg  *Registry
)

// publishExpvar exposes reg's snapshot as the expvar variable "postopc"
// and the binary's build identity as "postopc_build_info".
func publishExpvar(reg *Registry) {
	publishMu.Lock()
	publishReg = reg
	publishMu.Unlock()
	publishOnce.Do(func() {
		expvar.Publish("postopc", expvar.Func(func() interface{} {
			publishMu.Lock()
			r := publishReg
			publishMu.Unlock()
			if r == nil {
				return Snapshot{}
			}
			return r.Snapshot()
		}))
		expvar.Publish("postopc_build_info", expvar.Func(func() interface{} {
			return GetBuildInfo()
		}))
	})
}

// Handler returns an http.Handler serving reg at /metrics (Prometheus
// text format), /debug/vars (expvar JSON including the registry snapshot
// under "postopc") and /healthz (liveness).
func Handler(reg *Registry) http.Handler {
	publishExpvar(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, reg.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// NewServer returns an http.Server serving Handler(reg) on addr, with a
// header-read timeout so a stalled peer cannot pin a connection
// goroutine forever. Callers own the lifecycle: ListenAndServe to start,
// Shutdown (see ShutdownServer) to stop draining in-flight scrapes.
func NewServer(addr string, reg *Registry) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           Handler(reg),
		ReadHeaderTimeout: 5 * time.Second,
	}
}

// ShutdownServer gracefully stops a server from NewServer, waiting up to
// timeout for in-flight requests before closing hard. Nil-safe.
func ShutdownServer(srv *http.Server, timeout time.Duration) {
	if srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
	}
}
