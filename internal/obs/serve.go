package obs

import (
	"expvar"
	"net/http"
	"sync"
)

// HTTP exposure: Handler serves a registry over two conventional
// endpoints — Prometheus text format at /metrics and expvar-style JSON at
// /debug/vars (the stock expvar handler, with the registry published as
// the "postopc" variable). CLIs mount it with -metrics :port; the pprof
// endpoints come from net/http/pprof on the CLI side.

// publishOnce guards expvar.Publish, which panics on duplicate names; the
// registry behind the variable is swappable so tests and successive
// Handler calls stay safe.
var (
	publishOnce sync.Once
	publishMu   sync.Mutex
	publishReg  *Registry
)

// publishExpvar exposes reg's snapshot as the expvar variable "postopc".
func publishExpvar(reg *Registry) {
	publishMu.Lock()
	publishReg = reg
	publishMu.Unlock()
	publishOnce.Do(func() {
		expvar.Publish("postopc", expvar.Func(func() interface{} {
			publishMu.Lock()
			r := publishReg
			publishMu.Unlock()
			if r == nil {
				return Snapshot{}
			}
			return r.Snapshot()
		}))
	})
}

// Handler returns an http.Handler serving reg at /metrics (Prometheus
// text format) and /debug/vars (expvar JSON including the registry
// snapshot under "postopc").
func Handler(reg *Registry) http.Handler {
	publishExpvar(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, reg.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
