package obs

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHandlerEndpoints: /metrics serves Prometheus text (including the
// build-info gauge), /healthz answers ok, /debug/vars is mounted.
func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("cache.hits_total").Add(2)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{"postopc_cache_hits_total 2", "postopc_build_info{", `goamd64="`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	code, body = get("/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	code, body = get("/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "postopc_build_info") {
		t.Fatalf("/debug/vars: %d (missing build info)\n%s", code, body)
	}
}

// TestNewServerHardening: the embedded server carries a header-read
// timeout and shuts down gracefully (idempotently, and nil-safely).
func TestNewServerHardening(t *testing.T) {
	srv := NewServer("127.0.0.1:0", NewRegistry())
	if srv.ReadHeaderTimeout <= 0 {
		t.Fatal("no ReadHeaderTimeout — slowloris-able listener")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ShutdownServer(srv, time.Second)
	if err := <-done; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	ShutdownServer(srv, time.Second) // idempotent
	ShutdownServer(nil, time.Second) // nil-safe
}
