package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"postopc/internal/report"
)

// SpanID identifies one span within a Tracer. IDs are allocated from an
// atomic counter, so they are unique but — like any timing artifact —
// schedule-dependent; nothing downstream of a trace may feed back into
// results.
type SpanID uint64

// SpanEvent is one completed span.
type SpanEvent struct {
	// Name is the span name ("stage.opc").
	Name string
	// ID is the span's identity; Parent is the explicit parent span (0 for
	// roots).
	ID, Parent SpanID
	// Start is the span's opening time (monotonic nanoseconds since
	// process start); Dur its length in nanoseconds.
	Start, Dur int64
}

// Tracer records completed spans. Safe for concurrent use; the zero-ish
// nil *Tracer is a no-op.
type Tracer struct {
	next atomic.Uint64

	// flight, when set (before any concurrent use — Sink.WithFlightRecorder
	// wires it at setup), additionally receives every completed span, so
	// the crash-dump ring stays current without a second instrumentation
	// point.
	flight *Flight

	mu     sync.Mutex
	events []SpanEvent
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Start opens a span. End it to record it; an unfinished span is never
// exported.
func (t *Tracer) Start(name string, parent SpanID) Span {
	if t == nil {
		return Span{}
	}
	return Span{
		tracer: t,
		id:     SpanID(t.next.Add(1)),
		parent: parent,
		name:   name,
		start:  Monotonic(),
	}
}

// Span is one in-flight span. The zero Span (from a disabled tracer) is a
// no-op: ID returns 0 and End does nothing.
type Span struct {
	tracer *Tracer
	id     SpanID
	parent SpanID
	name   string
	start  int64
}

// ID returns the span's identity, for parenting children (0 when
// disabled — children of a disabled span become roots, which is
// consistent because they are never recorded either).
func (sp Span) ID() SpanID { return sp.id }

// End records the span.
func (sp Span) End() {
	if sp.tracer == nil {
		return
	}
	ev := SpanEvent{Name: sp.name, ID: sp.id, Parent: sp.parent, Start: sp.start, Dur: Monotonic() - sp.start}
	sp.tracer.mu.Lock()
	sp.tracer.events = append(sp.tracer.events, ev)
	sp.tracer.mu.Unlock()
	sp.tracer.flight.Record(ev)
}

// Events returns a copy of the completed spans, sorted by start time (ID
// breaks ties) so the export order is stable for a given recording.
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanEvent(nil), t.events...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// chromeTraceEvent is one entry of the Chrome trace-event format ("X" =
// complete event, "M" = metadata). Timestamps and durations are
// microseconds; metadata events omit them. Args is either
// chromeTraceArgs (span identity) or chromeMetaArgs (lane naming).
type chromeTraceEvent struct {
	Name string      `json:"name"`
	Ph   string      `json:"ph"`
	Ts   float64     `json:"ts"`
	Dur  float64     `json:"dur"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	Args interface{} `json:"args"`
}

type chromeTraceArgs struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent"`
}

type chromeMetaArgs struct {
	Name string `json:"name"`
}

type chromeSortArgs struct {
	SortIndex int `json:"sort_index"`
}

// chromeTrace is the object-form trace file chrome://tracing (and Perfetto)
// load.
type chromeTrace struct {
	TraceEvents     []chromeTraceEvent `json:"traceEvents"`
	DisplayTimeUnit string             `json:"displayTimeUnit"`
}

// WriteChromeTrace emits the recorded spans as Chrome trace-event JSON,
// loadable in chrome://tracing or Perfetto. Every span is a complete ("X")
// event placed on a per-span-name lane; the explicit span/parent IDs ride
// along in args. The file opens with "M" metadata events naming the
// process and each lane (thread_name = span name, sorted), so the viewer
// shows labeled stage lanes instead of bare tids.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()

	// Deterministic lane assignment: sorted span-name order → tid 1..n.
	nameSet := map[string]bool{}
	for _, ev := range events {
		nameSet[ev.Name] = true
	}
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)
	lane := make(map[string]int, len(names))
	for i, n := range names {
		lane[n] = i + 1
	}

	out := chromeTrace{
		TraceEvents:     make([]chromeTraceEvent, 0, len(events)+2*len(names)+1),
		DisplayTimeUnit: "ms",
	}
	out.TraceEvents = append(out.TraceEvents, chromeTraceEvent{
		Name: "process_name", Ph: "M", Pid: 1, Args: chromeMetaArgs{Name: "postopc"},
	})
	for _, n := range names {
		out.TraceEvents = append(out.TraceEvents,
			chromeTraceEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: lane[n], Args: chromeMetaArgs{Name: n}},
			chromeTraceEvent{Name: "thread_sort_index", Ph: "M", Pid: 1, Tid: lane[n], Args: chromeSortArgs{SortIndex: lane[n]}},
		)
	}
	for _, ev := range events {
		out.TraceEvents = append(out.TraceEvents, chromeTraceEvent{
			Name: ev.Name,
			Ph:   "X",
			Ts:   float64(ev.Start) / 1e3,
			Dur:  float64(ev.Dur) / 1e3,
			Pid:  1,
			Tid:  lane[ev.Name],
			Args: chromeTraceArgs{ID: uint64(ev.ID), Parent: uint64(ev.Parent)},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// SummaryTable renders the per-span-name aggregate — count, total, p50 and
// p99 duration — as a report table, one row per name, sorted by total time
// descending (name breaks ties).
func (t *Tracer) SummaryTable() *report.Table {
	type agg struct {
		name string
		durs []int64
		tot  int64
	}
	byName := map[string]*agg{}
	for _, ev := range t.Events() {
		a, ok := byName[ev.Name]
		if !ok {
			a = &agg{name: ev.Name}
			byName[ev.Name] = a
		}
		a.durs = append(a.durs, ev.Dur)
		a.tot += ev.Dur
	}
	rows := make([]*agg, 0, len(byName))
	for _, a := range byName {
		rows = append(rows, a)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].tot != rows[j].tot {
			return rows[i].tot > rows[j].tot
		}
		return rows[i].name < rows[j].name
	})
	tb := report.NewTable("span summary", "span", "count", "total(ms)", "p50(ms)", "p99(ms)")
	for _, a := range rows {
		sort.Slice(a.durs, func(i, j int) bool { return a.durs[i] < a.durs[j] })
		tb.AddF(3, a.name, len(a.durs),
			float64(a.tot)/1e6,
			float64(percentileNS(a.durs, 0.50))/1e6,
			float64(percentileNS(a.durs, 0.99))/1e6)
	}
	return tb
}

// percentileNS is the p-quantile of sorted durations by linear
// interpolation between order statistics (the same estimator the
// statistical-timing path uses).
func percentileNS(sorted []int64, p float64) int64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	x := p * float64(n-1)
	i := int(x)
	if i >= n-1 {
		return sorted[n-1]
	}
	frac := x - float64(i)
	return sorted[i] + int64(frac*float64(sorted[i+1]-sorted[i]))
}
