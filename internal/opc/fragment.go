// Package opc implements optical proximity correction: polygon edge
// fragmentation, rule-based (table-lookup) correction, iterative model-based
// correction driven by a litho.Model, and ORC verification that reports the
// residual edge-placement errors the downstream timing flow consumes.
package opc

import (
	"fmt"

	"postopc/internal/geom"
)

// Fragment is one movable piece of a polygon edge. The fragment's geometry
// refers to the ORIGINAL drawn edge; Bias is its current displacement along
// the outward normal (positive = outward, widening the feature).
type Fragment struct {
	// A, B are the fragment endpoints on the drawn polygon, in edge order.
	A, B geom.Point
	// Normal is the outward unit normal (one of ±x, ±y).
	Normal geom.Point
	// Bias is the applied displacement along Normal in nm.
	Bias geom.Coord
	// Control is the EPE evaluation point (fragment midpoint on the drawn
	// edge).
	Control geom.Point
}

// FragmentedPolygon is a polygon plus its movable fragments, in edge order.
type FragmentedPolygon struct {
	// Drawn is the original polygon (forced counter-clockwise).
	Drawn geom.Polygon
	// Frags holds the fragments of every edge, concatenated in traversal
	// order.
	Frags []*Fragment
	// edgeStart[i] is the index in Frags of edge i's first fragment.
	edgeStart []int
}

// Fragmentation settings.
type FragmentOptions struct {
	// LengthNM is the target interior fragment length.
	LengthNM geom.Coord
	// CornerNM is the length of the short fragments kept next to corners
	// and line ends for finer control there.
	CornerNM geom.Coord
}

// DefaultFragmentOptions are production-flavored defaults.
func DefaultFragmentOptions() FragmentOptions {
	return FragmentOptions{LengthNM: 140, CornerNM: 60}
}

// Fragmentize splits a rectilinear polygon into movable edge fragments.
func Fragmentize(pg geom.Polygon, opt FragmentOptions) (*FragmentedPolygon, error) {
	if !pg.IsRectilinear() {
		return nil, fmt.Errorf("opc: polygon is not rectilinear")
	}
	if !pg.IsCCW() {
		pg = pg.Reverse()
	}
	if opt.LengthNM <= 0 {
		opt.LengthNM = 140
	}
	if opt.CornerNM <= 0 || opt.CornerNM > opt.LengthNM {
		opt.CornerNM = opt.LengthNM / 2
	}
	fp := &FragmentedPolygon{Drawn: pg}
	n := len(pg)
	for i := 0; i < n; i++ {
		a, b := pg[i], pg[(i+1)%n]
		fp.edgeStart = append(fp.edgeStart, len(fp.Frags))
		normal := outwardNormal(a, b)
		for _, seg := range splitEdge(a, b, opt) {
			mid := geom.Pt((seg[0].X+seg[1].X)/2, (seg[0].Y+seg[1].Y)/2)
			fp.Frags = append(fp.Frags, &Fragment{
				A: seg[0], B: seg[1], Normal: normal, Control: mid,
			})
		}
	}
	return fp, nil
}

// outwardNormal returns the outward unit normal of a CCW polygon edge a→b.
func outwardNormal(a, b geom.Point) geom.Point {
	dx, dy := sign(b.X-a.X), sign(b.Y-a.Y)
	// Interior is to the left of the direction; outward is to the right:
	// rotate the direction -90°: (dx,dy) -> (dy,-dx).
	return geom.Pt(dy, -dx)
}

func sign(v geom.Coord) geom.Coord {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

// splitEdge cuts edge a→b into corner/interior fragments.
func splitEdge(a, b geom.Point, opt FragmentOptions) [][2]geom.Point {
	length := a.Manhattan(b)
	if length == 0 {
		return nil
	}
	// Unit direction.
	dx, dy := sign(b.X-a.X), sign(b.Y-a.Y)
	at := func(d geom.Coord) geom.Point { return geom.Pt(a.X+dx*d, a.Y+dy*d) }
	if length <= 2*opt.CornerNM {
		return [][2]geom.Point{{a, b}}
	}
	var cuts []geom.Coord
	cuts = append(cuts, 0, opt.CornerNM)
	interior := length - 2*opt.CornerNM
	nInt := int((interior + opt.LengthNM - 1) / opt.LengthNM)
	for k := 1; k < nInt; k++ {
		cuts = append(cuts, opt.CornerNM+interior*geom.Coord(k)/geom.Coord(nInt))
	}
	cuts = append(cuts, length-opt.CornerNM, length)
	var out [][2]geom.Point
	for i := 0; i+1 < len(cuts); i++ {
		if cuts[i+1] > cuts[i] {
			out = append(out, [2]geom.Point{at(cuts[i]), at(cuts[i+1])})
		}
	}
	return out
}

// Corrected reconstructs the polygon with every fragment displaced by its
// bias, inserting jogs between fragments with different biases. The result
// is rectilinear (and may be self-touching for extreme biases; biases are
// clamped by the correction loops to prevent that).
func (fp *FragmentedPolygon) Corrected() geom.Polygon {
	if len(fp.Frags) == 0 {
		return fp.Drawn.Clone()
	}
	type seg struct{ a, b geom.Point }
	segs := make([]seg, len(fp.Frags))
	for i, f := range fp.Frags {
		off := f.Normal.Scale(f.Bias)
		segs[i] = seg{f.A.Add(off), f.B.Add(off)}
	}
	var out geom.Polygon
	n := len(segs)
	for i := 0; i < n; i++ {
		cur, next := segs[i], segs[(i+1)%n]
		curHoriz := fp.Frags[i].Normal.Y != 0 // horizontal edge has vertical normal
		nextHoriz := fp.Frags[(i+1)%n].Normal.Y != 0
		if curHoriz != nextHoriz {
			// Perpendicular: join at the intersection of the two offset
			// lines.
			var corner geom.Point
			if curHoriz {
				corner = geom.Pt(next.a.X, cur.b.Y)
			} else {
				corner = geom.Pt(cur.b.X, next.a.Y)
			}
			out = append(out, corner)
		} else {
			// Parallel fragments: emit both endpoints; the connecting jog
			// is the perpendicular segment between them (may be zero
			// length when biases match — deduped below).
			out = append(out, cur.b, next.a)
		}
	}
	if simplified := out.Simplify(); simplified != nil {
		return simplified
	}
	return dedupClosed(out)
}

func dedupClosed(pg geom.Polygon) geom.Polygon {
	var out geom.Polygon
	for _, p := range pg {
		if len(out) > 0 && out[len(out)-1] == p {
			continue
		}
		out = append(out, p)
	}
	for len(out) > 1 && out[0] == out[len(out)-1] {
		out = out[:len(out)-1]
	}
	return out
}
