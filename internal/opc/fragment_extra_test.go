package opc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"postopc/internal/geom"
)

func TestFragmentizeLShape(t *testing.T) {
	// L-shaped polygon: the concave corner's outward normals must still
	// point away from the interior.
	pg := geom.Polygon{
		geom.Pt(0, 0), geom.Pt(600, 0), geom.Pt(600, 200),
		geom.Pt(200, 200), geom.Pt(200, 600), geom.Pt(0, 600),
	}
	fp, err := Fragmentize(pg, FragmentOptions{LengthNM: 150, CornerNM: 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fp.Frags {
		inside := f.Control.Add(f.Normal.Scale(-3))
		outside := f.Control.Add(f.Normal.Scale(3))
		if !pg.Contains(inside) {
			t.Fatalf("inward probe at %v (normal %v) not inside", f.Control, f.Normal)
		}
		if pg.Contains(outside) {
			t.Fatalf("outward probe at %v (normal %v) still inside", f.Control, f.Normal)
		}
	}
	// Zero-bias reconstruction preserves area exactly.
	if got := fp.Corrected().Area(); got != pg.Area() {
		t.Fatalf("L reconstruction area %d != %d", got, pg.Area())
	}
}

func TestSplitEdgeCoversWholeEdge(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		length := geom.Coord(20 + rnd.Intn(2000))
		a := geom.Pt(geom.Coord(rnd.Intn(100)), geom.Coord(rnd.Intn(100)))
		b := geom.Pt(a.X+length, a.Y)
		opt := FragmentOptions{
			LengthNM: geom.Coord(40 + rnd.Intn(300)),
			CornerNM: geom.Coord(10 + rnd.Intn(80)),
		}
		if opt.CornerNM > opt.LengthNM {
			opt.CornerNM = opt.LengthNM / 2
		}
		segs := splitEdge(a, b, opt)
		if len(segs) == 0 {
			return false
		}
		// Segments must tile the edge exactly: contiguous, monotone, and
		// summing to the full length.
		if segs[0][0] != a || segs[len(segs)-1][1] != b {
			return false
		}
		var total geom.Coord
		for i, s := range segs {
			if i > 0 && segs[i-1][1] != s[0] {
				return false
			}
			if s[1].X <= s[0].X {
				return false
			}
			total += s[0].Manhattan(s[1])
		}
		return total == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrectedNegativeBiasShrinks(t *testing.T) {
	pg := geom.R(0, 0, 400, 200).Polygon()
	fp, _ := Fragmentize(pg, FragmentOptions{LengthNM: 100, CornerNM: 50})
	for _, f := range fp.Frags {
		f.Bias = -15
	}
	got := fp.Corrected()
	r, ok := got.AsRect()
	if !ok || r != geom.R(15, 15, 385, 185) {
		t.Fatalf("shrunk polygon = %v", got)
	}
}

func TestCorrectedEmptyFragments(t *testing.T) {
	fp := &FragmentedPolygon{Drawn: geom.R(0, 0, 100, 100).Polygon()}
	got := fp.Corrected()
	if got.Area() != 10000 {
		t.Fatalf("no-fragment reconstruction = %v", got)
	}
}

func TestOutwardNormalAllOrientations(t *testing.T) {
	// CCW square: bottom edge normal down, right edge right, etc.
	cases := []struct {
		a, b, want geom.Point
	}{
		{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(0, -1)},
		{geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(1, 0)},
		{geom.Pt(10, 10), geom.Pt(0, 10), geom.Pt(0, 1)},
		{geom.Pt(0, 10), geom.Pt(0, 0), geom.Pt(-1, 0)},
	}
	for _, c := range cases {
		if got := outwardNormal(c.a, c.b); got != c.want {
			t.Errorf("normal(%v->%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
