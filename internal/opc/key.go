package opc

import "postopc/internal/geom"

// Key serialization for the flow's pattern cache: OPC settings shape the
// corrected mask, so every field participates in the window signature.

// AppendKey appends the fragmentation settings.
func (fo FragmentOptions) AppendKey(dst []byte) []byte {
	return geom.AppendKeyInt(dst, int64(fo.LengthNM), int64(fo.CornerNM))
}

// AppendKey appends the full model-based OPC configuration.
func (o Options) AppendKey(dst []byte) []byte {
	dst = o.Fragment.AppendKey(dst)
	dst = geom.AppendKeyInt(dst, int64(o.Iterations))
	dst = geom.AppendKeyFloat(dst, o.Gain)
	return geom.AppendKeyInt(dst,
		int64(o.MaxMoveNM), int64(o.MaxBiasNM), int64(o.MinSpaceNM), int64(o.SearchNM))
}

// AppendKey appends the rule table's breakpoints and biases.
func (rt RuleTable) AppendKey(dst []byte) []byte {
	dst = geom.AppendKeyInt(dst, int64(len(rt.SpacesNM)))
	for _, s := range rt.SpacesNM {
		dst = geom.AppendKeyInt(dst, int64(s))
	}
	dst = geom.AppendKeyInt(dst, int64(len(rt.BiasNM)))
	for _, b := range rt.BiasNM {
		dst = geom.AppendKeyInt(dst, int64(b))
	}
	return dst
}
