package opc

import (
	"fmt"
	"math"

	"postopc/internal/geom"
	"postopc/internal/litho"
)

// Options configure model-based OPC.
type Options struct {
	// Fragment controls edge fragmentation.
	Fragment FragmentOptions
	// Iterations is the number of simulate-measure-move rounds.
	Iterations int
	// Gain is the EPE-to-move feedback factor (0 < Gain <= 1).
	Gain float64
	// MaxMoveNM clamps the per-iteration fragment move.
	MaxMoveNM geom.Coord
	// MaxBiasNM clamps the total fragment bias (a crude mask-rule check
	// preventing merged or vanished mask features).
	MaxBiasNM geom.Coord
	// MinSpaceNM is the mask-rule (MRC) minimum space: after every
	// iteration each fragment's bias is pulled back until the corrected
	// mask keeps at least this clearance to neighbouring corrected
	// geometry. 0 disables the check.
	MinSpaceNM geom.Coord
	// SearchNM is the half-range of the printed-edge search along each
	// fragment normal.
	SearchNM geom.Coord
}

// DefaultOptions returns production-flavored settings.
func DefaultOptions() Options {
	return Options{
		Fragment:   DefaultFragmentOptions(),
		Iterations: 8,
		Gain:       0.6,
		MaxMoveNM:  12,
		MaxBiasNM:  45,
		MinSpaceNM: 140,
		SearchNM:   80,
	}
}

// Result is the outcome of a model-based OPC run on one window.
type Result struct {
	// Polygons is the corrected mask geometry.
	Polygons []geom.Polygon
	// Fragmented gives access to the per-fragment biases.
	Fragmented []*FragmentedPolygon
	// FinalEPE holds the residual EPE (nm, signed, outward-positive) of
	// every fragment after the last iteration.
	FinalEPE []float64
	// Iterations actually executed.
	Iterations int
	// Sims is the number of aerial simulations spent.
	Sims int
}

// ModelBased iteratively corrects the drawn polygons so they print at size
// under the given model at the nominal process condition. Context polygons
// (neighbouring geometry that is not corrected here, e.g. from adjacent
// windows) are rasterized into every simulation but left unmodified.
func ModelBased(m litho.Model, drawn, context []geom.Polygon, opt Options) (*Result, error) {
	if opt.Iterations <= 0 {
		opt.Iterations = 8
	}
	if opt.Gain <= 0 || opt.Gain > 1 {
		opt.Gain = 0.6
	}
	if opt.MaxMoveNM <= 0 {
		opt.MaxMoveNM = 12
	}
	if opt.MaxBiasNM <= 0 {
		opt.MaxBiasNM = 45
	}
	if opt.SearchNM <= 0 {
		opt.SearchNM = 80
	}
	res := &Result{}
	for _, pg := range drawn {
		fp, err := Fragmentize(pg, opt.Fragment)
		if err != nil {
			return nil, fmt.Errorf("opc: model-based: %w", err)
		}
		res.Fragmented = append(res.Fragmented, fp)
	}
	r := m.Recipe()
	for iter := 0; iter < opt.Iterations; iter++ {
		masks := make([]geom.Polygon, 0, len(drawn)+len(context))
		for _, fp := range res.Fragmented {
			masks = append(masks, fp.Corrected())
		}
		masks = append(masks, context...)
		raster := litho.RasterizePolygons(masks, r.PixelNM, r.GuardNM)
		im, err := m.Aerial(raster, litho.Nominal)
		if err != nil {
			return nil, err
		}
		res.Sims++
		res.Iterations = iter + 1
		maxAbs := 0.0
		for _, fp := range res.Fragmented {
			for _, f := range fp.Frags {
				epe := MeasureEPE(im, f, r.Threshold, r.Polarity, opt.SearchNM)
				move := geom.Coord(math.Round(-opt.Gain * epe))
				if move > opt.MaxMoveNM {
					move = opt.MaxMoveNM
				} else if move < -opt.MaxMoveNM {
					move = -opt.MaxMoveNM
				}
				f.Bias += move
				if f.Bias > opt.MaxBiasNM {
					f.Bias = opt.MaxBiasNM
				} else if f.Bias < -opt.MaxBiasNM {
					f.Bias = -opt.MaxBiasNM
				}
				if a := math.Abs(epe); a > maxAbs {
					maxAbs = a
				}
			}
		}
		if opt.MinSpaceNM > 0 {
			enforceMinSpace(res.Fragmented, context, opt.MinSpaceNM)
		}
		if maxAbs < 1.0 { // converged to sub-nm
			break
		}
	}
	// Final verification pass at nominal.
	masks := make([]geom.Polygon, 0, len(drawn))
	for _, fp := range res.Fragmented {
		pg := fp.Corrected()
		masks = append(masks, pg)
		res.Polygons = append(res.Polygons, pg)
	}
	raster := litho.RasterizePolygons(append(masks, context...), r.PixelNM, r.GuardNM)
	im, err := m.Aerial(raster, litho.Nominal)
	if err != nil {
		return nil, err
	}
	res.Sims++
	for _, fp := range res.Fragmented {
		for _, f := range fp.Frags {
			res.FinalEPE = append(res.FinalEPE, MeasureEPE(im, f, r.Threshold, r.Polarity, opt.SearchNM))
		}
	}
	return res, nil
}

// enforceMinSpace is the mask-rule check: any fragment whose corrected
// edge would come closer than minSpace to neighbouring corrected geometry
// is pulled back. Neighbours include the other corrected polygons and the
// uncorrected context.
func enforceMinSpace(frags []*FragmentedPolygon, context []geom.Polygon, minSpace geom.Coord) {
	// Region of everything at current biases.
	var all geom.Region
	for _, fp := range frags {
		all = append(all, geom.RegionFromPolygon(fp.Corrected())...)
	}
	for _, pg := range context {
		all = append(all, geom.RegionFromPolygon(pg)...)
	}
	all = all.Normalize()
	for _, fp := range frags {
		for _, f := range fp.Frags {
			if f.Bias <= 0 {
				continue // inward-moved edges cannot violate space
			}
			// Probe from the corrected edge outward.
			probe := &Fragment{
				Control: f.Control.Add(f.Normal.Scale(f.Bias)),
				Normal:  f.Normal,
			}
			cl := Clearance(probe, all, minSpace+20)
			if cl < minSpace {
				f.Bias -= minSpace - cl
				if f.Bias < 0 {
					f.Bias = 0
				}
			}
		}
	}
}

// MeasureEPE returns the signed edge placement error of a fragment: the
// distance from the drawn edge (the fragment's control point) to the
// printed edge along the outward normal. Positive = printed edge outside
// drawn (feature too wide). If no printed edge is found within ±search,
// the error saturates at ±search (feature lost or merged).
func MeasureEPE(im *litho.Image, f *Fragment, threshold float64, pol litho.Polarity, search geom.Coord) float64 {
	nx, ny := float64(f.Normal.X), float64(f.Normal.Y)
	cx, cy := float64(f.Control.X), float64(f.Control.Y)
	printed := func(d float64) bool {
		v := im.Sample(cx+nx*d, cy+ny*d)
		if pol == litho.ClearField {
			return v < threshold
		}
		return v > threshold
	}
	s := float64(search)
	// Scan the whole ±search range and keep the printed/unprinted
	// transition closest to the drawn edge (d = 0). Starting from one end
	// would mis-lock onto the far edge of narrow features.
	const step = 2.0
	best := math.Inf(1)
	found := false
	prev := -s
	prevIn := printed(prev)
	for d := -s + step; d <= s+step/2; d += step {
		if d > s {
			d = s
		}
		in := printed(d)
		if prevIn != in {
			lo, hi := prev, d
			for k := 0; k < 20; k++ {
				mid := (lo + hi) / 2
				if printed(mid) == prevIn {
					lo = mid
				} else {
					hi = mid
				}
			}
			cross := (lo + hi) / 2
			if !found || math.Abs(cross) < math.Abs(best) {
				best = cross
				found = true
			}
		}
		prev, prevIn = d, in
		if d == s {
			break
		}
	}
	if found {
		return best
	}
	if printed(0) {
		return s // printed everywhere in range: feature merged/too wide
	}
	return -s // never printed: feature lost at this edge
}
