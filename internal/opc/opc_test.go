package opc

import (
	"math"
	"testing"

	"postopc/internal/geom"
	"postopc/internal/litho"
)

func testRecipe() litho.Recipe {
	return litho.Recipe{
		WavelengthNM: 193,
		NA:           0.85,
		SigmaOuter:   0.7,
		SourceRings:  3,
		Threshold:    0.30,
		PixelNM:      10,
		GuardNM:      300,
		Polarity:     litho.ClearField,
	}
}

func gaussModel(t *testing.T) litho.Model {
	t.Helper()
	m, err := litho.NewGaussian(testRecipe())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFragmentizeRect(t *testing.T) {
	pg := geom.R(0, 0, 400, 100).Polygon()
	fp, err := Fragmentize(pg, FragmentOptions{LengthNM: 100, CornerNM: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Long edges (400): corner 50 + 3x100 interior + corner 50 = 5 frags.
	// Short edges (100): 50+50 -> single fragment (length == 2*corner).
	if got := len(fp.Frags); got != 2*5+2*1 {
		t.Fatalf("fragments = %d, want 12", got)
	}
	// All control points must lie on the drawn boundary bbox.
	bb := pg.BBox()
	for _, f := range fp.Frags {
		onEdge := f.Control.X == bb.X0 || f.Control.X == bb.X1 ||
			f.Control.Y == bb.Y0 || f.Control.Y == bb.Y1
		if !onEdge {
			t.Fatalf("control point %v not on boundary", f.Control)
		}
		// Outward normal points away from the rect center.
		in := f.Control.Add(f.Normal.Scale(-5))
		out := f.Control.Add(f.Normal.Scale(5))
		if !bb.Contains(in) || (out.X > bb.X0 && out.X < bb.X1 && out.Y > bb.Y0 && out.Y < bb.Y1) {
			t.Fatalf("normal %v at %v not outward", f.Normal, f.Control)
		}
	}
}

func TestFragmentizeRejectsNonRectilinear(t *testing.T) {
	tri := geom.Polygon{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 7)}
	if _, err := Fragmentize(tri, DefaultFragmentOptions()); err == nil {
		t.Fatal("expected error")
	}
}

func TestFragmentizeCWInput(t *testing.T) {
	pg := geom.R(0, 0, 200, 100).Polygon().Reverse() // clockwise
	fp, err := Fragmentize(pg, DefaultFragmentOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !fp.Drawn.IsCCW() {
		t.Fatal("drawn polygon must be normalized to CCW")
	}
}

func TestCorrectedIdentity(t *testing.T) {
	pg := geom.R(0, 0, 400, 100).Polygon()
	fp, _ := Fragmentize(pg, FragmentOptions{LengthNM: 100, CornerNM: 50})
	got := fp.Corrected()
	if got.Area() != pg.Area() {
		t.Fatalf("zero-bias area = %d, want %d", got.Area(), pg.Area())
	}
	if r, ok := got.AsRect(); !ok || r != geom.R(0, 0, 400, 100) {
		t.Fatalf("zero-bias polygon = %v", got)
	}
}

func TestCorrectedUniformBias(t *testing.T) {
	pg := geom.R(0, 0, 400, 100).Polygon()
	fp, _ := Fragmentize(pg, FragmentOptions{LengthNM: 100, CornerNM: 50})
	for _, f := range fp.Frags {
		f.Bias = 10
	}
	got := fp.Corrected()
	want := geom.R(-10, -10, 410, 110)
	r, ok := got.AsRect()
	if !ok || r != want {
		t.Fatalf("uniform-bias polygon = %v, want %v", got, want)
	}
}

func TestCorrectedSingleJog(t *testing.T) {
	pg := geom.R(0, 0, 400, 100).Polygon()
	fp, _ := Fragmentize(pg, FragmentOptions{LengthNM: 100, CornerNM: 50})
	// Push exactly one interior fragment of the bottom edge outward.
	var target *Fragment
	for _, f := range fp.Frags {
		if f.Normal == geom.Pt(0, -1) && f.A.X == 150 {
			target = f
			break
		}
	}
	if target == nil {
		t.Fatal("no interior bottom fragment found")
	}
	target.Bias = 8
	got := fp.Corrected()
	fragLen := target.A.Manhattan(target.B)
	wantArea := pg.Area() + int64(fragLen)*8
	if got.Area() != wantArea {
		t.Fatalf("jogged area = %d, want %d", got.Area(), wantArea)
	}
	if got.IsRectilinear() == false {
		t.Fatal("jogged polygon must stay rectilinear")
	}
}

func TestMeasureEPESynthetic(t *testing.T) {
	// Build an image whose printed feature (I<0.3) is x in [100, 190] on a
	// [0,300]x[0,100] window.
	mask := geom.NewRaster(geom.R(0, 0, 300, 100), 5)
	im := litho.NewImage(mask)
	for iy := 0; iy < im.Ny; iy++ {
		for ix := 0; ix < im.Nx; ix++ {
			x, _ := mask.PixelCenter(ix, iy)
			v := 1.0
			if x >= 100 && x <= 190 {
				v = 0.1
			}
			im.Data[iy*im.Nx+ix] = v
		}
	}
	// Fragment with drawn edge at x=200 (outward normal +x): printed edge
	// is at ~190, i.e. EPE ≈ -10 (printed inside drawn).
	f := &Fragment{Control: geom.Pt(200, 50), Normal: geom.Pt(1, 0)}
	epe := MeasureEPE(im, f, 0.3, litho.ClearField, 60)
	if math.Abs(epe-(-10)) > 4 {
		t.Fatalf("EPE = %g, want ~-10", epe)
	}
	// Drawn edge at x=180: printed edge at 190 -> EPE +10.
	f = &Fragment{Control: geom.Pt(180, 50), Normal: geom.Pt(1, 0)}
	epe = MeasureEPE(im, f, 0.3, litho.ClearField, 60)
	if math.Abs(epe-10) > 4 {
		t.Fatalf("EPE = %g, want ~+10", epe)
	}
	// Far outside any feature: saturates at -search.
	f = &Fragment{Control: geom.Pt(20, 50), Normal: geom.Pt(-1, 0)}
	epe = MeasureEPE(im, f, 0.3, litho.ClearField, 15)
	if epe != -15 {
		t.Fatalf("lost-feature EPE = %g, want -15", epe)
	}
}

func TestModelBasedReducesEPE(t *testing.T) {
	m := gaussModel(t)
	// A gate-like line with line ends, isolated. (130nm: comfortably
	// resolvable by the Gaussian fast model at threshold 0.3.)
	drawn := []geom.Polygon{geom.R(-65, -400, 65, 400).Polygon()}
	// Baseline: residual EPE with no correction.
	fp, _ := Fragmentize(drawn[0], DefaultFragmentOptions())
	epes0, st0, err := Verify(m, drawn, nil, []*FragmentedPolygon{fp}, litho.Nominal, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(epes0) == 0 {
		t.Fatal("no EPE samples")
	}
	res, err := ModelBased(m, drawn, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st1 := SummarizeEPE(res.FinalEPE, 5)
	if st1.MaxAbs >= st0.MaxAbs {
		t.Fatalf("OPC did not improve max EPE: %.2f -> %.2f", st0.MaxAbs, st1.MaxAbs)
	}
	// Gate-region fragments (away from the line ends, where pullback is
	// physically bias-limited) must converge tightly — these are the edges
	// that set the transistor CD.
	fp2 := res.Fragmented[0]
	for i, f := range fp2.Frags {
		if f.Normal.X != 0 && f.Control.Y > -300 && f.Control.Y < 300 {
			if e := math.Abs(res.FinalEPE[i]); e > 3.0 {
				t.Fatalf("gate-edge fragment at %v residual EPE %.2fnm", f.Control, e)
			}
		}
	}
	if res.Sims < 2 || res.Iterations < 1 {
		t.Fatalf("suspicious run stats: %+v", res)
	}
}

func TestModelBasedWithContext(t *testing.T) {
	m := gaussModel(t)
	// Dense context: two uncorrected neighbours flanking the target.
	drawn := []geom.Polygon{geom.R(-65, -400, 65, 400).Polygon()}
	context := []geom.Polygon{
		geom.R(-65-320, -400, 65-320, 400).Polygon(),
		geom.R(-65+320, -400, 65+320, 400).Polygon(),
	}
	res, err := ModelBased(m, drawn, context, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fp := res.Fragmented[0]
	for i, f := range fp.Frags {
		if f.Normal.X != 0 && f.Control.Y > -300 && f.Control.Y < 300 {
			if e := math.Abs(res.FinalEPE[i]); e > 4.0 {
				t.Fatalf("dense gate-edge fragment at %v residual EPE %.2fnm", f.Control, e)
			}
		}
	}
	// Corrected polygon must not have merged with the neighbours:
	// x extent must stay clear of the context lines.
	bb := res.Polygons[0].BBox()
	if bb.X0 <= -320+65 || bb.X1 >= 320-65 {
		t.Fatalf("corrected polygon bled into context: %v", bb)
	}
}

func TestRuleTableBias(t *testing.T) {
	rt := &RuleTable{
		SpacesNM: []geom.Coord{200, 400, 800},
		BiasNM:   []geom.Coord{2, 6, 12},
	}
	cases := []struct {
		s    geom.Coord
		want geom.Coord
	}{
		{100, 2}, {200, 2}, {300, 4}, {400, 6}, {600, 9}, {800, 12}, {2000, 12},
	}
	for _, c := range cases {
		if got := rt.Bias(c.s); got != c.want {
			t.Errorf("Bias(%d) = %d, want %d", c.s, got, c.want)
		}
	}
	empty := &RuleTable{}
	if empty.Bias(100) != 0 {
		t.Fatal("empty table must bias 0")
	}
}

func TestBuildRuleTableAndApply(t *testing.T) {
	m := gaussModel(t)
	rt, err := BuildRuleTable(m, 130, []geom.Coord{200, 400, 900})
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.SpacesNM) != 3 {
		t.Fatalf("table size = %d", len(rt.SpacesNM))
	}
	// Rule OPC on an isolated line must beat no OPC on printed CD error.
	drawn := []geom.Polygon{geom.R(-65, -500, 65, 500).Polygon()}
	context := geom.RegionFromPolygon(drawn[0])
	corrected, err := RuleBased(drawn, context, rt, DefaultFragmentOptions(), 1200)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Recipe()
	measure := func(polys []geom.Polygon) float64 {
		mask := litho.RasterizePolygons(polys, r.PixelNM, r.GuardNM)
		im, err := m.Aerial(mask, litho.Nominal)
		if err != nil {
			t.Fatal(err)
		}
		res := im.MeasureCD(litho.AxisX, 0, -200, 200, 0, r.Threshold, r.Polarity)
		if !res.OK {
			t.Fatal("line did not print")
		}
		return res.CD
	}
	cd0 := measure(drawn)
	cd1 := measure(corrected)
	if math.Abs(cd1-130) >= math.Abs(cd0-130) {
		t.Fatalf("rule OPC did not improve CD: %.1f -> %.1f (target 130)", cd0, cd1)
	}
}

func TestClearance(t *testing.T) {
	all := geom.RegionFromRects(geom.R(0, 0, 90, 800), geom.R(290, 0, 380, 800))
	f := &Fragment{Control: geom.Pt(90, 400), Normal: geom.Pt(1, 0)}
	if got := Clearance(f, all, 1000); got != 200 {
		t.Fatalf("clearance = %d, want 200", got)
	}
	// No neighbour: saturates at max.
	f = &Fragment{Control: geom.Pt(0, 400), Normal: geom.Pt(-1, 0)}
	if got := Clearance(f, all, 500); got != 500 {
		t.Fatalf("open clearance = %d, want 500", got)
	}
}

func TestSummarizeEPEAndHistogram(t *testing.T) {
	epes := []float64{-2, -1, 0, 1, 2, 8}
	st := SummarizeEPE(epes, 5)
	if st.Count != 6 || st.Violations != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.Mean-8.0/6) > 1e-9 || st.MaxAbs != 8 {
		t.Fatalf("stats = %+v", st)
	}
	if st.String() == "" {
		t.Fatal("empty String()")
	}
	h := NewHistogram(epes, -10, 10, 10)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != len(epes) {
		t.Fatalf("histogram total = %d", total)
	}
	// Out-of-range values clamp to edge bins.
	h = NewHistogram([]float64{-100, 100}, -10, 10, 4)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
	if got := SummarizeEPE(nil, 1); got.Count != 0 {
		t.Fatal("empty EPE stats")
	}
}
