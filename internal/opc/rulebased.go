package opc

import (
	"fmt"
	"sort"

	"postopc/internal/geom"
	"postopc/internal/litho"
)

// RuleTable is a space-indexed bias lookup: the classic rule-based OPC.
// For a fragment whose outward clearance to the next feature is s, the
// applied bias is interpolated from the table.
type RuleTable struct {
	// SpacesNM are the clearance breakpoints, ascending.
	SpacesNM []geom.Coord
	// BiasNM are the corresponding edge biases (per edge, nm).
	BiasNM []geom.Coord
}

// Bias interpolates the table at clearance s (clamped to the table range).
func (rt *RuleTable) Bias(s geom.Coord) geom.Coord {
	if len(rt.SpacesNM) == 0 {
		return 0
	}
	if s <= rt.SpacesNM[0] {
		return rt.BiasNM[0]
	}
	last := len(rt.SpacesNM) - 1
	if s >= rt.SpacesNM[last] {
		return rt.BiasNM[last]
	}
	i := sort.Search(len(rt.SpacesNM), func(k int) bool { return rt.SpacesNM[k] >= s }) - 1
	s0, s1 := rt.SpacesNM[i], rt.SpacesNM[i+1]
	b0, b1 := rt.BiasNM[i], rt.BiasNM[i+1]
	return b0 + (b1-b0)*(s-s0)/(s1-s0)
}

// BuildRuleTable derives a bias table from the imaging model by simulating
// line arrays of the given width through a set of spacings and solving for
// the edge bias that prints each at drawn size. This is how real rule-based
// OPC decks were generated before model-based OPC took over.
func BuildRuleTable(m litho.Model, widthNM geom.Coord, spacesNM []geom.Coord) (*RuleTable, error) {
	r := m.Recipe()
	rt := &RuleTable{}
	for _, space := range spacesNM {
		pitch := widthNM + space
		// Find, by bisection on the mask bias, the bias at which the
		// printed CD equals the drawn width.
		lo, hi := -widthNM/3, widthNM/2
		if maxB := (space - 40) / 2; hi > maxB && maxB > 0 {
			hi = maxB // keep corrected lines from merging
		}
		var bias geom.Coord
		for it := 0; it < 12; it++ {
			bias = (lo + hi) / 2
			la := litho.LineArray{WidthNM: widthNM + 2*bias, PitchNM: pitch, Count: 7, LengthNM: widthNM * 16}
			mask := litho.RasterizeRects(la.Rects(), r.PixelNM, r.GuardNM)
			im, err := m.Aerial(mask, litho.Nominal)
			if err != nil {
				return nil, err
			}
			centers := la.CenterXs()
			mid := centers[len(centers)/2]
			res := im.MeasureCD(litho.AxisX, 0, mid-float64(pitch)/2, mid+float64(pitch)/2,
				mid, r.Threshold, r.Polarity)
			if !res.OK || res.CD < float64(widthNM) {
				lo = bias // line too thin: widen the mask
			} else {
				hi = bias
			}
		}
		rt.SpacesNM = append(rt.SpacesNM, space)
		rt.BiasNM = append(rt.BiasNM, bias)
	}
	return rt, nil
}

// Clearance measures the outward distance from a fragment's control point
// to the nearest other drawn feature, walking the outward normal in fixed
// steps up to maxNM. Features are supplied as a merged Region (all drawn
// polygons of the layer in the window).
func Clearance(f *Fragment, all geom.Region, maxNM geom.Coord) geom.Coord {
	const step = 10
	for d := geom.Coord(step); d <= maxNM; d += step {
		p := f.Control.Add(f.Normal.Scale(d))
		if all.Contains(p) {
			return d
		}
	}
	return maxNM
}

// RuleBased applies table-lookup OPC to drawn polygons. The context Region
// must contain all drawn geometry near the polygons (including the
// polygons themselves; a fragment's own feature is excluded by walking
// outward from the edge).
func RuleBased(polys []geom.Polygon, context geom.Region, rt *RuleTable, fragOpt FragmentOptions, maxClearNM geom.Coord) ([]geom.Polygon, error) {
	if maxClearNM <= 0 {
		maxClearNM = 1500
	}
	var out []geom.Polygon
	for _, pg := range polys {
		fp, err := Fragmentize(pg, fragOpt)
		if err != nil {
			return nil, fmt.Errorf("opc: rule-based: %w", err)
		}
		for _, f := range fp.Frags {
			f.Bias = rt.Bias(Clearance(f, context, maxClearNM))
		}
		out = append(out, fp.Corrected())
	}
	return out, nil
}
