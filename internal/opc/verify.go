package opc

import (
	"fmt"
	"math"
	"sort"

	"postopc/internal/geom"
	"postopc/internal/litho"
)

// EPEStats summarizes the residual edge placement errors of a verification
// run (ORC).
type EPEStats struct {
	// Count is the number of control points evaluated.
	Count int
	// Mean, Std, MaxAbs are in nm.
	Mean, Std, MaxAbs float64
	// P95Abs is the 95th percentile of |EPE|.
	P95Abs float64
	// Violations counts control points with |EPE| > the tolerance used.
	Violations int
}

// Histogram bins EPE values for figure-style reporting.
type Histogram struct {
	// LoNM is the left edge of the first bin; WidthNM the bin width.
	LoNM, WidthNM float64
	// Counts per bin.
	Counts []int
}

// NewHistogram bins values into n bins over [lo, hi].
func NewHistogram(values []float64, lo, hi float64, n int) Histogram {
	h := Histogram{LoNM: lo, WidthNM: (hi - lo) / float64(n), Counts: make([]int, n)}
	for _, v := range values {
		i := int((v - lo) / h.WidthNM)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		h.Counts[i]++
	}
	return h
}

// Verify runs ORC: it simulates the corrected mask under the given process
// corner and measures the EPE of every fragment of the drawn target
// geometry. Tolerance sets the violation threshold (nm).
func Verify(m litho.Model, corrected, context []geom.Polygon, targets []*FragmentedPolygon,
	c litho.Corner, tolerance float64) ([]float64, EPEStats, error) {
	r := m.Recipe()
	raster := litho.RasterizePolygons(append(append([]geom.Polygon{}, corrected...), context...),
		r.PixelNM, r.GuardNM)
	im, err := m.Aerial(raster, c)
	if err != nil {
		return nil, EPEStats{}, err
	}
	th := r.EffectiveThreshold(c)
	var epes []float64
	for _, fp := range targets {
		for _, f := range fp.Frags {
			epes = append(epes, MeasureEPE(im, f, th, r.Polarity, 80))
		}
	}
	return epes, SummarizeEPE(epes, tolerance), nil
}

// SummarizeEPE computes ORC statistics for a set of EPE samples.
func SummarizeEPE(epes []float64, tolerance float64) EPEStats {
	st := EPEStats{Count: len(epes)}
	if len(epes) == 0 {
		return st
	}
	var sum float64
	abs := make([]float64, len(epes))
	for i, e := range epes {
		sum += e
		abs[i] = math.Abs(e)
		if abs[i] > st.MaxAbs {
			st.MaxAbs = abs[i]
		}
		if abs[i] > tolerance {
			st.Violations++
		}
	}
	st.Mean = sum / float64(len(epes))
	var ss float64
	for _, e := range epes {
		d := e - st.Mean
		ss += d * d
	}
	st.Std = math.Sqrt(ss / float64(len(epes)))
	sort.Float64s(abs)
	st.P95Abs = abs[int(0.95*float64(len(abs)-1))]
	return st
}

// String renders the stats in ORC-report style.
func (st EPEStats) String() string {
	return fmt.Sprintf("n=%d mean=%+.2fnm σ=%.2fnm max|EPE|=%.2fnm p95=%.2fnm viol=%d",
		st.Count, st.Mean, st.Std, st.MaxAbs, st.P95Abs, st.Violations)
}
