// Package par provides the bounded worker pool shared by the flow's hot
// loops (Monte Carlo timing, full-chip ORC, per-gate extraction): an
// ordered fan-out over index-addressed work with deterministic error
// collection.
//
// Determinism contract: ForEach(n, fn) invokes fn for indices 0..n-1 and
// callers write results into index-addressed slots, so the assembled output
// is independent of worker count and scheduling. On failure the error of
// the lowest failing index is returned — the same error a serial loop
// would surface — regardless of which worker hit it first. Telemetry (the
// Obs option) observes the schedule without influencing it: it only ever
// writes counters and histograms.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"postopc/internal/obs"
)

// Options configure one fan-out run.
type Options struct {
	workers int
	sink    *obs.Sink
}

// Option mutates Options.
type Option func(*Options)

// Workers bounds the number of concurrent workers. n <= 0 selects
// runtime.GOMAXPROCS(0); n == 1 degrades to a plain serial loop.
func Workers(n int) Option {
	return func(o *Options) { o.workers = n }
}

// Obs attaches telemetry to the fan-out: per-worker busy time
// ("par.worker_busy_ns"), per-worker scheduling overhead — wall time not
// spent in fn — ("par.queue_wait_ns"), an items-per-worker gauge and an
// items counter. A nil or disabled sink records nothing.
func Obs(sink *obs.Sink) Option {
	return func(o *Options) { o.sink = sink }
}

// poolMetrics are the resolved telemetry handles of one ForEach run. The
// zero value (disabled sink) is free: every handle is nil and the timing
// reads are skipped.
type poolMetrics struct {
	busy  *obs.Histogram
	wait  *obs.Histogram
	items *obs.Counter
	load  *obs.Gauge
}

func newPoolMetrics(sink *obs.Sink) poolMetrics {
	if !sink.Enabled() {
		return poolMetrics{}
	}
	return poolMetrics{
		busy:  sink.LatencyHistogram("par.worker_busy_ns"),
		wait:  sink.LatencyHistogram("par.queue_wait_ns"),
		items: sink.Counter("par.items_total"),
		load:  sink.Gauge("par.items_per_worker"),
	}
}

// ForEach invokes fn(i) for every i in [0, n), running at most the
// configured number of workers concurrently (GOMAXPROCS by default). All
// invocations have returned when ForEach returns.
//
// Indices are claimed in ascending order. Once any invocation fails,
// not-yet-claimed indices are skipped; because every index below a failing
// one has already been claimed and runs to completion, the returned error
// is always the one from the lowest failing index, independent of worker
// count.
func ForEach(n int, fn func(i int) error, opts ...Option) error {
	return ForEachWorker(n, func(_, i int) error { return fn(i) }, opts...)
}

// ForEachWorker is ForEach with the worker slot id (0..workers-1) passed
// to fn alongside the item index, so callers can attribute work — ledger
// window records carry the worker that ran them — without touching any
// shared state. The slot id is scheduling metadata only: results must
// not depend on it, and the determinism contract is unchanged.
func ForEachWorker(n int, fn func(worker, i int) error, opts ...Option) error {
	if n <= 0 {
		return nil
	}
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	workers := o.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	met := newPoolMetrics(o.sink)
	met.load.Set(float64(n) / float64(workers))
	if workers == 1 {
		t0 := met.busy.StartTimer()
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				met.busy.ObserveSince(t0)
				met.items.Add(uint64(i + 1))
				return err
			}
		}
		met.busy.ObserveSince(t0)
		met.items.Add(uint64(n))
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			wall := met.busy.StartTimer()
			var busy int64
			defer func() {
				if met.busy != nil {
					met.busy.Observe(float64(busy))
					met.wait.Observe(float64(obs.Monotonic() - wall - busy))
				}
			}()
			for {
				// The failure check precedes the claim: a claimed index
				// always runs. Claims ascend, so when the first-completing
				// failure (index j) raises the flag, every index below j —
				// including the lowest failing one — was already claimed
				// and will record its own error.
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				t0 := met.busy.StartTimer()
				err := fn(w, i)
				if met.busy != nil {
					busy += obs.Monotonic() - t0
				}
				met.items.Inc()
				if err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
