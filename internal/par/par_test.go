package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		const n = 257
		counts := make([]int32, n)
		err := ForEach(n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		}, Workers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachOrderedResults(t *testing.T) {
	const n = 64
	out := make([]int, n)
	if err := ForEach(n, func(i int) error {
		out[i] = i * i
		return nil
	}, Workers(8)); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	if err := ForEach(0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for n=0")
	}
	if err := ForEach(-3, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for n<0")
	}
}

func TestForEachLowestIndexError(t *testing.T) {
	// Several indices fail; every worker count must report the lowest one.
	failing := map[int]bool{3: true, 17: true, 40: true}
	for _, workers := range []int{1, 2, 4, 16} {
		for trial := 0; trial < 20; trial++ {
			err := ForEach(50, func(i int) error {
				if failing[i] {
					return fmt.Errorf("task %d failed", i)
				}
				return nil
			}, Workers(workers))
			if err == nil || err.Error() != "task 3 failed" {
				t.Fatalf("workers=%d trial=%d: err = %v, want task 3", workers, trial, err)
			}
		}
	}
}

func TestForEachSerialStopsAtFirstError(t *testing.T) {
	var ran int32
	sentinel := errors.New("boom")
	err := ForEach(100, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 5 {
			return sentinel
		}
		return nil
	}, Workers(1))
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if ran != 6 {
		t.Fatalf("serial run executed %d tasks after failure at index 5", ran)
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak int32
	err := ForEach(64, func(int) error {
		cur := atomic.AddInt32(&inFlight, 1)
		for {
			old := atomic.LoadInt32(&peak)
			if cur <= old || atomic.CompareAndSwapInt32(&peak, old, cur) {
				break
			}
		}
		atomic.AddInt32(&inFlight, -1)
		return nil
	}, Workers(workers))
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Fatalf("observed %d concurrent tasks, bound is %d", peak, workers)
	}
}

func TestForEachSkipsAfterFailure(t *testing.T) {
	// When every index fails, the first completed failure raises the stop
	// flag and unclaimed indices are skipped — but the reported error is
	// still index 0's, the lowest claimed failure.
	var ran int32
	err := ForEach(1000, func(i int) error {
		atomic.AddInt32(&ran, 1)
		return fmt.Errorf("task %d failed", i)
	}, Workers(2))
	if err == nil || err.Error() != "task 0 failed" {
		t.Fatalf("err = %v", err)
	}
	if ran == 1000 {
		t.Fatal("no index was skipped after the failure")
	}
}

func TestForEachWorkerIDs(t *testing.T) {
	// Worker slot ids are in [0, workers) and every index runs exactly
	// once regardless of which slot claimed it.
	const n, workers = 64, 4
	seen := make([]int32, n)
	var bad int32
	err := ForEachWorker(n, func(w, i int) error {
		if w < 0 || w >= workers {
			atomic.AddInt32(&bad, 1)
		}
		atomic.AddInt32(&seen[i], 1)
		return nil
	}, Workers(workers))
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("%d invocations saw an out-of-range worker id", bad)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
	// Serial path pins worker 0.
	err = ForEachWorker(8, func(w, _ int) error {
		if w != 0 {
			return fmt.Errorf("serial worker id %d", w)
		}
		return nil
	}, Workers(1))
	if err != nil {
		t.Fatal(err)
	}
}
