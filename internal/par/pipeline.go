package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"postopc/internal/obs"
)

// Stage is one stage of a Pipeline: a named batch function with its own
// worker bound.
type Stage struct {
	// Name labels the stage's telemetry ("par.pipeline_<name>_*").
	Name string
	// Workers bounds concurrent Fn executions of this stage; <= 0 selects
	// runtime.GOMAXPROCS(0). The Workers Option, when given, caps every
	// stage.
	Workers int
	// Fn processes one batch. A non-nil error marks the batch failed: its
	// remaining stages are skipped and no new batches are admitted. Fn
	// must not leave cross-batch obligations dangling on error (see the
	// Pipeline determinism contract).
	Fn func(batch int) error
	// FnW, when set, is used instead of Fn and additionally receives the
	// stage worker slot (0..workers-1) that runs the batch — scheduling
	// metadata for attribution (ledger records), never an input results
	// may depend on.
	FnW func(batch, worker int) error
}

// stageMetrics are the telemetry handles of one pipeline stage: worker
// busy/wait time and the end-of-run occupancy gauge (fraction of the
// stage's worker-time spent inside Fn). The zero value (disabled sink) is
// free.
type stageMetrics struct {
	busy *obs.Histogram
	wait *obs.Histogram
	occ  *obs.Gauge
}

func newStageMetrics(sink *obs.Sink, name string) stageMetrics {
	if !sink.Enabled() {
		return stageMetrics{}
	}
	return stageMetrics{
		busy: sink.LatencyHistogram("par.pipeline_" + name + "_busy_ns"),
		wait: sink.LatencyHistogram("par.pipeline_" + name + "_wait_ns"),
		occ:  sink.Gauge("par.pipeline_" + name + "_occupancy"),
	}
}

// Pipeline streams batches 0..batches-1 through the stages as overlapping
// phases on bounded channels: while stage s processes batch b, stage s-1
// already works on later batches, so a chain of rasterize → transform →
// extract keeps every phase busy instead of fork-joining per batch. The
// channel between adjacent stages is bounded by the upstream worker count,
// which backpressures admission when a downstream stage falls behind.
//
// Determinism contract (mirroring ForEach): batches are admitted in
// ascending order and callers write results into batch-addressed slots, so
// assembled output is independent of stage worker counts and scheduling.
// Once any batch fails, admission stops; every batch below the lowest
// failing one was already admitted and runs every stage to completion, so
// the returned error is always the lowest failing batch's — the error a
// serial loop over batches would surface. A failed batch skips its
// remaining stages (it still flows through them for accounting, without
// running Fn).
//
// Telemetry (the Obs option): per stage, worker busy time
// ("par.pipeline_<name>_busy_ns"), worker idle time spent parked on
// channels ("par.pipeline_<name>_wait_ns") and an occupancy gauge
// ("par.pipeline_<name>_occupancy", busy fraction of the stage's
// worker-time over the run), plus a "par.pipeline_batches_total" counter.
func Pipeline(batches int, stages []Stage, opts ...Option) error {
	if batches <= 0 || len(stages) == 0 {
		return nil
	}
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	errs := make([]error, batches)
	var failed atomic.Bool

	cBatches := o.sink.Counter("par.pipeline_batches_total")
	admit := make(chan int)
	go func() {
		defer close(admit)
		for b := 0; b < batches; b++ {
			// Ascending admission with the failure check before the send:
			// when the lowest failing batch raises the flag, every batch
			// below it is already in the pipe and drains to completion.
			if failed.Load() {
				return
			}
			admit <- b
			cBatches.Inc()
		}
	}()

	var closers sync.WaitGroup
	cur := admit
	for si := range stages {
		st := stages[si]
		workers := st.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if o.workers > 0 && workers > o.workers {
			workers = o.workers
		}
		if workers > batches {
			workers = batches
		}
		var out chan int
		if si < len(stages)-1 {
			out = make(chan int, workers)
		}
		met := newStageMetrics(o.sink, st.Name)
		fn := st.FnW
		if fn == nil {
			inner := st.Fn
			fn = func(b, _ int) error { return inner(b) }
		}
		in := cur

		var stageWG sync.WaitGroup
		stageWG.Add(workers)
		var busyTotal atomic.Int64
		wallStart := int64(0)
		if met.busy != nil {
			wallStart = obs.Monotonic()
		}
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer stageWG.Done()
				var busy int64
				t0 := int64(0)
				if met.busy != nil {
					t0 = obs.Monotonic()
				}
				for b := range in {
					// A batch that failed an earlier stage flows through
					// for ordering/accounting but skips the work.
					if errs[b] == nil {
						tb := int64(0)
						if met.busy != nil {
							tb = obs.Monotonic()
						}
						if err := fn(b, w); err != nil {
							errs[b] = err
							failed.Store(true)
						}
						if met.busy != nil {
							busy += obs.Monotonic() - tb
						}
					}
					if out != nil {
						out <- b
					}
				}
				if met.busy != nil {
					met.busy.Observe(float64(busy))
					met.wait.Observe(float64(obs.Monotonic() - t0 - busy))
					busyTotal.Add(busy)
				}
			}(w)
		}
		closers.Add(1)
		go func() {
			defer closers.Done()
			stageWG.Wait()
			if out != nil {
				close(out)
			}
			if met.occ != nil {
				if wall := (obs.Monotonic() - wallStart) * int64(workers); wall > 0 {
					met.occ.Set(float64(busyTotal.Load()) / float64(wall))
				}
			}
		}()
		cur = out
	}
	closers.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
